package tricomm

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// faultSpecsUnderTest are the schedules the invariant suite sweeps: each
// fault category alone, the presets, a mixed schedule, and a budget so
// tight that aborts are certain.
func faultSpecsUnderTest() map[string]string {
	return map[string]string{
		"drop":       `{"drop":0.3,"deadline_ms":10000}`,
		"corrupt":    `{"corrupt":0.3,"deadline_ms":10000}`,
		"duplicate":  `{"duplicate":0.3,"deadline_ms":10000}`,
		"mixed":      `{"drop":0.2,"corrupt":0.15,"duplicate":0.1,"deadline_ms":10000}`,
		"disconnect": `{"disconnect":0.02,"deadline_ms":10000}`,
		"lossy":      "lossy",
		"starved":    `{"drop":0.5,"max_resend":2,"deadline_ms":10000}`,
	}
}

// TestFaultInvariantSoundness is the PR's core invariant: under any fault
// schedule, a session either completes with a report identical to the
// fault-free run — verdict, witness, bits, rounds — or fails typed with
// ErrSessionAborted. In particular no schedule ever yields an unsound
// verdict (a rejected triangle-free graph or a phantom witness), and no
// run hangs or leaks goroutines.
func TestFaultInvariantSoundness(t *testing.T) {
	goroutines := runtime.NumGoroutine()

	far, eps := FarGraph(256, 8, 0.25, 3)
	free := BipartiteGraph(256, 6, 4)
	type instance struct {
		name string
		g    *Graph
		free bool
	}
	instances := []instance{{"far", far, false}, {"triangle-free", free, true}}

	for _, inst := range instances {
		for name, faults := range faultSpecsUnderTest() {
			for seed := uint64(1); seed <= 2; seed++ {
				cl, err := Split(inst.g, 4, SplitDisjoint, seed)
				if err != nil {
					t.Fatal(err)
				}
				opts := Options{Protocol: Interactive, Eps: eps, AvgDegree: inst.g.AvgDegree()}
				base, err := cl.Test(context.Background(), opts)
				if err != nil {
					t.Fatalf("%s/%s seed %d: fault-free run failed: %v", inst.name, name, seed, err)
				}
				opts.Faults = faults
				rep, err := cl.Test(context.Background(), opts)
				if err != nil {
					if !errors.Is(err, ErrSessionAborted) {
						t.Fatalf("%s/%s seed %d: faulted run failed untyped: %v", inst.name, name, seed, err)
					}
					continue
				}
				if rep.TriangleFree != base.TriangleFree || rep.Witness != base.Witness ||
					rep.Bits != base.Bits || rep.Rounds != base.Rounds {
					t.Fatalf("%s/%s seed %d: completed faulted run diverged from fault-free:\nbase %+v\ngot  %+v",
						inst.name, name, seed, base, rep)
				}
				if inst.free && !rep.TriangleFree {
					t.Fatalf("%s/%s seed %d: UNSOUND — triangle-free graph rejected", inst.name, name, seed)
				}
				if !rep.TriangleFree && !inst.g.IsTriangle(rep.Witness.A, rep.Witness.B, rep.Witness.C) {
					t.Fatalf("%s/%s seed %d: UNSOUND — phantom witness %v", inst.name, name, seed, rep.Witness)
				}
				if rep.WireBytes <= base.WireBytes {
					t.Fatalf("%s/%s seed %d: faulted wire bytes %d not above fault-free %d (envelope overhead missing)",
						inst.name, name, seed, rep.WireBytes, base.WireBytes)
				}
			}
		}
	}

	// No run above may leak goroutines, completed or aborted.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > goroutines {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("faulted sessions leaked goroutines: %d, started with %d\n%s",
				runtime.NumGoroutine(), goroutines, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFaultReproducibility pins the replay contract: the same fault seed
// replays the identical outcome — including identical retransmit and loss
// counters — and the counters actually move under loss.
func TestFaultReproducibility(t *testing.T) {
	g, eps := FarGraph(256, 8, 0.25, 5)
	run := func(faults string) (Report, error) {
		cl, err := Split(g, 4, SplitDisjoint, 11)
		if err != nil {
			t.Fatal(err)
		}
		return cl.Test(context.Background(),
			Options{Protocol: Interactive, Eps: eps, AvgDegree: g.AvgDegree(), Faults: faults})
	}
	const spec = `{"seed":909,"drop":0.2,"corrupt":0.1,"duplicate":0.1}`
	a, errA := run(spec)
	b, errB := run(spec)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("same fault seed diverged: %v vs %v", errA, errB)
	}
	if errA != nil {
		if errB.Error() != errA.Error() {
			t.Fatalf("same fault seed, different aborts: %q vs %q", errA, errB)
		}
		t.Skip("schedule aborts this run; reproducibility of the abort is pinned above")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same fault seed, different reports:\n%+v\n%+v", a, b)
	}
	if a.Retransmits == 0 || a.FramesLost == 0 {
		t.Fatalf("loss at these rates must show in the resilience counters: %+v", a)
	}
	if a.Retransmits != a.FramesLost {
		t.Fatalf("completed run: every loss is retransmitted exactly once, got %d/%d",
			a.Retransmits, a.FramesLost)
	}
}

// TestFaultsOnEveryTransport runs a faulted session over each transport
// selector, pinning that the fault layer wraps any inner dialer and that
// verdict/bits stay transport-independent even under loss.
func TestFaultsOnEveryTransport(t *testing.T) {
	g, eps := FarGraph(200, 8, 0.25, 6)
	var want *Report
	for _, tr := range []Transport{TransportInProcess, TransportPipe, TransportTCP, TransportWAN} {
		cl, err := Split(g, 3, SplitDisjoint, 21)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := cl.Test(context.Background(), Options{
			Protocol: Interactive, Eps: eps, AvgDegree: g.AvgDegree(),
			Transport: tr, Faults: `{"seed":4242,"drop":0.1,"corrupt":0.05,"duplicate":0.05}`,
		})
		if err != nil {
			t.Fatalf("transport %d: %v", int(tr), err)
		}
		if want == nil {
			want = &rep
			continue
		}
		if rep.TriangleFree != want.TriangleFree || rep.Witness != want.Witness || rep.Bits != want.Bits {
			t.Fatalf("transport %d diverged under faults: %+v vs %+v", int(tr), rep, *want)
		}
	}
}

// TestFaultsBadSpecRejected pins option validation at the facade.
func TestFaultsBadSpecRejected(t *testing.T) {
	g, _ := FarGraph(64, 4, 0.25, 7)
	cl, err := Split(g, 3, SplitDisjoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"bogus", `{"drop":2}`, `{"what":1}`} {
		if _, err := cl.Test(context.Background(), Options{Protocol: Interactive, Eps: 0.25, Faults: bad}); err == nil {
			t.Fatalf("fault spec %q accepted", bad)
		}
	}
}
