module tricomm

go 1.24
