package tricomm_test

// Cross-surface scenario parity: every scenario family must be reachable
// through the Go API (tricomm.RunScenario), the harness/benchtable path
// (harness.RunScenarioTrials), and the tricommd service — with seed-exact
// verdict, witness, bits, and WireBytes across all three. The pinned
// literal values below additionally freeze the chung-lu case against the
// current construction, so silent generator drift fails loudly.

import (
	"context"
	"testing"
	"time"

	"tricomm"
	"tricomm/internal/harness"
	"tricomm/internal/harness/runner"
	"tricomm/internal/service"
)

type parityCase struct {
	name     string
	spec     string
	protocol string
	k        int
	scheme   string
	eps      float64
}

var parityCases = []parityCase{
	{name: "chung-lu/sim-oblivious", spec: "chung-lu", protocol: "sim-oblivious", k: 4, scheme: "disjoint", eps: 0.2},
	{name: "sbm/sim-oblivious", spec: `{"family":"sbm","n":512,"blocks":8,"p_in":0.1,"p_out":0.004}`,
		protocol: "sim-oblivious", k: 4, scheme: "disjoint", eps: 0.2},
	{name: "behrend-blowup/exact", spec: `{"family":"behrend-blowup","m":8,"blowup":2}`,
		protocol: "exact", k: 3, scheme: "byvertex", eps: 0.2},
	{name: "dup-adversary/interactive", spec: `{"family":"dup-adversary","n":512,"d":8,"eps":0.2,"k":4,"dup":0.75}`,
		protocol: "interactive", k: 4, scheme: "disjoint", eps: 0.2},
	{name: "far/duplicate-split", spec: `{"family":"far","n":256,"d":8,"eps":0.25}`,
		protocol: "sim-oblivious", k: 5, scheme: "duplicate", eps: 0.25},
}

const (
	parityBaseSeed = 5
	parityTrials   = 2
)

// facadeTrial runs one trial through tricomm.RunScenario with the same
// derivation the harness and service use.
func facadeTrial(t *testing.T, pc parityCase, trial int) tricomm.Report {
	t.Helper()
	proto, err := tricomm.ParseProtocol(pc.protocol)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := tricomm.ParseSplitScheme(pc.scheme)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tricomm.RunScenario(context.Background(),
		tricomm.Options{Scenario: pc.spec, Protocol: proto, Eps: pc.eps},
		pc.k, scheme, runner.TrialSeed(parityBaseSeed, trial))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestScenarioParityAcrossSurfaces(t *testing.T) {
	srv := service.New(service.Config{Workers: 2})
	defer srv.Close()
	ctx := context.Background()

	for _, pc := range parityCases {
		t.Run(pc.name, func(t *testing.T) {
			// Surface 1: the harness/benchtable path.
			hTrials, err := harness.RunScenarioTrials(ctx,
				harness.RunConfig{Seed: parityBaseSeed, Jobs: 2},
				harness.ScenarioConfig{Spec: pc.spec, K: pc.k, Scheme: pc.scheme,
					Protocol: pc.protocol, Eps: pc.eps}, parityTrials)
			if err != nil {
				t.Fatal(err)
			}

			// Surface 2: a tricommd service job.
			ji, err := srv.Submit(service.JobSpec{
				Graph:     graphSpecFromScenario(t, pc.spec),
				K:         pc.k,
				Partition: pc.scheme,
				Protocol:  pc.protocol,
				Eps:       pc.eps,
				Trials:    parityTrials,
				Seed:      parityBaseSeed,
			})
			if err != nil {
				t.Fatal(err)
			}
			fin := waitJob(t, srv, ji.ID)

			// Surface 3: the facade, one call per trial.
			for trial := 0; trial < parityTrials; trial++ {
				rep := facadeTrial(t, pc, trial)
				h := hTrials[trial]
				s := fin.Results[trial]

				if h.Seed != runner.TrialSeed(parityBaseSeed, trial) || s.Seed != h.Seed {
					t.Fatalf("trial %d: seed drift (harness %d, service %d)", trial, h.Seed, s.Seed)
				}
				if rep.TriangleFree != h.TriangleFree || rep.TriangleFree != s.TriangleFree {
					t.Fatalf("trial %d: verdict mismatch: facade %v harness %v service %v",
						trial, rep.TriangleFree, h.TriangleFree, s.TriangleFree)
				}
				if !rep.TriangleFree {
					if rep.Witness != h.Witness {
						t.Fatalf("trial %d: witness mismatch: facade %v harness %v", trial, rep.Witness, h.Witness)
					}
					if s.Witness == nil || *s.Witness != [3]int{rep.Witness.A, rep.Witness.B, rep.Witness.C} {
						t.Fatalf("trial %d: service witness %v != %v", trial, s.Witness, rep.Witness)
					}
				}
				if rep.Bits != h.Bits || rep.Bits != s.Bits {
					t.Fatalf("trial %d: bits mismatch: facade %d harness %d service %d",
						trial, rep.Bits, h.Bits, s.Bits)
				}
				if rep.WireBytes != h.WireBytes || rep.WireBytes != s.WireBytes {
					t.Fatalf("trial %d: wire bytes mismatch: facade %d harness %d service %d",
						trial, rep.WireBytes, h.WireBytes, s.WireBytes)
				}
				if rep.Rounds != h.Rounds || rep.Rounds != s.Rounds {
					t.Fatalf("trial %d: rounds mismatch: facade %d harness %d service %d",
						trial, rep.Rounds, h.Rounds, s.Rounds)
				}
			}
		})
	}
}

// graphSpecFromScenario converts a scenario argument into the service's
// GraphSpec through the public parse path.
func graphSpecFromScenario(t *testing.T, spec string) service.GraphSpec {
	t.Helper()
	gs, err := service.ParseGraphSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

func waitJob(t *testing.T, srv *service.Server, id string) service.JobInfo {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		ji, err := srv.Job(id, true)
		if err != nil {
			t.Fatal(err)
		}
		if ji.State == service.StateDone {
			return ji
		}
		if ji.State == service.StateFailed {
			t.Fatalf("job failed: %s", ji.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestScenarioGoldenValues freezes one scenario end to end: if the
// chung-lu construction, the split, or the tester's transcript drifts,
// these literals catch it. Captured from the current implementation via
// the facade path (which the parity test above ties to the other two
// surfaces).
func TestScenarioGoldenValues(t *testing.T) {
	rep := facadeTrial(t, parityCases[0], 0) // chung-lu / sim-oblivious
	const (
		wantFree = false
		wantBits = int64(101854)
	)
	wantWitness := tricomm.Triangle{A: 0, B: 1, C: 2}
	if rep.TriangleFree != wantFree || rep.Bits != wantBits || rep.Witness != wantWitness {
		t.Fatalf("golden drift: got free=%v bits=%d witness=%v, want free=%v bits=%d witness=%v",
			rep.TriangleFree, rep.Bits, rep.Witness, wantFree, wantBits, wantWitness)
	}
}
