package tricomm

// Benchmark harness: one benchmark per row of the paper's Table 1 (its
// only results exhibit; there are no figures) plus the in-text claims.
// Each benchmark runs the protocol end to end on a fresh seeded instance
// per iteration and reports the measured communication as the custom
// metric "bits/op" — wall-clock time is simulation overhead, communication
// is the quantity the paper bounds. cmd/benchtable regenerates the full
// sweep tables recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tricomm/internal/comm"
	"tricomm/internal/lowerbound"
	"tricomm/internal/protocol"
	"tricomm/internal/streamred"
	"tricomm/internal/xrand"
)

// benchCluster builds a fresh ε-far instance and cluster per iteration.
func benchCluster(b *testing.B, n int, d float64, k int, seed uint64) *Cluster {
	b.Helper()
	g, _ := FarGraph(n, d, 0.2, int64(seed))
	cluster, err := Split(g, k, SplitDisjoint, seed)
	if err != nil {
		b.Fatal(err)
	}
	return cluster
}

func reportBits(b *testing.B, totalBits int64) {
	b.Helper()
	b.ReportMetric(float64(totalBits)/float64(b.N), "bits/op")
}

// BenchmarkTable1_Unrestricted measures row 1: the interactive tester,
// Õ(k·(nd)^{1/4} + k²) bits.
func BenchmarkTable1_Unrestricted(b *testing.B) {
	b.ReportAllocs()
	const n, d, k = 1024, 8.0, 4
	var bits int64
	for i := 0; i < b.N; i++ {
		cluster := benchCluster(b, n, d, k, uint64(i))
		rep, err := cluster.Test(context.Background(), Options{
			Protocol: Interactive, Eps: 0.2, AvgDegree: d,
		})
		if err != nil {
			b.Fatal(err)
		}
		bits += rep.Bits
	}
	reportBits(b, bits)
}

// BenchmarkTable1_SimLow measures row 2 (low-degree side): Õ(k·√n).
func BenchmarkTable1_SimLow(b *testing.B) {
	b.ReportAllocs()
	const n, d, k = 4096, 8.0, 8
	var bits int64
	for i := 0; i < b.N; i++ {
		cluster := benchCluster(b, n, d, k, uint64(i))
		rep, err := cluster.Test(context.Background(), Options{
			Protocol: SimultaneousLow, Eps: 0.2, AvgDegree: d,
		})
		if err != nil {
			b.Fatal(err)
		}
		bits += rep.Bits
	}
	reportBits(b, bits)
}

// BenchmarkTable1_SimHigh measures row 2 (high-degree side):
// Õ(k·(nd)^{1/3}).
func BenchmarkTable1_SimHigh(b *testing.B) {
	b.ReportAllocs()
	const n, k = 4096, 8
	d := 2 * math.Sqrt(n)
	var bits int64
	for i := 0; i < b.N; i++ {
		cluster := benchCluster(b, n, d, k, uint64(i))
		rep, err := cluster.Test(context.Background(), Options{
			Protocol: SimultaneousHigh, Eps: 0.2, AvgDegree: d,
		})
		if err != nil {
			b.Fatal(err)
		}
		bits += rep.Bits
	}
	reportBits(b, bits)
}

// BenchmarkTable1_SimOblivious measures §3.4.3: the degree-oblivious
// one-round tester.
func BenchmarkTable1_SimOblivious(b *testing.B) {
	b.ReportAllocs()
	const n, d, k = 4096, 8.0, 8
	var bits int64
	for i := 0; i < b.N; i++ {
		cluster := benchCluster(b, n, d, k, uint64(i))
		rep, err := cluster.Test(context.Background(), Options{
			Protocol: SimultaneousOblivious, Eps: 0.2,
		})
		if err != nil {
			b.Fatal(err)
		}
		bits += rep.Bits
	}
	reportBits(b, bits)
}

// BenchmarkTable1_OneWayProbe measures rows 3/5: the one-way star
// strategy at the n^{1/4}-scale budget on µ (reported metric: success
// rate at that budget).
func BenchmarkTable1_OneWayProbe(b *testing.B) {
	b.ReportAllocs()
	const nPart, gamma, budget = 250, 2.0, 160
	wins := 0
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: nPart, Gamma: gamma}, rng)
		res, err := lowerbound.OneWayProbe{BudgetBits: budget}.Run(inst, xrand.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if res.Success {
			wins++
		}
	}
	b.ReportMetric(float64(wins)/float64(b.N), "success-rate")
	b.ReportMetric(budget, "budget-bits")
}

// BenchmarkTable1_SimProbe measures row 4: the simultaneous window
// strategy at the same budget, whose success rate is far lower — the
// measured separation.
func BenchmarkTable1_SimProbe(b *testing.B) {
	b.ReportAllocs()
	const nPart, gamma, budget = 250, 2.0, 160
	wins := 0
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: nPart, Gamma: gamma}, rng)
		res, err := lowerbound.SimProbe{BudgetBits: budget, Gamma: gamma}.Run(inst, xrand.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if res.Success {
			wins++
		}
	}
	b.ReportMetric(float64(wins)/float64(b.N), "success-rate")
	b.ReportMetric(budget, "budget-bits")
}

// BenchmarkTable1_Symmetrization measures the Theorem 4.15 accounting:
// derived one-way cost ≈ (2/k)·simultaneous cost.
func BenchmarkTable1_Symmetrization(b *testing.B) {
	b.ReportAllocs()
	const k = 8
	rng := rand.New(rand.NewSource(5))
	inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: 80, Gamma: 2}, rng)
	var derived, total int64
	for i := 0; i < b.N; i++ {
		emb := lowerbound.Embed3ToK(inst.Alice, inst.Bob, inst.Charlie, k, rng)
		cfg := comm.Config{N: inst.N(), Inputs: emb.Inputs, Shared: xrand.New(uint64(i))}
		res, err := protocol.SimLow{Eps: 0.1, AvgDegree: inst.G.AvgDegree(), Delta: 0.1,
			Tag: fmt.Sprintf("bench/%d", i)}.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		derived += lowerbound.SimulateOneWayCost(res.Stats.PerPlayer, emb)
		total += res.Stats.TotalBits
	}
	reportBits(b, total)
	if total > 0 {
		b.ReportMetric(float64(derived)/float64(total), "derived/total")
		b.ReportMetric(2.0/k, "predicted-2/k")
	}
}

// BenchmarkTable1_BHM measures row 6: solving Boolean Hidden Matching
// through the reduction with the Õ(k√n) tester.
func BenchmarkTable1_BHM(b *testing.B) {
	b.ReportAllocs()
	const nBHM = 256
	var bits int64
	correct := 0
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		allZero := i%2 == 0
		inst := lowerbound.SampleBHM(nBHM, allZero, rng)
		red := lowerbound.Reduce(inst)
		cfg := comm.Config{N: red.G.N(), Inputs: red.Inputs(), Shared: xrand.New(uint64(i))}
		res, err := protocol.SimLow{Eps: 0.2, AvgDegree: red.G.AvgDegree(), Delta: 0.1,
			Tag: fmt.Sprintf("bhm/%d", i)}.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		bits += res.Stats.TotalBits
		if lowerbound.DecodeAnswer(res.Found()) == allZero || (!allZero && !res.Found()) {
			correct++
		}
	}
	reportBits(b, bits)
	b.ReportMetric(float64(correct)/float64(b.N), "decode-accuracy")
}

// BenchmarkSummary_TestingVsExact measures the §5 headline: testing vs
// exact detection on the same instances.
func BenchmarkSummary_TestingVsExact(b *testing.B) {
	b.ReportAllocs()
	const n, d, k = 2048, 16.0, 4
	var exactBits, testBits int64
	for i := 0; i < b.N; i++ {
		cluster := benchCluster(b, n, d, k, uint64(i))
		ctx := context.Background()
		ex, err := cluster.Test(ctx, Options{Protocol: Exact})
		if err != nil {
			b.Fatal(err)
		}
		te, err := cluster.Test(ctx, Options{Protocol: SimultaneousOblivious, Eps: 0.2})
		if err != nil {
			b.Fatal(err)
		}
		exactBits += ex.Bits
		testBits += te.Bits
	}
	reportBits(b, testBits)
	if testBits > 0 {
		b.ReportMetric(float64(exactBits)/float64(testBits), "exact/testing")
	}
}

// BenchmarkAblation_Blackboard measures Theorem 3.23: the blackboard
// variant against the coordinator-model interactive tester.
func BenchmarkAblation_Blackboard(b *testing.B) {
	b.ReportAllocs()
	const n, d, k = 1024, 8.0, 8
	var coordBits, boardBits int64
	for i := 0; i < b.N; i++ {
		g, _ := FarGraph(n, d, 0.2, int64(i))
		cluster, err := Split(g, k, SplitDuplicate, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		rc, err := cluster.Test(ctx, Options{Protocol: Interactive, Eps: 0.2, AvgDegree: d})
		if err != nil {
			b.Fatal(err)
		}
		rb, err := cluster.Test(ctx, Options{Protocol: InteractiveBlackboard, Eps: 0.2, AvgDegree: d})
		if err != nil {
			b.Fatal(err)
		}
		coordBits += rc.Bits
		boardBits += rb.Bits
	}
	reportBits(b, boardBits)
	if boardBits > 0 {
		b.ReportMetric(float64(coordBits)/float64(boardBits), "coord/board")
	}
}

// BenchmarkBlocks_ApproxDegree measures the Theorem 3.1 building block
// under heavy duplication.
func BenchmarkBlocks_ApproxDegree(b *testing.B) {
	b.ReportAllocs()
	g := RandomGraph(2048, 32, 3)
	cluster, err := Split(g, 8, SplitAll, 11)
	if err != nil {
		b.Fatal(err)
	}
	_ = cluster
	var bits int64
	for i := 0; i < b.N; i++ {
		rep, err := cluster.Test(context.Background(), Options{
			Protocol: SimultaneousOblivious, Eps: 0.2,
		})
		if err != nil {
			b.Fatal(err)
		}
		bits += rep.Bits
	}
	reportBits(b, bits)
}

// BenchmarkAblation_NoDup measures Corollaries 3.25/3.27: disjoint inputs
// vs maximal duplication for the one-round testers.
func BenchmarkAblation_NoDup(b *testing.B) {
	b.ReportAllocs()
	const n, d, k = 4096, 8.0, 8
	g, _ := FarGraph(n, d, 0.2, 7)
	var dupBits, disBits int64
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		cd, err := Split(g, k, SplitAll, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		rd, err := cd.Test(ctx, Options{Protocol: SimultaneousLow, Eps: 0.2, AvgDegree: d})
		if err != nil {
			b.Fatal(err)
		}
		cx, err := Split(g, k, SplitDisjoint, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		rx, err := cx.Test(ctx, Options{Protocol: SimultaneousLow, Eps: 0.2, AvgDegree: d})
		if err != nil {
			b.Fatal(err)
		}
		dupBits += rd.Bits
		disBits += rx.Bits
	}
	reportBits(b, disBits)
	if disBits > 0 {
		b.ReportMetric(float64(dupBits)/float64(disBits), "dup/disjoint")
	}
}

// BenchmarkSessionReuse measures the engine's cached-view win: repeated
// Test calls against one cluster through a Session (views built once)
// versus the pre-engine path that rebuilds every player view per call
// (protocol.Run over a throwaway comm.Config). Protocol work and
// communication are identical in both arms; the gap is pure view
// construction.
func BenchmarkSessionReuse(b *testing.B) {
	b.ReportAllocs()
	const n, d, k = 16384, 8.0, 8
	g, _ := FarGraph(n, d, 0.2, 3)
	opts := Options{Protocol: SimultaneousLow, Eps: 0.2, AvgDegree: d}
	ctx := context.Background()

	b.Run("cached-views", func(b *testing.B) {
		b.ReportAllocs()
		cluster, err := Split(g, k, SplitDisjoint, 5)
		if err != nil {
			b.Fatal(err)
		}
		s, err := cluster.Session(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Test(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild-views", func(b *testing.B) {
		b.ReportAllocs()
		cluster, err := Split(g, k, SplitDisjoint, 5)
		if err != nil {
			b.Fatal(err)
		}
		p := protocol.SimLow{Eps: 0.2, AvgDegree: d, Delta: 0.1}
		cfg := comm.Config{N: cluster.N(), Inputs: cluster.inputs, Shared: cluster.shared}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(ctx, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreaming_Probe measures the §4.2.2 corollary: success of the
// space-bounded streaming detector at the n^{1/4} space scale.
func BenchmarkStreaming_Probe(b *testing.B) {
	b.ReportAllocs()
	const nPart, gamma, capArms = 250, 2.0, 32
	wins := 0
	var space int
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: nPart, Gamma: gamma}, rng)
		det := streamred.NewStarDetector(xrand.New(uint64(i)), inst.NPart, capArms, inst.N())
		space = det.SpaceBits()
		stream := streamred.Stream{}
		stream.Edges = append(stream.Edges, inst.Alice...)
		stream.Edges = append(stream.Edges, inst.Bob...)
		stream.Edges = append(stream.Edges, inst.Charlie...)
		if e, ok := streamred.Drive(det, stream); ok && inst.IsValidOutput(e) {
			wins++
		}
	}
	b.ReportMetric(float64(wins)/float64(b.N), "success-rate")
	b.ReportMetric(float64(space), "space-bits")
}
