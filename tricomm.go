// Package tricomm is a library for testing triangle-freeness of a graph
// whose edges are partitioned among k players in the number-in-hand
// multiparty communication model, implementing the protocols of
//
//	Fischer, Gershtein, Oshman: "On the Multiparty Communication
//	Complexity of Testing Triangle-Freeness", PODC 2017
//	(arXiv:1705.08438).
//
// The package offers a small, stable facade over the internal machinery:
//
//   - construct or generate a graph (NewBuilder, RandomGraph, FarGraph,
//     BipartiteGraph);
//   - split it among players (Split) or assemble a Cluster from inputs you
//     already hold (NewCluster);
//   - run a tester (Cluster.Test) in the coordinator, blackboard, or
//     simultaneous model, with bit-exact communication accounting.
//
// All testers have one-sided error: a Report with a witness triangle is
// always correct; a "triangle-free" verdict errs with small probability
// only when the graph is ε-far from triangle-free.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-reproduction results; the experiment harness behind them is
// runnable via cmd/benchtable.
package tricomm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/partition"
	"tricomm/internal/protocol"
	"tricomm/internal/scenario"
	"tricomm/internal/transport"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// Edge is an undirected edge between vertex ids in [0, n).
type Edge = wire.Edge

// Triangle is a vertex triple forming a triangle (canonical order A<B<C).
type Triangle = graph.Triangle

// Graph is an immutable simple undirected graph.
type Graph = graph.Graph

// Builder accumulates edges into a Graph.
type Builder = graph.Builder

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// IntraWorkers resolves an intra-trial worker-count request for the
// parallel graph kernels (Graph.CountTrianglesN, DisjointVeeCountN,
// FindTriangleN): an explicit n > 0 wins, otherwise the
// TRICOMM_INTRA_WORKERS environment variable, otherwise 1. The parallel
// kernels are bit-identical to their serial forms at any worker count,
// so the knob only trades wall-clock for cores — it can never change a
// verdict, witness, or count.
func IntraWorkers(n int) int { return graph.IntraWorkers(n) }

// RandomGraph samples an Erdős–Rényi graph with expected average degree d.
func RandomGraph(n int, d float64, seed int64) *Graph {
	return graph.RandomAvgDegree(n, d, rand.New(rand.NewSource(seed)))
}

// BipartiteGraph samples a triangle-free bipartite random graph on n
// vertices with expected average degree d.
func BipartiteGraph(n int, d float64, seed int64) *Graph {
	return graph.BipartiteAvgDegree(n, d, rand.New(rand.NewSource(seed)))
}

// FarGraph samples a graph on n vertices with average degree ≈ d that is
// certifiably eps-far from triangle-free (eps ≤ 1/3). The second return
// value is the certified farness (≥ eps).
func FarGraph(n int, d, eps float64, seed int64) (*Graph, float64) {
	fg := graph.FarWithDegree(graph.FarParams{N: n, D: d, Eps: eps},
		rand.New(rand.NewSource(seed)))
	return fg.G, fg.CertEps
}

// ScenarioInstance is an instance generated from a declarative scenario
// spec, together with its certificate.
type ScenarioInstance struct {
	// Graph is the built instance.
	Graph *Graph
	// Planted is a family of pairwise edge-disjoint triangles (nil when
	// the family carries no farness certificate).
	Planted []Triangle
	// CertEps is the certified farness |Planted| / |E| (0 without a
	// certificate).
	CertEps float64
	// TriangleFree reports the construction guarantees no triangle.
	TriangleFree bool
	// Players, when non-nil, is the family-prescribed per-player edge
	// assignment; RunScenario uses it instead of the split scheme.
	Players [][]Edge
	// Spec is the canonical JSON spec that regenerates this instance with
	// the same seed.
	Spec string
}

// GenerateScenario builds the instance a scenario spec declares — spec is
// a registered family name or a JSON spec object — deterministically from
// the seed. The same (spec, seed) pair always yields the same instance,
// across the Go API, the CLIs, and the tricommd service.
func GenerateScenario(spec string, seed int64) (ScenarioInstance, error) {
	sp, err := scenario.Parse(spec)
	if err != nil {
		return ScenarioInstance{}, err
	}
	inst, err := scenario.Build(sp, rand.New(rand.NewSource(seed)))
	if err != nil {
		return ScenarioInstance{}, err
	}
	return ScenarioInstance{
		Graph:        inst.G,
		Planted:      inst.Planted,
		CertEps:      inst.CertEps,
		TriangleFree: inst.TriangleFree,
		Players:      inst.Players,
		Spec:         inst.Spec.JSON(),
	}, nil
}

// ScenarioNames returns the registered scenario family names, sorted.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioUsage returns the scenario catalog as usage text (one family
// per entry with its parameters), generated from the registry.
func ScenarioUsage() string { return scenario.Usage() }

// Cluster builds the cluster a scenario instance declares: the
// family-prescribed per-player assignment when there is one, otherwise
// the given split of the generated graph.
func (si ScenarioInstance) Cluster(k int, scheme SplitScheme, seed uint64) (*Cluster, error) {
	if si.Players != nil {
		return NewCluster(si.Graph.N(), si.Players, seed)
	}
	return Split(si.Graph, k, scheme, seed)
}

// RunScenario generates the instance opts.Scenario declares (seeded
// deterministically), splits it among k players, and runs the selected
// tester — the one-call path from a declarative spec to a Report. It is
// seed-exact with the tricommd service: a job with the same scenario,
// options, and per-trial seed produces the identical verdict, bit count,
// and wire traffic.
func RunScenario(ctx context.Context, opts Options, k int, scheme SplitScheme, seed uint64) (Report, error) {
	if opts.Scenario == "" {
		return Report{}, errors.New("tricomm: RunScenario needs Options.Scenario")
	}
	si, err := GenerateScenario(opts.Scenario, int64(seed))
	if err != nil {
		return Report{}, err
	}
	cl, err := si.Cluster(k, scheme, seed)
	if err != nil {
		return Report{}, err
	}
	return cl.Test(ctx, opts)
}

// SplitScheme selects how a graph's edges are divided among players.
type SplitScheme int

// Split schemes.
const (
	// SplitDisjoint assigns each edge to one uniformly random player.
	SplitDisjoint SplitScheme = iota + 1
	// SplitDuplicate assigns each edge one random holder and replicates it
	// to every other player with probability 1/2 (the duplication-heavy
	// regime the paper's primitives are designed for).
	SplitDuplicate
	// SplitByVertex routes all edges with the same lower endpoint to the
	// same player (locality-skewed).
	SplitByVertex
	// SplitAll gives every player the entire edge set.
	SplitAll
)

// SplitSchemeNames returns the canonical split-scheme names accepted by
// ParseSplitScheme, in declaration order. CLI usage text and error
// messages are generated from this list, so it is the one place the
// vocabulary lives.
func SplitSchemeNames() []string {
	return []string{"disjoint", "duplicate", "byvertex", "all"}
}

// ParseSplitScheme maps the CLI/API names onto SplitScheme values.
func ParseSplitScheme(s string) (SplitScheme, error) {
	switch s {
	case "", "disjoint":
		return SplitDisjoint, nil
	case "duplicate":
		return SplitDuplicate, nil
	case "byvertex":
		return SplitByVertex, nil
	case "all":
		return SplitAll, nil
	default:
		return 0, fmt.Errorf("tricomm: unknown split scheme %q (valid: %s)",
			s, strings.Join(SplitSchemeNames(), ", "))
	}
}

func (s SplitScheme) partitioner() (partition.Partitioner, error) {
	switch s {
	case SplitDisjoint:
		return partition.Disjoint{}, nil
	case SplitDuplicate:
		return partition.Duplicate{Q: 0.5}, nil
	case SplitByVertex:
		return partition.ByVertex{}, nil
	case SplitAll:
		return partition.All{}, nil
	default:
		return nil, fmt.Errorf("tricomm: unknown split scheme %d", int(s))
	}
}

// Cluster is k players holding shares of an n-vertex graph plus the
// shared randomness — everything needed to run a protocol. The cluster
// lazily builds one comm.Topology (the players' local graph views) and
// reuses it across every Test call and Session, so repeated tests pay the
// view-construction cost once.
type Cluster struct {
	n      int
	inputs [][]Edge
	shared *xrand.Shared
	seed   uint64 // cluster seed; also seeds fault schedules when a spec pins none

	topOnce sync.Once
	top     *comm.Topology
	topErr  error
}

// topology returns the cluster's cached reusable topology.
func (c *Cluster) topology() (*comm.Topology, error) {
	c.topOnce.Do(func() {
		c.top, c.topErr = comm.NewTopology(c.n, c.inputs, c.shared)
	})
	return c.top, c.topErr
}

// NewCluster assembles a cluster from explicit per-player edge sets over
// the vertex universe [0, n). The protocol-level guarantee is about the
// union of the inputs.
func NewCluster(n int, inputs [][]Edge, seed uint64) (*Cluster, error) {
	if n < 0 {
		return nil, fmt.Errorf("tricomm: negative vertex count %d", n)
	}
	if len(inputs) == 0 {
		return nil, errors.New("tricomm: a cluster needs at least one player")
	}
	for j, in := range inputs {
		for _, e := range in {
			if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
				return nil, fmt.Errorf("tricomm: player %d edge %v out of range [0,%d)", j, e, n)
			}
		}
	}
	return &Cluster{n: n, inputs: inputs, shared: xrand.New(seed), seed: seed}, nil
}

// Split divides g's edges among k players under the given scheme.
func Split(g *Graph, k int, scheme SplitScheme, seed uint64) (*Cluster, error) {
	pt, err := scheme.partitioner()
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("tricomm: need at least one player, got %d", k)
	}
	shared := xrand.New(seed)
	p := pt.Split(g, k, shared)
	return &Cluster{n: g.N(), inputs: p.Inputs, shared: shared, seed: seed}, nil
}

// K reports the number of players.
func (c *Cluster) K() int { return len(c.inputs) }

// N reports the vertex universe size.
func (c *Cluster) N() int { return c.n }

// Union materializes the union graph ⋃_j E_j (for inspection; protocols
// never use it).
func (c *Cluster) Union() *Graph {
	b := graph.NewBuilder(c.n)
	for _, in := range c.inputs {
		for _, e := range in {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

// Protocol selects the tester run by Cluster.Test.
type Protocol int

// Available protocols.
const (
	// Auto picks SimOblivious — the one-round protocol that needs no
	// knowledge of the average degree.
	Auto Protocol = iota
	// Interactive is the unrestricted coordinator-model tester,
	// Õ(k·(nd)^{1/4} + k²) bits (§3.3).
	Interactive
	// InteractiveBlackboard is its blackboard-model variant (Thm 3.23).
	InteractiveBlackboard
	// SimultaneousLow is the one-round tester for d = O(√n), Õ(k√n) bits.
	SimultaneousLow
	// SimultaneousHigh is the one-round tester for d = Ω(√n),
	// Õ(k·(nd)^{1/3}) bits.
	SimultaneousHigh
	// SimultaneousOblivious is the one-round degree-oblivious tester
	// (Alg 11).
	SimultaneousOblivious
	// Exact is the deterministic send-everything baseline (Θ(k·nd·log n)).
	Exact
)

// Transport selects what carries the coordinator-model sessions of a test
// run. Verdicts, witnesses, bits, rounds, and phase attribution are
// transport-independent (pinned by the invariant suite); transports differ
// only in wire mechanics and the Report.WireBytes timing on error paths.
type Transport int

// Available transports.
const (
	// TransportInProcess runs sessions over in-process channels — the
	// zero-copy default.
	TransportInProcess Transport = iota
	// TransportPipe runs sessions over synchronous net.Pipe connections.
	TransportPipe
	// TransportTCP runs sessions over real TCP loopback sockets; every
	// message is framed and crosses the kernel.
	TransportTCP
	// TransportWAN runs sessions over the simulated wide-area transport
	// with deterministic latency, bandwidth, and jitter injection.
	TransportWAN
)

// dialer maps the transport selector to its implementation.
func (t Transport) dialer() (transport.Dialer, error) {
	switch t {
	case TransportInProcess:
		return transport.Chan{}, nil
	case TransportPipe:
		return transport.Net{}, nil
	case TransportTCP:
		return transport.Net{TCP: true}, nil
	case TransportWAN:
		return transport.WAN{
			Latency:   100 * time.Microsecond,
			Jitter:    100 * time.Microsecond,
			Bandwidth: 256 << 20, // 256 MB/s
			Seed:      1,
		}, nil
	default:
		return nil, fmt.Errorf("tricomm: unknown transport %d", int(t))
	}
}

// TransportNames returns the canonical transport names accepted by
// ParseTransport, in declaration order (the generated-usage counterpart
// of SplitSchemeNames).
func TransportNames() []string {
	return []string{"chan", "pipe", "tcp", "wan"}
}

// ParseTransport maps the CLI/API names onto Transport values.
func ParseTransport(s string) (Transport, error) {
	switch s {
	case "", "chan", "in-process":
		return TransportInProcess, nil
	case "pipe":
		return TransportPipe, nil
	case "tcp":
		return TransportTCP, nil
	case "wan":
		return TransportWAN, nil
	default:
		return 0, fmt.Errorf("tricomm: unknown transport %q (valid: %s)",
			s, strings.Join(TransportNames(), ", "))
	}
}

// ProtocolNames returns the canonical protocol names accepted by
// ParseProtocol, in declaration order (the generated-usage counterpart of
// SplitSchemeNames).
func ProtocolNames() []string {
	return []string{"interactive", "blackboard", "sim-low", "sim-high", "sim-oblivious", "exact"}
}

// ParseProtocol maps the CLI/API names onto Protocol values.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "", "auto", "sim-oblivious":
		return SimultaneousOblivious, nil
	case "interactive":
		return Interactive, nil
	case "blackboard":
		return InteractiveBlackboard, nil
	case "sim-low":
		return SimultaneousLow, nil
	case "sim-high":
		return SimultaneousHigh, nil
	case "exact":
		return Exact, nil
	default:
		return 0, fmt.Errorf("tricomm: unknown protocol %q (valid: %s)",
			s, strings.Join(ProtocolNames(), ", "))
	}
}

// Options configures a test run.
type Options struct {
	// Protocol selects the tester; Auto uses SimultaneousOblivious.
	Protocol Protocol
	// Eps is the farness parameter the tester targets (default 0.1).
	Eps float64
	// AvgDegree, if positive, is the known average degree of the union
	// graph (required by SimultaneousLow/High; optional for Interactive).
	AvgDegree float64
	// Delta is the error target for cap sizing (default 0.1).
	Delta float64
	// AssumeDisjoint declares that the players' inputs are pairwise
	// disjoint (no edge duplication), letting the Interactive protocol use
	// the cheaper deterministic degree estimation of Lemma 3.2.
	AssumeDisjoint bool
	// Transport selects what carries the coordinator-model sessions
	// (default in-process channels). Results are transport-independent.
	Transport Transport
	// Scenario declares the instance under test for RunScenario: a
	// registered family name or a JSON spec (see ScenarioUsage for the
	// catalog). Cluster.Test ignores it — the cluster already holds its
	// instance.
	Scenario string
	// Faults injects deterministic link faults into the run: "" / "off" /
	// "none" (no faults), a preset name ("lossy", "chaos"), or a JSON
	// transport.FaultSpec. With faults enabled every link is hardened with
	// checksummed envelopes and a bounded retransmit budget; a run either
	// completes with a report byte-identical in verdict/witness/bits to the
	// fault-free run, or fails with ErrSessionAborted.
	Faults string
	// IntraWorkers fans a single session's per-player hot loops (candidate
	// scans, sampling filters, arm closing, sketch scans) across up to this
	// many goroutines; ≤ 0 defers to TRICOMM_INTRA_WORKERS, default 1.
	// Reports are bit-identical at every width — the knob trades only wall
	// clock.
	IntraWorkers int
}

func (o Options) withDefaults() Options {
	if o.Eps <= 0 {
		o.Eps = 0.1
	}
	if o.Delta <= 0 {
		o.Delta = 0.1
	}
	return o
}

// Report is the outcome of a test run.
type Report struct {
	// TriangleFree is the verdict (one-sided: false means Witness is a
	// genuine triangle of the union graph).
	TriangleFree bool
	// Witness is the exhibited triangle when TriangleFree is false.
	Witness Triangle
	// Bits is the total communication used.
	Bits int64
	// PerPlayerBits is the per-player channel traffic.
	PerPlayerBits []int64
	// PhaseBits attributes bits to named protocol phases (e.g. "estimate",
	// "candidates", "edges" for the interactive tester). Phases are
	// disjoint — they sum to Bits — and come from the engine's per-phase
	// meter. Nil when the protocol declares no phases.
	PhaseBits map[string]int64
	// Rounds is the number of protocol rounds.
	Rounds int64
	// WireBytes is the framed wire traffic of the run's coordinator-model
	// sessions (headers included) — zero for purely simultaneous or
	// blackboard protocols, which exchange no transport frames. The engine
	// cross-checks it against Bits on every run (bytes ≥ link bits ÷ 8
	// within the framing overhead).
	WireBytes int64
	// Protocol names the tester that ran.
	Protocol string
	// Retransmits counts frames re-sent by the resilience layer after
	// injected loss; zero unless the run had Options.Faults enabled.
	Retransmits int64
	// FramesLost counts injected frame drops and corruptions; zero unless
	// the run had Options.Faults enabled.
	FramesLost int64
}

// ErrSessionAborted is returned by Test when injected link faults (see
// Options.Faults) kill the session: a hard disconnect, an exhausted
// retransmit budget, or a per-message deadline. It is the typed guarantee
// of the resilience layer — a faulted run never hangs, leaks, or reports
// an unsound verdict; it either completes or fails with this error.
var ErrSessionAborted = comm.ErrSessionAborted

// runner is a protocol bound to options, runnable over a reusable
// topology.
type runner interface {
	Name() string
	RunOn(ctx context.Context, top *comm.Topology) (protocol.Result, error)
}

// runner maps the selected protocol to its implementation.
func (o Options) runner() (runner, error) {
	switch o.Protocol {
	case Interactive:
		return protocol.Unrestricted{Eps: o.Eps, AvgDegree: o.AvgDegree,
			AssumeDisjoint: o.AssumeDisjoint}, nil
	case InteractiveBlackboard:
		return protocol.UnrestrictedBlackboard{Eps: o.Eps, AvgDegree: o.AvgDegree}, nil
	case SimultaneousLow:
		return protocol.SimLow{Eps: o.Eps, AvgDegree: o.AvgDegree, Delta: o.Delta}, nil
	case SimultaneousHigh:
		return protocol.SimHigh{Eps: o.Eps, AvgDegree: o.AvgDegree, Delta: o.Delta}, nil
	case Auto, SimultaneousOblivious:
		return protocol.SimOblivious{Eps: o.Eps, Delta: o.Delta}, nil
	case Exact:
		return protocol.ExactBaseline{}, nil
	default:
		return nil, fmt.Errorf("tricomm: unknown protocol %d", int(o.Protocol))
	}
}

func report(name string, res protocol.Result) Report {
	rep := Report{
		TriangleFree:  !res.Found(),
		Witness:       res.Triangle,
		Bits:          res.Stats.TotalBits,
		PerPlayerBits: res.Stats.PerPlayer,
		Rounds:        res.Stats.Rounds,
		WireBytes:     res.Stats.WireBytes,
		Protocol:      name,
		Retransmits:   res.Stats.Retransmits,
		FramesLost:    res.Stats.FramesLost,
	}
	// The engine meter's phase counters are disjoint by construction
	// (every bit lands in exactly the phase active when it was sent),
	// unlike the protocol-level Result.Phases, which keeps the paper's
	// overlapping aggregates (e.g. "buckets" = "candidates" + "edges")
	// for the experiment tables.
	if len(res.Stats.Phases) > 0 {
		rep.PhaseBits = make(map[string]int64, len(res.Stats.Phases))
		for _, p := range res.Stats.Phases {
			rep.PhaseBits[p.Name] = p.Bits
		}
	}
	return rep
}

// Test runs the selected triangle-freeness tester over the cluster. The
// cluster's cached topology is reused, so repeated calls skip the
// per-player view construction. Runs are deterministic in the cluster
// seed: calling Test twice with the same options returns the same report.
func (c *Cluster) Test(ctx context.Context, opts Options) (Report, error) {
	opts = opts.withDefaults()
	p, err := opts.runner()
	if err != nil {
		return Report{}, err
	}
	top, err := c.transportTopology(opts)
	if err != nil {
		return Report{}, err
	}
	res, err := p.RunOn(ctx, top)
	if err != nil {
		return Report{}, err
	}
	return report(p.Name(), res), nil
}

// Session is a tester bound to a cluster with all reusable state — the
// cached per-player views above all — materialized up front, for running
// many tests against one cluster at minimal per-call cost.
type Session struct {
	p   runner
	top *comm.Topology
}

// transportTopology returns the cluster's cached topology, rebased onto
// the transport opts selects. The expensive per-player state (the view
// cache) is shared across transports.
func (c *Cluster) transportTopology(opts Options) (*comm.Topology, error) {
	top, err := c.topology()
	if err != nil {
		return nil, err
	}
	if opts.IntraWorkers > 0 {
		top = top.WithIntraWorkers(opts.IntraWorkers)
	}
	faults, err := transport.ParseFaultSpec(opts.Faults)
	if err != nil {
		return nil, err
	}
	if !faults.Enabled() {
		if opts.Transport == TransportInProcess {
			return top, nil
		}
		d, err := opts.Transport.dialer()
		if err != nil {
			return nil, err
		}
		return top.WithTransport(d), nil
	}
	d, err := opts.Transport.dialer()
	if err != nil {
		return nil, err
	}
	// Seed the fault schedule from the cluster seed when the spec does not
	// pin one, so faulted runs are as reproducible as everything else.
	return top.WithTransport(transport.Faulty{Inner: d, Spec: faults.WithSeed(c.seed)}), nil
}

// Session validates opts, binds the selected tester to the cluster, and
// eagerly materializes the cluster's player views.
func (c *Cluster) Session(opts Options) (*Session, error) {
	opts = opts.withDefaults()
	p, err := opts.runner()
	if err != nil {
		return nil, err
	}
	top, err := c.transportTopology(opts)
	if err != nil {
		return nil, err
	}
	top.Warm()
	return &Session{p: p, top: top}, nil
}

// Protocol names the tester the session runs.
func (s *Session) Protocol() string { return s.p.Name() }

// Test runs the session's tester once. Results are identical to
// Cluster.Test with the session's options.
func (s *Session) Test(ctx context.Context) (Report, error) {
	res, err := s.p.RunOn(ctx, s.top)
	if err != nil {
		return Report{}, err
	}
	return report(s.p.Name(), res), nil
}

// TestWithSeed reruns the session's tester with different shared
// randomness, derived from the cluster's seed and the given tag — the way
// to draw independent repetitions (amplifying the one-sided success
// probability) without rebuilding any per-player state.
func (s *Session) TestWithSeed(ctx context.Context, tag string) (Report, error) {
	res, err := s.p.RunOn(ctx, s.top.WithShared(s.top.Shared().Derive(tag)))
	if err != nil {
		return Report{}, err
	}
	return report(s.p.Name(), res), nil
}
