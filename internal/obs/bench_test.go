package obs

import (
	"io"
	"testing"
)

// The hot-path benchmarks below all ReportAllocs; the CI bench smoke runs
// them with -benchmem and TestZeroAllocIncrements pins 0 allocs/op
// outright. These are the operations that ride inside protocol sessions
// and trial loops, so their cost budget is "one or two atomic ops".

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().NewCounter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterVecWithInc(b *testing.B) {
	vec := NewRegistry().NewCounterVec("bench_total", "", "who")
	vec.With("hot")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.With("hot").Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().NewHistogram("bench_seconds", "", DurationBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().NewGauge("bench_depth", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	vec := r.NewCounterVec("bench_total", "", "who")
	for _, l := range []string{"a", "b", "c", "d", "e"} {
		vec.With(l).Add(12345)
	}
	h := r.NewHistogram("bench_seconds", "", DurationBuckets())
	h.Observe(0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
