package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact rendered bytes of a registry
// exercising every metric kind. The format is a wire contract (scrapers
// parse it); any change here must be deliberate.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("app_requests_total", "Requests served.")
	c.Add(41)
	c.Inc()
	v := r.NewCounterVec("app_faults_total", "Faults by type.", "type")
	v.With("drop").Add(3)
	v.With("corrupt").Inc()
	g := r.NewGauge("app_queue_depth", "Jobs queued.")
	g.Set(7)
	g.Add(-2)
	gv := r.NewGaugeVec("app_pool_size", "Pool sizes.", "pool")
	gv.With("workers").Set(4)
	r.NewGaugeFunc("app_temperature", "A scrape-time value.", func() float64 { return 36.6 })
	h := r.NewHistogram("app_latency_seconds", "Latency with \"quotes\" and \\ backslash.", []float64{0.1, 1, 10})
	for _, s := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(s)
	}

	want := strings.Join([]string{
		`# HELP app_faults_total Faults by type.`,
		`# TYPE app_faults_total counter`,
		`app_faults_total{type="corrupt"} 1`,
		`app_faults_total{type="drop"} 3`,
		`# HELP app_latency_seconds Latency with "quotes" and \\ backslash.`,
		`# TYPE app_latency_seconds histogram`,
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 3`,
		`app_latency_seconds_bucket{le="10"} 4`,
		`app_latency_seconds_bucket{le="+Inf"} 5`,
		`app_latency_seconds_sum 56.05`,
		`app_latency_seconds_count 5`,
		`# HELP app_pool_size Pool sizes.`,
		`# TYPE app_pool_size gauge`,
		`app_pool_size{pool="workers"} 4`,
		`# HELP app_queue_depth Jobs queued.`,
		`# TYPE app_queue_depth gauge`,
		`app_queue_depth 5`,
		`# HELP app_requests_total Requests served.`,
		`# TYPE app_requests_total counter`,
		`app_requests_total 42`,
		`# HELP app_temperature A scrape-time value.`,
		`# TYPE app_temperature gauge`,
		`app_temperature 36.6`,
		``,
	}, "\n")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The renderer's output must satisfy the independent checker.
	e, err := CheckExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("CheckExposition rejects rendered output: %v", err)
	}
	if e.Families() != 6 {
		t.Errorf("families = %d, want 6", e.Families())
	}
	if got, _ := e.Value(`app_faults_total{type="drop"}`); got != 3 {
		t.Errorf("drop faults = %v, want 3", got)
	}
	if got := e.Total("app_faults_total"); got != 4 {
		t.Errorf("faults total = %v, want 4", got)
	}
	if got := e.Total("app_latency_seconds"); got != 5 {
		t.Errorf("latency count = %v, want 5", got)
	}
}

// TestIdempotentRegistration pins that re-registering an identical family
// returns the same underlying metric, and that a conflicting
// re-registration panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "x")
	b := r.NewCounter("x_total", "x")
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 2 {
		t.Errorf("re-registered counter not shared: %v, %v", a.Value(), b.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	r.NewGauge("x_total", "x")
}

func TestInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "9lead", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			NewRegistry().NewCounter(name, "")
		}()
	}
}

// TestConcurrentIncrements hammers every metric kind from many goroutines
// while a renderer scrapes concurrently; exact totals must survive. Run
// with -race in CI, this is the lock-freedom soundness suite.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	vec := r.NewCounterVec("v_total", "", "who")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_seconds", "", []float64{1, 10})

	const goroutines = 16
	const perG = 5000
	labels := []string{"a", "b", "c", "d"}
	var workers sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				vec.With(labels[(i+j)%len(labels)]).Inc()
				g.Add(1)
				h.Observe(float64(j % 20))
			}
		}(i)
	}
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() { // concurrent scraper: every mid-flight snapshot must be valid
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				if _, err := CheckExposition(strings.NewReader(sb.String())); err != nil {
					t.Errorf("mid-flight scrape invalid: %v", err)
					return
				}
			}
		}
	}()
	workers.Wait()
	close(stop)
	<-scraperDone

	want := float64(goroutines * perG)
	if c.Value() != want {
		t.Errorf("counter = %v, want %v", c.Value(), want)
	}
	if g.Value() != want {
		t.Errorf("gauge = %v, want %v", g.Value(), want)
	}
	var vecTotal float64
	for _, l := range labels {
		vecTotal += vec.With(l).Value()
	}
	if vecTotal != want {
		t.Errorf("vec total = %v, want %v", vecTotal, want)
	}
	if h.Count() != int64(want) {
		t.Errorf("histogram count = %v, want %v", h.Count(), want)
	}
}

// TestHistogramBuckets pins bucket edge semantics: a sample equal to an
// upper bound lands in that bucket (le is inclusive).
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "", []float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	e, err := CheckExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range map[string]float64{
		`h_bucket{le="1"}`:    1,
		`h_bucket{le="2"}`:    2,
		`h_bucket{le="+Inf"}`: 3,
	} {
		if got, ok := e.Value(id); !ok || got != want {
			t.Errorf("%s = %v (present %v), want %v", id, got, ok, want)
		}
	}
	if h.Sum() != 6 {
		t.Errorf("sum = %v, want 6", h.Sum())
	}
}

// TestZeroAllocIncrements asserts the hot-path contract directly: counter
// Inc/Add, labeled With+Inc on existing children, gauge Set, and histogram
// Observe allocate nothing.
func TestZeroAllocIncrements(t *testing.T) {
	if raceEnabled {
		t.Skip("allocs/op not meaningful under -race")
	}
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	vec := r.NewCounterVec("v_total", "", "who")
	vec.With("hot") // materialize outside the measured loop
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_seconds", "", DurationBuckets())
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		vec.With("hot").Inc()
		g.Set(4)
		g.Add(-1)
		h.Observe(0.042)
	}); n != 0 {
		t.Errorf("increments allocate %v/op, want 0", n)
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":             "orphan_total 3\n",
		"dup series":          "# TYPE a counter\na 1\na 2\n",
		"bad value":           "# TYPE a counter\na xyz\n",
		"bad type":            "# TYPE a widget\n",
		"hist no +Inf":        "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"hist no sum":         "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"hist count mismatch": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
		"hist not monotone":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"unterminated label":  "# TYPE a counter\na{x=\"y 1\n",
	}
	for name, in := range cases {
		if _, err := CheckExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid exposition %q", name, in)
		}
	}
}

func TestCheckExpositionParses(t *testing.T) {
	in := `# HELP a Total things.
# TYPE a counter
a{x="with \"quotes\", commas"} 12
a{x="plain"} 3.5
# TYPE g gauge
g +Inf
`
	e, err := CheckExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Total("a"); got != 15.5 {
		t.Errorf("Total(a) = %v, want 15.5", got)
	}
	if v, ok := e.Value(`g`); !ok || !math.IsInf(v, 1) {
		t.Errorf("g = %v (present %v), want +Inf", v, ok)
	}
	if !e.Has("a") || e.Has("nope") {
		t.Error("Has misreports")
	}
}
