package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, children sorted by
// label value, histograms as cumulative le-labeled buckets plus _sum and
// _count. Rendering takes no locks on the increment path — it reads the
// same atomics the writers update — so a scrape never stalls a session.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *Family) write(w *bufio.Writer) error {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(string(f.kind))
	w.WriteByte('\n')

	if f.readFn != nil {
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(formatValue(f.readFn()))
		w.WriteByte('\n')
		return nil
	}

	children := *f.children.Load()
	labels := make([]string, 0, len(children))
	for l := range children {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		m := children[l]
		if f.kind == KindHistogram {
			f.writeHistogram(w, m)
			continue
		}
		w.WriteString(f.name)
		if f.label != "" {
			w.WriteByte('{')
			w.WriteString(f.label)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(m.label))
			w.WriteString(`"}`)
		}
		w.WriteByte(' ')
		w.WriteString(formatValue(m.val.Load()))
		w.WriteByte('\n')
	}
	return nil
}

// writeHistogram renders one child's cumulative buckets. The per-bucket
// counts are read once into locals and summed, so the rendered _count
// always equals the +Inf bucket even while observations land concurrently
// (_sum may lag by in-flight observations, which the format permits).
func (f *Family) writeHistogram(w *bufio.Writer, m *metric) {
	var cum int64
	for i := range m.hcounts {
		cum += m.hcounts[i].Load()
		w.WriteString(f.name)
		w.WriteString(`_bucket{le="`)
		if i < len(f.buckets) {
			w.WriteString(formatValue(f.buckets[i]))
		} else {
			w.WriteString("+Inf")
		}
		w.WriteString(`"} `)
		w.WriteString(strconv.FormatInt(cum, 10))
		w.WriteByte('\n')
	}
	w.WriteString(f.name)
	w.WriteString("_sum ")
	w.WriteString(formatValue(m.val.Load()))
	w.WriteByte('\n')
	w.WriteString(f.name)
	w.WriteString("_count ")
	w.WriteString(strconv.FormatInt(cum, 10))
	w.WriteByte('\n')
}

// formatValue renders a sample value: integers without an exponent (the
// common case — counts, bits, bytes), everything else in the shortest
// float form.
func formatValue(v float64) string {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ContentType is the exposition media type served by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }

// WritePrometheus renders the Default registry.
func WritePrometheus(w io.Writer) error { return Default.WritePrometheus(w) }
