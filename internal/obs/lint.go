package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Exposition linting. CheckExposition is the in-repo validator behind
// cmd/promcheck and the CI metrics smoke: it parses the Prometheus text
// format with no dependencies and enforces the structural rules a real
// scraper relies on — every sample belongs to a declared family, no
// duplicate series, and histograms are internally consistent (cumulative
// monotone buckets, a +Inf bucket equal to _count, a _sum present). It is
// deliberately a separate implementation from the renderer in expose.go,
// so a bug in one is caught by the other.

// Sample is one parsed series sample.
type Sample struct {
	// Name is the sample's metric name (for histograms, the _bucket/_sum/
	// _count form).
	Name string
	// Labels is the rendered label set, e.g. `phase="degree"` (empty when
	// the series carries no labels).
	Labels string
	// Value is the sample value.
	Value float64
}

// Exposition is the parsed and validated form of one scrape.
type Exposition struct {
	// Types maps each declared family name to its declared type.
	Types map[string]string
	// Samples holds every series in input order.
	Samples []Sample

	byID map[string]float64 // "name{labels}" → value
}

// Series reports the number of distinct series.
func (e *Exposition) Series() int { return len(e.Samples) }

// Families reports the number of declared families.
func (e *Exposition) Families() int { return len(e.Types) }

// Value returns a series value by its full identity: a bare name, or
// name{label="value"} exactly as exposed.
func (e *Exposition) Value(id string) (float64, bool) {
	v, ok := e.byID[id]
	return v, ok
}

// Total sums every series of a family: the label-summed counter total, or
// for convenience the bare value of an unlabeled family. Histogram
// families sum their _count series.
func (e *Exposition) Total(name string) float64 {
	var t float64
	target := name
	if e.Types[name] == "histogram" {
		target = name + "_count"
	}
	for _, s := range e.Samples {
		if s.Name == target {
			t += s.Value
		}
	}
	return t
}

// Has reports whether the family is declared and has at least one sample.
func (e *Exposition) Has(name string) bool {
	if _, ok := e.Types[name]; !ok {
		return false
	}
	prefix := name
	for _, s := range e.Samples {
		if s.Name == prefix || strings.HasPrefix(s.Name, prefix+"_") {
			return true
		}
	}
	return false
}

// CheckExposition parses r as Prometheus text exposition format and
// validates it, returning the parsed form or the first violation.
func CheckExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{Types: make(map[string]string), byID: make(map[string]float64)}
	type histState struct {
		buckets map[float64]float64 // le → cumulative count
		sum     *float64
		count   *float64
	}
	hists := make(map[string]*histState)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := e.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam, suffix := e.familyOf(s.Name)
		if fam == "" {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, s.Name)
		}
		id := s.Name
		if s.Labels != "" {
			id += "{" + s.Labels + "}"
		}
		if _, dup := e.byID[id]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, id)
		}
		e.byID[id] = s.Value
		e.Samples = append(e.Samples, s)

		if e.Types[fam] == "histogram" {
			h := hists[fam]
			if h == nil {
				h = &histState{buckets: make(map[float64]float64)}
				hists[fam] = h
			}
			switch suffix {
			case "_bucket":
				le, err := leOf(s.Labels)
				if err != nil {
					return nil, fmt.Errorf("line %d: %s: %w", lineNo, s.Name, err)
				}
				h.buckets[le] = s.Value
			case "_sum":
				v := s.Value
				h.sum = &v
			case "_count":
				v := s.Value
				h.count = &v
			default:
				return nil, fmt.Errorf("line %d: histogram %s has non-histogram sample %s", lineNo, fam, s.Name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for fam, h := range hists {
		if err := checkHistogram(fam, h.buckets, h.sum, h.count); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// familyOf resolves a sample name to its declared family: exact for
// scalars, the _bucket/_sum/_count-stripped base for histograms.
func (e *Exposition) familyOf(name string) (fam, suffix string) {
	if _, ok := e.Types[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && e.Types[base] == "histogram" {
			return base, suf
		}
	}
	return "", ""
}

func (e *Exposition) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validName(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown type %q for %s", typ, name)
		}
		if prev, ok := e.Types[name]; ok && prev != typ {
			return fmt.Errorf("conflicting TYPE for %s: %s then %s", name, prev, typ)
		}
		e.Types[name] = typ
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	}
	return nil
}

// parseSample parses `name[{labels}] value [timestamp]`.
func parseSample(line string) (Sample, error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name := line[:i]
	if !validName(name) {
		return Sample{}, fmt.Errorf("invalid sample name %q", name)
	}
	rest := line[i:]
	var labels string
	if strings.HasPrefix(rest, "{") {
		end, err := labelEnd(rest)
		if err != nil {
			return Sample{}, fmt.Errorf("sample %s: %w", name, err)
		}
		labels = rest[1:end]
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return Sample{}, fmt.Errorf("sample %s: want `value [timestamp]`, got %q", name, rest)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return Sample{}, fmt.Errorf("sample %s: bad value %q", name, fields[0])
	}
	return Sample{Name: name, Labels: labels, Value: v}, nil
}

// labelEnd returns the index of the closing brace of a label block that
// starts at s[0] == '{', honoring quoted values with escapes.
func labelEnd(s string) (int, error) {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip the escaped byte
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i, nil
		}
	}
	return 0, fmt.Errorf("unterminated label block")
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// leOf extracts the le label value from a bucket's label block.
func leOf(labels string) (float64, error) {
	for _, part := range splitLabels(labels) {
		k, v, ok := strings.Cut(part, "=")
		if !ok || k != "le" {
			continue
		}
		return parseFloat(strings.Trim(v, `"`))
	}
	return 0, fmt.Errorf("bucket sample without le label (%q)", labels)
}

// splitLabels splits a label block body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// checkHistogram enforces the histogram contract: at least the +Inf
// bucket, cumulative counts non-decreasing in le order, _count equal to
// the +Inf bucket, and a _sum series present.
func checkHistogram(fam string, buckets map[float64]float64, sum, count *float64) error {
	if len(buckets) == 0 {
		return fmt.Errorf("histogram %s has no buckets", fam)
	}
	les := make([]float64, 0, len(buckets))
	for le := range buckets {
		les = append(les, le)
	}
	sort.Float64s(les)
	for i := 1; i < len(les); i++ {
		if buckets[les[i]] < buckets[les[i-1]] {
			return fmt.Errorf("histogram %s buckets not cumulative: le=%v count %v < le=%v count %v",
				fam, les[i], buckets[les[i]], les[i-1], buckets[les[i-1]])
		}
	}
	infCount, ok := buckets[math.Inf(1)]
	if !ok {
		return fmt.Errorf("histogram %s missing +Inf bucket", fam)
	}
	if count == nil {
		return fmt.Errorf("histogram %s missing _count", fam)
	}
	if *count != infCount {
		return fmt.Errorf("histogram %s _count %v != +Inf bucket %v", fam, *count, infCount)
	}
	if sum == nil {
		return fmt.Errorf("histogram %s missing _sum", fam)
	}
	return nil
}
