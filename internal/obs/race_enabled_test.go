//go:build race

package obs

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation itself allocates, so allocs/op is not meaningful there.
const raceEnabled = true
