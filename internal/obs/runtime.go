package obs

import (
	"runtime"
	"sync"
	"time"
)

var (
	runtimeOnce sync.Once
	procStart   = time.Now()
)

// RegisterRuntime adds the Go runtime and process families to the Default
// registry: goroutine count, heap and total memory, GC cycles, and process
// uptime. All are read at scrape time (a scrape is rare; a ReadMemStats
// there is harmless), so nothing ticks in the background. Idempotent —
// every binary that serves or dumps metrics calls it unconditionally.
func RegisterRuntime() {
	runtimeOnce.Do(func() {
		NewGaugeFunc("go_goroutines",
			"Number of goroutines that currently exist.",
			func() float64 { return float64(runtime.NumGoroutine()) })
		NewGaugeFunc("go_heap_alloc_bytes",
			"Bytes of allocated heap objects.",
			func() float64 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				return float64(ms.HeapAlloc)
			})
		NewGaugeFunc("go_sys_bytes",
			"Bytes of memory obtained from the OS.",
			func() float64 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				return float64(ms.Sys)
			})
		NewCounterFunc("go_gc_cycles_total",
			"Completed GC cycles since process start.",
			func() float64 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				return float64(ms.NumGC)
			})
		NewCounterFunc("process_uptime_seconds",
			"Seconds since process start.",
			func() float64 { return time.Since(procStart).Seconds() })
	})
}
