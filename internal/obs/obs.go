// Package obs is the dependency-free observability core behind tricommd's
// GET /metrics endpoint: atomic counters, gauges, and fixed-bucket
// histograms, optionally fanned out into single-label families, rendered
// in the Prometheus text exposition format.
//
// The design constraint is the repo's determinism contract: metrics are
// observed effects, never inputs. Nothing in this package feeds back into
// protocol execution, and the increment path is engineered to be invisible
// on the trial hot path — lock-free (one atomic CAS per Add, one atomic
// load per labeled lookup) and zero allocations per operation once a
// label's child exists (pinned by TestZeroAllocIncrements and the
// ReportAllocs benchmarks).
//
// # Model
//
// A Registry holds metric families. A family has a name, a help string, a
// kind (counter | gauge | histogram), and at most one label key. Labeled
// families (CounterVec, GaugeVec) materialize one child per label value on
// first use; the children map is copy-on-write behind an atomic pointer,
// so the lookup path takes no lock. Unlabeled families are a single
// pre-materialized child. Values are float64 bits in a uint64 atomic —
// exact for integer counts up to 2⁵³, which comfortably covers bit and
// byte totals, while letting durations accumulate fractional seconds.
//
// Registration is idempotent: re-registering an identical family returns
// the existing one (so tests and long-lived packages can share the Default
// registry), while a conflicting re-registration (different kind, label,
// or buckets) panics at init time.
//
// # Cardinality
//
// One label per family is a feature, not a shortcut: every label value in
// this codebase is drawn from a closed, code-defined vocabulary (protocol
// phase names, job states, fault types, communication models), so the
// series count is statically bounded. Nothing user-controlled is ever used
// as a label value.
package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type as exposed in the # TYPE comment.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// value is a float64 stored as atomic bits: lock-free Add via CAS, exact
// for integers below 2⁵³.
type value struct{ bits atomic.Uint64 }

func (v *value) Add(d float64) {
	for {
		old := v.bits.Load()
		if v.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

func (v *value) Set(f float64) { v.bits.Store(math.Float64bits(f)) }
func (v *value) Load() float64 { return math.Float64frombits(v.bits.Load()) }

// metric is one child of a family: the sample (or histogram) of a single
// label value.
type metric struct {
	label string
	val   value // counter/gauge value; histogram sum

	hcounts []atomic.Int64 // per-bucket counts (+Inf last); nil for scalars
}

// Family is one registered metric family. Its exported surface is the
// typed handles (Counter, Gauge, Histogram, …); tests and the renderer use
// the family directly.
type Family struct {
	name    string
	help    string
	kind    Kind
	label   string    // label key; "" for unlabeled families
	buckets []float64 // histogram upper bounds, strictly increasing
	readFn  func() float64

	mu       sync.Mutex // guards child creation (copy-on-write)
	children atomic.Pointer[map[string]*metric]
}

// Name returns the family name.
func (f *Family) Name() string { return f.name }

// get returns the child for a label value, creating it on first use. The
// hit path is one atomic pointer load and one map read — no locks, no
// allocations.
func (f *Family) get(label string) *metric {
	if m := (*f.children.Load())[label]; m != nil {
		return m
	}
	return f.create(label)
}

func (f *Family) create(label string) *metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	old := *f.children.Load()
	if m := old[label]; m != nil {
		return m
	}
	m := &metric{label: label}
	if f.kind == KindHistogram {
		m.hcounts = make([]atomic.Int64, len(f.buckets)+1)
	}
	next := make(map[string]*metric, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[label] = m
	f.children.Store(&next)
	return m
}

// Registry is a set of metric families. The zero value is unusable; use
// NewRegistry or the package-level Default.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*Family)}
}

// Default is the process-wide registry: package-level metric constructors
// register here, and tricommd's /metrics renders it.
var Default = NewRegistry()

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// family registers (or idempotently returns) a family. Conflicting
// re-registration panics: families are created in package init blocks, so
// a conflict is a programming error, never a runtime condition.
func (r *Registry) family(name, help string, kind Kind, label string, buckets []float64) *Family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if label != "" && !validName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q for %s", label, name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: %s buckets not strictly increasing at %d", name, i))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || f.label != label || len(f.buckets) != len(buckets) {
			panic(fmt.Sprintf("obs: conflicting re-registration of %s", name))
		}
		return f
	}
	f := &Family{name: name, help: help, kind: kind, label: label, buckets: buckets}
	empty := make(map[string]*metric)
	f.children.Store(&empty)
	if label == "" && kind != KindHistogram {
		f.get("") // pre-materialize the singleton so first Inc allocates nothing
	}
	r.fams[name] = f
	return f
}

// snapshot returns the families sorted by name (the exposition order).
func (r *Registry) snapshot() []*Family {
	r.mu.Lock()
	fams := make([]*Family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for i := 1; i < len(fams); i++ { // insertion sort; the set is small
		for j := i; j > 0 && fams[j].name < fams[j-1].name; j-- {
			fams[j], fams[j-1] = fams[j-1], fams[j]
		}
	}
	return fams
}

// Counter is a monotonically increasing value.
type Counter struct{ m *metric }

// Inc adds 1.
func (c Counter) Inc() { c.m.val.Add(1) }

// Add adds d (which must be non-negative to keep the counter monotone;
// this is not checked on the hot path).
func (c Counter) Add(d float64) { c.m.val.Add(d) }

// Value reads the current total.
func (c Counter) Value() float64 { return c.m.val.Load() }

// CounterVec is a counter family with one label.
type CounterVec struct{ f *Family }

// With returns the counter for a label value, materializing it on first
// use. Lookups of existing children are lock- and allocation-free.
func (v CounterVec) With(label string) Counter { return Counter{v.f.get(label)} }

// Gauge is a value that can go up and down.
type Gauge struct{ m *metric }

// Set replaces the value.
func (g Gauge) Set(f float64) { g.m.val.Set(f) }

// Add adds d (negative to decrease).
func (g Gauge) Add(d float64) { g.m.val.Add(d) }

// Value reads the current value.
func (g Gauge) Value() float64 { return g.m.val.Load() }

// GaugeVec is a gauge family with one label.
type GaugeVec struct{ f *Family }

// With returns the gauge for a label value.
func (v GaugeVec) With(label string) Gauge { return Gauge{v.f.get(label)} }

// Histogram is a fixed-bucket histogram: cumulative bucket counts, a sum,
// and a count, rendered Prometheus-style with le labels.
type Histogram struct {
	f *Family
	m *metric
}

// Observe records one sample: a linear scan over the (small, fixed) bucket
// bounds, two atomic adds. Zero allocations.
func (h Histogram) Observe(v float64) {
	b := h.f.buckets
	i := 0
	for i < len(b) && v > b[i] {
		i++
	}
	h.m.hcounts[i].Add(1)
	h.m.val.Add(v) // the _sum series
}

// Count reads the total number of observations.
func (h Histogram) Count() int64 {
	var n int64
	for i := range h.m.hcounts {
		n += h.m.hcounts[i].Load()
	}
	return n
}

// Sum reads the sum of all observed values.
func (h Histogram) Sum() float64 { return h.m.val.Load() }

// NewCounter registers (or returns) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) Counter {
	return Counter{r.family(name, help, KindCounter, "", nil).get("")}
}

// NewCounterVec registers a counter family keyed by one label.
func (r *Registry) NewCounterVec(name, help, label string) CounterVec {
	return CounterVec{r.family(name, help, KindCounter, label, nil)}
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) Gauge {
	return Gauge{r.family(name, help, KindGauge, "", nil).get("")}
}

// NewGaugeVec registers a gauge family keyed by one label.
func (r *Registry) NewGaugeVec(name, help, label string) GaugeVec {
	return GaugeVec{r.family(name, help, KindGauge, label, nil)}
}

// NewGaugeFunc registers a gauge whose value is read at scrape time —
// the hook for runtime stats (goroutines, heap) that have no event to
// increment on.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, KindGauge, "", nil).readFn = fn
}

// NewCounterFunc registers a counter read at scrape time (for monotone
// externally-maintained totals like GC cycles or process uptime).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.family(name, help, KindCounter, "", nil).readFn = fn
}

// NewHistogram registers a histogram with the given upper bounds
// (strictly increasing; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) Histogram {
	f := r.family(name, help, KindHistogram, "", buckets)
	return Histogram{f: f, m: f.get("")}
}

// Package-level constructors on the Default registry.

// NewCounter registers an unlabeled counter on Default.
func NewCounter(name, help string) Counter { return Default.NewCounter(name, help) }

// NewCounterVec registers a labeled counter family on Default.
func NewCounterVec(name, help, label string) CounterVec {
	return Default.NewCounterVec(name, help, label)
}

// NewGauge registers an unlabeled gauge on Default.
func NewGauge(name, help string) Gauge { return Default.NewGauge(name, help) }

// NewGaugeVec registers a labeled gauge family on Default.
func NewGaugeVec(name, help, label string) GaugeVec { return Default.NewGaugeVec(name, help, label) }

// NewGaugeFunc registers a scrape-time gauge on Default.
func NewGaugeFunc(name, help string, fn func() float64) { Default.NewGaugeFunc(name, help, fn) }

// NewCounterFunc registers a scrape-time counter on Default.
func NewCounterFunc(name, help string, fn func() float64) { Default.NewCounterFunc(name, help, fn) }

// NewHistogram registers a histogram on Default.
func NewHistogram(name, help string, buckets []float64) Histogram {
	return Default.NewHistogram(name, help, buckets)
}

// DurationBuckets is the shared bucket layout for wall-clock histograms,
// in seconds: 1ms to 30s in a 1-2.5-5 progression. Sub-millisecond trials
// land in the first bucket; anything over 30s is +Inf.
func DurationBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
}
