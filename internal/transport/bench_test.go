package transport

import (
	"bufio"
	"bytes"
	"context"
	"testing"
)

// BenchmarkFrameEncode measures the framing hot path: encoding a session's
// worth of mixed-size messages into a reused buffer. Steady state must not
// allocate.
func BenchmarkFrameEncode(b *testing.B) {
	frames := sessionFrames()
	buf := make([]byte, 0, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		for _, f := range frames {
			buf = AppendFrame(buf[:0], f)
			sink += len(buf)
		}
	}
	_ = sink
}

// BenchmarkFrameDecode measures in-place decoding of a pre-encoded stream
// (DecodeFrame aliases the input, so steady state must not allocate).
func BenchmarkFrameDecode(b *testing.B) {
	var stream []byte
	for _, f := range sessionFrames() {
		stream = AppendFrame(stream, f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := stream
		for len(p) > 0 {
			_, n, err := DecodeFrame(p)
			if err != nil {
				b.Fatal(err)
			}
			p = p[n:]
		}
	}
}

// BenchmarkFrameReadStream measures the socket-side decoder (bufio +
// per-frame payload allocation, the documented cost of the net transport).
func BenchmarkFrameReadStream(b *testing.B) {
	var stream []byte
	frames := sessionFrames()
	for _, f := range frames {
		stream = AppendFrame(stream, f)
	}
	rd := bytes.NewReader(stream)
	br := bufio.NewReader(rd)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(stream)
		br.Reset(rd)
		for range frames {
			if _, err := readFrame(br); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkChanRoundTrip measures a send/recv round trip on the in-process
// transport — the per-message overhead every protocol session pays. The
// steady state target is 0 allocs/op.
func BenchmarkChanRoundTrip(b *testing.B) {
	links, err := Chan{}.Dial(1)
	if err != nil {
		b.Fatal(err)
	}
	defer closeLinks(links)
	ctx := context.Background()
	req := frame(96, 0xa5)
	rep := frame(32, 0x5a)
	l := links[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.A.Send(ctx, req); err != nil {
			b.Fatal(err)
		}
		if _, err := l.B.Recv(ctx); err != nil {
			b.Fatal(err)
		}
		if err := l.B.Send(ctx, rep); err != nil {
			b.Fatal(err)
		}
		if _, err := l.A.Recv(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChanTryRoundTrip measures the fan-out fast path (TrySend +
// TryRecv), which must also be allocation-free.
func BenchmarkChanTryRoundTrip(b *testing.B) {
	links, err := Chan{}.Dial(1)
	if err != nil {
		b.Fatal(err)
	}
	defer closeLinks(links)
	a := links[0].A.(interface {
		TrySender
		TryReceiver
	})
	bb := links[0].B.(interface {
		TrySender
		TryReceiver
	})
	req := frame(96, 0xa5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !a.TrySend(req) {
			b.Fatal("TrySend failed")
		}
		if _, ok := bb.TryRecv(); !ok {
			b.Fatal("TryRecv failed")
		}
	}
}

// BenchmarkTCPRoundTrip is the same round trip over a real loopback
// socket, for the wire-vs-channel comparison in DESIGN.md §6.
func BenchmarkTCPRoundTrip(b *testing.B) {
	links, err := Net{TCP: true}.Dial(1)
	if err != nil {
		b.Fatal(err)
	}
	defer closeLinks(links)
	ctx := context.Background()
	req := frame(96, 0xa5)
	rep := frame(32, 0x5a)
	l := links[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.A.Send(ctx, req); err != nil {
			b.Fatal(err)
		}
		if _, err := l.B.Recv(ctx); err != nil {
			b.Fatal(err)
		}
		if err := l.B.Send(ctx, rep); err != nil {
			b.Fatal(err)
		}
		if _, err := l.A.Recv(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// sessionFrames is a realistic mix of message sizes from one interactive
// tester session: many small control frames, some mid-size samples, a few
// large edge lists.
func sessionFrames() []Frame {
	var frames []Frame
	for i := 0; i < 64; i++ {
		frames = append(frames, frame(9+i%23, byte(i)))
	}
	for i := 0; i < 16; i++ {
		frames = append(frames, frame(300+40*i, byte(i)))
	}
	for i := 0; i < 4; i++ {
		frames = append(frames, frame(20000+1000*i, byte(i)))
	}
	return frames
}
