package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// Frame wire layout. A frame is byte-aligned on the wire:
//
//	header:  payload length in BITS, encoded as a uvarint
//	payload: ceil(bits/8) bytes, MSB-first bit packing (wire.Writer layout),
//	         final byte zero-padded
//
// The header is exactly the byte-aligned form of wire.Writer.WriteUvarint —
// each byte carries a continuation bit in the MSB and a 7-bit group, low
// groups first — which coincides with the standard LEB128 varint, so
// encoding/binary's AppendUvarint/ReadUvarint produce and consume identical
// bytes (pinned by TestFrameHeaderMatchesWireUvarint). A frame therefore
// costs HeaderBytes(bits) + ceil(bits/8) bytes; the per-frame overhead over
// the metered payload bits is at most MaxHeaderBytes plus the sub-byte
// padding of the final payload byte.

// Frame codec errors.
var (
	// ErrFrameTooLarge indicates a header whose bit length exceeds
	// MaxFrameBits (a corrupt or hostile stream).
	ErrFrameTooLarge = errors.New("transport: frame exceeds MaxFrameBits")
	// ErrFrameTruncated indicates a frame cut short of its declared length.
	ErrFrameTruncated = errors.New("transport: truncated frame")
)

// MaxFrameBits is the largest payload a single frame may carry (128 MiB of
// payload). Decoders reject larger headers before allocating.
const MaxFrameBits = 1 << 30

// MaxHeaderBytes is the largest header a legal frame can have: the uvarint
// encoding of any bit length up to MaxFrameBits fits in 5 bytes. Together
// with the final payload byte's padding this bounds the framing overhead:
// for any frame, wire bytes ≤ bits/8 + MaxHeaderBytes + 1.
const MaxHeaderBytes = 5

// HeaderBytes reports the encoded size of the frame header for a payload of
// the given bit length.
func HeaderBytes(bits int) int {
	n := 1
	for v := uint64(bits); v >= 0x80; v >>= 7 {
		n++
	}
	return n
}

// FrameSize reports the exact on-wire size in bytes of a frame carrying the
// given number of payload bits: header plus packed payload.
func FrameSize(bits int) int {
	return HeaderBytes(bits) + (bits+7)/8
}

// AppendFrame appends the wire encoding of f to dst and returns the
// extended slice. It panics if f.Bits is negative, exceeds MaxFrameBits, or
// f.Data is shorter than the packed payload — those are programming errors,
// not wire conditions.
func AppendFrame(dst []byte, f Frame) []byte {
	if f.Bits < 0 || f.Bits > MaxFrameBits {
		panic(fmt.Sprintf("transport: frame bits %d out of range", f.Bits))
	}
	nb := (f.Bits + 7) / 8
	if len(f.Data) < nb {
		panic(fmt.Sprintf("transport: frame data %d bytes < packed payload %d", len(f.Data), nb))
	}
	dst = binary.AppendUvarint(dst, uint64(f.Bits))
	return append(dst, f.Data[:nb]...)
}

// DecodeFrame decodes one frame from the front of p, returning the frame
// and the number of bytes consumed. The returned frame's Data aliases p.
func DecodeFrame(p []byte) (Frame, int, error) {
	bits, n := binary.Uvarint(p)
	if n <= 0 {
		return Frame{}, 0, ErrFrameTruncated
	}
	if bits > MaxFrameBits {
		return Frame{}, 0, ErrFrameTooLarge
	}
	nb := int(bits+7) / 8
	if len(p) < n+nb {
		return Frame{}, 0, ErrFrameTruncated
	}
	return Frame{Bits: int(bits), Data: p[n : n+nb]}, n + nb, nil
}

// readFrame reads one frame from br. The payload is freshly allocated: the
// engine hands received frames to protocol code that may retain them across
// rounds, so a reusable buffer would alias live messages.
func readFrame(br *bufio.Reader) (Frame, error) {
	bits, err := binary.ReadUvarint(br)
	if err != nil {
		return Frame{}, err
	}
	if bits > MaxFrameBits {
		return Frame{}, ErrFrameTooLarge
	}
	nb := int(bits+7) / 8
	data := make([]byte, nb)
	if _, err := io.ReadFull(br, data); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Frame{}, ErrFrameTruncated
		}
		return Frame{}, err
	}
	return Frame{Bits: int(bits), Data: data}, nil
}

// endStats is the atomic counter block behind a Conn's Stats.
type endStats struct {
	bytesOut, bytesIn   atomic.Int64
	framesOut, framesIn atomic.Int64
}

func (s *endStats) sent(bits int) {
	s.bytesOut.Add(int64(FrameSize(bits)))
	s.framesOut.Add(1)
}

func (s *endStats) received(bits int) {
	s.bytesIn.Add(int64(FrameSize(bits)))
	s.framesIn.Add(1)
}

func (s *endStats) snapshot() LinkStats {
	return LinkStats{
		BytesOut:  s.bytesOut.Load(),
		BytesIn:   s.bytesIn.Load(),
		FramesOut: s.framesOut.Load(),
		FramesIn:  s.framesIn.Load(),
	}
}
