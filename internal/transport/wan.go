package transport

import (
	"context"
	"sync"
	"time"
)

// WAN is the simulated wide-area transport: the in-process path with a
// deterministic delay injected per frame. Each direction of each link has a
// pump goroutine between sender and receiver; the pump holds every frame
// for
//
//	delay = Latency + jitter + FrameSize(bits) / Bandwidth
//
// where jitter is drawn uniformly from [0, Jitter) by a splitmix64 sequence
// seeded from (Seed, link index, direction). Delays are therefore a pure
// function of the seed and the per-direction frame order — rerunning a
// session replays the identical delay schedule — and since protocol results
// depend only on message contents and per-link ordering (both preserved
// here), verdicts and bit accounting are byte-identical to the other
// transports no matter what delays are configured.
type WAN struct {
	// Latency is the fixed one-way delay per frame.
	Latency time.Duration
	// Jitter is the upper bound of the uniform per-frame jitter.
	Jitter time.Duration
	// Bandwidth is the link rate in bytes per second; 0 means unlimited.
	Bandwidth int64
	// Seed selects the jitter sequence.
	Seed uint64
	// Buf is the per-stage frame buffer depth; 0 means 1.
	Buf int
}

// Name identifies the transport.
func (WAN) Name() string { return "wan" }

// Dial opens k delayed in-process links.
func (w WAN) Dial(k int) ([]Link, error) {
	buf := w.Buf
	if buf <= 0 {
		buf = 1
	}
	links := make([]Link, k)
	for j := range links {
		links[j] = w.newLink(j, buf)
	}
	return links, nil
}

func (w WAN) newLink(idx, buf int) Link {
	ca := make(chan struct{})
	cb := make(chan struct{})
	da := make(chan struct{}) // A→B pump finished delivering
	db := make(chan struct{}) // B→A pump finished delivering
	a := &wanConn{
		sendq:      make(chan Frame, buf),
		in:         make(chan Frame, buf),
		closed:     ca,
		peerClosed: cb,
		peerDone:   db,
	}
	b := &wanConn{
		sendq:      make(chan Frame, buf),
		in:         make(chan Frame, buf),
		closed:     cb,
		peerClosed: ca,
		peerDone:   da,
	}
	// Direction seeds must differ per (link, direction) so jitter is not
	// correlated across links; splitmix of distinct integers suffices.
	go w.pump(a, b, da, w.Seed^splitmix64(uint64(2*idx+1)))
	go w.pump(b, a, db, w.Seed^splitmix64(uint64(2*idx+2)))
	return Link{A: a, B: b}
}

// pump moves frames from src's send queue to dst's inbox, sleeping each
// frame's deterministic delay first. It exits — closing done on the way
// out — once src closes and every accepted frame is delivered, or once dst
// closes (remaining frames are dropped; the receiver is gone).
func (w WAN) pump(src, dst *wanConn, done chan struct{}, seed uint64) {
	defer close(done)
	state := seed
	deliver := func(f Frame) bool {
		if d := w.delay(f.Bits, &state); d > 0 {
			time.Sleep(d)
		}
		select {
		case dst.in <- f:
			return true
		case <-dst.closed:
			return false
		}
	}
	for {
		select {
		case f := <-src.sendq:
			if !deliver(f) {
				return
			}
		case <-src.closed:
			// Flush frames the sender queued before closing, then exit.
			for {
				select {
				case f := <-src.sendq:
					if !deliver(f) {
						return
					}
				default:
					return
				}
			}
		case <-dst.closed:
			return
		}
	}
}

// delay computes the deterministic hold time for a frame of the given bit
// length, advancing the per-direction jitter state.
func (w WAN) delay(bits int, state *uint64) time.Duration {
	d := w.Latency
	if w.Jitter > 0 {
		u := float64(splitmixNext(state)>>11) / (1 << 53) // uniform [0,1)
		d += time.Duration(u * float64(w.Jitter))
	}
	if w.Bandwidth > 0 {
		d += time.Duration(int64(FrameSize(bits)) * int64(time.Second) / w.Bandwidth)
	}
	return d
}

// splitmixNext advances a splitmix64 state and returns the next value.
func splitmixNext(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	return splitmix64(*state)
}

// splitmix64 is the splitmix64 finalizer.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// wanConn is one endpoint of a delayed link. It shares the chanConn close
// semantics; the only difference is the pump between the two endpoints,
// whose done signal lets Recv distinguish "peer closed but frames still in
// flight" from "link fully drained".
type wanConn struct {
	sendq      chan Frame
	in         chan Frame
	closed     chan struct{}
	peerClosed chan struct{}
	peerDone   chan struct{} // peer→us pump exited (all frames delivered)
	once       sync.Once
	stats      endStats
}

// Send deposits f into the delay pipeline.
func (c *wanConn) Send(ctx context.Context, f Frame) error {
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peerClosed:
		return ErrClosed
	default:
	}
	select {
	case c.sendq <- f:
		c.stats.sent(f.Bits)
		return nil
	case <-c.closed:
		return ErrClosed
	case <-c.peerClosed:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Recv blocks for the next delivered frame. After the peer closes, Recv
// keeps delivering until the peer's pump reports every accepted frame
// delivered — frames "on the wire" when the sender closed still arrive,
// after their full simulated delay — and only then returns ErrClosed.
func (c *wanConn) Recv(ctx context.Context) (Frame, error) {
	select {
	case f := <-c.in:
		c.stats.received(f.Bits)
		return f, nil
	case <-c.closed:
		return Frame{}, ErrClosed
	case <-c.peerClosed:
		select {
		case f := <-c.in:
			c.stats.received(f.Bits)
			return f, nil
		case <-c.peerDone:
			// Pump finished: anything it delivered is in the inbox.
			select {
			case f := <-c.in:
				c.stats.received(f.Bits)
				return f, nil
			default:
				return Frame{}, ErrClosed
			}
		case <-c.closed:
			return Frame{}, ErrClosed
		case <-ctx.Done():
			return Frame{}, ctx.Err()
		}
	case <-ctx.Done():
		return Frame{}, ctx.Err()
	}
}

// Close releases the endpoint; its pumps exit once drained. Idempotent.
func (c *wanConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// Stats snapshots the endpoint's counters.
func (c *wanConn) Stats() LinkStats { return c.stats.snapshot() }
