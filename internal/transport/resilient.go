package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"
)

// Resilient links. Harden wraps both endpoints of a (typically Faulty)
// link in an ARQ layer that makes the paper's protocols survive injected
// faults without ever decoding a damaged message:
//
//   - every protocol frame travels inside an envelope carrying a sequence
//     number and a CRC32 checksum, so corruption is detected and the frame
//     discarded rather than decoded, and duplicates are dropped by seq;
//   - a Send that observes sender-visible loss (ErrFrameLost) retransmits,
//     up to the spec's MaxResend budget, then reports ErrAborted — because
//     loss is synchronous, the retransmit count per message is a pure
//     function of the fault schedule, never of timing;
//   - Recv applies a per-message deadline (spec DeadlineMS) as a liveness
//     backstop: it can only fire when the peer has already aborted or hung,
//     so it never perturbs the deterministic accounting of completed runs.
//
// A completed run over a hardened link delivers exactly the frame sequence
// the protocol sent — same contents, same order — so verdicts, witnesses,
// and metered bits are byte-identical to a fault-free run; the only
// observable differences are WireBytes (envelope overhead + retransmits +
// duplicates, all sender-counted) and the resilience counters.

// Envelope layout, nested inside a Frame's payload (the base frame layout
// of frame.go is pinned by golden tests and never changes):
//
//	[uvarint seq][uvarint payload bits][payload ceil(bits/8) bytes][crc32]
//
// The CRC32 (IEEE, big-endian) covers every preceding byte. The envelope
// frame's Bits is its full byte length × 8.

// envelopeOverhead is the worst-case envelope bytes added per message:
// two uvarints plus the checksum.
const envelopeOverhead = 2*binary.MaxVarintLen64 + 4

// appendEnvelope appends the envelope encoding of (seq, f) to dst.
func appendEnvelope(dst []byte, seq uint64, f Frame) []byte {
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(f.Bits))
	dst = append(dst, f.Data[:(f.Bits+7)/8]...)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst))
}

// decodeEnvelope parses and verifies one envelope. ok is false for any
// malformed or checksum-failing envelope — the corruption-detection path.
func decodeEnvelope(f Frame) (seq uint64, inner Frame, ok bool) {
	p := f.Data[:(f.Bits+7)/8]
	if len(p) < 4 {
		return 0, Frame{}, false
	}
	body, sum := p[:len(p)-4], binary.BigEndian.Uint32(p[len(p)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, Frame{}, false
	}
	seq, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, Frame{}, false
	}
	bits, m := binary.Uvarint(body[n:])
	if m <= 0 || bits > MaxFrameBits {
		return 0, Frame{}, false
	}
	payload := body[n+m:]
	if len(payload) != int(bits+7)/8 {
		return 0, Frame{}, false
	}
	return seq, Frame{Bits: int(bits), Data: payload}, true
}

// ResilienceStats counts a hardened link's recovery work, in both
// directions (the counter blocks are shared by the link's endpoints).
type ResilienceStats struct {
	// Retransmits counts frames re-sent after sender-visible loss.
	Retransmits int64
	// FramesLost counts injected drops and corruptions (sender-observed).
	FramesLost int64
	// FramesDiscarded counts received envelopes rejected by the checksum
	// or the duplicate filter. Receiver-side and therefore only stable
	// once the link quiesces; tests use it, metered Stats do not.
	FramesDiscarded int64
}

// ResilienceReporter is implemented by hardened conns; the engine collects
// the counters into its run Stats.
type ResilienceReporter interface {
	Resilience() ResilienceStats
}

// linkResilience is the per-link shared recovery-counter block.
type linkResilience struct {
	retrans   atomic.Int64
	discarded atomic.Int64
}

// Harden wraps both endpoints of l in the resilient ARQ layer configured
// by spec. The caller must still Close both returned endpoints (closing a
// hardened endpoint closes its inner conn and reaps the receive pump).
func Harden(l Link, spec FaultSpec) Link {
	shared := &linkResilience{}
	return Link{A: newResilient(l.A, spec, shared), B: newResilient(l.B, spec, shared)}
}

func newResilient(inner Conn, spec FaultSpec, shared *linkResilience) *resilientConn {
	ctx, cancel := context.WithCancel(context.Background())
	c := &resilientConn{
		inner:      inner,
		spec:       spec,
		shared:     shared,
		wake:       make(chan struct{}),
		pumpCtx:    ctx,
		pumpCancel: cancel,
		pumpDone:   make(chan struct{}),
	}
	go c.pump()
	return c
}

// resilientConn is one endpoint of a hardened link. A pump goroutine owns
// the inner Recv, verifying, deduplicating, and re-ordering envelopes into
// an in-order queue that Recv drains; Send runs in the caller's goroutine.
type resilientConn struct {
	inner  Conn
	spec   FaultSpec
	shared *linkResilience

	seq uint64 // next send sequence number (Send is single-goroutine)

	mu     sync.Mutex
	queue  []Frame       // verified, in-order frames awaiting Recv
	err    error         // terminal pump error, after the queue drains
	wake   chan struct{} // replaced-and-closed on every queue/err change
	expect uint64        // next expected receive sequence number (pump only)

	pumpCtx    context.Context
	pumpCancel context.CancelFunc
	pumpDone   chan struct{}
	closeOnce  sync.Once
}

// Send transmits one protocol frame reliably: it envelopes the frame and
// retransmits on sender-visible loss up to the spec's budget, then reports
// the exhaustion as ErrAborted. Retransmit counts are deterministic.
func (c *resilientConn) Send(ctx context.Context, f Frame) error {
	env := appendEnvelope(nil, c.seq, f)
	c.seq++
	ef := Frame{Bits: 8 * len(env), Data: env}
	budget := c.spec.maxResend()
	for attempt := 0; ; attempt++ {
		err := c.inner.Send(ctx, ef)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrFrameLost) {
			return err
		}
		if attempt >= budget {
			return fmt.Errorf("%w: retransmit budget %d exhausted", ErrAborted, budget)
		}
		c.shared.retrans.Add(1)
	}
}

// pump owns the inner conn's receive side: it verifies checksums, drops
// duplicates, and appends in-order frames to the queue until the inner
// conn reports a terminal error (close, abort, or pump cancellation).
func (c *resilientConn) pump() {
	defer close(c.pumpDone)
	for {
		f, err := c.inner.Recv(c.pumpCtx)
		if err != nil {
			if c.pumpCtx.Err() != nil {
				err = ErrClosed // reaped by our own Close
			}
			c.fail(err)
			return
		}
		seq, inner, ok := decodeEnvelope(f)
		if !ok || seq != c.expect {
			// Corrupt, or a duplicate of an already-delivered seq (the only
			// way seq can differ under sender-visible loss: a lost frame is
			// retransmitted before the sender ever moves on).
			c.shared.discarded.Add(1)
			continue
		}
		c.expect++
		c.deliver(inner)
	}
}

func (c *resilientConn) deliver(f Frame) {
	c.mu.Lock()
	c.queue = append(c.queue, f)
	close(c.wake)
	c.wake = make(chan struct{})
	c.mu.Unlock()
}

func (c *resilientConn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	close(c.wake)
	c.wake = make(chan struct{})
	c.mu.Unlock()
}

// Recv returns the next verified in-order protocol frame. Frames delivered
// before a peer close are drained first (the transport drain contract);
// the per-message deadline turns a hang — possible only when the peer has
// already aborted without closing — into ErrAborted.
func (c *resilientConn) Recv(ctx context.Context) (Frame, error) {
	timer := time.NewTimer(c.spec.recvDeadline())
	defer timer.Stop()
	for {
		c.mu.Lock()
		if len(c.queue) > 0 {
			f := c.queue[0]
			c.queue = c.queue[1:]
			c.mu.Unlock()
			return f, nil
		}
		if c.err != nil {
			err := c.err
			c.mu.Unlock()
			return Frame{}, err
		}
		wake := c.wake
		c.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return Frame{}, ctx.Err()
		case <-timer.C:
			return Frame{}, fmt.Errorf("%w: no frame within %v", ErrAborted, c.spec.recvDeadline())
		}
	}
}

// Close releases the endpoint: the pump is canceled and reaped, then the
// inner conn closed. Idempotent.
func (c *resilientConn) Close() error {
	c.closeOnce.Do(func() {
		c.pumpCancel()
		c.inner.Close()
		<-c.pumpDone
	})
	return nil
}

// Stats delegates to the inner conn: the wire traffic of a hardened link
// is whatever actually crossed it, envelopes, retransmits, and duplicates
// included.
func (c *resilientConn) Stats() LinkStats { return c.inner.Stats() }

// Resilience snapshots the link's recovery counters (both directions).
func (c *resilientConn) Resilience() ResilienceStats {
	rs := ResilienceStats{
		Retransmits:     c.shared.retrans.Load(),
		FramesDiscarded: c.shared.discarded.Load(),
	}
	if fc, ok := c.inner.(*faultyConn); ok {
		rs.FramesLost = fc.out.lost.Load() + fc.in.lost.Load()
	}
	return rs
}
