package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// Net is the socket transport: every frame is encoded with the layout of
// frame.go and actually crosses a net.Conn. With TCP set, Dial opens real
// loopback sockets (one listener per session, one connection per link);
// otherwise links are synchronous net.Pipe pairs. Either way the engine's
// pipelining contract — a Send never blocks on the peer reaching Recv — is
// provided by a per-endpoint writer goroutine fed from a one-frame queue,
// since net.Pipe has no buffering of its own.
type Net struct {
	// TCP selects real loopback sockets; false means net.Pipe.
	TCP bool
	// Addr is the TCP listen address; empty means "127.0.0.1:0".
	Addr string
}

// Name identifies the transport.
func (n Net) Name() string {
	if n.TCP {
		return "tcp"
	}
	return "pipe"
}

// Dial opens k links. For TCP it listens on a loopback port, dials one
// connection per link, and matches each dialed connection to its accepted
// peer by a uvarint index preamble (dial and accept are interleaved, so the
// listener backlog never holds more than one pending handshake); the
// listener is closed before Dial returns.
func (n Net) Dial(k int) ([]Link, error) {
	links := make([]Link, k)
	if !n.TCP {
		for j := range links {
			pa, pb := net.Pipe()
			links[j] = Link{A: newNetConn(pa), B: newNetConn(pb)}
		}
		return links, nil
	}

	addr := n.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	defer ln.Close()

	fail := func(err error) ([]Link, error) {
		for _, l := range links {
			if l.A != nil {
				l.A.Close()
			}
			if l.B != nil {
				l.B.Close()
			}
		}
		return nil, err
	}
	var preamble [binary.MaxVarintLen64]byte
	for j := 0; j < k; j++ {
		c, derr := net.DialTimeout("tcp", ln.Addr().String(), 10*time.Second)
		if derr != nil {
			return fail(fmt.Errorf("transport: dial link %d: %w", j, derr))
		}
		if _, werr := c.Write(preamble[:binary.PutUvarint(preamble[:], uint64(j))]); werr != nil {
			c.Close()
			return fail(fmt.Errorf("transport: link %d preamble: %w", j, werr))
		}
		links[j].A = newNetConn(c)

		ac, aerr := ln.Accept()
		if aerr != nil {
			return fail(fmt.Errorf("transport: accept link %d: %w", j, aerr))
		}
		nc := newNetConn(ac)
		idx, perr := binary.ReadUvarint(nc.br)
		if perr != nil || idx >= uint64(k) || links[idx].B != nil {
			nc.Close()
			return fail(fmt.Errorf("transport: bad link preamble (idx %d, err %v)", idx, perr))
		}
		links[idx].B = nc
	}
	return links, nil
}

// netConn is one endpoint over a real net.Conn. Reads happen in the calling
// goroutine; writes are handed to a writer goroutine through a one-frame
// queue so Send never blocks on the peer draining the connection.
type netConn struct {
	c      net.Conn
	br     *bufio.Reader
	sendq  chan Frame
	closed chan struct{}
	once   sync.Once
	stats  endStats

	// dlMu serializes read-deadline changes; dlGen invalidates a canceled
	// context's pending deadline-poisoning callback (see Recv).
	dlMu  sync.Mutex
	dlGen uint64
}

func newNetConn(c net.Conn) *netConn {
	nc := &netConn{
		c:      c,
		br:     bufio.NewReader(c),
		sendq:  make(chan Frame, 1),
		closed: make(chan struct{}),
	}
	go nc.writeLoop()
	return nc
}

// writeLoop serializes queued frames onto the connection. On Close it
// drains frames already queued (so a frame accepted by Send just before
// Close still reaches the peer, matching the drain semantics of the other
// transports) and then closes the socket — which is also what finally
// unblocks the peer's reads. A write stalled on a peer that will never
// read is unblocked by that peer closing its own endpoint.
func (c *netConn) writeLoop() {
	defer c.c.Close()
	defer c.Close() // a writer death must mark the endpoint closed
	var buf []byte
	bw := bufio.NewWriter(c.c)
	emit := func(f Frame) bool {
		buf = AppendFrame(buf[:0], f)
		if _, err := bw.Write(buf); err != nil {
			return false
		}
		// Flush per frame: request/reply rounds need the frame on the
		// wire now, not when the buffer fills.
		return bw.Flush() == nil
	}
	for {
		select {
		case f := <-c.sendq:
			if !emit(f) {
				return
			}
		case <-c.closed:
			for {
				select {
				case f := <-c.sendq:
					if !emit(f) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// Send queues one frame for the writer goroutine. Wire bytes are counted at
// hand-off; a frame accepted here but destroyed by a teardown race is the
// transport analogue of a metered message the peer never drained.
func (c *netConn) Send(ctx context.Context, f Frame) error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	select {
	case c.sendq <- f:
		c.stats.sent(f.Bits)
		return nil
	case <-c.closed:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Recv reads one frame from the connection. Context cancellation is honored
// by forcing a read deadline; any connection-level read failure (EOF, reset,
// closed pipe) is reported as ErrClosed, since from the session's view the
// link is gone either way.
func (c *netConn) Recv(ctx context.Context) (Frame, error) {
	if done := ctx.Done(); done != nil {
		// Clear any deadline a previously canceled context left behind,
		// then arm this context's cancellation to abort the blocking read.
		// The generation counter closes a race: a cancellation that fires
		// after this Recv's read already succeeded must not leave a poison
		// deadline behind for the next Recv, so the callback only sets the
		// deadline while its own generation is current, and an unsuccessful
		// stop() (callback started or finished) re-clears under the lock.
		c.dlMu.Lock()
		c.dlGen++
		gen := c.dlGen
		c.c.SetReadDeadline(time.Time{})
		c.dlMu.Unlock()
		stop := context.AfterFunc(ctx, func() {
			c.dlMu.Lock()
			defer c.dlMu.Unlock()
			if c.dlGen == gen {
				c.c.SetReadDeadline(time.Unix(1, 0))
			}
		})
		defer func() {
			if !stop() {
				c.dlMu.Lock()
				c.dlGen++
				c.c.SetReadDeadline(time.Time{})
				c.dlMu.Unlock()
			}
		}()
	}
	f, err := readFrame(c.br)
	if err != nil {
		if ctx.Err() != nil {
			return Frame{}, ctx.Err()
		}
		if err == ErrFrameTooLarge {
			c.Close()
			return Frame{}, err
		}
		return Frame{}, ErrClosed
	}
	c.stats.received(f.Bits)
	return f, nil
}

// Close releases the endpoint: the writer goroutine flushes frames already
// queued and then closes the socket, unblocking the peer's (and this
// endpoint's) reads. Idempotent.
func (c *netConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// Stats snapshots the endpoint's counters.
func (c *netConn) Stats() LinkStats { return c.stats.snapshot() }
