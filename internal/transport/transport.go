// Package transport provides the framed message links that coordinator-model
// protocol sessions run over.
//
// A session between the coordinator and k players uses k independent Links;
// each Link is a bidirectional, ordered, reliable connection carrying Frames
// (bit-strings with an exact bit length, the unit the engine meters). Three
// transports implement the same Conn contract:
//
//   - Chan: in-process buffered channels — the zero-copy fast path every
//     session used before this package existed. Frames cross goroutines by
//     reference; nothing is serialized. Byte counters are computed
//     arithmetically from the framing layout, so accounting is identical to
//     the transports that put real bytes on a wire.
//
//   - Net: net.Pipe or TCP-loopback sockets. Every frame is encoded with the
//     length-prefixed layout of frame.go and actually crosses the connection,
//     validating the bit accounting against wire bytes.
//
//   - WAN: the in-process path with deterministic latency, bandwidth, and
//     jitter injection per frame, for running protocols under simulated
//     wide-area conditions.
//
// # Close semantics
//
// Closing an endpoint is the session-teardown signal:
//
//   - the peer's Recv first drains frames already delivered, then returns
//     ErrClosed;
//   - the peer's Send returns ErrClosed instead of blocking forever;
//   - operations on the closed endpoint itself return ErrClosed.
//
// Every transport guarantees at least one frame of send buffering per
// direction, so a reply deposited by one side never blocks on the other side
// reaching Recv — the pipelining property the engine's fan-out relies on.
package transport

import (
	"context"
	"errors"
)

// ErrClosed is returned by Send and Recv once either endpoint of the link
// has been closed (after any already-delivered frames are drained).
var ErrClosed = errors.New("transport: link closed")

// Frame is one message on a link: the payload bytes of a bit-string plus its
// exact bit length. Data holds ceil(Bits/8) bytes in the MSB-first packing
// of wire.Writer, with zero padding in the final byte. A Frame is immutable
// once sent; receivers must not modify Data.
type Frame struct {
	// Bits is the exact payload length in bits.
	Bits int
	// Data is the packed payload, ceil(Bits/8) bytes (or more; extra bytes
	// are ignored).
	Data []byte
}

// LinkStats counts the framed wire traffic that crossed one endpoint.
// Bytes are on-the-wire sizes: header plus packed payload per frame, whether
// or not the transport actually serialized (the in-process transport counts
// the same bytes the TCP transport puts on the socket).
type LinkStats struct {
	// BytesOut and BytesIn are framed bytes sent and received.
	BytesOut, BytesIn int64
	// FramesOut and FramesIn are the frame counts.
	FramesOut, FramesIn int64
}

// Conn is one endpoint of a Link. Send and Recv block until the frame is
// handed off (Send may return before the peer receives — transports buffer
// at least one frame per direction), the context is done, or the link is
// closed. A Conn's Send and Recv may each be used from one goroutine at a
// time; Send and Recv may be concurrent with each other and with Stats.
type Conn interface {
	// Send transmits one frame. It returns ErrClosed if either endpoint is
	// closed, or the context error if ctx is done first.
	Send(ctx context.Context, f Frame) error
	// Recv blocks for the next frame. After the peer closes, it drains
	// frames already delivered and then returns ErrClosed.
	Recv(ctx context.Context) (Frame, error)
	// Close releases the endpoint and unblocks the peer (see the package
	// comment for the exact semantics). Close is idempotent.
	Close() error
	// Stats snapshots the endpoint's wire-byte counters.
	Stats() LinkStats
}

// TrySender is implemented by transports whose Send can complete without
// blocking when buffer space is free — the engine's broadcast fast path.
// TrySend reports whether the frame was accepted; false means the caller
// must fall back to Send.
type TrySender interface {
	TrySend(f Frame) bool
}

// TryReceiver is implemented by transports whose Recv can complete without
// blocking when a frame is already delivered — the engine's gather fast
// path. TryRecv reports whether a frame was available.
type TryReceiver interface {
	TryRecv() (Frame, bool)
}

// Link is one bidirectional connection: two Conn endpoints. By convention
// the engine gives A to the coordinator and B to the player.
type Link struct {
	A, B Conn
}

// Dialer opens the links of one session. Dial(k) returns k independent
// links; the caller owns both endpoints of each and must Close them.
type Dialer interface {
	// Name identifies the transport in logs and reports.
	Name() string
	// Dial opens k independent links.
	Dial(k int) ([]Link, error)
}
