package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"tricomm/internal/wire"
)

// TestFrameGoldenLayout pins the frame byte layout. These bytes are the
// wire format; changing them silently would break cross-version sessions,
// so any diff here must be deliberate.
func TestFrameGoldenLayout(t *testing.T) {
	cases := []struct {
		name string
		f    Frame
		hex  string
	}{
		{"empty", Frame{Bits: 0, Data: nil}, "00"},
		{"one-bit", Frame{Bits: 1, Data: []byte{0x80}}, "0180"},
		{"ack-like", Frame{Bits: 1, Data: []byte{0x80, 0xff}}, "0180"}, // extra bytes ignored
		{"byte", Frame{Bits: 8, Data: []byte{0xab}}, "08ab"},
		{"two-bytes-ragged", Frame{Bits: 13, Data: []byte{0xde, 0xa8}}, "0ddea8"},
		{"hdr-two-byte", Frame{Bits: 300, Data: bytes.Repeat([]byte{0x5a}, 38)},
			"ac02" + hex.EncodeToString(bytes.Repeat([]byte{0x5a}, 38))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := AppendFrame(nil, tc.f)
			if g := hex.EncodeToString(got); g != tc.hex {
				t.Fatalf("AppendFrame = %s, want %s", g, tc.hex)
			}
			if len(got) != FrameSize(tc.f.Bits) {
				t.Fatalf("FrameSize(%d) = %d, encoded %d bytes", tc.f.Bits, FrameSize(tc.f.Bits), len(got))
			}
			dec, n, err := DecodeFrame(got)
			if err != nil {
				t.Fatalf("DecodeFrame: %v", err)
			}
			if n != len(got) || dec.Bits != tc.f.Bits {
				t.Fatalf("DecodeFrame = %d bits / %d bytes, want %d / %d", dec.Bits, n, tc.f.Bits, len(got))
			}
			nb := (tc.f.Bits + 7) / 8
			if !bytes.Equal(dec.Data, tc.f.Data[:nb]) {
				t.Fatalf("payload %x, want %x", dec.Data, tc.f.Data[:nb])
			}
		})
	}
}

// TestFrameHeaderMatchesWireUvarint pins the claim in frame.go: the frame
// header is exactly the byte-aligned encoding wire.Writer.WriteUvarint
// produces, so the framing layer and the bit-metering layer share one
// integer codec.
func TestFrameHeaderMatchesWireUvarint(t *testing.T) {
	for _, bits := range []int{0, 1, 7, 127, 128, 300, 16383, 16384, 1 << 20, MaxFrameBits} {
		var w wire.Writer
		w.WriteUvarint(uint64(bits))
		if w.BitLen()%8 != 0 {
			t.Fatalf("wire uvarint of %d is not byte-aligned: %d bits", bits, w.BitLen())
		}
		hdr := binary.AppendUvarint(nil, uint64(bits))
		if !bytes.Equal(hdr, w.Bytes()) {
			t.Fatalf("header(%d) = %x, wire uvarint = %x", bits, hdr, w.Bytes())
		}
		if HeaderBytes(bits) != w.BitLen()/8 {
			t.Fatalf("HeaderBytes(%d) = %d, wire uses %d", bits, HeaderBytes(bits), w.BitLen()/8)
		}
	}
}

// TestDecodeFrameCorrupt exercises the decoder's failure modes.
func TestDecodeFrameCorrupt(t *testing.T) {
	if _, _, err := DecodeFrame(nil); err == nil {
		t.Error("empty buffer decoded")
	}
	// Header larger than MaxFrameBits.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	if _, _, err := DecodeFrame(huge); err != ErrFrameTooLarge {
		t.Errorf("oversized header: err = %v, want ErrFrameTooLarge", err)
	}
	// Truncated payload.
	trunc := AppendFrame(nil, Frame{Bits: 64, Data: make([]byte, 8)})
	if _, _, err := DecodeFrame(trunc[:4]); err != ErrFrameTruncated {
		t.Errorf("truncated payload: err = %v, want ErrFrameTruncated", err)
	}
	// readFrame must agree on the stream form.
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(huge))); err != ErrFrameTooLarge {
		t.Errorf("readFrame oversized header: err = %v, want ErrFrameTooLarge", err)
	}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(trunc[:4]))); err != ErrFrameTruncated {
		t.Errorf("readFrame truncated payload: err = %v, want ErrFrameTruncated", err)
	}
}

// FuzzFrameRoundTrip fuzzes encode→decode identity for the frame codec and
// checks that decoding arbitrary bytes never panics or over-reads.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint(0))
	f.Add([]byte{0x80}, uint(7))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, uint(3))
	f.Add(bytes.Repeat([]byte{0x55}, 300), uint(0))
	f.Fuzz(func(t *testing.T, payload []byte, trim uint) {
		// Interpret the inputs as a well-formed frame: bits spans the whole
		// payload minus up to 7 trimmed bits, final byte zero-padded the way
		// wire.Writer leaves it.
		bits := 8 * len(payload)
		if bits > 0 {
			bits -= int(trim % 8)
		}
		nb := (bits + 7) / 8
		data := append([]byte(nil), payload[:nb]...)
		if pad := 8*nb - bits; pad > 0 && nb > 0 {
			data[nb-1] &^= byte(1<<pad - 1)
		}

		enc := AppendFrame(nil, Frame{Bits: bits, Data: data})
		dec, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("decode of encoded frame failed: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
		}
		if dec.Bits != bits || !bytes.Equal(dec.Data, data) {
			t.Fatalf("round trip: got %d bits %x, want %d bits %x", dec.Bits, dec.Data, bits, data)
		}

		// Stream decoder must agree byte for byte.
		sf, err := readFrame(bufio.NewReader(bytes.NewReader(enc)))
		if err != nil {
			t.Fatalf("readFrame of encoded frame failed: %v", err)
		}
		if sf.Bits != bits || !bytes.Equal(sf.Data, data) {
			t.Fatalf("stream round trip diverged: %d bits %x", sf.Bits, sf.Data)
		}

		// Decoding the raw fuzz input as a frame must not panic, and on
		// success must not claim more bytes than it was given.
		if g, n, err := DecodeFrame(payload); err == nil {
			if n > len(payload) || (g.Bits+7)/8 != len(g.Data) {
				t.Fatalf("decode of raw input inconsistent: n=%d bits=%d data=%d", n, g.Bits, len(g.Data))
			}
		}
	})
}
