package transport

import "tricomm/internal/obs"

// Transport-layer metrics. Everything here is an observed effect, never an
// input: wire totals are folded in once per finished session (the engine
// calls ObserveWire after the session's Stats and error are already
// fixed), and the per-event fault counters record injections that the
// deterministic fault schedule had already decided. No protocol, schedule,
// or accounting decision ever reads a metric, so instrumented and
// uninstrumented runs produce byte-identical outputs.
var (
	mWireBytes = obs.NewCounter("tricomm_transport_wire_bytes_total",
		"Framed wire bytes across all session links, header overhead included.")
	mFrames = obs.NewCounter("tricomm_transport_frames_total",
		"Frames that crossed session links in either direction.")
	mRetransmits = obs.NewCounter("tricomm_transport_retransmits_total",
		"Frames re-sent by the resilience layer after sender-visible loss.")
	mFramesLost = obs.NewCounter("tricomm_transport_frames_lost_total",
		"Injected frame drops and corruptions observed by senders.")
	mFaults = obs.NewCounterVec("tricomm_transport_faults_injected_total",
		"Faults injected by the deterministic fault layer, by kind.", "type")
)

// ObserveWire folds one finished session's link counters into the global
// transport metrics. The engine calls it exactly once per transport-backed
// session, from the session's final accounting step.
func ObserveWire(wireBytes, frames, retransmits, framesLost int64) {
	mWireBytes.Add(float64(wireBytes))
	mFrames.Add(float64(frames))
	mRetransmits.Add(float64(retransmits))
	mFramesLost.Add(float64(framesLost))
}

// countFault records one injected fault event. The label vocabulary is
// closed (drop, corrupt, duplicate, stall, disconnect), so cardinality is
// bounded by the fault model itself.
func countFault(kind string) { mFaults.With(kind).Inc() }
