package transport

import (
	"context"
	"sync"
)

// Chan is the in-process transport: each direction of a link is a buffered
// Go channel and frames cross by reference, exactly as the engine's
// pre-transport runtime moved messages. Nothing is serialized; byte
// counters are computed arithmetically from the framing layout, so the
// accounting matches the transports that put real bytes on a wire. The
// steady-state hot path allocates nothing (pinned by BenchmarkChanRoundTrip).
type Chan struct {
	// Buf is the per-direction frame buffer depth; 0 means 1. One slot is
	// enough to let a round-trip pipeline: a fan-out Send deposits without
	// waiting for the peer to reach Recv, and a reply never blocks on the
	// sender coming back around.
	Buf int
}

// Name identifies the transport.
func (Chan) Name() string { return "chan" }

// Dial opens k in-process links.
func (c Chan) Dial(k int) ([]Link, error) {
	buf := c.Buf
	if buf <= 0 {
		buf = 1
	}
	links := make([]Link, k)
	for j := range links {
		links[j] = newChanLink(buf)
	}
	return links, nil
}

func newChanLink(buf int) Link {
	ab := make(chan Frame, buf) // A → B
	ba := make(chan Frame, buf) // B → A
	ca := make(chan struct{})   // closed when A closes
	cb := make(chan struct{})   // closed when B closes
	a := &chanConn{out: ab, in: ba, closed: ca, peerClosed: cb}
	b := &chanConn{out: ba, in: ab, closed: cb, peerClosed: ca}
	return Link{A: a, B: b}
}

// chanConn is one endpoint of an in-process link. The data channels are
// never closed — teardown is signaled through the closed channels — so a
// concurrent Send can never panic on a closed channel.
type chanConn struct {
	out        chan Frame
	in         chan Frame
	closed     chan struct{} // this endpoint closed
	peerClosed chan struct{} // peer endpoint closed
	once       sync.Once
	stats      endStats
}

// Send deposits f into the link's buffer. A closed link is reported
// up-front so a dead peer is observed deterministically instead of the
// frame slipping into a buffer nobody will drain.
func (c *chanConn) Send(ctx context.Context, f Frame) error {
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peerClosed:
		return ErrClosed
	default:
	}
	select {
	case c.out <- f:
		c.stats.sent(f.Bits)
		return nil
	case <-c.closed:
		return ErrClosed
	case <-c.peerClosed:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TrySend deposits f only if buffer space is immediately available.
func (c *chanConn) TrySend(f Frame) bool {
	select {
	case <-c.closed:
		return false
	case <-c.peerClosed:
		return false
	default:
	}
	select {
	case c.out <- f:
		c.stats.sent(f.Bits)
		return true
	default:
		return false
	}
}

// Recv blocks for the next frame. When the peer closes, frames it already
// sent are drained first (the drain race mirrors the engine's historical
// shutdown semantics), then ErrClosed is reported.
func (c *chanConn) Recv(ctx context.Context) (Frame, error) {
	select {
	case f := <-c.in:
		c.stats.received(f.Bits)
		return f, nil
	case <-c.closed:
		return Frame{}, ErrClosed
	case <-c.peerClosed:
		// Drain race: a frame may already be in flight.
		select {
		case f := <-c.in:
			c.stats.received(f.Bits)
			return f, nil
		default:
			return Frame{}, ErrClosed
		}
	case <-ctx.Done():
		return Frame{}, ctx.Err()
	}
}

// TryRecv returns a frame only if one is already delivered.
func (c *chanConn) TryRecv() (Frame, bool) {
	select {
	case f := <-c.in:
		c.stats.received(f.Bits)
		return f, true
	default:
		return Frame{}, false
	}
}

// Close releases the endpoint. Idempotent.
func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// Stats snapshots the endpoint's counters.
func (c *chanConn) Stats() LinkStats { return c.stats.snapshot() }
