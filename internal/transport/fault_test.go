package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

func TestParseFaultSpec(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    FaultSpec
		wantErr bool
	}{
		{in: "", want: FaultSpec{}},
		{in: "off", want: FaultSpec{}},
		{in: "none", want: FaultSpec{}},
		{in: "lossy", want: FaultSpec{Drop: 0.05, Duplicate: 0.02, Corrupt: 0.02}},
		{in: "chaos", want: FaultSpec{Drop: 0.15, Duplicate: 0.1, Corrupt: 0.1, Stall: 0.05, Disconnect: 0.002}},
		{in: `{"seed":7,"drop":0.5,"max_resend":3}`, want: FaultSpec{Seed: 7, Drop: 0.5, MaxResend: 3}},
		{in: "bogus", wantErr: true},
		{in: `{"drop":1.5}`, wantErr: true},
		{in: `{"drop":-0.1}`, wantErr: true},
		{in: `{"nope":1}`, wantErr: true},
		{in: `{"max_resend":-1}`, wantErr: true},
	} {
		got, err := ParseFaultSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseFaultSpec(%q) = %+v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFaultSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseFaultSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	// Round trip through the canonical JSON form.
	spec := FaultSpec{Seed: 42, Drop: 0.1, Corrupt: 0.05, MaxResend: 8, DeadlineMS: 500}
	back, err := ParseFaultSpec(spec.JSON())
	if err != nil || back != spec {
		t.Fatalf("JSON round trip: %+v, %v, want %+v", back, err, spec)
	}
}

func TestFaultSpecWithSeed(t *testing.T) {
	if got := (FaultSpec{Drop: 0.1}).WithSeed(99); got.Seed != 99 {
		t.Fatalf("WithSeed on zero seed = %d, want 99", got.Seed)
	}
	if got := (FaultSpec{Seed: 5}).WithSeed(99); got.Seed != 5 {
		t.Fatalf("WithSeed must not override an explicit seed: got %d", got.Seed)
	}
}

// sendOutcomes runs n Sends over a fresh faulty link and records, per
// transmission, the outcome class and what (if anything) arrived.
func sendOutcomes(t *testing.T, spec FaultSpec, n int) []string {
	t.Helper()
	links, err := Faulty{Inner: Chan{Buf: 2 * n}, Spec: spec}.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	defer closeLinks(links)
	ctx := context.Background()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		err := links[0].A.Send(ctx, frame(64, byte(i+1)))
		switch {
		case err == nil:
			out = append(out, "ok")
		case errors.Is(err, ErrFrameLost):
			out = append(out, "lost")
		case errors.Is(err, ErrAborted):
			out = append(out, "aborted")
			return out
		default:
			t.Fatalf("send %d: %v", i, err)
		}
	}
	return out
}

// TestFaultScheduleDeterministic pins the reproducibility contract: the
// same seed replays the identical fault schedule, a different seed does not.
func TestFaultScheduleDeterministic(t *testing.T) {
	spec := FaultSpec{Seed: 1234, Drop: 0.2, Corrupt: 0.15, Duplicate: 0.1, Disconnect: 0.01}
	a := sendOutcomes(t, spec, 200)
	b := sendOutcomes(t, spec, 200)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	c := sendOutcomes(t, FaultSpec{Seed: 1235, Drop: 0.2, Corrupt: 0.15, Duplicate: 0.1, Disconnect: 0.01}, 200)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced the identical fault schedule")
	}
}

// TestFaultyDrop pins that a dropped frame is sender-visible loss and that
// nothing arrives at the receiver.
func TestFaultyDrop(t *testing.T) {
	links, err := Faulty{Inner: Chan{Buf: 8}, Spec: FaultSpec{Seed: 1, Drop: 0.999999}}.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	defer closeLinks(links)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := links[0].A.Send(ctx, frame(64, 0xaa)); !errors.Is(err, ErrFrameLost) {
			t.Fatalf("send %d over drop-everything link: %v, want ErrFrameLost", i, err)
		}
	}
	rctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if f, err := links[0].B.Recv(rctx); err == nil {
		t.Fatalf("dropped frame arrived: %v", f)
	}
	st := links[0].A.Stats()
	if st.FramesOut != 10 || st.BytesOut != 10*int64(FrameSize(64)) {
		t.Fatalf("dropped frames must still be counted as attempted traffic: %+v", st)
	}
}

// TestFaultyCorrupt pins corruption semantics: the sender sees loss, the
// receiver gets the frame with exactly one bit flipped.
func TestFaultyCorrupt(t *testing.T) {
	links, err := Faulty{Inner: Chan{Buf: 8}, Spec: FaultSpec{Seed: 2, Corrupt: 0.999999}}.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	defer closeLinks(links)
	ctx := context.Background()
	sent := frame(64, 0x5f)
	orig := append([]byte(nil), sent.Data...)
	if err := links[0].A.Send(ctx, sent); !errors.Is(err, ErrFrameLost) {
		t.Fatalf("send over corrupt-everything link: %v, want ErrFrameLost", err)
	}
	if !bytes.Equal(sent.Data, orig) {
		t.Fatal("corruption mutated the caller's frame in place")
	}
	got, err := links[0].B.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got.Data {
		b := got.Data[i] ^ orig[i]
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupted frame differs in %d bits, want exactly 1", diff)
	}
}

// TestFaultyDisconnect pins hard-disconnect semantics: the first
// transmission kills the link, both endpoints observe ErrAborted from then
// on, and a Recv blocked at disconnect time is unblocked.
func TestFaultyDisconnect(t *testing.T) {
	links, err := Faulty{Inner: Chan{}, Spec: FaultSpec{Seed: 3, Disconnect: 0.999999}}.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	defer closeLinks(links)
	ctx := context.Background()

	recvErr := make(chan error, 1)
	go func() {
		_, err := links[0].B.Recv(ctx)
		recvErr <- err
	}()
	time.Sleep(10 * time.Millisecond)

	if err := links[0].A.Send(ctx, frame(8, 1)); !errors.Is(err, ErrAborted) {
		t.Fatalf("disconnecting send: %v, want ErrAborted", err)
	}
	select {
	case err := <-recvErr:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("blocked Recv after disconnect: %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("disconnect did not unblock the peer's Recv")
	}
	if err := links[0].B.Send(ctx, frame(8, 2)); !errors.Is(err, ErrAborted) {
		t.Fatalf("peer send after disconnect: %v, want ErrAborted", err)
	}
	if _, err := links[0].A.Recv(ctx); !errors.Is(err, ErrAborted) {
		t.Fatalf("Recv after disconnect: %v, want ErrAborted", err)
	}
}

// TestEnvelopeRoundTrip covers the resilient envelope codec, including the
// guarantee the fault model leans on: any single-bit corruption is caught
// by the checksum.
func TestEnvelopeRoundTrip(t *testing.T) {
	for _, bits := range []int{0, 1, 7, 8, 64, 300} {
		f := frame(bits, 0xb7)
		for seq := uint64(0); seq < 3; seq++ {
			env := appendEnvelope(nil, seq, f)
			gotSeq, got, ok := decodeEnvelope(Frame{Bits: 8 * len(env), Data: env})
			if !ok || gotSeq != seq || got.Bits != f.Bits ||
				!bytes.Equal(got.Data, f.Data[:(bits+7)/8]) {
				t.Fatalf("round trip (bits=%d seq=%d): ok=%v seq=%d frame=%+v", bits, seq, ok, gotSeq, got)
			}
			// Flip every bit in turn: the decode must reject each mutation
			// (CRC32 detects all single-bit errors).
			for i := 0; i < 8*len(env); i++ {
				mut := append([]byte(nil), env...)
				mut[i/8] ^= 1 << (7 - i%8)
				if _, _, ok := decodeEnvelope(Frame{Bits: 8 * len(mut), Data: mut}); ok {
					t.Fatalf("bits=%d seq=%d: flipped bit %d went undetected", bits, seq, i)
				}
			}
		}
	}
	if _, _, ok := decodeEnvelope(frame(16, 0)); ok {
		t.Fatal("undersized envelope decoded")
	}
}

// TestHardenReliableDelivery is the transport-level resilience oracle: over
// a link that drops, corrupts, and duplicates frames, a hardened session
// still delivers every frame intact, in order, exactly once — both ways.
func TestHardenReliableDelivery(t *testing.T) {
	spec := FaultSpec{Seed: 77, Drop: 0.25, Corrupt: 0.2, Duplicate: 0.2, DeadlineMS: 20000}
	links, err := Faulty{Inner: Chan{Buf: 4}, Spec: spec}.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	hl := Harden(links[0], spec)
	defer hl.A.Close()
	defer hl.B.Close()
	ctx := context.Background()

	const n = 150
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			f, err := hl.B.Recv(ctx)
			if err != nil {
				errc <- fmt.Errorf("recv %d: %w", i, err)
				return
			}
			want := frame(64+i%5, byte(i+1))
			if f.Bits != want.Bits || !bytes.Equal(f.Data, want.Data[:(want.Bits+7)/8]) {
				errc <- fmt.Errorf("frame %d: got %d bits %x, want %d bits %x",
					i, f.Bits, f.Data, want.Bits, want.Data)
				return
			}
			if err := hl.B.Send(ctx, f); err != nil {
				errc <- fmt.Errorf("echo %d: %w", i, err)
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		if err := hl.A.Send(ctx, frame(64+i%5, byte(i+1))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if _, err := hl.A.Recv(ctx); err != nil {
			t.Fatalf("echo recv %d: %v", i, err)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	rs := hl.A.(ResilienceReporter).Resilience()
	if rs.Retransmits == 0 || rs.FramesLost == 0 || rs.FramesDiscarded == 0 {
		t.Fatalf("fault rates this high must exercise every recovery path: %+v", rs)
	}
	if rs.Retransmits != rs.FramesLost {
		t.Fatalf("every sender-visible loss is retransmitted exactly once on a completed run: %+v", rs)
	}
}

// TestHardenAbortsOnBudget pins the typed failure mode: a link too lossy
// for the retransmit budget surfaces ErrAborted, never a hang.
func TestHardenAbortsOnBudget(t *testing.T) {
	spec := FaultSpec{Seed: 9, Drop: 0.999999, MaxResend: 3}
	links, err := Faulty{Inner: Chan{Buf: 4}, Spec: spec}.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	hl := Harden(links[0], spec)
	defer hl.A.Close()
	defer hl.B.Close()
	err = hl.A.Send(context.Background(), frame(64, 1))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("send over drop-everything link: %v, want ErrAborted", err)
	}
	if rs := hl.A.(ResilienceReporter).Resilience(); rs.Retransmits != 3 {
		t.Fatalf("budget of 3 must spend exactly 3 retransmits: %+v", rs)
	}
}

// TestHardenRecvDeadline pins the liveness backstop: a Recv with no peer
// traffic aborts at the configured deadline instead of hanging.
func TestHardenRecvDeadline(t *testing.T) {
	spec := FaultSpec{Drop: 0.1, DeadlineMS: 50}
	links, err := Faulty{Inner: Chan{}, Spec: spec}.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	hl := Harden(links[0], spec)
	defer hl.A.Close()
	defer hl.B.Close()
	start := time.Now()
	_, err = hl.A.Recv(context.Background())
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("deadline Recv: %v, want ErrAborted", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline took %v", d)
	}
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (small slack for runtime goroutines), failing the test on
// timeout — the leak assertion used by the close/abort tests.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d, want <= %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHardenCloseReapsPump pins that closing hardened endpoints — idle,
// mid-traffic, or after an abort — leaks no goroutines.
func TestHardenCloseReapsPump(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, spec := range []FaultSpec{
		{},
		{Seed: 4, Drop: 0.3, Duplicate: 0.2, Corrupt: 0.2},
		{Seed: 5, Disconnect: 0.5},
	} {
		for i := 0; i < 10; i++ {
			links, err := Faulty{Inner: Chan{Buf: 4}, Spec: spec}.Dial(2)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for _, l := range links {
				h := Harden(l, spec)
				h.A.Send(ctx, frame(64, 1))
				h.B.Send(ctx, frame(64, 2))
				h.A.Close()
				h.B.Close()
			}
		}
	}
	waitGoroutines(t, base)
}

// FuzzFaultyLink is the round-trip oracle over arbitrary fault schedules:
// whatever the rates and seed, a hardened link either delivers exactly the
// sent frame sequence in order, or fails with ErrAborted — never silent
// corruption, reordering, or a hang.
func FuzzFaultyLink(f *testing.F) {
	f.Add(uint64(1), uint8(60), uint8(40), uint8(40), uint8(10), []byte("hello fault injection"))
	f.Add(uint64(7), uint8(0), uint8(0), uint8(0), uint8(0), []byte{0xff, 0x00, 0xff})
	f.Add(uint64(42), uint8(250), uint8(10), uint8(10), uint8(3), []byte("mostly dropped"))
	f.Fuzz(func(t *testing.T, seed uint64, drop, corr, dup, resend uint8, payload []byte) {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		spec := FaultSpec{
			Seed:       seed,
			Drop:       float64(drop) / 256,
			Corrupt:    float64(corr) / 256,
			Duplicate:  float64(dup) / 256,
			MaxResend:  int(resend % 32),
			DeadlineMS: 30000,
		}
		links, err := Faulty{Inner: Chan{Buf: 4}, Spec: spec}.Dial(1)
		if err != nil {
			t.Fatal(err)
		}
		hl := Harden(links[0], spec)
		defer hl.A.Close()
		defer hl.B.Close()
		ctx := context.Background()

		n := 1 + int(seed%8)
		sent := 0
		for i := 0; i < n; i++ {
			chunk := payload[i*len(payload)/n:]
			if len(chunk) > 64 {
				chunk = chunk[:64]
			}
			if len(chunk) == 0 {
				chunk = []byte{byte(i)}
			}
			err := hl.A.Send(ctx, Frame{Bits: 8 * len(chunk), Data: chunk})
			if err != nil {
				if !errors.Is(err, ErrAborted) {
					t.Fatalf("send %d: %v, want nil or ErrAborted", i, err)
				}
				break
			}
			sent++
		}
		for i := 0; i < sent; i++ {
			chunk := payload[i*len(payload)/n:]
			if len(chunk) > 64 {
				chunk = chunk[:64]
			}
			if len(chunk) == 0 {
				chunk = []byte{byte(i)}
			}
			got, err := hl.B.Recv(ctx)
			if err != nil {
				if !errors.Is(err, ErrAborted) && !errors.Is(err, ErrClosed) {
					t.Fatalf("recv %d: %v, want frame, ErrAborted, or ErrClosed", i, err)
				}
				return
			}
			if got.Bits != 8*len(chunk) || !bytes.Equal(got.Data, chunk) {
				t.Fatalf("frame %d: got %d bits %x, want %x", i, got.Bits, got.Data, chunk)
			}
		}
	})
}
