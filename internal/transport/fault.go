package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault injection. Faulty wraps any inner dialer and perturbs each frame a
// session sends — drop, duplication, bit corruption, stall, hard disconnect
// — from a splitmix64 stream seeded per (link, direction), exactly the way
// WAN seeds its jitter. The schedule is therefore a pure function of
// (FaultSpec.Seed, link index, direction, transmission index): rerunning a
// session replays the identical faults, which is what makes failures
// reproducible and the resilience layer's retransmit accounting
// deterministic.
//
// Loss is sender-visible: a Send whose frame was dropped, or delivered
// corrupted, returns ErrFrameLost. This models a link layer with
// transmission feedback and is the deliberate design point that keeps
// retransmit counts deterministic — an ack/timeout ARQ would make them a
// function of wall-clock racing. Corrupted frames are still delivered (with
// one bit flipped), so the receiving resilience layer must detect and
// discard them by checksum rather than decode them; duplicated frames are
// delivered twice and must be deduplicated by sequence number.

// Fault-layer errors.
var (
	// ErrFrameLost is returned by a Faulty endpoint's Send when the frame
	// was dropped or delivered corrupted. The resilient layer retransmits
	// on it; a raw Faulty conn surfaces it to the caller.
	ErrFrameLost = errors.New("transport: frame lost (injected fault)")
	// ErrAborted is returned once a link is irrecoverably gone: after an
	// injected hard disconnect, or when the resilient layer exhausts its
	// retransmit budget or per-message deadline. It is distinct from
	// ErrClosed so sessions can tell a fault abort from graceful teardown.
	ErrAborted = errors.New("transport: link aborted")
)

// FaultSpec configures deterministic fault injection on every link of a
// session. All rates are per-transmission probabilities in [0, 1); the zero
// value injects nothing. The spec is JSON-serializable so jobs and CLIs can
// carry it, and the seed makes any failure replayable.
type FaultSpec struct {
	// Seed selects the fault schedule (0 lets callers derive one from the
	// trial seed via WithSeed).
	Seed uint64 `json:"seed,omitempty"`
	// Drop is the probability a frame is silently lost.
	Drop float64 `json:"drop,omitempty"`
	// Duplicate is the probability a frame is delivered twice.
	Duplicate float64 `json:"duplicate,omitempty"`
	// Corrupt is the probability a frame is delivered with one bit flipped.
	Corrupt float64 `json:"corrupt,omitempty"`
	// Stall is the probability a frame is held for StallMS before delivery.
	Stall float64 `json:"stall,omitempty"`
	// StallMS is the stall duration in milliseconds (default 1).
	StallMS float64 `json:"stall_ms,omitempty"`
	// Disconnect is the probability a transmission hard-kills the link:
	// both endpoints observe ErrAborted from then on.
	Disconnect float64 `json:"disconnect,omitempty"`
	// MaxResend bounds the resilient layer's retransmits per message
	// (default 16); past it the sender reports ErrAborted.
	MaxResend int `json:"max_resend,omitempty"`
	// DeadlineMS is the resilient layer's per-message receive deadline in
	// milliseconds (default 30000). It is a liveness backstop: with
	// sender-visible loss it only fires when the peer has already aborted.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Enabled reports whether the spec injects any fault at all.
func (s FaultSpec) Enabled() bool {
	return s.Drop > 0 || s.Duplicate > 0 || s.Corrupt > 0 || s.Stall > 0 || s.Disconnect > 0
}

// WithSeed returns the spec with Seed filled from seed when it is 0 — the
// hook callers use to derive an independent fault schedule per trial while
// an explicit seed still pins one schedule exactly.
func (s FaultSpec) WithSeed(seed uint64) FaultSpec {
	if s.Seed == 0 {
		s.Seed = seed
	}
	return s
}

// JSON returns the canonical JSON encoding of the spec.
func (s FaultSpec) JSON() string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("transport: marshal FaultSpec: %v", err)) // no unmarshalable fields
	}
	return string(b)
}

// Validate checks the rate and parameter ranges.
func (s FaultSpec) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"drop", s.Drop}, {"duplicate", s.Duplicate}, {"corrupt", s.Corrupt},
		{"stall", s.Stall}, {"disconnect", s.Disconnect},
	}
	for _, r := range rates {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("transport: fault %s rate %v out of range [0, 1)", r.name, r.v)
		}
	}
	if s.StallMS < 0 {
		return fmt.Errorf("transport: negative stall_ms %v", s.StallMS)
	}
	if s.MaxResend < 0 {
		return fmt.Errorf("transport: negative max_resend %d", s.MaxResend)
	}
	if s.DeadlineMS < 0 {
		return fmt.Errorf("transport: negative deadline_ms %d", s.DeadlineMS)
	}
	return nil
}

func (s FaultSpec) maxResend() int {
	if s.MaxResend > 0 {
		return s.MaxResend
	}
	return 16
}

func (s FaultSpec) recvDeadline() time.Duration {
	if s.DeadlineMS > 0 {
		return time.Duration(s.DeadlineMS) * time.Millisecond
	}
	return 30 * time.Second
}

func (s FaultSpec) stall() time.Duration {
	if s.StallMS > 0 {
		return time.Duration(s.StallMS * float64(time.Millisecond))
	}
	return time.Millisecond
}

// FaultPresets maps the named fault presets accepted by ParseFaultSpec to
// their specs — the usage-text vocabulary, like TransportNames.
func FaultPresets() map[string]FaultSpec {
	return map[string]FaultSpec{
		"lossy": {Drop: 0.05, Duplicate: 0.02, Corrupt: 0.02},
		"chaos": {Drop: 0.15, Duplicate: 0.1, Corrupt: 0.1, Stall: 0.05, Disconnect: 0.002},
	}
}

// ParseFaultSpec parses a fault argument: "" / "off" / "none" (no faults),
// a preset name from FaultPresets, or a JSON FaultSpec object.
func ParseFaultSpec(s string) (FaultSpec, error) {
	switch s {
	case "", "off", "none":
		return FaultSpec{}, nil
	}
	if spec, ok := FaultPresets()[s]; ok {
		return spec, nil
	}
	if !strings.HasPrefix(strings.TrimSpace(s), "{") {
		names := make([]string, 0, len(FaultPresets()))
		for name := range FaultPresets() {
			names = append(names, name)
		}
		return FaultSpec{}, fmt.Errorf("transport: unknown fault preset %q (valid: off, %s, or a JSON spec)",
			s, strings.Join(names, ", "))
	}
	var spec FaultSpec
	dec := json.NewDecoder(strings.NewReader(s))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return FaultSpec{}, fmt.Errorf("transport: bad fault spec: %v", err)
	}
	if err := spec.Validate(); err != nil {
		return FaultSpec{}, err
	}
	return spec, nil
}

// FaultInjector is implemented by dialers that inject faults. The engine
// uses it to detect a lossy transport, harden each link with the resilient
// layer (Harden), and skip the exact wire-byte cross-check (retransmits and
// envelope overhead intentionally break CheckWire's bound).
type FaultInjector interface {
	FaultProfile() FaultSpec
}

// Faulty wraps any inner dialer and injects Spec's faults on every link.
// With a disabled spec it is a transparent pass-through wrapper (the
// contract suite runs it as such).
type Faulty struct {
	// Inner is the wrapped dialer; nil means Chan{}.
	Inner Dialer
	// Spec is the fault schedule.
	Spec FaultSpec
}

func (f Faulty) inner() Dialer {
	if f.Inner == nil {
		return Chan{}
	}
	return f.Inner
}

// Name identifies the transport.
func (f Faulty) Name() string { return "faulty+" + f.inner().Name() }

// FaultProfile exposes the spec to the engine (FaultInjector).
func (f Faulty) FaultProfile() FaultSpec { return f.Spec }

// Dial opens k links over the inner dialer and wraps every endpoint.
func (f Faulty) Dial(k int) ([]Link, error) {
	links, err := f.inner().Dial(k)
	if err != nil {
		return nil, err
	}
	for j := range links {
		links[j] = f.newLink(j, links[j])
	}
	return links, nil
}

// newLink wraps one link. The two directions get independent fault streams
// seeded like WAN's jitter; the per-direction counter blocks and the dead
// channel are shared by both endpoints, so either endpoint's Stats shows
// the whole link and a disconnect kills both sides.
func (f Faulty) newLink(idx int, l Link) Link {
	ab := &dirCounters{}
	ba := &dirCounters{}
	dead := make(chan struct{})
	var deadOnce sync.Once
	a := &faultyConn{
		inner: l.A, spec: f.Spec, out: ab, in: ba,
		state: f.Spec.Seed ^ splitmix64(uint64(2*idx+1)),
		dead:  dead, deadOnce: &deadOnce,
	}
	b := &faultyConn{
		inner: l.B, spec: f.Spec, out: ba, in: ab,
		state: f.Spec.Seed ^ splitmix64(uint64(2*idx+2)),
		dead:  dead, deadOnce: &deadOnce,
	}
	return Link{A: a, B: b}
}

// dirCounters is one direction's shared counter block. Everything is
// counted on the sending side at Send time — including the bytes the
// receiver will see — so snapshots taken at protocol quiescent points are
// deterministic (receiver-side processing of an injected duplicate may lag
// a snapshot; its send never does).
type dirCounters struct {
	bytes  atomic.Int64 // attempted wire bytes, retransmits and dups included
	frames atomic.Int64
	lost   atomic.Int64 // injected drops + corruptions
}

// faultyConn is one endpoint of a fault-injected link.
type faultyConn struct {
	inner    Conn
	spec     FaultSpec
	out, in  *dirCounters
	dead     chan struct{}
	deadOnce *sync.Once

	mu    sync.Mutex // guards state (Send is single-goroutine, but be safe)
	state uint64     // splitmix64 fault stream for this direction
}

// draw returns the next six fault-schedule values for one transmission:
// disconnect, drop, corrupt, corrupt-bit, duplicate, stall. Every category
// is drawn on every transmission whether or not its rate is zero, so a
// transmission's faults depend only on its index in the direction's stream.
func (c *faultyConn) draw() (disc, drop, corr float64, bit uint64, dup, stall float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	u := func() float64 { return float64(splitmixNext(&c.state)>>11) / (1 << 53) }
	disc = u()
	drop = u()
	corr = u()
	bit = splitmixNext(&c.state)
	dup = u()
	stall = u()
	return
}

// Send transmits f through the fault schedule. It returns ErrFrameLost
// when the frame was dropped or delivered corrupted (sender-visible loss),
// and ErrAborted once the link has hard-disconnected.
func (c *faultyConn) Send(ctx context.Context, f Frame) error {
	select {
	case <-c.dead:
		return ErrAborted
	default:
	}
	disc, drop, corr, bit, dup, stall := c.draw()
	if disc < c.spec.Disconnect {
		c.deadOnce.Do(func() {
			close(c.dead)
			countFault("disconnect")
		})
		return ErrAborted
	}
	if drop < c.spec.Drop {
		// Dropped on the wire: the bytes were spent, nothing arrives.
		c.out.bytes.Add(int64(FrameSize(f.Bits)))
		c.out.frames.Add(1)
		c.out.lost.Add(1)
		countFault("drop")
		return ErrFrameLost
	}
	if corr < c.spec.Corrupt && len(f.Data) > 0 {
		// Deliver a copy with one deterministic bit flipped; the receiver's
		// checksum must catch it. Loss is still reported to the sender.
		data := append([]byte(nil), f.Data...)
		i := bit % uint64(len(data)*8)
		data[i/8] ^= 1 << (7 - i%8)
		if err := c.send(ctx, Frame{Bits: f.Bits, Data: data}); err != nil {
			return err
		}
		c.out.lost.Add(1)
		countFault("corrupt")
		return ErrFrameLost
	}
	if stall < c.spec.Stall {
		countFault("stall")
		t := time.NewTimer(c.spec.stall())
		select {
		case <-t.C:
		case <-c.dead:
			t.Stop()
			return ErrAborted
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if err := c.send(ctx, f); err != nil {
		return err
	}
	if dup < c.spec.Duplicate {
		if err := c.send(ctx, f); err != nil {
			return err
		}
		countFault("duplicate")
	}
	return nil
}

// send performs one actual transmission on the inner conn, counting it.
func (c *faultyConn) send(ctx context.Context, f Frame) error {
	if err := c.inner.Send(ctx, f); err != nil {
		return err
	}
	c.out.bytes.Add(int64(FrameSize(f.Bits)))
	c.out.frames.Add(1)
	return nil
}

// Recv passes through to the inner conn, surfacing ErrAborted once the
// link has hard-disconnected. With a disconnect rate configured, a blocked
// Recv is unblocked by a watcher canceling a derived context when the
// link dies.
func (c *faultyConn) Recv(ctx context.Context) (Frame, error) {
	select {
	case <-c.dead:
		return Frame{}, ErrAborted
	default:
	}
	if c.spec.Disconnect > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		go func() {
			select {
			case <-c.dead:
				cancel()
			case <-ctx.Done():
			}
		}()
	}
	f, err := c.inner.Recv(ctx)
	if err != nil {
		select {
		case <-c.dead:
			return Frame{}, ErrAborted
		default:
		}
		return Frame{}, err
	}
	return f, nil
}

// Close releases the endpoint. Idempotent.
func (c *faultyConn) Close() error { return c.inner.Close() }

// Stats snapshots the link's shared counters: out is this direction's
// attempted traffic, in is the peer direction's (sender-counted, so the
// numbers are deterministic at quiescent points even when an injected
// duplicate is still in flight).
func (c *faultyConn) Stats() LinkStats {
	return LinkStats{
		BytesOut:  c.out.bytes.Load(),
		BytesIn:   c.in.bytes.Load(),
		FramesOut: c.out.frames.Load(),
		FramesIn:  c.in.frames.Load(),
	}
}
