package transport

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// dialers returns every transport under test. The contract suite runs each
// through identical scenarios — behavior differences between transports
// are bugs, not features.
func dialers() []Dialer {
	return []Dialer{
		Chan{},
		Net{},
		Net{TCP: true},
		WAN{Latency: 50 * time.Microsecond, Jitter: 50 * time.Microsecond, Bandwidth: 1 << 30, Seed: 7},
		Faulty{Inner: Chan{}}, // disabled spec: must behave as a pass-through
	}
}

func frame(bits int, pattern byte) Frame {
	nb := (bits + 7) / 8
	data := bytes.Repeat([]byte{pattern}, nb)
	if pad := 8*nb - bits; pad > 0 && nb > 0 {
		data[nb-1] &^= byte(1<<pad - 1)
	}
	return Frame{Bits: bits, Data: data}
}

func closeLinks(links []Link) {
	for _, l := range links {
		l.A.Close()
		l.B.Close()
	}
}

// TestConnRoundTrip sends frames of assorted sizes both ways on every
// transport and checks contents and byte counters.
func TestConnRoundTrip(t *testing.T) {
	sizes := []int{0, 1, 13, 64, 300, 4097}
	for _, d := range dialers() {
		t.Run(d.Name(), func(t *testing.T) {
			links, err := d.Dial(2)
			if err != nil {
				t.Fatal(err)
			}
			defer closeLinks(links)
			ctx := context.Background()
			l := links[1]
			var wantBytes int64
			for i, bits := range sizes {
				f := frame(bits, byte(0x11*(i+1)))
				if err := l.A.Send(ctx, f); err != nil {
					t.Fatalf("A.Send(%d bits): %v", bits, err)
				}
				got, err := l.B.Recv(ctx)
				if err != nil {
					t.Fatalf("B.Recv(%d bits): %v", bits, err)
				}
				if got.Bits != f.Bits || !bytes.Equal(got.Data[:(bits+7)/8], f.Data[:(bits+7)/8]) {
					t.Fatalf("frame %d: got %d bits %x, want %d bits %x", i, got.Bits, got.Data, f.Bits, f.Data)
				}
				// Echo it back.
				if err := l.B.Send(ctx, got); err != nil {
					t.Fatalf("B.Send: %v", err)
				}
				if _, err := l.A.Recv(ctx); err != nil {
					t.Fatalf("A.Recv: %v", err)
				}
				wantBytes += int64(FrameSize(bits))
			}
			as, bs := l.A.Stats(), l.B.Stats()
			if as.BytesOut != wantBytes || as.BytesIn != wantBytes ||
				bs.BytesOut != wantBytes || bs.BytesIn != wantBytes {
				t.Fatalf("byte counters: A=%+v B=%+v, want %d each way", as, bs, wantBytes)
			}
			if as.FramesOut != int64(len(sizes)) || bs.FramesIn != int64(len(sizes)) {
				t.Fatalf("frame counters: A=%+v B=%+v", as, bs)
			}
		})
	}
}

// TestConnCloseUnblocksPeer pins the teardown contract: closing one
// endpoint makes the peer's blocked Recv return ErrClosed, after draining
// any frame already sent.
func TestConnCloseUnblocksPeer(t *testing.T) {
	for _, d := range dialers() {
		t.Run(d.Name(), func(t *testing.T) {
			links, err := d.Dial(1)
			if err != nil {
				t.Fatal(err)
			}
			l := links[0]
			ctx := context.Background()

			// One frame in flight, then close: the peer must still get it.
			if err := l.A.Send(ctx, frame(16, 0xaa)); err != nil {
				t.Fatal(err)
			}
			l.A.Close()
			deadline := time.Now().Add(5 * time.Second)
			got := false
			for time.Now().Before(deadline) {
				f, err := l.B.Recv(ctx)
				if err == nil {
					if f.Bits != 16 {
						t.Fatalf("drained frame has %d bits", f.Bits)
					}
					got = true
					continue
				}
				if !errors.Is(err, ErrClosed) {
					t.Fatalf("Recv after peer close: %v, want ErrClosed", err)
				}
				break
			}
			if !got {
				t.Fatal("in-flight frame lost at close")
			}
			// Sends toward a closed peer must eventually fail with ErrClosed
			// rather than blocking forever (a few may be absorbed by
			// transport and kernel buffers first).
			sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
			for {
				err := l.B.Send(sctx, frame(8, 1))
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Fatalf("Send to closed peer: %v, want ErrClosed", err)
					}
					break
				}
				time.Sleep(time.Millisecond)
			}
			scancel()
			l.B.Close()
			if _, err := l.B.Recv(ctx); !errors.Is(err, ErrClosed) {
				t.Fatalf("Recv on closed endpoint: %v, want ErrClosed", err)
			}
		})
	}
}

// TestConnContextCancel pins that a canceled context unblocks a parked
// Recv and a blocked Send with the context's error, not ErrClosed.
func TestConnContextCancel(t *testing.T) {
	for _, d := range dialers() {
		t.Run(d.Name(), func(t *testing.T) {
			links, err := d.Dial(1)
			if err != nil {
				t.Fatal(err)
			}
			defer closeLinks(links)
			l := links[0]

			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := l.B.Recv(ctx)
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Recv under cancel: %v, want context.Canceled", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("cancel did not unblock Recv")
			}
		})
	}
}

// TestConnPipelining pins the buffering contract every transport must
// provide: a Send completes without the peer ever calling Recv (at least
// one frame per direction), so request/reply rounds can pipeline.
func TestConnPipelining(t *testing.T) {
	for _, d := range dialers() {
		t.Run(d.Name(), func(t *testing.T) {
			links, err := d.Dial(1)
			if err != nil {
				t.Fatal(err)
			}
			defer closeLinks(links)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := links[0].A.Send(ctx, frame(64, 0x3c)); err != nil {
				t.Fatalf("buffered Send blocked or failed: %v", err)
			}
			if err := links[0].B.Send(ctx, frame(64, 0xc3)); err != nil {
				t.Fatalf("reverse buffered Send blocked or failed: %v", err)
			}
		})
	}
}

// TestChanTryFastPaths covers the non-blocking interface the engine's
// fan-out uses on the in-process transport.
func TestChanTryFastPaths(t *testing.T) {
	links, err := Chan{}.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	defer closeLinks(links)
	a := links[0].A.(interface {
		TrySender
		TryReceiver
	})
	b := links[0].B.(interface {
		TrySender
		TryReceiver
	})

	if _, ok := a.TryRecv(); ok {
		t.Fatal("TryRecv on empty link succeeded")
	}
	if !a.TrySend(frame(8, 1)) {
		t.Fatal("TrySend into empty buffer failed")
	}
	if a.TrySend(frame(8, 2)) {
		t.Fatal("TrySend into full buffer succeeded")
	}
	if f, ok := b.TryRecv(); !ok || f.Bits != 8 {
		t.Fatalf("TryRecv = %v %v, want the buffered frame", f, ok)
	}
	links[0].B.Close()
	if a.TrySend(frame(8, 3)) {
		t.Fatal("TrySend toward closed peer succeeded")
	}
}

// TestWANDeterministicDelays pins the simulated-WAN determinism story: the
// same seed replays the same jitter sequence, a different seed does not.
func TestWANDeterministicDelays(t *testing.T) {
	seq := func(seed uint64) []time.Duration {
		w := WAN{Latency: time.Millisecond, Jitter: time.Millisecond, Bandwidth: 1 << 20, Seed: seed}
		state := seed
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = w.delay(64*(i+1), &state)
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d diverged under one seed: %v vs %v", i, a[i], b[i])
		}
		if a[i] < time.Millisecond {
			t.Fatalf("delay %d below base latency: %v", i, a[i])
		}
	}
	c := seq(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestNetDialPairsLinks checks the TCP preamble pairing: traffic sent on
// link j's A endpoint arrives at link j's B endpoint, for every j.
func TestNetDialPairsLinks(t *testing.T) {
	const k = 5
	links, err := Net{TCP: true}.Dial(k)
	if err != nil {
		t.Fatal(err)
	}
	defer closeLinks(links)
	ctx := context.Background()
	for j, l := range links {
		f := frame(32, byte(j+1))
		if err := l.A.Send(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	for j, l := range links {
		got, err := l.B.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want := frame(32, byte(j+1))
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("link %d received %x, want %x (links crossed)", j, got.Data, want.Data)
		}
	}
}

// TestDialerNames pins the names reports use.
func TestDialerNames(t *testing.T) {
	for _, tc := range []struct {
		d    Dialer
		want string
	}{
		{Chan{}, "chan"}, {Net{}, "pipe"}, {Net{TCP: true}, "tcp"}, {WAN{}, "wan"},
		{Faulty{}, "faulty+chan"}, {Faulty{Inner: WAN{}}, "faulty+wan"},
	} {
		if got := tc.d.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

// TestNetRecvCancelNoPoison is the regression test for the read-deadline
// race: a Recv canceled via its context used to leave the poison deadline
// (time.Unix(1, 0)) armed on the socket, so the *next* Recv — if called
// with a context that has no done channel — failed instantly with
// ErrClosed instead of reading the peer's frame.
func TestNetRecvCancelNoPoison(t *testing.T) {
	for _, d := range []Dialer{Net{}, Net{TCP: true}} {
		t.Run(d.Name(), func(t *testing.T) {
			links, err := d.Dial(1)
			if err != nil {
				t.Fatal(err)
			}
			defer closeLinks(links)
			l := links[0]

			// Cancel a blocked Recv: the poisoning callback definitely runs.
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := l.B.Recv(ctx)
				done <- err
			}()
			time.Sleep(20 * time.Millisecond)
			cancel()
			if err := <-done; !errors.Is(err, context.Canceled) {
				t.Fatalf("canceled Recv: %v, want context.Canceled", err)
			}

			// The next read, with a non-cancellable context, must see the
			// frame — not the canceled Recv's leftover deadline.
			if err := l.A.Send(context.Background(), frame(24, 0x42)); err != nil {
				t.Fatal(err)
			}
			f, err := l.B.Recv(context.Background())
			if err != nil {
				t.Fatalf("Recv after canceled Recv: %v (poisoned read deadline)", err)
			}
			if f.Bits != 24 {
				t.Fatalf("got %d bits, want 24", f.Bits)
			}

			// Same with a successful cancellable Recv racing its own cancel:
			// run a few rounds so a late AfterFunc would be caught.
			for i := 0; i < 20; i++ {
				rctx, rcancel := context.WithCancel(context.Background())
				if err := l.A.Send(context.Background(), frame(16, byte(i))); err != nil {
					t.Fatal(err)
				}
				if _, err := l.B.Recv(rctx); err != nil {
					t.Fatalf("round %d: %v", i, err)
				}
				rcancel() // may race the deferred stop() inside Recv
				if err := l.A.Send(context.Background(), frame(16, byte(i))); err != nil {
					t.Fatal(err)
				}
				if _, err := l.B.Recv(context.Background()); err != nil {
					t.Fatalf("round %d, plain Recv after cancel: %v", i, err)
				}
			}
		})
	}
}

// TestConnAbruptCloseNoLeak pins that an abrupt peer close — one side
// closes while the other is parked in Recv — unblocks the survivor and
// leaks no goroutines on the socket and WAN transports (the ones that run
// internal goroutines per endpoint).
func TestConnAbruptCloseNoLeak(t *testing.T) {
	for _, d := range dialers() {
		t.Run(d.Name(), func(t *testing.T) {
			base := runtime.NumGoroutine()
			for i := 0; i < 5; i++ {
				links, err := d.Dial(2)
				if err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()
				done := make(chan struct{})
				go func() {
					defer close(done)
					// Parked receiver: must be unblocked by the peer close.
					links[0].B.Recv(ctx)
				}()
				links[0].A.Send(ctx, frame(64, 1))
				links[1].A.Send(ctx, frame(64, 2))
				links[0].A.Close() // abrupt: peer still parked in Recv
				select {
				case <-done:
				case <-time.After(5 * time.Second):
					t.Fatal("peer close did not unblock Recv")
				}
				closeLinks(links)
			}
			waitGoroutines(t, base)
		})
	}
}

// TestFrameSizeMatchesEncoding cross-checks the arithmetic byte counter
// (used by the in-process transports) against the real encoder (used by
// the socket transports) — the property that makes WireBytes comparable
// across transports.
func TestFrameSizeMatchesEncoding(t *testing.T) {
	for _, bits := range []int{0, 1, 8, 9, 127, 128, 1000, 1 << 16} {
		f := frame(bits, 0xff)
		if got, want := FrameSize(bits), len(AppendFrame(nil, f)); got != want {
			t.Errorf("FrameSize(%d) = %d, encoder produced %d", bits, got, want)
		}
	}
}
