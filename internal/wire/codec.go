package wire

import (
	"errors"
	"fmt"
	"sort"
)

// ErrVertexRange indicates a vertex id outside the codec's universe.
var ErrVertexRange = errors.New("wire: vertex id out of range")

// VertexCodec encodes vertex ids of an n-vertex graph using the
// information-theoretically minimal fixed width of ceil(log₂ n) bits.
type VertexCodec struct {
	n     int
	width int
}

// NewVertexCodec returns a codec for vertex ids in [0, n).
func NewVertexCodec(n int) VertexCodec {
	return VertexCodec{n: n, width: BitsFor(n)}
}

// N reports the size of the vertex universe.
func (c VertexCodec) N() int { return c.n }

// Width reports the number of bits used per vertex id.
func (c VertexCodec) Width() int { return c.width }

// Put appends vertex id v.
func (c VertexCodec) Put(w *Writer, v int) error {
	if v < 0 || v >= c.n {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrVertexRange, v, c.n)
	}
	w.WriteUint(uint64(v), c.width)
	return nil
}

// Get consumes one vertex id.
func (c VertexCodec) Get(r *Reader) (int, error) {
	u, err := r.ReadUint(c.width)
	if err != nil {
		return 0, err
	}
	v := int(u)
	if v >= c.n {
		return 0, fmt.Errorf("%w: decoded %d not in [0,%d)", ErrVertexRange, v, c.n)
	}
	return v, nil
}

// Edge is an undirected edge between two vertex ids. The canonical form has
// U ≤ V; Canon returns it.
type Edge struct {
	U, V int
}

// Canon returns e with endpoints ordered so that U ≤ V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		panic(fmt.Sprintf("wire: vertex %d not an endpoint of %v", v, e))
	}
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("{%d,%d}", e.U, e.V) }

// EdgeCodec encodes undirected edges as two fixed-width vertex ids
// (2·ceil(log₂ n) bits per edge).
type EdgeCodec struct {
	vc VertexCodec
}

// NewEdgeCodec returns an edge codec for an n-vertex graph.
func NewEdgeCodec(n int) EdgeCodec { return EdgeCodec{vc: NewVertexCodec(n)} }

// Width reports the number of bits per encoded edge.
func (c EdgeCodec) Width() int { return 2 * c.vc.Width() }

// Put appends edge e in canonical form.
func (c EdgeCodec) Put(w *Writer, e Edge) error {
	e = e.Canon()
	if err := c.vc.Put(w, e.U); err != nil {
		return err
	}
	return c.vc.Put(w, e.V)
}

// Get consumes one edge.
func (c EdgeCodec) Get(r *Reader) (Edge, error) {
	u, err := c.vc.Get(r)
	if err != nil {
		return Edge{}, err
	}
	v, err := c.vc.Get(r)
	if err != nil {
		return Edge{}, err
	}
	return Edge{U: u, V: v}.Canon(), nil
}

// PutEdgeList appends a length-prefixed edge list: a varint count followed
// by the edges in canonical sorted order (sorting makes the encoding a
// deterministic function of the set).
func (c EdgeCodec) PutEdgeList(w *Writer, edges []Edge) error {
	sorted := make([]Edge, len(edges))
	for i, e := range edges {
		sorted[i] = e.Canon()
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].U != sorted[j].U {
			return sorted[i].U < sorted[j].U
		}
		return sorted[i].V < sorted[j].V
	})
	w.WriteUvarint(uint64(len(sorted)))
	for _, e := range sorted {
		if err := c.Put(w, e); err != nil {
			return err
		}
	}
	return nil
}

// GetEdgeList consumes a length-prefixed edge list.
func (c EdgeCodec) GetEdgeList(r *Reader) ([]Edge, error) {
	cnt, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if int64(cnt) > int64(r.Remaining())/int64(max(1, c.Width())) {
		return nil, fmt.Errorf("%w: edge list length %d exceeds message", ErrShortMessage, cnt)
	}
	edges := make([]Edge, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		e, err := c.Get(r)
		if err != nil {
			return nil, err
		}
		edges = append(edges, e)
	}
	return edges, nil
}

// EdgeListBits reports the encoded size in bits of PutEdgeList for m edges
// in an n-vertex graph.
func EdgeListBits(n, m int) int {
	return UvarintBits(uint64(m)) + m*2*BitsFor(n)
}

// PutVertexList appends a length-prefixed vertex list in sorted order.
func (c VertexCodec) PutVertexList(w *Writer, vs []int) error {
	sorted := append([]int(nil), vs...)
	sort.Ints(sorted)
	w.WriteUvarint(uint64(len(sorted)))
	for _, v := range sorted {
		if err := c.Put(w, v); err != nil {
			return err
		}
	}
	return nil
}

// GetVertexList consumes a length-prefixed vertex list.
func (c VertexCodec) GetVertexList(r *Reader) ([]int, error) {
	cnt, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if int64(cnt) > int64(r.Remaining())/int64(max(1, c.width)) {
		return nil, fmt.Errorf("%w: vertex list length %d exceeds message", ErrShortMessage, cnt)
	}
	vs := make([]int, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		v, err := c.Get(r)
		if err != nil {
			return nil, err
		}
		vs = append(vs, v)
	}
	return vs, nil
}
