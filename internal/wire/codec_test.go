package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVertexCodecWidth(t *testing.T) {
	cases := []struct{ n, width int }{
		{2, 1}, {3, 2}, {16, 4}, {17, 5}, {1000, 10},
	}
	for _, c := range cases {
		vc := NewVertexCodec(c.n)
		if vc.Width() != c.width {
			t.Errorf("n=%d: width=%d, want %d", c.n, vc.Width(), c.width)
		}
		if vc.N() != c.n {
			t.Errorf("n=%d: N()=%d", c.n, vc.N())
		}
	}
}

func TestVertexCodecRoundTrip(t *testing.T) {
	vc := NewVertexCodec(100)
	var w Writer
	for v := 0; v < 100; v++ {
		if err := vc.Put(&w, v); err != nil {
			t.Fatal(err)
		}
	}
	r := ReaderFor(&w)
	for v := 0; v < 100; v++ {
		got, err := vc.Get(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("got %d, want %d", got, v)
		}
	}
}

func TestVertexCodecRange(t *testing.T) {
	vc := NewVertexCodec(10)
	var w Writer
	if err := vc.Put(&w, 10); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("Put(10) err = %v, want ErrVertexRange", err)
	}
	if err := vc.Put(&w, -1); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("Put(-1) err = %v, want ErrVertexRange", err)
	}
	// Decoding a raw value outside the universe must fail too.
	w.Reset()
	w.WriteUint(15, vc.Width()) // 15 >= 10
	if _, err := vc.Get(ReaderFor(&w)); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("Get err = %v, want ErrVertexRange", err)
	}
}

func TestEdgeCanon(t *testing.T) {
	e := Edge{U: 5, V: 2}
	if got := e.Canon(); got != (Edge{U: 2, V: 5}) {
		t.Fatalf("Canon = %v", got)
	}
	if got := (Edge{U: 2, V: 5}).Canon(); got != (Edge{U: 2, V: 5}) {
		t.Fatalf("Canon of canonical = %v", got)
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 9}
	if e.Other(3) != 9 || e.Other(9) != 3 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other(non-endpoint) did not panic")
		}
	}()
	e.Other(4)
}

func TestEdgeCodecRoundTrip(t *testing.T) {
	ec := NewEdgeCodec(64)
	var w Writer
	edges := []Edge{{U: 0, V: 1}, {U: 63, V: 5}, {U: 30, V: 30}}
	for _, e := range edges {
		if err := ec.Put(&w, e); err != nil {
			t.Fatal(err)
		}
	}
	if w.BitLen() != len(edges)*ec.Width() {
		t.Fatalf("BitLen=%d, want %d", w.BitLen(), len(edges)*ec.Width())
	}
	r := ReaderFor(&w)
	for _, e := range edges {
		got, err := ec.Get(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != e.Canon() {
			t.Fatalf("got %v, want %v", got, e.Canon())
		}
	}
}

func TestEdgeListRoundTripAndDeterminism(t *testing.T) {
	ec := NewEdgeCodec(32)
	edges := []Edge{{U: 9, V: 3}, {U: 1, V: 2}, {U: 7, V: 20}}
	shuffled := []Edge{{U: 7, V: 20}, {U: 3, V: 9}, {U: 2, V: 1}}

	var w1, w2 Writer
	if err := ec.PutEdgeList(&w1, edges); err != nil {
		t.Fatal(err)
	}
	if err := ec.PutEdgeList(&w2, shuffled); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w1.Bytes(), w2.Bytes()) {
		t.Fatal("edge list encoding not order-independent")
	}

	got, err := ec.GetEdgeList(ReaderFor(&w1))
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{U: 1, V: 2}, {U: 3, V: 9}, {U: 7, V: 20}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEdgeListBitsMatchesEncoding(t *testing.T) {
	ec := NewEdgeCodec(100)
	for m := 0; m < 40; m++ {
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{U: i % 100, V: (i*7 + 1) % 100}
		}
		var w Writer
		if err := ec.PutEdgeList(&w, edges); err != nil {
			t.Fatal(err)
		}
		if w.BitLen() != EdgeListBits(100, m) {
			t.Fatalf("m=%d: BitLen=%d, EdgeListBits=%d", m, w.BitLen(), EdgeListBits(100, m))
		}
	}
}

func TestEdgeListTruncated(t *testing.T) {
	ec := NewEdgeCodec(32)
	var w Writer
	w.WriteUvarint(1000) // claims 1000 edges, provides none
	if _, err := ec.GetEdgeList(ReaderFor(&w)); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("err = %v, want ErrShortMessage", err)
	}
}

func TestVertexListRoundTrip(t *testing.T) {
	vc := NewVertexCodec(50)
	var w Writer
	if err := vc.PutVertexList(&w, []int{9, 1, 30, 2}); err != nil {
		t.Fatal(err)
	}
	got, err := vc.GetVertexList(ReaderFor(&w))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 9, 30}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestVertexListTruncated(t *testing.T) {
	vc := NewVertexCodec(32)
	var w Writer
	w.WriteUvarint(999)
	if _, err := vc.GetVertexList(ReaderFor(&w)); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("err = %v, want ErrShortMessage", err)
	}
}

func TestQuickEdgeListRoundTrip(t *testing.T) {
	const n = 256
	ec := NewEdgeCodec(n)
	f := func(seed int64, m uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		set := map[Edge]bool{}
		for i := 0; i < int(m); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			set[Edge{U: u, V: v}.Canon()] = true
		}
		var edges []Edge
		for e := range set {
			edges = append(edges, e)
		}
		var w Writer
		if err := ec.PutEdgeList(&w, edges); err != nil {
			return false
		}
		got, err := ec.GetEdgeList(ReaderFor(&w))
		if err != nil {
			return false
		}
		if len(got) != len(edges) {
			return false
		}
		for _, e := range got {
			if !set[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
