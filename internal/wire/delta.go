package wire

import (
	"fmt"
	"sort"
)

// Delta-compressed edge lists. The fixed-width encoding of PutEdgeList
// costs 2⌈log₂ n⌉ bits per edge regardless of structure; for the dense
// samples the simultaneous protocols ship, sorted edges have small gaps
// and compress well under delta + Elias-gamma coding. The codec is
// self-delimiting and order-insensitive (it sorts), like PutEdgeList.
//
// This is an optional optimization: the protocols deliberately use the
// fixed-width codec so measured costs match the paper's log n-per-id
// accounting; the delta codec is provided (and benchmarked) for users
// who want smaller messages rather than comparable ones.

// PutEdgeListDelta appends a length-prefixed, delta-compressed edge list:
// edges are sorted canonically, each edge's linear index
// u·n + v (u < v) is delta-encoded against its predecessor with
// Elias-gamma gaps.
func (c EdgeCodec) PutEdgeListDelta(w *Writer, edges []Edge) error {
	n := uint64(c.vc.N())
	keys := make([]uint64, 0, len(edges))
	for _, e := range edges {
		ec := e.Canon()
		if ec.U < 0 || ec.V >= c.vc.N() {
			return fmt.Errorf("%w: %v", ErrVertexRange, e)
		}
		keys = append(keys, uint64(ec.U)*n+uint64(ec.V))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.WriteUvarint(uint64(len(keys)))
	prev := uint64(0)
	for i, k := range keys {
		gap := k - prev
		if i > 0 && gap == 0 {
			return fmt.Errorf("wire: duplicate edge in delta list (key %d)", k)
		}
		// First gap may be 0 (edge {0,0} is impossible, so key ≥ 1, but be
		// safe): encode gap+1 so gamma's v ≥ 1 precondition always holds.
		w.WriteGamma(gap + 1)
		prev = k
	}
	return nil
}

// GetEdgeListDelta consumes a list written by PutEdgeListDelta.
func (c EdgeCodec) GetEdgeListDelta(r *Reader) ([]Edge, error) {
	n := uint64(c.vc.N())
	cnt, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	// Each entry costs at least 1 bit (gamma of 1).
	if cnt > uint64(r.Remaining()) {
		return nil, fmt.Errorf("%w: delta edge list length %d exceeds message", ErrShortMessage, cnt)
	}
	edges := make([]Edge, 0, cnt)
	prev := uint64(0)
	for i := uint64(0); i < cnt; i++ {
		gapPlus1, err := r.ReadGamma()
		if err != nil {
			return nil, err
		}
		prev += gapPlus1 - 1
		u := prev / n
		v := prev % n
		if u >= n || v >= n || u >= v {
			return nil, fmt.Errorf("%w: decoded key %d is not a canonical edge", ErrVertexRange, prev)
		}
		edges = append(edges, Edge{U: int(u), V: int(v)})
	}
	return edges, nil
}

// DeltaEdgeListBits reports the exact encoded size of PutEdgeListDelta
// for the given edges without encoding them.
func (c EdgeCodec) DeltaEdgeListBits(edges []Edge) int {
	n := uint64(c.vc.N())
	keys := make([]uint64, 0, len(edges))
	for _, e := range edges {
		ec := e.Canon()
		keys = append(keys, uint64(ec.U)*n+uint64(ec.V))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	bits := UvarintBits(uint64(len(keys)))
	prev := uint64(0)
	for _, k := range keys {
		bits += GammaBits(k - prev + 1)
		prev = k
	}
	return bits
}
