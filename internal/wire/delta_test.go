package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDeltaEdgeListRoundTrip(t *testing.T) {
	ec := NewEdgeCodec(100)
	edges := []Edge{{U: 5, V: 9}, {U: 0, V: 1}, {U: 50, V: 99}, {U: 5, V: 10}}
	var w Writer
	if err := ec.PutEdgeListDelta(&w, edges); err != nil {
		t.Fatal(err)
	}
	if w.BitLen() != ec.DeltaEdgeListBits(edges) {
		t.Fatalf("BitLen=%d, DeltaEdgeListBits=%d", w.BitLen(), ec.DeltaEdgeListBits(edges))
	}
	got, err := ec.GetEdgeListDelta(ReaderFor(&w))
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{U: 0, V: 1}, {U: 5, V: 9}, {U: 5, V: 10}, {U: 50, V: 99}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDeltaEdgeListEmpty(t *testing.T) {
	ec := NewEdgeCodec(10)
	var w Writer
	if err := ec.PutEdgeListDelta(&w, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ec.GetEdgeListDelta(ReaderFor(&w))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestDeltaEdgeListRejectsDuplicates(t *testing.T) {
	ec := NewEdgeCodec(10)
	var w Writer
	err := ec.PutEdgeListDelta(&w, []Edge{{U: 1, V: 2}, {U: 2, V: 1}})
	if err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestDeltaEdgeListTruncated(t *testing.T) {
	ec := NewEdgeCodec(32)
	var w Writer
	w.WriteUvarint(1 << 40) // absurd count
	if _, err := ec.GetEdgeListDelta(ReaderFor(&w)); err == nil {
		t.Fatal("absurd count accepted")
	}
}

func TestDeltaBeatsFixedWidthOnDenseLists(t *testing.T) {
	// A clustered edge set (small gaps) must compress well below the
	// fixed-width cost.
	const n = 1 << 16
	ec := NewEdgeCodec(n)
	var edges []Edge
	for v := 1; v <= 2000; v++ {
		edges = append(edges, Edge{U: 0, V: v})
	}
	fixed := EdgeListBits(n, len(edges))
	delta := ec.DeltaEdgeListBits(edges)
	if delta >= fixed/4 {
		t.Fatalf("delta %d bits not ≪ fixed %d bits", delta, fixed)
	}
}

func TestQuickDeltaRoundTrip(t *testing.T) {
	const n = 512
	ec := NewEdgeCodec(n)
	f := func(seed int64, m uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		set := map[Edge]bool{}
		for i := 0; i < int(m); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			set[Edge{U: u, V: v}.Canon()] = true
		}
		var edges []Edge
		for e := range set {
			edges = append(edges, e)
		}
		var w Writer
		if err := ec.PutEdgeListDelta(&w, edges); err != nil {
			return false
		}
		got, err := ec.GetEdgeListDelta(ReaderFor(&w))
		if err != nil || len(got) != len(edges) {
			return false
		}
		for _, e := range got {
			if !set[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPutEdgeListFixed(b *testing.B) {
	const n = 1 << 16
	ec := NewEdgeCodec(n)
	rng := rand.New(rand.NewSource(1))
	edges := make([]Edge, 1000)
	for i := range edges {
		edges[i] = Edge{U: rng.Intn(n), V: rng.Intn(n - 1)}
		if edges[i].U == edges[i].V {
			edges[i].V++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var w Writer
		if err := ec.PutEdgeList(&w, edges); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(w.BitLen()), "bits")
	}
}

func BenchmarkPutEdgeListDelta(b *testing.B) {
	const n = 1 << 16
	ec := NewEdgeCodec(n)
	rng := rand.New(rand.NewSource(1))
	set := map[Edge]bool{}
	for len(set) < 1000 {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			set[Edge{U: u, V: v}.Canon()] = true
		}
	}
	var edges []Edge
	for e := range set {
		edges = append(edges, e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var w Writer
		if err := ec.PutEdgeListDelta(&w, edges); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(w.BitLen()), "bits")
	}
}
