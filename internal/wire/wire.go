// Package wire provides bit-exact message encoding for communication
// protocols.
//
// The communication complexity of a protocol is defined as the number of
// bits exchanged, so every message in this repository is serialized through
// this package and the measured cost of a protocol is exactly the number of
// bits produced here. The package offers a bit-granular Writer/Reader pair
// plus fixed-width, varint and elias-gamma integer codecs, and higher-level
// codecs for vertices, edges and edge lists (see codec.go).
package wire

import (
	"errors"
	"fmt"
	"math/bits"
)

// Sentinel errors returned by Reader methods.
var (
	// ErrShortMessage indicates a read past the end of the encoded message.
	ErrShortMessage = errors.New("wire: read past end of message")
	// ErrWidth indicates an invalid fixed-width argument (must be 0..64).
	ErrWidth = errors.New("wire: width out of range")
	// ErrOverflow indicates a varint whose encoding exceeds 64 bits.
	ErrOverflow = errors.New("wire: varint overflows uint64")
)

// Writer accumulates a bit string. The zero value is ready to use.
//
// Bits are appended MSB-first inside each byte, so the encoded form is a
// deterministic function of the sequence of Write calls, independent of
// alignment. Writer is not safe for concurrent use.
type Writer struct {
	buf  []byte
	nbit int // total number of bits written
}

// NewWriter returns an empty Writer with capacity for sizeHint bits.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, (sizeHint+7)/8)}
}

// BitLen reports the number of bits written so far.
func (w *Writer) BitLen() int { return w.nbit }

// Bytes returns the encoded bit string, padded with zero bits to a byte
// boundary. The returned slice aliases the writer's internal buffer; it must
// not be modified while the writer is still in use.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer to the empty bit string, retaining capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// WriteBit appends a single bit (any nonzero b encodes as 1).
func (w *Writer) WriteBit(b uint) {
	idx := w.nbit >> 3
	if idx == len(w.buf) {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[idx] |= 1 << (7 - uint(w.nbit&7))
	}
	w.nbit++
}

// WriteBool appends a single bit: 1 for true, 0 for false.
func (w *Writer) WriteBool(v bool) {
	if v {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
}

// WriteUint appends the width low-order bits of v, MSB first. Width must be
// in 0..64; writing width 0 is a no-op. Bits of v above width are ignored.
func (w *Writer) WriteUint(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("wire: WriteUint width %d out of range", width))
	}
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(uint(v>>uint(i)) & 1)
	}
}

// WriteUvarint appends v using a 7-bit group varint: each group is preceded
// by a continuation bit, so small values cost 8 bits and the encoding of v
// costs 8·ceil(bitlen(v)/7) bits.
func (w *Writer) WriteUvarint(v uint64) {
	for {
		group := v & 0x7f
		v >>= 7
		if v != 0 {
			w.WriteBit(1)
		} else {
			w.WriteBit(0)
		}
		w.WriteUint(group, 7)
		if v == 0 {
			return
		}
	}
}

// WriteGamma appends v using Elias gamma coding (v must be ≥ 1): a unary
// length prefix followed by the value, costing 2·floor(log₂ v)+1 bits. It is
// the codec of choice for small positive counts.
func (w *Writer) WriteGamma(v uint64) {
	if v == 0 {
		panic("wire: WriteGamma requires v >= 1")
	}
	n := bits.Len64(v) // number of significant bits
	for i := 0; i < n-1; i++ {
		w.WriteBit(0)
	}
	w.WriteUint(v, n)
}

// WriteBytes appends the given bytes as 8·len(p) bits.
func (w *Writer) WriteBytes(p []byte) {
	for _, b := range p {
		w.WriteUint(uint64(b), 8)
	}
}

// Append copies all bits written to other onto w.
func (w *Writer) Append(other *Writer) {
	for i := 0; i < other.nbit; i++ {
		w.WriteBit(other.bit(i))
	}
}

// bit returns bit i of the written stream.
func (w *Writer) bit(i int) uint {
	return uint(w.buf[i>>3]>>(7-uint(i&7))) & 1
}

// Reader consumes a bit string produced by Writer. Reader is not safe for
// concurrent use.
type Reader struct {
	buf  []byte
	nbit int // total number of readable bits
	pos  int // next bit to read
}

// NewReader returns a Reader over the first nbit bits of buf. If nbit is
// negative, all 8·len(buf) bits are readable.
func NewReader(buf []byte, nbit int) *Reader {
	if nbit < 0 || nbit > 8*len(buf) {
		nbit = 8 * len(buf)
	}
	return &Reader{buf: buf, nbit: nbit}
}

// ReaderFor returns a Reader over the bits written to w, without copying.
func ReaderFor(w *Writer) *Reader { return NewReader(w.buf, w.nbit) }

// Remaining reports the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// ReadBit consumes and returns a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= r.nbit {
		return 0, ErrShortMessage
	}
	b := uint(r.buf[r.pos>>3]>>(7-uint(r.pos&7))) & 1
	r.pos++
	return b, nil
}

// ReadBool consumes a single bit as a boolean.
func (r *Reader) ReadBool() (bool, error) {
	b, err := r.ReadBit()
	return b != 0, err
}

// ReadUint consumes width bits and returns them as an unsigned integer.
func (r *Reader) ReadUint(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("%w: %d", ErrWidth, width)
	}
	if r.Remaining() < width {
		return 0, ErrShortMessage
	}
	var v uint64
	for i := 0; i < width; i++ {
		b, _ := r.ReadBit()
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUvarint consumes a varint written by WriteUvarint.
func (r *Reader) ReadUvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		cont, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		group, err := r.ReadUint(7)
		if err != nil {
			return 0, err
		}
		if shift >= 64 || (shift == 63 && group > 1) {
			return 0, ErrOverflow
		}
		v |= group << shift
		if cont == 0 {
			return v, nil
		}
		shift += 7
	}
}

// ReadGamma consumes an Elias gamma code written by WriteGamma.
func (r *Reader) ReadGamma() (uint64, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros >= 64 {
			return 0, ErrOverflow
		}
	}
	rest, err := r.ReadUint(zeros)
	if err != nil {
		return 0, err
	}
	return 1<<uint(zeros) | rest, nil
}

// ReadBytes consumes 8·n bits into a fresh byte slice.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	if n < 0 || r.Remaining() < 8*n {
		return nil, ErrShortMessage
	}
	p := make([]byte, n)
	for i := range p {
		v, _ := r.ReadUint(8)
		p[i] = byte(v)
	}
	return p, nil
}

// BitsFor returns the number of bits needed to represent values in [0, n),
// i.e. ceil(log₂ n). BitsFor(0) and BitsFor(1) are 0.
func BitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(uint64(n - 1))
}

// UvarintBits reports the encoded size in bits of WriteUvarint(v).
func UvarintBits(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return 8 * n
}

// GammaBits reports the encoded size in bits of WriteGamma(v), v ≥ 1.
func GammaBits(v uint64) int {
	if v == 0 {
		panic("wire: GammaBits requires v >= 1")
	}
	return 2*bits.Len64(v) - 1
}
