package wire

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriterBitLen(t *testing.T) {
	var w Writer
	if w.BitLen() != 0 {
		t.Fatalf("empty writer BitLen = %d, want 0", w.BitLen())
	}
	w.WriteBit(1)
	w.WriteBit(0)
	w.WriteBit(1)
	if w.BitLen() != 3 {
		t.Fatalf("BitLen = %d, want 3", w.BitLen())
	}
	if got := len(w.Bytes()); got != 1 {
		t.Fatalf("Bytes len = %d, want 1", got)
	}
	// MSB-first: bits 101 -> 0b1010_0000.
	if w.Bytes()[0] != 0xa0 {
		t.Fatalf("Bytes[0] = %#x, want 0xa0", w.Bytes()[0])
	}
}

func TestBitRoundTrip(t *testing.T) {
	var w Writer
	pattern := []uint{1, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := ReaderFor(&w)
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if _, err := r.ReadBit(); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("read past end: err = %v, want ErrShortMessage", err)
	}
}

func TestWriteUintWidths(t *testing.T) {
	for width := 0; width <= 64; width++ {
		var w Writer
		v := uint64(0xdeadbeefcafebabe)
		w.WriteUint(v, width)
		if w.BitLen() != width {
			t.Fatalf("width %d: BitLen = %d", width, w.BitLen())
		}
		r := ReaderFor(&w)
		got, err := r.ReadUint(width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		want := v
		if width < 64 {
			want = v & ((1 << uint(width)) - 1)
		}
		if got != want {
			t.Fatalf("width %d: got %#x, want %#x", width, got, want)
		}
	}
}

func TestReadUintBadWidth(t *testing.T) {
	r := NewReader([]byte{0xff}, -1)
	if _, err := r.ReadUint(65); !errors.Is(err, ErrWidth) {
		t.Fatalf("ReadUint(65) err = %v, want ErrWidth", err)
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 16383, 16384, 1 << 32, 1<<64 - 1}
	for _, v := range cases {
		var w Writer
		w.WriteUvarint(v)
		if w.BitLen() != UvarintBits(v) {
			t.Fatalf("v=%d: BitLen=%d, UvarintBits=%d", v, w.BitLen(), UvarintBits(v))
		}
		got, err := ReaderFor(&w).ReadUvarint()
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		if got != v {
			t.Fatalf("roundtrip %d -> %d", v, got)
		}
	}
}

func TestGammaRoundTrip(t *testing.T) {
	cases := []uint64{1, 2, 3, 4, 7, 8, 255, 1 << 20, 1<<63 - 1}
	for _, v := range cases {
		var w Writer
		w.WriteGamma(v)
		if w.BitLen() != GammaBits(v) {
			t.Fatalf("v=%d: BitLen=%d, GammaBits=%d", v, w.BitLen(), GammaBits(v))
		}
		got, err := ReaderFor(&w).ReadGamma()
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		if got != v {
			t.Fatalf("roundtrip %d -> %d", v, got)
		}
	}
}

func TestGammaZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteGamma(0) did not panic")
		}
	}()
	var w Writer
	w.WriteGamma(0)
}

func TestQuickUvarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		var w Writer
		w.WriteUvarint(v)
		got, err := ReaderFor(&w).ReadUvarint()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMixedRoundTrip(t *testing.T) {
	// Interleave heterogeneous writes and verify an exact roundtrip.
	f := func(a uint64, b bool, c uint16, d uint8) bool {
		var w Writer
		w.WriteUvarint(a)
		w.WriteBool(b)
		w.WriteUint(uint64(c), 16)
		w.WriteGamma(uint64(d) + 1)
		r := ReaderFor(&w)
		ga, err1 := r.ReadUvarint()
		gb, err2 := r.ReadBool()
		gc, err3 := r.ReadUint(16)
		gd, err4 := r.ReadGamma()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return ga == a && gb == b && gc == uint64(c) && gd == uint64(d)+1 && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBytesRoundTrip(t *testing.T) {
	var w Writer
	w.WriteBit(1) // force non-byte alignment
	payload := []byte{0x00, 0xff, 0x5a, 0x12}
	w.WriteBytes(payload)
	r := ReaderFor(&w)
	if _, err := r.ReadBit(); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBytes(len(payload))
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], payload[i])
		}
	}
}

func TestAppend(t *testing.T) {
	var a, b Writer
	a.WriteUint(0b101, 3)
	b.WriteUint(0b0110, 4)
	a.Append(&b)
	if a.BitLen() != 7 {
		t.Fatalf("BitLen = %d, want 7", a.BitLen())
	}
	r := ReaderFor(&a)
	v, err := r.ReadUint(7)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0b1010110 {
		t.Fatalf("appended bits = %#b, want 0b1010110", v)
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := BitsFor(c.n); got != c.want {
			t.Errorf("BitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestReset(t *testing.T) {
	var w Writer
	w.WriteUvarint(12345)
	w.Reset()
	if w.BitLen() != 0 || len(w.Bytes()) != 0 {
		t.Fatalf("after Reset: BitLen=%d len=%d", w.BitLen(), len(w.Bytes()))
	}
	w.WriteBit(1)
	if w.Bytes()[0] != 0x80 {
		t.Fatalf("write after Reset produced %#x", w.Bytes()[0])
	}
}

func TestReadUvarintOverflow(t *testing.T) {
	var w Writer
	// 10 groups of all-ones with continuation bits: exceeds 64 bits.
	for i := 0; i < 10; i++ {
		w.WriteBit(1)
		w.WriteUint(0x7f, 7)
	}
	w.WriteBit(0)
	w.WriteUint(0x7f, 7)
	if _, err := ReaderFor(&w).ReadUvarint(); !errors.Is(err, ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
}

func TestFuzzLikeRandomSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var w Writer
		type op struct {
			kind  int
			v     uint64
			width int
		}
		var ops []op
		for i := 0; i < 50; i++ {
			o := op{kind: rng.Intn(3)}
			switch o.kind {
			case 0:
				o.v = rng.Uint64()
				o.width = rng.Intn(65)
				if o.width < 64 {
					o.v &= (1 << uint(o.width)) - 1
				}
				w.WriteUint(o.v, o.width)
			case 1:
				o.v = rng.Uint64() >> uint(rng.Intn(64))
				w.WriteUvarint(o.v)
			case 2:
				o.v = rng.Uint64()>>uint(rng.Intn(63)) + 1
				w.WriteGamma(o.v)
			}
			ops = append(ops, o)
		}
		r := ReaderFor(&w)
		for i, o := range ops {
			var got uint64
			var err error
			switch o.kind {
			case 0:
				got, err = r.ReadUint(o.width)
			case 1:
				got, err = r.ReadUvarint()
			case 2:
				got, err = r.ReadGamma()
			}
			if err != nil {
				t.Fatalf("trial %d op %d: %v", trial, i, err)
			}
			if got != o.v {
				t.Fatalf("trial %d op %d: got %d, want %d", trial, i, got, o.v)
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("trial %d: %d bits left over", trial, r.Remaining())
		}
	}
}
