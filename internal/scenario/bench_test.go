package scenario

import (
	"math/rand"
	"testing"
)

// BenchmarkBuild measures every registry family's generation hot path at
// its default parameters, with allocation reporting — the scenario
// layer's entry in the BENCH_N.json perf trajectory (cmd/benchjson
// mirrors the four newest families).
func BenchmarkBuild(b *testing.B) {
	for _, f := range Families() {
		b.Run(f.Name, func(b *testing.B) {
			sp, err := Canonical(Spec{Family: f.Name})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rng.Seed(int64(i))
				if _, err := Build(sp, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParse measures spec parsing/canonicalization (the per-job
// validation cost in the service).
func BenchmarkParse(b *testing.B) {
	const spec = `{"family":"dup-adversary","n":4096,"d":8,"eps":0.2,"k":8,"dup":0.9}`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(spec); err != nil {
			b.Fatal(err)
		}
	}
}
