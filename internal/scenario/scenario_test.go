package scenario

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"tricomm/internal/graph"
)

// smallSpecs gives every registry family a downsized parameterization the
// naive O(n³) triangle counter can afford. The property suite fails if a
// family is missing here, so new families cannot dodge verification.
var smallSpecs = map[string]Spec{
	"er":                 {N: 40, P: 0.15},
	"random":             {N: 40, D: 5},
	"bipartite":          {N: 40, D: 4},
	"far":                {N: 60, D: 6, Eps: 0.2},
	"dense-core":         {N: 40, Hubs: 2, Pairs: 4},
	"bucket-stress":      {N: 60, Levels: 2, Hubs: 2, TriLevel: 1},
	"hidden-block":       {N: 60, A: 4, D: 2},
	"disjoint-triangles": {N: 40, T: 5},
	"tripartite":         {N: 30, P: 0.2},
	"complete":           {N: 12},
	"cycle":              {N: 20},
	"star":               {N: 20},
	"behrend":            {M: 8},
	"chung-lu":           {N: 60, D: 5, Alpha: 2.5},
	"sbm":                {N: 60, Blocks: 4, PIn: 0.3, POut: 0.05},
	"behrend-blowup":     {M: 5, Blowup: 3},
	"dup-adversary":      {N: 60, D: 6, Eps: 0.2, K: 4, Dup: 0.5},
}

// naiveTriangles counts triangles by exhaustive triple enumeration — the
// reference the fast counters and certificates are checked against.
func naiveTriangles(g *graph.Graph) int {
	n := g.N()
	count := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !g.HasEdge(i, j) {
				continue
			}
			for k := j + 1; k < n; k++ {
				if g.HasEdge(i, k) && g.HasEdge(j, k) {
					count++
				}
			}
		}
	}
	return count
}

// TestFamiliesAgainstNaiveCounter is the registry-wide property suite:
// for every family (several seeds each), triangle-free families must
// certify clean against the naive counter, certified-far families'
// planted triangles must be real, pairwise edge-disjoint, and meet
// CertEps, and prescribing families' assignments must cover exactly the
// graph's edges.
func TestFamiliesAgainstNaiveCounter(t *testing.T) {
	for _, f := range Families() {
		small, ok := smallSpecs[f.Name]
		if !ok {
			t.Fatalf("family %s has no small spec for the property suite; add one", f.Name)
		}
		small.Family = f.Name
		t.Run(f.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				inst, err := Build(small, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				g := inst.G
				naive := naiveTriangles(g)
				if int(g.CountTriangles()) != naive {
					t.Fatalf("seed %d: fast counter %d != naive %d", seed, g.CountTriangles(), naive)
				}
				if f.TriangleFree {
					if naive != 0 {
						t.Fatalf("seed %d: triangle-free family has %d triangles", seed, naive)
					}
					if !inst.TriangleFree || inst.CertEps != 0 {
						t.Fatalf("seed %d: certificate flags wrong: %+v", seed, inst)
					}
				}
				if f.Certified {
					checkCertificate(t, inst, seed)
				} else if inst.CertEps != 0 || (inst.Planted != nil && !f.Certified) {
					t.Fatalf("seed %d: uncertified family returned a certificate", seed)
				}
				if f.Prescribes != (inst.Players != nil) {
					t.Fatalf("seed %d: Prescribes=%v but Players=%v", seed, f.Prescribes, inst.Players != nil)
				}
				if inst.Players != nil {
					checkAssignment(t, inst, seed)
				}
				if inst.Spec.Family != f.Name {
					t.Fatalf("seed %d: instance spec names family %q", seed, inst.Spec.Family)
				}
			}
		})
	}
}

// checkCertificate verifies the planted family is a genuine edge-disjoint
// triangle packing matching CertEps.
func checkCertificate(t *testing.T, inst Instance, seed int64) {
	t.Helper()
	if len(inst.Planted) == 0 || inst.CertEps <= 0 {
		t.Fatalf("seed %d: certified family returned no certificate", seed)
	}
	used := make(map[graph.Edge]bool)
	for _, tri := range inst.Planted {
		if !inst.G.IsTriangle(tri.A, tri.B, tri.C) {
			t.Fatalf("seed %d: planted %v is not a triangle of the instance", seed, tri)
		}
		for _, e := range tri.Edges() {
			if used[e] {
				t.Fatalf("seed %d: planted triangles share edge %v", seed, e)
			}
			used[e] = true
		}
	}
	want := float64(len(inst.Planted)) / float64(inst.G.M())
	if inst.CertEps != want {
		t.Fatalf("seed %d: CertEps %v != |planted|/m = %v", seed, inst.CertEps, want)
	}
	if inst.Spec.Eps > 0 && inst.CertEps < inst.Spec.Eps {
		t.Fatalf("seed %d: certified farness %v below construction eps %v", seed, inst.CertEps, inst.Spec.Eps)
	}
}

// checkAssignment verifies a prescribed per-player assignment covers
// exactly the instance's edge set.
func checkAssignment(t *testing.T, inst Instance, seed int64) {
	t.Helper()
	if len(inst.Players) != inst.Spec.K {
		t.Fatalf("seed %d: %d players prescribed, spec says k=%d", seed, len(inst.Players), inst.Spec.K)
	}
	covered := make(map[graph.Edge]bool)
	for j, in := range inst.Players {
		for _, e := range in {
			if !inst.G.HasEdge(e.U, e.V) {
				t.Fatalf("seed %d: player %d holds non-edge %v", seed, j, e)
			}
			covered[e.Canon()] = true
		}
	}
	if len(covered) != inst.G.M() {
		t.Fatalf("seed %d: assignment covers %d edges, graph has %d", seed, len(covered), inst.G.M())
	}
}

// TestDupAdversarySpreadsTriangles pins the adversarial property: with
// k >= 3 no single player's input contains a planted triangle's three
// edges via primary assignment alone is too strong once duplication
// kicks in, so instead verify the primary spread — each planted triangle's
// edges appear on at least two distinct players.
func TestDupAdversarySpreadsTriangles(t *testing.T) {
	sp := Spec{Family: "dup-adversary", N: 120, D: 6, Eps: 0.2, K: 5, Dup: 0.1}
	inst, err := Build(sp, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	holders := make(map[graph.Edge][]int)
	for j, in := range inst.Players {
		for _, e := range in {
			holders[e.Canon()] = append(holders[e.Canon()], j)
		}
	}
	for _, tri := range inst.Planted {
		// With dup=0.1 most edges have a single holder; the three edges'
		// holder sets must not be dominated by one player.
		perPlayer := make(map[int]int)
		for _, e := range tri.Edges() {
			for _, j := range holders[e] {
				perPlayer[j]++
			}
		}
		soleOwner := false
		for _, c := range perPlayer {
			if c == 3 && len(perPlayer) == 1 {
				soleOwner = true
			}
		}
		if soleOwner {
			t.Fatalf("triangle %v held entirely by one player despite spread assignment", tri)
		}
	}
}

// TestBuildDeterminism pins that Build is a pure function of (spec, rng
// seed) for every family.
func TestBuildDeterminism(t *testing.T) {
	for _, f := range Families() {
		sp := smallSpecs[f.Name]
		sp.Family = f.Name
		a, err := Build(sp, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		b, err := Build(sp, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !reflect.DeepEqual(a.G.Edges(), b.G.Edges()) {
			t.Fatalf("%s: edge sets differ across identical seeds", f.Name)
		}
		if !reflect.DeepEqual(a.Planted, b.Planted) {
			t.Fatalf("%s: certificates differ across identical seeds", f.Name)
		}
		if !reflect.DeepEqual(a.Players, b.Players) {
			t.Fatalf("%s: assignments differ across identical seeds", f.Name)
		}
	}
}

// TestCanonicalIdempotentAndRoundTrips pins canonicalization: defaults
// fill deterministically, canon∘canon = canon, and the JSON round trip
// is exact for every family's default and small spec.
func TestCanonicalIdempotentAndRoundTrips(t *testing.T) {
	for _, f := range Families() {
		for _, start := range []Spec{{Family: f.Name}, withFamily(smallSpecs[f.Name], f.Name)} {
			canon, err := Canonical(start)
			if err != nil {
				t.Fatalf("%s: canonical: %v", f.Name, err)
			}
			again, err := Canonical(canon)
			if err != nil {
				t.Fatalf("%s: recanonical: %v", f.Name, err)
			}
			if canon != again {
				t.Fatalf("%s: canonical not idempotent: %+v vs %+v", f.Name, canon, again)
			}
			parsed, err := Parse(canon.JSON())
			if err != nil {
				t.Fatalf("%s: parse canonical JSON: %v", f.Name, err)
			}
			if parsed != canon {
				t.Fatalf("%s: JSON round trip drifted: %+v vs %+v", f.Name, parsed, canon)
			}
		}
	}
}

func withFamily(sp Spec, name string) Spec {
	sp.Family = name
	return sp
}

// TestCanonicalZeroesUnusedParams pins that junk parameters do not
// survive canonicalization (the uniqueness half of the canonical form).
func TestCanonicalZeroesUnusedParams(t *testing.T) {
	sp := Spec{Family: "bipartite", N: 64, D: 4, Alpha: 99, Blocks: 7, P: 0.5, M: 3, Dup: 0.9}
	canon, err := Canonical(sp)
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Family: "bipartite", N: 64, D: 4}
	if canon != want {
		t.Fatalf("unused params survived: %+v", canon)
	}
}

// TestExpectations covers the optional certificate expectations.
func TestExpectations(t *testing.T) {
	if _, err := Build(Spec{Family: "bipartite", N: 40, D: 4, ExpectTriangleFree: true},
		rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("triangle-free expectation on bipartite: %v", err)
	}
	if _, err := Canonical(Spec{Family: "far", ExpectTriangleFree: true}); err == nil {
		t.Fatal("expect_triangle_free accepted on a far family")
	}
	if _, err := Build(Spec{Family: "far", N: 60, D: 6, Eps: 0.2, ExpectEps: 0.2},
		rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("eps expectation met but rejected: %v", err)
	}
	if _, err := Build(Spec{Family: "far", N: 60, D: 6, Eps: 0.2, ExpectEps: 0.33},
		rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unmet eps expectation accepted")
	}
	if _, err := Canonical(Spec{Family: "random", ExpectEps: 0.1}); err == nil {
		t.Fatal("eps expectation accepted on an uncertified family")
	}
}

// TestParseErrors pins the error surface: unknown families enumerate the
// registry, unknown JSON fields and trailing garbage are rejected, and
// infeasible parameters fail fast.
func TestParseErrors(t *testing.T) {
	if _, err := Parse("nope"); err == nil || !strings.Contains(err.Error(), "chung-lu") {
		t.Fatalf("unknown family error does not enumerate names: %v", err)
	}
	if _, err := Parse(`{"family":"far","bogus":1}`); err == nil {
		t.Fatal("unknown JSON field accepted")
	}
	if _, err := Parse(`{"family":"far"} trailing`); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	bad := []Spec{
		{Family: "far", N: -1},
		{Family: "far", Eps: 0.5},
		{Family: "er", P: 1.5},
		{Family: "chung-lu", Alpha: 1.5},
		{Family: "cycle", N: 3},
		{Family: "dense-core", N: 10, Hubs: 3, Pairs: 10},
		{Family: "behrend-blowup", Blowup: 1000},
		{Family: "dup-adversary", K: -2},
		{Family: "sbm", Blocks: -1},
	}
	for i, sp := range bad {
		if _, err := Canonical(sp); err == nil {
			t.Errorf("bad spec %d (%+v) accepted", i, sp)
		}
	}
}

// TestBuildRecoversInfeasible pins that constructor panics surface as
// errors (the service depends on this to survive hostile specs).
func TestBuildRecoversInfeasible(t *testing.T) {
	// Eps-far at max eps with a tiny vertex budget: passes the cheap
	// canonical checks, then runs out of vertices inside FarWithDegree.
	_, err := Build(Spec{Family: "far", N: 12, D: 11, Eps: 1.0 / 3}, rand.New(rand.NewSource(1)))
	if err == nil {
		t.Skip("construction happened to fit; no panic path exercised")
	}
	if !strings.Contains(err.Error(), "scenario: building far") {
		t.Fatalf("panic not converted to a build error: %v", err)
	}
}

// TestUsageListsEveryFamily keeps the generated catalog complete.
func TestUsageListsEveryFamily(t *testing.T) {
	u := Usage()
	for _, name := range Names() {
		if !strings.Contains(u, name) {
			t.Fatalf("usage text missing family %s:\n%s", name, u)
		}
	}
}

// TestBehrendBlowupCertificateExact pins the blowup construction's
// headline property at a non-trivial size: the certificate covers every
// edge exactly once, so the graph is exactly 1/3-far.
func TestBehrendBlowupCertificateExact(t *testing.T) {
	inst, err := Build(Spec{Family: "behrend-blowup", M: 9, Blowup: 4}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if 3*len(inst.Planted) != inst.G.M() {
		t.Fatalf("certificate covers %d edges, graph has %d (want exact cover)",
			3*len(inst.Planted), inst.G.M())
	}
	if inst.CertEps != 1.0/3 {
		t.Fatalf("CertEps = %v, want exactly 1/3", inst.CertEps)
	}
	if inst.Spec.N != inst.G.N() {
		t.Fatalf("canonical spec n=%d, graph has %d", inst.Spec.N, inst.G.N())
	}
}

// TestChungLuDegreeShape sanity-checks the power-law generator: the mean
// degree lands near the target and the head is heavier than the tail.
func TestChungLuDegreeShape(t *testing.T) {
	inst, err := Build(Spec{Family: "chung-lu", N: 4096, D: 8, Alpha: 2.5}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	avg := inst.G.AvgDegree()
	if avg < 5 || avg > 11 {
		t.Fatalf("average degree %v far from target 8", avg)
	}
	head, tail := 0, 0
	for v := 0; v < 64; v++ {
		head += inst.G.Degree(v)
	}
	for v := inst.G.N() - 64; v < inst.G.N(); v++ {
		tail += inst.G.Degree(v)
	}
	if head <= 4*tail {
		t.Fatalf("degree head %d not heavier than tail %d — power law missing", head, tail)
	}
}

// TestSBMCommunityContrast sanity-checks the planted-partition
// generator: within-community density must dominate cross density.
func TestSBMCommunityContrast(t *testing.T) {
	inst, err := Build(Spec{Family: "sbm", N: 400, Blocks: 4, PIn: 0.2, POut: 0.01},
		rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	g := inst.G
	within, cross := 0, 0
	block := func(v int) int { return v * 4 / g.N() }
	g.VisitEdges(func(e graph.Edge) bool {
		if block(e.U) == block(e.V) {
			within++
		} else {
			cross++
		}
		return true
	})
	if within <= 3*cross {
		t.Fatalf("within=%d cross=%d — communities not denser than background", within, cross)
	}
	if naiveTriangles(g) == 0 {
		t.Fatal("triangle-rich communities produced no triangles")
	}
}
