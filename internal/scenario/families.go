package scenario

import (
	"fmt"
	"math/rand"

	"tricomm/internal/graph"
)

// allFamilies assembles the registry (consumed by the scenario.go
// variable initializer; no init functions, matching the harness's
// experiment registry idiom).
var allFamilies = []Family{
	erFamily(),
	randomFamily(),
	bipartiteFamily(),
	farFamily(),
	denseCoreFamily(),
	bucketStressFamily(),
	hiddenBlockFamily(),
	disjointTrianglesFamily(),
	tripartiteFamily(),
	completeFamily(),
	cycleFamily(),
	starFamily(),
	behrendFamily(),
	chungLuFamily(),
	sbmFamily(),
	behrendBlowupFamily(),
	dupAdversaryFamily(),
}

// packCertificate derives the certificate of a construction whose
// triangles are pairwise edge-disjoint by design: the greedy packing then
// recovers every triangle, so |pack| / |E| is the exact certified
// farness, not just a lower bound.
func packCertificate(g *graph.Graph) ([]graph.Triangle, float64) {
	planted := g.PackTriangles()
	if g.M() == 0 || len(planted) == 0 {
		return nil, 0
	}
	return planted, float64(len(planted)) / float64(g.M())
}

func erFamily() Family {
	return Family{
		Name:   "er",
		Doc:    "Erdős–Rényi G(n, p): every pair is an edge independently with probability p",
		Params: "n (default 512), p (default 0.02)",
		canon: func(sp Spec) (Spec, error) {
			out := Spec{N: defInt(sp.N, 512), P: defFloat(sp.P, 0.02)}
			if err := checkN(out.N); err != nil {
				return Spec{}, err
			}
			if err := checkProb("p", out.P); err != nil {
				return Spec{}, err
			}
			if err := checkEdgeBudget(out.P * float64(out.N) * float64(out.N-1) / 2); err != nil {
				return Spec{}, err
			}
			return out, nil
		},
		build: func(sp Spec, rng *rand.Rand) Instance {
			return Instance{G: graph.ErdosRenyi(sp.N, sp.P, rng)}
		},
	}
}

func randomFamily() Family {
	return Family{
		Name:   "random",
		Doc:    "Erdős–Rényi graph with expected average degree d",
		Params: "n (default 512), d (default 8)",
		canon:  canonND(512, 8),
		build: func(sp Spec, rng *rand.Rand) Instance {
			return Instance{G: graph.RandomAvgDegree(sp.N, sp.D, rng)}
		},
	}
}

func bipartiteFamily() Family {
	return Family{
		Name:         "bipartite",
		Doc:          "random bipartite graph with expected average degree d (triangle-free by construction)",
		Params:       "n (default 512), d (default 8)",
		TriangleFree: true,
		canon:        canonND(512, 8),
		build: func(sp Spec, rng *rand.Rand) Instance {
			return Instance{G: graph.BipartiteAvgDegree(sp.N, sp.D, rng)}
		},
	}
}

// canonND is the shared canonicalizer for the (n, d) families.
func canonND(defN int, defD float64) func(Spec) (Spec, error) {
	return func(sp Spec) (Spec, error) {
		out := Spec{N: defInt(sp.N, defN), D: defFloat(sp.D, defD)}
		if err := checkN(out.N); err != nil {
			return Spec{}, err
		}
		if out.D < 0 || out.D > float64(out.N) {
			return Spec{}, fmt.Errorf("d %v out of range [0, n]", out.D)
		}
		if err := checkEdgeBudget(out.D * float64(out.N) / 2); err != nil {
			return Spec{}, err
		}
		return out, nil
	}
}

func farFamily() Family {
	return Family{
		Name:      "far",
		Doc:       "certifiably eps-far instance: planted K_{a,a,a} blocks plus triangle-free noise",
		Params:    "n (default 512), d (default 8), eps (default 0.2, at most 1/3)",
		Certified: true,
		canon:     canonFarLike(512, 8, 0.2),
		build: func(sp Spec, rng *rand.Rand) Instance {
			fg := graph.FarWithDegree(graph.FarParams{N: sp.N, D: sp.D, Eps: sp.Eps}, rng)
			return Instance{G: fg.G, Planted: fg.Planted, CertEps: fg.CertEps}
		},
	}
}

// canonFarLike is the shared canonicalizer for FarWithDegree-backed
// families ("far" and the duplication adversary).
func canonFarLike(defN int, defD, defEps float64) func(Spec) (Spec, error) {
	return func(sp Spec) (Spec, error) {
		out := Spec{N: defInt(sp.N, defN), D: defFloat(sp.D, defD), Eps: defFloat(sp.Eps, defEps)}
		if err := checkN(out.N); err != nil {
			return Spec{}, err
		}
		if out.D < 1 || out.D > float64(out.N) {
			return Spec{}, fmt.Errorf("d %v out of range [1, n]", out.D)
		}
		if out.Eps <= 0 || out.Eps > 1.0/3 {
			return Spec{}, fmt.Errorf("eps %v out of range (0, 1/3]", out.Eps)
		}
		if err := checkEdgeBudget(out.D * float64(out.N) / 2); err != nil {
			return Spec{}, err
		}
		return out, nil
	}
}

func denseCoreFamily() Family {
	return Family{
		Name:      "dense-core",
		Doc:       "§3.4.2 planted dense core: a few high-degree hubs carry every triangle",
		Params:    "n (default 2048), hubs (default 4), pairs (default 64, triangle-vees per hub)",
		Certified: true,
		canon: func(sp Spec) (Spec, error) {
			out := Spec{N: defInt(sp.N, 2048), Hubs: defInt(sp.Hubs, 4), Pairs: defInt(sp.Pairs, 64)}
			if err := checkN(out.N); err != nil {
				return Spec{}, err
			}
			if out.Hubs < 1 || out.Pairs < 1 {
				return Spec{}, fmt.Errorf("hubs and pairs must be positive (hubs=%d, pairs=%d)", out.Hubs, out.Pairs)
			}
			if need := out.Hubs + 2*out.Hubs*out.Pairs; need > out.N {
				return Spec{}, fmt.Errorf("needs %d vertices, have n=%d", need, out.N)
			}
			return out, nil
		},
		build: func(sp Spec, rng *rand.Rand) Instance {
			g := graph.PlantedDenseCore(graph.DenseCoreParams{N: sp.N, Hubs: sp.Hubs, Pairs: sp.Pairs}, rng)
			planted, eps := packCertificate(g)
			return Instance{G: g, Planted: planted, CertEps: eps}
		},
	}
}

func bucketStressFamily() Family {
	return Family{
		Name:      "bucket-stress",
		Doc:       "degree scales spanning powers of 3, triangles planted at one level only",
		Params:    "n (default 4000), levels (default 5), hubs per level (default 2), tri_level (default 1)",
		Certified: true,
		canon: func(sp Spec) (Spec, error) {
			out := Spec{N: defInt(sp.N, 4000), Levels: defInt(sp.Levels, 5), Hubs: defInt(sp.Hubs, 2),
				TriLevel: defInt(sp.TriLevel, 1)}
			if err := checkN(out.N); err != nil {
				return Spec{}, err
			}
			if out.Levels < 1 || out.Levels > 12 {
				return Spec{}, fmt.Errorf("levels %d out of range [1, 12]", out.Levels)
			}
			if out.Hubs < 1 {
				return Spec{}, fmt.Errorf("hubs %d must be positive", out.Hubs)
			}
			if out.TriLevel < 0 || out.TriLevel >= out.Levels {
				return Spec{}, fmt.Errorf("tri_level %d out of range [0, levels)", out.TriLevel)
			}
			need := 0
			deg := 2
			for l := 0; l < out.Levels; l++ {
				need += out.Hubs * (1 + deg)
				deg *= 3
			}
			if need > out.N {
				return Spec{}, fmt.Errorf("needs %d vertices, have n=%d", need, out.N)
			}
			return out, nil
		},
		build: func(sp Spec, rng *rand.Rand) Instance {
			g := graph.BucketStress(graph.BucketStressParams{
				N: sp.N, Levels: sp.Levels, HubsPer: sp.Hubs, TriLevel: sp.TriLevel}, rng)
			planted, eps := packCertificate(g)
			return Instance{G: g, Planted: planted, CertEps: eps}
		},
	}
}

func hiddenBlockFamily() Family {
	return Family{
		Name:      "hidden-block",
		Doc:       "§3.3 hidden K_{a,a,a} block among triangle-free bipartite noise",
		Params:    "n (default 4096), a (default 16, block side), d (default 4, noise degree)",
		Certified: true,
		canon: func(sp Spec) (Spec, error) {
			out := Spec{N: defInt(sp.N, 4096), A: defInt(sp.A, 16), D: defFloat(sp.D, 4)}
			if err := checkN(out.N); err != nil {
				return Spec{}, err
			}
			if out.A < 1 {
				return Spec{}, fmt.Errorf("block side a %d must be positive", out.A)
			}
			if 3*out.A > out.N {
				return Spec{}, fmt.Errorf("needs n >= 3a (n=%d, a=%d)", out.N, out.A)
			}
			rest := float64(out.N - 3*out.A)
			if out.D < 0 || out.D*rest/2 > rest*rest/8 {
				return Spec{}, fmt.Errorf("noise degree %v too dense for %d noise vertices", out.D, int(rest))
			}
			if err := checkEdgeBudget(3*float64(out.A)*float64(out.A) + out.D*rest/2); err != nil {
				return Spec{}, err
			}
			return out, nil
		},
		build: func(sp Spec, rng *rand.Rand) Instance {
			g, planted := graph.HiddenBlock(graph.HiddenBlockParams{N: sp.N, A: sp.A, NoiseDeg: sp.D}, rng)
			return Instance{G: g, Planted: planted, CertEps: float64(len(planted)) / float64(g.M())}
		},
	}
}

func disjointTrianglesFamily() Family {
	return Family{
		Name:      "disjoint-triangles",
		Doc:       "t vertex-disjoint triangles on random ids (exactly 1/3-far)",
		Params:    "n (default 512), t (default 32)",
		Certified: true,
		canon: func(sp Spec) (Spec, error) {
			out := Spec{N: defInt(sp.N, 512), T: defInt(sp.T, 32)}
			if err := checkN(out.N); err != nil {
				return Spec{}, err
			}
			if out.T < 1 || 3*out.T > out.N {
				return Spec{}, fmt.Errorf("t %d out of range [1, n/3]", out.T)
			}
			return out, nil
		},
		build: func(sp Spec, rng *rand.Rand) Instance {
			g := graph.DisjointTriangles(sp.N, sp.T, rng)
			planted, eps := packCertificate(g)
			return Instance{G: g, Planted: planted, CertEps: eps}
		},
	}
}

func tripartiteFamily() Family {
	return Family{
		Name:   "tripartite",
		Doc:    "random tripartite graph (parts of size n/3, cross-part pairs with probability p)",
		Params: "n (default 512), p (default 0.05)",
		canon: func(sp Spec) (Spec, error) {
			out := Spec{N: defInt(sp.N, 512), P: defFloat(sp.P, 0.05)}
			if err := checkN(out.N); err != nil {
				return Spec{}, err
			}
			if out.N < 3 {
				return Spec{}, fmt.Errorf("n %d too small for three parts", out.N)
			}
			if err := checkProb("p", out.P); err != nil {
				return Spec{}, err
			}
			part := float64(out.N) / 3
			if err := checkEdgeBudget(3 * out.P * part * part); err != nil {
				return Spec{}, err
			}
			return out, nil
		},
		build: func(sp Spec, rng *rand.Rand) Instance {
			nu := sp.N / 3
			nv := (sp.N - nu) / 2
			nw := sp.N - nu - nv
			return Instance{G: graph.Tripartite(nu, nv, nw, sp.P, rng)}
		},
	}
}

func completeFamily() Family {
	return Family{
		Name:   "complete",
		Doc:    "the complete graph K_n",
		Params: "n (default 64)",
		canon: func(sp Spec) (Spec, error) {
			out := Spec{N: defInt(sp.N, 64)}
			if err := checkN(out.N); err != nil {
				return Spec{}, err
			}
			if err := checkEdgeBudget(float64(out.N) * float64(out.N-1) / 2); err != nil {
				return Spec{}, err
			}
			return out, nil
		},
		build: func(sp Spec, _ *rand.Rand) Instance {
			return Instance{G: graph.Complete(sp.N)}
		},
	}
}

func cycleFamily() Family {
	return Family{
		Name:         "cycle",
		Doc:          "the n-cycle (triangle-free for n >= 4)",
		Params:       "n (default 512, at least 4)",
		TriangleFree: true,
		canon: func(sp Spec) (Spec, error) {
			out := Spec{N: defInt(sp.N, 512)}
			if err := checkN(out.N); err != nil {
				return Spec{}, err
			}
			if out.N < 4 {
				return Spec{}, fmt.Errorf("n %d must be at least 4 (C_3 is a triangle)", out.N)
			}
			return out, nil
		},
		build: func(sp Spec, _ *rand.Rand) Instance {
			return Instance{G: graph.Cycle(sp.N)}
		},
	}
}

func starFamily() Family {
	return Family{
		Name:         "star",
		Doc:          "the star K_{1,n-1} (triangle-free)",
		Params:       "n (default 512)",
		TriangleFree: true,
		canon: func(sp Spec) (Spec, error) {
			out := Spec{N: defInt(sp.N, 512)}
			if err := checkN(out.N); err != nil {
				return Spec{}, err
			}
			return out, nil
		},
		build: func(sp Spec, _ *rand.Rand) Instance {
			return Instance{G: graph.Star(sp.N)}
		},
	}
}

func behrendFamily() Family {
	return Family{
		Name:      "behrend",
		Doc:       "Behrend/Ruzsa–Szemerédi graph: every edge on exactly one triangle (exactly 1/3-far)",
		Params:    "m (default 64; n = 6m is derived)",
		Certified: true,
		canon: func(sp Spec) (Spec, error) {
			out := Spec{M: defInt(sp.M, 64)}
			if out.M < 1 || 6*out.M > MaxN {
				return Spec{}, fmt.Errorf("m %d out of range [1, %d]", out.M, MaxN/6)
			}
			out.N = 6 * out.M
			return out, nil
		},
		build: func(sp Spec, _ *rand.Rand) Instance {
			bg := graph.NewBehrendGraph(sp.M)
			return Instance{G: bg.G, Planted: bg.Planted,
				CertEps: float64(len(bg.Planted)) / float64(bg.G.M())}
		},
	}
}

func chungLuFamily() Family {
	return Family{
		Name:   "chung-lu",
		Doc:    "Chung–Lu power-law degree sequence (heavy head at low vertex ids)",
		Params: "n (default 2048), d (default 8), alpha (default 2.5, exponent in (2, 8])",
		canon: func(sp Spec) (Spec, error) {
			out := Spec{N: defInt(sp.N, 2048), D: defFloat(sp.D, 8), Alpha: defFloat(sp.Alpha, 2.5)}
			if err := checkN(out.N); err != nil {
				return Spec{}, err
			}
			if out.D < 0 || out.D > float64(out.N) {
				return Spec{}, fmt.Errorf("d %v out of range [0, n]", out.D)
			}
			if out.Alpha <= 2 || out.Alpha > 8 {
				return Spec{}, fmt.Errorf("alpha %v out of range (2, 8]", out.Alpha)
			}
			if err := checkEdgeBudget(out.D * float64(out.N) / 2); err != nil {
				return Spec{}, err
			}
			return out, nil
		},
		build: func(sp Spec, rng *rand.Rand) Instance {
			return Instance{G: graph.ChungLu(graph.ChungLuParams{N: sp.N, D: sp.D, Alpha: sp.Alpha}, rng)}
		},
	}
}

func sbmFamily() Family {
	return Family{
		Name:   "sbm",
		Doc:    "planted-partition / stochastic block model with triangle-rich communities",
		Params: "n (default 1024), blocks (default 8), p_in (default 0.05), p_out (default 0.002)",
		canon: func(sp Spec) (Spec, error) {
			out := Spec{N: defInt(sp.N, 1024), Blocks: defInt(sp.Blocks, 8),
				PIn: defFloat(sp.PIn, 0.05), POut: defFloat(sp.POut, 0.002)}
			if err := checkN(out.N); err != nil {
				return Spec{}, err
			}
			if out.Blocks < 1 || out.Blocks > out.N {
				return Spec{}, fmt.Errorf("blocks %d out of range [1, n]", out.Blocks)
			}
			if err := checkProb("p_in", out.PIn); err != nil {
				return Spec{}, err
			}
			if err := checkProb("p_out", out.POut); err != nil {
				return Spec{}, err
			}
			per := float64(out.N) / float64(out.Blocks)
			within := float64(out.Blocks) * per * per / 2 * out.PIn
			cross := (float64(out.N)*float64(out.N)/2 - float64(out.Blocks)*per*per/2) * out.POut
			if err := checkEdgeBudget(within + cross); err != nil {
				return Spec{}, err
			}
			return out, nil
		},
		build: func(sp Spec, rng *rand.Rand) Instance {
			return Instance{G: graph.PlantedPartition(graph.PlantedPartitionParams{
				N: sp.N, Blocks: sp.Blocks, PIn: sp.PIn, POut: sp.POut}, rng)}
		},
	}
}

func behrendBlowupFamily() Family {
	return Family{
		Name:      "behrend-blowup",
		Doc:       "Behrend graph with every vertex blown up into a clone cloud (1/3-far at tunable density)",
		Params:    "m (default 32), blowup (default 4, cloud size; n = 6·m·blowup is derived)",
		Certified: true,
		canon: func(sp Spec) (Spec, error) {
			out := Spec{M: defInt(sp.M, 32), Blowup: defInt(sp.Blowup, 4)}
			if out.M < 1 {
				return Spec{}, fmt.Errorf("m %d must be positive", out.M)
			}
			if out.Blowup < 1 || out.Blowup > 256 {
				return Spec{}, fmt.Errorf("blowup %d out of range [1, 256]", out.Blowup)
			}
			n := 6 * out.M * out.Blowup
			if n > MaxN {
				return Spec{}, fmt.Errorf("derived n %d exceeds %d", n, MaxN)
			}
			out.N = n
			// |S| <= m, so 3·m·|S|·b² is a safe over-estimate of the edges.
			if err := checkEdgeBudget(3 * float64(out.M) * float64(out.M) *
				float64(out.Blowup) * float64(out.Blowup)); err != nil {
				return Spec{}, err
			}
			return out, nil
		},
		build: func(sp Spec, _ *rand.Rand) Instance {
			bg := graph.NewBehrendBlowup(sp.M, sp.Blowup)
			return Instance{G: bg.G, Planted: bg.Planted,
				CertEps: float64(len(bg.Planted)) / float64(bg.G.M())}
		},
	}
}

func dupAdversaryFamily() Family {
	return Family{
		Name: "dup-adversary",
		Doc: "eps-far instance with a prescribed assignment: each planted triangle spread over " +
			"three players, every edge heavily replicated (stresses §3.1 degree approximation under duplication)",
		Params:     "n (default 1024), d (default 8), eps (default 0.2), k (default 4 players), dup (default 0.75 replication probability)",
		Certified:  true,
		Prescribes: true,
		canon: func(sp Spec) (Spec, error) {
			base, err := canonFarLike(1024, 8, 0.2)(sp)
			if err != nil {
				return Spec{}, err
			}
			base.K = defInt(sp.K, 4)
			base.Dup = defFloat(sp.Dup, 0.75)
			if base.K < 1 || base.K > MaxK {
				return Spec{}, fmt.Errorf("k %d out of range [1, %d]", base.K, MaxK)
			}
			if base.Dup < 0 || base.Dup >= 1 {
				return Spec{}, fmt.Errorf("dup %v out of range [0, 1)", base.Dup)
			}
			return base, nil
		},
		build: buildDupAdversary,
	}
}

// buildDupAdversary plants a certified eps-far instance and fixes the
// per-player assignment adversarially: the three edges of planted
// triangle i go to players i, i+1, i+2 (mod k) — no player holds a
// planted triangle locally when k >= 3 — and every edge is additionally
// replicated to each other player independently with probability Dup, so
// naive degree aggregation across players overcounts by up to a factor of
// k (exactly the regime Thm 3.1's duplication-tolerant estimator is for).
func buildDupAdversary(sp Spec, rng *rand.Rand) Instance {
	fg := graph.FarWithDegree(graph.FarParams{N: sp.N, D: sp.D, Eps: sp.Eps}, rng)
	k := sp.K
	players := make([][]graph.Edge, k)
	owner := make(map[graph.Edge]int, 3*len(fg.Planted))
	for i, t := range fg.Planted {
		for x, e := range t.Edges() {
			owner[e] = (i + x) % k
		}
	}
	fg.G.VisitEdges(func(e graph.Edge) bool {
		p, ok := owner[e]
		if !ok {
			p = rng.Intn(k)
		}
		players[p] = append(players[p], e)
		for j := 0; j < k; j++ {
			if j != p && rng.Float64() < sp.Dup {
				players[j] = append(players[j], e)
			}
		}
		return true
	})
	return Instance{G: fg.G, Planted: fg.Planted, CertEps: fg.CertEps, Players: players}
}
