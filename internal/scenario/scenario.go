// Package scenario is the declarative instance layer: a JSON-serializable
// Spec names a workload family plus its typed parameters, and a registry
// maps family names onto deterministic constructors. Every consumer of
// instances — the facade (tricomm.RunScenario), the experiment harness,
// the tricommd service, and the CLIs — goes through this one registry, so
// adding a family here makes it reachable everywhere at once.
//
// Determinism contract: Build(spec, rng) is a pure function of the
// canonical spec and the rng state, so any trial is reproducible from
// (spec, seed) alone. Canonicalization (Canonical) fills family defaults,
// validates ranges, and zeroes parameters the family does not use; a
// canonical spec re-encodes to JSON and parses back to itself, which is
// what lets specs travel through CLIs, job APIs, and golden tests without
// drift (pinned by FuzzScenarioSpec).
//
// An Instance bundles the built graph with its certificate: families that
// are triangle-free by construction say so, and ε-far families carry the
// planted family of pairwise edge-disjoint triangles plus the certified
// farness CertEps = |planted| / |E|. A family may also prescribe the
// per-player edge assignment (Players non-nil), overriding the caller's
// split scheme — the duplication-adversarial family uses this to spread
// every planted triangle across three players under heavy replication.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"tricomm/internal/graph"
)

// Limits bound what a spec may ask a constructor to build, so a hostile
// JSON payload cannot stall the service's worker pool.
const (
	// MaxN is the largest vertex universe a spec may request (matches the
	// service-level cap).
	MaxN = 1 << 20
	// MaxGenEdges caps the expected edge count of a generated instance.
	MaxGenEdges = 1 << 26
	// MaxK is the largest player count a prescribing family may use.
	MaxK = 256
)

// Spec declares one instance: a family name plus the family's parameters.
// Zero-valued parameters select the family's default (Canonical fills
// them in); parameters a family does not use are zeroed during
// canonicalization, so the canonical encoding is unique. The two Expect
// fields are optional certificate expectations checked at build time.
type Spec struct {
	// Family names the registered constructor.
	Family string `json:"family"`
	// N is the vertex universe size (derived for the Behrend families).
	N int `json:"n,omitempty"`
	// D is the target average degree (random, bipartite, far, chung-lu,
	// dup-adversary) or the noise degree (hidden-block).
	D float64 `json:"d,omitempty"`
	// P is the raw edge probability (er, tripartite).
	P float64 `json:"p,omitempty"`
	// Eps is the construction farness target (far, dup-adversary).
	Eps float64 `json:"eps,omitempty"`
	// Alpha is the power-law exponent (chung-lu).
	Alpha float64 `json:"alpha,omitempty"`
	// Blocks is the community count (sbm).
	Blocks int `json:"blocks,omitempty"`
	// PIn and POut are the within/cross-community probabilities (sbm).
	PIn  float64 `json:"p_in,omitempty"`
	POut float64 `json:"p_out,omitempty"`
	// M is the base Behrend parameter (behrend, behrend-blowup).
	M int `json:"m,omitempty"`
	// Blowup is the clone-cloud size (behrend-blowup).
	Blowup int `json:"blowup,omitempty"`
	// Hubs and Pairs control dense-core (hub count, triangle-vees per
	// hub); Hubs doubles as the per-level hub count of bucket-stress.
	Hubs  int `json:"hubs,omitempty"`
	Pairs int `json:"pairs,omitempty"`
	// Levels and TriLevel control bucket-stress (degree scales, and which
	// scale carries the triangles).
	Levels   int `json:"levels,omitempty"`
	TriLevel int `json:"tri_level,omitempty"`
	// A is the planted block side (hidden-block).
	A int `json:"a,omitempty"`
	// T is the triangle count (disjoint-triangles).
	T int `json:"t,omitempty"`
	// K is the player count of a family that prescribes the per-player
	// assignment (dup-adversary).
	K int `json:"k,omitempty"`
	// Dup is the per-player replication probability (dup-adversary).
	Dup float64 `json:"dup,omitempty"`
	// ExpectTriangleFree asserts the family certifies triangle-freeness.
	ExpectTriangleFree bool `json:"expect_triangle_free,omitempty"`
	// ExpectEps asserts the built instance certifies at least this
	// farness (CertEps >= ExpectEps).
	ExpectEps float64 `json:"expect_eps,omitempty"`
}

// JSON returns the spec's JSON encoding. For a canonical spec this is the
// canonical wire form: parsing it back yields the identical Spec.
func (sp Spec) JSON() string {
	b, err := json.Marshal(sp)
	if err != nil {
		// Canonical specs contain only finite floats, so this is
		// unreachable for anything Canonical has accepted.
		panic(fmt.Sprintf("scenario: encode spec: %v", err))
	}
	return string(b)
}

// Instance is a built scenario: the graph plus its certificate and the
// canonical spec that regenerates it.
type Instance struct {
	// G is the built graph.
	G *graph.Graph
	// Planted is a family of pairwise edge-disjoint triangles of G (nil
	// when the family carries no farness certificate).
	Planted []graph.Triangle
	// CertEps is the certified farness |Planted| / |E| (0 without a
	// certificate).
	CertEps float64
	// TriangleFree reports that the construction guarantees G has no
	// triangle.
	TriangleFree bool
	// Players, when non-nil, is the family-prescribed per-player edge
	// assignment; consumers must use it instead of a split scheme.
	Players [][]graph.Edge
	// Spec is the canonical spec that (with the same seed) rebuilds this
	// instance.
	Spec Spec
}

// Family is one registered instance constructor.
type Family struct {
	// Name is the registry key.
	Name string
	// Doc is a one-line description for catalogs and usage text.
	Doc string
	// Params summarizes the accepted parameters and their defaults.
	Params string
	// TriangleFree marks families whose instances never contain a
	// triangle.
	TriangleFree bool
	// Certified marks families whose instances carry a planted
	// edge-disjoint triangle certificate (CertEps > 0).
	Certified bool
	// Prescribes marks families that fix the per-player edge assignment
	// (Instance.Players non-nil).
	Prescribes bool

	canon func(Spec) (Spec, error)
	build func(Spec, *rand.Rand) Instance
}

// families is the registry, keyed by name; populated at package
// initialization by the variable initializer in families.go.
var families = func() map[string]Family {
	m := make(map[string]Family, len(allFamilies))
	for _, f := range allFamilies {
		if _, dup := m[f.Name]; dup {
			panic(fmt.Sprintf("scenario: duplicate family %q", f.Name))
		}
		m[f.Name] = f
	}
	return m
}()

// Names returns the registered family names, sorted.
func Names() []string {
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Families returns every registered family, sorted by name.
func Families() []Family {
	names := Names()
	out := make([]Family, 0, len(names))
	for _, n := range names {
		out = append(out, families[n])
	}
	return out
}

// Lookup finds a family by name.
func Lookup(name string) (Family, bool) {
	f, ok := families[name]
	return f, ok
}

// Usage renders the registry as aligned usage text for the CLIs'
// list-scenarios output.
func Usage() string {
	var b strings.Builder
	width := 0
	for _, f := range Families() {
		if len(f.Name) > width {
			width = len(f.Name)
		}
	}
	for _, f := range Families() {
		tags := ""
		switch {
		case f.TriangleFree:
			tags = " [triangle-free]"
		case f.Certified && f.Prescribes:
			tags = " [certified-far, prescribes players]"
		case f.Certified:
			tags = " [certified-far]"
		}
		fmt.Fprintf(&b, "%-*s  %s%s\n", width, f.Name, f.Doc, tags)
		fmt.Fprintf(&b, "%-*s  params: %s\n", width, "", f.Params)
	}
	return b.String()
}

// Canonical fills the family's defaults, validates every parameter, and
// zeroes parameters the family does not use, so equal instances have
// byte-equal spec encodings. It is idempotent: Canonical(Canonical(sp))
// == Canonical(sp).
func Canonical(sp Spec) (Spec, error) {
	f, ok := Lookup(sp.Family)
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown family %q (valid: %s)",
			sp.Family, strings.Join(Names(), ", "))
	}
	if err := finite(sp.D, sp.P, sp.Eps, sp.Alpha, sp.PIn, sp.POut, sp.Dup, sp.ExpectEps); err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", f.Name, err)
	}
	out, err := f.canon(sp)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", f.Name, err)
	}
	out.Family = f.Name
	if sp.ExpectEps < 0 || sp.ExpectEps > 1 {
		return Spec{}, fmt.Errorf("scenario: %s: expect_eps %v out of range [0, 1]", f.Name, sp.ExpectEps)
	}
	if sp.ExpectTriangleFree && sp.ExpectEps > 0 {
		return Spec{}, fmt.Errorf("scenario: %s: expect_triangle_free and expect_eps are mutually exclusive", f.Name)
	}
	if sp.ExpectTriangleFree && !f.TriangleFree {
		return Spec{}, fmt.Errorf("scenario: family %s does not certify triangle-freeness", f.Name)
	}
	if sp.ExpectEps > 0 && !f.Certified {
		return Spec{}, fmt.Errorf("scenario: family %s carries no farness certificate", f.Name)
	}
	out.ExpectTriangleFree = sp.ExpectTriangleFree
	out.ExpectEps = sp.ExpectEps
	return out, nil
}

// Parse turns a CLI/API scenario argument — a bare family name or a JSON
// spec object — into a canonical Spec.
func Parse(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	var sp Spec
	if strings.HasPrefix(s, "{") {
		dec := json.NewDecoder(strings.NewReader(s))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sp); err != nil {
			return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
		}
		if dec.More() {
			return Spec{}, fmt.Errorf("scenario: trailing data after spec object")
		}
	} else {
		sp.Family = s
	}
	return Canonical(sp)
}

// Build canonicalizes the spec and constructs the instance from the rng.
// Constructor panics (infeasible parameter combinations the cheap
// canonical checks cannot rule out, e.g. an edge budget that leaves no
// room for noise) surface as errors, so a hostile spec cannot take down a
// service worker.
func Build(sp Spec, rng *rand.Rand) (inst Instance, err error) {
	canon, cerr := Canonical(sp)
	if cerr != nil {
		return Instance{}, cerr
	}
	f := families[canon.Family]
	defer func() {
		if r := recover(); r != nil {
			inst = Instance{}
			err = fmt.Errorf("scenario: building %s: %v", canon.Family, r)
		}
	}()
	inst = f.build(canon, rng)
	inst.Spec = canon
	inst.TriangleFree = f.TriangleFree
	if canon.ExpectTriangleFree && !inst.TriangleFree {
		return Instance{}, fmt.Errorf("scenario: %s: instance is not certified triangle-free", canon.Family)
	}
	if canon.ExpectEps > 0 && inst.CertEps < canon.ExpectEps {
		return Instance{}, fmt.Errorf("scenario: %s: certified farness %.4f below expected %.4f",
			canon.Family, inst.CertEps, canon.ExpectEps)
	}
	return inst, nil
}

// finite rejects NaN and infinities (JSON cannot encode them, and the
// constructors' feasibility arithmetic assumes finite inputs).
func finite(vs ...float64) error {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("non-finite parameter %v", v)
		}
	}
	return nil
}

// defInt and defFloat apply the zero-means-default convention.
func defInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func defFloat(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// checkN validates a vertex count.
func checkN(n int) error {
	if n < 1 || n > MaxN {
		return fmt.Errorf("n %d out of range [1, %d]", n, MaxN)
	}
	return nil
}

// checkEdgeBudget rejects specs whose expected edge count exceeds the
// generation cap.
func checkEdgeBudget(expected float64) error {
	if expected > MaxGenEdges {
		return fmt.Errorf("expected edge count %.0f exceeds cap %d", expected, MaxGenEdges)
	}
	return nil
}

// checkProb validates a probability parameter.
func checkProb(name string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("%s %v out of range [0, 1]", name, p)
	}
	return nil
}
