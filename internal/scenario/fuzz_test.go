package scenario

import (
	"testing"
)

// FuzzScenarioSpec fuzzes the spec parser for the canonicalization
// round-trip invariant: any input Parse accepts must canonicalize to a
// spec whose JSON encoding parses back to the identical spec. This is
// the contract that lets specs travel CLI → JSON API → golden tests
// byte-stably.
func FuzzScenarioSpec(f *testing.F) {
	for _, name := range Names() {
		f.Add(name)
		canon, err := Canonical(Spec{Family: name})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(canon.JSON())
	}
	f.Add(`{"family":"far","n":128,"d":6,"eps":0.25}`)
	f.Add(`{"family":"sbm","n":300,"blocks":3,"p_in":0.2}`)
	f.Add(`{"family":"dup-adversary","k":7,"dup":0.9,"expect_eps":0.1}`)
	f.Add(`{"family":"behrend-blowup","m":4,"blowup":2,"n":48}`)
	f.Add(`  {"family":"cycle","n":17}  `)
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := Parse(s)
		if err != nil {
			return // rejected inputs are out of scope
		}
		encoded := sp.JSON()
		again, err := Parse(encoded)
		if err != nil {
			t.Fatalf("canonical spec %q does not re-parse: %v", encoded, err)
		}
		if again != sp {
			t.Fatalf("round trip drifted: %+v -> %q -> %+v", sp, encoded, again)
		}
		if again.JSON() != encoded {
			t.Fatalf("encoding unstable: %q vs %q", again.JSON(), encoded)
		}
	})
}
