package partition

import (
	"testing"

	"tricomm/internal/graph"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// fuzzGraph decodes a graph from fuzz bytes: consecutive byte pairs are
// (u, v) endpoints mod n; self-loops and duplicates are absorbed by the
// builder.
func fuzzGraph(n int, raw []byte) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(raw); i += 2 {
		u, v := int(raw[i])%n, int(raw[i+1])%n
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// edgeCounts returns the multiset of canonical edges held across all
// players.
func edgeCounts(p *Partition) map[wire.Edge]int {
	counts := map[wire.Edge]int{}
	for _, in := range p.Inputs {
		for _, e := range in {
			counts[e.Canon()]++
		}
	}
	return counts
}

// FuzzSplitConservation fuzzes the edge-conservation contract of every
// split scheme: Disjoint and ByVertex hold each graph edge exactly once
// across players; Duplicate covers each edge at least once (and never
// invents edges, so the union still equals the edge set); All hands
// every player the full edge set — k copies of each edge.
func FuzzSplitConservation(f *testing.F) {
	f.Add(uint64(1), 16, 3, []byte{0, 1, 1, 2, 2, 0, 3, 4})
	f.Add(uint64(42), 5, 1, []byte{0, 1, 0, 1, 4, 3})
	f.Add(uint64(7), 64, 8, []byte{9, 20, 20, 9, 63, 0, 5, 5, 1, 2})
	f.Add(uint64(0), 2, 2, []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, n, k int, raw []byte) {
		if n < 1 {
			n = 1
		}
		n = n%64 + 1
		if k < 1 {
			k = 1
		}
		k = k%8 + 1
		g := fuzzGraph(n, raw)
		want := map[wire.Edge]int{}
		for _, e := range g.Edges() {
			want[e.Canon()] = 1
		}
		shared := xrand.New(seed)

		for _, exact := range []Partitioner{Disjoint{}, ByVertex{}} {
			p := exact.Split(g, k, shared)
			if p.K() != k {
				t.Fatalf("%s: %d players, want %d", exact.Name(), p.K(), k)
			}
			counts := edgeCounts(p)
			if len(counts) != len(want) {
				t.Fatalf("%s: holds %d distinct edges, graph has %d", exact.Name(), len(counts), len(want))
			}
			for e, c := range counts {
				if want[e] == 0 {
					t.Fatalf("%s: invented edge %v", exact.Name(), e)
				}
				if c != 1 {
					t.Fatalf("%s: edge %v held %d times, want exactly 1", exact.Name(), e, c)
				}
			}
			if err := p.Validate(g); err != nil {
				t.Fatalf("%s: %v", exact.Name(), err)
			}
		}

		dup := Duplicate{Q: 0.5}.Split(g, k, shared)
		counts := edgeCounts(dup)
		if len(counts) != len(want) {
			t.Fatalf("duplicate: holds %d distinct edges, graph has %d", len(counts), len(want))
		}
		for e, c := range counts {
			if want[e] == 0 {
				t.Fatalf("duplicate: invented edge %v", e)
			}
			if c < 1 || c > k {
				t.Fatalf("duplicate: edge %v held %d times, want 1..%d", e, c, k)
			}
		}
		if err := dup.Validate(g); err != nil {
			t.Fatalf("duplicate: %v", err)
		}

		all := All{}.Split(g, k, shared)
		counts = edgeCounts(all)
		for e := range want {
			if counts[e] != k {
				t.Fatalf("all: edge %v held %d times, want %d full copies", e, counts[e], k)
			}
		}
		if len(counts) != len(want) {
			t.Fatalf("all: holds %d distinct edges, graph has %d", len(counts), len(want))
		}
		if all.TotalHeld() != k*g.M() {
			t.Fatalf("all: TotalHeld %d, want %d", all.TotalHeld(), k*g.M())
		}
	})
}
