package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tricomm/internal/graph"
	"tricomm/internal/xrand"
)

func testGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.ErdosRenyi(60, 0.15, rng)
}

func allPartitioners() []Partitioner {
	return []Partitioner{
		Disjoint{},
		Duplicate{Q: 0.3},
		Duplicate{Q: 0},
		All{},
		RoundRobin{},
		ByVertex{},
	}
}

func TestAllSchemesCoverGraph(t *testing.T) {
	g := testGraph(1)
	s := xrand.New(7)
	for _, pt := range allPartitioners() {
		for _, k := range []int{1, 2, 5, 16} {
			p := pt.Split(g, k, s)
			if p.K() != k {
				t.Fatalf("%s k=%d: K() = %d", pt.Name(), k, p.K())
			}
			if err := p.Validate(g); err != nil {
				t.Fatalf("%s k=%d: %v", pt.Name(), k, err)
			}
		}
	}
}

func TestDisjointIsDisjoint(t *testing.T) {
	g := testGraph(2)
	for _, pt := range []Partitioner{Disjoint{}, RoundRobin{}, ByVertex{}, Duplicate{Q: 0}} {
		p := pt.Split(g, 7, xrand.New(3))
		if p.TotalHeld() != g.M() {
			t.Fatalf("%s: total held %d != m %d", pt.Name(), p.TotalHeld(), g.M())
		}
	}
}

func TestAllDuplicatesEverything(t *testing.T) {
	g := testGraph(3)
	p := All{}.Split(g, 4, xrand.New(1))
	if p.TotalHeld() != 4*g.M() {
		t.Fatalf("total held %d, want %d", p.TotalHeld(), 4*g.M())
	}
	for j := 0; j < 4; j++ {
		if len(p.Inputs[j]) != g.M() {
			t.Fatalf("player %d holds %d edges", j, len(p.Inputs[j]))
		}
	}
}

func TestDuplicateReplicationRate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.ErdosRenyi(200, 0.2, rng)
	const k = 8
	const q = 0.25
	p := Duplicate{Q: q}.Split(g, k, xrand.New(9))
	// Expected copies per edge: 1 + q·(k-1) (approximately; the designated
	// holder may also be hit by the q coin, which we fold into tolerance).
	want := float64(g.M()) * (1 + q*float64(k-1))
	got := float64(p.TotalHeld())
	if got < 0.9*want || got > 1.1*want {
		t.Fatalf("TotalHeld = %v, want ~%v", got, want)
	}
}

func TestDisjointBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.ErdosRenyi(300, 0.2, rng)
	const k = 6
	p := Disjoint{}.Split(g, k, xrand.New(11))
	want := float64(g.M()) / k
	for j := 0; j < k; j++ {
		got := float64(len(p.Inputs[j]))
		if got < 0.7*want || got > 1.3*want {
			t.Fatalf("player %d holds %v edges, want ~%v", j, got, want)
		}
	}
}

func TestByVertexLocality(t *testing.T) {
	// All edges incident to a given lower endpoint go to one player.
	g := testGraph(6)
	p := ByVertex{}.Split(g, 5, xrand.New(13))
	owner := map[int]int{}
	for j, edges := range p.Inputs {
		for _, e := range edges {
			lo := e.Canon().U
			if prev, ok := owner[lo]; ok && prev != j {
				t.Fatalf("vertex %d split across players %d and %d", lo, prev, j)
			}
			owner[lo] = j
		}
	}
}

func TestSplitDeterminism(t *testing.T) {
	g := testGraph(7)
	for _, pt := range allPartitioners() {
		p1 := pt.Split(g, 4, xrand.New(42))
		p2 := pt.Split(g, 4, xrand.New(42))
		for j := range p1.Inputs {
			if len(p1.Inputs[j]) != len(p2.Inputs[j]) {
				t.Fatalf("%s: nondeterministic split", pt.Name())
			}
			for i := range p1.Inputs[j] {
				if p1.Inputs[j][i] != p2.Inputs[j][i] {
					t.Fatalf("%s: nondeterministic split", pt.Name())
				}
			}
		}
	}
}

func TestViewsMatchInputs(t *testing.T) {
	g := testGraph(8)
	p := Duplicate{Q: 0.5}.Split(g, 3, xrand.New(17))
	views := p.Views()
	for j, v := range views {
		if v.M() != len(p.Inputs[j]) {
			t.Fatalf("player %d: view has %d edges, input %d", j, v.M(), len(p.Inputs[j]))
		}
		for _, e := range p.Inputs[j] {
			if !v.HasEdge(e.U, e.V) {
				t.Fatalf("player %d: view missing %v", j, e)
			}
		}
	}
}

func TestValidateDetectsMissingEdge(t *testing.T) {
	g := graph.Complete(5)
	p := Disjoint{}.Split(g, 3, xrand.New(19))
	// Corrupt: drop one edge from every player.
	for j := range p.Inputs {
		if len(p.Inputs[j]) > 0 {
			p.Inputs[j] = p.Inputs[j][1:]
		}
	}
	if err := p.Validate(g); err == nil {
		t.Fatal("Validate accepted a lossy partition")
	}
}

func TestQuickUnionInvariant(t *testing.T) {
	f := func(seed int64, kRaw uint8, qRaw uint8) bool {
		k := int(kRaw)%8 + 1
		q := float64(qRaw) / 255
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyi(40, 0.2, rng)
		p := Duplicate{Q: q}.Split(g, k, xrand.New(uint64(seed)))
		return p.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroPlayersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	Disjoint{}.Split(graph.Complete(3), 0, xrand.New(1))
}
