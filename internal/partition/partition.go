// Package partition divides a graph's edge set among k players.
//
// The model (paper §2) gives each player j a subset E_j ⊆ E with
// ⋃_j E_j = E. Crucially, the sets need not be disjoint — edge duplication
// is allowed and is what makes several primitives (exact degree counting,
// unbiased edge sampling) non-trivial. This package provides the
// partitioning schemes used by the experiments, all deterministic functions
// of a shared seed, plus validation helpers.
package partition

import (
	"fmt"

	"tricomm/internal/graph"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// Partition is the result of splitting a graph among k players.
type Partition struct {
	// N is the vertex count of the underlying graph.
	N int
	// Inputs[j] is player j's private edge set E_j.
	Inputs [][]wire.Edge
	// Scheme is the name of the partitioner that produced this partition.
	Scheme string
}

// K reports the number of players.
func (p *Partition) K() int { return len(p.Inputs) }

// Views materializes each player's input as a graph (the player's local
// view (V, E_j)), which protocols use for local degree and adjacency
// queries.
func (p *Partition) Views() []*graph.Graph {
	views := make([]*graph.Graph, len(p.Inputs))
	for j, edges := range p.Inputs {
		views[j] = graph.FromEdges(p.N, edges)
	}
	return views
}

// Union returns the union of all player inputs as a graph. For a valid
// partition of g this equals g.
func (p *Partition) Union() *graph.Graph {
	b := graph.NewBuilder(p.N)
	for _, edges := range p.Inputs {
		for _, e := range edges {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

// TotalHeld reports Σ_j |E_j| (≥ |E|, with equality iff no duplication).
func (p *Partition) TotalHeld() int {
	total := 0
	for _, edges := range p.Inputs {
		total += len(edges)
	}
	return total
}

// Validate checks that the partition covers exactly the edges of g.
func (p *Partition) Validate(g *graph.Graph) error {
	if p.N != g.N() {
		return fmt.Errorf("partition: vertex count %d != graph %d", p.N, g.N())
	}
	u := p.Union()
	if u.M() != g.M() {
		return fmt.Errorf("partition: union has %d edges, graph has %d", u.M(), g.M())
	}
	var bad error
	g.VisitEdges(func(e wire.Edge) bool {
		if !u.HasEdge(e.U, e.V) {
			bad = fmt.Errorf("partition: edge %v not covered", e)
			return false
		}
		return true
	})
	return bad
}

// Partitioner splits a graph's edges among k players.
type Partitioner interface {
	// Name identifies the scheme in experiment logs.
	Name() string
	// Split divides g's edges among k players using randomness derived
	// from s. The union of the outputs always equals E(g).
	Split(g *graph.Graph, k int, s *xrand.Shared) *Partition
}

// Disjoint assigns each edge to a single uniformly random player. This is
// the "no-duplication variant" of the paper (Corollaries 3.25/3.27,
// Lemma 3.2).
type Disjoint struct{}

var _ Partitioner = Disjoint{}

// Name implements Partitioner.
func (Disjoint) Name() string { return "disjoint" }

// Split implements Partitioner.
func (Disjoint) Split(g *graph.Graph, k int, s *xrand.Shared) *Partition {
	mustPlayers(k)
	rng := s.Stream("partition/disjoint")
	inputs := make([][]wire.Edge, k)
	g.VisitEdges(func(e wire.Edge) bool {
		j := rng.Intn(k)
		inputs[j] = append(inputs[j], e)
		return true
	})
	return &Partition{N: g.N(), Inputs: inputs, Scheme: "disjoint"}
}

// Duplicate assigns each edge to one uniformly random holder (guaranteeing
// coverage) and additionally replicates it to every other player
// independently with probability Q. Q = 0 degenerates to Disjoint; Q = 1
// gives every player the whole graph.
type Duplicate struct {
	// Q is the independent replication probability per (edge, player).
	Q float64
}

var _ Partitioner = Duplicate{}

// Name implements Partitioner.
func (d Duplicate) Name() string { return fmt.Sprintf("duplicate(q=%.2f)", d.Q) }

// Split implements Partitioner.
func (d Duplicate) Split(g *graph.Graph, k int, s *xrand.Shared) *Partition {
	mustPlayers(k)
	rng := s.Stream("partition/duplicate")
	inputs := make([][]wire.Edge, k)
	g.VisitEdges(func(e wire.Edge) bool {
		holder := rng.Intn(k)
		for j := 0; j < k; j++ {
			if j == holder || rng.Float64() < d.Q {
				inputs[j] = append(inputs[j], e)
			}
		}
		return true
	})
	return &Partition{N: g.N(), Inputs: inputs, Scheme: d.Name()}
}

// All gives every player the entire edge set — the maximal-duplication
// stress case.
type All struct{}

var _ Partitioner = All{}

// Name implements Partitioner.
func (All) Name() string { return "all" }

// Split implements Partitioner.
func (All) Split(g *graph.Graph, k int, _ *xrand.Shared) *Partition {
	mustPlayers(k)
	edges := g.Edges()
	inputs := make([][]wire.Edge, k)
	for j := range inputs {
		cp := make([]wire.Edge, len(edges))
		copy(cp, edges)
		inputs[j] = cp
	}
	return &Partition{N: g.N(), Inputs: inputs, Scheme: "all"}
}

// RoundRobin deals edges to players cyclically in canonical edge order —
// a deterministic disjoint partition.
type RoundRobin struct{}

var _ Partitioner = RoundRobin{}

// Name implements Partitioner.
func (RoundRobin) Name() string { return "roundrobin" }

// Split implements Partitioner.
func (RoundRobin) Split(g *graph.Graph, k int, _ *xrand.Shared) *Partition {
	mustPlayers(k)
	inputs := make([][]wire.Edge, k)
	i := 0
	g.VisitEdges(func(e wire.Edge) bool {
		inputs[i%k] = append(inputs[i%k], e)
		i++
		return true
	})
	return &Partition{N: g.N(), Inputs: inputs, Scheme: "roundrobin"}
}

// ByVertex routes each edge to the player owning its lower endpoint
// (ownership by keyed hash). All edges incident to a low-id vertex land on
// one player — the locality-skewed case that stresses degree estimation
// and the B̃ᵢ candidate sets.
type ByVertex struct{}

var _ Partitioner = ByVertex{}

// Name implements Partitioner.
func (ByVertex) Name() string { return "byvertex" }

// Split implements Partitioner.
func (ByVertex) Split(g *graph.Graph, k int, s *xrand.Shared) *Partition {
	mustPlayers(k)
	key := s.Key("partition/byvertex")
	inputs := make([][]wire.Edge, k)
	g.VisitEdges(func(e wire.Edge) bool {
		j := int(key.Hash(uint64(e.U)) % uint64(k))
		inputs[j] = append(inputs[j], e)
		return true
	})
	return &Partition{N: g.N(), Inputs: inputs, Scheme: "byvertex"}
}

func mustPlayers(k int) {
	if k < 1 {
		panic(fmt.Sprintf("partition: need at least one player, got %d", k))
	}
}
