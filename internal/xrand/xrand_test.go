package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminismAcrossParties(t *testing.T) {
	// Two "parties" constructing Shared from the same seed must agree on
	// every derived object.
	a, b := New(42), New(42)
	if a.Key("perm") != b.Key("perm") {
		t.Fatal("keys differ for same (seed, tag)")
	}
	pa, pb := a.Perm("order", 100), b.Perm("order", 100)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("perms differ at %d", i)
		}
	}
	sa := a.Stream("s").Uint64()
	sb := b.Stream("s").Uint64()
	if sa != sb {
		t.Fatal("streams differ")
	}
}

func TestTagSeparation(t *testing.T) {
	s := New(1)
	if s.Key("a") == s.Key("b") {
		t.Fatal("distinct tags produced equal keys")
	}
	if s.Derive("x").Key("a") == s.Key("a") {
		t.Fatal("Derive did not change the key space")
	}
	if s.Derive("x").Derive("y").Key("a") == s.Derive("y").Derive("x").Key("a") {
		t.Fatal("Derive is order-insensitive")
	}
}

func TestSeedSeparation(t *testing.T) {
	if New(1).Key("t") == New(2).Key("t") {
		t.Fatal("different seeds produced equal keys")
	}
}

func TestPermIsBijection(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz)%64 + 1
		p := New(seed).Perm("p", n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBeforeIsTotalOrder(t *testing.T) {
	k := New(9).Key("order")
	// Antisymmetry and totality on a sample.
	for x := uint64(0); x < 50; x++ {
		for y := uint64(0); y < 50; y++ {
			if x == y {
				if k.Before(x, y) {
					t.Fatalf("Before(%d,%d) on equal elements", x, y)
				}
				continue
			}
			if k.Before(x, y) == k.Before(y, x) {
				t.Fatalf("Before not antisymmetric for %d,%d", x, y)
			}
		}
	}
}

func TestMinRankConsistentAcrossPartitions(t *testing.T) {
	// The shared-permutation primitive: min over a union equals min of the
	// parties' local minima.
	k := New(5).Key("rank")
	all := make([]int, 200)
	for i := range all {
		all[i] = i
	}
	globalMin, ok := k.MinRank(all)
	if !ok {
		t.Fatal("MinRank on nonempty set returned !ok")
	}
	// Split into 3 parts with overlap.
	parts := [][]int{all[:100], all[50:150], all[120:]}
	var locals []int
	for _, p := range parts {
		m, ok := k.MinRank(p)
		if !ok {
			t.Fatal("local MinRank failed")
		}
		locals = append(locals, m)
	}
	combined, _ := k.MinRank(locals)
	if combined != globalMin {
		t.Fatalf("combined min %d != global min %d", combined, globalMin)
	}
}

func TestMinRankEmpty(t *testing.T) {
	k := New(1).Key("t")
	if _, ok := k.MinRank(nil); ok {
		t.Fatal("MinRank(nil) returned ok")
	}
}

func TestMinRankUniformity(t *testing.T) {
	// Over many keys, each of 8 elements should be the minimum about 1/8 of
	// the time.
	const elems = 8
	const trials = 8000
	counts := make([]int, elems)
	set := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for i := 0; i < trials; i++ {
		k := New(uint64(i)).Key("uniform")
		m, _ := k.MinRank(set)
		counts[m]++
	}
	want := float64(trials) / elems
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("element %d was min %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	k := New(3).Key("b")
	if k.Bernoulli(7, 0) {
		t.Fatal("Bernoulli(p=0) returned true")
	}
	if !k.Bernoulli(7, 1) {
		t.Fatal("Bernoulli(p=1) returned false")
	}
	if k.Bernoulli(7, -0.5) {
		t.Fatal("Bernoulli(p<0) returned true")
	}
	if !k.Bernoulli(7, 1.5) {
		t.Fatal("Bernoulli(p>1) returned false")
	}
}

func TestBernoulliRate(t *testing.T) {
	k := New(11).Key("rate")
	for _, p := range []float64{0.1, 0.5, 0.9} {
		const n = 200000
		count := 0
		for x := uint64(0); x < n; x++ {
			if k.Bernoulli(x, p) {
				count++
			}
		}
		got := float64(count) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("p=%.2f: empirical rate %.4f", p, got)
		}
	}
}

func TestSampleSubsetMatchesBernoulli(t *testing.T) {
	k := New(17).Key("sub")
	const n = 1000
	sub := k.SampleSubset(n, 0.3)
	inSub := map[int]bool{}
	for _, x := range sub {
		inSub[x] = true
	}
	for x := 0; x < n; x++ {
		if inSub[x] != k.Bernoulli(uint64(x), 0.3) {
			t.Fatalf("subset and Bernoulli disagree at %d", x)
		}
	}
}

func TestUniform01Range(t *testing.T) {
	k := New(23).Key("u")
	for x := uint64(0); x < 10000; x++ {
		u := k.Uniform01(x)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform01(%d) = %v out of [0,1)", x, u)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	rng := New(31).Stream("binom")
	const n, p, trials = 1000, 0.05, 3000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		v := float64(Binomial(rng, n, p))
		sum += v
		sumsq += v * v
	}
	mean := sum / trials
	wantMean := float64(n) * p
	if math.Abs(mean-wantMean) > 1.5 {
		t.Errorf("mean %.2f, want ~%.2f", mean, wantMean)
	}
	variance := sumsq/trials - mean*mean
	wantVar := float64(n) * p * (1 - p)
	if math.Abs(variance-wantVar) > 0.25*wantVar {
		t.Errorf("variance %.2f, want ~%.2f", variance, wantVar)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	rng := New(1).Stream("b")
	if Binomial(rng, 0, 0.5) != 0 {
		t.Fatal("Binomial(0, p) != 0")
	}
	if Binomial(rng, 10, 0) != 0 {
		t.Fatal("Binomial(n, 0) != 0")
	}
	if Binomial(rng, 10, 1) != 10 {
		t.Fatal("Binomial(n, 1) != n")
	}
	for i := 0; i < 100; i++ {
		if v := Binomial(rng, 5, 0.5); v < 0 || v > 5 {
			t.Fatalf("Binomial out of range: %d", v)
		}
	}
}

func TestReservoirUniform(t *testing.T) {
	// Sample 1 element from 10; each should win ~1/10 of the time.
	const trials = 10000
	counts := make([]int, 10)
	s := New(77)
	for i := 0; i < trials; i++ {
		r := NewReservoir(s.Derive("t").Stream(string(rune(i))), 1)
		for x := 0; x < 10; x++ {
			r.Offer(x)
		}
		counts[r.Sample()[0]]++
	}
	want := float64(trials) / 10
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d sampled %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestReservoirSize(t *testing.T) {
	r := NewReservoir(New(1).Stream("r"), 5)
	for x := 0; x < 3; x++ {
		r.Offer(x)
	}
	if got := r.Sample(); len(got) != 3 {
		t.Fatalf("sample size %d, want 3", len(got))
	}
	for x := 3; x < 100; x++ {
		r.Offer(x)
	}
	if got := r.Sample(); len(got) != 5 {
		t.Fatalf("sample size %d, want 5", len(got))
	}
	if r.Seen() != 100 {
		t.Fatalf("Seen = %d, want 100", r.Seen())
	}
}
