// Package xrand implements the shared-randomness assumption of the
// coordinator model.
//
// The paper assumes the players and the coordinator share a public random
// string and exploit it explicitly: all parties must agree — without
// communicating — on random permutations of the vertex set, on random vertex
// subsets sampled i.i.d. with probability p, and on per-protocol random
// streams. We realize this with a root seed from which keyed substreams are
// derived deterministically by tag: two parties holding the same (seed, tag)
// derive bit-identical randomness, which is exactly the shared-randomness
// model (and makes every experiment reproducible).
//
// Point queries are O(1): Key.Rank gives each element a pseudo-random rank
// inducing a uniform permutation, and Key.Bernoulli answers "is element x in
// the p-sample?" without materializing the sample. Both are what the
// protocols need — e.g. SampleUniformFromB̃ᵢ only compares ranks of vertices
// each player locally knows.
package xrand

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"math/rand"
)

// Shared is a source of shared randomness: a root seed plus deterministic
// tagged derivation. It is immutable and safe for concurrent use; the
// streams it hands out are not.
type Shared struct {
	seed [32]byte
}

// New returns a Shared randomness source derived from a 64-bit seed.
func New(seed uint64) *Shared {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	s := &Shared{seed: sha256.Sum256(b[:])}
	return s
}

// Derive returns a new Shared source for a sub-experiment, keyed by tag.
// Derive(t1).Derive(t2) differs from Derive(t2).Derive(t1).
func (s *Shared) Derive(tag string) *Shared {
	h := sha256.New()
	h.Write(s.seed[:])
	h.Write([]byte{0x01}) // domain-separate Derive from Key
	h.Write([]byte(tag))
	var out Shared
	copy(out.seed[:], h.Sum(nil))
	return &out
}

// Key derives a 64-bit hashing key for the given tag. Identical (seed, tag)
// pairs yield identical keys on every party.
func (s *Shared) Key(tag string) Key {
	h := sha256.New()
	h.Write(s.seed[:])
	h.Write([]byte{0x02})
	h.Write([]byte(tag))
	sum := h.Sum(nil)
	return Key(binary.LittleEndian.Uint64(sum[:8]))
}

// Stream returns a math/rand stream seeded deterministically by tag. Each
// call returns an independent stream positioned at the start.
func (s *Shared) Stream(tag string) *rand.Rand {
	return rand.New(rand.NewSource(int64(s.Key(tag))))
}

// Perm returns a uniformly random permutation of [0,n) determined by tag.
// All parties calling Perm with the same tag obtain the same permutation.
func (s *Shared) Perm(tag string, n int) []int {
	return s.Stream(tag).Perm(n)
}

// Key is a 64-bit key for stateless point-query randomness. All methods are
// pure functions of (key, x), so any party holding the key evaluates them
// identically.
type Key uint64

// Hash returns a pseudo-random 64-bit value for element x under the key,
// using a splitmix64-style finalizer. It behaves like a fixed random
// function [0,2⁶⁴) → [0,2⁶⁴) for protocol purposes.
func (k Key) Hash(x uint64) uint64 {
	z := uint64(k) + 0x9e3779b97f4a7c15*(x+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rank returns the pseudo-random rank of element x, inducing a uniform
// random order on any set of distinct elements (ties are impossible in
// practice and broken by x deterministically via the hash input).
func (k Key) Rank(x uint64) uint64 { return k.Hash(x) }

// Before reports whether x precedes y in the random order induced by the
// key, breaking hash ties by element id so the order is total.
func (k Key) Before(x, y uint64) bool {
	hx, hy := k.Rank(x), k.Rank(y)
	if hx != hy {
		return hx < hy
	}
	return x < y
}

// Uniform01 maps element x to a uniform value in [0,1).
func (k Key) Uniform01(x uint64) float64 {
	return float64(k.Hash(x)>>11) / float64(1<<53)
}

// Bernoulli reports whether element x falls in the i.i.d. p-sample under
// the key. The events {Bernoulli(x,p)} are independent across x and the
// sample is a deterministic function of (key, x, p), so all parties agree on
// the sampled set without communication.
func (k Key) Bernoulli(x uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return k.Uniform01(x) < p
}

// SampleSubset enumerates the elements of [0,n) in the i.i.d. p-sample.
func (k Key) SampleSubset(n int, p float64) []int {
	var out []int
	for x := 0; x < n; x++ {
		if k.Bernoulli(uint64(x), p) {
			out = append(out, x)
		}
	}
	return out
}

// MinRank returns the element of elems with the smallest rank under the
// key, or (-1, false) if elems is empty. This is the shared-permutation
// primitive: all parties computing MinRank over sets whose union is S agree
// on the overall minimum of S by exchanging only their local minima.
func (k Key) MinRank(elems []int) (int, bool) {
	if len(elems) == 0 {
		return -1, false
	}
	best := elems[0]
	for _, e := range elems[1:] {
		if k.Before(uint64(e), uint64(best)) {
			best = e
		}
	}
	return best, true
}

// Binomial samples Binomial(n, p) using the given stream. It uses direct
// simulation for small n·p and a normal approximation would bias tails, so
// for large n it samples via the geometric-jump method (O(n·p) expected
// time), which is exact.
func Binomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Geometric jumps: number of failures between successes is
	// Geometric(p); exact and O(np) expected.
	count := 0
	i := 0
	logq := math.Log1p(-p)
	for {
		// Skip ahead by a Geometric(p) gap.
		u := rng.Float64()
		gap := int(math.Floor(math.Log(1-u) / logq))
		i += gap + 1
		if i > n {
			return count
		}
		count++
	}
}

// Reservoir maintains a uniform k-sample over a stream of elements using
// reservoir sampling. The zero value is not usable; use NewReservoir.
type Reservoir struct {
	rng  *rand.Rand
	k    int
	seen int
	buf  []int
}

// NewReservoir returns a reservoir holding a uniform sample of size at most
// k over the elements offered to Offer.
func NewReservoir(rng *rand.Rand, k int) *Reservoir {
	if k < 0 {
		k = 0
	}
	return &Reservoir{rng: rng, k: k, buf: make([]int, 0, k)}
}

// Offer presents element x to the reservoir.
func (r *Reservoir) Offer(x int) {
	r.seen++
	if len(r.buf) < r.k {
		r.buf = append(r.buf, x)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.k {
		r.buf[j] = x
	}
}

// Seen reports the number of elements offered so far.
func (r *Reservoir) Seen() int { return r.seen }

// Sample returns a copy of the current sample.
func (r *Reservoir) Sample() []int {
	out := make([]int, len(r.buf))
	copy(out, r.buf)
	return out
}
