package graph

import (
	"fmt"

	"tricomm/internal/marks"
)

// Triangle is an unordered vertex triple forming a triangle. The canonical
// form has A < B < C.
type Triangle struct {
	A, B, C int
}

// Canon returns t with vertices sorted ascending.
func (t Triangle) Canon() Triangle {
	a, b, c := t.A, t.B, t.C
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return Triangle{A: a, B: b, C: c}
}

// Edges returns the three edges of the triangle in canonical form.
func (t Triangle) Edges() [3]Edge {
	return [3]Edge{
		Edge{U: t.A, V: t.B}.Canon(),
		Edge{U: t.A, V: t.C}.Canon(),
		Edge{U: t.B, V: t.C}.Canon(),
	}
}

// String implements fmt.Stringer.
func (t Triangle) String() string { return fmt.Sprintf("(%d,%d,%d)", t.A, t.B, t.C) }

// IsTriangle reports whether {u,v,w} forms a triangle in g.
func (g *Graph) IsTriangle(u, v, w int) bool {
	return u != v && v != w && u != w &&
		g.HasEdge(u, v) && g.HasEdge(v, w) && g.HasEdge(u, w)
}

// HasTriangleOn reports whether edge e participates in some triangle, and
// returns a witness apex if so. This is the "triangle edge" notion of
// Definition 3.
func (g *Graph) HasTriangleOn(e Edge) (int, bool) {
	a, b := g.row(e.U), g.row(e.V)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return int(a[i]), true
		}
	}
	return -1, false
}

// FindTriangle returns some triangle of g, or ok=false if g is
// triangle-free. It runs in O(Σ_e min(deg(u),deg(v))) time via sorted
// adjacency intersection.
func (g *Graph) FindTriangle() (Triangle, bool) {
	var found Triangle
	ok := false
	g.VisitEdges(func(e Edge) bool {
		if w, hit := g.HasTriangleOn(e); hit {
			found = Triangle{A: e.U, B: e.V, C: w}.Canon()
			ok = true
			return false
		}
		return true
	})
	return found, ok
}

// CountTriangles returns the exact number of triangles in g, counting each
// once. It uses the standard degree-ordered enumeration.
func (g *Graph) CountTriangles() int64 {
	var count int64
	g.visitTriangles(func(Triangle) bool {
		count++
		return true
	})
	return count
}

// Triangles returns up to limit triangles of g in canonical order
// (limit < 0 means all). Intended for tests and small graphs.
func (g *Graph) Triangles(limit int) []Triangle {
	var out []Triangle
	g.visitTriangles(func(t Triangle) bool {
		out = append(out, t)
		return limit < 0 || len(out) < limit
	})
	return out
}

// visitTriangles enumerates each triangle exactly once as (a<b<c) using
// forward adjacency intersection; fn returning false stops enumeration.
func (g *Graph) visitTriangles(fn func(Triangle) bool) {
	// fwd[v] = neighbors of v with id > v.
	for u := 0; u < g.n; u++ {
		au := g.row(u)
		// Find the suffix of au with ids > u.
		lo := upperBound(au, int32(u))
		fu := au[lo:]
		for i, v32 := range fu {
			v := int(v32)
			av := g.row(v)
			// Intersect fu[i+1:] with neighbors of v greater than v.
			p, q := i+1, upperBound(av, v32)
			for p < len(fu) && q < len(av) {
				switch {
				case fu[p] < av[q]:
					p++
				case fu[p] > av[q]:
					q++
				default:
					if !fn(Triangle{A: u, B: v, C: int(fu[p])}) {
						return
					}
					p++
					q++
				}
			}
		}
	}
}

// upperBound returns the first index i with a[i] > x in the sorted slice a.
func upperBound(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// TriangleEdges returns the set of edges that participate in at least one
// triangle.
func (g *Graph) TriangleEdges() []Edge {
	var out []Edge
	g.VisitEdges(func(e Edge) bool {
		if _, ok := g.HasTriangleOn(e); ok {
			out = append(out, e)
		}
		return true
	})
	return out
}

// Vee is a triangle-vee (Definition 2): two edges {Source,Left} and
// {Source,Right} whose far endpoints are adjacent, so that
// {Left, Right} ∈ E closes a triangle.
type Vee struct {
	Source, Left, Right int
}

// IsVee reports whether v is a triangle-vee in g.
func (g *Graph) IsVee(v Vee) bool {
	return g.HasEdge(v.Source, v.Left) && g.HasEdge(v.Source, v.Right) &&
		g.HasEdge(v.Left, v.Right)
}

// DisjointVeesAt returns a maximal set of pairwise edge-disjoint
// triangle-vees with source v, computed greedily. The size of any maximal
// set is at least half the maximum, which suffices everywhere the paper
// uses "a set of disjoint triangle-vees" (its own arguments are also
// greedy/counting arguments).
//
// Two vees at the same source are disjoint iff they share no incident edge
// of v, i.e. they form a matching on the neighborhood graph
// H_v = (N(v), {uw : u,w ∈ N(v), uw ∈ E}).
func (g *Graph) DisjointVeesAt(v int) []Vee {
	var out []Vee
	g.disjointVeesAt(v, func(s, l, r int) {
		out = append(out, Vee{Source: s, Left: l, Right: r})
	})
	return out
}

// DisjointVeeCountAt reports len(DisjointVeesAt(v)) without materializing
// the vees — the form every counting caller (Definition 5 fullness, the
// farness report) actually needs.
func (g *Graph) DisjointVeeCountAt(v int) int {
	count := 0
	g.disjointVeesAt(v, func(int, int, int) { count++ })
	return count
}

// disjointVeesAt runs the greedy matching on N(v), reporting each matched
// vee. The "used neighbor" scratch is a pooled epoch-marked slice instead
// of a per-call map.
func (g *Graph) disjointVeesAt(v int, emit func(source, left, right int)) {
	nbrs := g.row(v)
	if len(nbrs) < 2 {
		return
	}
	used := marks.Get(g.n)
	for i, u := range nbrs {
		if used.Has(int(u)) {
			continue
		}
		for _, w := range nbrs[i+1:] {
			if used.Has(int(w)) || !g.HasEdge(int(u), int(w)) {
				continue
			}
			used.Add(int(u))
			used.Add(int(w))
			emit(v, int(u), int(w))
			break
		}
	}
	marks.Put(used)
}

// DisjointVeeCount returns, for every vertex, the size of a maximal set of
// edge-disjoint triangle-vees sourced at it. The paper's notion of
// "disjoint" across different sources only requires edge-disjointness or
// distinct sources, so summing per-source maximal matchings certifies a
// valid global family.
func (g *Graph) DisjointVeeCount() []int {
	out := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		out[v] = g.DisjointVeeCountAt(v)
	}
	return out
}
