package graph

import (
	"fmt"
	"math/bits"

	"tricomm/internal/bitset"
)

// Triangle is an unordered vertex triple forming a triangle. The canonical
// form has A < B < C.
type Triangle struct {
	A, B, C int
}

// Canon returns t with vertices sorted ascending.
func (t Triangle) Canon() Triangle {
	a, b, c := t.A, t.B, t.C
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return Triangle{A: a, B: b, C: c}
}

// Edges returns the three edges of the triangle in canonical form.
func (t Triangle) Edges() [3]Edge {
	return [3]Edge{
		Edge{U: t.A, V: t.B}.Canon(),
		Edge{U: t.A, V: t.C}.Canon(),
		Edge{U: t.B, V: t.C}.Canon(),
	}
}

// String implements fmt.Stringer.
func (t Triangle) String() string { return fmt.Sprintf("(%d,%d,%d)", t.A, t.B, t.C) }

// IsTriangle reports whether {u,v,w} forms a triangle in g.
func (g *Graph) IsTriangle(u, v, w int) bool {
	return u != v && v != w && u != w &&
		g.HasEdge(u, v) && g.HasEdge(v, w) && g.HasEdge(u, w)
}

// HasTriangleOn reports whether edge e participates in some triangle, and
// returns a witness apex if so. This is the "triangle edge" notion of
// Definition 3. The witness is always the smallest common neighbor of the
// endpoints, whichever intersection strategy runs: popcount over two
// shadows, bit probes along the sparse side, or a sorted merge.
func (g *Graph) HasTriangleOn(e Edge) (int, bool) {
	su, sv := g.shadowRow(e.U), g.shadowRow(e.V)
	switch {
	case su != nil && sv != nil:
		if w := bitset.FirstIntersect(su, sv); w >= 0 {
			return w, true
		}
		return -1, false
	case su != nil:
		for _, w := range g.row(e.V) {
			if bitset.Test(su, int(w)) {
				return int(w), true
			}
		}
		return -1, false
	case sv != nil:
		for _, w := range g.row(e.U) {
			if bitset.Test(sv, int(w)) {
				return int(w), true
			}
		}
		return -1, false
	}
	a, b := g.row(e.U), g.row(e.V)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return int(a[i]), true
		}
	}
	return -1, false
}

// FindTriangle returns some triangle of g, or ok=false if g is
// triangle-free. It runs in O(Σ_e min(deg(u),deg(v))) time via sorted
// adjacency intersection.
func (g *Graph) FindTriangle() (Triangle, bool) {
	var found Triangle
	ok := false
	g.VisitEdges(func(e Edge) bool {
		if w, hit := g.HasTriangleOn(e); hit {
			found = Triangle{A: e.U, B: e.V, C: w}.Canon()
			ok = true
			return false
		}
		return true
	})
	return found, ok
}

// CountTriangles returns the exact number of triangles in g, counting each
// once. It uses the standard degree-ordered enumeration, with popcount
// intersection on dense row pairs.
func (g *Graph) CountTriangles() int64 {
	return g.countTrianglesRange(0, g.n)
}

// countTrianglesRange counts the triangles (u,v,w), u<v<w, whose smallest
// vertex u lies in [lo, hi). Summing disjoint ranges reproduces
// CountTriangles exactly — each triangle is attributed to exactly one u —
// which is what makes the parallel variant bit-identical.
func (g *Graph) countTrianglesRange(lo, hi int) int64 {
	var count int64
	for u := lo; u < hi; u++ {
		au := g.row(u)
		fu := au[upperBound(au, int32(u)):]
		su := g.shadowRow(u)
		for i, v32 := range fu {
			v := int(v32)
			sv := g.shadowRow(v)
			switch {
			case su != nil && sv != nil:
				count += int64(bitset.IntersectCountAbove(su, sv, v))
			case sv != nil:
				// u is the sparse side: probe its forward suffix against v's
				// shadow.
				for _, w := range fu[i+1:] {
					if bitset.Test(sv, int(w)) {
						count++
					}
				}
			case su != nil:
				av := g.row(v)
				for _, w := range av[upperBound(av, v32):] {
					if bitset.Test(su, int(w)) {
						count++
					}
				}
			default:
				av := g.row(v)
				count += intersectCountSorted(fu[i+1:], av[upperBound(av, v32):])
			}
		}
	}
	return count
}

// Triangles returns up to limit triangles of g in canonical order
// (limit < 0 means all). Intended for tests and small graphs.
func (g *Graph) Triangles(limit int) []Triangle {
	var out []Triangle
	g.visitTriangles(func(t Triangle) bool {
		out = append(out, t)
		return limit < 0 || len(out) < limit
	})
	return out
}

// visitTriangles enumerates each triangle exactly once as (a<b<c) using
// forward adjacency intersection; fn returning false stops enumeration.
func (g *Graph) visitTriangles(fn func(Triangle) bool) {
	g.visitTrianglesRange(0, g.n, fn)
}

// visitTrianglesRange enumerates the triangles whose smallest vertex lies
// in [lo, hi), in canonical (a, b, c) lexicographic order, reporting
// whether enumeration ran to completion. Every strategy — popcount visit,
// bit probes along the sparse side, sorted merge — yields apexes in
// ascending order, so the emission sequence is independent of which rows
// happen to have shadows.
func (g *Graph) visitTrianglesRange(lo, hi int, fn func(Triangle) bool) bool {
	for u := lo; u < hi; u++ {
		au := g.row(u)
		// Find the suffix of au with ids > u.
		fu := au[upperBound(au, int32(u)):]
		su := g.shadowRow(u)
		for i, v32 := range fu {
			v := int(v32)
			sv := g.shadowRow(v)
			// Intersect fu[i+1:] (= N(u) ∩ (v,∞)) with N(v) ∩ (v,∞).
			switch {
			case su != nil && sv != nil:
				if !bitset.IntersectVisitAbove(su, sv, v, func(w int) bool {
					return fn(Triangle{A: u, B: v, C: w})
				}) {
					return false
				}
			case sv != nil:
				for _, w := range fu[i+1:] {
					if bitset.Test(sv, int(w)) {
						if !fn(Triangle{A: u, B: v, C: int(w)}) {
							return false
						}
					}
				}
			case su != nil:
				av := g.row(v)
				for _, w := range av[upperBound(av, v32):] {
					if bitset.Test(su, int(w)) {
						if !fn(Triangle{A: u, B: v, C: int(w)}) {
							return false
						}
					}
				}
			default:
				rest := fu[i+1:]
				av := g.row(v)
				fv := av[upperBound(av, v32):]
				p, q := 0, 0
				for p < len(rest) && q < len(fv) {
					switch {
					case rest[p] < fv[q]:
						p++
					case rest[p] > fv[q]:
						q++
					default:
						if !fn(Triangle{A: u, B: v, C: int(rest[p])}) {
							return false
						}
						p++
						q++
					}
				}
			}
		}
	}
	return true
}

// upperBound returns the first index i with a[i] > x in the sorted slice a.
func upperBound(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Sparse-sparse intersections gallop instead of merging when one side is
// an order of magnitude longer: walk the short side and binary-search a
// shrinking window of the long side.
const (
	gallopSkew = 16 // length ratio that flips merge → gallop
	gallopMin  = 32 // long side must at least be this long
)

// intersectCountSorted counts common elements of two sorted rows,
// galloping when the lengths are badly skewed.
func intersectCountSorted(a, b []int32) int64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var count int64
	if len(b) >= gallopMin && len(b) >= gallopSkew*len(a) {
		for _, x := range a {
			j := lowerBound(b, x)
			if j < len(b) && b[j] == x {
				count++
			}
			b = b[j:]
		}
		return count
	}
	p, q := 0, 0
	for p < len(a) && q < len(b) {
		switch {
		case a[p] < b[q]:
			p++
		case a[p] > b[q]:
			q++
		default:
			count++
			p++
			q++
		}
	}
	return count
}

// lowerBound returns the first index i with a[i] >= x in the sorted slice.
func lowerBound(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// TriangleEdges returns the set of edges that participate in at least one
// triangle.
func (g *Graph) TriangleEdges() []Edge {
	var out []Edge
	g.VisitEdges(func(e Edge) bool {
		if _, ok := g.HasTriangleOn(e); ok {
			out = append(out, e)
		}
		return true
	})
	return out
}

// Vee is a triangle-vee (Definition 2): two edges {Source,Left} and
// {Source,Right} whose far endpoints are adjacent, so that
// {Left, Right} ∈ E closes a triangle.
type Vee struct {
	Source, Left, Right int
}

// IsVee reports whether v is a triangle-vee in g.
func (g *Graph) IsVee(v Vee) bool {
	return g.HasEdge(v.Source, v.Left) && g.HasEdge(v.Source, v.Right) &&
		g.HasEdge(v.Left, v.Right)
}

// DisjointVeesAt returns a maximal set of pairwise edge-disjoint
// triangle-vees with source v, computed greedily. The size of any maximal
// set is at least half the maximum, which suffices everywhere the paper
// uses "a set of disjoint triangle-vees" (its own arguments are also
// greedy/counting arguments).
//
// Two vees at the same source are disjoint iff they share no incident edge
// of v, i.e. they form a matching on the neighborhood graph
// H_v = (N(v), {uw : u,w ∈ N(v), uw ∈ E}).
func (g *Graph) DisjointVeesAt(v int) []Vee {
	var out []Vee
	g.disjointVeesAt(v, func(s, l, r int) {
		out = append(out, Vee{Source: s, Left: l, Right: r})
	})
	return out
}

// DisjointVeeCountAt reports len(DisjointVeesAt(v)) without materializing
// the vees — the form every counting caller (Definition 5 fullness, the
// farness report) actually needs.
func (g *Graph) DisjointVeeCountAt(v int) int {
	count := 0
	g.disjointVeesAt(v, func(int, int, int) { count++ })
	return count
}

// disjointVeesAt runs the greedy matching on N(v), reporting each matched
// vee. Availability lives in a pooled bitset over the vertex universe,
// seeded with N(v) and only ever shrunk, so the partner search for a
// dense u is one masked word-AND scan (N(u) ∧ avail above u) and for a
// sparse u a walk of u's own short row — never the old O(deg v) rescan
// with a hash probe per candidate.
//
// The matching is unchanged from the pre-bitset greedy: for each u in
// ascending order, the partner is the smallest w > u with w ∈ N(v),
// w ∈ N(u), and w still unmatched — exactly what the old inner scan of
// nbrs[i+1:] selected.
func (g *Graph) disjointVeesAt(v int, emit func(source, left, right int)) {
	nbrs := g.row(v)
	if len(nbrs) < 2 {
		return
	}
	avail := bitset.Get(g.n)
	for _, u := range nbrs {
		avail.Add(int(u))
	}
	for _, u32 := range nbrs {
		u := int(u32)
		if !avail.Has(u) {
			continue
		}
		w := -1
		if su := g.shadowRow(u); su != nil {
			w = firstAvailAbove(su, avail, u)
		} else {
			ru := g.row(u)
			for _, w32 := range ru[upperBound(ru, u32):] {
				if avail.Has(int(w32)) {
					w = int(w32)
					break
				}
			}
		}
		if w >= 0 {
			avail.Remove(u)
			avail.Remove(w)
			emit(v, u, w)
		}
	}
	bitset.Put(avail)
}

// firstAvailAbove returns the smallest key > lo present in both the dense
// shadow row and the availability set, or -1. avail ⊆ N(source) by
// construction, so the AND directly encodes "adjacent to u, still
// unmatched".
func firstAvailAbove(row []uint64, avail *bitset.Set, lo int) int {
	start := lo + 1
	nw := len(row)
	if aw := avail.NumWords(); aw < nw {
		nw = aw
	}
	w := start >> 6
	if w >= nw {
		return -1
	}
	m := row[w] & avail.Word(w) &^ (1<<(uint(start)&63) - 1)
	for {
		if m != 0 {
			return w<<6 + bits.TrailingZeros64(m)
		}
		w++
		if w >= nw {
			return -1
		}
		m = row[w] & avail.Word(w)
	}
}

// DisjointVeeCount returns, for every vertex, the size of a maximal set of
// edge-disjoint triangle-vees sourced at it. The paper's notion of
// "disjoint" across different sources only requires edge-disjointness or
// distinct sources, so summing per-source maximal matchings certifies a
// valid global family.
func (g *Graph) DisjointVeeCount() []int {
	out := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		out[v] = g.DisjointVeeCountAt(v)
	}
	return out
}
