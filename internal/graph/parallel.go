package graph

import (
	"sync/atomic"

	"tricomm/internal/parwork"
)

// This file provides intra-trial parallelism: row-range-partitioned
// variants of the triangle kernels that are bit-identical to the serial
// ones at any worker count. The contract mirrors the PR 2 harness runner
// — work is split into deterministic chunks, workers claim chunks from an
// atomic cursor, and the reduction folds partials in chunk (row) order.
// The fan-out itself now rides on internal/parwork (the shared
// intra-phase work-splitting layer); this file keeps the graph-specific
// arc-balanced partition and the kernel reductions.

// IntraWorkersEnv is the environment variable consulted when a caller
// passes a non-positive intra-trial worker count.
const IntraWorkersEnv = parwork.EnvVar

// IntraWorkers resolves an intra-trial worker-count request: an explicit
// n > 0 wins; otherwise TRICOMM_INTRA_WORKERS; otherwise 1. It delegates
// to parwork.Workers, which warns once (and falls back to 1) on an
// unparseable or non-positive environment value.
func IntraWorkers(n int) int {
	return parwork.Workers(n)
}

// rowChunks partitions the vertex range [0, n) into at most parts
// contiguous row ranges balanced by arc count (row cost in every kernel
// is proportional to its arcs, not its mere presence). Depends only on
// the graph and parts, never on scheduling.
func (g *Graph) rowChunks(parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	total := len(g.nbr)
	target := (total + parts - 1) / parts
	if target < 1 {
		target = 1
	}
	chunks := make([][2]int, 0, parts)
	start, arcs := 0, 0
	for v := 0; v < g.n && len(chunks) < parts-1; v++ {
		arcs += int(g.off[v+1] - g.off[v])
		if arcs >= target && v+1 < g.n {
			chunks = append(chunks, [2]int{start, v + 1})
			start, arcs = v+1, 0
		}
	}
	if start < g.n || len(chunks) == 0 {
		chunks = append(chunks, [2]int{start, g.n})
	}
	return chunks
}

// CountTrianglesN counts triangles with up to workers goroutines. The
// result is bit-identical to CountTriangles at any worker count: each
// triangle is attributed to its smallest vertex's chunk, partial counts
// are exact int64s, and the reduction folds them in chunk order.
func (g *Graph) CountTrianglesN(workers int) int64 {
	workers = IntraWorkers(workers)
	if workers <= 1 || g.n == 0 {
		return g.CountTriangles()
	}
	chunks := g.rowChunks(4 * workers)
	partial := make([]int64, len(chunks))
	parwork.Run(workers, len(chunks), func(i int) {
		partial[i] = g.countTrianglesRange(chunks[i][0], chunks[i][1])
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}

// DisjointVeeCountN computes DisjointVeeCount with up to workers
// goroutines. Per-source matchings are independent (each touches only its
// own out[v] slot), so the output is bit-identical at any worker count.
func (g *Graph) DisjointVeeCountN(workers int) []int {
	workers = IntraWorkers(workers)
	out := make([]int, g.n)
	if workers <= 1 || g.n == 0 {
		for v := 0; v < g.n; v++ {
			out[v] = g.DisjointVeeCountAt(v)
		}
		return out
	}
	chunks := g.rowChunks(4 * workers)
	parwork.Run(workers, len(chunks), func(i int) {
		for v := chunks[i][0]; v < chunks[i][1]; v++ {
			out[v] = g.DisjointVeeCountAt(v)
		}
	})
	return out
}

// FindTriangleN finds the same witness FindTriangle would — the
// lexicographically first triangle edge with its smallest apex — using up
// to workers goroutines. Chunks are claimed in ascending row order and
// each records its own first hit; a worker skips any chunk above the
// lowest hit seen so far (nothing below it can change the winner), and
// the final answer is the lowest-index chunk's hit, which is exactly the
// serial scan's first hit.
func (g *Graph) FindTriangleN(workers int) (Triangle, bool) {
	workers = IntraWorkers(workers)
	if workers <= 1 || g.n == 0 {
		return g.FindTriangle()
	}
	chunks := g.rowChunks(4 * workers)
	found := make([]Triangle, len(chunks))
	hit := make([]bool, len(chunks))
	var best atomic.Int64
	best.Store(int64(len(chunks)))
	parwork.Run(workers, len(chunks), func(i int) {
		if int64(i) > best.Load() {
			return // a lower chunk already has a witness
		}
		t, ok := g.findTriangleRange(chunks[i][0], chunks[i][1])
		if !ok {
			return
		}
		found[i], hit[i] = t, true
		for {
			cur := best.Load()
			if int64(i) >= cur || best.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	})
	for i := range chunks {
		if hit[i] {
			return found[i], true
		}
	}
	return Triangle{}, false
}

// firstArmPairSerialBelow keeps FirstArmPairN serial for small stars,
// where a fan-out costs more than the scan.
const firstArmPairSerialBelow = 32

// FirstArmPairN finds the first adjacent pair among arms — the pair the
// serial double loop `for i { FirstAdjacent(arms[i], arms[i+1:]) }`
// returns: lowest outer index i first, then that row's FirstAdjacent
// order. The outer scan fans across up to workers goroutines with the
// serial-first-hit reduction, so the witness pair is identical at any
// worker count.
func (g *Graph) FirstArmPairN(arms []int, workers int) (u1, u2 int, ok bool) {
	items := len(arms) - 1
	if items <= 0 {
		return 0, 0, false
	}
	probe := func(lo, hi int) (int64, bool) {
		for i := lo; i < hi; i++ {
			if j := g.FirstAdjacent(arms[i], arms[i+1:]); j >= 0 {
				return int64(i)<<32 | int64(i+1+j), true
			}
		}
		return 0, false
	}
	if workers <= 1 || items < firstArmPairSerialBelow {
		if v, hit := probe(0, items); hit {
			return arms[v>>32], arms[v&0xffffffff], true
		}
		return 0, 0, false
	}
	v, hit := parwork.First(workers, items, probe)
	if !hit {
		return 0, 0, false
	}
	return arms[v>>32], arms[v&0xffffffff], true
}

// findTriangleRange is FindTriangle's scan restricted to edges whose
// smaller endpoint lies in [lo, hi): same edge order, same
// smallest-apex witness.
func (g *Graph) findTriangleRange(lo, hi int) (Triangle, bool) {
	for u := lo; u < hi; u++ {
		for _, w := range g.row(u) {
			if int(w) <= u {
				continue
			}
			e := Edge{U: u, V: int(w)}
			if apex, ok := g.HasTriangleOn(e); ok {
				return Triangle{A: e.U, B: e.V, C: apex}.Canon(), true
			}
		}
	}
	return Triangle{}, false
}
