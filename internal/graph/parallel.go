package graph

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file provides intra-trial parallelism: row-range-partitioned
// variants of the triangle kernels that are bit-identical to the serial
// ones at any worker count. The contract mirrors the PR 2 harness runner
// — work is split into deterministic chunks, workers claim chunks from an
// atomic cursor, and the reduction folds partials in chunk (row) order —
// but lives here because graph cannot import the runner (the runner
// already imports graph).

// IntraWorkersEnv is the environment variable consulted when a caller
// passes a non-positive intra-trial worker count.
const IntraWorkersEnv = "TRICOMM_INTRA_WORKERS"

// IntraWorkers resolves an intra-trial worker-count request: an explicit
// n > 0 wins; otherwise TRICOMM_INTRA_WORKERS; otherwise 1. The default
// is deliberately serial — trial-level parallelism owns the cores, and
// intra-trial fan-out only pays when a single large job has the box to
// itself.
func IntraWorkers(n int) int {
	if n > 0 {
		return n
	}
	if s := os.Getenv(IntraWorkersEnv); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 1
}

// rowChunks partitions the vertex range [0, n) into at most parts
// contiguous row ranges balanced by arc count (row cost in every kernel
// is proportional to its arcs, not its mere presence). Depends only on
// the graph and parts, never on scheduling.
func (g *Graph) rowChunks(parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	total := len(g.nbr)
	target := (total + parts - 1) / parts
	if target < 1 {
		target = 1
	}
	chunks := make([][2]int, 0, parts)
	start, arcs := 0, 0
	for v := 0; v < g.n && len(chunks) < parts-1; v++ {
		arcs += int(g.off[v+1] - g.off[v])
		if arcs >= target && v+1 < g.n {
			chunks = append(chunks, [2]int{start, v + 1})
			start, arcs = v+1, 0
		}
	}
	if start < g.n || len(chunks) == 0 {
		chunks = append(chunks, [2]int{start, g.n})
	}
	return chunks
}

// runChunks fans the chunks across workers goroutines. Workers claim
// chunk indexes from an atomic cursor, so every chunk runs exactly once;
// which worker runs it is scheduling-dependent, which is why do must
// write only chunk-indexed state.
func runChunks(workers, chunks int, do func(chunk int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= chunks {
					return
				}
				do(i)
			}
		}()
	}
	wg.Wait()
}

// CountTrianglesN counts triangles with up to workers goroutines. The
// result is bit-identical to CountTriangles at any worker count: each
// triangle is attributed to its smallest vertex's chunk, partial counts
// are exact int64s, and the reduction folds them in chunk order.
func (g *Graph) CountTrianglesN(workers int) int64 {
	workers = IntraWorkers(workers)
	if workers <= 1 || g.n == 0 {
		return g.CountTriangles()
	}
	chunks := g.rowChunks(4 * workers)
	partial := make([]int64, len(chunks))
	runChunks(workers, len(chunks), func(i int) {
		partial[i] = g.countTrianglesRange(chunks[i][0], chunks[i][1])
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}

// DisjointVeeCountN computes DisjointVeeCount with up to workers
// goroutines. Per-source matchings are independent (each touches only its
// own out[v] slot), so the output is bit-identical at any worker count.
func (g *Graph) DisjointVeeCountN(workers int) []int {
	workers = IntraWorkers(workers)
	out := make([]int, g.n)
	if workers <= 1 || g.n == 0 {
		for v := 0; v < g.n; v++ {
			out[v] = g.DisjointVeeCountAt(v)
		}
		return out
	}
	chunks := g.rowChunks(4 * workers)
	runChunks(workers, len(chunks), func(i int) {
		for v := chunks[i][0]; v < chunks[i][1]; v++ {
			out[v] = g.DisjointVeeCountAt(v)
		}
	})
	return out
}

// FindTriangleN finds the same witness FindTriangle would — the
// lexicographically first triangle edge with its smallest apex — using up
// to workers goroutines. Chunks are claimed in ascending row order and
// each records its own first hit; a worker skips any chunk above the
// lowest hit seen so far (nothing below it can change the winner), and
// the final answer is the lowest-index chunk's hit, which is exactly the
// serial scan's first hit.
func (g *Graph) FindTriangleN(workers int) (Triangle, bool) {
	workers = IntraWorkers(workers)
	if workers <= 1 || g.n == 0 {
		return g.FindTriangle()
	}
	chunks := g.rowChunks(4 * workers)
	found := make([]Triangle, len(chunks))
	hit := make([]bool, len(chunks))
	var best atomic.Int64
	best.Store(int64(len(chunks)))
	runChunks(workers, len(chunks), func(i int) {
		if int64(i) > best.Load() {
			return // a lower chunk already has a witness
		}
		t, ok := g.findTriangleRange(chunks[i][0], chunks[i][1])
		if !ok {
			return
		}
		found[i], hit[i] = t, true
		for {
			cur := best.Load()
			if int64(i) >= cur || best.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	})
	for i := range chunks {
		if hit[i] {
			return found[i], true
		}
	}
	return Triangle{}, false
}

// findTriangleRange is FindTriangle's scan restricted to edges whose
// smaller endpoint lies in [lo, hi): same edge order, same
// smallest-apex witness.
func (g *Graph) findTriangleRange(lo, hi int) (Triangle, bool) {
	for u := lo; u < hi; u++ {
		for _, w := range g.row(u) {
			if int(w) <= u {
				continue
			}
			e := Edge{U: u, V: int(w)}
			if apex, ok := g.HasTriangleOn(e); ok {
				return Triangle{A: e.U, B: e.V, C: apex}.Canon(), true
			}
		}
	}
	return Triangle{}, false
}
