package graph

import (
	"testing"
	"testing/quick"
)

func TestSalemSpencerProgressionFree(t *testing.T) {
	s := SalemSpencer(200)
	if len(s) < 10 {
		t.Fatalf("set too small: %d", len(s))
	}
	in := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 200 {
			t.Fatalf("element %d out of range", v)
		}
		in[v] = true
	}
	// No non-trivial 3-term AP: a + c = 2b.
	for _, a := range s {
		for _, c := range s {
			if a >= c {
				continue
			}
			if (a+c)%2 == 0 && in[(a+c)/2] {
				t.Fatalf("AP found: %d, %d, %d", a, (a+c)/2, c)
			}
		}
	}
}

func TestSalemSpencerDensity(t *testing.T) {
	// |S ∩ [0, 3^k)| = 2^k exactly.
	if got := len(SalemSpencer(27)); got != 8 {
		t.Fatalf("|S ∩ [0,27)| = %d, want 8", got)
	}
	if got := len(SalemSpencer(81)); got != 16 {
		t.Fatalf("|S ∩ [0,81)| = %d, want 16", got)
	}
}

func TestBehrendGraphExactStructure(t *testing.T) {
	for _, m := range []int{9, 27, 50} {
		bg := NewBehrendGraph(m)
		wantTri := int64(m * len(bg.S))
		if got := bg.G.CountTriangles(); got != wantTri {
			t.Fatalf("m=%d: %d triangles, want %d", m, got, wantTri)
		}
		if got := int64(len(bg.Planted)); got != wantTri {
			t.Fatalf("m=%d: planted %d, want %d", m, got, wantTri)
		}
		if bg.G.M() != 3*m*len(bg.S) {
			t.Fatalf("m=%d: %d edges, want %d", m, bg.G.M(), 3*m*len(bg.S))
		}
		// The planted family is a perfect edge-disjoint decomposition:
		// packing = all triangles, farness exactly 1/3.
		used := map[Edge]bool{}
		for _, tr := range bg.Planted {
			if !bg.G.IsTriangle(tr.A, tr.B, tr.C) {
				t.Fatalf("m=%d: planted %v not a triangle", m, tr)
			}
			for _, e := range tr.Edges() {
				if used[e] {
					t.Fatalf("m=%d: planted triangles share edge %v", m, e)
				}
				used[e] = true
			}
		}
		if len(used) != bg.G.M() {
			t.Fatalf("m=%d: decomposition covers %d of %d edges", m, len(used), bg.G.M())
		}
	}
}

func TestBehrendEveryEdgeOnExactlyOneTriangle(t *testing.T) {
	bg := NewBehrendGraph(30)
	// Count triangle membership per edge by enumerating all triangles.
	count := map[Edge]int{}
	for _, tr := range bg.G.Triangles(-1) {
		for _, e := range tr.Edges() {
			count[e]++
		}
	}
	bg.G.VisitEdges(func(e Edge) bool {
		if count[e] != 1 {
			t.Errorf("edge %v lies on %d triangles, want exactly 1", e, count[e])
			return false
		}
		return true
	})
}

func TestBehrendFarness(t *testing.T) {
	bg := NewBehrendGraph(40)
	// Exactly 1/3-far: the packing certificate gives exactly m·|S| and no
	// removal set smaller than the packing can hit all (disjoint) triangles.
	if eps := bg.G.FarnessLowerBound(); eps < 0.3333 || eps > 0.3334 {
		t.Fatalf("farness certificate %v, want 1/3", eps)
	}
}

func TestQuickBehrendTriangleCount(t *testing.T) {
	f := func(raw uint8) bool {
		m := int(raw)%40 + 3
		bg := NewBehrendGraph(m)
		return bg.G.CountTriangles() == int64(m*len(bg.S))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
