package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// This file holds the newer workload families behind the scenario layer
// (internal/scenario): power-law degree sequences, planted communities,
// and the Behrend blowup. Like every generator in this package they are
// deterministic functions of their *rand.Rand argument and stream edges
// directly into a Builder — no intermediate edge slices.

// addErdosRenyiRange adds each unordered pair inside [lo, hi) independently
// with probability p, using the same geometric-skipping walk (and the same
// rng consumption) as ErdosRenyi.
func addErdosRenyiRange(b *Builder, lo, hi int, p float64, rng *rand.Rand) {
	n := hi - lo
	if n <= 1 || p <= 0 {
		return
	}
	if p >= 1 {
		for u := lo; u < hi; u++ {
			for v := u + 1; v < hi; v++ {
				b.AddEdge(u, v)
			}
		}
		return
	}
	logq := math.Log1p(-p)
	total := int64(n) * int64(n-1) / 2
	var i int64 = -1
	for {
		u := rng.Float64()
		skip := int64(math.Floor(math.Log(1-u) / logq))
		i += skip + 1
		if i >= total {
			return
		}
		u0, v0 := pairFromIndex(n, i)
		b.AddEdge(lo+u0, lo+v0)
	}
}

// ChungLuParams controls ChungLu.
type ChungLuParams struct {
	N     int     // number of vertices
	D     float64 // target average degree (mean of the weight sequence)
	Alpha float64 // power-law exponent of the degree distribution (> 2)
}

// weightScratch recycles the Chung–Lu weight array between builds.
var weightPool = sync.Pool{New: func() any { return new([]float64) }}

// ChungLu samples the Chung–Lu random graph for a power-law expected
// degree sequence: vertex v gets weight w_v ∝ (v+1)^{-1/(α-1)} scaled so
// the mean weight is D, and each pair {u,v} is an edge independently with
// probability min(1, w_u·w_v / Σw). Low ids are the heavy head of the
// distribution. Sampling uses the Miller–Hagberg skipping scheme over the
// descending weight order, so the running time is O(N + |E|) rather than
// O(N²).
func ChungLu(p ChungLuParams, rng *rand.Rand) *Graph {
	n := p.N
	b := NewBuilder(n)
	if n <= 1 || p.D <= 0 {
		return b.Build()
	}
	wp := weightPool.Get().(*[]float64)
	w := (*wp)[:0]
	if cap(w) < n {
		w = make([]float64, 0, n)
	}
	exp := -1.0 / (p.Alpha - 1)
	sum := 0.0
	for v := 0; v < n; v++ {
		r := math.Pow(float64(v+1), exp)
		w = append(w, r)
		sum += r
	}
	scale := p.D * float64(n) / sum
	for v := range w {
		w[v] *= scale
	}
	W := p.D * float64(n) // Σ w after scaling
	for u := 0; u < n-1; u++ {
		v := u + 1
		q := math.Min(1, w[u]*w[v]/W)
		for v < n && q > 0 {
			if q < 1 {
				// Geometric skip at rate q; thin to the true (smaller)
				// probability at the landing site below.
				r := rng.Float64()
				v += int(math.Floor(math.Log(1-r) / math.Log1p(-q)))
				if v >= n {
					break
				}
			}
			pv := math.Min(1, w[u]*w[v]/W)
			if pv >= q || rng.Float64() < pv/q {
				b.AddEdge(u, v)
			}
			v++
			if v < n {
				q = math.Min(1, w[u]*w[v]/W)
			}
		}
	}
	*wp = w
	weightPool.Put(wp)
	return b.Build()
}

// PlantedPartitionParams controls PlantedPartition.
type PlantedPartitionParams struct {
	N      int     // number of vertices
	Blocks int     // number of communities (contiguous, near-equal sizes)
	PIn    float64 // within-community edge probability
	POut   float64 // cross-community edge probability
}

// PlantedPartition samples the planted-partition / stochastic block model:
// vertices split into Blocks contiguous communities of near-equal size,
// same-community pairs are edges with probability PIn and cross-community
// pairs with probability POut. With PIn ≫ POut the communities are
// triangle-rich while the global graph stays sparse — the regime where
// triangle mass hides inside clusters a uniform edge sample rarely enters
// twice.
func PlantedPartition(p PlantedPartitionParams, rng *rand.Rand) *Graph {
	if p.Blocks < 1 {
		panic(fmt.Sprintf("graph: PlantedPartition needs at least one block, got %d", p.Blocks))
	}
	b := NewBuilder(p.N)
	lo := func(i int) int { return i * p.N / p.Blocks }
	for i := 0; i < p.Blocks; i++ {
		addErdosRenyiRange(b, lo(i), lo(i+1), p.PIn, rng)
	}
	for i := 0; i < p.Blocks; i++ {
		for j := i + 1; j < p.Blocks; j++ {
			addBipartite(b, lo(i), lo(i+1), lo(j), lo(j+1), p.POut, rng)
		}
	}
	return b.Build()
}

// BehrendBlowupGraph is the blown-up Behrend instance with its
// certificate.
type BehrendBlowupGraph struct {
	// G is the blowup graph on 6·M·B vertices (base vertex v becomes the
	// cloud [v·B, (v+1)·B)).
	G *Graph
	// M is the base Behrend parameter, B the blowup factor.
	M, B int
	// Planted is a family of M·|S|·B² pairwise edge-disjoint triangles
	// covering every edge exactly once, so G is exactly 1/3-far from
	// triangle-free.
	Planted []Triangle
}

// NewBehrendBlowup replaces every vertex of the Behrend graph for
// parameter m with an independent cloud of b clones and every edge with
// the complete bipartite graph between the clouds. Each base triangle
// {x,y,z} blows up into b³ triangles, of which the Latin-square family
// {(x_i, y_j, z_{(i+j) mod b})} is pairwise edge-disjoint and covers each
// blown-up edge exactly once — the graph stays exactly 1/3-far while its
// density is tunable: n = 6mb vertices, 3·m·|S|·b² edges, average degree
// |S|·b. This is the §5 direction ("sophisticated utilization of Behrend
// graphs") at any target density.
func NewBehrendBlowup(m, b int) BehrendBlowupGraph {
	if m < 1 || b < 1 {
		panic(fmt.Sprintf("graph: NewBehrendBlowup needs m, b >= 1 (m=%d, b=%d)", m, b))
	}
	s := SalemSpencer(m)
	n := 6 * m * b
	bd := NewBuilder(n)
	out := BehrendBlowupGraph{M: m, B: b}
	clone := func(v, i int) int { return v*b + i }
	for x := 0; x < m; x++ {
		for _, a := range s {
			vy := m + x + a     // in [m, 3m)
			vz := 3*m + x + 2*a // in [3m, 6m)
			for i := 0; i < b; i++ {
				for j := 0; j < b; j++ {
					bd.AddEdge(clone(x, i), clone(vy, j))
					bd.AddEdge(clone(vy, i), clone(vz, j))
					bd.AddEdge(clone(x, i), clone(vz, j))
					out.Planted = append(out.Planted, Triangle{
						A: clone(x, i), B: clone(vy, j), C: clone(vz, (i+j)%b),
					}.Canon())
				}
			}
		}
	}
	out.G = bd.Build()
	return out
}
