//go:build race

package graph

// raceEnabled gates allocation-count assertions: under the race
// detector sync.Pool randomly drops Puts and the instrumentation itself
// allocates, so allocs/op is not meaningful there.
const raceEnabled = true
