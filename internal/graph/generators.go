package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// This file contains the workload generators used by the experiments. All
// generators are deterministic functions of their *rand.Rand argument, so
// experiments are reproducible from a seed.

// ErdosRenyi samples G(n, p): every unordered pair is an edge
// independently with probability p. It uses geometric skipping, so the
// expected running time is O(n + p·n²).
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	addErdosRenyiRange(b, 0, n, p, rng)
	return b.Build()
}

// pairFromIndex maps a linear index in [0, n(n-1)/2) to the i-th unordered
// pair (u,v), u < v, in lexicographic order.
func pairFromIndex(n int, idx int64) (int, int) {
	u := 0
	rowLen := int64(n - 1)
	for idx >= rowLen {
		idx -= rowLen
		u++
		rowLen--
	}
	return u, u + 1 + int(idx)
}

// RandomAvgDegree samples G(n, p) with p chosen so the expected average
// degree is d.
func RandomAvgDegree(n int, d float64, rng *rand.Rand) *Graph {
	if n <= 1 {
		return NewBuilder(n).Build()
	}
	p := d / float64(n-1)
	return ErdosRenyi(n, p, rng)
}

// Tripartite samples a random tripartite graph on parts of sizes
// nu, nv1, nv2 (vertex ids: U = [0,nu), V1 = [nu, nu+nv1),
// V2 = [nu+nv1, nu+nv1+nv2)). Every cross-part pair is an edge
// independently with probability p. Same-part pairs never appear, so every
// triangle has exactly one vertex in each part.
func Tripartite(nu, nv1, nv2 int, p float64, rng *rand.Rand) *Graph {
	n := nu + nv1 + nv2
	b := NewBuilder(n)
	addBipartite(b, 0, nu, nu, nu+nv1, p, rng)     // U × V1
	addBipartite(b, 0, nu, nu+nv1, n, p, rng)      // U × V2
	addBipartite(b, nu, nu+nv1, nu+nv1, n, p, rng) // V1 × V2
	return b.Build()
}

// addBipartite adds each pair in [aLo,aHi) × [bLo,bHi) independently with
// probability p using geometric skipping.
func addBipartite(b *Builder, aLo, aHi, bLo, bHi int, p float64, rng *rand.Rand) {
	na, nb := aHi-aLo, bHi-bLo
	if na <= 0 || nb <= 0 || p <= 0 {
		return
	}
	if p >= 1 {
		for u := aLo; u < aHi; u++ {
			for v := bLo; v < bHi; v++ {
				b.AddEdge(u, v)
			}
		}
		return
	}
	logq := math.Log1p(-p)
	total := int64(na) * int64(nb)
	var i int64 = -1
	for {
		u := rng.Float64()
		skip := int64(math.Floor(math.Log(1-u) / logq))
		i += skip + 1
		if i >= total {
			return
		}
		b.AddEdge(aLo+int(i/int64(nb)), bLo+int(i%int64(nb)))
	}
}

// RandomBipartite samples a bipartite G(n1, n2, p) on parts [0,n1) and
// [n1, n1+n2). Bipartite graphs are triangle-free, so this is the standard
// "no" instance generator.
func RandomBipartite(n1, n2 int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n1 + n2)
	addBipartite(b, 0, n1, n1, n1+n2, p, rng)
	return b.Build()
}

// BipartiteAvgDegree samples a triangle-free bipartite random graph on n
// vertices (split in half) with expected average degree d.
func BipartiteAvgDegree(n int, d float64, rng *rand.Rand) *Graph {
	n1 := n / 2
	n2 := n - n1
	if n1 == 0 || n2 == 0 {
		return NewBuilder(n).Build()
	}
	// avg degree = 2·p·n1·n2 / n  =>  p = d·n / (2·n1·n2).
	p := d * float64(n) / (2 * float64(n1) * float64(n2))
	return RandomBipartite(n1, n2, p, rng)
}

// DisjointTriangles builds t pairwise vertex-disjoint triangles on n ≥ 3t
// vertices (remaining vertices isolated). The graph has 3t edges and is
// exactly 1/3-far from triangle-free (removing one edge per triangle is
// necessary and sufficient).
func DisjointTriangles(n, t int, rng *rand.Rand) *Graph {
	if 3*t > n {
		panic(fmt.Sprintf("graph: DisjointTriangles needs n >= 3t (n=%d, t=%d)", n, t))
	}
	perm := rng.Perm(n)
	b := NewBuilder(n)
	for i := 0; i < t; i++ {
		a, c, d := perm[3*i], perm[3*i+1], perm[3*i+2]
		b.AddEdge(a, c)
		b.AddEdge(c, d)
		b.AddEdge(a, d)
	}
	return b.Build()
}

// FarParams controls the FarWithDegree generator.
type FarParams struct {
	N   int     // number of vertices
	D   float64 // target average degree (m = N·D/2 edges)
	Eps float64 // certified farness: ≥ Eps·m edge-disjoint triangles
}

// FarGraph is an ε-far instance together with its farness certificate.
type FarGraph struct {
	G *Graph
	// Planted is a family of pairwise edge-disjoint triangles of G, so G is
	// at least (len(Planted)/M)-far from triangle-free.
	Planted []Triangle
	// CertEps = len(Planted) / M.
	CertEps float64
}

// FarWithDegree builds a graph with ~N·D/2 edges that is certifiably
// Eps-far from triangle-free and returns it with an explicit edge-disjoint
// triangle certificate.
//
// Triangles are planted as vertex-disjoint complete tripartite blocks
// K_{a,a,a}: by a Latin-square decomposition, each block carries a²
// pairwise edge-disjoint triangles on 3a² edges, so the block alone is
// exactly 1/3-far. Block side a is matched to the target degree (block
// vertices get degree 2a ≈ 2D), blocks are planted until ceil(Eps·m)
// certificate triangles exist, and the remaining edge budget is filled with
// bipartite noise on vertices disjoint from all blocks — noise is
// triangle-free on its own and cannot touch the certificate.
//
// Requires Eps ≤ 1/3 (with a small constant of slack for rounding).
func FarWithDegree(p FarParams, rng *rand.Rand) FarGraph {
	m := int(math.Round(float64(p.N) * p.D / 2))
	t := int(math.Ceil(p.Eps * float64(m)))
	if t < 1 {
		t = 1
	}
	aMax := int(math.Round(p.D))
	if aMax < 1 {
		aMax = 1
	}
	perm := rng.Perm(p.N)
	next := 0
	take := func(c int) []int {
		if next+c > p.N {
			panic(fmt.Sprintf("graph: FarWithDegree ran out of vertices (n=%d d=%.1f eps=%.3f)",
				p.N, p.D, p.Eps))
		}
		s := perm[next : next+c]
		next += c
		return s
	}
	b := NewBuilder(p.N)
	var planted []Triangle
	for remaining := t; remaining > 0; {
		a := aMax
		if s := int(math.Ceil(math.Sqrt(float64(remaining)))); s < a {
			a = s
		}
		vs := take(3 * a)
		pu, pv, pw := vs[:a], vs[a:2*a], vs[2*a:]
		// Complete tripartite block.
		for i := 0; i < a; i++ {
			for j := 0; j < a; j++ {
				b.AddEdge(pu[i], pv[j])
				b.AddEdge(pu[i], pw[j])
				b.AddEdge(pv[i], pw[j])
			}
		}
		// Latin-square certificate: triangles (i, j, (i+j) mod a) are
		// pairwise edge-disjoint and decompose the block's edges.
		for i := 0; i < a; i++ {
			for j := 0; j < a; j++ {
				planted = append(planted, Triangle{
					A: pu[i], B: pv[j], C: pw[(i+j)%a],
				}.Canon())
			}
		}
		remaining -= a * a
	}
	if b.NumEdges() > m {
		panic(fmt.Sprintf("graph: FarWithDegree edge budget exceeded (planted %d > m=%d); increase N or D",
			b.NumEdges(), m))
	}
	// Noise: bipartite across a half-split of the unused vertices.
	rest := perm[next:]
	half := len(rest) / 2
	left, right := rest[:half], rest[half:]
	if b.NumEdges() < m && (len(left) == 0 || len(right) == 0) {
		panic("graph: FarWithDegree has no room for noise edges")
	}
	maxNoise := int64(len(left)) * int64(len(right))
	if int64(m-b.NumEdges()) > maxNoise {
		panic("graph: FarWithDegree noise budget exceeds bipartite capacity")
	}
	for tries := 0; b.NumEdges() < m; tries++ {
		if tries > 200*m+10000 {
			panic("graph: FarWithDegree failed to place noise edges (graph too dense)")
		}
		u := left[rng.Intn(len(left))]
		v := right[rng.Intn(len(right))]
		b.AddEdge(u, v)
	}
	g := b.Build()
	return FarGraph{G: g, Planted: planted, CertEps: float64(len(planted)) / float64(g.M())}
}

// DenseCoreParams controls PlantedDenseCore.
type DenseCoreParams struct {
	N     int // total vertices
	Hubs  int // number of high-degree hub vertices
	Pairs int // triangle-vee pairs per hub
}

// PlantedDenseCore builds the §3.4.2 illustration: Hubs high-degree
// vertices, each the source of Pairs edge-disjoint triangle-vees whose far
// endpoints are fresh low-degree vertices. Every triangle in the graph
// contains a hub, the hubs have degree 2·Pairs, and all other vertices have
// degree ≤ 2 — a uniformly random sampled vertex almost never hits a hub,
// which is exactly the case that breaks naive uniform sampling.
func PlantedDenseCore(p DenseCoreParams, rng *rand.Rand) *Graph {
	need := p.Hubs + 2*p.Hubs*p.Pairs
	if need > p.N {
		panic(fmt.Sprintf("graph: PlantedDenseCore needs %d vertices, have %d", need, p.N))
	}
	perm := rng.Perm(p.N)
	b := NewBuilder(p.N)
	next := p.Hubs
	for h := 0; h < p.Hubs; h++ {
		hub := perm[h]
		for i := 0; i < p.Pairs; i++ {
			a, c := perm[next], perm[next+1]
			next += 2
			b.AddEdge(hub, a)
			b.AddEdge(hub, c)
			b.AddEdge(a, c)
		}
	}
	return b.Build()
}

// BucketStressParams controls BucketStress.
type BucketStressParams struct {
	N        int // total vertices
	Levels   int // number of degree scales (hub degree 2·3^ℓ at level ℓ)
	HubsPer  int // hubs per level
	TriLevel int // the single level whose hubs carry triangle-vees
}

// BucketStress builds a graph whose degree distribution spans Levels
// powers of 3, with triangle-vees planted only at the hubs of TriLevel.
// It exercises the unrestricted protocol's bucket iteration: the full
// bucket is not the densest nor the sparsest, and every other bucket is a
// decoy with triangle-free (star) edges.
func BucketStress(p BucketStressParams, rng *rand.Rand) *Graph {
	if p.TriLevel < 0 || p.TriLevel >= p.Levels {
		panic("graph: BucketStress TriLevel out of range")
	}
	// Budget check.
	need := 0
	for l := 0; l < p.Levels; l++ {
		deg := 2 * pow3(l)
		need += p.HubsPer * (1 + deg)
	}
	if need > p.N {
		panic(fmt.Sprintf("graph: BucketStress needs %d vertices, have %d", need, p.N))
	}
	perm := rng.Perm(p.N)
	next := 0
	take := func() int { v := perm[next]; next++; return v }
	b := NewBuilder(p.N)
	for l := 0; l < p.Levels; l++ {
		deg := 2 * pow3(l)
		for h := 0; h < p.HubsPer; h++ {
			hub := take()
			if l == p.TriLevel {
				for i := 0; i < deg/2; i++ {
					a, c := take(), take()
					b.AddEdge(hub, a)
					b.AddEdge(hub, c)
					b.AddEdge(a, c)
				}
			} else {
				for i := 0; i < deg; i++ {
					b.AddEdge(hub, take())
				}
			}
		}
	}
	return b.Build()
}

func pow3(l int) int {
	v := 1
	for i := 0; i < l; i++ {
		v *= 3
	}
	return v
}

// Complete returns K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Cycle returns the n-cycle (triangle-free for n ≠ 3).
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} centered at vertex 0 (triangle-free).
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// Embed implements Lemma 4.17: it places g on the first g.N() ids of a
// graph with nTotal ≥ g.N() vertices, leaving the rest isolated. The
// result has the same edge set, triangles, and absolute distance to
// triangle-freeness as g, but average degree scaled by g.N()/nTotal.
func Embed(g *Graph, nTotal int) *Graph {
	if nTotal < g.N() {
		panic(fmt.Sprintf("graph: Embed target %d smaller than source %d", nTotal, g.N()))
	}
	b := NewBuilder(nTotal)
	g.VisitEdges(func(e Edge) bool {
		b.AddEdge(e.U, e.V)
		return true
	})
	return b.Build()
}

// Relabel returns a copy of g with vertex v renamed to perm[v]. perm must
// be a permutation of [0, g.N()).
func Relabel(g *Graph, perm []int) *Graph {
	if len(perm) != g.N() {
		panic("graph: Relabel permutation has wrong length")
	}
	b := NewBuilder(g.N())
	g.VisitEdges(func(e Edge) bool {
		b.AddEdge(perm[e.U], perm[e.V])
		return true
	})
	return b.Build()
}

// Union returns the union of two graphs over the same vertex universe.
func Union(g1, g2 *Graph) *Graph {
	if g1.N() != g2.N() {
		panic("graph: Union requires equal vertex counts")
	}
	b := NewBuilder(g1.N())
	g1.VisitEdges(func(e Edge) bool { b.AddEdge(e.U, e.V); return true })
	g2.VisitEdges(func(e Edge) bool { b.AddEdge(e.U, e.V); return true })
	return b.Build()
}

// HiddenBlockParams controls HiddenBlock.
type HiddenBlockParams struct {
	N        int     // total vertices
	A        int     // block side: the K_{A,A,A} block has 3A vertices
	NoiseDeg float64 // expected degree of the bipartite noise on the rest
}

// HiddenBlock plants a single complete tripartite block K_{A,A,A} — with
// its Latin-square family of A² edge-disjoint triangles — among N
// vertices whose remainder carries triangle-free bipartite noise. The
// block vertices are a vanishing 3A/N fraction, so uniformly random
// vertex sampling almost never probes the block, while its degree (2A)
// stands out from the noise: the §3.3 scenario ("a small dense subgraph
// of relatively high-degree nodes which contains all the triangles") that
// motivates bucketed candidate sampling. The second return value is the
// planted triangle certificate.
func HiddenBlock(p HiddenBlockParams, rng *rand.Rand) (*Graph, []Triangle) {
	if 3*p.A > p.N {
		panic(fmt.Sprintf("graph: HiddenBlock needs N ≥ 3A (N=%d, A=%d)", p.N, p.A))
	}
	perm := rng.Perm(p.N)
	pu, pv, pw := perm[:p.A], perm[p.A:2*p.A], perm[2*p.A:3*p.A]
	b := NewBuilder(p.N)
	var planted []Triangle
	for i := 0; i < p.A; i++ {
		for j := 0; j < p.A; j++ {
			b.AddEdge(pu[i], pv[j])
			b.AddEdge(pu[i], pw[j])
			b.AddEdge(pv[i], pw[j])
			planted = append(planted, Triangle{A: pu[i], B: pv[j], C: pw[(i+j)%p.A]}.Canon())
		}
	}
	// Triangle-free bipartite noise on the non-block vertices.
	rest := perm[3*p.A:]
	half := len(rest) / 2
	left, right := rest[:half], rest[half:]
	need := int(math.Round(p.NoiseDeg * float64(len(rest)) / 2))
	if need > 0 && (len(left) == 0 || len(right) == 0) {
		panic("graph: HiddenBlock has no room for noise")
	}
	maxTries := 200*need + 10000
	for tries := 0; need > 0; tries++ {
		if tries > maxTries {
			panic("graph: HiddenBlock failed to place noise edges")
		}
		u := left[rng.Intn(len(left))]
		v := right[rng.Intn(len(right))]
		if !b.Has(u, v) {
			b.AddEdge(u, v)
			need--
		}
	}
	return b.Build(), planted
}
