package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate (reversed)
	b.AddEdge(2, 2) // self-loop ignored
	b.AddEdge(3, 4)
	if b.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", b.NumEdges())
	}
	if !b.Has(0, 1) || !b.Has(1, 0) {
		t.Fatal("Has missed inserted edge")
	}
	if b.Has(2, 2) || b.Has(0, 3) {
		t.Fatal("Has reported absent edge")
	}
	g := b.Build()
	if g.N() != 5 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(4, 3) {
		t.Fatal("HasEdge missed edge")
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 1) || g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Fatal("HasEdge reported absent edge")
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(3).AddEdge(0, 3)
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 2, V: 3}})
	if g.Degree(0) != 3 || g.Degree(1) != 1 || g.Degree(2) != 2 {
		t.Fatalf("degrees: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	nb := g.Neighbors(0)
	want := []int32{1, 2, 3}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v", nb)
		}
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 2 {
		t.Fatalf("AvgDegree = %v, want 2", got)
	}
}

func TestEdgesCanonicalOrder(t *testing.T) {
	g := FromEdges(5, []Edge{{U: 4, V: 2}, {U: 1, V: 0}, {U: 3, V: 1}})
	es := g.Edges()
	want := []Edge{{U: 0, V: 1}, {U: 1, V: 3}, {U: 2, V: 4}}
	if len(es) != len(want) {
		t.Fatalf("Edges = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges[%d] = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestVisitEdgesEarlyStop(t *testing.T) {
	g := Complete(6)
	count := 0
	g.VisitEdges(func(Edge) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Fatalf("visited %d edges, want 4", count)
	}
}

func TestIncidentEdges(t *testing.T) {
	g := FromEdges(4, []Edge{{U: 2, V: 0}, {U: 2, V: 3}})
	inc := g.IncidentEdges(2)
	if len(inc) != 2 {
		t.Fatalf("IncidentEdges = %v", inc)
	}
	for _, e := range inc {
		if e != e.Canon() {
			t.Fatalf("edge %v not canonical", e)
		}
		if e.U != 2 && e.V != 2 {
			t.Fatalf("edge %v not incident to 2", e)
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := Complete(5)
	sub := g.Subgraph(map[int]bool{0: true, 1: true, 3: true})
	if sub.M() != 3 {
		t.Fatalf("induced K3 has %d edges", sub.M())
	}
	if !sub.HasEdge(0, 3) || sub.HasEdge(0, 2) {
		t.Fatal("wrong induced edges")
	}
	if sub.N() != g.N() {
		t.Fatal("Subgraph changed the vertex universe")
	}
}

func TestRemoveEdges(t *testing.T) {
	g := Complete(4)
	h := g.RemoveEdges([]Edge{{U: 0, V: 1}, {U: 3, V: 2}})
	if h.M() != 4 {
		t.Fatalf("M = %d, want 4", h.M())
	}
	if h.HasEdge(0, 1) || h.HasEdge(2, 3) {
		t.Fatal("removed edge still present")
	}
	if !h.HasEdge(0, 2) {
		t.Fatal("kept edge missing")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5) // center degree 4, leaves degree 1
	h := g.DegreeHistogram()
	if h[4] != 1 || h[1] != 4 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestQuickEdgeSetConsistency(t *testing.T) {
	// For random graphs: Edges(), HasEdge, Degree and M agree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(30, 0.2, rng)
		es := g.Edges()
		if len(es) != g.M() {
			return false
		}
		degSum := 0
		for v := 0; v < g.N(); v++ {
			degSum += g.Degree(v)
		}
		if degSum != 2*g.M() {
			return false
		}
		for _, e := range es {
			if !g.HasEdge(e.U, e.V) || !g.HasEdge(e.V, e.U) {
				return false
			}
			if e.U >= e.V {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 400
	const p = 0.05
	g := ErdosRenyi(n, p, rng)
	want := p * float64(n) * float64(n-1) / 2
	if got := float64(g.M()); got < 0.85*want || got > 1.15*want {
		t.Fatalf("M = %v, want ~%v", got, want)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if g := ErdosRenyi(10, 0, rng); g.M() != 0 {
		t.Fatal("p=0 produced edges")
	}
	if g := ErdosRenyi(10, 1, rng); g.M() != 45 {
		t.Fatalf("p=1 produced %d edges, want 45", g.M())
	}
	if g := ErdosRenyi(0, 0.5, rng); g.N() != 0 || g.M() != 0 {
		t.Fatal("n=0 misbehaved")
	}
	if g := ErdosRenyi(1, 0.5, rng); g.M() != 0 {
		t.Fatal("n=1 produced edges")
	}
}

func TestPairFromIndex(t *testing.T) {
	n := 7
	idx := int64(0)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gu, gv := pairFromIndex(n, idx)
			if gu != u || gv != v {
				t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", idx, gu, gv, u, v)
			}
			idx++
		}
	}
}

func TestRandomBipartiteIsTriangleFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := RandomBipartite(30, 40, 0.3, rng)
		if !g.IsTriangleFree() {
			t.Fatal("bipartite graph contains a triangle")
		}
	}
}

func TestBipartiteAvgDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := BipartiteAvgDegree(500, 12, rng)
	if d := g.AvgDegree(); d < 10 || d > 14 {
		t.Fatalf("AvgDegree = %v, want ~12", d)
	}
	if !g.IsTriangleFree() {
		t.Fatal("not triangle-free")
	}
}

func TestTripartiteStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := Tripartite(20, 20, 20, 0.5, rng)
	// No same-part edges.
	part := func(v int) int { return v / 20 }
	g.VisitEdges(func(e Edge) bool {
		if part(e.U) == part(e.V) {
			t.Errorf("same-part edge %v", e)
		}
		return true
	})
	// Every triangle has one vertex per part.
	for _, tri := range g.Triangles(100) {
		if part(tri.A) == part(tri.B) || part(tri.B) == part(tri.C) {
			t.Fatalf("triangle %v not cross-part", tri)
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := ErdosRenyi(20, 0.3, rng)
	perm := rng.Perm(20)
	h := Relabel(g, perm)
	if h.M() != g.M() {
		t.Fatalf("edge count changed: %d vs %d", h.M(), g.M())
	}
	if h.CountTriangles() != g.CountTriangles() {
		t.Fatal("triangle count changed under relabeling")
	}
	g.VisitEdges(func(e Edge) bool {
		if !h.HasEdge(perm[e.U], perm[e.V]) {
			t.Errorf("edge %v lost", e)
		}
		return true
	})
}

func TestUnion(t *testing.T) {
	g1 := FromEdges(4, []Edge{{U: 0, V: 1}})
	g2 := FromEdges(4, []Edge{{U: 1, V: 2}, {U: 0, V: 1}})
	u := Union(g1, g2)
	if u.M() != 2 {
		t.Fatalf("union M = %d, want 2", u.M())
	}
}

func TestEmbedPreservesTriangles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := Complete(6)
	h := Embed(g, 60)
	if h.N() != 60 {
		t.Fatalf("N = %d", h.N())
	}
	if h.CountTriangles() != g.CountTriangles() {
		t.Fatal("triangle count changed")
	}
	if h.AvgDegree() >= g.AvgDegree() {
		t.Fatal("embedding did not lower average degree")
	}
	_ = rng
}

func TestStarCycleComplete(t *testing.T) {
	if !Star(10).IsTriangleFree() {
		t.Fatal("star has a triangle")
	}
	if !Cycle(10).IsTriangleFree() {
		t.Fatal("C10 has a triangle")
	}
	if Cycle(3).IsTriangleFree() {
		t.Fatal("C3 is a triangle")
	}
	if got := Complete(5).CountTriangles(); got != 10 {
		t.Fatalf("K5 triangles = %d, want 10", got)
	}
}
