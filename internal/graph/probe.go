package graph

import "tricomm/internal/bitset"

// ProbeCursor amortizes repeated adjacency queries against one source
// row. For a shadowed row every probe is a single bit test in any order;
// for a sparse row the cursor gallops forward through the sorted
// neighbor array, so a batch of non-decreasing probes costs one pass over
// the row instead of one hash or binary search per edge. Zero
// allocations; the cursor is a value type.
type ProbeCursor struct {
	g      *Graph
	u      int
	row    []int32
	shadow []uint64 // nil for sparse rows
	pos    int      // resume point into row for monotone sparse probes
}

// ProbeRow positions a cursor on u's adjacency row.
func (g *Graph) ProbeRow(u int) ProbeCursor {
	if u < 0 || u >= g.n {
		return ProbeCursor{g: g, u: u}
	}
	return ProbeCursor{g: g, u: u, row: g.row(u), shadow: g.shadowRow(u)}
}

// Has reports whether {u, v} ∈ E. Sparse rows require the sequence of
// probed v values to be non-decreasing (the cursor only moves forward);
// shadowed rows accept any order.
func (c *ProbeCursor) Has(v int) bool {
	if v == c.u || v < 0 || c.g == nil || v >= c.g.n {
		return false
	}
	if c.shadow != nil {
		return bitset.Test(c.shadow, v)
	}
	// Gallop forward: double the step until we overshoot, then binary
	// search the bracketed window. A batch of b sorted probes against a
	// row of degree d costs O(b log(d/b) + b) overall.
	t := int32(v)
	row, i := c.row, c.pos
	if i >= len(row) {
		return false
	}
	step := 1
	j := i
	for j < len(row) && row[j] < t {
		i = j + 1
		j += step
		step <<= 1
	}
	if j > len(row) {
		j = len(row)
	}
	// row[i-1] < t ≤ row[j] (when in range); narrow by binary search.
	for i < j {
		mid := int(uint(i+j) >> 1)
		if row[mid] < t {
			i = mid + 1
		} else {
			j = mid
		}
	}
	c.pos = i
	return i < len(row) && row[i] == t
}

// HasEdgeBatch answers membership for a sorted ascending probe list vs
// against source u, writing results into out (len(out) must be ≥
// len(vs)). One cursor pass; no allocations.
func (g *Graph) HasEdgeBatch(u int, vs []int32, out []bool) {
	c := g.ProbeRow(u)
	for i, v := range vs {
		out[i] = c.Has(int(v))
	}
}

// FirstAdjacent returns the index into cands of the first candidate
// adjacent to u, or -1 when none is. Candidates may be in any order; a
// shadowed source row answers each candidate with one bit test, a sparse
// one with one hash probe.
func (g *Graph) FirstAdjacent(u int, cands []int) int {
	if u < 0 || u >= g.n {
		return -1
	}
	if s := g.shadowRow(u); s != nil {
		for i, v := range cands {
			if v != u && v >= 0 && v < g.n && bitset.Test(s, v) {
				return i
			}
		}
		return -1
	}
	for i, v := range cands {
		if g.HasEdge(u, v) {
			return i
		}
	}
	return -1
}
