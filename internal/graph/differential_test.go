// Differential property suite for the adaptive triangle kernels: every
// scenario-registry family is built small enough for a naive O(n³)
// reference, then the bitset (shadows forced everywhere), sparse
// (shadows disabled), and default-threshold paths must all agree with
// each other and with the naive answers — counts, per-edge apexes, and
// vee matchings. Lives in an external test package so it can import the
// scenario registry without a cycle.
package graph_test

import (
	"math/rand"
	"testing"

	"tricomm/internal/graph"
	"tricomm/internal/scenario"
)

// diffSpecs downsizes every registry family so the naive counter is
// affordable. The suite fails when a family is missing, so new families
// cannot dodge the differential check.
var diffSpecs = map[string]scenario.Spec{
	"er":                 {N: 48, P: 0.2},
	"random":             {N: 48, D: 6},
	"bipartite":          {N: 48, D: 5},
	"far":                {N: 64, D: 8, Eps: 0.2},
	"dense-core":         {N: 48, Hubs: 3, Pairs: 5},
	"bucket-stress":      {N: 64, Levels: 2, Hubs: 2, TriLevel: 1},
	"hidden-block":       {N: 64, A: 5, D: 3},
	"disjoint-triangles": {N: 48, T: 7},
	"tripartite":         {N: 36, P: 0.25},
	"complete":           {N: 16},
	"cycle":              {N: 24},
	"star":               {N: 24},
	"behrend":            {M: 9},
	"chung-lu":           {N: 64, D: 6, Alpha: 2.5},
	"sbm":                {N: 64, Blocks: 4, PIn: 0.35, POut: 0.06},
	"behrend-blowup":     {M: 5, Blowup: 3},
	"dup-adversary":      {N: 64, D: 7, Eps: 0.2, K: 4, Dup: 0.5},
}

// naiveCount counts triangles by exhaustive triple enumeration.
func naiveCount(g *graph.Graph) int64 {
	n := g.N()
	var count int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !g.HasEdge(i, j) {
				continue
			}
			for k := j + 1; k < n; k++ {
				if g.HasEdge(i, k) && g.HasEdge(j, k) {
					count++
				}
			}
		}
	}
	return count
}

// naiveApex returns the smallest common neighbor of e's endpoints by
// scanning the whole vertex set — the HasTriangleOn contract.
func naiveApex(g *graph.Graph, e graph.Edge) (int, bool) {
	for w := 0; w < g.N(); w++ {
		if w != e.U && w != e.V && g.HasEdge(e.U, w) && g.HasEdge(e.V, w) {
			return w, true
		}
	}
	return -1, false
}

// naiveVeeCountAt replays the greedy neighborhood matching with a plain
// map and per-pair HasEdge probes — the pre-bitset reference semantics.
func naiveVeeCountAt(g *graph.Graph, v int) int {
	nbrs := g.Neighbors(v)
	used := map[int]bool{}
	count := 0
	for i, u := range nbrs {
		if used[int(u)] {
			continue
		}
		for _, w := range nbrs[i+1:] {
			if used[int(w)] || !g.HasEdge(int(u), int(w)) {
				continue
			}
			used[int(u)] = true
			used[int(w)] = true
			count++
			break
		}
	}
	return count
}

// buildAt rebuilds the family instance with the given dense floor. The
// same seed always yields the same edge set, so the three builds are the
// same graph under different kernel strategies.
func buildAt(t *testing.T, sp scenario.Spec, seed int64, floor int) *graph.Graph {
	t.Helper()
	old := graph.DenseDegreeFloor
	graph.DenseDegreeFloor = floor
	defer func() { graph.DenseDegreeFloor = old }()
	inst, err := scenario.Build(sp, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return inst.G
}

func TestKernelsDifferentialAcrossFamilies(t *testing.T) {
	for _, f := range scenario.Families() {
		sp, ok := diffSpecs[f.Name]
		if !ok {
			t.Fatalf("family %s has no differential spec; add one", f.Name)
		}
		sp.Family = f.Name
		t.Run(f.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				sparse := buildAt(t, sp, seed, -1) // merge path only
				dense := buildAt(t, sp, seed, 1)   // shadows everywhere
				def := buildAt(t, sp, seed, 16)    // production heuristic
				want := naiveCount(sparse)
				for _, g := range []*graph.Graph{sparse, dense, def} {
					if got := g.CountTriangles(); got != want {
						t.Fatalf("seed %d: CountTriangles %d != naive %d", seed, got, want)
					}
					if got := g.CountTrianglesN(4); got != want {
						t.Fatalf("seed %d: CountTrianglesN %d != naive %d", seed, got, want)
					}
				}
				// Per-edge apexes: all paths must return the same smallest
				// common neighbor the naive scan finds.
				sparse.VisitEdges(func(e graph.Edge) bool {
					wantApex, wantOk := naiveApex(sparse, e)
					for _, g := range []*graph.Graph{sparse, dense, def} {
						apex, ok := g.HasTriangleOn(e)
						if ok != wantOk || apex != wantApex {
							t.Fatalf("seed %d edge %v: apex (%d,%v) != naive (%d,%v)",
								seed, e, apex, ok, wantApex, wantOk)
						}
					}
					return true
				})
				// Vee matchings: identical to the map-based greedy reference
				// on every path, serial and parallel.
				for v := 0; v < sparse.N(); v++ {
					wantVees := naiveVeeCountAt(sparse, v)
					for _, g := range []*graph.Graph{sparse, dense, def} {
						if got := g.DisjointVeeCountAt(v); got != wantVees {
							t.Fatalf("seed %d vertex %d: vees %d != naive %d",
								seed, v, got, wantVees)
						}
					}
				}
				for _, g := range []*graph.Graph{sparse, dense, def} {
					vees := g.DisjointVeeCountN(3)
					for v := range vees {
						if vees[v] != sparse.DisjointVeeCountAt(v) {
							t.Fatalf("seed %d: parallel vee count diverges at %d", seed, v)
						}
					}
				}
			}
		})
	}
}
