package graph

import (
	"math/rand"
	"testing"
)

// withDenseFloor runs fn with DenseDegreeFloor overridden, restoring it
// afterwards. Graphs must be (re)built inside fn: the threshold is read
// at construction time.
func withDenseFloor(t *testing.T, floor int, fn func()) {
	t.Helper()
	old := DenseDegreeFloor
	DenseDegreeFloor = floor
	defer func() { DenseDegreeFloor = old }()
	fn()
}

// rebuild reconstructs g from its edge list under the current threshold.
func rebuild(g *Graph) *Graph { return FromEdges(g.N(), g.Edges()) }

// denseTestGraphs returns a zoo spanning the strategy space: dense ER
// (all rows shadowed at default), sparse ER (none), a star (one huge row
// among degree-1 rows — the skewed sparse/gallop case), complete, a
// certified-far instance, and Behrend (triangle-free).
func denseTestGraphs() map[string]*Graph {
	rng := rand.New(rand.NewSource(9))
	return map[string]*Graph{
		"er-dense":  ErdosRenyi(256, 0.2, rng),
		"er-sparse": ErdosRenyi(256, 0.02, rng),
		"star":      Star(128),
		"complete":  Complete(48),
		"far":       FarWithDegree(FarParams{N: 256, D: 12, Eps: 0.2}, rng).G,
		"behrend":   NewBehrendGraph(27).G,
	}
}

// TestShadowPathEquivalence rebuilds every zoo graph with shadows
// disabled, forced everywhere, and at the default threshold, and demands
// identical results — counts, packings (order included), vee matchings
// (order included), witnesses — across all three.
func TestShadowPathEquivalence(t *testing.T) {
	type snapshot struct {
		count    int64
		tris     []Triangle
		pack     []Triangle
		vees     []int
		veesAt   []Vee
		triangle Triangle
		hasTri   bool
	}
	take := func(g *Graph) snapshot {
		s := snapshot{
			count: g.CountTriangles(),
			tris:  g.Triangles(-1),
			pack:  g.PackTriangles(),
			vees:  g.DisjointVeeCount(),
		}
		for v := 0; v < g.N() && len(s.veesAt) < 64; v++ {
			s.veesAt = append(s.veesAt, g.DisjointVeesAt(v)...)
		}
		s.triangle, s.hasTri = g.FindTriangle()
		return s
	}
	for name, base := range denseTestGraphs() {
		t.Run(name, func(t *testing.T) {
			var snaps [3]snapshot
			for i, floor := range []int{-1, 1, 16} {
				withDenseFloor(t, floor, func() {
					g := rebuild(base)
					if floor == -1 && g.shadowIdx != nil {
						t.Fatal("shadows built while disabled")
					}
					if floor == 1 && g.M() > 0 && g.shadowIdx == nil {
						t.Fatal("no shadows built at floor 1")
					}
					snaps[i] = take(g)
				})
			}
			for i := 1; i < 3; i++ {
				if snaps[i].count != snaps[0].count {
					t.Fatalf("count mismatch: %d vs %d", snaps[i].count, snaps[0].count)
				}
				if len(snaps[i].tris) != len(snaps[0].tris) {
					t.Fatalf("triangle list length mismatch")
				}
				for j := range snaps[i].tris {
					if snaps[i].tris[j] != snaps[0].tris[j] {
						t.Fatalf("triangle order diverges at %d: %v vs %v",
							j, snaps[i].tris[j], snaps[0].tris[j])
					}
				}
				if len(snaps[i].pack) != len(snaps[0].pack) {
					t.Fatalf("packing size mismatch: %d vs %d",
						len(snaps[i].pack), len(snaps[0].pack))
				}
				for j := range snaps[i].pack {
					if snaps[i].pack[j] != snaps[0].pack[j] {
						t.Fatalf("packing diverges at %d", j)
					}
				}
				for v := range snaps[i].vees {
					if snaps[i].vees[v] != snaps[0].vees[v] {
						t.Fatalf("vee count diverges at vertex %d", v)
					}
				}
				if len(snaps[i].veesAt) != len(snaps[0].veesAt) {
					t.Fatalf("vee matching size mismatch")
				}
				for j := range snaps[i].veesAt {
					if snaps[i].veesAt[j] != snaps[0].veesAt[j] {
						t.Fatalf("vee matching diverges at %d: %v vs %v",
							j, snaps[i].veesAt[j], snaps[0].veesAt[j])
					}
				}
				if snaps[i].hasTri != snaps[0].hasTri || snaps[i].triangle != snaps[0].triangle {
					t.Fatalf("witness diverges: (%v,%v) vs (%v,%v)",
						snaps[i].triangle, snaps[i].hasTri, snaps[0].triangle, snaps[0].hasTri)
				}
			}
		})
	}
}

// TestHasTriangleOnShadowEquivalence checks the per-edge apex across all
// threshold settings and every edge, including the mixed dense/sparse
// pairing the star graph forces.
func TestHasTriangleOnShadowEquivalence(t *testing.T) {
	for name, base := range denseTestGraphs() {
		t.Run(name, func(t *testing.T) {
			type res struct {
				apex int
				ok   bool
			}
			var runs [3][]res
			for i, floor := range []int{-1, 1, 16} {
				withDenseFloor(t, floor, func() {
					g := rebuild(base)
					g.VisitEdges(func(e Edge) bool {
						a, ok := g.HasTriangleOn(e)
						runs[i] = append(runs[i], res{a, ok})
						return true
					})
				})
			}
			for i := 1; i < 3; i++ {
				if len(runs[i]) != len(runs[0]) {
					t.Fatal("edge enumeration length mismatch")
				}
				for j := range runs[i] {
					if runs[i][j] != runs[0][j] {
						t.Fatalf("edge %d: %+v vs %+v", j, runs[i][j], runs[0][j])
					}
				}
			}
		})
	}
}

// TestParallelDeterminism demands bit-identical results from the
// parallel kernels at worker counts 1..8, including the FindTriangleN
// witness.
func TestParallelDeterminism(t *testing.T) {
	for name, g := range denseTestGraphs() {
		t.Run(name, func(t *testing.T) {
			wantCount := g.CountTriangles()
			wantVees := g.DisjointVeeCount()
			wantTri, wantOk := g.FindTriangle()
			wantRep := g.Analyze(true)
			for workers := 1; workers <= 8; workers++ {
				if got := g.CountTrianglesN(workers); got != wantCount {
					t.Fatalf("workers=%d: count %d != %d", workers, got, wantCount)
				}
				vees := g.DisjointVeeCountN(workers)
				for v := range vees {
					if vees[v] != wantVees[v] {
						t.Fatalf("workers=%d: vee count diverges at %d", workers, v)
					}
				}
				tri, ok := g.FindTriangleN(workers)
				if ok != wantOk || tri != wantTri {
					t.Fatalf("workers=%d: witness (%v,%v) != (%v,%v)",
						workers, tri, ok, wantTri, wantOk)
				}
				if rep := g.AnalyzeN(true, workers); rep != wantRep {
					t.Fatalf("workers=%d: report %+v != %+v", workers, rep, wantRep)
				}
			}
		})
	}
}

// TestRowChunksCoverage checks the partition is a disjoint cover of
// [0, n) for assorted part counts.
func TestRowChunksCoverage(t *testing.T) {
	for name, g := range denseTestGraphs() {
		for _, parts := range []int{1, 2, 3, 7, 64, 1000} {
			chunks := g.rowChunks(parts)
			if len(chunks) > parts {
				t.Fatalf("%s parts=%d: %d chunks", name, parts, len(chunks))
			}
			next := 0
			for _, c := range chunks {
				if c[0] != next || c[1] < c[0] {
					t.Fatalf("%s parts=%d: bad chunk %v at expected start %d", name, parts, c, next)
				}
				next = c[1]
			}
			if next != g.N() {
				t.Fatalf("%s parts=%d: cover ends at %d, want %d", name, parts, next, g.N())
			}
		}
	}
}

// TestProbeCursor checks batched probes against HasEdge on every graph
// and both row kinds.
func TestProbeCursor(t *testing.T) {
	for name, g := range denseTestGraphs() {
		t.Run(name, func(t *testing.T) {
			n := g.N()
			vs := make([]int32, 0, n)
			for v := 0; v < n; v += 3 {
				vs = append(vs, int32(v))
			}
			out := make([]bool, len(vs))
			for u := 0; u < n; u += 5 {
				g.HasEdgeBatch(u, vs, out)
				for i, v := range vs {
					if out[i] != g.HasEdge(u, int(v)) {
						t.Fatalf("u=%d v=%d: batch %v != HasEdge %v",
							u, v, out[i], g.HasEdge(u, int(v)))
					}
				}
			}
			// FirstAdjacent against a linear scan.
			cands := []int{n - 1, 1, 0, 2, n / 2, 3}
			for u := 0; u < n; u += 7 {
				want := -1
				for i, v := range cands {
					if g.HasEdge(u, v) {
						want = i
						break
					}
				}
				if got := g.FirstAdjacent(u, cands); got != want {
					t.Fatalf("u=%d: FirstAdjacent %d != %d", u, got, want)
				}
			}
		})
	}
}

// TestPackTrianglesAllocs pins the satellite target: ≤2 allocations at
// steady state (the exact-size result copy plus pool noise), and
// PackTriangleCount/counting kernels at zero.
func TestPackTrianglesAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under -race: sync.Pool drops Puts")
	}
	rng := rand.New(rand.NewSource(3))
	g := FarWithDegree(FarParams{N: 1024, D: 16, Eps: 0.2}, rng).G
	g.PackTriangles() // warm pools
	if avg := testing.AllocsPerRun(10, func() { g.PackTriangles() }); avg > 2 {
		t.Fatalf("PackTriangles allocs/op = %v, want ≤ 2", avg)
	}
	if avg := testing.AllocsPerRun(10, func() { g.PackTriangleCount() }); avg > 0 {
		t.Fatalf("PackTriangleCount allocs/op = %v, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, func() { g.CountTriangles() }); avg > 0 {
		t.Fatalf("CountTriangles allocs/op = %v, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, func() {
		for v := 0; v < g.N(); v++ {
			g.DisjointVeeCountAt(v)
		}
	}); avg > 0 {
		t.Fatalf("DisjointVeeCountAt sweep allocs/op = %v, want 0", avg)
	}
	if n := g.PackTriangleCount(); n != len(g.PackTriangles()) {
		t.Fatalf("PackTriangleCount %d != len(PackTriangles) %d", n, len(g.PackTriangles()))
	}
}

// TestIntraWorkers pins the resolver precedence: explicit > env > 1.
func TestIntraWorkers(t *testing.T) {
	t.Setenv(IntraWorkersEnv, "")
	if got := IntraWorkers(3); got != 3 {
		t.Fatalf("explicit: %d", got)
	}
	if got := IntraWorkers(0); got != 1 {
		t.Fatalf("default: %d", got)
	}
	t.Setenv(IntraWorkersEnv, "5")
	if got := IntraWorkers(0); got != 5 {
		t.Fatalf("env: %d", got)
	}
	if got := IntraWorkers(2); got != 2 {
		t.Fatalf("explicit beats env: %d", got)
	}
	t.Setenv(IntraWorkersEnv, "bogus")
	if got := IntraWorkers(0); got != 1 {
		t.Fatalf("bad env: %d", got)
	}
}
