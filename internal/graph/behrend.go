package graph

// This file implements the Behrend/Ruzsa–Szemerédi-style construction the
// paper points to for future dense lower bounds (§5: "devising a hard
// distribution for dense graphs ... will require some sophisticated
// utilization of Behrend graphs [3]"). The construction turns a
// progression-free set S ⊆ [m] into a tripartite graph whose triangles
// are exactly the planted ones — every edge lies on exactly one triangle,
// so the graph is precisely 1/3-far from triangle-free while its
// triangles are maximally "spread out": the hardest shape for testers
// that rely on triangle-rich neighborhoods.

// SalemSpencer returns a progression-free subset of [0, m): the integers
// whose base-3 representation uses only digits 0 and 1. The set has size
// ≈ m^{log₃2} ≈ m^{0.63} and contains no non-trivial 3-term arithmetic
// progression (a + c = 2b with a, b, c in the set forces a = b = c,
// because doubling a 0/1-digit number cannot carry).
func SalemSpencer(m int) []int {
	var out []int
	for v := 0; v < m; v++ {
		ok := true
		for x := v; x > 0; x /= 3 {
			if x%3 == 2 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// BehrendGraph is the constructed instance together with its certificate.
type BehrendGraph struct {
	// G is the tripartite graph on parts X = [0,m), Y = [m, 3m),
	// Z = [3m, 6m) (ids offset so every x+a and x+2a fits).
	G *Graph
	// M is the construction parameter.
	M int
	// S is the progression-free difference set.
	S []int
	// Planted is the full triangle family {(x, x+a, x+2a)}: each edge of G
	// lies on exactly one planted triangle, and G has no other triangles.
	Planted []Triangle
}

// NewBehrendGraph builds the Behrend graph for parameter m: vertices
// x ∈ X, m + y for y ∈ [0, 2m) in Y, 3m + z for z ∈ [0, 3m) in Z; for
// every x ∈ [0, m) and a ∈ S the triangle
//
//	{x, m + (x+a), 3m + (x+2a)}
//
// with its three edges. The graph has n = 6m vertices, 3·m·|S| edges,
// exactly m·|S| triangles (pairwise edge-disjoint), and is exactly
// 1/3-far from triangle-free.
func NewBehrendGraph(m int) BehrendGraph {
	s := SalemSpencer(m)
	n := 6 * m
	b := NewBuilder(n)
	bg := BehrendGraph{M: m, S: s}
	for x := 0; x < m; x++ {
		for _, a := range s {
			vy := m + x + a     // in [m, 3m)
			vz := 3*m + x + 2*a // in [3m, 6m)
			b.AddEdge(x, vy)
			b.AddEdge(vy, vz)
			b.AddEdge(x, vz)
			bg.Planted = append(bg.Planted, Triangle{A: x, B: vy, C: vz}.Canon())
		}
	}
	bg.G = b.Build()
	return bg
}
