package graph

import (
	"math/bits"

	"tricomm/internal/marks"
)

// This file implements ε-farness machinery. A graph is ε-far from
// triangle-free if at least ε·|E| edges must be removed to destroy every
// triangle. Computing the exact distance is NP-hard in general (it is
// minimum triangle edge-cover), but the paper's analyses only ever use a
// family of edge-disjoint triangles / triangle-vees as a *certificate*:
// any family of t edge-disjoint triangles forces ≥ t edge removals.

// PackTriangles returns a maximal family of pairwise edge-disjoint
// triangles, computed greedily over the canonical triangle enumeration.
// Its size is a lower bound on the distance to triangle-freeness (each
// packed triangle needs a private removed edge) and at least 1/3 of the
// maximum packing.
// Edge usage is tracked on a pooled epoch-marked slice indexed by the
// edge's arc position in the CSR neighbor array — no hashing, no per-call
// map.
func (g *Graph) PackTriangles() []Triangle {
	used := marks.Get(len(g.nbr))
	var out []Triangle
	g.visitTriangles(func(t Triangle) bool {
		// Canonical arcs of the triangle (A<B<C, so each pair is already
		// ordered), resolved lazily: most visited triangles are rejected on
		// their first edge.
		ab := g.arcIndex(t.A, t.B)
		if used.Has(ab) {
			return true
		}
		ac := g.arcIndex(t.A, t.C)
		if used.Has(ac) {
			return true
		}
		bc := g.arcIndex(t.B, t.C)
		if used.Has(bc) {
			return true
		}
		used.Add(ab)
		used.Add(ac)
		used.Add(bc)
		out = append(out, t)
		return true
	})
	marks.Put(used)
	return out
}

// FarnessLowerBound returns a certified lower bound on the distance ε such
// that g is ε-far from triangle-free: (size of an edge-disjoint triangle
// packing) / |E|. Returns 0 for an empty or triangle-free graph.
func (g *Graph) FarnessLowerBound() float64 {
	if g.m == 0 {
		return 0
	}
	return float64(len(g.PackTriangles())) / float64(g.m)
}

// ExactTriangleDistance computes, by exhaustive search over removal
// subsets of the triangle edges, the minimum number of edge removals that
// make g triangle-free. It is exponential and intended only for tests on
// tiny graphs (panics if more than 24 edges participate in triangles).
func (g *Graph) ExactTriangleDistance() int {
	tri := g.Triangles(-1)
	if len(tri) == 0 {
		return 0
	}
	// Collect the edges participating in triangles; removals outside this
	// set are never useful. The candidate set is tiny (≤ 24 edges), so a
	// keyed slice with linear lookup replaces the former map[uint64]int.
	var edges []Edge
	indexOf := func(e Edge) int {
		for i, x := range edges {
			if x == e {
				return i
			}
		}
		return -1
	}
	for _, t := range tri {
		for _, e := range t.Edges() {
			if indexOf(e) < 0 {
				edges = append(edges, e)
			}
		}
	}
	if len(edges) > 24 {
		panic("graph: ExactTriangleDistance limited to 24 triangle edges")
	}
	// Each triangle is a 3-bit mask over the candidate edges; a removal set
	// is feasible iff it hits every mask.
	masks := make([]uint32, len(tri))
	for i, t := range tri {
		var m uint32
		for _, e := range t.Edges() {
			m |= 1 << uint(indexOf(e))
		}
		masks[i] = m
	}
	best := len(edges)
	for s := uint32(0); s < 1<<uint(len(edges)); s++ {
		if bits.OnesCount32(s) >= best {
			continue
		}
		ok := true
		for _, m := range masks {
			if s&m == 0 {
				ok = false
				break
			}
		}
		if ok {
			best = bits.OnesCount32(s)
		}
	}
	return best
}

// IsTriangleFree reports whether g contains no triangle.
func (g *Graph) IsTriangleFree() bool {
	_, ok := g.FindTriangle()
	return !ok
}

// FarnessReport summarizes the farness structure of a graph for
// experiment logs.
type FarnessReport struct {
	N, M          int
	AvgDegree     float64
	Triangles     int64
	PackingSize   int
	EpsLowerBound float64
	DisjointVees  int // Σ_v per-source maximal disjoint vees
	TriangleEdges int
	MaxDegree     int
}

// Analyze computes a FarnessReport. Triangle counting is skipped (set to
// -1) when the graph has more than maxTriangleWork edges and countAll is
// false.
func (g *Graph) Analyze(countAll bool) FarnessReport {
	r := FarnessReport{
		N:         g.n,
		M:         g.m,
		AvgDegree: g.AvgDegree(),
		MaxDegree: g.MaxDegree(),
	}
	pack := g.PackTriangles()
	r.PackingSize = len(pack)
	if g.m > 0 {
		r.EpsLowerBound = float64(len(pack)) / float64(g.m)
	}
	for v := 0; v < g.n; v++ {
		r.DisjointVees += g.DisjointVeeCountAt(v)
	}
	if countAll {
		r.Triangles = g.CountTriangles()
		r.TriangleEdges = len(g.TriangleEdges())
	} else {
		r.Triangles = -1
		r.TriangleEdges = -1
	}
	return r
}
