package graph

import (
	"math/bits"
	"sync"

	"tricomm/internal/bitset"
	"tricomm/internal/marks"
)

// This file implements ε-farness machinery. A graph is ε-far from
// triangle-free if at least ε·|E| edges must be removed to destroy every
// triangle. Computing the exact distance is NP-hard in general (it is
// minimum triangle edge-cover), but the paper's analyses only ever use a
// family of edge-disjoint triangles / triangle-vees as a *certificate*:
// any family of t edge-disjoint triangles forces ≥ t edge removals.

// PackTriangles returns a maximal family of pairwise edge-disjoint
// triangles, computed greedily over the canonical triangle enumeration.
// Its size is a lower bound on the distance to triangle-freeness (each
// packed triangle needs a private removed edge) and at least 1/3 of the
// maximum packing.
// Edge usage is tracked on a pooled epoch-marked slice indexed by the
// edge's arc position in the CSR neighbor array — no hashing, no per-call
// map — and the growable output scratch recycles through a pool, so the
// only steady-state allocation is the exact-size result copy.
func (g *Graph) PackTriangles() []Triangle {
	buf := triBufPool.Get().(*triBuf)
	buf.tris = g.packInto(buf.tris[:0])
	out := make([]Triangle, len(buf.tris))
	copy(out, buf.tris)
	triBufPool.Put(buf)
	return out
}

// PackTriangleCount reports len(PackTriangles()) without materializing
// the packing — zero allocations at steady state, for callers that only
// need the certificate's size (farness bounds, reports).
func (g *Graph) PackTriangleCount() int {
	buf := triBufPool.Get().(*triBuf)
	buf.tris = g.packInto(buf.tris[:0])
	n := len(buf.tris)
	triBufPool.Put(buf)
	return n
}

// triBuf carries the growable packing scratch between PackTriangles
// calls.
type triBuf struct{ tris []Triangle }

var triBufPool = sync.Pool{New: func() any { return new(triBuf) }}

// packInto appends the greedy packing to out and returns it.
//
// This is the greedy over the canonical triangle enumeration (ascending
// (u,v,w), u<v<w: take a triangle iff all three arcs are unused), but
// driven pair-first rather than through the generic visitor, which the
// greedy's own structure makes much cheaper:
//
//   - arc (u,v) is the position of v in u's row, known for free while
//     iterating the row — no binary search for the first edge;
//   - if (u,v) is already used when the pair is reached, every triangle
//     (u,v,·) would be rejected on that arc, so the whole intersection
//     is skipped;
//   - taking (u,v,w) marks (u,v), which rejects every later (u,v,w'),
//     so the w-scan stops at the first take.
//
// The merge strategy also reads the (u,w) and (v,w) arc indexes straight
// off the merge cursors; only the shadow strategies fall back to
// arcIndex, and only until the pair's first take. None of this changes
// which triangles are taken — the checks are pure, so skipping work that
// could only reject reproduces the visitor-driven greedy exactly (the
// equivalence is pinned by TestShadowPathEquivalence against
// Triangles()-order replay).
func (g *Graph) packInto(out []Triangle) []Triangle {
	used := marks.Get(len(g.nbr))
	for u := 0; u < g.n; u++ {
		au := g.row(u)
		base := int(g.off[u])
		su := g.shadowRow(u)
		for i := upperBound(au, int32(u)); i < len(au); i++ {
			v32 := au[i]
			v := int(v32)
			ab := base + i
			if used.Has(ab) {
				continue
			}
			// Find the smallest w > v adjacent to both u and v whose arcs
			// (u,w) and (v,w) are still free; take that triangle and move on
			// to the next pair.
			take := func(w, ac, bc int) bool {
				if ac < 0 {
					ac = g.arcIndex(u, w)
				}
				if used.Has(ac) {
					return false
				}
				if bc < 0 {
					bc = g.arcIndex(v, w)
				}
				if used.Has(bc) {
					return false
				}
				used.Add(ab)
				used.Add(ac)
				used.Add(bc)
				out = append(out, Triangle{A: u, B: v, C: w})
				return true
			}
			sv := g.shadowRow(v)
			switch {
			case su != nil && sv != nil:
				bitset.IntersectVisitAbove(su, sv, v, func(w int) bool {
					return !take(w, -1, -1)
				})
			case sv != nil:
				for j := i + 1; j < len(au); j++ {
					if w := int(au[j]); bitset.Test(sv, w) && take(w, base+j, -1) {
						break
					}
				}
			case su != nil:
				av := g.row(v)
				basev := int(g.off[v])
				for j := upperBound(av, v32); j < len(av); j++ {
					if w := int(av[j]); bitset.Test(su, w) && take(w, -1, basev+j) {
						break
					}
				}
			default:
				av := g.row(v)
				basev := int(g.off[v])
				p, q := i+1, upperBound(av, v32)
				for p < len(au) && q < len(av) {
					switch {
					case au[p] < av[q]:
						p++
					case au[p] > av[q]:
						q++
					default:
						if take(int(au[p]), base+p, basev+q) {
							p = len(au)
							break
						}
						p++
						q++
					}
				}
			}
		}
	}
	marks.Put(used)
	return out
}

// FarnessLowerBound returns a certified lower bound on the distance ε such
// that g is ε-far from triangle-free: (size of an edge-disjoint triangle
// packing) / |E|. Returns 0 for an empty or triangle-free graph.
func (g *Graph) FarnessLowerBound() float64 {
	if g.m == 0 {
		return 0
	}
	return float64(g.PackTriangleCount()) / float64(g.m)
}

// ExactTriangleDistance computes, by exhaustive search over removal
// subsets of the triangle edges, the minimum number of edge removals that
// make g triangle-free. It is exponential and intended only for tests on
// tiny graphs (panics if more than 24 edges participate in triangles).
func (g *Graph) ExactTriangleDistance() int {
	tri := g.Triangles(-1)
	if len(tri) == 0 {
		return 0
	}
	// Collect the edges participating in triangles; removals outside this
	// set are never useful. The candidate set is tiny (≤ 24 edges), so a
	// keyed slice with linear lookup replaces the former map[uint64]int.
	var edges []Edge
	indexOf := func(e Edge) int {
		for i, x := range edges {
			if x == e {
				return i
			}
		}
		return -1
	}
	for _, t := range tri {
		for _, e := range t.Edges() {
			if indexOf(e) < 0 {
				edges = append(edges, e)
			}
		}
	}
	if len(edges) > 24 {
		panic("graph: ExactTriangleDistance limited to 24 triangle edges")
	}
	// Each triangle is a 3-bit mask over the candidate edges; a removal set
	// is feasible iff it hits every mask.
	masks := make([]uint32, len(tri))
	for i, t := range tri {
		var m uint32
		for _, e := range t.Edges() {
			m |= 1 << uint(indexOf(e))
		}
		masks[i] = m
	}
	best := len(edges)
	for s := uint32(0); s < 1<<uint(len(edges)); s++ {
		if bits.OnesCount32(s) >= best {
			continue
		}
		ok := true
		for _, m := range masks {
			if s&m == 0 {
				ok = false
				break
			}
		}
		if ok {
			best = bits.OnesCount32(s)
		}
	}
	return best
}

// IsTriangleFree reports whether g contains no triangle.
func (g *Graph) IsTriangleFree() bool {
	_, ok := g.FindTriangle()
	return !ok
}

// FarnessReport summarizes the farness structure of a graph for
// experiment logs.
type FarnessReport struct {
	N, M          int
	AvgDegree     float64
	Triangles     int64
	PackingSize   int
	EpsLowerBound float64
	DisjointVees  int // Σ_v per-source maximal disjoint vees
	TriangleEdges int
	MaxDegree     int
}

// Analyze computes a FarnessReport. Triangle counting is skipped (set to
// -1) when the graph has more than maxTriangleWork edges and countAll is
// false.
func (g *Graph) Analyze(countAll bool) FarnessReport { return g.AnalyzeN(countAll, 1) }

// AnalyzeN is Analyze with up to workers goroutines fanning the counting
// kernels (triangle count and per-source vee matchings); the packing
// stays serial because the greedy is order-dependent. The report is
// bit-identical to Analyze at any worker count.
func (g *Graph) AnalyzeN(countAll bool, workers int) FarnessReport {
	r := FarnessReport{
		N:         g.n,
		M:         g.m,
		AvgDegree: g.AvgDegree(),
		MaxDegree: g.MaxDegree(),
	}
	r.PackingSize = g.PackTriangleCount()
	if g.m > 0 {
		r.EpsLowerBound = float64(r.PackingSize) / float64(g.m)
	}
	for _, c := range g.DisjointVeeCountN(workers) {
		r.DisjointVees += c
	}
	if countAll {
		r.Triangles = g.CountTrianglesN(workers)
		r.TriangleEdges = len(g.TriangleEdges())
	} else {
		r.Triangles = -1
		r.TriangleEdges = -1
	}
	return r
}
