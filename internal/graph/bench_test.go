package graph

import (
	"math/rand"
	"testing"
)

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	edges := ErdosRenyi(4096, 0.004, rng).Edges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(4096, edges)
	}
}

func BenchmarkCountTriangles(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := ErdosRenyi(2048, 0.01, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountTriangles()
	}
}

func BenchmarkPackTriangles(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := FarWithDegree(FarParams{N: 2048, D: 16, Eps: 0.2}, rng).G
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PackTriangles()
	}
}

func BenchmarkFarWithDegree(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FarWithDegree(FarParams{N: 4096, D: 8, Eps: 0.2}, rng)
	}
}

func BenchmarkHasEdge(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := ErdosRenyi(10000, 0.001, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(i%10000, (i*7+1)%10000)
	}
}

func BenchmarkBehrendGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewBehrendGraph(243)
	}
}
