package graph

import (
	"math/rand"
	"testing"
)

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	edges := ErdosRenyi(4096, 0.004, rng).Edges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(4096, edges)
	}
}

func BenchmarkCountTriangles(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := ErdosRenyi(2048, 0.01, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountTriangles()
	}
}

func BenchmarkPackTriangles(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := FarWithDegree(FarParams{N: 2048, D: 16, Eps: 0.2}, rng).G
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PackTriangles()
	}
}

// BenchmarkCountTrianglesDense exercises the popcount shadow path: at
// avg degree ~100 every row is shadowed and the inner intersections are
// pure word-AND popcounts.
func BenchmarkCountTrianglesDense(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	g := ErdosRenyi(2048, 0.05, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountTriangles()
	}
}

// BenchmarkCountTrianglesPar measures the row-range-partitioned parallel
// counter at 4 workers (bit-identical to the serial result; wall-clock
// gains need idle cores).
func BenchmarkCountTrianglesPar(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := ErdosRenyi(2048, 0.01, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountTrianglesN(4)
	}
}

// BenchmarkHasEdgeBatch measures sorted batched probes via the cursor:
// membership for a sorted candidate list against one source row.
func BenchmarkHasEdgeBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	g := ErdosRenyi(2048, 0.05, rng)
	const q = 256
	vs := make([]int32, q)
	for i := range vs {
		vs[i] = int32(i * 8 % 2048)
	}
	sortInt32(vs)
	out := make([]bool, q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdgeBatch(i%2048, vs, out)
	}
}

// sortInt32 is a tiny insertion sort for bench setup.
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func BenchmarkFarWithDegree(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FarWithDegree(FarParams{N: 4096, D: 8, Eps: 0.2}, rng)
	}
}

// BenchmarkHasEdge measures membership queries alone: the query stream is
// precomputed so the loop body is one HasEdge call, not index arithmetic.
func BenchmarkHasEdge(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := ErdosRenyi(10000, 0.001, rng)
	const q = 1 << 12
	us := make([]int32, q)
	vs := make([]int32, q)
	for i := range us {
		us[i] = int32(i * 131 % 10000)
		vs[i] = int32((i*7 + 1) % 10000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(int(us[i%q]), int(vs[i%q]))
	}
}

// BenchmarkHasEdgeDense exercises the binary-search path on long rows.
func BenchmarkHasEdgeDense(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := ErdosRenyi(2048, 0.05, rng) // avg degree ~100
	const q = 1 << 12
	us := make([]int32, q)
	vs := make([]int32, q)
	for i := range us {
		us[i] = int32(i * 131 % 2048)
		vs[i] = int32((i*7 + 1) % 2048)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(int(us[i%q]), int(vs[i%q]))
	}
}

// BenchmarkDisjointVeeCount measures the per-vertex greedy vee matching
// (the former map[int32]bool scratch, now an epoch-marked slice).
func BenchmarkDisjointVeeCount(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := FarWithDegree(FarParams{N: 2048, D: 16, Eps: 0.2}, rng).G
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for v := 0; v < g.N(); v++ {
			total += g.DisjointVeeCountAt(v)
		}
		if total == 0 {
			b.Fatal("no vees found")
		}
	}
}

// BenchmarkNeighborScan measures flat-row iteration over every vertex.
func BenchmarkNeighborScan(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := ErdosRenyi(4096, 0.004, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		for v := 0; v < g.N(); v++ {
			for _, w := range g.Neighbors(v) {
				sum += int64(w)
			}
		}
		if sum == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkBehrendGraph(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewBehrendGraph(243)
	}
}
