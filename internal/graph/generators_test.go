package graph

import (
	"math/rand"
	"testing"
)

func TestFarWithDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []FarParams{
		{N: 300, D: 8, Eps: 0.1},
		{N: 1000, D: 4, Eps: 0.05},
		{N: 600, D: 20, Eps: 0.2},
		{N: 2000, D: 44, Eps: 0.3}, // d ≈ √n regime
	}
	for _, p := range cases {
		fg := FarWithDegree(p, rng)
		g := fg.G
		if g.N() != p.N {
			t.Fatalf("%+v: N = %d", p, g.N())
		}
		wantM := float64(p.N) * p.D / 2
		if got := float64(g.M()); got < 0.99*wantM-1 || got > 1.01*wantM+1 {
			t.Fatalf("%+v: M = %v, want ~%v", p, got, wantM)
		}
		if fg.CertEps < p.Eps*0.99 {
			t.Fatalf("%+v: certified eps %v < requested %v", p, fg.CertEps, p.Eps)
		}
		// The certificate must be a genuine edge-disjoint triangle family.
		used := map[Edge]bool{}
		for _, tr := range fg.Planted {
			if !g.IsTriangle(tr.A, tr.B, tr.C) {
				t.Fatalf("%+v: planted %v is not a triangle", p, tr)
			}
			for _, e := range tr.Edges() {
				if used[e] {
					t.Fatalf("%+v: planted triangles share edge %v", p, e)
				}
				used[e] = true
			}
		}
	}
}

func TestFarWithDegreeInfeasiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("infeasible params did not panic")
		}
	}()
	FarWithDegree(FarParams{N: 10, D: 2, Eps: 0.5}, rand.New(rand.NewSource(1)))
}

func TestFarWithDegreeNoiseAddsNoTriangles(t *testing.T) {
	// Noise is bipartite on vertices disjoint from the planted blocks, so
	// every triangle of the final graph lives inside a block.
	rng := rand.New(rand.NewSource(2))
	p := FarParams{N: 400, D: 10, Eps: 0.1}
	fg := FarWithDegree(p, rng)
	blockVerts := map[int]bool{}
	for _, tr := range fg.Planted {
		blockVerts[tr.A] = true
		blockVerts[tr.B] = true
		blockVerts[tr.C] = true
	}
	for _, tr := range fg.G.Triangles(-1) {
		if !blockVerts[tr.A] || !blockVerts[tr.B] || !blockVerts[tr.C] {
			t.Fatalf("triangle %v escapes the planted blocks", tr)
		}
	}
}

func TestDisjointTrianglesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := DisjointTriangles(60, 15, rng)
	if g.M() != 45 {
		t.Fatalf("M = %d, want 45", g.M())
	}
	if got := g.CountTriangles(); got != 15 {
		t.Fatalf("triangles = %d, want 15", got)
	}
	if got := len(g.PackTriangles()); got != 15 {
		t.Fatalf("packing = %d, want 15", got)
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d, want 2", g.MaxDegree())
	}
}

func TestDisjointTrianglesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n < 3t did not panic")
		}
	}()
	DisjointTriangles(8, 3, rand.New(rand.NewSource(1)))
}

func TestPlantedDenseCore(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := DenseCoreParams{N: 2000, Hubs: 5, Pairs: 50}
	g := PlantedDenseCore(p, rng)
	// Triangle count = Hubs × Pairs, all edge-disjoint (vee arms disjoint,
	// base edges distinct).
	if got := g.CountTriangles(); got != int64(p.Hubs*p.Pairs) {
		t.Fatalf("triangles = %d, want %d", got, p.Hubs*p.Pairs)
	}
	// Hub degrees 2·Pairs; everything else ≤ 2.
	hist := g.DegreeHistogram()
	if hist[2*p.Pairs] != p.Hubs {
		t.Fatalf("hub degree histogram: %v", hist)
	}
	// Every triangle contains a hub: max degree of non-hub vertices is 2,
	// so a triangle among non-hubs would need all three degrees ≥ 2 with
	// mutual adjacency — verify directly.
	for _, tr := range g.Triangles(-1) {
		hasHub := g.Degree(tr.A) == 2*p.Pairs || g.Degree(tr.B) == 2*p.Pairs ||
			g.Degree(tr.C) == 2*p.Pairs
		if !hasHub {
			t.Fatalf("triangle %v has no hub", tr)
		}
	}
	// Farness: packing = all planted triangles.
	if got := len(g.PackTriangles()); got != p.Hubs*p.Pairs {
		t.Fatalf("packing = %d, want %d", got, p.Hubs*p.Pairs)
	}
}

func TestPlantedDenseCorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("too-small n did not panic")
		}
	}()
	PlantedDenseCore(DenseCoreParams{N: 10, Hubs: 2, Pairs: 10}, rand.New(rand.NewSource(1)))
}

func TestBucketStress(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := BucketStressParams{N: 3000, Levels: 4, HubsPer: 3, TriLevel: 2}
	g := BucketStress(p, rng)
	// Triangles only at level 2 hubs: count = HubsPer × 3^2.
	want := int64(p.HubsPer * 9)
	if got := g.CountTriangles(); got != want {
		t.Fatalf("triangles = %d, want %d", got, want)
	}
	// Degree scales present: hubs of degree 2·3^ℓ for each level.
	hist := g.DegreeHistogram()
	for l := 0; l < p.Levels; l++ {
		deg := 2 * pow3(l)
		if hist[deg] < p.HubsPer {
			t.Fatalf("level %d: no hubs of degree %d in %v", l, deg, hist)
		}
	}
}

func TestBucketStressBadLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad TriLevel did not panic")
		}
	}()
	BucketStress(BucketStressParams{N: 100, Levels: 2, HubsPer: 1, TriLevel: 5},
		rand.New(rand.NewSource(1)))
}

func TestTripartiteEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := Tripartite(100, 100, 100, 0.1, rng)
	want := 3 * 0.1 * 100 * 100
	if got := float64(g.M()); got < 0.85*want || got > 1.15*want {
		t.Fatalf("M = %v, want ~%v", got, want)
	}
}

func TestEmbedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Embed shrink did not panic")
		}
	}()
	Embed(Complete(5), 4)
}

func TestRelabelBadPermPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad perm did not panic")
		}
	}()
	Relabel(Complete(4), []int{0, 1, 2})
}

func TestUnionMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched union did not panic")
		}
	}()
	Union(Complete(4), Complete(5))
}

func TestHiddenBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := HiddenBlockParams{N: 2000, A: 10, NoiseDeg: 4}
	g, planted := HiddenBlock(p, rng)
	if len(planted) != p.A*p.A {
		t.Fatalf("planted %d, want %d", len(planted), p.A*p.A)
	}
	// All triangles live in the block; noise is triangle-free.
	if got := g.CountTriangles(); got != int64(p.A*p.A*p.A) {
		t.Fatalf("triangles = %d, want %d (full K_aaa count)", got, p.A*p.A*p.A)
	}
	used := map[Edge]bool{}
	for _, tr := range planted {
		if !g.IsTriangle(tr.A, tr.B, tr.C) {
			t.Fatalf("planted %v not a triangle", tr)
		}
		for _, e := range tr.Edges() {
			if used[e] {
				t.Fatalf("certificate not edge-disjoint at %v", e)
			}
			used[e] = true
		}
	}
	// Block vertices have degree 2A; noise much lower.
	hist := g.DegreeHistogram()
	if hist[2*p.A] < 3*p.A {
		t.Fatalf("expected %d block vertices of degree %d: %v", 3*p.A, 2*p.A, hist)
	}
}

func TestHiddenBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N < 3A did not panic")
		}
	}()
	HiddenBlock(HiddenBlockParams{N: 10, A: 5}, rand.New(rand.NewSource(1)))
}
