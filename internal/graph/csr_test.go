package graph

import (
	"math/rand"
	"testing"
)

// refGraph is the naive reference implementation the CSR core is checked
// against: an edge-set map plus recomputed-on-demand degree and neighbor
// views. It intentionally mirrors the pre-CSR representation.
type refGraph struct {
	n   int
	set map[[2]int]bool
}

func newRefGraph(n int) *refGraph { return &refGraph{n: n, set: map[[2]int]bool{}} }

func (r *refGraph) add(u, v int) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	r.set[[2]int{u, v}] = true
}

func (r *refGraph) has(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return r.set[[2]int{u, v}]
}

func (r *refGraph) neighbors(v int) []int32 {
	var out []int32
	for w := 0; w < r.n; w++ {
		if w != v && r.has(v, w) {
			out = append(out, int32(w))
		}
	}
	return out
}

func (r *refGraph) hasTriangle() bool {
	for e := range r.set {
		for w := 0; w < r.n; w++ {
			if w != e[0] && w != e[1] && r.has(e[0], w) && r.has(e[1], w) {
				return true
			}
		}
	}
	return false
}

// randomInstance draws a random edge multiset (with deliberate duplicates
// and self-loops, which AddEdge must ignore) and builds both
// representations.
func randomInstance(rng *rand.Rand, n, tries int) (*Graph, *refGraph) {
	b := NewBuilder(n)
	ref := newRefGraph(n)
	for i := 0; i < tries; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		b.AddEdge(u, v)
		ref.add(u, v)
		if ref.has(u, v) != b.Has(u, v) {
			panic("builder Has diverged mid-construction")
		}
	}
	return b.Build(), ref
}

// TestCSRAgainstNaiveReference is the property test pinning the CSR core
// to the naive edge-set model: HasEdge, Neighbors, Degree, M, Edges,
// MaxDegree, and FindTriangle must agree on randomized graphs of many
// shapes and densities.
func TestCSRAgainstNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260727))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		tries := rng.Intn(3 * n)
		g, ref := randomInstance(rng, n, tries)

		if g.N() != n {
			t.Fatalf("trial %d: N = %d, want %d", trial, g.N(), n)
		}
		if g.M() != len(ref.set) {
			t.Fatalf("trial %d: M = %d, want %d", trial, g.M(), len(ref.set))
		}
		maxDeg := 0
		for v := 0; v < n; v++ {
			want := ref.neighbors(v)
			got := g.Neighbors(v)
			if len(got) != len(want) {
				t.Fatalf("trial %d: Neighbors(%d) = %v, want %v", trial, v, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: Neighbors(%d) = %v, want %v (sorted)", trial, v, got, want)
				}
			}
			if g.Degree(v) != len(want) {
				t.Fatalf("trial %d: Degree(%d) = %d, want %d", trial, v, g.Degree(v), len(want))
			}
			if len(want) > maxDeg {
				maxDeg = len(want)
			}
		}
		if g.MaxDegree() != maxDeg {
			t.Fatalf("trial %d: MaxDegree = %d, want %d", trial, g.MaxDegree(), maxDeg)
		}
		// Membership over every pair, plus out-of-range and self queries.
		for u := -1; u <= n; u++ {
			for v := -1; v <= n; v++ {
				want := u != v && u >= 0 && v >= 0 && u < n && v < n && ref.has(u, v)
				if g.HasEdge(u, v) != want {
					t.Fatalf("trial %d: HasEdge(%d,%d) = %v, want %v", trial, u, v, g.HasEdge(u, v), want)
				}
			}
		}
		// Edges must be canonical, sorted, and exactly the reference set.
		edges := g.Edges()
		if len(edges) != len(ref.set) {
			t.Fatalf("trial %d: %d edges, want %d", trial, len(edges), len(ref.set))
		}
		for i, e := range edges {
			if e.U >= e.V || !ref.has(e.U, e.V) {
				t.Fatalf("trial %d: bad edge %v", trial, e)
			}
			if i > 0 && !(edges[i-1].U < e.U || (edges[i-1].U == e.U && edges[i-1].V < e.V)) {
				t.Fatalf("trial %d: edges out of order at %d: %v", trial, i, edges)
			}
		}
		// Triangle existence agrees; any witness must be a real triangle.
		tri, ok := g.FindTriangle()
		if ok != ref.hasTriangle() {
			t.Fatalf("trial %d: FindTriangle ok=%v, reference=%v", trial, ok, ref.hasTriangle())
		}
		if ok && !(ref.has(tri.A, tri.B) && ref.has(tri.A, tri.C) && ref.has(tri.B, tri.C)) {
			t.Fatalf("trial %d: bogus witness %v", trial, tri)
		}
	}
}

// TestCSRSubgraphRemoveEdges pins the derived-graph constructors to the
// reference model.
func TestCSRSubgraphRemoveEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(30)
		g, ref := randomInstance(rng, n, 4*n)

		keep := map[int]bool{}
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				keep[v] = true
			}
		}
		sub := g.Subgraph(keep)
		if sub.N() != n {
			t.Fatalf("trial %d: Subgraph changed universe", trial)
		}
		wantM := 0
		for e := range ref.set {
			if keep[e[0]] && keep[e[1]] {
				wantM++
			}
		}
		if sub.M() != wantM {
			t.Fatalf("trial %d: Subgraph M = %d, want %d", trial, sub.M(), wantM)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := keep[u] && keep[v] && ref.has(u, v) && u != v
				if sub.HasEdge(u, v) != want {
					t.Fatalf("trial %d: Subgraph.HasEdge(%d,%d) = %v, want %v",
						trial, u, v, sub.HasEdge(u, v), want)
				}
			}
		}

		// Remove a random subset of edges (plus a few absent ones, which
		// must be no-ops).
		var remove []Edge
		for e := range ref.set {
			if rng.Intn(2) == 0 {
				remove = append(remove, Edge{U: e[0], V: e[1]})
			}
		}
		remove = append(remove, Edge{U: 0, V: n - 1}) // possibly absent; harmless
		h := g.RemoveEdges(remove)
		removed := map[[2]int]bool{}
		for _, e := range remove {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			removed[[2]int{u, v}] = true
		}
		wantM = 0
		for e := range ref.set {
			if !removed[e] {
				wantM++
			}
		}
		if h.M() != wantM {
			t.Fatalf("trial %d: RemoveEdges M = %d, want %d", trial, h.M(), wantM)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				uu, vv := u, v
				if uu > vv {
					uu, vv = vv, uu
				}
				want := ref.has(u, v) && !removed[[2]int{uu, vv}]
				if h.HasEdge(u, v) != want {
					t.Fatalf("trial %d: RemoveEdges.HasEdge(%d,%d) = %v, want %v",
						trial, u, v, h.HasEdge(u, v), want)
				}
			}
		}
	}
}

// TestBuilderFrozen checks the freeze contract: Build recycles the
// builder, and further AddEdge calls must fail loudly rather than corrupt
// pooled state.
func TestBuilderFrozen(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d", g.M())
	}
	if b.Has(0, 1) {
		t.Fatal("frozen builder still answers Has")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge after Build did not panic")
		}
	}()
	b.AddEdge(2, 3)
}
