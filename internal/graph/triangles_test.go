package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteCountTriangles counts triangles by checking all vertex triples.
func bruteCountTriangles(g *Graph) int64 {
	var count int64
	for a := 0; a < g.N(); a++ {
		for b := a + 1; b < g.N(); b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for c := b + 1; c < g.N(); c++ {
				if g.HasEdge(a, c) && g.HasEdge(b, c) {
					count++
				}
			}
		}
	}
	return count
}

func TestCountTrianglesMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(25, 0.25, rng)
		if got, want := g.CountTriangles(), bruteCountTriangles(g); got != want {
			t.Fatalf("seed %d: CountTriangles = %d, brute = %d", seed, got, want)
		}
	}
}

func TestCountTrianglesKnown(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int64
	}{
		{Complete(3), 1},
		{Complete(4), 4},
		{Complete(6), 20},
		{Cycle(5), 0},
		{Star(8), 0},
		{DisjointTriangles(30, 7, rand.New(rand.NewSource(1))), 7},
	}
	for i, c := range cases {
		if got := c.g.CountTriangles(); got != c.want {
			t.Errorf("case %d: got %d, want %d", i, got, c.want)
		}
	}
}

func TestFindTriangle(t *testing.T) {
	g := FromEdges(6, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	})
	tri, ok := g.FindTriangle()
	if !ok {
		t.Fatal("triangle not found")
	}
	if !g.IsTriangle(tri.A, tri.B, tri.C) {
		t.Fatalf("reported non-triangle %v", tri)
	}
	if tri.Canon() != (Triangle{A: 3, B: 4, C: 5}) {
		t.Fatalf("found %v, want (3,4,5)", tri)
	}

	free := Cycle(7)
	if _, ok := free.FindTriangle(); ok {
		t.Fatal("found triangle in C7")
	}
}

func TestHasTriangleOn(t *testing.T) {
	g := FromEdges(5, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
	})
	if w, ok := g.HasTriangleOn(Edge{U: 0, V: 1}); !ok || w != 2 {
		t.Fatalf("HasTriangleOn(0,1) = %d,%v", w, ok)
	}
	if _, ok := g.HasTriangleOn(Edge{U: 3, V: 4}); ok {
		t.Fatal("edge {3,4} wrongly in a triangle")
	}
}

func TestTriangleCanonAndEdges(t *testing.T) {
	tr := Triangle{A: 5, B: 1, C: 3}.Canon()
	if tr != (Triangle{A: 1, B: 3, C: 5}) {
		t.Fatalf("Canon = %v", tr)
	}
	es := tr.Edges()
	want := [3]Edge{{U: 1, V: 3}, {U: 1, V: 5}, {U: 3, V: 5}}
	if es != want {
		t.Fatalf("Edges = %v", es)
	}
}

func TestTrianglesLimit(t *testing.T) {
	g := Complete(10) // 120 triangles
	if got := len(g.Triangles(5)); got != 5 {
		t.Fatalf("Triangles(5) returned %d", got)
	}
	if got := len(g.Triangles(-1)); got != 120 {
		t.Fatalf("Triangles(-1) returned %d", got)
	}
}

func TestTriangleEdges(t *testing.T) {
	g := FromEdges(6, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, // triangle
		{U: 3, V: 4}, {U: 4, V: 5}, // path
	})
	te := g.TriangleEdges()
	if len(te) != 3 {
		t.Fatalf("TriangleEdges = %v", te)
	}
}

func TestVeeDetection(t *testing.T) {
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}})
	if !g.IsVee(Vee{Source: 0, Left: 1, Right: 2}) {
		t.Fatal("valid vee rejected")
	}
	if g.IsVee(Vee{Source: 0, Left: 1, Right: 3}) {
		t.Fatal("non-closing vee accepted")
	}
	if g.IsVee(Vee{Source: 3, Left: 1, Right: 2}) {
		t.Fatal("vee with missing arm accepted")
	}
}

func TestDisjointVeesAtAreDisjointAndValid(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(40, 0.3, rng)
		for v := 0; v < g.N(); v++ {
			vees := g.DisjointVeesAt(v)
			seen := map[int]bool{}
			for _, vee := range vees {
				if !g.IsVee(vee) {
					t.Fatalf("invalid vee %v", vee)
				}
				if vee.Source != v {
					t.Fatalf("vee source %d != %d", vee.Source, v)
				}
				if seen[vee.Left] || seen[vee.Right] {
					t.Fatalf("vees at %d share an arm", v)
				}
				seen[vee.Left] = true
				seen[vee.Right] = true
			}
		}
	}
}

func TestDisjointVeesCompleteGraph(t *testing.T) {
	// In K_n every pair of neighbors closes, so the matching at each vertex
	// has floor((n-1)/2) vees.
	g := Complete(9)
	for v := 0; v < 9; v++ {
		if got := len(g.DisjointVeesAt(v)); got != 4 {
			t.Fatalf("vertex %d: %d vees, want 4", v, got)
		}
	}
}

func TestPackTrianglesIsValidPacking(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(30, 0.3, rng)
		pack := g.PackTriangles()
		used := map[Edge]bool{}
		for _, tr := range pack {
			if !g.IsTriangle(tr.A, tr.B, tr.C) {
				return false
			}
			for _, e := range tr.Edges() {
				if used[e] {
					return false
				}
				used[e] = true
			}
		}
		// Packing size is within [max/3, max]: compared against triangle
		// count only loosely — must be ≥ 1 if any triangle exists.
		if g.CountTriangles() > 0 && len(pack) == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPackTrianglesMaximal(t *testing.T) {
	// After removing one edge from each packed triangle the graph must be
	// triangle-free... not in general (greedy is maximal, not a cover); but
	// removing ALL edges of packed triangles must kill every triangle that
	// shares an edge with the packing. Instead verify maximality directly:
	// every triangle of g shares an edge with some packed triangle.
	rng := rand.New(rand.NewSource(11))
	g := ErdosRenyi(25, 0.35, rng)
	pack := g.PackTriangles()
	used := map[Edge]bool{}
	for _, tr := range pack {
		for _, e := range tr.Edges() {
			used[e] = true
		}
	}
	for _, tr := range g.Triangles(-1) {
		found := false
		for _, e := range tr.Edges() {
			if used[e] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("triangle %v disjoint from packing — not maximal", tr)
		}
	}
}

func TestExactTriangleDistance(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Cycle(6), 0},
		{Complete(3), 1},
		{Complete(4), 2}, // K4: two edge-disjoint... removing 2 opposite edges kills all 4 triangles
		{DisjointTriangles(9, 3, rand.New(rand.NewSource(1))), 3},
	}
	for i, c := range cases {
		if got := c.g.ExactTriangleDistance(); got != c.want {
			t.Errorf("case %d: distance = %d, want %d", i, got, c.want)
		}
	}
}

func TestPackingLowerBoundsExactDistance(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(12, 0.3, rng)
		if len(g.Triangles(-1)) == 0 {
			continue
		}
		if len(g.TriangleEdges()) > 24 {
			continue
		}
		pack := len(g.PackTriangles())
		exact := g.ExactTriangleDistance()
		if pack > exact {
			t.Fatalf("seed %d: packing %d > exact distance %d", seed, pack, exact)
		}
		// Removing one arbitrary edge per triangle is an upper bound of 3·pack?
		// Not in general; just confirm exact ≥ 1 when triangles exist.
		if exact < 1 {
			t.Fatalf("seed %d: exact distance %d with triangles present", seed, exact)
		}
	}
}

func TestFarnessLowerBound(t *testing.T) {
	g := DisjointTriangles(30, 10, rand.New(rand.NewSource(2)))
	if eps := g.FarnessLowerBound(); eps < 0.33 || eps > 0.34 {
		t.Fatalf("eps = %v, want 1/3", eps)
	}
	if eps := Cycle(8).FarnessLowerBound(); eps != 0 {
		t.Fatalf("triangle-free eps = %v", eps)
	}
	empty := NewBuilder(5).Build()
	if eps := empty.FarnessLowerBound(); eps != 0 {
		t.Fatalf("empty graph eps = %v", eps)
	}
}

func TestAnalyzeReport(t *testing.T) {
	g := DisjointTriangles(12, 4, rand.New(rand.NewSource(3)))
	r := g.Analyze(true)
	if r.N != 12 || r.M != 12 || r.Triangles != 4 || r.PackingSize != 4 {
		t.Fatalf("report = %+v", r)
	}
	if r.TriangleEdges != 12 {
		t.Fatalf("TriangleEdges = %d, want 12", r.TriangleEdges)
	}
	if r.EpsLowerBound < 0.33 {
		t.Fatalf("EpsLowerBound = %v", r.EpsLowerBound)
	}
	r2 := g.Analyze(false)
	if r2.Triangles != -1 || r2.TriangleEdges != -1 {
		t.Fatal("Analyze(false) should skip triangle counting")
	}
}

func TestIsTriangleRejectsDegenerate(t *testing.T) {
	g := Complete(4)
	if g.IsTriangle(1, 1, 2) || g.IsTriangle(0, 1, 1) {
		t.Fatal("degenerate triple accepted")
	}
}
