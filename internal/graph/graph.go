// Package graph provides the undirected-graph substrate for the
// triangle-freeness protocols: a compact adjacency representation,
// triangle enumeration and edge-disjoint packing (the ε-farness
// certificates the paper's analysis relies on), triangle-vee analysis,
// and the workload generators used by the experiments.
//
// Graphs are simple (no self-loops, no parallel edges) over the vertex set
// [0, n). Average degree follows the paper's convention d = 2|E|/n, so the
// total edge count is nd/2 (the paper freely writes "nd edges" up to the
// factor of two; we keep d = 2m/n exact throughout).
package graph

import (
	"fmt"
	"sort"

	"tricomm/internal/wire"
)

// Edge is re-exported so callers of this package need not import wire for
// the common case.
type Edge = wire.Edge

// Graph is an immutable simple undirected graph. Build one with a Builder
// or a generator. All methods are safe for concurrent use after
// construction.
type Graph struct {
	n   int
	m   int
	adj [][]int32       // sorted neighbor lists
	set map[uint64]bool // canonical edge keys for O(1) membership
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Builder{n: n, set: make(map[uint64]bool)}
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// insertions and self-loops are ignored. Builder is not safe for
// concurrent use.
type Builder struct {
	n     int
	set   map[uint64]bool
	edges []Edge
}

// N reports the vertex count the builder was created with.
func (b *Builder) N() int { return b.n }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicates are
// silently ignored; out-of-range endpoints panic (they indicate a generator
// bug, not a runtime condition).
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	k := edgeKey(b.n, u, v)
	if b.set[k] {
		return
	}
	b.set[k] = true
	b.edges = append(b.edges, Edge{U: u, V: v}.Canon())
}

// Has reports whether {u,v} has been added.
func (b *Builder) Has(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return false
	}
	return b.set[edgeKey(b.n, u, v)]
}

// NumEdges reports the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build freezes the builder into an immutable Graph. The builder must not
// be used afterwards.
func (b *Builder) Build() *Graph {
	g := &Graph{n: b.n, m: len(b.edges), set: b.set}
	deg := make([]int, b.n)
	for _, e := range b.edges {
		deg[e.U]++
		deg[e.V]++
	}
	g.adj = make([][]int32, b.n)
	for v, d := range deg {
		g.adj[v] = make([]int32, 0, d)
	}
	for _, e := range b.edges {
		g.adj[e.U] = append(g.adj[e.U], int32(e.V))
		g.adj[e.V] = append(g.adj[e.V], int32(e.U))
	}
	for v := range g.adj {
		sort.Slice(g.adj[v], func(i, j int) bool { return g.adj[v][i] < g.adj[v][j] })
	}
	b.set = nil
	b.edges = nil
	return g
}

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// edgeKey maps a canonical edge to a unique uint64 key.
func edgeKey(n, u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)*uint64(n) + uint64(v)
}

// N reports the number of vertices.
func (g *Graph) N() int { return g.n }

// M reports the number of edges.
func (g *Graph) M() int { return g.m }

// AvgDegree reports the average degree d = 2|E|/n.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// Degree reports deg(v).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree reports the maximum degree over all vertices (0 for an empty
// graph).
func (g *Graph) MaxDegree() int {
	maxd := 0
	for _, a := range g.adj {
		if len(a) > maxd {
			maxd = len(a)
		}
	}
	return maxd
}

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared; callers must not modify it.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// HasEdge reports whether {u,v} ∈ E.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	return g.set[edgeKey(g.n, u, v)]
}

// Edges returns all edges in canonical sorted order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, w := range g.adj[u] {
			if int(w) > u {
				out = append(out, Edge{U: u, V: int(w)})
			}
		}
	}
	return out
}

// VisitEdges calls fn for every edge in canonical sorted order, stopping
// early if fn returns false.
func (g *Graph) VisitEdges(fn func(Edge) bool) {
	for u := 0; u < g.n; u++ {
		for _, w := range g.adj[u] {
			if int(w) > u {
				if !fn(Edge{U: u, V: int(w)}) {
					return
				}
			}
		}
	}
}

// IncidentEdges returns the edges incident to v, each in canonical form.
func (g *Graph) IncidentEdges(v int) []Edge {
	out := make([]Edge, 0, len(g.adj[v]))
	for _, w := range g.adj[v] {
		out = append(out, Edge{U: v, V: int(w)}.Canon())
	}
	return out
}

// Subgraph returns the subgraph induced by keep (as a graph on the same
// vertex universe [0,n) with only the induced edges).
func (g *Graph) Subgraph(keep map[int]bool) *Graph {
	b := NewBuilder(g.n)
	for u := range keep {
		if u < 0 || u >= g.n {
			continue
		}
		for _, w := range g.adj[u] {
			if int(w) > u && keep[int(w)] {
				b.AddEdge(u, int(w))
			}
		}
	}
	return b.Build()
}

// RemoveEdges returns a copy of g with the given edges removed.
func (g *Graph) RemoveEdges(remove []Edge) *Graph {
	drop := make(map[uint64]bool, len(remove))
	for _, e := range remove {
		drop[edgeKey(g.n, e.U, e.V)] = true
	}
	b := NewBuilder(g.n)
	g.VisitEdges(func(e Edge) bool {
		if !drop[edgeKey(g.n, e.U, e.V)] {
			b.AddEdge(e.U, e.V)
		}
		return true
	})
	return b.Build()
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.n; v++ {
		h[g.Degree(v)]++
	}
	return h
}
