// Package graph provides the undirected-graph substrate for the
// triangle-freeness protocols: a compact adjacency representation,
// triangle enumeration and edge-disjoint packing (the ε-farness
// certificates the paper's analysis relies on), triangle-vee analysis,
// and the workload generators used by the experiments.
//
// Graphs are simple (no self-loops, no parallel edges) over the vertex set
// [0, n). Average degree follows the paper's convention d = 2|E|/n, so the
// total edge count is nd/2 (the paper freely writes "nd edges" up to the
// factor of two; we keep d = 2m/n exact throughout).
//
// Memory layout: a Graph is a CSR (compressed sparse row) core — one flat
// neighbor array plus per-vertex offsets, so neighbor iteration is a
// contiguous scan — plus a flat open-addressing edge index (inherited
// from the Builder's dedup table at Build time) that answers HasEdge in
// one probe. Rows above a degree threshold additionally materialize
// word-packed bitset shadows (internal/bitset) so the triangle kernels
// can intersect dense rows by popcount — see DenseDegreeFloor. Three
// retained arrays plus the optional shadow slab, regardless of n; builder
// endpoint slices and transpose scratch recycle through pools, so
// steady-state construction does not allocate scratch from cold. See
// DESIGN.md ("memory layout") for the full contract.
package graph

import (
	"fmt"
	"math/bits"
	"sync"

	"tricomm/internal/bitset"
	"tricomm/internal/wire"
)

// Edge is re-exported so callers of this package need not import wire for
// the common case.
type Edge = wire.Edge

// Graph is an immutable simple undirected graph in CSR form: row v is
// nbr[off[v]:off[v+1]], sorted ascending. Membership queries go through
// set, a flat open-addressing index over canonical edge keys that the
// Builder hands over at Build time (it already exists for dedup, so the
// graph gets O(1) HasEdge for free). Build one with a Builder or a
// generator. All methods are safe for concurrent use after construction.
type Graph struct {
	n   int
	m   int
	off []int32 // len n+1; row boundaries into nbr
	nbr []int32 // len 2m; concatenated sorted neighbor rows
	set edgeSet // canonical edge keys for O(1) membership

	// Bitset shadows for dense rows: rows with degree ≥ the dense
	// threshold get a word-packed copy of their adjacency in one flat slab,
	// so the triangle kernels can intersect them by popcount instead of by
	// merge. shadowIdx[v] is v's slot in the slab, or -1 for sparse rows;
	// shadowIdx is nil when no row qualifies.
	shadowW   int     // words per shadow row: bitset.Words(n)
	shadowIdx []int32 // len n; slab slot per vertex, -1 = no shadow
	shadow    []uint64
}

// row returns the sorted neighbor row of v.
func (g *Graph) row(v int) []int32 { return g.nbr[g.off[v]:g.off[v+1]] }

// DenseDegreeFloor tunes the dense-row threshold: a row materializes a
// bitset shadow when deg(v) ≥ max(DenseDegreeFloor, n/128). At the floor
// the slab costs at most 16 bytes of shadow per packed adjacency entry;
// the n/128 term keeps huge sparse graphs from shadowing everything.
// Set to a negative value to disable shadows entirely (pure merge-path
// kernels), or to a small positive value to force them in tests. Read at
// Build time only; not intended for concurrent mutation.
var DenseDegreeFloor = 16

// denseThreshold resolves the degree bound above which rows get shadows,
// or -1 when shadows are disabled.
func (g *Graph) denseThreshold() int {
	f := DenseDegreeFloor
	if f < 0 {
		return -1
	}
	t := g.n >> 7
	if t < f {
		t = f
	}
	if t < 1 {
		t = 1 // never shadow isolated vertices
	}
	return t
}

// buildShadows materializes bitset shadows for every dense row. Called
// once at construction (Build and indexEdges); two retained allocations
// when any row qualifies, none otherwise.
func (g *Graph) buildShadows() {
	g.shadowW, g.shadowIdx, g.shadow = 0, nil, nil
	thr := g.denseThreshold()
	if thr < 0 || g.n == 0 {
		return
	}
	dense := 0
	for v := 0; v < g.n; v++ {
		if g.Degree(v) >= thr {
			dense++
		}
	}
	if dense == 0 {
		return
	}
	w := bitset.Words(g.n)
	g.shadowW = w
	g.shadowIdx = make([]int32, g.n)
	g.shadow = make([]uint64, dense*w)
	slot := 0
	for v := 0; v < g.n; v++ {
		if g.Degree(v) < thr {
			g.shadowIdx[v] = -1
			continue
		}
		g.shadowIdx[v] = int32(slot)
		row := g.shadow[slot*w : (slot+1)*w]
		for _, nb := range g.row(v) {
			bitset.Mark(row, int(nb))
		}
		slot++
	}
}

// shadowRow returns v's bitset shadow, or nil when v is sparse.
func (g *Graph) shadowRow(v int) []uint64 {
	if g.shadowIdx == nil {
		return nil
	}
	s := g.shadowIdx[v]
	if s < 0 {
		return nil
	}
	return g.shadow[int(s)*g.shadowW : (int(s)+1)*g.shadowW]
}

// endpointScratch carries the builder's recyclable endpoint slices
// between Build cycles. Only the slices travel through the pool — never
// the Builder itself, so a caller's stale pointer stays permanently
// frozen (AddEdge after Build panics deterministically) instead of
// aliasing someone else's builder.
type endpointScratch struct{ us, vs []int32 }

var builderPool = sync.Pool{New: func() any { return new(endpointScratch) }}

// NewBuilder returns a Builder for a graph on n vertices, drawing its
// endpoint scratch from the build pool.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	sc := builderPool.Get().(*endpointScratch)
	return &Builder{n: n, us: sc.us[:0], vs: sc.vs[:0]}
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// insertions and self-loops are ignored. Builder is not safe for
// concurrent use.
type Builder struct {
	n      int
	frozen bool
	set    edgeSet
	us, vs []int32 // canonical endpoints (us[i] < vs[i]) in insertion order
}

// N reports the vertex count the builder was created with.
func (b *Builder) N() int { return b.n }

// grow pre-sizes the builder for about m edges.
func (b *Builder) grow(m int) {
	if cap(b.us) < m {
		b.us = append(make([]int32, 0, m), b.us...)
		b.vs = append(make([]int32, 0, m), b.vs...)
	}
	b.set.grow(m)
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicates are
// silently ignored; out-of-range endpoints panic (they indicate a generator
// bug, not a runtime condition).
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if b.frozen {
		panic("graph: Builder used after Build")
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	if !b.set.insert(edgeKey(b.n, u, v)) {
		return
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
}

// Has reports whether {u,v} has been added.
func (b *Builder) Has(u, v int) bool {
	if b.frozen || u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return false
	}
	return b.set.has(edgeKey(b.n, u, v))
}

// NumEdges reports the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.us) }

// Build freezes the builder into an immutable Graph and recycles the
// builder's scratch. The builder must not be used afterwards.
//
// Rows come out sorted without any comparison sort: arcs are counting-
// sorted into unsorted rows (grouped by source), then transposed — row v
// receives its neighbors in increasing source order, which for a
// symmetric arc set is exactly the sorted adjacency row. O(n + m), two
// retained allocations.
func (b *Builder) Build() *Graph {
	m := len(b.us)
	n := b.n
	g := &Graph{n: n, m: m, off: make([]int32, n+1), nbr: make([]int32, 2*m)}
	sc := scratchPool.Get().(*buildScratch)
	arc := sc.resize(2*m, n+1)
	// Pass 1: degree counts → row offsets.
	off := g.off
	for i := 0; i < m; i++ {
		off[b.us[i]+1]++
		off[b.vs[i]+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	// Pass 2: scatter arcs into rows grouped by source (rows unsorted).
	cur := sc.cur
	copy(cur, off)
	for i := 0; i < m; i++ {
		u, v := b.us[i], b.vs[i]
		arc[cur[u]] = v
		cur[u]++
		arc[cur[v]] = u
		cur[v]++
	}
	// Pass 3: transpose — appending source s to row t for every arc (s,t)
	// in increasing s order leaves every row of nbr sorted.
	copy(cur, off)
	for s := 0; s < n; s++ {
		for _, t := range arc[off[s]:off[s+1]] {
			g.nbr[cur[t]] = int32(s)
			cur[t]++
		}
	}
	scratchPool.Put(sc)
	// The dedup table becomes the graph's membership index; the endpoint
	// slices go back to the pool. The builder itself is left frozen and
	// empty — the caller's pointer can never corrupt a future build.
	g.set = b.set
	b.set = edgeSet{}
	builderPool.Put(&endpointScratch{us: b.us, vs: b.vs})
	b.us, b.vs = nil, nil
	b.frozen = true
	g.buildShadows()
	return g
}

// buildScratch is the reusable arena for Build's temporary arc and cursor
// arrays.
type buildScratch struct {
	arc []int32
	cur []int32
}

func (s *buildScratch) resize(arcs, rows int) []int32 {
	if cap(s.arc) < arcs {
		s.arc = make([]int32, arcs)
	}
	if cap(s.cur) < rows {
		s.cur = make([]int32, rows)
	}
	s.arc = s.arc[:arcs]
	s.cur = s.cur[:rows]
	return s.arc
}

var scratchPool = sync.Pool{New: func() any { return new(buildScratch) }}

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	b.grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// edgeKey maps a canonical edge to a unique uint64 key. Keys are ≥ 1
// (u < v forces v ≥ 1), so 0 is free as the edgeSet empty sentinel.
func edgeKey(n, u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)*uint64(n) + uint64(v)
}

// edgeSet is an open-addressing hash set of edge keys — the Builder's
// dedup table. It replaces map[uint64]bool on the construction hot path:
// no per-entry allocation, cache-friendly linear probing, and the table is
// reused across Build cycles through the builder pool.
type edgeSet struct {
	tab []uint64 // power-of-two sized; 0 = empty slot
	len int
}

// hash64 is a single-round multiply-xorshift mixer (Fibonacci hashing
// with a finishing fold): cheap enough to vanish next to the table probe,
// strong enough to break up the u·n+v key structure.
func hash64(x uint64) uint64 {
	x *= 0x9e3779b97f4a7c15
	return x ^ (x >> 29)
}

func (s *edgeSet) reset() {
	clear(s.tab)
	s.len = 0
}

// grow resizes the table to hold at least want keys below ¾ load.
func (s *edgeSet) grow(want int) {
	need := 1 << bits.Len(uint(want+want/2|7))
	if need <= len(s.tab) {
		return
	}
	old := s.tab
	s.tab = make([]uint64, need)
	mask := uint64(need - 1)
	for _, k := range old {
		if k == 0 {
			continue
		}
		i := hash64(k) & mask
		for s.tab[i] != 0 {
			i = (i + 1) & mask
		}
		s.tab[i] = k
	}
}

// insert adds key and reports whether it was absent.
func (s *edgeSet) insert(key uint64) bool {
	if 4*(s.len+1) > 3*len(s.tab) {
		s.grow(s.len + 1)
	}
	mask := uint64(len(s.tab) - 1)
	i := hash64(key) & mask
	for {
		switch s.tab[i] {
		case 0:
			s.tab[i] = key
			s.len++
			return true
		case key:
			return false
		}
		i = (i + 1) & mask
	}
}

func (s *edgeSet) has(key uint64) bool {
	if len(s.tab) == 0 {
		return false
	}
	mask := uint64(len(s.tab) - 1)
	i := hash64(key) & mask
	for {
		switch s.tab[i] {
		case 0:
			return false
		case key:
			return true
		}
		i = (i + 1) & mask
	}
}

// N reports the number of vertices.
func (g *Graph) N() int { return g.n }

// M reports the number of edges.
func (g *Graph) M() int { return g.m }

// AvgDegree reports the average degree d = 2|E|/n.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// Degree reports deg(v).
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// MaxDegree reports the maximum degree over all vertices (0 for an empty
// graph).
func (g *Graph) MaxDegree() int {
	maxd := int32(0)
	for v := 0; v < g.n; v++ {
		if d := g.off[v+1] - g.off[v]; d > maxd {
			maxd = d
		}
	}
	return int(maxd)
}

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases the graph's flat adjacency array; callers must not modify it.
func (g *Graph) Neighbors(v int) []int32 { return g.row(v) }

// HasEdge reports whether {u,v} ∈ E: a single bit test when either
// endpoint has a bitset shadow, one probe into the flat edge index
// otherwise.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	if g.shadowIdx != nil {
		if s := g.shadowIdx[u]; s >= 0 {
			return bitset.Test(g.shadow[int(s)*g.shadowW:], v)
		}
		if s := g.shadowIdx[v]; s >= 0 {
			return bitset.Test(g.shadow[int(s)*g.shadowW:], u)
		}
	}
	return g.set.has(edgeKey(g.n, u, v))
}

// arcIndex returns the position of the directed arc u→v in the flat
// neighbor array, or -1 when {u,v} ∉ E. Arc positions index per-edge
// scratch (see PackTriangles) without any hashing.
func (g *Graph) arcIndex(u, v int) int {
	row := g.row(u)
	t := int32(v)
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo] == t {
		return int(g.off[u]) + lo
	}
	return -1
}

// Edges returns all edges in canonical sorted order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, w := range g.row(u) {
			if int(w) > u {
				out = append(out, Edge{U: u, V: int(w)})
			}
		}
	}
	return out
}

// VisitEdges calls fn for every edge in canonical sorted order, stopping
// early if fn returns false.
func (g *Graph) VisitEdges(fn func(Edge) bool) {
	for u := 0; u < g.n; u++ {
		for _, w := range g.row(u) {
			if int(w) > u {
				if !fn(Edge{U: u, V: int(w)}) {
					return
				}
			}
		}
	}
}

// IncidentEdges returns the edges incident to v, each in canonical form.
func (g *Graph) IncidentEdges(v int) []Edge {
	row := g.row(v)
	out := make([]Edge, 0, len(row))
	for _, w := range row {
		out = append(out, Edge{U: v, V: int(w)}.Canon())
	}
	return out
}

// Subgraph returns the subgraph induced by keep (as a graph on the same
// vertex universe [0,n) with only the induced edges). Rows are filtered
// copies of g's sorted rows, so no dedup or re-sort is needed.
func (g *Graph) Subgraph(keep map[int]bool) *Graph {
	sub := &Graph{n: g.n, off: make([]int32, g.n+1)}
	for u := 0; u < g.n; u++ {
		sub.off[u+1] = sub.off[u]
		if !keep[u] {
			continue
		}
		for _, w := range g.row(u) {
			if keep[int(w)] {
				sub.off[u+1]++
			}
		}
	}
	sub.nbr = make([]int32, sub.off[g.n])
	i := 0
	for u := 0; u < g.n; u++ {
		if !keep[u] {
			continue
		}
		for _, w := range g.row(u) {
			if keep[int(w)] {
				sub.nbr[i] = w
				i++
			}
		}
	}
	sub.m = len(sub.nbr) / 2
	sub.indexEdges()
	return sub
}

// indexEdges fills the membership index from the finished CSR rows (for
// derived graphs that bypass the Builder) and materializes dense-row
// shadows, so Subgraph/RemoveEdges results get the same kernels.
func (g *Graph) indexEdges() {
	g.set.grow(g.m)
	for u := 0; u < g.n; u++ {
		for _, w := range g.row(u) {
			if int(w) > u {
				g.set.insert(edgeKey(g.n, u, int(w)))
			}
		}
	}
	g.buildShadows()
}

// RemoveEdges returns a copy of g with the given edges removed.
func (g *Graph) RemoveEdges(remove []Edge) *Graph {
	drop := make([]uint64, 0, len(remove))
	for _, e := range remove {
		drop = append(drop, edgeKey(g.n, e.U, e.V))
	}
	sortKeys(drop)
	dropped := func(u int, w int32) bool {
		return searchKeys(drop, edgeKey(g.n, u, int(w)))
	}
	out := &Graph{n: g.n, off: make([]int32, g.n+1)}
	for u := 0; u < g.n; u++ {
		out.off[u+1] = out.off[u]
		for _, w := range g.row(u) {
			if !dropped(u, w) {
				out.off[u+1]++
			}
		}
	}
	out.nbr = make([]int32, out.off[g.n])
	i := 0
	for u := 0; u < g.n; u++ {
		for _, w := range g.row(u) {
			if !dropped(u, w) {
				out.nbr[i] = w
				i++
			}
		}
	}
	out.m = len(out.nbr) / 2
	out.indexEdges()
	return out
}

// sortKeys sorts a small key slice ascending (insertion sort: removal
// lists are short, and this avoids pulling in sort's interface machinery).
func sortKeys(keys []uint64) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// searchKeys reports whether k occurs in the ascending key slice.
func searchKeys(keys []uint64, k uint64) bool {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(keys) && keys[lo] == k
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.n; v++ {
		h[g.Degree(v)]++
	}
	return h
}
