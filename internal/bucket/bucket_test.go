package bucket

import (
	"math"
	"math/rand"
	"testing"

	"tricomm/internal/graph"
)

func TestIndexBoundaries(t *testing.T) {
	cases := []struct{ deg, want int }{
		{0, 0},
		{1, 1}, {2, 1},
		{3, 2}, {8, 2},
		{9, 3}, {26, 3},
		{27, 4},
	}
	for _, c := range cases {
		if got := Index(c.deg); got != c.want {
			t.Errorf("Index(%d) = %d, want %d", c.deg, got, c.want)
		}
	}
}

func TestIndexConsistentWithBounds(t *testing.T) {
	for deg := 1; deg < 10000; deg++ {
		i := Index(deg)
		if deg < DegMin(i) || deg >= DegMax(i) {
			t.Fatalf("deg %d: bucket %d has range [%d,%d)", deg, i, DegMin(i), DegMax(i))
		}
	}
}

func TestDegBounds(t *testing.T) {
	if DegMin(0) != 0 || DegMax(0) != 1 {
		t.Fatal("B0 bounds wrong")
	}
	if DegMin(1) != 1 || DegMax(1) != 3 {
		t.Fatal("B1 bounds wrong")
	}
	if DegMin(4) != 27 || DegMax(4) != 81 {
		t.Fatal("B4 bounds wrong")
	}
}

func TestNumBuckets(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 5000} {
		nb := NumBuckets(n)
		if Index(n-1) >= nb {
			t.Fatalf("n=%d: max degree bucket %d >= NumBuckets %d", n, Index(n-1), nb)
		}
	}
	if NumBuckets(1) != 1 {
		t.Fatal("NumBuckets(1) != 1")
	}
	// Fewer than log₃-ish buckets: paper says < log n + 2.
	if nb := NumBuckets(1 << 20); float64(nb) > math.Log2(1<<20)+2 {
		t.Fatalf("too many buckets: %d", nb)
	}
}

func TestPartitionCoversAllVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyi(200, 0.05, rng)
	parts := Partition(g)
	seen := 0
	for i, vs := range parts {
		for _, v := range vs {
			if Index(g.Degree(v)) != i {
				t.Fatalf("vertex %d (deg %d) in bucket %d", v, g.Degree(v), i)
			}
			seen++
		}
	}
	if seen != g.N() {
		t.Fatalf("partition covers %d of %d vertices", seen, g.N())
	}
}

func TestFullVertexOnDenseCore(t *testing.T) {
	// Hubs in PlantedDenseCore have ALL incident edges in disjoint vees, so
	// they are full for any reasonable eps; leaf vertices source at most
	// one vee over 2 edges — also technically full — so check hubs are
	// detected and isolated vertices are not.
	rng := rand.New(rand.NewSource(2))
	p := graph.DenseCoreParams{N: 500, Hubs: 3, Pairs: 30}
	g := graph.PlantedDenseCore(p, rng)
	hubs := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 2*p.Pairs {
			if !IsFullVertex(g, v, 0.1) {
				t.Fatalf("hub %d not detected as full", v)
			}
			hubs++
		}
		if g.Degree(v) == 0 && IsFullVertex(g, v, 0.1) {
			t.Fatalf("isolated vertex %d marked full", v)
		}
	}
	if hubs != p.Hubs {
		t.Fatalf("found %d hubs, want %d", hubs, p.Hubs)
	}
}

func TestFullVertexRejectsTriangleFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomBipartite(100, 100, 0.1, rng)
	if vs := FullVertices(g, 0.3); len(vs) != 0 {
		t.Fatalf("bipartite graph has %d full vertices", len(vs))
	}
}

func TestObservation33AtLeastOneFullBucket(t *testing.T) {
	// Observation 3.3: an ε-far graph has at least one full bucket. Our
	// generators certify ε-farness, so full buckets must exist for the
	// certified eps (we test at the certified value, which accounts for the
	// greedy-vs-max slack in the vee families).
	rng := rand.New(rand.NewSource(4))
	cases := []*graph.Graph{
		graph.DisjointTriangles(300, 90, rng),
		graph.PlantedDenseCore(graph.DenseCoreParams{N: 800, Hubs: 4, Pairs: 40}, rng),
		graph.FarWithDegree(graph.FarParams{N: 600, D: 12, Eps: 0.2}, rng).G,
		graph.Complete(60),
	}
	for i, g := range cases {
		if fb := FullBuckets(g, g.FarnessLowerBound()); len(fb) == 0 {
			t.Errorf("case %d: no full bucket (eps=%v)", i, g.FarnessLowerBound())
		}
	}
}

func TestFullBucketsEmptyForTriangleFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomBipartite(150, 150, 0.05, rng)
	if fb := FullBuckets(g, 0.1); len(fb) != 0 {
		t.Fatalf("triangle-free graph has full buckets %v", fb)
	}
}

func TestVeeMassMatchesPerVertexCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.ErdosRenyi(80, 0.2, rng)
	mass := VeeMass(g)
	var fromMass float64
	for _, m := range mass {
		fromMass += m
	}
	var direct float64
	for _, c := range g.DisjointVeeCount() {
		direct += float64(c)
	}
	if fromMass != direct {
		t.Fatalf("mass %v != direct %v", fromMass, direct)
	}
}

func TestDegreeWindowLemma312(t *testing.T) {
	// Lemma 3.12: the lowest full bucket Bmin has dl ≤ d⁻(Bmin) and
	// d⁻(Bmin) ≤ dh. Verify the window brackets every full bucket's lower
	// bound on an ε-far instance (dl is a lower bound for Bmin only, so we
	// check the window is sane and contains Bmin = lowest full bucket).
	rng := rand.New(rand.NewSource(7))
	fg := graph.FarWithDegree(graph.FarParams{N: 900, D: 10, Eps: 0.25}, rng)
	g := fg.G
	eps := fg.CertEps
	dl, dh := DegreeWindow(g.N(), g.AvgDegree(), eps)
	if dl <= 0 || dh <= dl {
		t.Fatalf("degenerate window [%v, %v]", dl, dh)
	}
	full := FullBuckets(g, eps)
	if len(full) == 0 {
		t.Fatal("no full bucket")
	}
	bmin := full[0]
	if float64(DegMin(bmin)) > dh {
		t.Fatalf("Bmin=%d with d⁻=%d above dh=%v", bmin, DegMin(bmin), dh)
	}
	// dl is a valid lower bound up to the greedy-vee slack; allow factor 4.
	if float64(DegMax(bmin)) < dl/4 {
		t.Fatalf("Bmin=%d with d⁺=%d far below dl=%v", bmin, DegMax(bmin), dl)
	}
}

func TestBucketRange(t *testing.T) {
	lo, hi := BucketRange(1000, 2.0, 100.0)
	if lo < 1 || hi < lo {
		t.Fatalf("range [%d,%d]", lo, hi)
	}
	// Degree 2 is in bucket lo's range or below; degree 100 within hi.
	if DegMax(hi) < 100 {
		t.Fatalf("hi bucket %d tops out at %d < 100", hi, DegMax(hi))
	}
	if DegMin(lo) > 2 {
		t.Fatalf("lo bucket %d starts at %d > 2", lo, DegMin(lo))
	}
	// Window above all possible degrees is clamped.
	_, hi2 := BucketRange(100, 1, 1e12)
	if hi2 >= NumBuckets(100) {
		t.Fatalf("hi not clamped: %d", hi2)
	}
}

func TestCandidatesPigeonhole(t *testing.T) {
	// Bᵢ ⊆ ⋃_j B̃ᵢʲ: every true bucket member is a candidate for at least
	// one player, for every partition of the edges.
	rng := rand.New(rand.NewSource(8))
	g := graph.ErdosRenyi(120, 0.1, rng)
	const k = 5
	// Simple deterministic split for the test: edge e to player (e.U+e.V) mod k.
	views := make([]*graph.Builder, k)
	for j := range views {
		views[j] = graph.NewBuilder(g.N())
	}
	g.VisitEdges(func(e graph.Edge) bool {
		views[(e.U+e.V)%k].AddEdge(e.U, e.V)
		return true
	})
	local := make([]*graph.Graph, k)
	for j := range views {
		local[j] = views[j].Build()
	}
	parts := Partition(g)
	for i, members := range parts {
		if i == 0 {
			continue // isolated vertices have no candidates anywhere
		}
		inCand := map[int]bool{}
		for j := 0; j < k; j++ {
			for _, v := range Candidates(local[j], i, k) {
				inCand[v] = true
			}
		}
		for _, v := range members {
			if !inCand[v] {
				t.Fatalf("bucket %d member %d (deg %d) not in any B̃: local degs %v",
					i, v, g.Degree(v), localDegrees(local, v))
			}
		}
	}
}

func localDegrees(views []*graph.Graph, v int) []int {
	out := make([]int, len(views))
	for j, g := range views {
		out[j] = g.Degree(v)
	}
	return out
}

func TestCandidatesDegreeFloor(t *testing.T) {
	// B̃ᵢʲ ⊆ N_k(Bᵢ): every candidate has true degree ≥ d⁻(Bᵢ)/k. Here the
	// local view IS the whole graph (k=1 player), so candidates are exactly
	// the bucket plus nothing below.
	rng := rand.New(rand.NewSource(9))
	g := graph.ErdosRenyi(100, 0.15, rng)
	for i := 1; i < NumBuckets(g.N()); i++ {
		for _, v := range Candidates(g, i, 1) {
			if g.Degree(v) < DegMin(i) || g.Degree(v) > DegMax(i) {
				t.Fatalf("k=1 candidate %d deg %d outside [%d,%d]",
					v, g.Degree(v), DegMin(i), DegMax(i))
			}
		}
	}
}

func TestCandidatesPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	Candidates(graph.Complete(4), 1, 0)
}
