// Package bucket implements the degree-bucketing analysis of paper §3.2.
//
// Vertices are partitioned by degree into buckets of geometrically growing
// width: B₀ holds isolated vertices and, for i ≥ 1,
// Bᵢ = {v : 3^{i-1} ≤ deg(v) < 3^i}. The unrestricted protocol iterates
// over buckets searching for a *full* bucket — one whose vertices source
// many pairwise-disjoint triangle-vees — and inside it for *full* vertices,
// whose incident edges are rich in disjoint vees (Definitions 4 and 5).
//
// The package provides both the exact analysis view (used by the protocol's
// correctness tests and by experiment reports) and the player-local
// candidate sets B̃ᵢʲ = {v : d⁻(Bᵢ)/k ≤ d_j(v) ≤ d⁺(Bᵢ)} that the protocol
// actually samples from (§3.3), since no single player knows true degrees.
package bucket

import (
	"math"

	"tricomm/internal/graph"
	"tricomm/internal/parwork"
	"tricomm/internal/xrand"
)

// Index returns the bucket index of a vertex of the given degree: 0 for
// isolated vertices, otherwise the unique i ≥ 1 with 3^{i-1} ≤ deg < 3^i.
func Index(deg int) int {
	if deg <= 0 {
		return 0
	}
	i := 1
	for bound := 3; deg >= bound; bound *= 3 {
		i++
	}
	return i
}

// DegMin returns d⁻(Bᵢ), the minimal degree of bucket i (0 for B₀).
func DegMin(i int) int {
	if i <= 0 {
		return 0
	}
	return pow3(i - 1)
}

// DegMax returns d⁺(Bᵢ), the exclusive upper degree bound of bucket i
// (1 for B₀, i.e. only degree 0).
func DegMax(i int) int {
	if i <= 0 {
		return 1
	}
	return pow3(i)
}

// NumBuckets returns the number of buckets needed for an n-vertex graph
// (every possible degree < n falls below this index).
func NumBuckets(n int) int {
	if n <= 1 {
		return 1
	}
	return Index(n-1) + 1
}

func pow3(i int) int {
	v := 1
	for ; i > 0; i-- {
		v *= 3
	}
	return v
}

// Partition groups the vertices of g by bucket index. The returned slice
// has NumBuckets(g.N()) entries; entry i lists the vertices of Bᵢ in
// ascending order.
func Partition(g *graph.Graph) [][]int {
	out := make([][]int, NumBuckets(g.N()))
	for v := 0; v < g.N(); v++ {
		i := Index(g.Degree(v))
		out[i] = append(out[i], v)
	}
	return out
}

// logN returns log₂ n clamped below at 1, the paper's "log n" normalizer.
func logN(n int) float64 {
	l := math.Log2(float64(n))
	if l < 1 {
		return 1
	}
	return l
}

// IsFullVertex reports whether v is full in g for farness parameter eps
// (Definition 5): at least an eps/(12·log n) fraction of its incident
// edges form a set of disjoint triangle-vees. The disjoint-vee family is
// the greedy maximal matching computed by graph.DisjointVeesAt; each vee
// accounts for two incident edges.
func IsFullVertex(g *graph.Graph, v int, eps float64) bool {
	d := g.Degree(v)
	if d == 0 {
		return false
	}
	vees := g.DisjointVeeCountAt(v)
	return float64(2*vees) >= eps/(12*logN(g.N()))*float64(d)
}

// FullVertices returns the set of full vertices of g (Definition 5).
func FullVertices(g *graph.Graph, eps float64) []int {
	var out []int
	for v := 0; v < g.N(); v++ {
		if IsFullVertex(g, v, eps) {
			out = append(out, v)
		}
	}
	return out
}

// VeeMass returns, per bucket, the total number of disjoint triangle-vees
// sourced at the bucket's vertices (the quantity Definition 4 thresholds).
func VeeMass(g *graph.Graph) []float64 {
	counts := g.DisjointVeeCount()
	out := make([]float64, NumBuckets(g.N()))
	for v, c := range counts {
		out[Index(g.Degree(v))] += float64(c)
	}
	return out
}

// FullBuckets returns the indices of the full buckets of g (Definition 4):
// buckets whose vertices source at least eps·n·d/(2·log n) disjoint
// triangle-vees, where d is the average degree.
func FullBuckets(g *graph.Graph, eps float64) []int {
	threshold := eps * float64(g.N()) * g.AvgDegree() / (2 * logN(g.N()))
	var out []int
	for i, mass := range VeeMass(g) {
		if mass >= threshold && mass > 0 {
			out = append(out, i)
		}
	}
	return out
}

// DegreeWindow returns the degree range [dl, dh] the unrestricted protocol
// iterates over (Definitions 7–8): dl = eps·d/(2·log n) and
// dh = sqrt(n·d/eps), where d is the average degree of g. Buckets entirely
// outside this window can be skipped (Lemma 3.12 places Bmin inside it).
func DegreeWindow(n int, avgDegree, eps float64) (dl, dh float64) {
	dl = eps * avgDegree / (2 * logN(n))
	dh = math.Sqrt(float64(n) * avgDegree / eps)
	return dl, dh
}

// BucketRange returns the bucket indices [lo, hi] that intersect the
// degree window [dl, dh].
func BucketRange(n int, dl, dh float64) (lo, hi int) {
	lo = Index(int(math.Ceil(dl)))
	hi = Index(int(math.Floor(dh)))
	if max := NumBuckets(n) - 1; hi > max {
		hi = max
	}
	if lo < 1 {
		lo = 1
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Candidates returns B̃ᵢʲ, the vertices player j can "reasonably suspect"
// belong to bucket i given only its local view (§3.3): vertices whose
// local degree d_j(v) satisfies d⁻(Bᵢ)/k ≤ d_j(v) ≤ d⁺(Bᵢ). By the
// pigeonhole argument, Bᵢ ⊆ ⋃_j B̃ᵢʲ, and each B̃ᵢʲ ⊆ N_k(Bᵢ) (vertices
// whose true degree is at least d⁻(Bᵢ)/k).
func Candidates(view *graph.Graph, i, k int) []int {
	if k < 1 {
		panic("bucket: Candidates requires k >= 1")
	}
	lo := float64(DegMin(i)) / float64(k)
	hi := DegMax(i) // d⁺ is exclusive in bucket terms; the candidate test is ≤ 3^i per the paper
	var out []int
	for v := 0; v < view.N(); v++ {
		dj := view.Degree(v)
		if dj > 0 && float64(dj) >= lo && dj <= hi {
			out = append(out, v)
		}
	}
	return out
}

// minRankSerialBelow keeps MinRankCandidate serial for small universes,
// where a fan-out costs more than the scan.
const minRankSerialBelow = 1024

// MinRankCandidate returns key.MinRank(Candidates(view, i, k)) without
// materializing the candidate slice: one fused scan over the vertex
// range, fanned across up to workers goroutines. Before is a strict
// total order (hash rank with id tie-break), so taking chunk-local
// minima and folding them in chunk order yields exactly the serial
// scan's minimum at any worker count.
func MinRankCandidate(view *graph.Graph, i, k int, key xrand.Key, workers int) (int, bool) {
	if k < 1 {
		panic("bucket: MinRankCandidate requires k >= 1")
	}
	lo := float64(DegMin(i)) / float64(k)
	hi := DegMax(i)
	n := view.N()
	scan := func(vlo, vhi int) (int64, bool) {
		best, found := -1, false
		for v := vlo; v < vhi; v++ {
			dj := view.Degree(v)
			if dj > 0 && float64(dj) >= lo && dj <= hi {
				if !found || key.Before(uint64(v), uint64(best)) {
					best, found = v, true
				}
			}
		}
		return int64(best), found
	}
	if workers <= 1 || n < minRankSerialBelow {
		b, ok := scan(0, n)
		return int(b), ok
	}
	nc := parwork.NumChunks(workers, n)
	bests := make([]int64, nc)
	founds := make([]bool, nc)
	parwork.ForEach(workers, n, func(c, vlo, vhi int) {
		bests[c], founds[c] = scan(vlo, vhi)
	})
	best, found := -1, false
	for c := 0; c < nc; c++ {
		if !founds[c] {
			continue
		}
		if !found || key.Before(uint64(bests[c]), uint64(best)) {
			best, found = int(bests[c]), true
		}
	}
	return best, found
}
