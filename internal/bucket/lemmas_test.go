package bucket

// Empirical checks of the paper's §3.2 sampling lemmas. These are
// theorems, so any counterexample is a bug in our combinatorial machinery
// (vee counting, bucketing, or the generators' certificates).

import (
	"math"
	"math/rand"
	"testing"

	"tricomm/internal/graph"
	"tricomm/internal/xrand"
)

// TestLemma39ExtendedBirthdayParadox verifies the extended birthday
// paradox: if an α-fraction of a vertex's incident edges form disjoint
// triangle-vees, then sampling each incident edge with probability
// p = c/√(α·d(v)) catches a complete vee with the predicted constant
// probability. We use dense-core hubs, where α = 1 exactly.
func TestLemma39ExtendedBirthdayParadox(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := graph.DenseCoreParams{N: 3000, Hubs: 1, Pairs: 200}
	g := graph.PlantedDenseCore(p, rng)
	hub := -1
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 2*p.Pairs {
			hub = v
			break
		}
	}
	if hub < 0 {
		t.Fatal("no hub")
	}
	d := float64(g.Degree(hub))
	const c = 4.0 // the paper's constant for δ' small
	prob := c / math.Sqrt(d)
	if prob > 1 {
		t.Fatalf("test needs prob < 1, got %v", prob)
	}
	hits := 0
	const trials = 300
	shared := xrand.New(7)
	for trial := 0; trial < trials; trial++ {
		key := shared.Key(string(rune(trial)) + "/vee")
		sampled := map[int]bool{}
		for _, u := range g.Neighbors(hub) {
			if key.Bernoulli(uint64(u), prob) {
				sampled[int(u)] = true
			}
		}
		// A vee is caught if both arms of some planted pair are sampled.
		found := false
		for u := range sampled {
			for w := range sampled {
				if u < w && g.HasEdge(u, w) {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			hits++
		}
	}
	// Expected vees sampled: p²·d/2 = c²/2 = 8; Lemma 3.9 promises a vee
	// w.p. ≥ 1-δ' for small δ'. Demand ≥ 90%.
	if rate := float64(hits) / trials; rate < 0.9 {
		t.Fatalf("vee caught in %.2f of trials, want ≥ 0.9", rate)
	}
}

// TestLemma314CandidateSampling verifies the sampling count of Lemma 3.14
// qualitatively: uniform samples from the k-neighborhood superset of a
// full bucket hit a full vertex within the predicted sample budget.
func TestLemma314CandidateSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fg := graph.FarWithDegree(graph.FarParams{N: 2000, D: 10, Eps: 0.25}, rng)
	g := fg.G
	eps := fg.CertEps
	full := FullBuckets(g, eps)
	if len(full) == 0 {
		t.Fatal("no full bucket")
	}
	bIdx := full[0]
	fullSet := map[int]bool{}
	for _, v := range FullVertices(g, eps) {
		fullSet[v] = true
	}
	// Superset N_k(B): all vertices with degree ≥ d⁻(B)/k.
	const k = 4
	var superset []int
	floor := float64(DegMin(bIdx)) / k
	for v := 0; v < g.N(); v++ {
		if float64(g.Degree(v)) >= floor && g.Degree(v) > 0 {
			superset = append(superset, v)
		}
	}
	// Budget: a constant ×k·log n samples (our protocol's scaled q).
	budget := int(3 * k * math.Log(float64(g.N())))
	trials := 50
	hits := 0
	for trial := 0; trial < trials; trial++ {
		trng := rand.New(rand.NewSource(int64(trial)))
		got := false
		for i := 0; i < budget; i++ {
			v := superset[trng.Intn(len(superset))]
			if fullSet[v] && Index(g.Degree(v)) == bIdx {
				got = true
				break
			}
		}
		if got {
			hits++
		}
	}
	if rate := float64(hits) / float64(trials); rate < 0.8 {
		t.Fatalf("full vertex sampled in %.2f of trials, want ≥ 0.8", rate)
	}
}

// TestLemma35FullVertexFraction checks Lemma 3.5's conclusion on our
// certified generators: full buckets contain a non-trivial fraction of
// full vertices.
func TestLemma35FullVertexFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fg := graph.FarWithDegree(graph.FarParams{N: 1500, D: 12, Eps: 0.3}, rng)
	g := fg.G
	eps := fg.CertEps
	parts := Partition(g)
	fullSet := map[int]bool{}
	for _, v := range FullVertices(g, eps) {
		fullSet[v] = true
	}
	for _, bIdx := range FullBuckets(g, eps) {
		members := parts[bIdx]
		if len(members) == 0 {
			t.Fatalf("full bucket %d empty", bIdx)
		}
		fullCount := 0
		for _, v := range members {
			if fullSet[v] {
				fullCount++
			}
		}
		// Lemma 3.5: ≥ ε/(12·log n) fraction. Our planted instances are far
		// denser in full vertices; demand the lemma's bound with slack.
		bound := eps / (12 * math.Log2(float64(g.N()))) * float64(len(members))
		if float64(fullCount) < bound {
			t.Fatalf("bucket %d: %d full of %d members, lemma bound %v",
				bIdx, fullCount, len(members), bound)
		}
	}
}
