package blocks

import (
	"context"
	"fmt"

	"tricomm/internal/comm"
	"tricomm/internal/wire"
)

// Additional opcodes for the traversal/exact-counting blocks. They live in
// their own block to keep blocks.go's core dispatch table stable.
const (
	opNeighbors uint64 = 100 + iota
	opNeighborBitmap
)

// handleExtra dispatches the opcodes of this file; it is called from
// Handle's default branch.
func handleExtra(p *comm.Player, op uint64, r *wire.Reader) (comm.Msg, bool, error) {
	switch op {
	case opNeighbors:
		m, err := handleNeighbors(p, r)
		return m, true, err
	case opNeighborBitmap:
		m, err := handleNeighborBitmap(p, r)
		return m, true, err
	default:
		return comm.Msg{}, false, nil
	}
}

// Neighbors collects the exact neighbor set of v across all players —
// the primitive behind the §3.1 BFS implementation ("have all players
// post all the neighbors of the currently examined vertex"). Cost
// Θ(k·log n + Σ_j d_j(v)·log n).
func Neighbors(ctx context.Context, c *comm.Coordinator, v int) ([]int, error) {
	w := reqWriter(opNeighbors)
	vc := wire.NewVertexCodec(c.N)
	if err := vc.Put(w, v); err != nil {
		return nil, err
	}
	replies, err := c.AskAll(ctx, comm.FromWriter(w))
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	var out []int
	for _, m := range replies {
		vs, err := vc.GetVertexList(m.Reader())
		if err != nil {
			return nil, err
		}
		for _, u := range vs {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out, nil
}

func handleNeighbors(p *comm.Player, r *wire.Reader) (comm.Msg, error) {
	vc := wire.NewVertexCodec(p.N)
	v, err := vc.Get(r)
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	nbrs := p.View.Neighbors(v)
	list := make([]int, len(nbrs))
	for i, u := range nbrs {
		list[i] = int(u)
	}
	var w wire.Writer
	if err := vc.PutVertexList(&w, list); err != nil {
		return comm.Msg{}, err
	}
	return comm.FromWriter(&w), nil
}

// BFS runs a breadth-first search over the union graph from start,
// visiting at most maxVisit vertices (≤ 0 means no limit). It returns the
// visited vertices in BFS order together with their depths. Per §3.1 the
// cost is O(visited · k · log n + edges · log n) — each vertex's neighbor
// list crosses the wire once per holder.
func BFS(ctx context.Context, c *comm.Coordinator, start, maxVisit int) (order []int, depth map[int]int, err error) {
	depth = map[int]int{start: 0}
	order = []int{start}
	queue := []int{start}
	for len(queue) > 0 {
		if maxVisit > 0 && len(order) >= maxVisit {
			break
		}
		v := queue[0]
		queue = queue[1:]
		nbrs, nerr := Neighbors(ctx, c, v)
		if nerr != nil {
			return nil, nil, nerr
		}
		for _, u := range nbrs {
			if _, ok := depth[u]; ok {
				continue
			}
			depth[u] = depth[v] + 1
			order = append(order, u)
			queue = append(queue, u)
			if maxVisit > 0 && len(order) >= maxVisit {
				break
			}
		}
	}
	return order, depth, nil
}

// ExactDegree computes deg(v) in the union graph exactly, tolerating
// duplication, by having every player send its full incidence bitmap for
// v. This is the Ω(k·n)-bit protocol the paper's §3.1 remark alludes to:
// exact counting under duplication is as hard as set disjointness, so the
// bitmap exchange is essentially optimal — the point of comparison for
// ApproxDegree's exponentially cheaper estimate.
func ExactDegree(ctx context.Context, c *comm.Coordinator, v int) (int, error) {
	w := reqWriter(opNeighborBitmap)
	vc := wire.NewVertexCodec(c.N)
	if err := vc.Put(w, v); err != nil {
		return 0, err
	}
	replies, err := c.AskAll(ctx, comm.FromWriter(w))
	if err != nil {
		return 0, err
	}
	union := make([]bool, c.N)
	for _, m := range replies {
		r := m.Reader()
		for u := 0; u < c.N; u++ {
			bit, err := r.ReadBit()
			if err != nil {
				return 0, err
			}
			if bit == 1 {
				union[u] = true
			}
		}
	}
	deg := 0
	for _, b := range union {
		if b {
			deg++
		}
	}
	return deg, nil
}

func handleNeighborBitmap(p *comm.Player, r *wire.Reader) (comm.Msg, error) {
	vc := wire.NewVertexCodec(p.N)
	v, err := vc.Get(r)
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	bitmap := make([]bool, p.N)
	for _, u := range p.View.Neighbors(v) {
		bitmap[u] = true
	}
	var w wire.Writer
	for _, b := range bitmap {
		w.WriteBool(b)
	}
	return comm.FromWriter(&w), nil
}
