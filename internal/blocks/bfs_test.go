package blocks

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/partition"
)

func TestNeighborsMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyi(50, 0.15, rng)
	runCoord(t, g, partition.Duplicate{Q: 0.4}, 4, 31, func(ctx context.Context, c *comm.Coordinator) error {
		for v := 0; v < g.N(); v++ {
			got, err := Neighbors(ctx, c, v)
			if err != nil {
				return err
			}
			if len(got) != g.Degree(v) {
				return fmt.Errorf("vertex %d: %d neighbors, want %d", v, len(got), g.Degree(v))
			}
			for _, u := range got {
				if !g.HasEdge(v, u) {
					return fmt.Errorf("vertex %d: phantom neighbor %d", v, u)
				}
			}
		}
		return nil
	})
}

func TestBFSLevels(t *testing.T) {
	// A path graph has unambiguous BFS depths.
	b := graph.NewBuilder(10)
	for v := 0; v < 9; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.Build()
	runCoord(t, g, partition.Disjoint{}, 3, 32, func(ctx context.Context, c *comm.Coordinator) error {
		order, depth, err := BFS(ctx, c, 0, 0)
		if err != nil {
			return err
		}
		if len(order) != 10 {
			return fmt.Errorf("visited %d vertices", len(order))
		}
		for v := 0; v < 10; v++ {
			if depth[v] != v {
				return fmt.Errorf("depth[%d] = %d", v, depth[v])
			}
		}
		return nil
	})
}

func TestBFSConnectedComponent(t *testing.T) {
	// BFS from one component must not leak into another.
	rng := rand.New(rand.NewSource(2))
	g := graph.DisjointTriangles(30, 5, rng)
	runCoord(t, g, partition.Duplicate{Q: 0.5}, 3, 33, func(ctx context.Context, c *comm.Coordinator) error {
		start := -1
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) > 0 {
				start = v
				break
			}
		}
		order, depth, err := BFS(ctx, c, start, 0)
		if err != nil {
			return err
		}
		if len(order) != 3 {
			return fmt.Errorf("component of a triangle has %d vertices", len(order))
		}
		for _, v := range order {
			if depth[v] > 1 {
				return fmt.Errorf("triangle BFS depth %d", depth[v])
			}
		}
		return nil
	})
}

func TestBFSMaxVisit(t *testing.T) {
	g := graph.Complete(20)
	runCoord(t, g, partition.Disjoint{}, 3, 34, func(ctx context.Context, c *comm.Coordinator) error {
		order, _, err := BFS(ctx, c, 0, 5)
		if err != nil {
			return err
		}
		if len(order) != 5 {
			return fmt.Errorf("maxVisit ignored: %d", len(order))
		}
		return nil
	})
}

func TestExactDegreeUnderDuplication(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.ErdosRenyi(60, 0.2, rng)
	runCoord(t, g, partition.All{}, 4, 35, func(ctx context.Context, c *comm.Coordinator) error {
		for _, v := range []int{0, 10, 30, 59} {
			deg, err := ExactDegree(ctx, c, v)
			if err != nil {
				return err
			}
			if deg != g.Degree(v) {
				return fmt.Errorf("vertex %d: exact degree %d, want %d", v, deg, g.Degree(v))
			}
		}
		return nil
	})
}

func TestExactDegreeCostLinearInN(t *testing.T) {
	// The bitmap protocol costs Θ(k·n) — the ApproxDegree comparison point.
	g := graph.Star(128)
	const k = 4
	s := runCoord(t, g, partition.Disjoint{}, k, 36, func(ctx context.Context, c *comm.Coordinator) error {
		_, err := ExactDegree(ctx, c, 0)
		return err
	})
	// Up traffic alone is k·n bits of bitmaps.
	if s.UpBits < int64(k*g.N()) {
		t.Fatalf("up bits %d < k·n = %d", s.UpBits, k*g.N())
	}
	if s.UpBits > int64(2*k*g.N()) {
		t.Fatalf("up bits %d unreasonably large", s.UpBits)
	}
}

func TestExactVsApproxDegreeCost(t *testing.T) {
	// ApproxDegree must be much cheaper than ExactDegree on large sparse
	// graphs (the §3.1 point of the approximation).
	rng := rand.New(rand.NewSource(4))
	g := graph.ErdosRenyi(4096, 0.002, rng)
	v := 0
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) > g.Degree(v) {
			v = u
		}
	}
	var exactBits, approxBits int64
	runCoord(t, g, partition.Duplicate{Q: 0.3}, 4, 37, func(ctx context.Context, c *comm.Coordinator) error {
		before := c.Stats().TotalBits
		if _, err := ExactDegree(ctx, c, v); err != nil {
			return err
		}
		exactBits = c.Stats().TotalBits - before
		before = c.Stats().TotalBits
		if _, err := ApproxDegree(ctx, c, v, DefaultApprox("cmp")); err != nil {
			return err
		}
		approxBits = c.Stats().TotalBits - before
		return nil
	})
	if approxBits >= exactBits {
		t.Fatalf("approx (%d bits) not cheaper than exact (%d bits)", approxBits, exactBits)
	}
}
