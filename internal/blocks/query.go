package blocks

import (
	"context"
	"fmt"

	"tricomm/internal/comm"
	"tricomm/internal/wire"
)

// EdgeQuery implements the dense-model primitive "does edge e exist?":
// the coordinator broadcasts e and every player answers one bit; the
// result is the OR. Cost Θ(k·log n) down + k bits up.
func EdgeQuery(ctx context.Context, c *comm.Coordinator, e wire.Edge) (bool, error) {
	w := reqWriter(opEdgeQuery)
	ec := wire.NewEdgeCodec(c.N)
	if err := ec.Put(w, e); err != nil {
		return false, err
	}
	replies, err := c.AskAll(ctx, comm.FromWriter(w))
	if err != nil {
		return false, err
	}
	for _, m := range replies {
		has, err := m.Reader().ReadBool()
		if err != nil {
			return false, err
		}
		if has {
			return true, nil
		}
	}
	return false, nil
}

func handleEdgeQuery(p *comm.Player, r *wire.Reader) (comm.Msg, error) {
	e, err := wire.NewEdgeCodec(p.N).Get(r)
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var w wire.Writer
	w.WriteBool(p.View.HasEdge(e.U, e.V))
	return comm.FromWriter(&w), nil
}

// edgeRankKey derives the shared random order on the potential edges
// incident to v for the given tag. The rank of neighbor u is a pure
// function of (shared randomness, tag, v, u), so all parties agree on the
// permutation without communication — this is the paper's trick for
// unbiased incident-edge sampling under duplication.
func edgeRankElement(v, u int) uint64 { return uint64(v)<<32 | uint64(u) }

// RandIncidentEdge implements the sparse-model primitive "uniform random
// edge incident to v": a shared random permutation orders the n-1
// potential incident edges; each player reports its first present edge
// under that order and the coordinator takes the global first. Because the
// permutation is independent of multiplicity, duplicated edges are not
// favored. Returns ok=false if no player holds an edge at v.
// Cost Θ(k·log n).
func RandIncidentEdge(ctx context.Context, c *comm.Coordinator, v int, tag string) (wire.Edge, bool, error) {
	w := reqWriter(opMinRankIncident)
	vc := wire.NewVertexCodec(c.N)
	if err := vc.Put(w, v); err != nil {
		return wire.Edge{}, false, err
	}
	w.WriteBytes([]byte(tag))
	replies, err := c.AskAll(ctx, comm.FromWriter(w))
	if err != nil {
		return wire.Edge{}, false, err
	}
	key := c.Shared.Key("incident/" + tag)
	best, found := -1, false
	for _, m := range replies {
		r := m.Reader()
		has, err := r.ReadBool()
		if err != nil {
			return wire.Edge{}, false, err
		}
		if !has {
			continue
		}
		u, err := vc.Get(r)
		if err != nil {
			return wire.Edge{}, false, err
		}
		if !found || key.Before(edgeRankElement(v, u), edgeRankElement(v, best)) {
			best, found = u, true
		}
	}
	if !found {
		return wire.Edge{}, false, nil
	}
	return wire.Edge{U: v, V: best}.Canon(), true, nil
}

func handleMinRankIncident(p *comm.Player, r *wire.Reader) (comm.Msg, error) {
	v, err := wire.NewVertexCodec(p.N).Get(r)
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	tagBytes, err := r.ReadBytes(r.Remaining() / 8)
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	key := p.Shared.Key("incident/" + string(tagBytes))
	var best int
	found := false
	for _, u := range p.View.Neighbors(v) {
		if !found || key.Before(edgeRankElement(v, int(u)), edgeRankElement(v, best)) {
			best, found = int(u), true
		}
	}
	var w wire.Writer
	w.WriteBool(found)
	if found {
		if err := wire.NewVertexCodec(p.N).Put(&w, best); err != nil {
			return comm.Msg{}, err
		}
	}
	return comm.FromWriter(&w), nil
}

// RandomWalk performs a steps-long random walk from start, choosing a
// uniform random incident edge at every step via RandIncidentEdge. It
// returns the visited vertices (including start). The walk stops early at
// an isolated vertex. Cost Θ(k·steps·log n).
func RandomWalk(ctx context.Context, c *comm.Coordinator, start, steps int, tag string) ([]int, error) {
	path := []int{start}
	cur := start
	for s := 0; s < steps; s++ {
		e, ok, err := RandIncidentEdge(ctx, c, cur, fmt.Sprintf("%s/step%d", tag, s))
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		cur = e.Other(cur)
		path = append(path, cur)
	}
	return path, nil
}

// UniformEdge implements "uniform random edge of the whole graph" — the
// primitive the query model lacks. A shared random order ranks all
// potential edges; each player reports its minimum and the coordinator
// takes the global minimum, which is uniform over E regardless of
// duplication. Returns ok=false for an empty graph. Cost Θ(k·log n).
func UniformEdge(ctx context.Context, c *comm.Coordinator, tag string) (wire.Edge, bool, error) {
	w := reqWriter(opMinRankEdge)
	w.WriteBytes([]byte(tag))
	replies, err := c.AskAll(ctx, comm.FromWriter(w))
	if err != nil {
		return wire.Edge{}, false, err
	}
	key := c.Shared.Key("edge/" + tag)
	ec := wire.NewEdgeCodec(c.N)
	var best wire.Edge
	found := false
	for _, m := range replies {
		r := m.Reader()
		has, err := r.ReadBool()
		if err != nil {
			return wire.Edge{}, false, err
		}
		if !has {
			continue
		}
		e, err := ec.Get(r)
		if err != nil {
			return wire.Edge{}, false, err
		}
		if !found || key.Before(edgeKeyU64(c.N, e), edgeKeyU64(c.N, best)) {
			best, found = e, true
		}
	}
	return best, found, nil
}

func edgeKeyU64(n int, e wire.Edge) uint64 {
	ec := e.Canon()
	return uint64(ec.U)*uint64(n) + uint64(ec.V)
}

func handleMinRankEdge(p *comm.Player, r *wire.Reader) (comm.Msg, error) {
	tagBytes, err := r.ReadBytes(r.Remaining() / 8)
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	key := p.Shared.Key("edge/" + string(tagBytes))
	var best wire.Edge
	found := false
	for _, e := range p.Edges {
		if !found || key.Before(edgeKeyU64(p.N, e), edgeKeyU64(p.N, best)) {
			best, found = e.Canon(), true
		}
	}
	var w wire.Writer
	w.WriteBool(found)
	if found {
		if err := wire.NewEdgeCodec(p.N).Put(&w, best); err != nil {
			return comm.Msg{}, err
		}
	}
	return comm.FromWriter(&w), nil
}
