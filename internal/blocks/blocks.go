// Package blocks implements the property-testing building blocks of paper
// §3.1 as subprotocols in the coordinator model.
//
// Each block has a coordinator-side function (EdgeQuery, RandIncidentEdge,
// ApproxDegree, …) and a shared player-side dispatcher (Handle) that
// composite protocols install via comm.ServeLoop. The blocks are designed
// for the duplication-tolerant setting: several players may hold the same
// edge, and the primitives stay unbiased (shared-permutation sampling) and
// accurate (cardinality estimation by sampling experiments) regardless.
//
// Opcodes are the first varint of every request; replies are op-specific.
package blocks

import (
	"errors"
	"fmt"
	"time"

	"tricomm/internal/comm"
	"tricomm/internal/wire"
)

// Opcodes for the player-side dispatcher. Start at 1 so that a zero
// opcode is always invalid.
const (
	opEdgeQuery uint64 = iota + 1
	opMinRankIncident
	opMinRankEdge
	opCountMSB
	opSampleTest
	opCountTopBits
	opCollectInduced
	opCollectCross
	opCollectIncidentSample
	opCloseVees
	opCandidateMinRank
)

// ErrBadRequest indicates a malformed request reaching a player.
var ErrBadRequest = errors.New("blocks: malformed request")

// Handle is the player-side dispatcher for every building block in this
// package. Install it with comm.ServeLoop(blocks.Handle) as the player
// function of any protocol composed from these blocks.
func Handle(p *comm.Player, req comm.Msg) (comm.Msg, error) {
	r := req.Reader()
	op, err := r.ReadUvarint()
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: missing opcode: %v", ErrBadRequest, err)
	}
	switch op {
	case opEdgeQuery:
		return handleEdgeQuery(p, r)
	case opMinRankIncident:
		return handleMinRankIncident(p, r)
	case opMinRankEdge:
		return handleMinRankEdge(p, r)
	case opCountMSB:
		return handleCountMSB(p, r)
	case opSampleTest:
		return handleSampleTest(p, r)
	case opCountTopBits:
		return handleCountTopBits(p, r)
	case opCollectInduced:
		return handleCollectInduced(p, r)
	case opCollectCross:
		return handleCollectCross(p, r)
	case opCollectIncidentSample:
		return handleCollectIncidentSample(p, r)
	case opCloseVees:
		return handleCloseVees(p, r)
	case opCandidateMinRank:
		return handleCandidateMinRank(p, r)
	default:
		if m, ok, err := handleExtra(p, op, r); ok {
			return m, err
		}
		return comm.Msg{}, fmt.Errorf("%w: unknown opcode %d", ErrBadRequest, op)
	}
}

// parRegion times an intra-phase parallel region for the observability
// meter: call it before the region and invoke the returned func after. At
// width 1 nothing fans out and nothing is recorded, so the serial path
// carries no clock reads. Timing feeds metrics only — never Stats — so
// it cannot perturb the deterministic artifact.
func parRegion(p *comm.Player) func() {
	if p.Workers <= 1 {
		return func() {}
	}
	t0 := time.Now()
	return func() { p.ObserveParallel(time.Since(t0)) }
}

// reqWriter starts a request message with the given opcode.
func reqWriter(op uint64) *wire.Writer {
	w := wire.NewWriter(64)
	w.WriteUvarint(op)
	return w
}

// countMode selects the element universe for cardinality estimation.
type countMode uint64

const (
	// modeDegree counts the distinct neighbors of a vertex across all
	// inputs (i.e. deg(v) in the union graph).
	modeDegree countMode = 1
	// modeEdges counts the distinct edges across all inputs (i.e. |E|).
	modeEdges countMode = 2
)

// localElements enumerates the player's elements of the given universe:
// neighbor ids of v for modeDegree, canonical edge keys for modeEdges.
// The returned values are universe-unique ids shared across players.
func localElements(p *comm.Player, mode countMode, v int) []uint64 {
	switch mode {
	case modeDegree:
		nbrs := p.View.Neighbors(v)
		out := make([]uint64, len(nbrs))
		for i, u := range nbrs {
			out[i] = uint64(u)
		}
		return out
	case modeEdges:
		out := make([]uint64, 0, len(p.Edges))
		for _, e := range p.Edges {
			ec := e.Canon()
			out = append(out, uint64(ec.U)*uint64(p.N)+uint64(ec.V))
		}
		return out
	default:
		return nil
	}
}
