package blocks

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tricomm/internal/bucket"
	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/partition"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// runCoord executes a coordinator function against the blocks player
// dispatcher on the given graph/partition.
func runCoord(t *testing.T, g *graph.Graph, pt partition.Partitioner, k int, seed uint64,
	coord func(ctx context.Context, c *comm.Coordinator) error) comm.Stats {
	t.Helper()
	shared := xrand.New(seed)
	p := pt.Split(g, k, shared)
	stats, err := comm.Run(context.Background(), comm.Config{
		N:      g.N(),
		Inputs: p.Inputs,
		Shared: shared,
	}, coord, comm.ServeLoop(Handle))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return stats
}

func TestEdgeQuery(t *testing.T) {
	g := graph.Complete(8)
	for _, pt := range []partition.Partitioner{partition.Disjoint{}, partition.Duplicate{Q: 0.5}, partition.All{}} {
		runCoord(t, g, pt, 4, 1, func(ctx context.Context, c *comm.Coordinator) error {
			has, err := EdgeQuery(ctx, c, wire.Edge{U: 2, V: 5})
			if err != nil {
				return err
			}
			if !has {
				return fmt.Errorf("%s: edge {2,5} not found", pt.Name())
			}
			return nil
		})
	}
	// Absent edge on a sparse graph.
	sparse := graph.Star(10)
	runCoord(t, sparse, partition.Disjoint{}, 3, 2, func(ctx context.Context, c *comm.Coordinator) error {
		has, err := EdgeQuery(ctx, c, wire.Edge{U: 3, V: 7})
		if err != nil {
			return err
		}
		if has {
			return fmt.Errorf("phantom edge reported")
		}
		return nil
	})
}

func TestRandIncidentEdgeValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyi(40, 0.2, rng)
	runCoord(t, g, partition.Duplicate{Q: 0.4}, 5, 3, func(ctx context.Context, c *comm.Coordinator) error {
		for v := 0; v < g.N(); v++ {
			e, ok, err := RandIncidentEdge(ctx, c, v, fmt.Sprintf("t%d", v))
			if err != nil {
				return err
			}
			if ok != (g.Degree(v) > 0) {
				return fmt.Errorf("vertex %d: ok=%v but degree=%d", v, ok, g.Degree(v))
			}
			if ok && !g.HasEdge(e.U, e.V) {
				return fmt.Errorf("vertex %d: phantom edge %v", v, e)
			}
			if ok && e.U != v && e.V != v {
				return fmt.Errorf("vertex %d: edge %v not incident", v, e)
			}
		}
		return nil
	})
}

func TestRandIncidentEdgeUnbiasedUnderDuplication(t *testing.T) {
	// Star center: all leaves equally likely despite every player holding
	// every edge (maximal duplication).
	g := graph.Star(9) // center 0, leaves 1..8
	const trials = 4000
	counts := make([]int, 9)
	runCoord(t, g, partition.All{}, 4, 4, func(ctx context.Context, c *comm.Coordinator) error {
		for i := 0; i < trials; i++ {
			e, ok, err := RandIncidentEdge(ctx, c, 0, fmt.Sprintf("u%d", i))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("no edge at center")
			}
			counts[e.Other(0)]++
		}
		return nil
	})
	want := float64(trials) / 8
	for leaf := 1; leaf <= 8; leaf++ {
		if got := float64(counts[leaf]); math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Errorf("leaf %d sampled %v times, want ~%v", leaf, got, want)
		}
	}
}

func TestRandomWalk(t *testing.T) {
	g := graph.Cycle(20)
	runCoord(t, g, partition.Disjoint{}, 3, 5, func(ctx context.Context, c *comm.Coordinator) error {
		path, err := RandomWalk(ctx, c, 0, 10, "walk")
		if err != nil {
			return err
		}
		if len(path) != 11 {
			return fmt.Errorf("path length %d, want 11", len(path))
		}
		for i := 1; i < len(path); i++ {
			if !g.HasEdge(path[i-1], path[i]) {
				return fmt.Errorf("step %d: %d-%d not an edge", i, path[i-1], path[i])
			}
		}
		return nil
	})
	// Walk stops at isolated vertex.
	iso := graph.NewBuilder(5).Build()
	runCoord(t, iso, partition.Disjoint{}, 2, 6, func(ctx context.Context, c *comm.Coordinator) error {
		path, err := RandomWalk(ctx, c, 2, 5, "walk2")
		if err != nil {
			return err
		}
		if len(path) != 1 {
			return fmt.Errorf("walk from isolated vertex: %v", path)
		}
		return nil
	})
}

func TestUniformEdgeDistribution(t *testing.T) {
	g := graph.Complete(5) // 10 edges
	const trials = 3000
	counts := map[wire.Edge]int{}
	runCoord(t, g, partition.Duplicate{Q: 0.7}, 3, 7, func(ctx context.Context, c *comm.Coordinator) error {
		for i := 0; i < trials; i++ {
			e, ok, err := UniformEdge(ctx, c, fmt.Sprintf("e%d", i))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("no edge found")
			}
			if !g.HasEdge(e.U, e.V) {
				return fmt.Errorf("phantom edge %v", e)
			}
			counts[e.Canon()]++
		}
		return nil
	})
	want := float64(trials) / 10
	for e, cnt := range counts {
		if math.Abs(float64(cnt)-want) > 6*math.Sqrt(want) {
			t.Errorf("edge %v sampled %d times, want ~%v", e, cnt, want)
		}
	}
	if len(counts) != 10 {
		t.Errorf("only %d distinct edges sampled", len(counts))
	}
}

func TestUniformEdgeEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(6).Build()
	runCoord(t, g, partition.Disjoint{}, 3, 8, func(ctx context.Context, c *comm.Coordinator) error {
		_, ok, err := UniformEdge(ctx, c, "none")
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("edge found in empty graph")
		}
		return nil
	})
}

func TestApproxDegreeWithinFactor(t *testing.T) {
	// Degrees across scales; heavy duplication. The estimator promises a
	// 4-approximation w.p. ≥ 1-τ per call; we run many calls and allow a
	// small failure budget.
	rng := rand.New(rand.NewSource(9))
	g := graph.BucketStress(graph.BucketStressParams{N: 2500, Levels: 5, HubsPer: 2, TriLevel: 1}, rng)
	var checked, failed int
	runCoord(t, g, partition.Duplicate{Q: 0.5}, 4, 9, func(ctx context.Context, c *comm.Coordinator) error {
		for v := 0; v < g.N() && checked < 60; v++ {
			d := g.Degree(v)
			if d < 2 {
				continue
			}
			checked++
			est, err := ApproxDegree(ctx, c, v, DefaultApprox(fmt.Sprintf("deg%d", v)))
			if err != nil {
				return err
			}
			if est < float64(d)/4.5 || est > 4.5*float64(d) {
				failed++
			}
		}
		return nil
	})
	if checked == 0 {
		t.Fatal("no vertices checked")
	}
	if failed > checked/5 {
		t.Fatalf("%d/%d estimates outside 4.5x", failed, checked)
	}
}

func TestApproxDegreeIsolated(t *testing.T) {
	g := graph.Star(6)
	runCoord(t, graph.Embed(g, 10), partition.Disjoint{}, 3, 10, func(ctx context.Context, c *comm.Coordinator) error {
		est, err := ApproxDegree(ctx, c, 9, DefaultApprox("iso"))
		if err != nil {
			return err
		}
		if est != 0 {
			return fmt.Errorf("isolated vertex estimate %v", est)
		}
		return nil
	})
}

func TestApproxDegreeBadParams(t *testing.T) {
	g := graph.Complete(4)
	runCoord(t, g, partition.Disjoint{}, 2, 11, func(ctx context.Context, c *comm.Coordinator) error {
		if _, err := ApproxDegree(ctx, c, 0, ApproxParams{Alpha: 0.5, Tag: "x"}); err == nil {
			return fmt.Errorf("alpha<1 accepted")
		}
		if _, err := ApproxDegree(ctx, c, 0, ApproxParams{Alpha: 2}); err == nil {
			return fmt.Errorf("empty tag accepted")
		}
		return nil
	})
}

func TestApproxDegreeNoDup(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := graph.ErdosRenyi(300, 0.1, rng)
	runCoord(t, g, partition.Disjoint{}, 5, 12, func(ctx context.Context, c *comm.Coordinator) error {
		for _, v := range []int{0, 7, 42, 199} {
			d := float64(g.Degree(v))
			est, err := ApproxDegreeNoDup(ctx, c, v, 3)
			if err != nil {
				return err
			}
			// Truncation under-counts: est ≤ d ≤ est·(1+2^{1-3}) per player.
			if est > d {
				return fmt.Errorf("v=%d: est %v > true %v", v, est, d)
			}
			if d > est*(1+math.Pow(2, -2))+0.01 {
				return fmt.Errorf("v=%d: est %v too far below true %v", v, est, d)
			}
		}
		return nil
	})
}

func TestApproxDegreeNoDupBadParams(t *testing.T) {
	g := graph.Complete(4)
	runCoord(t, g, partition.Disjoint{}, 2, 13, func(ctx context.Context, c *comm.Coordinator) error {
		if _, err := ApproxDegreeNoDup(ctx, c, 0, 0); err == nil {
			return fmt.Errorf("topBits=0 accepted")
		}
		return nil
	})
}

func TestApproxDistinctEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := graph.ErdosRenyi(200, 0.15, rng)
	var got float64
	runCoord(t, g, partition.Duplicate{Q: 0.6}, 4, 14, func(ctx context.Context, c *comm.Coordinator) error {
		est, err := ApproxDistinctEdges(ctx, c, DefaultApprox("edges"))
		if err != nil {
			return err
		}
		got = est
		return nil
	})
	m := float64(g.M())
	if got < m/5 || got > 5*m {
		t.Fatalf("distinct edges estimate %v, true %v", got, m)
	}
}

func TestCollectInducedShared(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := graph.ErdosRenyi(60, 0.3, rng)
	shared := xrand.New(16)
	p := partition.Duplicate{Q: 0.3}.Split(g, 4, shared)
	const prob = 0.4
	var got []wire.Edge
	_, err := comm.Run(context.Background(), comm.Config{N: g.N(), Inputs: p.Inputs, Shared: shared},
		func(ctx context.Context, c *comm.Coordinator) error {
			es, err := CollectInducedShared(ctx, c, "ind", prob, 0)
			if err != nil {
				return err
			}
			got = es
			return nil
		}, comm.ServeLoop(Handle))
	if err != nil {
		t.Fatal(err)
	}
	// Expected: exactly the edges with both endpoints in the shared sample.
	key := shared.Key("vsample/ind")
	want := map[wire.Edge]bool{}
	g.VisitEdges(func(e wire.Edge) bool {
		if key.Bernoulli(uint64(e.U), prob) && key.Bernoulli(uint64(e.V), prob) {
			want[e] = true
		}
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("collected %d edges, want %d", len(got), len(want))
	}
	for _, e := range got {
		if !want[e] {
			t.Fatalf("unexpected edge %v", e)
		}
	}
}

func TestCollectInducedCap(t *testing.T) {
	g := graph.Complete(20)
	shared := xrand.New(17)
	p := partition.All{}.Split(g, 3, shared)
	_, err := comm.Run(context.Background(), comm.Config{N: g.N(), Inputs: p.Inputs, Shared: shared},
		func(ctx context.Context, c *comm.Coordinator) error {
			es, err := CollectInducedShared(ctx, c, "cap", 1.0, 5)
			if err != nil {
				return err
			}
			// 3 players × cap 5 = at most 15 distinct edges.
			if len(es) > 15 {
				return fmt.Errorf("cap not enforced: %d edges", len(es))
			}
			return nil
		}, comm.ServeLoop(Handle))
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectCrossShared(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	g := graph.ErdosRenyi(80, 0.2, rng)
	shared := xrand.New(18)
	p := partition.Disjoint{}.Split(g, 4, shared)
	const pR, pS = 0.3, 0.5
	var got []wire.Edge
	_, err := comm.Run(context.Background(), comm.Config{N: g.N(), Inputs: p.Inputs, Shared: shared},
		func(ctx context.Context, c *comm.Coordinator) error {
			es, err := CollectCrossShared(ctx, c, "R", "S", pR, pS, 0)
			if err != nil {
				return err
			}
			got = es
			return nil
		}, comm.ServeLoop(Handle))
	if err != nil {
		t.Fatal(err)
	}
	keyR := shared.Key("vsample/R")
	keyS := shared.Key("vsample/S")
	want := map[wire.Edge]bool{}
	for _, e := range CrossSampleEdges(g.Edges(), keyR, keyS, pR, pS) {
		want[e.Canon()] = true
	}
	if len(got) != len(want) {
		t.Fatalf("collected %d, want %d", len(got), len(want))
	}
	for _, e := range got {
		if !want[e.Canon()] {
			t.Fatalf("unexpected edge %v", e)
		}
	}
}

func TestCrossSampleEdgesFilter(t *testing.T) {
	keyR := xrand.New(1).Key("r")
	keyS := xrand.New(1).Key("s")
	edges := []wire.Edge{{U: 1, V: 2}, {U: 3, V: 4}, {U: 5, V: 6}}
	out := CrossSampleEdges(edges, keyR, keyS, 1.0, 0.0)
	if len(out) != 3 {
		t.Fatalf("pR=1 should keep all edges, kept %d", len(out))
	}
	out = CrossSampleEdges(edges, keyR, keyS, 0.0, 1.0)
	if len(out) != 0 {
		t.Fatalf("pR=0 should drop all edges, kept %d", len(out))
	}
}

func TestIncidentSampleAndCloseStar(t *testing.T) {
	// Dense-core hub: sampling its arms with decent probability exposes a
	// vee, and CloseStar must complete the triangle.
	rng := rand.New(rand.NewSource(19))
	gp := graph.DenseCoreParams{N: 300, Hubs: 1, Pairs: 40}
	g := graph.PlantedDenseCore(gp, rng)
	hub := -1
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 2*gp.Pairs {
			hub = v
			break
		}
	}
	if hub < 0 {
		t.Fatal("no hub found")
	}
	found := false
	runCoord(t, g, partition.Duplicate{Q: 0.3}, 4, 19, func(ctx context.Context, c *comm.Coordinator) error {
		for trial := 0; trial < 10 && !found; trial++ {
			arms, err := CollectIncidentSample(ctx, c, hub, 0.5, 0, fmt.Sprintf("s%d", trial))
			if err != nil {
				return err
			}
			tri, ok, err := CloseStar(ctx, c, hub, arms)
			if err != nil {
				return err
			}
			if ok {
				if !g.IsTriangle(tri.A, tri.B, tri.C) {
					return fmt.Errorf("reported non-triangle %v", tri)
				}
				found = true
			}
		}
		return nil
	})
	if !found {
		t.Fatal("no triangle found at hub in 10 attempts")
	}
}

func TestCloseStarNoTriangle(t *testing.T) {
	g := graph.Star(12)
	runCoord(t, g, partition.Disjoint{}, 3, 20, func(ctx context.Context, c *comm.Coordinator) error {
		arms := []int{1, 2, 3, 4, 5}
		_, ok, err := CloseStar(ctx, c, 0, arms)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("triangle reported in star")
		}
		return nil
	})
}

func TestSampleUniformCandidate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.BucketStress(graph.BucketStressParams{N: 1200, Levels: 4, HubsPer: 3, TriLevel: 2}, rng)
	const k = 4
	// Hubs of level 2 have degree 18 → bucket Index(18) = 3.
	bIdx := bucket.Index(18)
	members := map[int]bool{}
	for v := 0; v < g.N(); v++ {
		if bucket.Index(g.Degree(v)) == bIdx {
			members[v] = true
		}
	}
	if len(members) == 0 {
		t.Fatal("no bucket members")
	}
	sampled := map[int]bool{}
	runCoord(t, g, partition.Duplicate{Q: 0.2}, k, 21, func(ctx context.Context, c *comm.Coordinator) error {
		for i := 0; i < 400; i++ {
			v, ok, err := SampleUniformCandidate(ctx, c, bIdx, fmt.Sprintf("c%d", i))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("no candidate")
			}
			// Candidate must have true degree ≥ d⁻(B)/k (it is in some B̃ᵢʲ).
			if float64(g.Degree(v)) < float64(bucket.DegMin(bIdx))/float64(k) {
				return fmt.Errorf("candidate %d degree %d below floor", v, g.Degree(v))
			}
			sampled[v] = true
		}
		return nil
	})
	// Every true bucket member should appear among 400 samples of the
	// candidate superset with overwhelming probability (superset is small).
	for v := range members {
		if !sampled[v] {
			t.Errorf("bucket member %d never sampled", v)
		}
	}
}

func TestHandleRejectsGarbage(t *testing.T) {
	g := graph.Complete(4)
	shared := xrand.New(22)
	p := partition.Disjoint{}.Split(g, 2, shared)
	_, err := comm.Run(context.Background(), comm.Config{N: g.N(), Inputs: p.Inputs, Shared: shared},
		func(ctx context.Context, c *comm.Coordinator) error {
			var w wire.Writer
			w.WriteUvarint(9999) // unknown opcode
			_, err := c.Ask(ctx, 0, comm.FromWriter(&w))
			return err
		}, comm.ServeLoop(Handle))
	if err == nil {
		t.Fatal("garbage opcode accepted")
	}
}

func TestBlocksCostScalesWithK(t *testing.T) {
	// EdgeQuery cost is Θ(k·log n): doubling k roughly doubles bits.
	g := graph.Complete(64)
	cost := func(k int) int64 {
		var bits int64
		s := runCoord(t, g, partition.Disjoint{}, k, 23, func(ctx context.Context, c *comm.Coordinator) error {
			_, err := EdgeQuery(ctx, c, wire.Edge{U: 1, V: 2})
			return err
		})
		bits = s.TotalBits
		return bits
	}
	c4, c8 := cost(4), cost(8)
	if c8 < 3*c4/2 || c8 > 3*c4 {
		t.Fatalf("cost(8)=%d not ~2×cost(4)=%d", c8, c4)
	}
}
