package blocks

import (
	"context"
	"fmt"
	"math"

	"tricomm/internal/bucket"
	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/parwork"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// CollectInducedShared gathers the subgraph induced by the shared
// Bernoulli(p) vertex sample S(tag): every player sends its edges with
// both endpoints in S, truncated to capPerPlayer edges if positive (the
// paper's message caps). S itself costs no communication — it is a pure
// function of the shared randomness. Cost Θ(k·|answer|·log n) up.
func CollectInducedShared(ctx context.Context, c *comm.Coordinator, tag string, p float64, capPerPlayer int) ([]wire.Edge, error) {
	w := reqWriter(opCollectInduced)
	w.WriteUint(floatBits(p), 64)
	w.WriteUvarint(uint64(capAsU64(capPerPlayer)))
	w.WriteBytes([]byte(tag))
	replies, err := c.AskAll(ctx, comm.FromWriter(w))
	if err != nil {
		return nil, err
	}
	return decodeEdgeUnion(c.N, replies)
}

func handleCollectInduced(p *comm.Player, r *wire.Reader) (comm.Msg, error) {
	prob, cap64, tag, err := readProbCapTag(r)
	if err != nil {
		return comm.Msg{}, err
	}
	key := p.Shared.Key("vsample/" + tag)
	// Bernoulli is a pure point query of the shared key, so the filter can
	// fan across workers; parwork.Filter preserves input order, which makes
	// the kept set (and the truncation below) bit-identical to the serial
	// append loop at any width.
	done := parRegion(p)
	out := parwork.Filter(p.Workers, p.Edges, func(_ int, e wire.Edge) bool {
		return key.Bernoulli(uint64(e.U), prob) && key.Bernoulli(uint64(e.V), prob)
	})
	done()
	out = truncate(out, cap64)
	var w wire.Writer
	if err := wire.NewEdgeCodec(p.N).PutEdgeList(&w, out); err != nil {
		return comm.Msg{}, err
	}
	return comm.FromWriter(&w), nil
}

// CollectCrossShared gathers all edges with one endpoint in the shared
// sample R(tagR, pR) and the other in R ∪ S(tagS, pS) — the edge set of
// the low-degree simultaneous tester (Algorithm 8), exposed here for
// interactive use as well.
func CollectCrossShared(ctx context.Context, c *comm.Coordinator, tagR, tagS string, pR, pS float64, capPerPlayer int) ([]wire.Edge, error) {
	w := reqWriter(opCollectCross)
	w.WriteUint(floatBits(pR), 64)
	w.WriteUint(floatBits(pS), 64)
	w.WriteUvarint(uint64(capAsU64(capPerPlayer)))
	w.WriteUvarint(uint64(len(tagR)))
	w.WriteBytes([]byte(tagR))
	w.WriteBytes([]byte(tagS))
	replies, err := c.AskAll(ctx, comm.FromWriter(w))
	if err != nil {
		return nil, err
	}
	return decodeEdgeUnion(c.N, replies)
}

func handleCollectCross(p *comm.Player, r *wire.Reader) (comm.Msg, error) {
	pR, err := readFloat(r)
	if err != nil {
		return comm.Msg{}, err
	}
	pS, err := readFloat(r)
	if err != nil {
		return comm.Msg{}, err
	}
	cap64, err := r.ReadUvarint()
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	lenR, err := r.ReadUvarint()
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	tagRBytes, err := r.ReadBytes(int(lenR))
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	tagSBytes, err := r.ReadBytes(r.Remaining() / 8)
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	done := parRegion(p)
	out := CrossSampleEdgesN(p.Edges, p.Shared.Key("vsample/"+string(tagRBytes)),
		p.Shared.Key("vsample/"+string(tagSBytes)), pR, pS, p.Workers)
	done()
	out = truncate(out, cap64)
	var w wire.Writer
	if err := wire.NewEdgeCodec(p.N).PutEdgeList(&w, out); err != nil {
		return comm.Msg{}, err
	}
	return comm.FromWriter(&w), nil
}

// CrossSampleEdges filters edges to those with one endpoint in the
// Bernoulli sample R = keyR(pR) and the other in R ∪ S, S = keyS(pS).
// Exported for reuse by the simultaneous protocols, which apply the same
// filter player-side.
func CrossSampleEdges(edges []wire.Edge, keyR, keyS xrand.Key, pR, pS float64) []wire.Edge {
	return CrossSampleEdgesN(edges, keyR, keyS, pR, pS, 1)
}

// CrossSampleEdgesN is CrossSampleEdges fanned across up to workers
// goroutines. Both membership tests are pure point queries of shared
// keys and the filter preserves input order, so the output is
// bit-identical to the serial loop at any width.
func CrossSampleEdgesN(edges []wire.Edge, keyR, keyS xrand.Key, pR, pS float64, workers int) []wire.Edge {
	inR := func(v int) bool { return keyR.Bernoulli(uint64(v), pR) }
	inS := func(v int) bool { return keyS.Bernoulli(uint64(v), pS) }
	return parwork.Filter(workers, edges, func(_ int, e wire.Edge) bool {
		ru, rv := inR(e.U), inR(e.V)
		return (ru && rv) || (ru && inS(e.V)) || (rv && inS(e.U))
	})
}

// CollectIncidentSample gathers the sampled star around v: every player
// sends the neighbors u of v in its input with u in the shared
// Bernoulli(prob) sample under tag, truncated to capPerPlayer. This is
// SampleEdges (Algorithm 4): for a full vertex the sampled arms contain a
// triangle-vee with high probability (Lemma 3.9, the extended birthday
// paradox).
func CollectIncidentSample(ctx context.Context, c *comm.Coordinator, v int, prob float64, capPerPlayer int, tag string) ([]int, error) {
	w := reqWriter(opCollectIncidentSample)
	if err := wire.NewVertexCodec(c.N).Put(w, v); err != nil {
		return nil, err
	}
	w.WriteUint(floatBits(prob), 64)
	w.WriteUvarint(uint64(capAsU64(capPerPlayer)))
	w.WriteBytes([]byte(tag))
	replies, err := c.AskAll(ctx, comm.FromWriter(w))
	if err != nil {
		return nil, err
	}
	vc := wire.NewVertexCodec(c.N)
	seen := map[int]bool{}
	var arms []int
	for _, m := range replies {
		vs, err := vc.GetVertexList(m.Reader())
		if err != nil {
			return nil, err
		}
		for _, u := range vs {
			if !seen[u] {
				seen[u] = true
				arms = append(arms, u)
			}
		}
	}
	return arms, nil
}

func handleCollectIncidentSample(p *comm.Player, r *wire.Reader) (comm.Msg, error) {
	vc := wire.NewVertexCodec(p.N)
	v, err := vc.Get(r)
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	prob, err := readFloat(r)
	if err != nil {
		return comm.Msg{}, err
	}
	cap64, err := r.ReadUvarint()
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	tagBytes, err := r.ReadBytes(r.Remaining() / 8)
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	key := p.Shared.Key("star/" + string(tagBytes))
	done := parRegion(p)
	kept := parwork.Filter(p.Workers, p.View.Neighbors(v), func(_ int, u int32) bool {
		return key.Bernoulli(uint64(u), prob)
	})
	done()
	var arms []int
	if len(kept) > 0 {
		arms = make([]int, len(kept))
		for i, u := range kept {
			arms[i] = int(u)
		}
	}
	if cap64 > 0 && uint64(len(arms)) > cap64 {
		arms = arms[:cap64]
	}
	var w wire.Writer
	if err := vc.PutVertexList(&w, arms); err != nil {
		return comm.Msg{}, err
	}
	return comm.FromWriter(&w), nil
}

// CloseStar broadcasts the sampled arms around v and asks every player
// whether its input closes a triangle-vee: an edge {u1, u2} between two
// arms yields the triangle (v, u1, u2). This is the interactive step that
// distinguishes the coordinator model from the query model (§3.3): a vee
// in hand is a triangle found.
func CloseStar(ctx context.Context, c *comm.Coordinator, v int, arms []int) (graph.Triangle, bool, error) {
	w := reqWriter(opCloseVees)
	vc := wire.NewVertexCodec(c.N)
	if err := vc.Put(w, v); err != nil {
		return graph.Triangle{}, false, err
	}
	if err := vc.PutVertexList(w, arms); err != nil {
		return graph.Triangle{}, false, err
	}
	replies, err := c.AskAll(ctx, comm.FromWriter(w))
	if err != nil {
		return graph.Triangle{}, false, err
	}
	for _, m := range replies {
		r := m.Reader()
		has, err := r.ReadBool()
		if err != nil {
			return graph.Triangle{}, false, err
		}
		if !has {
			continue
		}
		u1, err := vc.Get(r)
		if err != nil {
			return graph.Triangle{}, false, err
		}
		u2, err := vc.Get(r)
		if err != nil {
			return graph.Triangle{}, false, err
		}
		return graph.Triangle{A: v, B: u1, C: u2}.Canon(), true, nil
	}
	return graph.Triangle{}, false, nil
}

func handleCloseVees(p *comm.Player, r *wire.Reader) (comm.Msg, error) {
	vc := wire.NewVertexCodec(p.N)
	// The star center is decoded for protocol shape but only the arms
	// matter for closing.
	if _, err := vc.Get(r); err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	arms, err := vc.GetVertexList(r)
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var w wire.Writer
	// Same first-hit contract as the former nested HasEdge loop;
	// FirstArmPairN fans the outer scan across the player's workers with
	// the serial-first-hit reduction, so the witness pair is identical at
	// any width.
	done := parRegion(p)
	u1, u2, ok := p.View.FirstArmPairN(arms, p.Workers)
	done()
	if ok {
		w.WriteBool(true)
		if err := vc.Put(&w, u1); err != nil {
			return comm.Msg{}, err
		}
		if err := vc.Put(&w, u2); err != nil {
			return comm.Msg{}, err
		}
		return comm.FromWriter(&w), nil
	}
	w.WriteBool(false)
	return comm.FromWriter(&w), nil
}

// SampleUniformCandidate implements SampleUniformFromB̃ᵢ (Algorithm 1):
// all parties derive a shared random order on V; each player sends its
// first vertex (under that order) among its local candidates B̃ᵢʲ for
// bucket i, and the coordinator returns the global first — a uniform
// sample from B̃ᵢ = ⋃_j B̃ᵢʲ, unbiased by how many players know each
// vertex. Returns ok=false if no player has candidates.
func SampleUniformCandidate(ctx context.Context, c *comm.Coordinator, bucketIdx int, tag string) (int, bool, error) {
	w := reqWriter(opCandidateMinRank)
	w.WriteUvarint(uint64(bucketIdx))
	w.WriteBytes([]byte(tag))
	replies, err := c.AskAll(ctx, comm.FromWriter(w))
	if err != nil {
		return 0, false, err
	}
	key := c.Shared.Key("cand/" + tag)
	vc := wire.NewVertexCodec(c.N)
	best, found := -1, false
	for _, m := range replies {
		r := m.Reader()
		has, err := r.ReadBool()
		if err != nil {
			return 0, false, err
		}
		if !has {
			continue
		}
		v, err := vc.Get(r)
		if err != nil {
			return 0, false, err
		}
		if !found || key.Before(uint64(v), uint64(best)) {
			best, found = v, true
		}
	}
	return best, found, nil
}

func handleCandidateMinRank(p *comm.Player, r *wire.Reader) (comm.Msg, error) {
	bucketIdx, err := r.ReadUvarint()
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	tagBytes, err := r.ReadBytes(r.Remaining() / 8)
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	key := p.Shared.Key("cand/" + string(tagBytes))
	// Fused candidate-scan + min-rank: no candidate slice, and the vertex
	// scan fans across the player's workers (chunk-local minima folded in
	// chunk order under the Before total order — same winner at any width).
	done := parRegion(p)
	best, found := bucket.MinRankCandidate(p.View, int(bucketIdx), p.K, key, p.Workers)
	done()
	var w wire.Writer
	w.WriteBool(found)
	if found {
		if err := wire.NewVertexCodec(p.N).Put(&w, best); err != nil {
			return comm.Msg{}, err
		}
	}
	return comm.FromWriter(&w), nil
}

// --- small shared helpers ---

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func readFloat(r *wire.Reader) (float64, error) {
	b, err := r.ReadUint(64)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return math.Float64frombits(b), nil
}

func readProbCapTag(r *wire.Reader) (prob float64, cap64 uint64, tag string, err error) {
	prob, err = readFloat(r)
	if err != nil {
		return 0, 0, "", err
	}
	cap64, err = r.ReadUvarint()
	if err != nil {
		return 0, 0, "", fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	tagBytes, err := r.ReadBytes(r.Remaining() / 8)
	if err != nil {
		return 0, 0, "", fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return prob, cap64, string(tagBytes), nil
}

func capAsU64(c int) uint64 {
	if c <= 0 {
		return 0
	}
	return uint64(c)
}

func truncate(edges []wire.Edge, cap64 uint64) []wire.Edge {
	if cap64 > 0 && uint64(len(edges)) > cap64 {
		return edges[:cap64]
	}
	return edges
}

func decodeEdgeUnion(n int, replies []comm.Msg) ([]wire.Edge, error) {
	ec := wire.NewEdgeCodec(n)
	seen := map[wire.Edge]bool{}
	var out []wire.Edge
	for _, m := range replies {
		es, err := ec.GetEdgeList(m.Reader())
		if err != nil {
			return nil, err
		}
		for _, e := range es {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	return out, nil
}
