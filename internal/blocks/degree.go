package blocks

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"tricomm/internal/comm"
	"tricomm/internal/parwork"
	"tricomm/internal/wire"
)

// ApproxParams tunes the duplication-tolerant cardinality estimator of
// Theorem 3.1. The defaults give a 4-approximation with small constant
// error; tests and benches may trade experiments for accuracy.
type ApproxParams struct {
	// Alpha > 1 is the approximation ratio target. The estimator returns a
	// value in [true/Alpha, Alpha·true] with probability ≥ 1-Tau.
	Alpha float64
	// Tau is the failure probability target.
	Tau float64
	// Tag scopes the shared randomness; distinct invocations must use
	// distinct tags.
	Tag string
}

// DefaultApprox returns the default estimator parameters (α = 4,
// τ = 0.05) under the given randomness tag.
func DefaultApprox(tag string) ApproxParams {
	return ApproxParams{Alpha: 4, Tau: 0.05, Tag: tag}
}

// experiments returns the per-round experiment count m: by a Chernoff
// bound, m = O(log(rounds/τ)) experiments separate the stop/continue
// success rates, whose gap is a constant for α ≥ 4 (see the analysis in
// Theorem 3.1: for guesses above α·true the success rate is ≤ 1/α, while
// the first guess below true/√α succeeds with rate ≥ 1-e^{-√α}).
func (p ApproxParams) experiments(rounds int) int {
	tau := p.Tau
	if tau <= 0 || tau >= 1 {
		tau = 0.05
	}
	if rounds < 1 {
		rounds = 1
	}
	// Deviation margin 0.1 on the success fraction; fail prob per round
	// 2·exp(-2·0.01·m) ≤ tau/rounds.
	m := int(math.Ceil(math.Log(2*float64(rounds)/tau) / 0.02))
	if m < 16 {
		m = 16
	}
	return m
}

func (p ApproxParams) validate() error {
	if p.Alpha <= 1 {
		return fmt.Errorf("blocks: Alpha must exceed 1, got %v", p.Alpha)
	}
	if p.Tag == "" {
		return fmt.Errorf("blocks: ApproxParams requires a Tag")
	}
	return nil
}

// ApproxDegree estimates deg(v) in the union graph within a factor of
// prm.Alpha, tolerating arbitrary edge duplication across players
// (Theorem 3.1). The protocol has two phases:
//
//  1. MSB round: every player sends the bit-length of its local degree
//     d_j(v) (Θ(log log n) bits); their sum of powers of two d′ brackets
//     deg(v) within a 2k factor.
//  2. Guess halving: guesses d″ descend from d′ by factors of √α. Each
//     round runs m shared-randomness sampling experiments — sample each
//     potential neighbor with probability 1/d″, players answer one bit per
//     experiment ("did my input hit the sample?") — and stops at the first
//     guess whose OR-success count clears the threshold.
//
// Cost Θ(k·log log n + k·log k·m). Returns 0 if v is isolated.
func ApproxDegree(ctx context.Context, c *comm.Coordinator, v int, prm ApproxParams) (float64, error) {
	return approxCardinality(ctx, c, modeDegree, v, uint64(c.N), prm)
}

// ApproxDistinctEdges estimates |E| = |⋃_j E_j| within a factor of
// prm.Alpha under duplication — the "distinct elements" corollary of
// Theorem 3.1, with the edge set as the universe.
func ApproxDistinctEdges(ctx context.Context, c *comm.Coordinator, prm ApproxParams) (float64, error) {
	universe := uint64(c.N) * uint64(c.N)
	return approxCardinality(ctx, c, modeEdges, 0, universe, prm)
}

// approxCardinality is the common estimator core over an abstract element
// universe.
func approxCardinality(ctx context.Context, c *comm.Coordinator, mode countMode, v int, universe uint64, prm ApproxParams) (float64, error) {
	if err := prm.validate(); err != nil {
		return 0, err
	}
	// Phase 1: MSB exchange.
	w := reqWriter(opCountMSB)
	w.WriteUvarint(uint64(mode))
	w.WriteUvarint(uint64(v))
	replies, err := c.AskAll(ctx, comm.FromWriter(w))
	if err != nil {
		return 0, err
	}
	var dPrime float64
	for _, m := range replies {
		blen, err := m.Reader().ReadGamma() // bit length + 1 (so 0 count encodes as 1)
		if err != nil {
			return 0, err
		}
		if blen > 1 {
			dPrime += math.Pow(2, float64(blen-1))
		}
	}
	if dPrime == 0 {
		return 0, nil
	}
	// dPrime/(2k) ≤ true ≤ dPrime. Descend by √α per round.
	sqrtA := math.Sqrt(prm.Alpha)
	rounds := int(math.Ceil(math.Log(2*float64(c.K)*prm.Alpha)/math.Log(sqrtA))) + 2
	m := prm.experiments(rounds)
	guess := dPrime
	for r := 0; r < rounds && guess > 1; r++ {
		succ, err := sampleRound(ctx, c, mode, v, prm.Tag, r, m, guess)
		if err != nil {
			return 0, err
		}
		// Expected success fraction if guess were exact.
		f := 1 - math.Pow(1-1/guess, guess)
		if float64(succ) >= 0.6*f*float64(m) {
			return guess, nil
		}
		guess /= sqrtA
	}
	// Fell through the whole bracket: the count is at most ~√α, return the
	// final guess without an experiment (as in the paper).
	return guess, nil
}

// sampleRound runs one guessing round of m experiments and returns the
// number of experiments in which at least one player's input intersected
// the shared sample.
func sampleRound(ctx context.Context, c *comm.Coordinator, mode countMode, v int, tag string, round, m int, guess float64) (int, error) {
	w := reqWriter(opSampleTest)
	w.WriteUvarint(uint64(mode))
	w.WriteUvarint(uint64(v))
	w.WriteUvarint(uint64(round))
	w.WriteUvarint(uint64(m))
	// The guess must be bit-identical on all parties; ship its float bits.
	w.WriteUint(math.Float64bits(guess), 64)
	w.WriteBytes([]byte(tag))
	replies, err := c.AskAll(ctx, comm.FromWriter(w))
	if err != nil {
		return 0, err
	}
	hits := make([][]bool, len(replies))
	for j, msg := range replies {
		r := msg.Reader()
		hits[j] = make([]bool, m)
		for i := 0; i < m; i++ {
			b, err := r.ReadBool()
			if err != nil {
				return 0, err
			}
			hits[j][i] = b
		}
	}
	succ := 0
	for i := 0; i < m; i++ {
		for j := range hits {
			if hits[j][i] {
				succ++
				break
			}
		}
	}
	return succ, nil
}

func handleCountMSB(p *comm.Player, r *wire.Reader) (comm.Msg, error) {
	mode, v, err := readModeVertex(r)
	if err != nil {
		return comm.Msg{}, err
	}
	count := len(localElements(p, mode, v))
	var w wire.Writer
	w.WriteGamma(uint64(bits.Len(uint(count))) + 1)
	return comm.FromWriter(&w), nil
}

func handleSampleTest(p *comm.Player, r *wire.Reader) (comm.Msg, error) {
	mode, v, err := readModeVertex(r)
	if err != nil {
		return comm.Msg{}, err
	}
	round, err := r.ReadUvarint()
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	m, err := r.ReadUvarint()
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	guessBits, err := r.ReadUint(64)
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	guess := math.Float64frombits(guessBits)
	if guess < 1 || math.IsNaN(guess) || math.IsInf(guess, 0) {
		return comm.Msg{}, fmt.Errorf("%w: bad guess %v", ErrBadRequest, guess)
	}
	tagBytes, err := r.ReadBytes(r.Remaining() / 8)
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	elems := localElements(p, mode, v)
	prob := 1 / guess
	// The m experiments are independent — each derives its own key from the
	// shared randomness and scans the player's elements — so they fan
	// across the player's workers, each writing only its own hits slot. The
	// reply bits are then emitted serially in experiment order, identical
	// to the serial loop at any width.
	mi := int(m)
	hits := make([]bool, mi)
	done := parRegion(p)
	parwork.ForEach(p.Workers, mi, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			key := p.Shared.Key(fmt.Sprintf("approx/%s/%d/%d/%d/%d", tagBytes, mode, v, round, i))
			for _, e := range elems {
				if key.Bernoulli(e, prob) {
					hits[i] = true
					break
				}
			}
		}
	})
	done()
	var w wire.Writer
	for i := 0; i < mi; i++ {
		w.WriteBool(hits[i])
	}
	return comm.FromWriter(&w), nil
}

func readModeVertex(r *wire.Reader) (countMode, int, error) {
	modeU, err := r.ReadUvarint()
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	v, err := r.ReadUvarint()
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return countMode(modeU), int(v), nil
}

// ApproxDegreeNoDup estimates deg(v) when the players' inputs are promised
// disjoint (Lemma 3.2): every player sends the top bits of its local count
// plus the cutoff exponent, the coordinator sums the truncations. The
// result under-counts by at most a (1+2^{-topBits}) factor — a
// deterministic O(k·log log n)-bit protocol.
func ApproxDegreeNoDup(ctx context.Context, c *comm.Coordinator, v int, topBits int) (float64, error) {
	if topBits < 1 {
		return 0, fmt.Errorf("blocks: topBits must be ≥ 1, got %d", topBits)
	}
	w := reqWriter(opCountTopBits)
	w.WriteUvarint(uint64(modeDegree))
	w.WriteUvarint(uint64(v))
	w.WriteUvarint(uint64(topBits))
	replies, err := c.AskAll(ctx, comm.FromWriter(w))
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, m := range replies {
		r := m.Reader()
		blen, err := r.ReadGamma()
		if err != nil {
			return 0, err
		}
		if blen == 1 {
			continue // zero local count
		}
		nbits := int(blen - 1)
		keep := topBits
		if keep > nbits {
			keep = nbits
		}
		top, err := r.ReadUint(keep)
		if err != nil {
			return 0, err
		}
		total += float64(top) * math.Pow(2, float64(nbits-keep))
	}
	return total, nil
}

func handleCountTopBits(p *comm.Player, r *wire.Reader) (comm.Msg, error) {
	mode, v, err := readModeVertex(r)
	if err != nil {
		return comm.Msg{}, err
	}
	topBits, err := r.ReadUvarint()
	if err != nil {
		return comm.Msg{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	count := uint(len(localElements(p, mode, v)))
	nbits := bits.Len(count)
	var w wire.Writer
	w.WriteGamma(uint64(nbits) + 1)
	if nbits > 0 {
		keep := int(topBits)
		if keep > nbits {
			keep = nbits
		}
		w.WriteUint(uint64(count)>>uint(nbits-keep), keep)
	}
	return comm.FromWriter(&w), nil
}
