package streamred

import (
	"math/rand"
	"testing"

	"tricomm/internal/lowerbound"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// muStream orders a µ instance Alice → Bob → Charlie, so all wedge edges
// precede the closing edges.
func muStream(inst lowerbound.MuInstance) Stream {
	var s Stream
	s.Edges = append(s.Edges, inst.Alice...)
	s.Cuts = append(s.Cuts, len(s.Edges))
	s.Edges = append(s.Edges, inst.Bob...)
	s.Cuts = append(s.Cuts, len(s.Edges))
	s.Edges = append(s.Edges, inst.Charlie...)
	return s
}

func TestStarDetectorFindsTriangleEdge(t *testing.T) {
	// A star detector centered on a vertex of U with full cap must certify
	// a triangle edge on most µ samples.
	wins := 0
	const trials = 15
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: 200, Gamma: 2.5}, rng)
		d := NewStarDetector(xrand.New(uint64(seed)), inst.NPart, inst.N(), inst.N())
		e, ok := Drive(d, muStream(inst))
		if !ok {
			continue
		}
		if !inst.IsValidOutput(e) {
			t.Fatalf("seed %d: invalid output %v", seed, e)
		}
		wins++
	}
	if wins < 10 {
		t.Fatalf("full-cap star detector succeeded only %d/%d", wins, trials)
	}
}

func TestStarDetectorSpaceThreshold(t *testing.T) {
	// Success rises with the arm cap; small caps fail, large caps succeed.
	const trials = 20
	rate := func(cap int) int {
		wins := 0
		for seed := int64(0); seed < trials; seed++ {
			rng := rand.New(rand.NewSource(seed))
			inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: 250, Gamma: 2}, rng)
			d := NewStarDetector(xrand.New(uint64(seed)+7), inst.NPart, cap, inst.N())
			if _, ok := Drive(d, muStream(inst)); ok {
				wins++
			}
		}
		return wins
	}
	small, large := rate(2), rate(64)
	if large < 14 {
		t.Fatalf("large-cap success %d/%d", large, trials)
	}
	if small >= large {
		t.Fatalf("no space threshold: cap=2 → %d, cap=64 → %d", small, large)
	}
}

func TestStarDetectorSpaceAccounting(t *testing.T) {
	d := NewStarDetector(xrand.New(1), 100, 16, 1024)
	want := 10*(1+16) + 2*10
	if d.SpaceBits() != want {
		t.Fatalf("SpaceBits = %d, want %d", d.SpaceBits(), want)
	}
}

func TestStarDetectorCapRespected(t *testing.T) {
	d := &StarDetector{Center: 0, Cap: 3, VertexBits: 8, arms: map[int]bool{}}
	for v := 1; v <= 10; v++ {
		d.Observe(wire.Edge{U: 0, V: v})
	}
	if len(d.arms) > 3 {
		t.Fatalf("stored %d arms, cap 3", len(d.arms))
	}
}

func TestStarDetectorStopsAfterFound(t *testing.T) {
	d := &StarDetector{Center: 0, Cap: 10, VertexBits: 8, arms: map[int]bool{}}
	d.Observe(wire.Edge{U: 0, V: 1})
	d.Observe(wire.Edge{U: 0, V: 2})
	d.Observe(wire.Edge{U: 1, V: 2})
	e, ok := d.Output()
	if !ok || e != (wire.Edge{U: 1, V: 2}) {
		t.Fatalf("output = %v, %v", e, ok)
	}
	// Later edges must not overwrite the certificate.
	d.Observe(wire.Edge{U: 0, V: 3})
	d.Observe(wire.Edge{U: 0, V: 4})
	d.Observe(wire.Edge{U: 3, V: 4})
	if e2, _ := d.Output(); e2 != e {
		t.Fatal("certificate overwritten")
	}
}

func TestReservoirDetectorValidity(t *testing.T) {
	// Whatever the reservoir detector outputs must close a genuine wedge —
	// and on a triangle-rich deterministic stream it must find something.
	var s Stream
	// Triangle fan: center 0, arms 1..20 plus closing edges.
	for v := 1; v <= 20; v++ {
		s.Edges = append(s.Edges, wire.Edge{U: 0, V: v})
	}
	for v := 1; v+1 <= 20; v += 2 {
		s.Edges = append(s.Edges, wire.Edge{U: v, V: v + 1})
	}
	d := NewReservoirDetector(xrand.New(3), 40, 21)
	e, ok := Drive(d, s)
	if !ok {
		t.Fatal("reservoir detector with ample space found nothing")
	}
	// Output must be one of the closing edges.
	if e.U == 0 || e.V == 0 {
		t.Fatalf("output %v is a wedge edge, not a closer", e)
	}
}

func TestReservoirWeakerThanStar(t *testing.T) {
	// At equal space, the star detector beats the naive reservoir on µ —
	// the "cleverness, not space" point of the reduction discussion.
	const trials = 15
	starWins, resWins := 0, 0
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: 250, Gamma: 2}, rng)
		stream := muStream(inst)
		star := NewStarDetector(xrand.New(uint64(seed)), inst.NPart, 24, inst.N())
		if _, ok := Drive(star, stream); ok {
			starWins++
		}
		// Match the reservoir's space to the star's.
		capEdges := star.SpaceBits() / (2 * 10)
		res := NewReservoirDetector(xrand.New(uint64(seed)), capEdges, inst.N())
		if _, ok := Drive(res, stream); ok {
			resWins++
		}
	}
	if starWins <= resWins {
		t.Fatalf("star %d vs reservoir %d — no advantage", starWins, resWins)
	}
}

func TestDetectorPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cap 0 did not panic")
		}
	}()
	NewStarDetector(xrand.New(1), 10, 0, 100)
}

func TestReservoirPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cap 0 did not panic")
		}
	}()
	NewReservoirDetector(xrand.New(1), 0, 100)
}
