// Package streamred realizes the streaming corollary of §4.2.2: one-way
// communication lower bounds transfer to one-pass streaming space lower
// bounds via the standard AMS reduction (split the stream at the player
// boundaries; the memory contents crossing each boundary are the one-way
// messages).
//
// The package provides one-pass bounded-space triangle-edge detectors and
// a stream adapter for µ instances, ordered Alice → Bob → Charlie so that
// the stream cut points coincide with the players' input boundaries. The
// StarDetector mirrors the one-way star strategy and reaches constant
// success probability at space Θ̃(n^{1/4}) on µ — matching the Ω(n^{1/4})
// bound's scale — while the naive reservoir detector needs far more.
package streamred

import (
	"fmt"

	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// Detector is a one-pass streaming algorithm for triangle-edge detection.
type Detector interface {
	// Observe processes the next stream edge.
	Observe(e wire.Edge)
	// Output returns a claimed triangle edge, if any was certified.
	Output() (wire.Edge, bool)
	// SpaceBits reports the maximum memory footprint in bits (state that
	// would cross a stream cut), per the reduction's accounting.
	SpaceBits() int
}

// Stream is an ordered edge sequence with cut points.
type Stream struct {
	// Edges is the full sequence.
	Edges []wire.Edge
	// Cuts are indices where one "player's" segment ends (for the one-way
	// reduction accounting); informational.
	Cuts []int
}

// Drive runs a detector over the stream and returns its output.
func Drive(d Detector, s Stream) (wire.Edge, bool) {
	for _, e := range s.Edges {
		d.Observe(e)
	}
	return d.Output()
}

// StarDetector implements the space-efficient strategy mirroring the
// one-way star protocol: shared randomness fixes a center u*; the
// detector stores up to Cap arms {u*, v} seen in the stream and certifies
// any later edge {v1, v2} whose both endpoints are stored arms. On µ
// streams (wedge edges before closing edges) it reaches constant success
// at Cap ≈ n^{1/4}·polylog.
type StarDetector struct {
	// Center is the star center u*.
	Center int
	// Cap bounds the number of stored arms.
	Cap int
	// VertexBits is the id width used for space accounting.
	VertexBits int

	arms  map[int]bool
	found wire.Edge
	ok    bool
}

// NewStarDetector creates a detector with center drawn from the shared
// randomness over [0, centerRange).
func NewStarDetector(shared *xrand.Shared, centerRange, capArms, n int) *StarDetector {
	if capArms < 1 {
		panic(fmt.Sprintf("streamred: cap must be positive, got %d", capArms))
	}
	center := int(shared.Key("streamred/center").Hash(0) % uint64(centerRange))
	return &StarDetector{
		Center:     center,
		Cap:        capArms,
		VertexBits: wire.BitsFor(n),
		arms:       make(map[int]bool, capArms),
	}
}

var _ Detector = (*StarDetector)(nil)

// Observe implements Detector.
func (d *StarDetector) Observe(e wire.Edge) {
	if d.ok {
		return
	}
	if e.U == d.Center || e.V == d.Center {
		if len(d.arms) < d.Cap {
			d.arms[e.Other(d.Center)] = true
		}
		return
	}
	if d.arms[e.U] && d.arms[e.V] {
		d.found = e.Canon()
		d.ok = true
	}
}

// Output implements Detector.
func (d *StarDetector) Output() (wire.Edge, bool) { return d.found, d.ok }

// SpaceBits implements Detector: center + up to Cap arm ids + the output
// edge.
func (d *StarDetector) SpaceBits() int {
	return d.VertexBits*(1+d.Cap) + 2*d.VertexBits
}

// ReservoirDetector is the naive baseline: a uniform reservoir of stream
// edges; an arriving edge is certified if it closes a wedge with two
// stored edges. Its success threshold on µ is polynomially worse than the
// star detector's, illustrating that the n^{1/4} scale is about clever
// use of space, not about space per se.
type ReservoirDetector struct {
	res        *xrand.Reservoir
	byID       []wire.Edge
	vertexBits int
	capEdges   int
	found      wire.Edge
	ok         bool
	seen       []wire.Edge
}

// NewReservoirDetector creates a reservoir detector holding up to
// capEdges edges.
func NewReservoirDetector(shared *xrand.Shared, capEdges, n int) *ReservoirDetector {
	if capEdges < 1 {
		panic(fmt.Sprintf("streamred: cap must be positive, got %d", capEdges))
	}
	return &ReservoirDetector{
		res:        xrand.NewReservoir(shared.Stream("streamred/reservoir"), capEdges),
		vertexBits: wire.BitsFor(n),
		capEdges:   capEdges,
	}
}

var _ Detector = (*ReservoirDetector)(nil)

// Observe implements Detector.
func (d *ReservoirDetector) Observe(e wire.Edge) {
	if d.ok {
		return
	}
	// Check e against the current reservoir for a closing wedge: stored
	// {u, e.U} and {u, e.V} for some u.
	stored := d.currentEdges()
	endpoints := map[int]map[int]bool{} // apex -> set of far endpoints
	for _, se := range stored {
		for _, apex := range []int{se.U, se.V} {
			far := se.Other(apex)
			if endpoints[apex] == nil {
				endpoints[apex] = map[int]bool{}
			}
			endpoints[apex][far] = true
		}
	}
	for apex, far := range endpoints {
		if apex != e.U && apex != e.V && far[e.U] && far[e.V] {
			d.found = e.Canon()
			d.ok = true
			return
		}
	}
	d.seen = append(d.seen, e)
	d.res.Offer(len(d.seen) - 1)
}

func (d *ReservoirDetector) currentEdges() []wire.Edge {
	idx := d.res.Sample()
	out := make([]wire.Edge, 0, len(idx))
	for _, i := range idx {
		out = append(out, d.seen[i])
	}
	return out
}

// Output implements Detector.
func (d *ReservoirDetector) Output() (wire.Edge, bool) { return d.found, d.ok }

// SpaceBits implements Detector.
func (d *ReservoirDetector) SpaceBits() int {
	return d.capEdges*2*d.vertexBits + 2*d.vertexBits
}
