package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"tricomm/internal/graph"
	"tricomm/internal/parwork"
	"tricomm/internal/xrand"
)

// SimPlayer is a player's view in the simultaneous model: input and shared
// randomness, but no channel — the player speaks exactly once.
type SimPlayer struct {
	// ID is the player index in [0, K).
	ID int
	// K is the number of players.
	K int
	// N is the vertex universe size.
	N int
	// Edges is the player's private input E_j.
	Edges []graph.Edge
	// View is the player's local graph (V, E_j), shared with the topology
	// cache.
	View *graph.Graph
	// Shared is the public randomness.
	Shared *xrand.Shared
	// Workers is the resolved intra-phase worker count: hot local loops
	// may fan across up to this many goroutines (via parwork). Always ≥ 1;
	// results and bit accounting are identical at every value.
	Workers int

	meter *Meter
}

// ObserveParallel attributes d of wall clock to the session's intra-phase
// parallel regions (observability only — never part of Stats). Safe on a
// SimPlayer with no attached meter (e.g. BoardPlayersOn views).
func (p *SimPlayer) ObserveParallel(d time.Duration) { p.meter.ObserveParallel(d) }

// SimPlayerFunc computes a player's single message from its input.
type SimPlayerFunc func(p *SimPlayer) (Msg, error)

// RefereeFunc consumes the k player messages and produces the output. It
// has access to the shared randomness but to no input.
type RefereeFunc func(shared *xrand.Shared, msgs []Msg) error

// simPlayers materializes the ordered player views over the topology's
// cached local graphs.
func simPlayers(top *Topology) []*SimPlayer {
	workers := parwork.Workers(top.intra)
	players := make([]*SimPlayer, top.K())
	for j := range players {
		players[j] = &SimPlayer{
			ID:      j,
			K:       top.K(),
			N:       top.N(),
			Edges:   top.Input(j),
			View:    top.View(j),
			Shared:  top.Shared(),
			Workers: workers,
		}
	}
	return players
}

// RunSimultaneous executes one protocol in the simultaneous model over a
// throwaway topology built from cfg. Prefer RunSimultaneousOn with a
// reused Topology when running several protocols against one cluster.
func RunSimultaneous(ctx context.Context, cfg Config, player SimPlayerFunc, referee RefereeFunc) (Stats, error) {
	top, err := cfg.Topology()
	if err != nil {
		return Stats{}, err
	}
	return RunSimultaneousOn(ctx, top, player, referee)
}

// RunSimultaneousOn executes one protocol in the simultaneous model over
// top: every player computes its message concurrently, the messages are
// metered, and the referee is invoked on the ordered message vector.
func RunSimultaneousOn(ctx context.Context, top *Topology, player SimPlayerFunc, referee RefereeFunc) (s Stats, err error) {
	start := time.Now()
	k := top.K()
	meter := NewMeter(k)
	defer func() { observeSession("simultaneous", start, s, meter.takePhaseTimings(), nil, err) }()
	msgs := make([]Msg, k)
	errs := make([]error, k)

	players := simPlayers(top)
	if len(players) > 0 {
		mIntraWorkers.Set(float64(players[0].Workers))
	}
	var wg sync.WaitGroup
	for _, p := range players {
		p.meter = meter
		wg.Add(1)
		go func(p *SimPlayer) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[p.ID] = fmt.Errorf("%w: %v", ErrCanceled, err)
				return
			}
			m, err := player(p)
			if err != nil {
				errs[p.ID] = fmt.Errorf("player %d: %w", p.ID, err)
				return
			}
			msgs[p.ID] = m
		}(p)
	}
	wg.Wait()
	if err := firstErr(errs); err != nil {
		return meter.Snapshot(), err
	}
	for j, m := range msgs {
		meter.AddUp(j, m.Bits())
	}
	meter.AddRound()
	if err := referee(top.Shared(), msgs); err != nil {
		return meter.Snapshot(), fmt.Errorf("referee: %w", err)
	}
	return meter.Snapshot(), nil
}
