package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"tricomm/internal/transport"
)

// waitGoroutines polls until the goroutine count returns to base, failing
// with a stack dump on timeout.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d, want <= %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunOnFaultyCompletesIdentical pins the engine half of the resilience
// contract: a session over a lossy-but-survivable fault schedule completes
// with the identical bit meter as the fault-free run; loss shows up only
// in WireBytes and the resilience counters.
func TestRunOnFaultyCompletesIdentical(t *testing.T) {
	top := testTopology(t, 6)
	coord, player := chatter(12)
	base, err := RunOn(context.Background(), top, coord, player)
	if err != nil {
		t.Fatal(err)
	}
	faulty := transport.Faulty{
		Inner: transport.Chan{},
		Spec:  transport.FaultSpec{Seed: 31, Drop: 0.2, Corrupt: 0.1, Duplicate: 0.1},
	}
	got, err := RunOn(context.Background(), top.WithTransport(faulty), coord, player)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalBits != base.TotalBits || got.UpBits != base.UpBits ||
		got.DownBits != base.DownBits || got.Messages != base.Messages ||
		got.Rounds != base.Rounds {
		t.Fatalf("faulted bit meter diverged:\nbase %+v\ngot  %+v", base, got)
	}
	if got.WireBytes <= base.WireBytes {
		t.Fatalf("faulted wire bytes %d not above clean %d", got.WireBytes, base.WireBytes)
	}
	if got.Retransmits == 0 || got.FramesLost == 0 {
		t.Fatalf("loss at these rates must reach Stats: %+v", got)
	}
	if base.Retransmits != 0 || base.FramesLost != 0 {
		t.Fatalf("clean run has nonzero resilience counters: %+v", base)
	}
}

// TestRunOnFaultyAborts pins the typed failure mode end to end: a schedule
// the retransmit budget cannot survive surfaces ErrSessionAborted from
// RunOn — promptly, with no leaked goroutines.
func TestRunOnFaultyAborts(t *testing.T) {
	base := runtime.NumGoroutine()
	top := testTopology(t, 4)
	coord, player := chatter(12)
	faulty := transport.Faulty{
		Inner: transport.Chan{},
		Spec:  transport.FaultSpec{Seed: 5, Drop: 0.9, MaxResend: 2, DeadlineMS: 5000},
	}
	_, err := RunOn(context.Background(), top.WithTransport(faulty), coord, player)
	if !errors.Is(err, ErrSessionAborted) {
		t.Fatalf("RunOn over a hopeless link: %v, want ErrSessionAborted", err)
	}
	waitGoroutines(t, base)
}

// TestRunOnFaultyDisconnectAborts covers the hard-disconnect path: the
// link dies mid-session and both sides unwind to ErrSessionAborted.
func TestRunOnFaultyDisconnectAborts(t *testing.T) {
	base := runtime.NumGoroutine()
	top := testTopology(t, 4)
	coord, player := chatter(50)
	faulty := transport.Faulty{
		Inner: transport.Chan{},
		Spec:  transport.FaultSpec{Seed: 17, Disconnect: 0.05, DeadlineMS: 5000},
	}
	_, err := RunOn(context.Background(), top.WithTransport(faulty), coord, player)
	if !errors.Is(err, ErrSessionAborted) {
		t.Fatalf("RunOn with injected disconnects: %v, want ErrSessionAborted", err)
	}
	waitGoroutines(t, base)
}

// TestRunOnCancelMidGather pins that canceling a session while the
// coordinator is parked in Gather — players deliberately never reply —
// unwinds every goroutine, on the in-process transport and on sockets.
func TestRunOnCancelMidGather(t *testing.T) {
	for _, d := range testDialers() {
		t.Run(d.Name(), func(t *testing.T) {
			base := runtime.NumGoroutine()
			top := testTopology(t, 4)
			ctx, cancel := context.WithCancel(context.Background())
			gathering := make(chan struct{})
			coord := func(ctx context.Context, c *Coordinator) error {
				if err := c.Broadcast(ctx, Ack()); err != nil {
					return err
				}
				close(gathering)
				_, err := c.Gather(ctx)
				return err
			}
			player := func(ctx context.Context, p *Player) error {
				if _, err := p.Recv(ctx); err != nil {
					return err
				}
				<-ctx.Done() // never reply
				return fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
			}
			done := make(chan error, 1)
			go func() {
				_, err := RunOn(ctx, top.WithTransport(d), coord, player)
				done <- err
			}()
			<-gathering
			time.Sleep(5 * time.Millisecond) // let Gather park in Recv
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("canceled session returned %v, want ErrCanceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cancel did not unwind the session")
			}
			waitGoroutines(t, base)
		})
	}
}
