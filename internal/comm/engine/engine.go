// Package engine is the unified concurrent protocol runtime behind every
// communication model in package comm.
//
// The three models of the paper — coordinator, blackboard, and
// simultaneous (plus the 3-player one-way model of §4.2.2) — share one
// substrate here:
//
//   - Topology: the per-instance state that is expensive to build and
//     cheap to share — the players' local graph views (graph.FromEdges
//     over each input). A Topology is built once per cluster and reused
//     across every protocol run and Test call; views materialize lazily,
//     exactly once, and are safe for concurrent readers.
//
//   - Session: one protocol execution over a Topology. A session owns the
//     transport links, the goroutines, and a Meter; it dies with the run
//     while the Topology lives on.
//
//   - Meter: per-player atomic accounting with round counting, optional
//     named-phase attribution, and a dedicated counter for blackboard
//     posts made by the coordinator (so board traffic is never
//     misattributed to player 0's channel).
//
// Coordinator sessions are transport-agnostic: each player's private link
// is a transport.Conn (in-process channels by default; net.Pipe, TCP
// loopback, or simulated WAN via Topology.WithTransport or the Over run
// option), and per-link wire-byte counters sit alongside the bit meter,
// cross-checked by CheckWire on every successful run.
//
// The coordinator model's Broadcast/Gather/AskAll fan out and fan in
// concurrently over the links (with a non-blocking fast path on transports
// that support it) instead of serializing k unicasts in player order; cost
// accounting is order-independent (per-message atomic adds), so on
// successful runs Stats are bit-identical to a sequential schedule — and
// to every other transport — a property the regression tests pin down. On
// error paths the snapshot is best-effort: a message sent concurrently
// with a player's failure may be metered even though the player never
// drained it.
package engine

import (
	"errors"
	"fmt"

	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// Sentinel errors for the coordinator model. The messages keep the "comm:"
// prefix because package comm is the public face of this runtime.
var (
	// ErrShutdown is returned from Player.Recv when the coordinator has
	// finished and the cluster is shutting down gracefully. Player loops
	// should treat it as a normal exit.
	ErrShutdown = errors.New("comm: cluster shut down")
	// ErrCanceled is returned when the run context is canceled.
	ErrCanceled = errors.New("comm: run canceled")
	// ErrPlayerDone is returned from Coordinator.Recv when the player has
	// terminated (usually with an error of its own, which Run reports).
	ErrPlayerDone = errors.New("comm: player terminated")
	// ErrSessionAborted is returned when a session dies to link faults: a
	// hard disconnect, an exhausted retransmit budget, or a per-message
	// deadline on a lossy transport. It is the typed guarantee of the
	// resilience layer — a faulted run either completes with the paper's
	// one-sided-error contract intact or surfaces this error; it never
	// hangs, leaks, or reports an unsound verdict.
	ErrSessionAborted = errors.New("comm: session aborted")
)

// Config describes a protocol instance: the vertex universe, the players'
// private inputs, and the shared randomness. A Config is the throwaway
// form; Topology is the reusable one (see Config.Topology).
type Config struct {
	// N is the number of vertices of the underlying graph.
	N int
	// Inputs[j] is player j's private edge set. len(Inputs) is k.
	Inputs [][]wire.Edge
	// Shared is the public random string all parties can read.
	Shared *xrand.Shared
}

// K reports the number of players.
func (c Config) K() int { return len(c.Inputs) }

// Validate checks the config invariants shared by every model.
func (c Config) Validate() error {
	if c.N < 0 {
		return fmt.Errorf("comm: negative vertex count %d", c.N)
	}
	if len(c.Inputs) == 0 {
		return errors.New("comm: no players")
	}
	if c.Shared == nil {
		return errors.New("comm: nil shared randomness")
	}
	return nil
}

// Topology builds a fresh reusable topology from the config.
func (c Config) Topology() (*Topology, error) {
	return NewTopology(c.N, c.Inputs, c.Shared)
}
