package engine

import (
	"errors"
	"fmt"
	"time"
)

// Board is the blackboard model: every posted message is visible to all
// parties and its bits are charged exactly once, regardless of audience
// size. Execution is synchronous — protocol code schedules the players'
// turns itself — which matches the model's "message by any player is seen
// by everyone" semantics without per-recipient cost.
type Board struct {
	k     int
	meter *Meter
	posts []Post
}

// Post is one blackboard entry.
type Post struct {
	// From is the posting player, or Coordinator (-1).
	From int
	// Msg is the posted message.
	Msg Msg
}

// CoordinatorID is the From value for coordinator posts.
const CoordinatorID = -1

// NewBoard returns an empty blackboard for k players.
func NewBoard(k int) *Board {
	if k < 1 {
		panic(fmt.Sprintf("comm: blackboard needs at least one player, got %d", k))
	}
	return &Board{k: k, meter: NewMeter(k)}
}

// Post appends a message from the given player (or CoordinatorID). The
// message bits are charged once: player posts on the player's channel,
// coordinator posts on the meter's dedicated coordinator counter, so board
// traffic is never misattributed to player 0.
func (b *Board) Post(from int, m Msg) error {
	if from != CoordinatorID && (from < 0 || from >= b.k) {
		return fmt.Errorf("comm: blackboard post from invalid player %d", from)
	}
	if from == CoordinatorID {
		b.meter.AddCoordinator(m.Bits())
	} else {
		b.meter.AddUp(from, m.Bits())
	}
	b.posts = append(b.posts, Post{From: from, Msg: m})
	return nil
}

// Posts returns the transcript so far. The slice is shared; do not modify.
func (b *Board) Posts() []Post { return b.posts }

// Round declares a protocol round for accounting.
func (b *Board) Round() { b.meter.AddRound() }

// BeginPhase attributes subsequent posts to the named phase.
func (b *Board) BeginPhase(name string) { b.meter.BeginPhase(name) }

// ObserveParallel attributes d of wall clock to intra-phase parallel
// regions of the board's active phase (observability only — never part
// of Stats).
func (b *Board) ObserveParallel(d time.Duration) { b.meter.ObserveParallel(d) }

// Stats snapshots the communication cost so far.
func (b *Board) Stats() Stats { return b.meter.Snapshot() }

// BoardPlayers materializes the players' local views for a blackboard
// protocol run over a throwaway topology built from cfg.
func BoardPlayers(cfg Config) ([]*SimPlayer, error) {
	top, err := cfg.Topology()
	if err != nil {
		return nil, err
	}
	return BoardPlayersOn(top), nil
}

// BoardPlayersOn materializes the players' local views over the topology's
// cache.
func BoardPlayersOn(top *Topology) []*SimPlayer { return simPlayers(top) }

// OneWayResult carries the transcript of a 3-player one-way run.
type OneWayResult struct {
	// AliceMsg and BobMsg form the transcript Charlie observes.
	AliceMsg, BobMsg Msg
	// Stats is the communication cost (Charlie's output is free).
	Stats Stats
}

// RunOneWay executes the 3-player "extended one-way" model of §4.2.2 over
// a throwaway topology built from cfg.
func RunOneWay(
	cfg Config,
	alice func(p *SimPlayer) (Msg, error),
	bob func(p *SimPlayer, aliceMsg Msg) (Msg, error),
	charlie func(p *SimPlayer, aliceMsg, bobMsg Msg) error,
) (OneWayResult, error) {
	top, err := cfg.Topology()
	if err != nil {
		return OneWayResult{}, err
	}
	return RunOneWayOn(top, alice, bob, charlie)
}

// RunOneWayOn executes the 3-player "extended one-way" model of §4.2.2:
// Alice speaks from her input, Bob speaks after seeing Alice's message,
// and Charlie — who observes the whole transcript — computes the output.
// top must have exactly three players (Alice = 0, Bob = 1, Charlie = 2).
func RunOneWayOn(
	top *Topology,
	alice func(p *SimPlayer) (Msg, error),
	bob func(p *SimPlayer, aliceMsg Msg) (Msg, error),
	charlie func(p *SimPlayer, aliceMsg, bobMsg Msg) error,
) (res OneWayResult, err error) {
	start := time.Now()
	defer func() { observeSession("oneway", start, res.Stats, nil, nil, err) }()
	if top.K() != 3 {
		return OneWayResult{}, errors.New("comm: one-way model requires exactly 3 players")
	}
	players := simPlayers(top)
	meter := NewMeter(3)

	am, err := alice(players[0])
	if err != nil {
		return OneWayResult{}, fmt.Errorf("alice: %w", err)
	}
	meter.AddUp(0, am.Bits())
	meter.AddRound()

	bm, err := bob(players[1], am)
	if err != nil {
		return OneWayResult{}, fmt.Errorf("bob: %w", err)
	}
	meter.AddUp(1, bm.Bits())
	meter.AddRound()

	if err := charlie(players[2], am, bm); err != nil {
		return OneWayResult{}, fmt.Errorf("charlie: %w", err)
	}
	return OneWayResult{AliceMsg: am, BobMsg: bm, Stats: meter.Snapshot()}, nil
}
