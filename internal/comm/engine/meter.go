package engine

import (
	"sync"
	"sync/atomic"
	"time"
)

// Meter accumulates the communication cost of a protocol run on per-player
// atomic counters, so concurrent fan-out goroutines never contend on a
// lock. It additionally supports named-phase attribution (BeginPhase) and
// a dedicated counter for blackboard posts made by the coordinator. The
// zero value is unusable — use NewMeter.
type Meter struct {
	up       []atomic.Int64 // player → coordinator bits, per player
	down     []atomic.Int64 // coordinator → player bits, per player
	coord    atomic.Int64   // coordinator blackboard posts (no player channel)
	messages atomic.Int64
	rounds   atomic.Int64

	phaseMu    sync.Mutex
	phases     []*phaseCounter
	phaseStart time.Time // guarded by phaseMu; when the active phase began
	cur        atomic.Pointer[phaseCounter]
	parNanos   atomic.Int64 // parallel-region wall clock outside any phase
}

type phaseCounter struct {
	name     string
	bits     atomic.Int64
	nanos    int64        // guarded by Meter.phaseMu; wall clock spent in the phase
	parNanos atomic.Int64 // wall clock inside parallel regions of the phase
}

// NewMeter returns a meter for k players.
func NewMeter(k int) *Meter {
	return &Meter{up: make([]atomic.Int64, k), down: make([]atomic.Int64, k)}
}

func (m *Meter) addPhase(bits int) {
	if p := m.cur.Load(); p != nil {
		p.bits.Add(int64(bits))
	}
}

// AddUp charges bits to player→coordinator traffic on player's channel.
func (m *Meter) AddUp(player, bits int) {
	m.up[player].Add(int64(bits))
	m.addPhase(bits)
	m.messages.Add(1)
}

// AddDown charges bits to coordinator→player traffic on player's channel.
func (m *Meter) AddDown(player, bits int) {
	m.down[player].Add(int64(bits))
	m.addPhase(bits)
	m.messages.Add(1)
}

// AddCoordinator charges bits posted by the coordinator to a public
// blackboard: counted in the totals but on no player's channel.
func (m *Meter) AddCoordinator(bits int) {
	m.coord.Add(int64(bits))
	m.addPhase(bits)
	m.messages.Add(1)
}

// AddRound counts one protocol round.
func (m *Meter) AddRound() { m.rounds.Add(1) }

// ObserveParallel attributes d of wall clock to intra-phase parallel
// regions of the active phase (or to the run's unphased bucket when no
// phase is active). Timing is observability-only — it feeds the metrics
// layer, never Stats, so it cannot perturb the deterministic artifact.
func (m *Meter) ObserveParallel(d time.Duration) {
	if m == nil {
		return
	}
	if p := m.cur.Load(); p != nil {
		p.parNanos.Add(d.Nanoseconds())
		return
	}
	m.parNanos.Add(d.Nanoseconds())
}

// BeginPhase attributes all subsequent traffic to the named phase until
// the next BeginPhase. Re-entering a name resumes its counter. Call it
// from the scheduling goroutine at quiescent points (between rounds).
func (m *Meter) BeginPhase(name string) {
	now := time.Now()
	m.phaseMu.Lock()
	defer m.phaseMu.Unlock()
	m.closePhaseLocked(now)
	for _, p := range m.phases {
		if p.name == name {
			m.cur.Store(p)
			return
		}
	}
	p := &phaseCounter{name: name}
	m.phases = append(m.phases, p)
	m.cur.Store(p)
}

// closePhaseLocked attributes the wall clock since phaseStart to the
// active phase and restarts the clock. Callers hold phaseMu.
func (m *Meter) closePhaseLocked(now time.Time) {
	if p := m.cur.Load(); p != nil {
		p.nanos += now.Sub(m.phaseStart).Nanoseconds()
	}
	m.phaseStart = now
}

// phaseTiming is one phase's accumulated wall-clock time. Timing lives
// beside — never inside — Stats: Stats is a deterministic artifact of the
// protocol (tests compare snapshots across schedules and transports), and
// wall clock is not. The metrics layer is its only consumer.
type phaseTiming struct {
	name       string
	seconds    float64
	parSeconds float64 // wall clock inside intra-phase parallel regions
}

// takePhaseTimings closes out the active phase and returns every declared
// phase's wall-clock total, in declaration order; parallel-region time
// observed outside any phase lands on a trailing "unphased" entry. Called
// once at session end from the scheduling goroutine.
func (m *Meter) takePhaseTimings() []phaseTiming {
	m.phaseMu.Lock()
	defer m.phaseMu.Unlock()
	m.closePhaseLocked(time.Now())
	out := make([]phaseTiming, 0, len(m.phases)+1)
	for _, p := range m.phases {
		out = append(out, phaseTiming{
			name:       p.name,
			seconds:    float64(p.nanos) / 1e9,
			parSeconds: float64(p.parNanos.Load()) / 1e9,
		})
	}
	if root := m.parNanos.Load(); root > 0 {
		out = append(out, phaseTiming{name: "unphased", parSeconds: float64(root) / 1e9})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Stats is a snapshot of a protocol run's communication cost.
type Stats struct {
	// TotalBits is the total number of bits exchanged in all directions:
	// UpBits + DownBits + CoordinatorBits.
	TotalBits int64
	// UpBits is the total player→coordinator (or player→board) traffic.
	UpBits int64
	// DownBits is the total coordinator→player traffic.
	DownBits int64
	// CoordinatorBits is blackboard traffic posted by the coordinator
	// itself — public posts that cross no player channel, so they count in
	// TotalBits but in no PerPlayer entry.
	CoordinatorBits int64
	// PerPlayer[j] is the traffic on player j's channel in both directions.
	PerPlayer []int64
	// Messages is the number of messages sent.
	Messages int64
	// Rounds is the number of protocol rounds the coordinator declared.
	Rounds int64
	// Phases attributes bits to the phases declared via BeginPhase, in
	// declaration order (deterministic, unlike a map); nil when the run
	// declared none.
	Phases []Phase
	// WireBytes is the total framed wire bytes that crossed the session's
	// transport links, header overhead included. Zero (with PerLinkBytes
	// nil) for models that run without a transport (blackboard,
	// simultaneous, one-way). CheckWire pins its relation to the bit meter.
	WireBytes int64
	// PerLinkBytes[j] is the framed wire traffic on player j's link in both
	// directions; nil when the run used no transport.
	PerLinkBytes []int64
	// Retransmits counts frames re-sent by the resilience layer after
	// sender-visible loss on a fault-injected transport; zero on clean
	// links. Completed runs have identical bit meters either way — loss
	// shows up only here and in WireBytes.
	Retransmits int64
	// FramesLost counts injected frame drops and corruptions observed by
	// the senders on a fault-injected transport; zero on clean links.
	FramesLost int64
}

// Phase is one named phase's bit total.
type Phase struct {
	Name string
	Bits int64
}

// Phase returns the bit total of the named phase (0 when absent). The
// phase list is tiny, so a linear scan beats any map.
func (s Stats) Phase(name string) int64 {
	for _, p := range s.Phases {
		if p.Name == name {
			return p.Bits
		}
	}
	return 0
}

// MaxPlayerBits reports the largest per-player channel traffic.
func (s Stats) MaxPlayerBits() int64 {
	var best int64
	for _, v := range s.PerPlayer {
		if v > best {
			best = v
		}
	}
	return best
}

// Snapshot returns the current cost totals. Counters are read atomically;
// when messages are in flight the snapshot retries a few times for a
// stable read, and it is always exact at quiescent points — which is where
// protocols take their snapshots (fan-out calls return only after every
// message they cover has been metered).
func (m *Meter) Snapshot() Stats {
	var s Stats
	for attempt := 0; ; attempt++ {
		before := m.messages.Load()
		s = m.read()
		if m.messages.Load() == before || attempt >= 3 {
			return s
		}
	}
}

func (m *Meter) read() Stats {
	s := Stats{
		PerPlayer:       make([]int64, len(m.up)),
		CoordinatorBits: m.coord.Load(),
		Messages:        m.messages.Load(),
		Rounds:          m.rounds.Load(),
	}
	for j := range m.up {
		u, d := m.up[j].Load(), m.down[j].Load()
		s.UpBits += u
		s.DownBits += d
		s.PerPlayer[j] = u + d
	}
	s.TotalBits = s.UpBits + s.DownBits + s.CoordinatorBits
	m.phaseMu.Lock()
	if len(m.phases) > 0 {
		s.Phases = make([]Phase, len(m.phases))
		for i, p := range m.phases {
			s.Phases[i] = Phase{Name: p.name, Bits: p.bits.Load()}
		}
	}
	m.phaseMu.Unlock()
	return s
}
