package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"tricomm/internal/transport"
	"tricomm/internal/wire"
)

func testDialers() []transport.Dialer {
	return []transport.Dialer{
		transport.Chan{},
		transport.Net{},
		transport.Net{TCP: true},
		transport.WAN{Latency: 20 * time.Microsecond, Jitter: 20 * time.Microsecond,
			Bandwidth: 1 << 30, Seed: 11},
	}
}

// TestRunOnTransportAgnostic is the engine half of the transport contract:
// the same protocol over the same topology must produce identical Stats —
// bits, rounds, messages, per-player traffic, and even WireBytes, since
// every transport frames identically — no matter which transport carries
// the session.
func TestRunOnTransportAgnostic(t *testing.T) {
	top := testTopology(t, 6)
	coord, player := chatter(12)
	base, err := RunOn(context.Background(), top, coord, player)
	if err != nil {
		t.Fatal(err)
	}
	if base.WireBytes == 0 || base.PerLinkBytes == nil {
		t.Fatalf("baseline run has no wire accounting: %+v", base)
	}
	for _, d := range testDialers()[1:] {
		t.Run(d.Name(), func(t *testing.T) {
			got, err := RunOn(context.Background(), top.WithTransport(d), coord, player)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("stats diverged on %s:\n got %+v\nwant %+v", d.Name(), got, base)
			}
		})
	}
	// The Over option must behave exactly like WithTransport.
	over, err := RunOn(context.Background(), top, coord, player, Over(transport.Net{TCP: true}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(over, base) {
		t.Fatalf("Over(tcp) stats diverged:\n got %+v\nwant %+v", over, base)
	}
}

// TestWireBytesExact pins the byte-for-bit accounting on a protocol whose
// traffic is small enough to enumerate: every metered message is one frame
// of HeaderBytes + ceil(bits/8) wire bytes.
func TestWireBytesExact(t *testing.T) {
	top := testTopology(t, 2)
	var reqBits, repBits int
	coord := func(ctx context.Context, c *Coordinator) error {
		var w wire.Writer
		w.WriteUint(0x1ff, 9) // 9-bit request
		reqBits = w.BitLen()
		replies, err := c.AskAll(ctx, FromWriter(&w))
		if err != nil {
			return err
		}
		repBits = replies[0].Bits()
		return nil
	}
	player := ServeLoop(func(p *Player, req Msg) (Msg, error) {
		var w wire.Writer
		w.WriteUint(0x1ffff, 17) // 17-bit reply
		return FromWriter(&w), nil
	})
	for _, d := range testDialers() {
		t.Run(d.Name(), func(t *testing.T) {
			stats, err := RunOn(context.Background(), top.WithTransport(d), coord, player)
			if err != nil {
				t.Fatal(err)
			}
			perLink := int64(transport.FrameSize(reqBits) + transport.FrameSize(repBits))
			if want := 2 * perLink; stats.WireBytes != want {
				t.Fatalf("WireBytes = %d, want %d (%+v)", stats.WireBytes, want, stats)
			}
			for j, b := range stats.PerLinkBytes {
				if b != perLink {
					t.Fatalf("link %d bytes = %d, want %d", j, b, perLink)
				}
			}
			if err := CheckWire(stats); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckWire exercises the cross-check's failure modes directly.
func TestCheckWire(t *testing.T) {
	// No transport in play: vacuously fine.
	if err := CheckWire(Stats{UpBits: 1000}); err != nil {
		t.Errorf("nil PerLinkBytes: %v", err)
	}
	// Wire bytes below bits/8: impossible, must be flagged.
	s := Stats{UpBits: 800, DownBits: 800, Messages: 2, WireBytes: 100, PerLinkBytes: []int64{100}}
	if err := CheckWire(s); err == nil {
		t.Error("undercounted wire bytes not flagged")
	}
	// Wire bytes beyond the framing-overhead envelope: flagged too.
	s.WireBytes = 800/8 + 800/8 + 6*2 + 1
	if err := CheckWire(s); err == nil {
		t.Error("overcounted wire bytes not flagged")
	}
	// Exactly at the envelope: fine.
	s.WireBytes = 200 + 2 // two 800-bit frames: 100 payload bytes + 2-byte header each
	if err := CheckWire(s); err != nil {
		t.Errorf("exact accounting flagged: %v", err)
	}
}

// TestShutdownOverSocketTransports re-runs the graceful-shutdown scenarios
// over a socket transport, where teardown crosses a real connection
// instead of a channel close.
func TestShutdownOverSocketTransports(t *testing.T) {
	for _, d := range []transport.Dialer{transport.Net{}, transport.Net{TCP: true}} {
		t.Run(d.Name(), func(t *testing.T) {
			top := testTopology(t, 3)
			done := make(chan error, 1)
			go func() {
				_, err := RunOn(context.Background(), top.WithTransport(d),
					func(ctx context.Context, c *Coordinator) error {
						// Talk one round, then leave without telling anyone.
						_, err := c.AskAll(ctx, Ack())
						return err
					},
					ServeLoop(func(p *Player, _ Msg) (Msg, error) { return Ack(), nil }))
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("session over socket transport did not shut down")
			}
		})
	}
}

// TestCancellationOverTCP pins that context cancellation unblocks a
// session whose links are real sockets (read-deadline plumbing).
func TestCancellationOverTCP(t *testing.T) {
	top := testTopology(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunOn(ctx, top.WithTransport(transport.Net{TCP: true}),
			func(ctx context.Context, c *Coordinator) error {
				_, err := c.Recv(ctx, 0) // wait for a message that never comes
				return err
			},
			func(ctx context.Context, p *Player) error {
				_, err := p.Recv(ctx)
				if errors.Is(err, ErrShutdown) || errors.Is(err, ErrCanceled) {
					return nil
				}
				return err
			})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not unblock the TCP session")
	}
}
