package engine

import (
	"sync"

	"tricomm/internal/graph"
	"tricomm/internal/transport"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// viewCache lazily materializes the players' local graphs. Building
// graph.FromEdges for every player on every run is the dominant
// non-protocol cost in harness sweeps; the cache builds each view exactly
// once per topology and shares it across runs. A built *graph.Graph is
// immutable, so concurrent readers are safe.
type viewCache struct {
	once  []sync.Once
	views []*graph.Graph
}

// Topology is the reusable per-cluster state every model runs over: the
// vertex universe, the players' inputs, the shared randomness, and the
// cached per-player views. Build one per cluster and run as many protocols
// over it as you like; sessions created from it are independent.
type Topology struct {
	n      int
	inputs [][]wire.Edge
	shared *xrand.Shared
	cache  *viewCache
	dial   transport.Dialer // nil means the in-process channel transport
	intra  int              // requested intra-phase workers; ≤0 defers to env
}

// NewTopology validates the instance and returns a topology with an empty
// view cache.
func NewTopology(n int, inputs [][]wire.Edge, shared *xrand.Shared) (*Topology, error) {
	cfg := Config{N: n, Inputs: inputs, Shared: shared}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := len(inputs)
	return &Topology{
		n:      n,
		inputs: inputs,
		shared: shared,
		cache:  &viewCache{once: make([]sync.Once, k), views: make([]*graph.Graph, k)},
	}, nil
}

// N reports the vertex universe size.
func (t *Topology) N() int { return t.n }

// K reports the number of players.
func (t *Topology) K() int { return len(t.inputs) }

// Shared returns the public randomness.
func (t *Topology) Shared() *xrand.Shared { return t.shared }

// Input returns player j's private edge set. The slice is shared; do not
// modify.
func (t *Topology) Input(j int) []wire.Edge { return t.inputs[j] }

// View returns player j's local graph (V, E_j), building it on first use
// and caching it for every later run over this topology.
func (t *Topology) View(j int) *graph.Graph {
	t.cache.once[j].Do(func() {
		t.cache.views[j] = graph.FromEdges(t.n, t.inputs[j])
	})
	return t.cache.views[j]
}

// Warm materializes every player view now. Sessions call it implicitly on
// first use; calling it eagerly moves the build cost out of the first run.
func (t *Topology) Warm() {
	for j := range t.inputs {
		t.View(j)
	}
}

// WithShared returns a topology over the same inputs and the same view
// cache but different shared randomness — the cheap way to re-run a
// protocol with fresh randomness on an unchanged cluster (views are
// randomness-independent, so the cache stays valid and shared).
func (t *Topology) WithShared(shared *xrand.Shared) *Topology {
	return &Topology{n: t.n, inputs: t.inputs, shared: shared, cache: t.cache, dial: t.dial, intra: t.intra}
}

// Transport returns the dialer coordinator-model sessions over this
// topology open their links with. The default is the in-process channel
// transport.
func (t *Topology) Transport() transport.Dialer {
	if t.dial == nil {
		return transport.Chan{}
	}
	return t.dial
}

// WithTransport returns a topology over the same inputs, randomness, and
// view cache, whose sessions run over d instead — topologies are
// transport-agnostic, so the expensive per-player state is shared across
// transports. A nil d restores the default in-process transport.
func (t *Topology) WithTransport(d transport.Dialer) *Topology {
	return &Topology{n: t.n, inputs: t.inputs, shared: t.shared, cache: t.cache, dial: d, intra: t.intra}
}

// WithIntraWorkers returns a topology whose sessions fan per-player hot
// loops across up to n goroutines (resolved through parwork.Workers at
// session start, so n ≤ 0 defers to TRICOMM_INTRA_WORKERS). Results and
// bit accounting are identical at every width — the knob trades only
// wall clock.
func (t *Topology) WithIntraWorkers(n int) *Topology {
	return &Topology{n: t.n, inputs: t.inputs, shared: t.shared, cache: t.cache, dial: t.dial, intra: n}
}

// IntraWorkers reports the raw intra-phase worker request (≤0 means
// "resolve from the environment at session start").
func (t *Topology) IntraWorkers() int { return t.intra }

// Config returns the throwaway-config form of the topology.
func (t *Topology) Config() Config {
	return Config{N: t.n, Inputs: t.inputs, Shared: t.shared}
}
