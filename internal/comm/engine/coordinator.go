package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tricomm/internal/graph"
	"tricomm/internal/parwork"
	"tricomm/internal/transport"
	"tricomm/internal/xrand"
)

// Player is a player's endpoint in the coordinator model: its identity,
// private input, the shared randomness, and its private link to the
// coordinator. A Player is used only from its own goroutine.
type Player struct {
	// ID is the player index in [0, K).
	ID int
	// K is the number of players.
	K int
	// N is the vertex universe size.
	N int
	// Edges is the player's private input E_j.
	Edges []graph.Edge
	// View is the player's local graph (V, E_j), shared with (and cached
	// by) the topology the session runs over.
	View *graph.Graph
	// Shared is the public randomness (identical on all parties).
	Shared *xrand.Shared
	// Workers is the resolved intra-phase worker count: hot local loops
	// may fan across up to this many goroutines (via parwork). Always ≥ 1;
	// results and bit accounting are identical at every value.
	Workers int

	conn  transport.Conn
	meter *Meter
}

// ObserveParallel attributes d of wall clock to the session's intra-phase
// parallel regions (observability only — never part of Stats). Safe on a
// Player with no attached meter.
func (p *Player) ObserveParallel(d time.Duration) { p.meter.ObserveParallel(d) }

// Recv blocks for the next coordinator message. It returns ErrShutdown if
// the coordinator has finished, or the context error if ctx is canceled.
func (p *Player) Recv(ctx context.Context) (Msg, error) {
	f, err := p.conn.Recv(ctx)
	if err != nil {
		if errors.Is(err, transport.ErrAborted) {
			return Msg{}, fmt.Errorf("%w: %v", ErrSessionAborted, err)
		}
		if errors.Is(err, transport.ErrClosed) {
			return Msg{}, ErrShutdown
		}
		if ctx.Err() != nil {
			return Msg{}, fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
		}
		return Msg{}, err
	}
	return msgOf(f), nil
}

// Send transmits a message to the coordinator. It returns ErrShutdown if
// the coordinator has already finished (the message is then dropped).
// Upstream bits are metered on the coordinator's receive side so that
// Coordinator.Stats, read from the coordinator goroutine, is always
// consistent with the messages it has observed.
func (p *Player) Send(ctx context.Context, m Msg) error {
	if err := p.conn.Send(ctx, frameOf(m)); err != nil {
		if errors.Is(err, transport.ErrAborted) {
			return fmt.Errorf("%w: %v", ErrSessionAborted, err)
		}
		if errors.Is(err, transport.ErrClosed) {
			return ErrShutdown
		}
		if ctx.Err() != nil {
			return fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
		}
		return err
	}
	return nil
}

// PlayerFunc is the code run by each player goroutine.
type PlayerFunc func(ctx context.Context, p *Player) error

// Coordinator is the coordinator's endpoint: a private transport link to
// every player plus the shared randomness. Single-message Send/Recv are
// used from the coordinator goroutine only; Broadcast, Gather, and AskAll
// fan out internally but present the same single-goroutine interface.
type Coordinator struct {
	// K is the number of players.
	K int
	// N is the vertex universe size.
	N int
	// Shared is the public randomness.
	Shared *xrand.Shared
	// Workers is the resolved intra-phase worker count for coordinator-side
	// local compute (same contract as Player.Workers).
	Workers int

	links []transport.Conn
	pdone []<-chan struct{} // closed when the player goroutine exits
	meter *Meter
	seq   bool // sequential fan-out (regression-testing knob)
}

// linkErr maps a transport failure on player j's link to the engine's
// coordinator-side error vocabulary.
func (c *Coordinator) linkErr(ctx context.Context, j int, err error) error {
	if errors.Is(err, transport.ErrAborted) {
		return fmt.Errorf("%w: player %d link: %v", ErrSessionAborted, j, err)
	}
	if errors.Is(err, transport.ErrClosed) {
		return fmt.Errorf("%w: player %d", ErrPlayerDone, j)
	}
	if ctx.Err() != nil {
		return fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
	return err
}

// Send transmits a message to player j. It returns ErrPlayerDone if the
// player goroutine has already exited — checked up front, so a dead
// player is reported deterministically instead of the message slipping
// into the link's buffer.
func (c *Coordinator) Send(ctx context.Context, j int, m Msg) error {
	select {
	case <-c.pdone[j]:
		return fmt.Errorf("%w: player %d", ErrPlayerDone, j)
	default:
	}
	if err := c.links[j].Send(ctx, frameOf(m)); err != nil {
		return c.linkErr(ctx, j, err)
	}
	c.meter.AddDown(j, m.Bits())
	return nil
}

// Recv blocks for the next message from player j. It returns
// ErrPlayerDone if the player goroutine has exited (Run then surfaces the
// player's own error).
func (c *Coordinator) Recv(ctx context.Context, j int) (Msg, error) {
	f, err := c.links[j].Recv(ctx)
	if err != nil {
		return Msg{}, c.linkErr(ctx, j, err)
	}
	c.meter.AddUp(j, f.Bits)
	return msgOf(f), nil
}

// firstErr returns the lowest-indexed non-nil error, so the concurrent
// fan-out reports the same error a sequential player-order loop would.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Broadcast sends m to every player concurrently. In the coordinator model
// a broadcast is k unicasts and is charged k·|m| bits; per-message atomic
// metering makes the accounting identical to the sequential schedule.
func (c *Coordinator) Broadcast(ctx context.Context, m Msg) error {
	if c.seq {
		for j := 0; j < c.K; j++ {
			if err := c.Send(ctx, j, m); err != nil {
				return err
			}
		}
		return nil
	}
	// Fast path: on transports with free buffer space an idle player costs
	// no goroutine. A player that has already exited is routed to the slow
	// path so Send reports ErrPlayerDone instead of depositing into its
	// dead buffer; so is any link whose transport cannot accept the frame
	// without blocking.
	f := frameOf(m)
	var pending []int
	for j := 0; j < c.K; j++ {
		select {
		case <-c.pdone[j]:
			pending = append(pending, j)
			continue
		default:
		}
		if ts, ok := c.links[j].(transport.TrySender); ok && ts.TrySend(f) {
			c.meter.AddDown(j, m.Bits())
			continue
		}
		pending = append(pending, j)
	}
	if len(pending) == 0 {
		return nil
	}
	errs := make([]error, len(pending))
	var wg sync.WaitGroup
	for i, j := range pending {
		wg.Add(1)
		go func(i, j int) {
			defer wg.Done()
			errs[i] = c.Send(ctx, j, m)
		}(i, j)
	}
	wg.Wait()
	return firstErr(errs)
}

// Gather receives one message from every player concurrently; the returned
// slice is in player order regardless of arrival order.
func (c *Coordinator) Gather(ctx context.Context) ([]Msg, error) {
	msgs := make([]Msg, c.K)
	if c.seq {
		for j := 0; j < c.K; j++ {
			m, err := c.Recv(ctx, j)
			if err != nil {
				return nil, err
			}
			msgs[j] = m
		}
		return msgs, nil
	}
	// Fast path: drain replies already delivered to the links.
	var pending []int
	for j := 0; j < c.K; j++ {
		if tr, ok := c.links[j].(transport.TryReceiver); ok {
			if f, got := tr.TryRecv(); got {
				c.meter.AddUp(j, f.Bits)
				msgs[j] = msgOf(f)
				continue
			}
		}
		pending = append(pending, j)
	}
	if len(pending) == 0 {
		return msgs, nil
	}
	// Fan in concurrently, returning on the first failure so that a dead
	// player aborts the round even while another player never replies —
	// waiting for all k would deadlock the session on that player.
	// Receivers still parked in Recv when an error wins unwind at session
	// shutdown; the result channel is buffered so they never block on it.
	type gathered struct {
		j   int
		m   Msg
		err error
	}
	ch := make(chan gathered, len(pending))
	for _, j := range pending {
		go func(j int) {
			m, err := c.Recv(ctx, j)
			ch <- gathered{j: j, m: m, err: err}
		}(j)
	}
	for range pending {
		g := <-ch
		if g.err != nil {
			return nil, g.err
		}
		msgs[g.j] = g.m
	}
	return msgs, nil
}

// Ask sends m to player j and waits for the reply — one coordinator-model
// round with a single player.
func (c *Coordinator) Ask(ctx context.Context, j int, m Msg) (Msg, error) {
	if err := c.Send(ctx, j, m); err != nil {
		return Msg{}, err
	}
	return c.Recv(ctx, j)
}

// AskAll sends m to every player and gathers all replies, counting one
// round.
func (c *Coordinator) AskAll(ctx context.Context, m Msg) ([]Msg, error) {
	c.Round()
	if err := c.Broadcast(ctx, m); err != nil {
		return nil, err
	}
	return c.Gather(ctx)
}

// Round declares the start of a new protocol round (for accounting only).
func (c *Coordinator) Round() { c.meter.AddRound() }

// BeginPhase attributes subsequent traffic to the named phase (see
// Meter.BeginPhase). Call between rounds.
func (c *Coordinator) BeginPhase(name string) { c.meter.BeginPhase(name) }

// Stats snapshots the communication cost so far, including the wire bytes
// that crossed the session's transport links; protocols use it to
// attribute bits to phases.
func (c *Coordinator) Stats() Stats {
	s := c.meter.Snapshot()
	c.addWire(&s)
	return s
}

// addWire attaches the per-link wire-byte counters to a snapshot. Links
// are read from the coordinator endpoint only, whose counters advance in
// lockstep with the meter (down bytes at Send, up bytes at Recv), so bits
// and bytes agree at every quiescent point.
func (c *Coordinator) addWire(s *Stats) {
	if len(c.links) == 0 {
		return
	}
	s.PerLinkBytes = make([]int64, len(c.links))
	for j, conn := range c.links {
		ls := conn.Stats()
		s.PerLinkBytes[j] = ls.BytesOut + ls.BytesIn
		s.WireBytes += s.PerLinkBytes[j]
		// Hardened links additionally report recovery work; the
		// coordinator-side endpoint's counters cover both directions.
		if rr, ok := conn.(transport.ResilienceReporter); ok {
			rs := rr.Resilience()
			s.Retransmits += rs.Retransmits
			s.FramesLost += rs.FramesLost
		}
	}
}

// CoordinatorFunc is the coordinator's protocol code. When it returns, the
// cluster shuts down: players blocked in Recv observe ErrShutdown.
type CoordinatorFunc func(ctx context.Context, c *Coordinator) error

// RunOption tweaks a session's execution strategy (never its accounting).
type RunOption func(*runOpts)

type runOpts struct {
	seqFanout bool
	dial      transport.Dialer
}

// SequentialFanout makes Broadcast/Gather serialize their k unicasts in
// player order, as the pre-engine runtime did. It exists for regression
// tests and benchmarks comparing the two schedules; on successful runs,
// results and Stats are identical either way.
func SequentialFanout() RunOption {
	return func(o *runOpts) { o.seqFanout = true }
}

// Over runs the session's links over d, overriding the topology's
// transport. Results and bit accounting are transport-independent; only
// wire mechanics (and WireBytes timing on error paths) differ.
func Over(d transport.Dialer) RunOption {
	return func(o *runOpts) { o.dial = d }
}

// Run executes one protocol in the coordinator model over a throwaway
// topology built from cfg. Prefer RunOn with a reused Topology when
// running several protocols against one cluster.
func Run(ctx context.Context, cfg Config, coord CoordinatorFunc, player PlayerFunc, opts ...RunOption) (Stats, error) {
	top, err := cfg.Topology()
	if err != nil {
		return Stats{}, err
	}
	return RunOn(ctx, top, coord, player, opts...)
}

// RunOn executes one protocol in the coordinator model over top: it opens
// one transport link per player (from the topology's dialer, or the Over
// option), spawns one goroutine per player running player, executes coord
// in the calling goroutine, then shuts the players down and waits for
// them. The first non-shutdown error from any party is returned alongside
// the cost snapshot. Player views come from the topology's cache. On
// successful runs the wire-byte counters are cross-checked against the bit
// meter (CheckWire).
func RunOn(ctx context.Context, top *Topology, coord CoordinatorFunc, player PlayerFunc, opts ...RunOption) (Stats, error) {
	start := time.Now()
	var o runOpts
	for _, opt := range opts {
		opt(&o)
	}
	dial := o.dial
	if dial == nil {
		dial = top.Transport()
	}
	k := top.K()
	meter := NewMeter(k)
	workers := parwork.Workers(top.intra)
	mIntraWorkers.Set(float64(workers))

	links, err := dial.Dial(k)
	if err != nil {
		return Stats{}, fmt.Errorf("comm: dial %s transport: %w", dial.Name(), err)
	}

	// A fault-injecting transport gets the resilience layer on every link:
	// checksummed envelopes, bounded retransmits, per-message deadlines.
	// Lossy runs skip CheckWire — retransmits and envelope overhead
	// intentionally exceed its bound — but keep the bit meter exact.
	lossy := false
	if fi, ok := dial.(transport.FaultInjector); ok && fi.FaultProfile().Enabled() {
		lossy = true
		spec := fi.FaultProfile()
		for j := range links {
			links[j] = transport.Harden(links[j], spec)
		}
	}

	pdone := make([]chan struct{}, k)
	c := &Coordinator{
		K:       k,
		N:       top.N(),
		Shared:  top.Shared(),
		Workers: workers,
		links:   make([]transport.Conn, k),
		pdone:   make([]<-chan struct{}, k),
		meter:   meter,
		seq:     o.seqFanout,
	}
	for j := 0; j < k; j++ {
		c.links[j] = links[j].A
		pdone[j] = make(chan struct{})
		c.pdone[j] = pdone[j]
	}

	errs := make(chan error, k)
	var wg sync.WaitGroup
	for j := 0; j < k; j++ {
		p := &Player{
			ID:      j,
			K:       k,
			N:       top.N(),
			Edges:   top.Input(j),
			View:    top.View(j),
			Shared:  top.Shared(),
			Workers: workers,
			conn:    links[j].B,
			meter:   meter,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Closing the player's endpoint unblocks a coordinator waiting
			// in Recv on, or Send to, a player that has terminated; pdone
			// closes first so Send reports the exit deterministically.
			defer links[p.ID].B.Close()
			defer close(pdone[p.ID])
			if err := player(ctx, p); err != nil && !errors.Is(err, ErrShutdown) {
				errs <- fmt.Errorf("player %d: %w", p.ID, err)
			}
		}()
	}

	coordErr := coord(ctx, c)
	// Closing the coordinator endpoints is the shutdown signal: players
	// blocked in Recv drain any in-flight message and observe ErrShutdown.
	for j := 0; j < k; j++ {
		links[j].A.Close()
	}
	wg.Wait()
	close(errs)

	stats := meter.Snapshot()
	c.addWire(&stats)

	// Player errors take precedence: a coordinator error of "player
	// terminated" is a symptom, the player's own failure is the cause.
	var finalErr error
	for err := range errs {
		if err != nil && finalErr == nil {
			finalErr = err
		}
	}
	if finalErr == nil && coordErr != nil {
		finalErr = fmt.Errorf("coordinator: %w", coordErr)
	}
	if finalErr == nil && !lossy {
		finalErr = CheckWire(stats)
	}
	observeSession("coordinator", start, stats, meter.takePhaseTimings(), c.links, finalErr)
	return stats, finalErr
}

// CheckWire cross-checks a session's wire-byte counters against its bit
// meter. Every metered message crosses a link as one frame of
// HeaderBytes(bits) + ceil(bits/8) wire bytes, so at any quiescent point
//
//	ceil(linkBits/8) ≤ WireBytes ≤ linkBits/8 + (MaxHeaderBytes+1)·Messages
//
// where linkBits = UpBits + DownBits (coordinator blackboard posts cross no
// link) and MaxHeaderBytes+1 bounds the per-frame overhead: at most
// MaxHeaderBytes bytes of length prefix plus one byte of payload padding.
// A snapshot without link counters (models that run without a transport)
// passes vacuously.
func CheckWire(s Stats) error {
	if s.PerLinkBytes == nil {
		return nil
	}
	linkBits := s.UpBits + s.DownBits
	lo := (linkBits + 7) / 8
	hi := linkBits/8 + int64(transport.MaxHeaderBytes+1)*s.Messages
	if s.WireBytes < lo || s.WireBytes > hi {
		return fmt.Errorf("comm: wire bytes %d inconsistent with meter: %d link bits over %d messages want [%d, %d]",
			s.WireBytes, linkBits, s.Messages, lo, hi)
	}
	return nil
}

// ServeLoop is a convenience player main loop: it calls handle for every
// coordinator message and sends back the reply, exiting cleanly on
// shutdown. Most request/reply protocols use it directly.
func ServeLoop(handle func(p *Player, req Msg) (Msg, error)) PlayerFunc {
	return func(ctx context.Context, p *Player) error {
		for {
			req, err := p.Recv(ctx)
			if err != nil {
				if errors.Is(err, ErrShutdown) {
					return nil
				}
				return err
			}
			reply, err := handle(p, req)
			if err != nil {
				return err
			}
			if err := p.Send(ctx, reply); err != nil {
				return err
			}
		}
	}
}
