package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"tricomm/internal/graph"
	"tricomm/internal/xrand"
)

// chanBuf is the per-channel buffer depth. One slot is enough to let a
// round-trip pipeline: a fan-out Send deposits without waiting for the
// player to reach Recv, and a player's reply Send never blocks on the
// coordinator reaching Gather.
const chanBuf = 1

// Player is a player's endpoint in the coordinator model: its identity,
// private input, the shared randomness, and its private channel to the
// coordinator. A Player is used only from its own goroutine.
type Player struct {
	// ID is the player index in [0, K).
	ID int
	// K is the number of players.
	K int
	// N is the vertex universe size.
	N int
	// Edges is the player's private input E_j.
	Edges []graph.Edge
	// View is the player's local graph (V, E_j), shared with (and cached
	// by) the topology the session runs over.
	View *graph.Graph
	// Shared is the public randomness (identical on all parties).
	Shared *xrand.Shared

	in   <-chan Msg
	out  chan<- Msg
	done <-chan struct{}
}

// Recv blocks for the next coordinator message. It returns ErrShutdown if
// the coordinator has finished, or the context error if ctx is canceled.
func (p *Player) Recv(ctx context.Context) (Msg, error) {
	select {
	case m, ok := <-p.in:
		if !ok {
			return Msg{}, ErrShutdown
		}
		return m, nil
	case <-p.done:
		// Drain-race: a message may already be in flight.
		select {
		case m, ok := <-p.in:
			if !ok {
				return Msg{}, ErrShutdown
			}
			return m, nil
		default:
			return Msg{}, ErrShutdown
		}
	case <-ctx.Done():
		return Msg{}, fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
}

// Send transmits a message to the coordinator. It returns ErrShutdown if
// the coordinator has already finished (the message is then dropped).
// Upstream bits are metered on the coordinator's receive side so that
// Coordinator.Stats, read from the coordinator goroutine, is always
// consistent with the messages it has observed.
func (p *Player) Send(ctx context.Context, m Msg) error {
	select {
	case p.out <- m:
		return nil
	case <-p.done:
		return ErrShutdown
	case <-ctx.Done():
		return fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
}

// PlayerFunc is the code run by each player goroutine.
type PlayerFunc func(ctx context.Context, p *Player) error

// Coordinator is the coordinator's endpoint: private channels to every
// player plus the shared randomness. Single-message Send/Recv are used
// from the coordinator goroutine only; Broadcast, Gather, and AskAll fan
// out internally but present the same single-goroutine interface.
type Coordinator struct {
	// K is the number of players.
	K int
	// N is the vertex universe size.
	N int
	// Shared is the public randomness.
	Shared *xrand.Shared

	to    []chan<- Msg
	from  []<-chan Msg
	pdone []<-chan struct{} // closed when the player goroutine exits
	meter *Meter
	seq   bool // sequential fan-out (regression-testing knob)
}

// Send transmits a message to player j. It returns ErrPlayerDone if the
// player goroutine has already exited — checked up front, so a dead
// player is reported deterministically instead of the message slipping
// into the channel buffer.
func (c *Coordinator) Send(ctx context.Context, j int, m Msg) error {
	select {
	case <-c.pdone[j]:
		return fmt.Errorf("%w: player %d", ErrPlayerDone, j)
	default:
	}
	select {
	case c.to[j] <- m:
		c.meter.AddDown(j, m.Bits())
		return nil
	case <-c.pdone[j]:
		return fmt.Errorf("%w: player %d", ErrPlayerDone, j)
	case <-ctx.Done():
		return fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
}

// Recv blocks for the next message from player j. It returns
// ErrPlayerDone if the player goroutine has exited (Run then surfaces the
// player's own error).
func (c *Coordinator) Recv(ctx context.Context, j int) (Msg, error) {
	select {
	case m, ok := <-c.from[j]:
		if !ok {
			return Msg{}, fmt.Errorf("%w: player %d", ErrPlayerDone, j)
		}
		c.meter.AddUp(j, m.Bits())
		return m, nil
	case <-ctx.Done():
		return Msg{}, fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
}

// firstErr returns the lowest-indexed non-nil error, so the concurrent
// fan-out reports the same error a sequential player-order loop would.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Broadcast sends m to every player concurrently. In the coordinator model
// a broadcast is k unicasts and is charged k·|m| bits; per-message atomic
// metering makes the accounting identical to the sequential schedule.
func (c *Coordinator) Broadcast(ctx context.Context, m Msg) error {
	if c.seq {
		for j := 0; j < c.K; j++ {
			if err := c.Send(ctx, j, m); err != nil {
				return err
			}
		}
		return nil
	}
	// Fast path: with buffered channels an idle player costs no goroutine.
	// A player that has already exited is routed to the slow path so Send
	// reports ErrPlayerDone instead of depositing into its dead buffer.
	var pending []int
	for j := 0; j < c.K; j++ {
		select {
		case <-c.pdone[j]:
			pending = append(pending, j)
			continue
		default:
		}
		select {
		case c.to[j] <- m:
			c.meter.AddDown(j, m.Bits())
		default:
			pending = append(pending, j)
		}
	}
	if len(pending) == 0 {
		return nil
	}
	errs := make([]error, len(pending))
	var wg sync.WaitGroup
	for i, j := range pending {
		wg.Add(1)
		go func(i, j int) {
			defer wg.Done()
			errs[i] = c.Send(ctx, j, m)
		}(i, j)
	}
	wg.Wait()
	return firstErr(errs)
}

// Gather receives one message from every player concurrently; the returned
// slice is in player order regardless of arrival order.
func (c *Coordinator) Gather(ctx context.Context) ([]Msg, error) {
	msgs := make([]Msg, c.K)
	if c.seq {
		for j := 0; j < c.K; j++ {
			m, err := c.Recv(ctx, j)
			if err != nil {
				return nil, err
			}
			msgs[j] = m
		}
		return msgs, nil
	}
	// Fast path: drain replies already sitting in the channel buffers.
	var pending []int
	for j := 0; j < c.K; j++ {
		select {
		case m, ok := <-c.from[j]:
			if !ok {
				return nil, fmt.Errorf("%w: player %d", ErrPlayerDone, j)
			}
			c.meter.AddUp(j, m.Bits())
			msgs[j] = m
		default:
			pending = append(pending, j)
		}
	}
	if len(pending) == 0 {
		return msgs, nil
	}
	// Fan in concurrently, returning on the first failure so that a dead
	// player aborts the round even while another player never replies —
	// waiting for all k would deadlock the session on that player.
	// Receivers still parked in Recv when an error wins unwind at session
	// shutdown; the result channel is buffered so they never block on it.
	type gathered struct {
		j   int
		m   Msg
		err error
	}
	ch := make(chan gathered, len(pending))
	for _, j := range pending {
		go func(j int) {
			m, err := c.Recv(ctx, j)
			ch <- gathered{j: j, m: m, err: err}
		}(j)
	}
	for range pending {
		g := <-ch
		if g.err != nil {
			return nil, g.err
		}
		msgs[g.j] = g.m
	}
	return msgs, nil
}

// Ask sends m to player j and waits for the reply — one coordinator-model
// round with a single player.
func (c *Coordinator) Ask(ctx context.Context, j int, m Msg) (Msg, error) {
	if err := c.Send(ctx, j, m); err != nil {
		return Msg{}, err
	}
	return c.Recv(ctx, j)
}

// AskAll sends m to every player and gathers all replies, counting one
// round.
func (c *Coordinator) AskAll(ctx context.Context, m Msg) ([]Msg, error) {
	c.Round()
	if err := c.Broadcast(ctx, m); err != nil {
		return nil, err
	}
	return c.Gather(ctx)
}

// Round declares the start of a new protocol round (for accounting only).
func (c *Coordinator) Round() { c.meter.AddRound() }

// BeginPhase attributes subsequent traffic to the named phase (see
// Meter.BeginPhase). Call between rounds.
func (c *Coordinator) BeginPhase(name string) { c.meter.BeginPhase(name) }

// Stats snapshots the communication cost so far; protocols use it to
// attribute bits to phases.
func (c *Coordinator) Stats() Stats { return c.meter.Snapshot() }

// CoordinatorFunc is the coordinator's protocol code. When it returns, the
// cluster shuts down: players blocked in Recv observe ErrShutdown.
type CoordinatorFunc func(ctx context.Context, c *Coordinator) error

// RunOption tweaks a session's execution strategy (never its accounting).
type RunOption func(*runOpts)

type runOpts struct {
	seqFanout bool
}

// SequentialFanout makes Broadcast/Gather serialize their k unicasts in
// player order, as the pre-engine runtime did. It exists for regression
// tests and benchmarks comparing the two schedules; on successful runs,
// results and Stats are identical either way.
func SequentialFanout() RunOption {
	return func(o *runOpts) { o.seqFanout = true }
}

// Run executes one protocol in the coordinator model over a throwaway
// topology built from cfg. Prefer RunOn with a reused Topology when
// running several protocols against one cluster.
func Run(ctx context.Context, cfg Config, coord CoordinatorFunc, player PlayerFunc, opts ...RunOption) (Stats, error) {
	top, err := cfg.Topology()
	if err != nil {
		return Stats{}, err
	}
	return RunOn(ctx, top, coord, player, opts...)
}

// RunOn executes one protocol in the coordinator model over top: it spawns
// one goroutine per player running player, executes coord in the calling
// goroutine, then shuts the players down and waits for them. The first
// non-shutdown error from any party is returned alongside the cost
// snapshot. Player views come from the topology's cache.
func RunOn(ctx context.Context, top *Topology, coord CoordinatorFunc, player PlayerFunc, opts ...RunOption) (Stats, error) {
	var o runOpts
	for _, opt := range opts {
		opt(&o)
	}
	k := top.K()
	meter := NewMeter(k)
	done := make(chan struct{})

	toPlayer := make([]chan Msg, k)
	toCoord := make([]chan Msg, k)
	for j := 0; j < k; j++ {
		toPlayer[j] = make(chan Msg, chanBuf)
		toCoord[j] = make(chan Msg, chanBuf)
	}

	pdone := make([]chan struct{}, k)
	c := &Coordinator{
		K:      k,
		N:      top.N(),
		Shared: top.Shared(),
		to:     make([]chan<- Msg, k),
		from:   make([]<-chan Msg, k),
		pdone:  make([]<-chan struct{}, k),
		meter:  meter,
		seq:    o.seqFanout,
	}
	for j := 0; j < k; j++ {
		c.to[j] = toPlayer[j]
		c.from[j] = toCoord[j]
		pdone[j] = make(chan struct{})
		c.pdone[j] = pdone[j]
	}

	errs := make(chan error, k)
	var wg sync.WaitGroup
	for j := 0; j < k; j++ {
		p := &Player{
			ID:     j,
			K:      k,
			N:      top.N(),
			Edges:  top.Input(j),
			View:   top.View(j),
			Shared: top.Shared(),
			in:     toPlayer[j],
			out:    toCoord[j],
			done:   done,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Closing these channels unblocks a coordinator waiting in
			// Recv on, or Send to, a player that has terminated.
			defer close(toCoord[p.ID])
			defer close(pdone[p.ID])
			if err := player(ctx, p); err != nil && !errors.Is(err, ErrShutdown) {
				errs <- fmt.Errorf("player %d: %w", p.ID, err)
			}
		}()
	}

	coordErr := coord(ctx, c)
	close(done)
	wg.Wait()
	close(errs)

	// Player errors take precedence: a coordinator error of "player
	// terminated" is a symptom, the player's own failure is the cause.
	for err := range errs {
		if err != nil {
			return meter.Snapshot(), err
		}
	}
	if coordErr != nil {
		return meter.Snapshot(), fmt.Errorf("coordinator: %w", coordErr)
	}
	return meter.Snapshot(), nil
}

// ServeLoop is a convenience player main loop: it calls handle for every
// coordinator message and sends back the reply, exiting cleanly on
// shutdown. Most request/reply protocols use it directly.
func ServeLoop(handle func(p *Player, req Msg) (Msg, error)) PlayerFunc {
	return func(ctx context.Context, p *Player) error {
		for {
			req, err := p.Recv(ctx)
			if err != nil {
				if errors.Is(err, ErrShutdown) {
					return nil
				}
				return err
			}
			reply, err := handle(p, req)
			if err != nil {
				return err
			}
			if err := p.Send(ctx, reply); err != nil {
				return err
			}
		}
	}
}
