package engine

import (
	"tricomm/internal/transport"
	"tricomm/internal/wire"
)

// Msg is an immutable bit-string message. The zero value is the empty
// message.
type Msg struct {
	bits int
	data []byte
}

// FromWriter seals the bits written to w into a message. The writer's
// buffer is copied, so w may be reused afterwards.
func FromWriter(w *wire.Writer) Msg {
	data := make([]byte, len(w.Bytes()))
	copy(data, w.Bytes())
	return Msg{bits: w.BitLen(), data: data}
}

// Bits reports the message length in bits.
func (m Msg) Bits() int { return m.bits }

// IsEmpty reports whether the message carries no bits.
func (m Msg) IsEmpty() bool { return m.bits == 0 }

// Reader returns a fresh reader over the message bits.
func (m Msg) Reader() *wire.Reader { return wire.NewReader(m.data, m.bits) }

// Ack is a conventional 1-bit acknowledgement message.
func Ack() Msg {
	var w wire.Writer
	w.WriteBit(1)
	return FromWriter(&w)
}

// frameOf views the message as a transport frame. No copy: both forms are
// immutable, so the frame may alias the message bytes.
func frameOf(m Msg) transport.Frame { return transport.Frame{Bits: m.bits, Data: m.data} }

// msgOf views a received transport frame as a message, again without
// copying; transports never reuse a delivered frame's buffer.
func msgOf(f transport.Frame) Msg { return Msg{bits: f.Bits, data: f.Data} }
