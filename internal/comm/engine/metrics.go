package engine

import (
	"time"

	"tricomm/internal/obs"
	"tricomm/internal/transport"
)

// Engine-layer metrics. Instrumentation is confined to session boundaries:
// every counter below is written exactly once per run, after the session's
// deterministic outputs (Stats, error) are already fixed, so the
// per-message hot path — AddUp/AddDown, fan-out, frame I/O — carries zero
// instrumentation and instrumented runs stay byte-identical to bare ones.
// The phase label vocabulary is whatever protocols pass to BeginPhase: a
// closed, code-defined set, so cardinality is bounded by the protocol
// suite, not by input data.
var (
	mSessions = obs.NewCounterVec("tricomm_engine_sessions_total",
		"Protocol sessions started, by execution model.", "model")
	mSessionsAborted = obs.NewCounter("tricomm_engine_sessions_aborted_total",
		"Protocol sessions that finished with an error.")
	mBits = obs.NewCounter("tricomm_engine_bits_total",
		"Protocol bits exchanged across all sessions (meter TotalBits).")
	mMessages = obs.NewCounter("tricomm_engine_messages_total",
		"Protocol messages metered across all sessions.")
	mRounds = obs.NewCounter("tricomm_engine_rounds_total",
		"Protocol rounds declared across all sessions.")
	mPhaseBits = obs.NewCounterVec("tricomm_engine_phase_bits_total",
		"Protocol bits attributed to named phases (BeginPhase).", "phase")
	mPhaseSeconds = obs.NewCounterVec("tricomm_engine_phase_seconds_total",
		"Wall-clock seconds attributed to named phases.", "phase")
	mSessionSeconds = obs.NewHistogram("tricomm_engine_session_seconds",
		"Wall-clock duration of one protocol session.", obs.DurationBuckets())
	mIntraWorkers = obs.NewGauge("tricomm_engine_intra_workers",
		"Resolved intra-phase worker count of the most recently started session.")
	mPhaseParSeconds = obs.NewCounterVec("tricomm_engine_phase_parallel_seconds_total",
		"Wall-clock seconds spent inside intra-phase parallel regions, by phase.", "phase")
)

// observeSession folds one finished session into the engine metrics and,
// for transport-backed sessions, forwards the link totals to the transport
// layer. It runs after the session's Stats snapshot and final error are
// decided, and never influences either.
func observeSession(model string, start time.Time, stats Stats, timings []phaseTiming, links []transport.Conn, err error) {
	mSessions.With(model).Inc()
	if err != nil {
		mSessionsAborted.Inc()
	}
	mBits.Add(float64(stats.TotalBits))
	mMessages.Add(float64(stats.Messages))
	mRounds.Add(float64(stats.Rounds))
	for _, p := range stats.Phases {
		mPhaseBits.With(p.Name).Add(float64(p.Bits))
	}
	for _, t := range timings {
		if t.seconds > 0 {
			mPhaseSeconds.With(t.name).Add(t.seconds)
		}
		if t.parSeconds > 0 {
			mPhaseParSeconds.With(t.name).Add(t.parSeconds)
		}
	}
	mSessionSeconds.Observe(time.Since(start).Seconds())
	if len(links) > 0 {
		var frames int64
		for _, conn := range links {
			ls := conn.Stats()
			frames += ls.FramesOut + ls.FramesIn
		}
		transport.ObserveWire(stats.WireBytes, frames, stats.Retransmits, stats.FramesLost)
	}
}
