package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"tricomm/internal/graph"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

func testTopology(t *testing.T, k int) *Topology {
	t.Helper()
	g := graph.Complete(8)
	edges := g.Edges()
	inputs := make([][]wire.Edge, k)
	for i, e := range edges {
		inputs[i%k] = append(inputs[i%k], e)
	}
	top, err := NewTopology(8, inputs, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestTopologyViewCacheReuse(t *testing.T) {
	top := testTopology(t, 4)
	// Views are deterministic, built lazily, and cached: the same pointer
	// must come back on every access and from every run.
	v0 := top.View(0)
	if v0 == nil || v0.M() != len(top.Input(0)) {
		t.Fatalf("view 0 wrong: %+v", v0)
	}
	if top.View(0) != v0 {
		t.Fatal("view rebuilt on second access")
	}
	var fromRun *graph.Graph
	_, err := RunOn(context.Background(), top,
		func(ctx context.Context, c *Coordinator) error {
			_, err := c.AskAll(ctx, Ack())
			return err
		},
		ServeLoop(func(p *Player, _ Msg) (Msg, error) {
			if p.ID == 0 {
				fromRun = p.View
			}
			return Ack(), nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if fromRun != v0 {
		t.Fatal("run did not reuse the cached view")
	}
	// WithShared shares the cache.
	if top.WithShared(xrand.New(2)).View(0) != v0 {
		t.Fatal("WithShared did not share the view cache")
	}
}

func TestTopologyViewConcurrentAccess(t *testing.T) {
	// Many goroutines racing to materialize the same views must all see
	// one build (run under -race in CI).
	top := testTopology(t, 4)
	var wg sync.WaitGroup
	views := make([]*graph.Graph, 32)
	for i := range views {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i] = top.View(i % 4)
		}(i)
	}
	wg.Wait()
	for i, v := range views {
		if v != top.View(i%4) {
			t.Fatalf("goroutine %d saw a different view", i)
		}
	}
}

// chatter is a synthetic multi-round protocol with per-player
// variable-size replies, exercising Broadcast/Gather/AskAll fan-out.
func chatter(rounds int) (CoordinatorFunc, PlayerFunc) {
	coord := func(ctx context.Context, c *Coordinator) error {
		for r := 0; r < rounds; r++ {
			var w wire.Writer
			w.WriteUvarint(uint64(r))
			replies, err := c.AskAll(ctx, FromWriter(&w))
			if err != nil {
				return err
			}
			for j, m := range replies {
				v, err := m.Reader().ReadUvarint()
				if err != nil {
					return err
				}
				if int(v) != j*(r+1) {
					return fmt.Errorf("round %d: player %d replied %d", r, j, v)
				}
			}
		}
		return nil
	}
	player := ServeLoop(func(p *Player, req Msg) (Msg, error) {
		r, err := req.Reader().ReadUvarint()
		if err != nil {
			return Msg{}, err
		}
		var w wire.Writer
		w.WriteUvarint(uint64(p.ID) * (r + 1))
		return FromWriter(&w), nil
	})
	return coord, player
}

func TestConcurrentFanoutMatchesSequentialStats(t *testing.T) {
	// The regression the engine promises: concurrent fan-out changes the
	// schedule, never the accounting. Both schedules over the same
	// topology must produce identical Stats.
	top := testTopology(t, 8)
	coord, player := chatter(25)
	conc, err := RunOn(context.Background(), top, coord, player)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunOn(context.Background(), top, coord, player, SequentialFanout())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(conc, seq) {
		t.Fatalf("stats diverged:\nconcurrent: %+v\nsequential: %+v", conc, seq)
	}
	if conc.Rounds != 25 || conc.Messages != 25*8*2 {
		t.Fatalf("unexpected totals: %+v", conc)
	}
}

func TestParallelBroadcastGatherRace(t *testing.T) {
	// Heavy fan-out with k=16 players and busy replies; meaningful mostly
	// under -race, which CI runs.
	top := testTopology(t, 16)
	coord, player := chatter(50)
	if _, err := RunOn(context.Background(), top, coord, player); err != nil {
		t.Fatal(err)
	}
}

func TestCancellationMidRound(t *testing.T) {
	// Cancel while a round is in flight: one player never replies, so the
	// coordinator is parked in Gather when the context dies. Everything
	// must unwind, with ErrCanceled surfaced.
	top := testTopology(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = RunOn(ctx, top,
			func(ctx context.Context, c *Coordinator) error {
				_, err := c.AskAll(ctx, Ack())
				return err
			},
			func(ctx context.Context, p *Player) error {
				if _, err := p.Recv(ctx); err != nil {
					if errors.Is(err, ErrShutdown) || errors.Is(err, ErrCanceled) {
						return nil
					}
					return err
				}
				if p.ID == 2 {
					close(started)
					<-ctx.Done() // never reply
					return nil
				}
				return p.Send(ctx, Ack())
			})
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("round never started")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unwind the session")
	}
	if !errors.Is(runErr, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", runErr)
	}
}

func TestGatherUnblocksOnPlayerError(t *testing.T) {
	// One player dies mid-round without replying while another is parked
	// waiting for a request that never comes: the concurrent fan-in must
	// surface the error instead of waiting for the silent player forever.
	top := testTopology(t, 3)
	boom := errors.New("boom")
	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = RunOn(context.Background(), top,
			func(ctx context.Context, c *Coordinator) error {
				_, err := c.AskAll(ctx, Ack())
				return err
			},
			func(ctx context.Context, p *Player) error {
				if _, err := p.Recv(ctx); err != nil {
					if errors.Is(err, ErrShutdown) {
						return nil
					}
					return err
				}
				switch p.ID {
				case 0:
					return boom // dies without replying
				case 1:
					// Silent: waits for a second request that never comes;
					// must be unblocked by session shutdown.
					_, err := p.Recv(ctx)
					if errors.Is(err, ErrShutdown) {
						return nil
					}
					return err
				default:
					return p.Send(ctx, Ack())
				}
			})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("gather deadlocked on the silent player")
	}
	if !errors.Is(runErr, boom) {
		t.Fatalf("err = %v, want %v", runErr, boom)
	}
}

func TestMeterPhaseAttribution(t *testing.T) {
	top := testTopology(t, 3)
	stats, err := RunOn(context.Background(), top,
		func(ctx context.Context, c *Coordinator) error {
			c.BeginPhase("ping")
			if _, err := c.AskAll(ctx, Ack()); err != nil {
				return err
			}
			c.BeginPhase("pong")
			if _, err := c.AskAll(ctx, Ack()); err != nil {
				return err
			}
			c.BeginPhase("ping") // resumes the first counter
			_, err := c.AskAll(ctx, Ack())
			return err
		},
		ServeLoop(func(p *Player, _ Msg) (Msg, error) { return Ack(), nil }))
	if err != nil {
		t.Fatal(err)
	}
	// 3 rounds × 3 players × (1 down + 1 up) = 18 bits, split 12/6.
	if stats.Phase("ping") != 12 || stats.Phase("pong") != 6 {
		t.Fatalf("phase split = %v, want ping=12 pong=6", stats.Phases)
	}
	// Phases must come out in declaration order, not hash order.
	want := []Phase{{Name: "ping", Bits: 12}, {Name: "pong", Bits: 6}}
	if !reflect.DeepEqual(stats.Phases, want) {
		t.Fatalf("phase order = %v, want %v", stats.Phases, want)
	}
	var sum int64
	for _, p := range stats.Phases {
		sum += p.Bits
	}
	if sum != stats.TotalBits {
		t.Fatalf("phases sum %d != total %d", sum, stats.TotalBits)
	}
}

func TestBoardCoordinatorPostsDedicatedCounter(t *testing.T) {
	b := NewBoard(2)
	var w wire.Writer
	w.WriteUint(0, 20)
	if err := b.Post(0, FromWriter(&w)); err != nil {
		t.Fatal(err)
	}
	var w2 wire.Writer
	w2.WriteUint(0, 7)
	if err := b.Post(CoordinatorID, FromWriter(&w2)); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.CoordinatorBits != 7 {
		t.Fatalf("CoordinatorBits = %d, want 7", s.CoordinatorBits)
	}
	if s.TotalBits != 27 {
		t.Fatalf("TotalBits = %d, want 27", s.TotalBits)
	}
	// The fix: board traffic from the coordinator lands on no player
	// channel — previously it was misattributed to player 0.
	if s.PerPlayer[0] != 20 || s.PerPlayer[1] != 0 {
		t.Fatalf("PerPlayer = %v, want [20 0]", s.PerPlayer)
	}
}

func TestSimultaneousOnReusesViews(t *testing.T) {
	top := testTopology(t, 4)
	seen := make([]*graph.Graph, 4)
	_, err := RunSimultaneousOn(context.Background(), top,
		func(p *SimPlayer) (Msg, error) {
			seen[p.ID] = p.View
			return Ack(), nil
		},
		func(_ *xrand.Shared, msgs []Msg) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range seen {
		if v != top.View(j) {
			t.Fatalf("player %d got a rebuilt view", j)
		}
	}
}
