package comm

import (
	"context"

	"tricomm/internal/comm/engine"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// Sentinel errors for the coordinator model.
var (
	// ErrShutdown is returned from Player.Recv when the coordinator has
	// finished and the cluster is shutting down gracefully. Player loops
	// should treat it as a normal exit.
	ErrShutdown = engine.ErrShutdown
	// ErrCanceled is returned when the run context is canceled.
	ErrCanceled = engine.ErrCanceled
	// ErrPlayerDone is returned from Coordinator.Recv when the player has
	// terminated (usually with an error of its own, which Run reports).
	ErrPlayerDone = engine.ErrPlayerDone
	// ErrSessionAborted is returned when a session dies to injected link
	// faults: a run over a Faulty transport either completes with the
	// paper's guarantees intact or surfaces this error.
	ErrSessionAborted = engine.ErrSessionAborted
)

// Config describes a protocol instance: the vertex universe, the players'
// private inputs, and the shared randomness.
type Config = engine.Config

// Topology is the reusable per-cluster state: inputs, shared randomness,
// and the cached per-player views. Build one with NewTopology (or
// Config.Topology) and pass it to the *On run entry points to amortize
// view construction across many protocol runs.
type Topology = engine.Topology

// NewTopology validates the instance and returns a topology with an empty
// view cache.
func NewTopology(n int, inputs [][]wire.Edge, shared *xrand.Shared) (*Topology, error) {
	return engine.NewTopology(n, inputs, shared)
}

// Player is a player's endpoint in the coordinator model: its identity,
// private input, the shared randomness, and its private channel to the
// coordinator. A Player is used only from its own goroutine.
type Player = engine.Player

// PlayerFunc is the code run by each player goroutine.
type PlayerFunc = engine.PlayerFunc

// Coordinator is the coordinator's endpoint: private channels to every
// player plus the shared randomness. Broadcast, Gather, and AskAll fan out
// concurrently; single-message Send/Recv are used from the coordinator
// goroutine only.
type Coordinator = engine.Coordinator

// CoordinatorFunc is the coordinator's protocol code. When it returns, the
// cluster shuts down: players blocked in Recv observe ErrShutdown.
type CoordinatorFunc = engine.CoordinatorFunc

// RunOption tweaks a run's execution strategy (never its accounting).
type RunOption = engine.RunOption

// SequentialFanout serializes Broadcast/Gather unicasts in player order,
// as the pre-engine runtime did; for regression tests and benchmarks.
func SequentialFanout() RunOption { return engine.SequentialFanout() }

// Run executes one protocol in the coordinator model over a throwaway
// topology built from cfg; see RunOn for the reusable-topology form.
func Run(ctx context.Context, cfg Config, coord CoordinatorFunc, player PlayerFunc, opts ...RunOption) (Stats, error) {
	return engine.Run(ctx, cfg, coord, player, opts...)
}

// RunOn executes one protocol in the coordinator model over top, reusing
// its cached player views: it spawns one goroutine per player running
// player, executes coord in the calling goroutine, then shuts the players
// down and waits for them. The first non-shutdown error from any party is
// returned alongside the cost snapshot.
func RunOn(ctx context.Context, top *Topology, coord CoordinatorFunc, player PlayerFunc, opts ...RunOption) (Stats, error) {
	return engine.RunOn(ctx, top, coord, player, opts...)
}

// ServeLoop is a convenience player main loop: it calls handle for every
// coordinator message and sends back the reply, exiting cleanly on
// shutdown. Most request/reply protocols use it directly.
func ServeLoop(handle func(p *Player, req Msg) (Msg, error)) PlayerFunc {
	return engine.ServeLoop(handle)
}
