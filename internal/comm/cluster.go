package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"tricomm/internal/graph"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// Sentinel errors for the coordinator model.
var (
	// ErrShutdown is returned from Player.Recv when the coordinator has
	// finished and the cluster is shutting down gracefully. Player loops
	// should treat it as a normal exit.
	ErrShutdown = errors.New("comm: cluster shut down")
	// ErrCanceled is returned when the run context is canceled.
	ErrCanceled = errors.New("comm: run canceled")
	// ErrPlayerDone is returned from Coordinator.Recv when the player has
	// terminated (usually with an error of its own, which Run reports).
	ErrPlayerDone = errors.New("comm: player terminated")
)

// Config describes a protocol instance: the vertex universe, the players'
// private inputs, and the shared randomness.
type Config struct {
	// N is the number of vertices of the underlying graph.
	N int
	// Inputs[j] is player j's private edge set. len(Inputs) is k.
	Inputs [][]wire.Edge
	// Shared is the public random string all parties can read.
	Shared *xrand.Shared
}

// K reports the number of players.
func (c Config) K() int { return len(c.Inputs) }

func (c Config) validate() error {
	if c.N < 0 {
		return fmt.Errorf("comm: negative vertex count %d", c.N)
	}
	if len(c.Inputs) == 0 {
		return errors.New("comm: no players")
	}
	if c.Shared == nil {
		return errors.New("comm: nil shared randomness")
	}
	return nil
}

// Player is a player's endpoint in the coordinator model: its identity,
// private input, the shared randomness, and its private channel to the
// coordinator. A Player is used only from its own goroutine.
type Player struct {
	// ID is the player index in [0, K).
	ID int
	// K is the number of players.
	K int
	// N is the vertex universe size.
	N int
	// Edges is the player's private input E_j.
	Edges []wire.Edge
	// View is the player's local graph (V, E_j).
	View *graph.Graph
	// Shared is the public randomness (identical on all parties).
	Shared *xrand.Shared

	in   <-chan Msg
	out  chan<- Msg
	done <-chan struct{}
}

// Recv blocks for the next coordinator message. It returns ErrShutdown if
// the coordinator has finished, or the context error if ctx is canceled.
func (p *Player) Recv(ctx context.Context) (Msg, error) {
	select {
	case m, ok := <-p.in:
		if !ok {
			return Msg{}, ErrShutdown
		}
		return m, nil
	case <-p.done:
		// Drain-race: a message may already be in flight.
		select {
		case m, ok := <-p.in:
			if !ok {
				return Msg{}, ErrShutdown
			}
			return m, nil
		default:
			return Msg{}, ErrShutdown
		}
	case <-ctx.Done():
		return Msg{}, fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
}

// Send transmits a message to the coordinator. It returns ErrShutdown if
// the coordinator has already finished (the message is then dropped).
// Upstream bits are metered on the coordinator's receive side so that
// Coordinator.Stats, read from the coordinator goroutine, is always
// consistent with the messages it has observed.
func (p *Player) Send(ctx context.Context, m Msg) error {
	select {
	case p.out <- m:
		return nil
	case <-p.done:
		return ErrShutdown
	case <-ctx.Done():
		return fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
}

// PlayerFunc is the code run by each player goroutine.
type PlayerFunc func(ctx context.Context, p *Player) error

// Coordinator is the coordinator's endpoint: private channels to every
// player plus the shared randomness. It is used from the coordinator
// goroutine only.
type Coordinator struct {
	// K is the number of players.
	K int
	// N is the vertex universe size.
	N int
	// Shared is the public randomness.
	Shared *xrand.Shared

	to    []chan<- Msg
	from  []<-chan Msg
	pdone []<-chan struct{} // closed when the player goroutine exits
	meter *Meter
}

// Send transmits a message to player j. It returns ErrPlayerDone if the
// player goroutine has already exited.
func (c *Coordinator) Send(ctx context.Context, j int, m Msg) error {
	select {
	case c.to[j] <- m:
		c.meter.addDown(j, m.Bits())
		return nil
	case <-c.pdone[j]:
		return fmt.Errorf("%w: player %d", ErrPlayerDone, j)
	case <-ctx.Done():
		return fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
}

// Recv blocks for the next message from player j. It returns
// ErrPlayerDone if the player goroutine has exited (Run then surfaces the
// player's own error).
func (c *Coordinator) Recv(ctx context.Context, j int) (Msg, error) {
	select {
	case m, ok := <-c.from[j]:
		if !ok {
			return Msg{}, fmt.Errorf("%w: player %d", ErrPlayerDone, j)
		}
		c.meter.addUp(j, m.Bits())
		return m, nil
	case <-ctx.Done():
		return Msg{}, fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
}

// Broadcast sends m to every player. In the coordinator model a broadcast
// is k unicasts and is charged k·|m| bits.
func (c *Coordinator) Broadcast(ctx context.Context, m Msg) error {
	for j := 0; j < c.K; j++ {
		if err := c.Send(ctx, j, m); err != nil {
			return err
		}
	}
	return nil
}

// Gather receives one message from every player, in player order.
func (c *Coordinator) Gather(ctx context.Context) ([]Msg, error) {
	msgs := make([]Msg, c.K)
	for j := 0; j < c.K; j++ {
		m, err := c.Recv(ctx, j)
		if err != nil {
			return nil, err
		}
		msgs[j] = m
	}
	return msgs, nil
}

// Ask sends m to player j and waits for the reply — one coordinator-model
// round with a single player.
func (c *Coordinator) Ask(ctx context.Context, j int, m Msg) (Msg, error) {
	if err := c.Send(ctx, j, m); err != nil {
		return Msg{}, err
	}
	return c.Recv(ctx, j)
}

// AskAll sends m to every player and gathers all replies, counting one
// round.
func (c *Coordinator) AskAll(ctx context.Context, m Msg) ([]Msg, error) {
	c.Round()
	if err := c.Broadcast(ctx, m); err != nil {
		return nil, err
	}
	return c.Gather(ctx)
}

// Round declares the start of a new protocol round (for accounting only).
func (c *Coordinator) Round() { c.meter.addRound() }

// Stats snapshots the communication cost so far; protocols use it to
// attribute bits to phases.
func (c *Coordinator) Stats() Stats { return c.meter.Snapshot() }

// CoordinatorFunc is the coordinator's protocol code. When it returns, the
// cluster shuts down: players blocked in Recv observe ErrShutdown.
type CoordinatorFunc func(ctx context.Context, c *Coordinator) error

// Run executes one protocol in the coordinator model: it spawns one
// goroutine per player running player, executes coord in the calling
// goroutine, then shuts the players down and waits for them. The first
// non-shutdown error from any party is returned alongside the cost
// snapshot.
func Run(ctx context.Context, cfg Config, coord CoordinatorFunc, player PlayerFunc) (Stats, error) {
	if err := cfg.validate(); err != nil {
		return Stats{}, err
	}
	k := cfg.K()
	meter := newMeter(k)
	done := make(chan struct{})

	toPlayer := make([]chan Msg, k)
	toCoord := make([]chan Msg, k)
	for j := 0; j < k; j++ {
		toPlayer[j] = make(chan Msg)
		toCoord[j] = make(chan Msg)
	}

	pdone := make([]chan struct{}, k)
	c := &Coordinator{
		K:      k,
		N:      cfg.N,
		Shared: cfg.Shared,
		to:     make([]chan<- Msg, k),
		from:   make([]<-chan Msg, k),
		pdone:  make([]<-chan struct{}, k),
		meter:  meter,
	}
	for j := 0; j < k; j++ {
		c.to[j] = toPlayer[j]
		c.from[j] = toCoord[j]
		pdone[j] = make(chan struct{})
		c.pdone[j] = pdone[j]
	}

	errs := make(chan error, k)
	var wg sync.WaitGroup
	for j := 0; j < k; j++ {
		p := &Player{
			ID:     j,
			K:      k,
			N:      cfg.N,
			Edges:  cfg.Inputs[j],
			View:   graph.FromEdges(cfg.N, cfg.Inputs[j]),
			Shared: cfg.Shared,
			in:     toPlayer[j],
			out:    toCoord[j],
			done:   done,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Closing these channels unblocks a coordinator waiting in
			// Recv on, or Send to, a player that has terminated.
			defer close(toCoord[p.ID])
			defer close(pdone[p.ID])
			if err := player(ctx, p); err != nil && !errors.Is(err, ErrShutdown) {
				errs <- fmt.Errorf("player %d: %w", p.ID, err)
			}
		}()
	}

	coordErr := coord(ctx, c)
	close(done)
	wg.Wait()
	close(errs)

	// Player errors take precedence: a coordinator error of "player
	// terminated" is a symptom, the player's own failure is the cause.
	for err := range errs {
		if err != nil {
			return meter.Snapshot(), err
		}
	}
	if coordErr != nil {
		return meter.Snapshot(), fmt.Errorf("coordinator: %w", coordErr)
	}
	return meter.Snapshot(), nil
}

// ServeLoop is a convenience player main loop: it calls handle for every
// coordinator message and sends back the reply, exiting cleanly on
// shutdown. Most request/reply protocols use it directly.
func ServeLoop(handle func(p *Player, req Msg) (Msg, error)) PlayerFunc {
	return func(ctx context.Context, p *Player) error {
		for {
			req, err := p.Recv(ctx)
			if err != nil {
				if errors.Is(err, ErrShutdown) {
					return nil
				}
				return err
			}
			reply, err := handle(p, req)
			if err != nil {
				return err
			}
			if err := p.Send(ctx, reply); err != nil {
				return err
			}
		}
	}
}
