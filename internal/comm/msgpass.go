package comm

import (
	"fmt"

	"tricomm/internal/wire"
)

// PeerNet is the message-passing model of §2: every two players have a
// private channel and each message names its recipient. The paper notes
// this model is equivalent to the coordinator model up to a log k factor:
// simulating message passing through a coordinator appends ⌈log₂ k⌉
// routing bits per message so the coordinator knows where to forward.
//
// PeerNet is a synchronous simulation (protocol code schedules the
// sends); it meters both the native peer-to-peer cost and the
// coordinator-simulated cost, making the §2 equivalence measurable.
type PeerNet struct {
	k         int
	meter     *Meter
	routed    int64 // additional routing bits under coordinator simulation
	queues    map[int][]peerMsg
	routeBits int
}

type peerMsg struct {
	from int
	msg  Msg
}

// NewPeerNet returns an empty peer network for k players.
func NewPeerNet(k int) *PeerNet {
	if k < 2 {
		panic(fmt.Sprintf("comm: peer network needs k ≥ 2, got %d", k))
	}
	return &PeerNet{
		k:         k,
		meter:     NewMeter(k),
		queues:    make(map[int][]peerMsg),
		routeBits: wire.BitsFor(k),
	}
}

// Send enqueues a message from player `from` to player `to`. The native
// cost is the message bits; the coordinator-simulated cost additionally
// pays ⌈log₂ k⌉ routing bits and the second hop.
func (pn *PeerNet) Send(from, to int, m Msg) error {
	if from < 0 || from >= pn.k || to < 0 || to >= pn.k || from == to {
		return fmt.Errorf("comm: invalid peer route %d → %d (k=%d)", from, to, pn.k)
	}
	pn.meter.AddUp(from, m.Bits())
	pn.routed += int64(pn.routeBits)
	pn.queues[to] = append(pn.queues[to], peerMsg{from: from, msg: m})
	return nil
}

// Recv dequeues the next pending message for player `to`, in FIFO order.
func (pn *PeerNet) Recv(to int) (from int, m Msg, ok bool) {
	q := pn.queues[to]
	if len(q) == 0 {
		return 0, Msg{}, false
	}
	head := q[0]
	pn.queues[to] = q[1:]
	return head.from, head.msg, true
}

// Pending reports the number of undelivered messages for player `to`.
func (pn *PeerNet) Pending(to int) int { return len(pn.queues[to]) }

// Stats reports the native message-passing cost.
func (pn *PeerNet) Stats() Stats { return pn.meter.Snapshot() }

// CoordinatorSimulatedBits reports the cost of running this transcript
// through a coordinator per the §2 simulation: every message crosses two
// hops (sender → coordinator → recipient) and carries ⌈log₂ k⌉ routing
// bits on the first hop.
func (pn *PeerNet) CoordinatorSimulatedBits() int64 {
	s := pn.meter.Snapshot()
	return 2*s.UpBits + pn.routed
}
