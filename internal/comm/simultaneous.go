package comm

import (
	"context"
	"fmt"
	"sync"

	"tricomm/internal/graph"
	"tricomm/internal/xrand"
)

// SimPlayer is a player's view in the simultaneous model: input and shared
// randomness, but no channel — the player speaks exactly once.
type SimPlayer struct {
	// ID is the player index in [0, K).
	ID int
	// K is the number of players.
	K int
	// N is the vertex universe size.
	N int
	// Edges is the player's private input E_j.
	Edges []graph.Edge
	// View is the player's local graph (V, E_j).
	View *graph.Graph
	// Shared is the public randomness.
	Shared *xrand.Shared
}

// SimPlayerFunc computes a player's single message from its input.
type SimPlayerFunc func(p *SimPlayer) (Msg, error)

// RefereeFunc consumes the k player messages and produces the output. It
// has access to the shared randomness but to no input.
type RefereeFunc func(shared *xrand.Shared, msgs []Msg) error

// RunSimultaneous executes one protocol in the simultaneous model: every
// player computes its message concurrently, the messages are metered, and
// the referee is invoked on the ordered message vector.
func RunSimultaneous(ctx context.Context, cfg Config, player SimPlayerFunc, referee RefereeFunc) (Stats, error) {
	if err := cfg.validate(); err != nil {
		return Stats{}, err
	}
	k := cfg.K()
	meter := newMeter(k)
	msgs := make([]Msg, k)
	errs := make([]error, k)

	var wg sync.WaitGroup
	for j := 0; j < k; j++ {
		p := &SimPlayer{
			ID:     j,
			K:      k,
			N:      cfg.N,
			Edges:  cfg.Inputs[j],
			View:   graph.FromEdges(cfg.N, cfg.Inputs[j]),
			Shared: cfg.Shared,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[p.ID] = fmt.Errorf("%w: %v", ErrCanceled, err)
				return
			}
			m, err := player(p)
			if err != nil {
				errs[p.ID] = fmt.Errorf("player %d: %w", p.ID, err)
				return
			}
			msgs[p.ID] = m
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return meter.Snapshot(), err
		}
	}
	for j, m := range msgs {
		meter.addUp(j, m.Bits())
	}
	meter.addRound()
	if err := referee(cfg.Shared, msgs); err != nil {
		return meter.Snapshot(), fmt.Errorf("referee: %w", err)
	}
	return meter.Snapshot(), nil
}
