package comm

import (
	"context"

	"tricomm/internal/comm/engine"
)

// SimPlayer is a player's view in the simultaneous model: input and shared
// randomness, but no channel — the player speaks exactly once.
type SimPlayer = engine.SimPlayer

// SimPlayerFunc computes a player's single message from its input.
type SimPlayerFunc = engine.SimPlayerFunc

// RefereeFunc consumes the k player messages and produces the output. It
// has access to the shared randomness but to no input.
type RefereeFunc = engine.RefereeFunc

// RunSimultaneous executes one protocol in the simultaneous model over a
// throwaway topology built from cfg; see RunSimultaneousOn for the
// reusable-topology form.
func RunSimultaneous(ctx context.Context, cfg Config, player SimPlayerFunc, referee RefereeFunc) (Stats, error) {
	return engine.RunSimultaneous(ctx, cfg, player, referee)
}

// RunSimultaneousOn executes one protocol in the simultaneous model over
// top, reusing its cached player views: every player computes its message
// concurrently, the messages are metered, and the referee is invoked on
// the ordered message vector.
func RunSimultaneousOn(ctx context.Context, top *Topology, player SimPlayerFunc, referee RefereeFunc) (Stats, error) {
	return engine.RunSimultaneousOn(ctx, top, player, referee)
}
