package comm

import (
	"tricomm/internal/comm/engine"
)

// Board is the blackboard model: every posted message is visible to all
// parties and its bits are charged exactly once, regardless of audience
// size. Coordinator posts are tracked on a dedicated counter
// (Stats.CoordinatorBits) rather than any player's channel.
type Board = engine.Board

// Post is one blackboard entry.
type Post = engine.Post

// CoordinatorID is the From value for coordinator posts.
const CoordinatorID = engine.CoordinatorID

// NewBoard returns an empty blackboard for k players.
func NewBoard(k int) *Board { return engine.NewBoard(k) }

// BoardPlayers materializes the players' local views for a blackboard
// protocol run over a throwaway topology built from cfg; see
// BoardPlayersOn for the reusable-topology form.
func BoardPlayers(cfg Config) ([]*SimPlayer, error) { return engine.BoardPlayers(cfg) }

// BoardPlayersOn materializes the players' local views over the topology's
// cache.
func BoardPlayersOn(top *Topology) []*SimPlayer { return engine.BoardPlayersOn(top) }

// OneWayResult carries the transcript of a 3-player one-way run.
type OneWayResult = engine.OneWayResult

// RunOneWay executes the 3-player "extended one-way" model of §4.2.2:
// Alice speaks from her input, Bob speaks after seeing Alice's message,
// and Charlie — who observes the whole transcript — computes the output.
// cfg must have exactly three inputs (Alice = 0, Bob = 1, Charlie = 2).
func RunOneWay(
	cfg Config,
	alice func(p *SimPlayer) (Msg, error),
	bob func(p *SimPlayer, aliceMsg Msg) (Msg, error),
	charlie func(p *SimPlayer, aliceMsg, bobMsg Msg) error,
) (OneWayResult, error) {
	return engine.RunOneWay(cfg, alice, bob, charlie)
}

// RunOneWayOn is RunOneWay over a reusable topology (which must have
// exactly three players).
func RunOneWayOn(
	top *Topology,
	alice func(p *SimPlayer) (Msg, error),
	bob func(p *SimPlayer, aliceMsg Msg) (Msg, error),
	charlie func(p *SimPlayer, aliceMsg, bobMsg Msg) error,
) (OneWayResult, error) {
	return engine.RunOneWayOn(top, alice, bob, charlie)
}
