package comm

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"tricomm/internal/graph"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

func testConfig(k int) Config {
	g := graph.Complete(6)
	edges := g.Edges()
	inputs := make([][]wire.Edge, k)
	for i, e := range edges {
		inputs[i%k] = append(inputs[i%k], e)
	}
	return Config{N: 6, Inputs: inputs, Shared: xrand.New(1)}
}

func TestMsgRoundTrip(t *testing.T) {
	var w wire.Writer
	w.WriteUvarint(777)
	m := FromWriter(&w)
	if m.Bits() != w.BitLen() {
		t.Fatalf("Bits = %d, want %d", m.Bits(), w.BitLen())
	}
	v, err := m.Reader().ReadUvarint()
	if err != nil || v != 777 {
		t.Fatalf("decode = %d, %v", v, err)
	}
	// Reader is fresh each time.
	v2, err := m.Reader().ReadUvarint()
	if err != nil || v2 != 777 {
		t.Fatal("second Reader not independent")
	}
	// The message is immune to writer reuse.
	w.Reset()
	w.WriteUvarint(1)
	if v3, _ := m.Reader().ReadUvarint(); v3 != 777 {
		t.Fatal("message aliased the writer buffer")
	}
}

func TestEmptyAndAck(t *testing.T) {
	var m Msg
	if !m.IsEmpty() || m.Bits() != 0 {
		t.Fatal("zero Msg not empty")
	}
	if Ack().Bits() != 1 {
		t.Fatalf("Ack bits = %d", Ack().Bits())
	}
}

func TestRunRequestReply(t *testing.T) {
	cfg := testConfig(4)
	var reported []int64
	stats, err := Run(context.Background(), cfg,
		func(ctx context.Context, c *Coordinator) error {
			// Ask every player how many edges it holds.
			replies, err := c.AskAll(ctx, Ack())
			if err != nil {
				return err
			}
			for _, m := range replies {
				v, err := m.Reader().ReadUvarint()
				if err != nil {
					return err
				}
				reported = append(reported, int64(v))
			}
			return nil
		},
		ServeLoop(func(p *Player, _ Msg) (Msg, error) {
			var w wire.Writer
			w.WriteUvarint(uint64(len(p.Edges)))
			return FromWriter(&w), nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, v := range reported {
		total += v
	}
	if total != 15 { // K6 has 15 edges
		t.Fatalf("players reported %d edges total, want 15", total)
	}
	if stats.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", stats.Rounds)
	}
	if stats.Messages != 8 { // 4 down + 4 up
		t.Fatalf("messages = %d, want 8", stats.Messages)
	}
	wantDown := int64(4 * 1) // four 1-bit acks
	if stats.DownBits != wantDown {
		t.Fatalf("down bits = %d, want %d", stats.DownBits, wantDown)
	}
	if stats.UpBits != 4*8 { // four 8-bit uvarints
		t.Fatalf("up bits = %d, want 32", stats.UpBits)
	}
	if stats.TotalBits != stats.UpBits+stats.DownBits {
		t.Fatal("TotalBits inconsistent")
	}
}

func TestRunPlayerViews(t *testing.T) {
	cfg := testConfig(3)
	_, err := Run(context.Background(), cfg,
		func(ctx context.Context, c *Coordinator) error {
			_, err := c.AskAll(ctx, Ack())
			return err
		},
		ServeLoop(func(p *Player, _ Msg) (Msg, error) {
			if p.View.M() != len(p.Edges) {
				return Msg{}, fmt.Errorf("view edges %d != input %d", p.View.M(), len(p.Edges))
			}
			for _, e := range p.Edges {
				if !p.View.HasEdge(e.U, e.V) {
					return Msg{}, fmt.Errorf("view missing %v", e)
				}
			}
			return Ack(), nil
		}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunGracefulShutdown(t *testing.T) {
	// Players blocked in Recv must exit when the coordinator returns.
	cfg := testConfig(5)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(context.Background(), cfg,
			func(ctx context.Context, c *Coordinator) error {
				return nil // immediately finish without talking to anyone
			},
			func(ctx context.Context, p *Player) error {
				_, err := p.Recv(ctx)
				if !errors.Is(err, ErrShutdown) {
					return fmt.Errorf("expected shutdown, got %v", err)
				}
				return nil
			})
		if err != nil {
			t.Errorf("Run: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cluster did not shut down")
	}
}

func TestRunPlayerBlockedInSendShutsDown(t *testing.T) {
	cfg := testConfig(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(context.Background(), cfg,
			func(ctx context.Context, c *Coordinator) error {
				return nil
			},
			func(ctx context.Context, p *Player) error {
				// Send unsolicited; the coordinator never receives. The first
				// send may land in the channel buffer; keep sending until the
				// buffer is full and the send truly blocks — shutdown must
				// still unblock it.
				for {
					err := p.Send(ctx, Ack())
					if err == nil {
						continue
					}
					if !errors.Is(err, ErrShutdown) {
						return fmt.Errorf("expected shutdown, got %v", err)
					}
					return nil
				}
			})
		if err != nil {
			t.Errorf("Run: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cluster did not shut down")
	}
}

func TestRunContextCancellation(t *testing.T) {
	cfg := testConfig(2)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(ctx, cfg,
			func(ctx context.Context, c *Coordinator) error {
				// Wait for a message that never comes; must unblock on cancel.
				_, err := c.Recv(ctx, 0)
				return err
			},
			func(ctx context.Context, p *Player) error {
				_, err := p.Recv(ctx)
				if errors.Is(err, ErrShutdown) || errors.Is(err, ErrCanceled) {
					return nil
				}
				return err
			})
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("err = %v, want ErrCanceled", err)
		}
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unblock the cluster")
	}
}

func TestRunPlayerErrorPropagates(t *testing.T) {
	cfg := testConfig(3)
	wantErr := errors.New("player exploded")
	_, err := Run(context.Background(), cfg,
		func(ctx context.Context, c *Coordinator) error {
			_, err := c.AskAll(ctx, Ack())
			return err
		},
		func(ctx context.Context, p *Player) error {
			if _, err := p.Recv(ctx); err != nil {
				if errors.Is(err, ErrShutdown) {
					return nil
				}
				return err
			}
			if p.ID == 1 {
				// Reply first so the coordinator is not left hanging.
				if err := p.Send(ctx, Ack()); err != nil {
					return err
				}
				return wantErr
			}
			return p.Send(ctx, Ack())
		})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestRunCoordinatorErrorPropagates(t *testing.T) {
	cfg := testConfig(2)
	wantErr := errors.New("coordinator exploded")
	_, err := Run(context.Background(), cfg,
		func(ctx context.Context, c *Coordinator) error { return wantErr },
		ServeLoop(func(p *Player, _ Msg) (Msg, error) { return Ack(), nil }))
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, nil, nil); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := testConfig(2)
	cfg.Shared = nil
	if _, err := Run(context.Background(), cfg, nil, nil); err == nil {
		t.Fatal("nil shared randomness accepted")
	}
	cfg = testConfig(2)
	cfg.N = -1
	if _, err := Run(context.Background(), cfg, nil, nil); err == nil {
		t.Fatal("negative N accepted")
	}
}

func TestMultiRoundProtocol(t *testing.T) {
	// A 3-round ping protocol: verifies per-round accounting and that
	// ServeLoop players survive multiple requests.
	cfg := testConfig(3)
	stats, err := Run(context.Background(), cfg,
		func(ctx context.Context, c *Coordinator) error {
			for round := 0; round < 3; round++ {
				if _, err := c.AskAll(ctx, Ack()); err != nil {
					return err
				}
			}
			return nil
		},
		ServeLoop(func(p *Player, _ Msg) (Msg, error) { return Ack(), nil }))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", stats.Rounds)
	}
	if stats.TotalBits != 3*3*2 { // 3 rounds × 3 players × (1 down + 1 up)
		t.Fatalf("total bits = %d, want 18", stats.TotalBits)
	}
}

func TestPerPlayerAccounting(t *testing.T) {
	cfg := testConfig(2)
	stats, err := Run(context.Background(), cfg,
		func(ctx context.Context, c *Coordinator) error {
			// Talk only to player 0.
			var w wire.Writer
			w.WriteUint(0, 10)
			if _, err := c.Ask(ctx, 0, FromWriter(&w)); err != nil {
				return err
			}
			return nil
		},
		ServeLoop(func(p *Player, _ Msg) (Msg, error) {
			var w wire.Writer
			w.WriteUint(0, 6)
			return FromWriter(&w), nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PerPlayer[0] != 16 || stats.PerPlayer[1] != 0 {
		t.Fatalf("per-player = %v, want [16 0]", stats.PerPlayer)
	}
	if stats.MaxPlayerBits() != 16 {
		t.Fatalf("MaxPlayerBits = %d", stats.MaxPlayerBits())
	}
}
