package comm

import (
	"context"
	"testing"

	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

func BenchmarkAskAllRoundTrip(b *testing.B) {
	cfg := Config{
		N:      1024,
		Inputs: make([][]wire.Edge, 8),
		Shared: xrand.New(1),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(context.Background(), cfg,
			func(ctx context.Context, c *Coordinator) error {
				for r := 0; r < 10; r++ {
					if _, err := c.AskAll(ctx, Ack()); err != nil {
						return err
					}
				}
				return nil
			},
			ServeLoop(func(p *Player, _ Msg) (Msg, error) { return Ack(), nil }))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimultaneousRound(b *testing.B) {
	cfg := Config{
		N:      1024,
		Inputs: make([][]wire.Edge, 8),
		Shared: xrand.New(1),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := RunSimultaneous(context.Background(), cfg,
			func(p *SimPlayer) (Msg, error) { return Ack(), nil },
			func(_ *xrand.Shared, msgs []Msg) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
	}
}
