// Package comm implements the communication models of the paper as an
// in-process message-passing runtime with bit-exact cost accounting.
//
// Four models are provided:
//
//   - Run/RunOn: the coordinator model (§2). k player goroutines hold
//     private inputs and exchange messages with a coordinator over private
//     buffered channels; the coordinator drives rounds and outputs the
//     answer. Cost is the total number of message bits in both directions.
//
//   - RunSimultaneous/RunSimultaneousOn: the simultaneous model. Each
//     player computes a single message from its input and the shared
//     randomness; a referee sees only the k messages.
//
//   - Board: the blackboard model. Posts are public and their bits are
//     counted once regardless of audience size.
//
//   - RunOneWay/RunOneWayOn: the 3-player "extended one-way" model of
//     §4.2.2 (Alice and Bob speak, Charlie observes the transcript and
//     answers).
//
// All four are facades over the unified runtime in the nested engine
// package, which supplies the shared Topology (per-player views built once
// and cached across runs), the concurrent coordinator fan-out, and the
// atomic per-player metering. Protocols that run repeatedly against one
// cluster should build a Topology once (Config.Topology or NewTopology)
// and use the *On entry points.
//
// Every message is a bit string produced by package wire, so the metered
// cost is exactly the information-theoretic message length the paper's
// bounds speak about.
package comm

import (
	"tricomm/internal/comm/engine"
	"tricomm/internal/wire"
)

// Msg is an immutable bit-string message. The zero value is the empty
// message.
type Msg = engine.Msg

// FromWriter seals the bits written to w into a message. The writer's
// buffer is copied, so w may be reused afterwards.
func FromWriter(w *wire.Writer) Msg { return engine.FromWriter(w) }

// Ack is a conventional 1-bit acknowledgement message.
func Ack() Msg { return engine.Ack() }
