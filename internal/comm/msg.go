// Package comm implements the communication models of the paper as an
// in-process message-passing runtime with bit-exact cost accounting.
//
// Four models are provided:
//
//   - Cluster: the coordinator model (§2). k player goroutines hold private
//     inputs and exchange messages with a coordinator over private
//     unbuffered channels; the coordinator drives rounds and outputs the
//     answer. Cost is the total number of message bits in both directions.
//
//   - RunSimultaneous: the simultaneous model. Each player computes a
//     single message from its input and the shared randomness; a referee
//     sees only the k messages.
//
//   - Board: the blackboard model. Posts are public and their bits are
//     counted once regardless of audience size.
//
//   - RunOneWay: the 3-player "extended one-way" model of §4.2.2 (Alice and
//     Bob speak, Charlie observes the transcript and answers).
//
// Every message is a bit string produced by package wire, so the metered
// cost is exactly the information-theoretic message length the paper's
// bounds speak about.
package comm

import (
	"tricomm/internal/wire"
)

// Msg is an immutable bit-string message. The zero value is the empty
// message.
type Msg struct {
	bits int
	data []byte
}

// FromWriter seals the bits written to w into a message. The writer's
// buffer is copied, so w may be reused afterwards.
func FromWriter(w *wire.Writer) Msg {
	data := make([]byte, len(w.Bytes()))
	copy(data, w.Bytes())
	return Msg{bits: w.BitLen(), data: data}
}

// Bits reports the message length in bits.
func (m Msg) Bits() int { return m.bits }

// IsEmpty reports whether the message carries no bits.
func (m Msg) IsEmpty() bool { return m.bits == 0 }

// Reader returns a fresh reader over the message bits.
func (m Msg) Reader() *wire.Reader { return wire.NewReader(m.data, m.bits) }

// Ack is a conventional 1-bit acknowledgement message.
func Ack() Msg {
	var w wire.Writer
	w.WriteBit(1)
	return FromWriter(&w)
}
