package comm

import "tricomm/internal/comm/engine"

// Meter accumulates the communication cost of a protocol run on
// per-player atomic counters. It is safe for concurrent use; the zero
// value is unusable — use NewMeter.
type Meter = engine.Meter

// NewMeter returns a meter for k players.
func NewMeter(k int) *Meter { return engine.NewMeter(k) }

// Stats is a snapshot of a protocol run's communication cost.
type Stats = engine.Stats
