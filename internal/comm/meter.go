package comm

import "sync"

// Meter accumulates the communication cost of a protocol run. It is safe
// for concurrent use; the zero value is unusable — use newMeter.
type Meter struct {
	mu       sync.Mutex
	up       []int64 // player → coordinator bits, per player
	down     []int64 // coordinator → player bits, per player
	messages int64
	rounds   int64
}

func newMeter(k int) *Meter {
	return &Meter{up: make([]int64, k), down: make([]int64, k)}
}

func (m *Meter) addUp(player, bits int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.up[player] += int64(bits)
	m.messages++
}

func (m *Meter) addDown(player, bits int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down[player] += int64(bits)
	m.messages++
}

func (m *Meter) addRound() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rounds++
}

// Stats is a snapshot of a protocol run's communication cost.
type Stats struct {
	// TotalBits is the total number of bits exchanged in both directions.
	TotalBits int64
	// UpBits is the total player→coordinator traffic.
	UpBits int64
	// DownBits is the total coordinator→player traffic.
	DownBits int64
	// PerPlayer[j] is the traffic on player j's channel in both directions.
	PerPlayer []int64
	// Messages is the number of messages sent.
	Messages int64
	// Rounds is the number of protocol rounds the coordinator declared.
	Rounds int64
}

// MaxPlayerBits reports the largest per-player channel traffic.
func (s Stats) MaxPlayerBits() int64 {
	var best int64
	for _, v := range s.PerPlayer {
		if v > best {
			best = v
		}
	}
	return best
}

// Snapshot returns the current cost totals.
func (m *Meter) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		PerPlayer: make([]int64, len(m.up)),
		Messages:  m.messages,
		Rounds:    m.rounds,
	}
	for j := range m.up {
		s.UpBits += m.up[j]
		s.DownBits += m.down[j]
		s.PerPlayer[j] = m.up[j] + m.down[j]
	}
	s.TotalBits = s.UpBits + s.DownBits
	return s
}
