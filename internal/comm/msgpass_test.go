package comm

import (
	"math"
	"testing"

	"tricomm/internal/wire"
)

func msgOfBits(bits int) Msg {
	var w wire.Writer
	for i := 0; i < bits; i++ {
		w.WriteBit(uint(i) & 1)
	}
	return FromWriter(&w)
}

func TestPeerNetDelivery(t *testing.T) {
	pn := NewPeerNet(4)
	if err := pn.Send(0, 2, msgOfBits(5)); err != nil {
		t.Fatal(err)
	}
	if err := pn.Send(1, 2, msgOfBits(3)); err != nil {
		t.Fatal(err)
	}
	if pn.Pending(2) != 2 || pn.Pending(0) != 0 {
		t.Fatalf("pending counts wrong")
	}
	from, m, ok := pn.Recv(2)
	if !ok || from != 0 || m.Bits() != 5 {
		t.Fatalf("first delivery: from=%d bits=%d ok=%v", from, m.Bits(), ok)
	}
	from, m, ok = pn.Recv(2)
	if !ok || from != 1 || m.Bits() != 3 {
		t.Fatalf("second delivery: from=%d bits=%d ok=%v", from, m.Bits(), ok)
	}
	if _, _, ok := pn.Recv(2); ok {
		t.Fatal("empty queue delivered")
	}
}

func TestPeerNetValidation(t *testing.T) {
	pn := NewPeerNet(3)
	if err := pn.Send(0, 0, Ack()); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := pn.Send(-1, 1, Ack()); err == nil {
		t.Fatal("bad sender accepted")
	}
	if err := pn.Send(0, 3, Ack()); err == nil {
		t.Fatal("bad recipient accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("k=1 did not panic")
		}
	}()
	NewPeerNet(1)
}

func TestPeerNetLogKOverhead(t *testing.T) {
	// §2: the coordinator simulation costs at most a (2 + log k / avg-bits)
	// overhead: 2 hops plus ⌈log₂ k⌉ routing bits per message.
	const k = 16
	pn := NewPeerNet(k)
	total := int64(0)
	for i := 0; i < 100; i++ {
		bits := 10 + i%7
		if err := pn.Send(i%k, (i+1)%k, msgOfBits(bits)); err != nil {
			t.Fatal(err)
		}
		total += int64(bits)
	}
	native := pn.Stats().TotalBits
	if native != total {
		t.Fatalf("native cost %d, want %d", native, total)
	}
	sim := pn.CoordinatorSimulatedBits()
	want := 2*total + 100*int64(math.Ceil(math.Log2(k)))
	if sim != want {
		t.Fatalf("simulated cost %d, want %d", sim, want)
	}
	// The simulation overhead is bounded by 2 + log k per message bit.
	if float64(sim) > float64(native)*(2+math.Log2(k)) {
		t.Fatal("overhead exceeds the §2 bound")
	}
}
