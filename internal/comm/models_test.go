package comm

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

func TestRunSimultaneous(t *testing.T) {
	cfg := testConfig(4)
	var seen []uint64
	stats, err := RunSimultaneous(context.Background(), cfg,
		func(p *SimPlayer) (Msg, error) {
			var w wire.Writer
			w.WriteUvarint(uint64(len(p.Edges)))
			return FromWriter(&w), nil
		},
		func(_ *xrand.Shared, msgs []Msg) error {
			for _, m := range msgs {
				v, err := m.Reader().ReadUvarint()
				if err != nil {
					return err
				}
				seen = append(seen, v)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, v := range seen {
		total += v
	}
	if total != 15 {
		t.Fatalf("total edges reported = %d, want 15", total)
	}
	if stats.DownBits != 0 {
		t.Fatalf("simultaneous model has down traffic: %d", stats.DownBits)
	}
	if stats.UpBits != 4*8 {
		t.Fatalf("up bits = %d, want 32", stats.UpBits)
	}
	if stats.Rounds != 1 {
		t.Fatalf("rounds = %d", stats.Rounds)
	}
}

func TestRunSimultaneousMessageOrder(t *testing.T) {
	cfg := testConfig(6)
	_, err := RunSimultaneous(context.Background(), cfg,
		func(p *SimPlayer) (Msg, error) {
			var w wire.Writer
			w.WriteUvarint(uint64(p.ID))
			return FromWriter(&w), nil
		},
		func(_ *xrand.Shared, msgs []Msg) error {
			for j, m := range msgs {
				v, err := m.Reader().ReadUvarint()
				if err != nil {
					return err
				}
				if int(v) != j {
					return fmt.Errorf("message %d came from player %d", j, v)
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSimultaneousPlayerError(t *testing.T) {
	cfg := testConfig(3)
	wantErr := errors.New("boom")
	_, err := RunSimultaneous(context.Background(), cfg,
		func(p *SimPlayer) (Msg, error) {
			if p.ID == 2 {
				return Msg{}, wantErr
			}
			return Ack(), nil
		},
		func(_ *xrand.Shared, msgs []Msg) error { return nil })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestRunSimultaneousRefereeError(t *testing.T) {
	cfg := testConfig(2)
	wantErr := errors.New("referee boom")
	_, err := RunSimultaneous(context.Background(), cfg,
		func(p *SimPlayer) (Msg, error) { return Ack(), nil },
		func(_ *xrand.Shared, msgs []Msg) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestRunSimultaneousCanceled(t *testing.T) {
	cfg := testConfig(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSimultaneous(ctx, cfg,
		func(p *SimPlayer) (Msg, error) { return Ack(), nil },
		func(_ *xrand.Shared, msgs []Msg) error { return nil })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestBoardAccounting(t *testing.T) {
	b := NewBoard(3)
	var w wire.Writer
	w.WriteUint(0, 20)
	if err := b.Post(1, FromWriter(&w)); err != nil {
		t.Fatal(err)
	}
	if err := b.Post(CoordinatorID, Ack()); err != nil {
		t.Fatal(err)
	}
	b.Round()
	s := b.Stats()
	if s.TotalBits != 21 {
		t.Fatalf("total bits = %d, want 21 (charged once, not per audience)", s.TotalBits)
	}
	if s.Rounds != 1 {
		t.Fatalf("rounds = %d", s.Rounds)
	}
	if len(b.Posts()) != 2 {
		t.Fatalf("posts = %d", len(b.Posts()))
	}
	if b.Posts()[0].From != 1 || b.Posts()[1].From != CoordinatorID {
		t.Fatal("post attribution wrong")
	}
}

func TestBoardInvalidPoster(t *testing.T) {
	b := NewBoard(2)
	if err := b.Post(5, Ack()); err == nil {
		t.Fatal("invalid poster accepted")
	}
	if err := b.Post(-2, Ack()); err == nil {
		t.Fatal("invalid poster accepted")
	}
}

func TestBoardPlayers(t *testing.T) {
	cfg := testConfig(3)
	players, err := BoardPlayers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(players) != 3 {
		t.Fatalf("players = %d", len(players))
	}
	for j, p := range players {
		if p.ID != j || p.K != 3 || p.N != 6 {
			t.Fatalf("player %d metadata wrong: %+v", j, p)
		}
		if p.View.M() != len(p.Edges) {
			t.Fatalf("player %d view mismatch", j)
		}
	}
}

func TestRunOneWay(t *testing.T) {
	cfg := testConfig(3)
	res, err := RunOneWay(cfg,
		func(p *SimPlayer) (Msg, error) {
			var w wire.Writer
			w.WriteUvarint(uint64(len(p.Edges)))
			return FromWriter(&w), nil
		},
		func(p *SimPlayer, aliceMsg Msg) (Msg, error) {
			a, err := aliceMsg.Reader().ReadUvarint()
			if err != nil {
				return Msg{}, err
			}
			var w wire.Writer
			w.WriteUvarint(a + uint64(len(p.Edges)))
			return FromWriter(&w), nil
		},
		func(p *SimPlayer, aliceMsg, bobMsg Msg) error {
			ab, err := bobMsg.Reader().ReadUvarint()
			if err != nil {
				return err
			}
			if total := ab + uint64(len(p.Edges)); total != 15 {
				return fmt.Errorf("total = %d, want 15", total)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalBits != int64(res.AliceMsg.Bits()+res.BobMsg.Bits()) {
		t.Fatal("one-way stats do not match transcript")
	}
	if res.Stats.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Stats.Rounds)
	}
}

func TestRunOneWayRequiresThreePlayers(t *testing.T) {
	cfg := testConfig(2)
	_, err := RunOneWay(cfg,
		func(p *SimPlayer) (Msg, error) { return Ack(), nil },
		func(p *SimPlayer, _ Msg) (Msg, error) { return Ack(), nil },
		func(p *SimPlayer, _, _ Msg) error { return nil })
	if err == nil {
		t.Fatal("2-player one-way accepted")
	}
}

func TestRunOneWayErrors(t *testing.T) {
	cfg := testConfig(3)
	boom := errors.New("boom")
	_, err := RunOneWay(cfg,
		func(p *SimPlayer) (Msg, error) { return Msg{}, boom },
		nil, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("alice error lost: %v", err)
	}
	_, err = RunOneWay(cfg,
		func(p *SimPlayer) (Msg, error) { return Ack(), nil },
		func(p *SimPlayer, _ Msg) (Msg, error) { return Msg{}, boom },
		nil)
	if !errors.Is(err, boom) {
		t.Fatalf("bob error lost: %v", err)
	}
	_, err = RunOneWay(cfg,
		func(p *SimPlayer) (Msg, error) { return Ack(), nil },
		func(p *SimPlayer, _ Msg) (Msg, error) { return Ack(), nil },
		func(p *SimPlayer, _, _ Msg) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("charlie error lost: %v", err)
	}
}
