package lowerbound

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEntropyBernoulli(t *testing.T) {
	if EntropyBernoulli(0.5) != 1 {
		t.Fatalf("H(1/2) = %v", EntropyBernoulli(0.5))
	}
	if EntropyBernoulli(0) != 0 || EntropyBernoulli(1) != 0 {
		t.Fatal("H(0)/H(1) not zero")
	}
	// Symmetry and concavity spot checks.
	if math.Abs(EntropyBernoulli(0.2)-EntropyBernoulli(0.8)) > 1e-12 {
		t.Fatal("entropy not symmetric")
	}
	if EntropyBernoulli(0.3) <= EntropyBernoulli(0.1) {
		t.Fatal("entropy not increasing toward 1/2")
	}
}

func TestKLBernoulliBasics(t *testing.T) {
	if KLBernoulli(0.3, 0.3) != 0 {
		t.Fatalf("D(p‖p) = %v", KLBernoulli(0.3, 0.3))
	}
	if KLBernoulli(0.5, 0.1) <= 0 {
		t.Fatal("divergence of distinct distributions not positive")
	}
	if !math.IsInf(KLBernoulli(0.5, 0), 1) {
		t.Fatal("D(q‖0) should be +Inf for q > 0")
	}
	if KLBernoulli(0, 0) != 0 {
		t.Fatal("D(0‖0) should be 0")
	}
}

func TestKLBernoulliDomainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-domain accepted")
		}
	}()
	KLBernoulli(1.5, 0.5)
}

func TestQuickKLNonNegative(t *testing.T) {
	f := func(qRaw, pRaw uint16) bool {
		q := float64(qRaw) / 65535
		p := float64(pRaw) / 65535
		return KLBernoulli(q, p) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLemma43Numerically(t *testing.T) {
	// Lemma 4.3: for p < 1/2, D(q ‖ p) ≥ q − 2p. Verify on a dense grid.
	for pi := 1; pi < 50; pi++ {
		p := float64(pi) / 100 // p ∈ (0, 0.5)
		for qi := 0; qi <= 100; qi++ {
			q := float64(qi) / 100
			lhs := KLBernoulli(q, p)
			rhs := Lemma43LowerBound(q, p)
			if lhs < rhs-1e-9 {
				t.Fatalf("Lemma 4.3 violated at q=%v p=%v: D=%v < %v", q, p, lhs, rhs)
			}
		}
	}
}

func TestLemma413Numerically(t *testing.T) {
	// Lemma 4.13: for γ < 1/2 and large n, D(9/10 ‖ γ/√n) ≥ (9/40)·log₂ n.
	for _, n := range []int{64, 256, 1024, 65536, 1 << 20} {
		for _, gamma := range []float64{0.1, 0.25, 0.49} {
			lhs := ReportedEdgeDivergence(n, gamma)
			rhs := Lemma413LowerBound(n)
			if lhs < rhs {
				t.Fatalf("Lemma 4.13 violated at n=%d γ=%v: D=%v < %v", n, gamma, lhs, rhs)
			}
		}
	}
}

func TestMaxReportedEdges(t *testing.T) {
	// Corollary 4.14 shape: a √n-bit budget reports O(√n / log n) edges.
	n := 1 << 16
	budget := math.Sqrt(float64(n))
	got := MaxReportedEdges(budget, n)
	want := budget / (9.0 / 40 * 16)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("MaxReportedEdges = %v, want %v", got, want)
	}
	// Sanity: far fewer than the √n/(2γ) covered edges a good transcript
	// needs (Lemma 4.8), which is the heart of the Ω(√n) argument.
	needed := math.Sqrt(float64(n)) / (2 * 0.25)
	if got >= needed {
		t.Fatalf("budget √n reports %v ≥ needed %v — the bound's tension is gone", got, needed)
	}
}
