package lowerbound

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tricomm/internal/comm"
	"tricomm/internal/protocol"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

func TestSampleMuStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := SampleMu(MuParams{NPart: 100, Gamma: 2}, rng)
	if inst.N() != 300 {
		t.Fatalf("N = %d", inst.N())
	}
	// Partition respects the player sides.
	for _, e := range inst.Alice {
		if !(inst.Part(e.U) == 0 && inst.Part(e.V) == 1 || inst.Part(e.U) == 1 && inst.Part(e.V) == 0) {
			t.Fatalf("Alice edge %v not in U×V1", e)
		}
	}
	for _, e := range inst.Bob {
		lo, hi := inst.Part(e.U), inst.Part(e.V)
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo != 0 || hi != 2 {
			t.Fatalf("Bob edge %v not in U×V2", e)
		}
	}
	for _, e := range inst.Charlie {
		lo, hi := inst.Part(e.U), inst.Part(e.V)
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo != 1 || hi != 2 {
			t.Fatalf("Charlie edge %v not in V1×V2", e)
		}
	}
	// The three inputs partition E exactly.
	if len(inst.Alice)+len(inst.Bob)+len(inst.Charlie) != inst.G.M() {
		t.Fatal("player inputs do not partition E")
	}
	// Edge count ≈ 3·NPart²·γ/√n.
	want := 3 * 100.0 * 100 * 2 / math.Sqrt(300)
	if got := float64(inst.G.M()); got < 0.8*want || got > 1.2*want {
		t.Fatalf("M = %v, want ~%v", got, want)
	}
}

func TestMuFarnessLemma45(t *testing.T) {
	// Lemma 4.5: with constant probability (here: on most seeds) a µ graph
	// carries Ω(n^{3/2}) disjoint triangles, i.e. is Ω(1)-far. With
	// γ = 2 the constant is comfortable; require eps ≥ 0.02 on ≥ 7/10
	// seeds.
	good := 0
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := SampleMu(MuParams{NPart: 120, Gamma: 2}, rng)
		if _, eps := inst.FarnessCertificate(); eps >= 0.02 {
			good++
		}
	}
	if good < 7 {
		t.Fatalf("only %d/10 µ samples were Ω(1)-far", good)
	}
}

func TestMuAverageDegreeIsSqrtN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := SampleMu(MuParams{NPart: 200, Gamma: 1.5}, rng)
	n := float64(inst.N())
	d := inst.G.AvgDegree()
	// d = 2m/n ≈ 2·(n²/3)·γ/√n / n = (2γ/3)·√n.
	want := 2 * 1.5 / 3 * math.Sqrt(n)
	if d < 0.8*want || d > 1.2*want {
		t.Fatalf("avg degree %v, want ~%v", d, want)
	}
}

func TestIsValidOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := SampleMu(MuParams{NPart: 80, Gamma: 2.5}, rng)
	valid := inst.TriangleEdgesOfCharlie()
	if len(valid) == 0 {
		t.Skip("no triangle edges on this seed")
	}
	for _, e := range valid[:min(5, len(valid))] {
		if !inst.IsValidOutput(e) {
			t.Fatalf("valid edge %v rejected", e)
		}
	}
	// An Alice-side edge is never a valid output.
	if len(inst.Alice) > 0 && inst.IsValidOutput(inst.Alice[0]) {
		t.Fatal("Alice edge accepted as output")
	}
	// A non-edge is never valid.
	if inst.IsValidOutput(wire.Edge{U: inst.NPart, V: 2 * inst.NPart}) {
		// This pair may actually be an edge; find a guaranteed non-edge.
		t.Log("pair happened to be an edge; skipping")
	}
}

func TestEmbedSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := SampleMu(MuParams{NPart: 60, Gamma: 2}, rng)
	origPack, _ := inst.FarnessCertificate()
	sparse, nTotal := inst.EmbedSparse(2.0)
	if nTotal <= inst.N() {
		t.Fatalf("embedding did not grow: %d", nTotal)
	}
	if got := sparse.G.AvgDegree(); got > 2.05 {
		t.Fatalf("avg degree %v > target 2", got)
	}
	newPack, _ := sparse.FarnessCertificate()
	if newPack != origPack {
		t.Fatalf("packing changed: %d → %d", origPack, newPack)
	}
	// No-op when target is above current degree.
	same, n2 := inst.EmbedSparse(1e9)
	if n2 != inst.N() || same.G != inst.G {
		t.Fatal("EmbedSparse should be a no-op for high targets")
	}
}

func TestOneWayProbeThreshold(t *testing.T) {
	// The star strategy should go from near-0 to near-1 success as the
	// budget passes ~n^{1/4}·log n: test one low and one high budget.
	const trials = 10
	lowSucc, highSucc := 0, 0
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := SampleMu(MuParams{NPart: 250, Gamma: 2}, rng)
		shared := xrand.New(uint64(seed))
		// n = 750, n^{1/4} ≈ 5.2, vertex id = 10 bits.
		low, err := OneWayProbe{BudgetBits: 40}.Run(inst, shared)
		if err != nil {
			t.Fatal(err)
		}
		if low.Success {
			lowSucc++
		}
		high, err := OneWayProbe{BudgetBits: 4000}.Run(inst, shared)
		if err != nil {
			t.Fatal(err)
		}
		if high.Success {
			highSucc++
		}
		// Coverage must be quadratic-ish: with budget B the covered count
		// is ~ (B/log n)².
		if high.Covered <= low.Covered {
			t.Fatalf("coverage did not grow with budget: %d vs %d", low.Covered, high.Covered)
		}
		if high.Bits > 2*4000+100 {
			t.Fatalf("budget exceeded: %d bits", high.Bits)
		}
	}
	if highSucc < 7 {
		t.Fatalf("high-budget success %d/10, want ≥ 7", highSucc)
	}
	if lowSucc > highSucc-3 {
		t.Fatalf("no budget separation: low %d, high %d", lowSucc, highSucc)
	}
}

func TestOneWayProbeOutputsAreValid(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := SampleMu(MuParams{NPart: 150, Gamma: 2}, rng)
		res, err := OneWayProbe{BudgetBits: 2000}.Run(inst, xrand.New(uint64(seed)))
		if err != nil {
			t.Fatal(err)
		}
		// If the probe claims success the output must really be a Charlie
		// triangle edge (Success is defined by IsValidOutput, so this
		// checks internal consistency of the closing logic instead).
		if res.Success && !inst.IsValidOutput(res.Output) {
			t.Fatalf("inconsistent success for %v", res.Output)
		}
		// The strategy only outputs pairs it saw covered AND present in
		// Charlie's view, so any output must be a genuine triangle edge.
		if (res.Output != wire.Edge{}) && !res.Success {
			t.Fatalf("probe output %v is not a valid triangle edge", res.Output)
		}
	}
}

func TestSimProbeThresholdAndGap(t *testing.T) {
	// The simultaneous window strategy needs a much larger budget than the
	// one-way star strategy on the same instances — the paper's
	// quadratic separation, measured.
	const trials = 10
	// Calibrated inside the gap: at n = 750 the one-way star strategy
	// saturates by ~80 bits while the simultaneous window strategy needs
	// ~600+ (see the harness probe experiment for the full curves).
	const budget = 150
	oneWayWins, simWins := 0, 0
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := SampleMu(MuParams{NPart: 250, Gamma: 2}, rng)
		shared := xrand.New(uint64(seed) + 50)
		ow, err := OneWayProbe{BudgetBits: budget}.Run(inst, shared)
		if err != nil {
			t.Fatal(err)
		}
		if ow.Success {
			oneWayWins++
		}
		sp, err := SimProbe{BudgetBits: budget, Gamma: 2}.Run(inst, shared)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Success {
			simWins++
		}
	}
	if oneWayWins <= simWins {
		t.Fatalf("no separation at equal budget: one-way %d vs sim %d", oneWayWins, simWins)
	}
	// And with a large enough budget the sim strategy succeeds too.
	bigWins := 0
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := SampleMu(MuParams{NPart: 250, Gamma: 2}, rng)
		res, err := SimProbe{BudgetBits: 200000, Gamma: 2}.Run(inst, xrand.New(uint64(seed)+99))
		if err != nil {
			t.Fatal(err)
		}
		if res.Success {
			bigWins++
		}
	}
	if bigWins < 6 {
		t.Fatalf("sim probe with big budget succeeded only %d/10", bigWins)
	}
}

func TestSimProbeBudgetRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := SampleMu(MuParams{NPart: 200, Gamma: 2}, rng)
	res, err := SimProbe{BudgetBits: 1000, Gamma: 2}.Run(inst, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits > 3*1000+200 {
		t.Fatalf("sim probe exceeded budget: %d bits for 3 players × 1000", res.Bits)
	}
}

func TestProbeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst := SampleMu(MuParams{NPart: 50, Gamma: 2}, rng)
	if _, err := (OneWayProbe{}).Run(inst, xrand.New(1)); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := (SimProbe{BudgetBits: 100}).Run(inst, xrand.New(1)); err == nil {
		t.Fatal("zero gamma accepted")
	}
}

func TestBHMReductionDichotomy(t *testing.T) {
	// Theorem 4.16: all-zeros side ⇒ n edge-disjoint triangles; all-ones
	// side ⇒ triangle-free. Exact, for every seed.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + int(seed)
		for _, allZero := range []bool{true, false} {
			inst := SampleBHM(n, allZero, rng)
			red := Reduce(inst)
			got := red.G.CountTriangles()
			if got != red.ExpectedTriangles() {
				t.Fatalf("n=%d allZero=%v: %d triangles, want %d",
					n, allZero, got, red.ExpectedTriangles())
			}
			if allZero {
				if pack := len(red.G.PackTriangles()); pack != n {
					t.Fatalf("packing %d, want %d", pack, n)
				}
			}
		}
	}
}

func TestBHMGraphShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := SampleBHM(12, true, rng)
	red := Reduce(inst)
	if red.G.N() != 4*12+1 {
		t.Fatalf("N = %d", red.G.N())
	}
	if len(red.AliceEdges) != 2*12 {
		t.Fatalf("Alice has %d edges", len(red.AliceEdges))
	}
	if len(red.BobEdges) != 2*12 {
		t.Fatalf("Bob has %d edges", len(red.BobEdges))
	}
	// Constant average degree (the d = Θ(1) regime of Theorem 4.16).
	if d := red.G.AvgDegree(); d > 4 {
		t.Fatalf("avg degree %v not O(1)-ish", d)
	}
}

func TestQuickBHMTriangleStructure(t *testing.T) {
	// Property: for arbitrary instances the number of triangles equals the
	// number of zero coordinates of Mx⊕w (triangle ⇔ (Mx⊕w)_j = 0).
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw)%12 + 2
		rng := rand.New(rand.NewSource(seed))
		inst := SampleBHM(n, seed%2 == 0, rng)
		// Perturb w arbitrarily to leave the promise.
		for j := range inst.W {
			if rng.Intn(3) == 0 {
				inst.W[j] = !inst.W[j]
			}
		}
		zeros := 0
		for j := range inst.M {
			parity := inst.X[inst.M[j][0]] != inst.X[inst.M[j][1]]
			if parity == inst.W[j] {
				zeros++
			}
		}
		return Reduce(inst).G.CountTriangles() == int64(zeros)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBHMSolvedByTester(t *testing.T) {
	// Our simultaneous testers solve BHM through the reduction with cost
	// Õ(√n) — matching the Ω(√n) lower bound shape. Verify correctness of
	// the decoded answers on both sides.
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, allZero := range []bool{true, false} {
			inst := SampleBHM(150, allZero, rng)
			red := Reduce(inst)
			cfg := comm.Config{N: red.G.N(), Inputs: red.Inputs(), Shared: xrand.New(uint64(seed))}
			res, err := protocol.SimLow{
				Eps: 0.2, AvgDegree: red.G.AvgDegree(), Delta: 0.1,
			}.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !allZero && DecodeAnswer(res.Found()) {
				t.Fatalf("seed %d: tester found a triangle on the all-ones side", seed)
			}
			// One-sided: on the all-zeros side the tester may miss, but a
			// found triangle must decode correctly.
			if res.Found() && !DecodeAnswer(res.Found()) {
				t.Fatal("decode inconsistent")
			}
		}
	}
}

func TestEmbed3ToK(t *testing.T) {
	x1 := []wire.Edge{{U: 0, V: 1}}
	x2 := []wire.Edge{{U: 1, V: 2}}
	x3 := []wire.Edge{{U: 2, V: 3}}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		emb := Embed3ToK(x1, x2, x3, 8, rng)
		if emb.I == emb.J {
			t.Fatal("I == J")
		}
		if emb.I == 7 || emb.J == 7 {
			t.Fatal("player k-1 received a distinguished input")
		}
		for p := 0; p < 8; p++ {
			want := x3
			switch p {
			case emb.I:
				want = x1
			case emb.J:
				want = x2
			}
			if len(emb.Inputs[p]) != len(want) || emb.Inputs[p][0] != want[0] {
				t.Fatalf("player %d got wrong input", p)
			}
		}
	}
}

func TestEmbed3ToKUniform(t *testing.T) {
	// (I, J) must be uniform over ordered pairs of distinct players ≠ k-1.
	rng := rand.New(rand.NewSource(11))
	const k = 5
	counts := map[[2]int]int{}
	const trials = 12000
	for trial := 0; trial < trials; trial++ {
		emb := Embed3ToK(nil, nil, nil, k, rng)
		counts[[2]int{emb.I, emb.J}]++
	}
	want := float64(trials) / float64((k-1)*(k-2))
	for pair, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("pair %v count %d, want ~%v", pair, c, want)
		}
	}
	if len(counts) != (k-1)*(k-2) {
		t.Fatalf("saw %d pairs, want %d", len(counts), (k-1)*(k-2))
	}
}

func TestSimulateOneWayCost(t *testing.T) {
	emb := Embedding{I: 1, J: 3}
	bits := []int64{10, 20, 30, 40, 50}
	if got := SimulateOneWayCost(bits, emb); got != 60 {
		t.Fatalf("cost = %d, want 60", got)
	}
}

func TestSymmetrizationCostRelation(t *testing.T) {
	// Theorem 4.15 accounting: for a symmetric simultaneous protocol, the
	// expected derived one-way cost is (2/k)·CC. Run SimLow on embedded µ
	// inputs and check E[bits_I + bits_J] ≈ (2/k)·total.
	rng := rand.New(rand.NewSource(12))
	inst := SampleMu(MuParams{NPart: 80, Gamma: 2}, rng)
	const k = 6
	var sumDerived, sumTotal float64
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		emb := Embed3ToK(inst.Alice, inst.Bob, inst.Charlie, k, rng)
		cfg := comm.Config{N: inst.N(), Inputs: emb.Inputs, Shared: xrand.New(uint64(trial))}
		res, err := protocol.SimLow{Eps: 0.1, AvgDegree: inst.G.AvgDegree(), Delta: 0.1}.
			Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		sumDerived += float64(SimulateOneWayCost(res.Stats.PerPlayer, emb))
		sumTotal += float64(res.Stats.TotalBits)
	}
	ratio := sumDerived / sumTotal
	want := 2.0 / k
	if ratio < 0.5*want || ratio > 2*want {
		t.Fatalf("derived/total = %v, want ~%v", ratio, want)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
