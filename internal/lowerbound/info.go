package lowerbound

import (
	"fmt"
	"math"
)

// This file provides the small information-theory toolkit of §4.1 — KL
// divergence and entropy for Bernoulli variables — together with the
// paper's two analytic inequalities (Lemma 4.3 and Lemma 4.13), exposed
// as checkable functions. The lower-bound proofs are not runnable, but
// their analytic steps are: the test suite verifies both inequalities
// numerically across their stated domains.

// EntropyBernoulli returns H(p) in bits. H(0) = H(1) = 0.
func EntropyBernoulli(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// KLBernoulli returns D(q ‖ p) in bits: the divergence between
// Bernoulli(q) and Bernoulli(p). It is +Inf when q puts mass where p has
// none.
func KLBernoulli(q, p float64) float64 {
	if q < 0 || q > 1 || p < 0 || p > 1 {
		panic(fmt.Sprintf("lowerbound: KLBernoulli domain error q=%v p=%v", q, p))
	}
	term := func(a, b float64) float64 {
		if a == 0 {
			return 0
		}
		if b == 0 {
			return math.Inf(1)
		}
		return a * math.Log2(a/b)
	}
	return term(q, p) + term(1-q, 1-p)
}

// Lemma43LowerBound returns the right-hand side of Lemma 4.3,
// D(q ‖ p) ≥ q − 2p for p < 1/2, in bits (the paper states the inequality
// with log base 2).
func Lemma43LowerBound(q, p float64) float64 { return q - 2*p }

// Lemma413LowerBound returns the right-hand side of Lemma 4.13: a
// reported edge (posterior ≥ 9/10 against prior γ/√n) contributes at
// least (9/40)·log₂ n bits of divergence, for γ < 1/2 and large n.
func Lemma413LowerBound(n int) float64 { return 9.0 / 40 * math.Log2(float64(n)) }

// ReportedEdgeDivergence returns D(9/10 ‖ γ/√n) — the divergence cost of
// reporting one edge under µ — in bits.
func ReportedEdgeDivergence(n int, gamma float64) float64 {
	return KLBernoulli(0.9, gamma/math.Sqrt(float64(n)))
}

// MaxReportedEdges returns the Corollary 4.14 budget bound: with C
// communication bits a player can report at most C / ((9/40)·log₂ n)
// edges in expectation.
func MaxReportedEdges(budgetBits float64, n int) float64 {
	return budgetBits / Lemma413LowerBound(n)
}
