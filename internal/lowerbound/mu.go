// Package lowerbound implements the constructive side of the paper's §4:
// the hard input distribution µ, budget-capped adversary strategies that
// probe the one-way and simultaneous triangle-edge-detection thresholds,
// the Boolean Hidden Matching reduction (Theorem 4.16), the symmetrization
// embedding (Theorem 4.15), and the degree-padding embedding (Lemma 4.17).
//
// The bounds themselves are information-theoretic and not "runnable"; what
// is runnable — and what this package provides — is (a) the exact
// reductions with checkable structure, and (b) empirical hardness probes:
// concrete best-effort strategy families parameterized by a communication
// budget whose success probability on µ stays near chance until the budget
// crosses the scale the theorems predict (n^{1/4}·… for one-way, √n·… for
// simultaneous, at d = Θ(√n)).
package lowerbound

import (
	"fmt"
	"math"
	"math/rand"

	"tricomm/internal/graph"
	"tricomm/internal/wire"
)

// MuParams parameterizes the hard distribution µ of §4.2.1.
type MuParams struct {
	// NPart is the size of each of the three parts U, V1, V2, so the graph
	// has n = 3·NPart vertices.
	NPart int
	// Gamma is the edge-probability constant: each cross-part pair is an
	// edge independently with probability Gamma/√n.
	Gamma float64
}

// MuInstance is a sample from µ together with its part structure and the
// canonical 3-player split: Alice holds U×V1, Bob holds U×V2, and Charlie
// holds V1×V2 (the side he must output a triangle edge from).
type MuInstance struct {
	// G is the sampled tripartite graph.
	G *graph.Graph
	// NPart is the part size; parts are U = [0, NPart),
	// V1 = [NPart, 2·NPart), V2 = [2·NPart, 3·NPart).
	NPart int
	// Alice, Bob, Charlie are the three players' edge sets.
	Alice, Bob, Charlie []wire.Edge
}

// N reports the total vertex count 3·NPart.
func (m MuInstance) N() int { return 3 * m.NPart }

// Part returns 0, 1 or 2 for a vertex in U, V1 or V2.
func (m MuInstance) Part(v int) int { return v / m.NPart }

// Inputs returns the 3-player input vector (Alice, Bob, Charlie).
func (m MuInstance) Inputs() [][]wire.Edge {
	return [][]wire.Edge{m.Alice, m.Bob, m.Charlie}
}

// SampleMu draws an instance of µ.
func SampleMu(p MuParams, rng *rand.Rand) MuInstance {
	if p.NPart < 1 {
		panic(fmt.Sprintf("lowerbound: NPart must be positive, got %d", p.NPart))
	}
	n := 3 * p.NPart
	prob := p.Gamma / math.Sqrt(float64(n))
	g := graph.Tripartite(p.NPart, p.NPart, p.NPart, prob, rng)
	inst := MuInstance{G: g, NPart: p.NPart}
	g.VisitEdges(func(e wire.Edge) bool {
		pu, pv := inst.Part(e.U), inst.Part(e.V)
		lo, hi := pu, pv
		if lo > hi {
			lo, hi = hi, lo
		}
		switch {
		case lo == 0 && hi == 1: // U × V1 → Alice
			inst.Alice = append(inst.Alice, e)
		case lo == 0 && hi == 2: // U × V2 → Bob
			inst.Bob = append(inst.Bob, e)
		default: // V1 × V2 → Charlie
			inst.Charlie = append(inst.Charlie, e)
		}
		return true
	})
	return inst
}

// FarnessCertificate returns the size of a maximal edge-disjoint triangle
// packing of the instance and the implied farness lower bound — the
// quantity Lemma 4.5 shows is Ω(n^{3/2}) (hence Ω(1)-far) with constant
// probability.
func (m MuInstance) FarnessCertificate() (packing int, eps float64) {
	pack := m.G.PackTriangles()
	if m.G.M() == 0 {
		return len(pack), 0
	}
	return len(pack), float64(len(pack)) / float64(m.G.M())
}

// TriangleEdgesOfCharlie returns Charlie's edges that participate in a
// triangle of G — the valid outputs of the triangle-edge-detection task
// T^ε (Theorem 4.1).
func (m MuInstance) TriangleEdgesOfCharlie() []wire.Edge {
	var out []wire.Edge
	for _, e := range m.Charlie {
		if _, ok := m.G.HasTriangleOn(e); ok {
			out = append(out, e)
		}
	}
	return out
}

// IsValidOutput reports whether edge e solves the triangle-edge task on
// this instance: it must be one of Charlie's edges and lie on a triangle.
func (m MuInstance) IsValidOutput(e wire.Edge) bool {
	if !m.G.HasEdge(e.U, e.V) {
		return false
	}
	lo, hi := m.Part(e.U), m.Part(e.V)
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo != 1 || hi != 2 {
		return false
	}
	_, ok := m.G.HasTriangleOn(e)
	return ok
}

// EmbedSparse applies Lemma 4.17: it pads the instance with isolated
// vertices until the average degree drops to targetD, preserving the edge
// set, the triangles, and the absolute distance to triangle-freeness. The
// players' inputs are unchanged (their edges keep their ids).
func (m MuInstance) EmbedSparse(targetD float64) (MuInstance, int) {
	d := m.G.AvgDegree()
	if targetD <= 0 || targetD >= d {
		return m, m.N()
	}
	nTotal := int(math.Ceil(float64(m.N()) * d / targetD))
	out := m
	out.G = graph.Embed(m.G, nTotal)
	return out, nTotal
}
