package lowerbound

import (
	"context"
	"fmt"
	"math"

	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// ProbeResult records one budget-capped strategy run on a µ instance.
type ProbeResult struct {
	// Success reports whether the strategy output a valid triangle edge of
	// Charlie's input.
	Success bool
	// Output is the edge output by the referee/Charlie (zero if none).
	Output wire.Edge
	// Bits is the communication actually used.
	Bits int64
	// Covered is the number of V1×V2 pairs covered by Alice/Bob vees that
	// the deciding party could certify — the quantity the §4 proofs bound
	// (quadratic in the budget for one-way, linear for simultaneous).
	Covered int
}

// OneWayProbe is the best-effort one-way strategy matching the structure
// of the Ω(n^{1/4}) bound (§4.2.2): concentrate the budget on a single
// star. Alice announces a vertex u* ∈ U of maximal degree in her input
// and up to B neighbors of it; Bob answers with up to B of his own
// neighbors of u*. Charlie, who observes the transcript, can certify
// |Alice's list| × |Bob's list| covered pairs — the quadratic advantage —
// and outputs any covered pair present in his input.
type OneWayProbe struct {
	// BudgetBits caps each of Alice's and Bob's messages.
	BudgetBits int
}

// Run executes the strategy on a µ instance.
func (p OneWayProbe) Run(inst MuInstance, shared *xrand.Shared) (ProbeResult, error) {
	if p.BudgetBits < 1 {
		return ProbeResult{}, fmt.Errorf("lowerbound: one-way probe needs a positive budget")
	}
	n := inst.N()
	vc := wire.NewVertexCodec(n)
	// Edge budget: each vertex id costs ⌈log₂ n⌉ bits, plus u* itself.
	maxList := (p.BudgetBits - vc.Width() - 16) / vc.Width()
	if maxList < 1 {
		maxList = 1
	}
	cfg := comm.Config{N: n, Inputs: inst.Inputs(), Shared: shared}
	res := ProbeResult{}
	owr, err := comm.RunOneWay(cfg,
		func(alice *comm.SimPlayer) (comm.Msg, error) {
			// Max-degree vertex of U in Alice's input.
			best, bestDeg := 0, -1
			for u := 0; u < inst.NPart; u++ {
				if d := alice.View.Degree(u); d > bestDeg {
					best, bestDeg = u, d
				}
			}
			var list []int
			for _, v := range alice.View.Neighbors(best) {
				if len(list) >= maxList {
					break
				}
				list = append(list, int(v))
			}
			var w wire.Writer
			if err := vc.Put(&w, best); err != nil {
				return comm.Msg{}, err
			}
			if err := vc.PutVertexList(&w, list); err != nil {
				return comm.Msg{}, err
			}
			return comm.FromWriter(&w), nil
		},
		func(bob *comm.SimPlayer, aliceMsg comm.Msg) (comm.Msg, error) {
			r := aliceMsg.Reader()
			uStar, err := vc.Get(r)
			if err != nil {
				return comm.Msg{}, err
			}
			var list []int
			for _, v := range bob.View.Neighbors(uStar) {
				if len(list) >= maxList {
					break
				}
				list = append(list, int(v))
			}
			var w wire.Writer
			if err := vc.PutVertexList(&w, list); err != nil {
				return comm.Msg{}, err
			}
			return comm.FromWriter(&w), nil
		},
		func(charlie *comm.SimPlayer, aliceMsg, bobMsg comm.Msg) error {
			ra := aliceMsg.Reader()
			if _, err := vc.Get(ra); err != nil {
				return err
			}
			v1s, err := vc.GetVertexList(ra)
			if err != nil {
				return err
			}
			v2s, err := vc.GetVertexList(bobMsg.Reader())
			if err != nil {
				return err
			}
			res.Covered = len(v1s) * len(v2s)
			for _, v1 := range v1s {
				for _, v2 := range v2s {
					if charlie.View.HasEdge(v1, v2) {
						res.Output = wire.Edge{U: v1, V: v2}.Canon()
						res.Success = inst.IsValidOutput(res.Output)
						return nil
					}
				}
			}
			return nil
		})
	if err != nil {
		return ProbeResult{}, err
	}
	res.Bits = owr.Stats.TotalBits
	return res, nil
}

// SimProbe is the best-effort simultaneous strategy matching the
// structure of the Ω(√n) bound (§4.2.3): shared random windows
// U′ ⊆ U, W₁ ⊆ V1, W₂ ⊆ V2 sized to the budget; every player ships its
// window edges; the referee looks for a triangle in the union and outputs
// its V1×V2 edge. Without interaction Charlie must commit to (report)
// window edges blindly, so coverage is only linear in the budget — the
// gap the paper proves is inherent.
type SimProbe struct {
	// BudgetBits caps each player's message.
	BudgetBits int
	// Gamma is the µ parameter (needed to size the windows).
	Gamma float64
}

// windowSide returns the window side length s so that the expected number
// of window edges per player, s²·γ/√n, encodes within the budget.
func (p SimProbe) windowSide(n int) int {
	edgeBits := 2 * wire.BitsFor(n)
	budgetEdges := float64(p.BudgetBits-16) / float64(edgeBits)
	if budgetEdges < 1 {
		budgetEdges = 1
	}
	s := math.Sqrt(budgetEdges * math.Sqrt(float64(n)) / p.Gamma)
	side := int(s)
	if side < 1 {
		side = 1
	}
	if side > n/3 {
		side = n / 3
	}
	return side
}

// Run executes the strategy on a µ instance.
func (p SimProbe) Run(inst MuInstance, shared *xrand.Shared) (ProbeResult, error) {
	if p.BudgetBits < 1 || p.Gamma <= 0 {
		return ProbeResult{}, fmt.Errorf("lowerbound: sim probe needs positive budget and gamma")
	}
	n := inst.N()
	side := p.windowSide(n)
	frac := float64(side) / float64(inst.NPart)
	if frac > 1 {
		frac = 1
	}
	ec := wire.NewEdgeCodec(n)
	maxEdges := (p.BudgetBits - 16) / ec.Width()
	if maxEdges < 1 {
		maxEdges = 1
	}
	inWindow := func(v int) bool {
		// Window membership per part, via shared randomness.
		key := shared.Key(fmt.Sprintf("probe/window/%d", inst.Part(v)))
		return key.Bernoulli(uint64(v), frac)
	}
	cfg := comm.Config{N: n, Inputs: inst.Inputs(), Shared: shared}
	res := ProbeResult{}
	stats, err := comm.RunSimultaneous(context.Background(), cfg,
		func(pl *comm.SimPlayer) (comm.Msg, error) {
			var out []wire.Edge
			for _, e := range pl.Edges {
				if inWindow(e.U) && inWindow(e.V) {
					out = append(out, e)
					if len(out) >= maxEdges {
						break
					}
				}
			}
			var w wire.Writer
			if err := ec.PutEdgeList(&w, out); err != nil {
				return comm.Msg{}, err
			}
			return comm.FromWriter(&w), nil
		},
		func(_ *xrand.Shared, msgs []comm.Msg) error {
			b := graph.NewBuilder(n)
			charlieEdges := map[wire.Edge]bool{}
			for j, m := range msgs {
				edges, err := ec.GetEdgeList(m.Reader())
				if err != nil {
					return err
				}
				for _, e := range edges {
					b.AddEdge(e.U, e.V)
					if j == 2 {
						charlieEdges[e.Canon()] = true
					}
				}
			}
			res.Covered = len(charlieEdges)
			exposed := b.Build()
			if tri, ok := exposed.FindTriangle(); ok {
				// Output the V1×V2 edge of the triangle.
				for _, e := range tri.Edges() {
					if inst.Part(e.U) != 0 && inst.Part(e.V) != 0 {
						res.Output = e
						res.Success = inst.IsValidOutput(e)
						break
					}
				}
			}
			return nil
		})
	if err != nil {
		return ProbeResult{}, err
	}
	res.Bits = stats.TotalBits
	return res, nil
}
