package lowerbound

import (
	"fmt"
	"math/rand"

	"tricomm/internal/graph"
	"tricomm/internal/wire"
)

// BHMInstance is an instance of the Boolean Matching problem BM_n
// (Definition 12): Alice holds x ∈ {0,1}^{2n}; Bob holds a perfect
// matching M on [2n] and w ∈ {0,1}^n; the promise is that Mx⊕w is either
// all-zeros or all-ones, and the players must decide which.
type BHMInstance struct {
	// X is Alice's vector, length 2n.
	X []bool
	// M is Bob's perfect matching: n disjoint pairs covering [2n].
	M [][2]int
	// W is Bob's vector, length n.
	W []bool
	// AllZero records the promise side: true iff Mx⊕w = 0ⁿ.
	AllZero bool
}

// NBits returns n (the matching size).
func (b BHMInstance) NBits() int { return len(b.M) }

// SampleBHM draws a uniformly random promise instance: x and M are
// uniform, and w is derived to satisfy the chosen promise side.
func SampleBHM(n int, allZero bool, rng *rand.Rand) BHMInstance {
	if n < 1 {
		panic(fmt.Sprintf("lowerbound: BHM needs n ≥ 1, got %d", n))
	}
	inst := BHMInstance{
		X:       make([]bool, 2*n),
		M:       make([][2]int, n),
		W:       make([]bool, n),
		AllZero: allZero,
	}
	for i := range inst.X {
		inst.X[i] = rng.Intn(2) == 1
	}
	perm := rng.Perm(2 * n)
	for j := 0; j < n; j++ {
		inst.M[j] = [2]int{perm[2*j], perm[2*j+1]}
	}
	for j := 0; j < n; j++ {
		parity := inst.X[inst.M[j][0]] != inst.X[inst.M[j][1]] // (Mx)_j
		if allZero {
			inst.W[j] = parity // w_j = (Mx)_j ⇒ (Mx⊕w)_j = 0
		} else {
			inst.W[j] = !parity
		}
	}
	return inst
}

// BHMReduction is the graph constructed from a BHM instance by the
// Theorem 4.16 reduction. Vertices: u = 0, and for each i ∈ [2n] the pair
// (i,0) ↦ 1+2i, (i,1) ↦ 2+2i — so 4n+1 vertices in total.
//
//   - Alice contributes the star edges {u, (i, x_i)} for every i ∈ [2n].
//   - Bob contributes, per matching edge e_j = {j₁, j₂}: the parallel
//     rails {(j₁,0),(j₂,0)}, {(j₁,1),(j₂,1)} if w_j = 0, or the crossed
//     rails if w_j = 1.
//
// The subgraph on {u, (j₁,·), (j₂,·)} contains a triangle iff
// (Mx⊕w)_j = 0, so the all-zeros side yields n edge-disjoint triangles
// (a 1/4-far graph of average degree O(1)) and the all-ones side is
// triangle-free.
type BHMReduction struct {
	// G is the reduction graph.
	G *graph.Graph
	// AliceEdges and BobEdges are the two players' inputs.
	AliceEdges, BobEdges []wire.Edge
	// Inst is the source instance.
	Inst BHMInstance
}

// VertexOf maps pair-vertex (i, side) to its graph id.
func bhmVertex(i, side int) int { return 1 + 2*i + side }

// Reduce constructs the reduction graph from a BHM instance.
func Reduce(inst BHMInstance) BHMReduction {
	n := inst.NBits()
	numVerts := 1 + 4*n
	b := graph.NewBuilder(numVerts)
	red := BHMReduction{Inst: inst}
	for i := 0; i < 2*n; i++ {
		side := 0
		if inst.X[i] {
			side = 1
		}
		e := wire.Edge{U: 0, V: bhmVertex(i, side)}.Canon()
		b.AddEdge(e.U, e.V)
		red.AliceEdges = append(red.AliceEdges, e)
	}
	for j := 0; j < n; j++ {
		j1, j2 := inst.M[j][0], inst.M[j][1]
		var pairs [2][2]int
		if !inst.W[j] {
			pairs = [2][2]int{{0, 0}, {1, 1}}
		} else {
			pairs = [2][2]int{{0, 1}, {1, 0}}
		}
		for _, pr := range pairs {
			e := wire.Edge{U: bhmVertex(j1, pr[0]), V: bhmVertex(j2, pr[1])}.Canon()
			b.AddEdge(e.U, e.V)
			red.BobEdges = append(red.BobEdges, e)
		}
	}
	red.G = b.Build()
	return red
}

// Inputs returns the 2-player input vector (Alice, Bob).
func (r BHMReduction) Inputs() [][]wire.Edge {
	return [][]wire.Edge{r.AliceEdges, r.BobEdges}
}

// ExpectedTriangles returns the number of triangles the dichotomy
// predicts: n on the all-zeros side, 0 on the all-ones side.
func (r BHMReduction) ExpectedTriangles() int64 {
	if r.Inst.AllZero {
		return int64(r.Inst.NBits())
	}
	return 0
}

// DecodeAnswer converts a triangle-detection verdict back to the BHM
// answer: a triangle found means Mx⊕w has a zero coordinate, which under
// the promise means the all-zeros side.
func DecodeAnswer(foundTriangle bool) (allZero bool) { return foundTriangle }
