package lowerbound

import (
	"fmt"
	"math/rand"

	"tricomm/internal/wire"
)

// Embedding records how a 3-player input was embedded into a k-player
// instance by the symmetrization reduction of Theorem 4.15.
type Embedding struct {
	// I and J are the (distinct) players, both ≠ k-1, that received X1 and
	// X2 respectively.
	I, J int
	// Inputs is the k-player input vector: Inputs[I] = X1, Inputs[J] = X2,
	// and every other player holds a copy of X3.
	Inputs [][]wire.Edge
}

// Embed3ToK performs the symmetrization embedding: X1 and X2 go to two
// uniformly random players other than player k-1, and every remaining
// player receives X3. Under a symmetric 3-player distribution the
// resulting k-player distribution is the η of Theorem 4.15, for which
// CC^{sim}_k ≥ (k/2)·CC^{→}_3.
func Embed3ToK(x1, x2, x3 []wire.Edge, k int, rng *rand.Rand) Embedding {
	if k < 3 {
		panic(fmt.Sprintf("lowerbound: symmetrization needs k ≥ 3, got %d", k))
	}
	i := rng.Intn(k - 1)
	j := rng.Intn(k - 2)
	if j >= i {
		j++
	}
	emb := Embedding{I: i, J: j, Inputs: make([][]wire.Edge, k)}
	for p := 0; p < k; p++ {
		switch p {
		case i:
			emb.Inputs[p] = x1
		case j:
			emb.Inputs[p] = x2
		default:
			emb.Inputs[p] = x3
		}
	}
	return emb
}

// SimulateOneWayCost computes the communication a 3-player one-way
// protocol derived from a k-player simultaneous protocol would use, given
// the per-player message costs of the simultaneous protocol on the
// embedded input: Alice and Bob forward players I's and J's messages and
// Charlie simulates everyone else for free, so the derived cost is
// bits[I] + bits[J] (the proof's accounting, whose expectation over I,J
// is (2/k)·CC(Π)).
func SimulateOneWayCost(perPlayerBits []int64, emb Embedding) int64 {
	return perPlayerBits[emb.I] + perPlayerBits[emb.J]
}
