package protocol

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/partition"
	"tricomm/internal/xrand"
)

// Tester is the common interface all protocols in this package satisfy.
type Tester interface {
	Name() string
	Run(ctx context.Context, cfg comm.Config) (Result, error)
}

var (
	_ Tester = Unrestricted{}
	_ Tester = UnrestrictedBlackboard{}
	_ Tester = SimHigh{}
	_ Tester = SimLow{}
	_ Tester = SimOblivious{}
	_ Tester = ExactBaseline{}
)

func cfgFor(g *graph.Graph, pt partition.Partitioner, k int, seed uint64) comm.Config {
	shared := xrand.New(seed)
	p := pt.Split(g, k, shared)
	return comm.Config{N: g.N(), Inputs: p.Inputs, Shared: shared}
}

// farLowDegree is an ε-far instance in the d = O(√n) regime.
func farLowDegree(seed int64) (*graph.Graph, float64) {
	rng := rand.New(rand.NewSource(seed))
	fg := graph.FarWithDegree(graph.FarParams{N: 600, D: 8, Eps: 0.25}, rng)
	return fg.G, fg.CertEps
}

// farHighDegree is an ε-far instance in the d = Ω(√n) regime
// (d ≈ 36 ≥ √900 = 30).
func farHighDegree(seed int64) (*graph.Graph, float64) {
	rng := rand.New(rand.NewSource(seed))
	fg := graph.FarWithDegree(graph.FarParams{N: 900, D: 36, Eps: 0.25}, rng)
	return fg.G, fg.CertEps
}

func triangleFreeGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.BipartiteAvgDegree(600, 8, rng)
}

func testersFor(eps, d float64) []Tester {
	return []Tester{
		Unrestricted{Eps: eps, AvgDegree: d},
		Unrestricted{Eps: eps}, // degree-oblivious interactive
		UnrestrictedBlackboard{Eps: eps, AvgDegree: d},
		SimHigh{Eps: eps, AvgDegree: d, Delta: 0.1},
		SimLow{Eps: eps, AvgDegree: d, Delta: 0.1},
		SimOblivious{Eps: eps, Delta: 0.1},
		ExactBaseline{},
	}
}

func TestOneSidedErrorOnTriangleFree(t *testing.T) {
	// No protocol may ever report a triangle on a triangle-free graph —
	// this is the probability-1 soundness guarantee.
	for seed := int64(0); seed < 5; seed++ {
		g := triangleFreeGraph(seed)
		d := g.AvgDegree()
		for _, tester := range testersFor(0.2, d) {
			for _, pt := range []partition.Partitioner{partition.Disjoint{}, partition.Duplicate{Q: 0.4}} {
				cfg := cfgFor(g, pt, 4, uint64(seed)+100)
				res, err := tester.Run(context.Background(), cfg)
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", tester.Name(), pt.Name(), seed, err)
				}
				if res.Found() {
					t.Fatalf("%s/%s seed %d: reported triangle %v on triangle-free graph",
						tester.Name(), pt.Name(), seed, res.Triangle)
				}
			}
		}
	}
}

func TestReportedTrianglesAreReal(t *testing.T) {
	g, eps := farLowDegree(1)
	d := g.AvgDegree()
	for _, tester := range testersFor(eps, d) {
		for seed := uint64(0); seed < 4; seed++ {
			cfg := cfgFor(g, partition.Duplicate{Q: 0.3}, 5, seed)
			res, err := tester.Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("%s seed %d: %v", tester.Name(), seed, err)
			}
			if res.Found() && !g.IsTriangle(res.Triangle.A, res.Triangle.B, res.Triangle.C) {
				t.Fatalf("%s seed %d: phantom triangle %v", tester.Name(), seed, res.Triangle)
			}
		}
	}
}

// completeness runs a tester over many seeds and returns the success rate.
func completeness(t *testing.T, mk func(seed uint64) Tester, g *graph.Graph, pt partition.Partitioner, k int, trials int) float64 {
	t.Helper()
	found := 0
	for seed := uint64(0); seed < uint64(trials); seed++ {
		cfg := cfgFor(g, pt, k, seed*7+13)
		res, err := mk(seed).Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", seed, err)
		}
		if res.Found() {
			found++
		}
	}
	return float64(found) / float64(trials)
}

func TestUnrestrictedCompleteness(t *testing.T) {
	g, eps := farLowDegree(2)
	rate := completeness(t, func(seed uint64) Tester {
		return Unrestricted{Eps: eps, AvgDegree: g.AvgDegree(), Tag: fmt.Sprintf("t%d", seed)}
	}, g, partition.Disjoint{}, 4, 10)
	if rate < 0.8 {
		t.Fatalf("completeness %.2f < 0.8 on ε-far input", rate)
	}
}

func TestUnrestrictedCompletenessObliviousWithDuplication(t *testing.T) {
	g, eps := farLowDegree(3)
	rate := completeness(t, func(seed uint64) Tester {
		return Unrestricted{Eps: eps, Tag: fmt.Sprintf("t%d", seed)}
	}, g, partition.Duplicate{Q: 0.5}, 4, 8)
	if rate < 0.7 {
		t.Fatalf("oblivious completeness %.2f < 0.7", rate)
	}
}

func TestUnrestrictedOnDenseCore(t *testing.T) {
	// The hard case for naive sampling: all triangles at a few hubs.
	rng := rand.New(rand.NewSource(4))
	g := graph.PlantedDenseCore(graph.DenseCoreParams{N: 1200, Hubs: 4, Pairs: 60}, rng)
	eps := g.FarnessLowerBound()
	rate := completeness(t, func(seed uint64) Tester {
		return Unrestricted{Eps: eps, AvgDegree: g.AvgDegree(), Tag: fmt.Sprintf("t%d", seed)}
	}, g, partition.Disjoint{}, 4, 8)
	if rate < 0.7 {
		t.Fatalf("dense-core completeness %.2f < 0.7", rate)
	}
}

func TestBlackboardCompleteness(t *testing.T) {
	g, eps := farLowDegree(5)
	rate := completeness(t, func(seed uint64) Tester {
		return UnrestrictedBlackboard{Eps: eps, AvgDegree: g.AvgDegree(), Tag: fmt.Sprintf("t%d", seed)}
	}, g, partition.Disjoint{}, 4, 10)
	if rate < 0.8 {
		t.Fatalf("blackboard completeness %.2f < 0.8", rate)
	}
}

func TestBlackboardCheaperThanCoordinator(t *testing.T) {
	// Theorem 3.23: the blackboard edge phase avoids the per-player
	// duplication of posted arms; with heavy duplication and larger k the
	// blackboard run must be cheaper.
	g, eps := farLowDegree(6)
	const k = 8
	var coordBits, boardBits int64
	for seed := uint64(0); seed < 5; seed++ {
		cfg := cfgFor(g, partition.Duplicate{Q: 0.8}, k, seed+40)
		rc, err := Unrestricted{Eps: eps, AvgDegree: g.AvgDegree(), Tag: fmt.Sprintf("c%d", seed)}.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := UnrestrictedBlackboard{Eps: eps, AvgDegree: g.AvgDegree(), Tag: fmt.Sprintf("b%d", seed)}.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		coordBits += rc.Stats.TotalBits
		boardBits += rb.Stats.TotalBits
	}
	if boardBits >= coordBits {
		t.Fatalf("blackboard (%d bits) not cheaper than coordinator (%d bits)", boardBits, coordBits)
	}
}

func TestSimLowCompleteness(t *testing.T) {
	g, eps := farLowDegree(7)
	rate := completeness(t, func(seed uint64) Tester {
		return SimLow{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1, Tag: fmt.Sprintf("t%d", seed)}
	}, g, partition.Disjoint{}, 4, 12)
	if rate < 0.7 {
		t.Fatalf("sim-low completeness %.2f < 0.7", rate)
	}
}

func TestSimHighCompleteness(t *testing.T) {
	g, eps := farHighDegree(8)
	rate := completeness(t, func(seed uint64) Tester {
		return SimHigh{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1, Tag: fmt.Sprintf("t%d", seed)}
	}, g, partition.Disjoint{}, 4, 12)
	if rate < 0.7 {
		t.Fatalf("sim-high completeness %.2f < 0.7", rate)
	}
}

func TestSimObliviousCompletenessBothRegimes(t *testing.T) {
	gLow, epsLow := farLowDegree(9)
	rate := completeness(t, func(seed uint64) Tester {
		return SimOblivious{Eps: epsLow, Delta: 0.1, Tag: fmt.Sprintf("l%d", seed)}
	}, gLow, partition.Disjoint{}, 4, 10)
	if rate < 0.7 {
		t.Fatalf("oblivious low-degree completeness %.2f < 0.7", rate)
	}
	gHigh, epsHigh := farHighDegree(10)
	rate = completeness(t, func(seed uint64) Tester {
		return SimOblivious{Eps: epsHigh, Delta: 0.1, Tag: fmt.Sprintf("h%d", seed)}
	}, gHigh, partition.Disjoint{}, 4, 10)
	if rate < 0.7 {
		t.Fatalf("oblivious high-degree completeness %.2f < 0.7", rate)
	}
}

func TestExactBaselineAlwaysCorrect(t *testing.T) {
	// Exact detection: finds a triangle iff one exists, on every seed.
	g, _ := farLowDegree(11)
	for seed := uint64(0); seed < 3; seed++ {
		cfg := cfgFor(g, partition.Duplicate{Q: 0.5}, 4, seed)
		res, err := ExactBaseline{}.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found() {
			t.Fatal("exact baseline missed a triangle")
		}
	}
	free := triangleFreeGraph(12)
	cfg := cfgFor(free, partition.Disjoint{}, 4, 1)
	res, err := ExactBaseline{}.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() {
		t.Fatal("exact baseline hallucinated a triangle")
	}
}

func TestTestingCheaperThanExact(t *testing.T) {
	// §5 headline: the testers beat the Θ(k·nd·log n) exact exchange.
	g, eps := farLowDegree(13)
	cfg := cfgFor(g, partition.Disjoint{}, 6, 3)
	exact, err := ExactBaseline{}.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tester := range []Tester{
		SimLow{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1},
		SimOblivious{Eps: eps, Delta: 0.1},
	} {
		res, err := tester.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", tester.Name(), err)
		}
		if res.Stats.TotalBits >= exact.Stats.TotalBits {
			t.Fatalf("%s used %d bits ≥ exact %d", tester.Name(), res.Stats.TotalBits, exact.Stats.TotalBits)
		}
	}
}

func TestSimCapsBoundMessages(t *testing.T) {
	// Per-player message bits must respect cap·edgewidth (+ header).
	g, eps := farHighDegree(14)
	d := g.AvgDegree()
	s := SimHigh{Eps: eps, AvgDegree: d, Delta: 0.1}
	cfg := cfgFor(g, partition.All{}, 3, 9)
	res, err := s.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	capBits := int64(s.Cap(g.N())*2*10 + 64) // cap edges × 2×⌈log₂ 900⌉=10 bits + header
	for j, bitsUsed := range res.Stats.PerPlayer {
		if bitsUsed > capBits {
			t.Fatalf("player %d used %d bits > cap %d", j, bitsUsed, capBits)
		}
	}
}

func TestSimultaneousIsOneRound(t *testing.T) {
	g, eps := farLowDegree(15)
	for _, tester := range []Tester{
		SimLow{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1},
		SimHigh{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1},
		SimOblivious{Eps: eps, Delta: 0.1},
		ExactBaseline{},
	} {
		cfg := cfgFor(g, partition.Disjoint{}, 4, 2)
		res, err := tester.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Rounds != 1 {
			t.Fatalf("%s: %d rounds in the simultaneous model", tester.Name(), res.Stats.Rounds)
		}
		if res.Stats.DownBits != 0 {
			t.Fatalf("%s: referee talked back (%d bits)", tester.Name(), res.Stats.DownBits)
		}
	}
}

func TestParamValidation(t *testing.T) {
	g := graph.Complete(6)
	cfg := cfgFor(g, partition.Disjoint{}, 2, 1)
	ctx := context.Background()
	if _, err := (Unrestricted{Eps: 0}).Run(ctx, cfg); err == nil {
		t.Fatal("eps=0 accepted by unrestricted")
	}
	if _, err := (UnrestrictedBlackboard{Eps: 2}).Run(ctx, cfg); err == nil {
		t.Fatal("eps=2 accepted by blackboard")
	}
	if _, err := (SimHigh{Eps: 0.1}).Run(ctx, cfg); err == nil {
		t.Fatal("sim-high without degree accepted")
	}
	if _, err := (SimLow{Eps: 0.1}).Run(ctx, cfg); err == nil {
		t.Fatal("sim-low without degree accepted")
	}
	if _, err := (SimOblivious{Eps: -1}).Run(ctx, cfg); err == nil {
		t.Fatal("negative eps accepted by oblivious")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(50).Build()
	cfg := cfgFor(g, partition.Disjoint{}, 3, 1)
	ctx := context.Background()
	for _, tester := range []Tester{
		Unrestricted{Eps: 0.3},
		UnrestrictedBlackboard{Eps: 0.3},
		SimOblivious{Eps: 0.3, Delta: 0.1},
		ExactBaseline{},
	} {
		res, err := tester.Run(ctx, cfg)
		if err != nil {
			t.Fatalf("%s on empty graph: %v", tester.Name(), err)
		}
		if res.Found() {
			t.Fatalf("%s found a triangle in the empty graph", tester.Name())
		}
	}
}

func TestVerdictString(t *testing.T) {
	if TriangleFree.String() != "triangle-free" || FoundTriangle.String() != "found-triangle" {
		t.Fatal("verdict strings wrong")
	}
	if Verdict(0).String() == "" {
		t.Fatal("unknown verdict empty")
	}
}

func TestContextCancellation(t *testing.T) {
	g, eps := farLowDegree(16)
	cfg := cfgFor(g, partition.Disjoint{}, 3, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Unrestricted{Eps: eps}).Run(ctx, cfg); err == nil {
		t.Fatal("canceled unrestricted run succeeded")
	}
	if _, err := (UnrestrictedBlackboard{Eps: eps}).Run(ctx, cfg); err == nil {
		t.Fatal("canceled blackboard run succeeded")
	}
}

func TestUnrestrictedNoDupVariant(t *testing.T) {
	// Lemma 3.16: with the disjointness promise, the candidate phase uses
	// the deterministic degree protocol — completeness must hold and the
	// run must be substantially cheaper than the duplication-tolerant one.
	g, eps := farLowDegree(40)
	d := g.AvgDegree()
	var dupBits, nodupBits int64
	found := 0
	const trials = 6
	for seed := uint64(0); seed < trials; seed++ {
		cfg := cfgFor(g, partition.Disjoint{}, 4, seed+900)
		rn, err := Unrestricted{Eps: eps, AvgDegree: d, AssumeDisjoint: true,
			Tag: fmt.Sprintf("nd%d", seed)}.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rn.Found() {
			found++
			if !g.IsTriangle(rn.Triangle.A, rn.Triangle.B, rn.Triangle.C) {
				t.Fatalf("phantom triangle %v", rn.Triangle)
			}
		}
		nodupBits += rn.Stats.TotalBits
		rd, err := Unrestricted{Eps: eps, AvgDegree: d,
			Tag: fmt.Sprintf("dd%d", seed)}.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		dupBits += rd.Stats.TotalBits
	}
	if found < trials-2 {
		t.Fatalf("no-dup completeness %d/%d", found, trials)
	}
	if nodupBits*2 >= dupBits {
		t.Fatalf("no-dup variant not substantially cheaper: %d vs %d bits", nodupBits, dupBits)
	}
}
