// Package protocol implements the paper's triangle-freeness protocols:
//
//   - Unrestricted (§3.3, Algorithms 1–6): the interactive coordinator-model
//     tester, Õ(k·(nd)^{1/4} + k²) bits, with a blackboard variant and a
//     degree-oblivious mode (Corollary 3.22).
//   - SimHigh (§3.4.1, Algorithm 7/9): simultaneous, d = Ω(√n),
//     Õ(k·(nd)^{1/3}) bits.
//   - SimLow (§3.4.2, Algorithm 8/10): simultaneous, d = O(√n), Õ(k·√n)
//     bits.
//   - SimOblivious (§3.4.3, Algorithm 11): simultaneous without knowing d.
//   - ExactBaseline: deterministic exact detection by full exchange — the
//     Woodruff–Zhang-style Θ(k·nd·log n) comparison point (§5).
//
// All testers are one-sided: a triangle is reported only when its three
// edges were actually observed in players' inputs, so a triangle-free
// graph is never rejected. Completeness (finding a triangle when the graph
// is ε-far) holds with high probability and is validated empirically by
// the test suite and the experiment harness.
//
// The paper's constants are proof artifacts (e.g. q = ln(6/δ)·108·log²n·k/ε²
// candidate samples); running them verbatim would swamp any feasible n.
// Each protocol therefore exposes the constants as Tunables with defaults
// that preserve the asymptotic structure while keeping simulations
// tractable; the experiment harness measures the resulting scaling.
package protocol

import (
	"fmt"

	"tricomm/internal/comm"
	"tricomm/internal/graph"
)

// Verdict is a tester's output.
type Verdict int

// Verdict values. Testers have one-sided error: FoundTriangle is always
// correct; TriangleFree may be wrong with probability ≤ δ when the input
// is ε-far.
const (
	// TriangleFree means no triangle was detected.
	TriangleFree Verdict = iota + 1
	// FoundTriangle means a concrete triangle was exhibited.
	FoundTriangle
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case TriangleFree:
		return "triangle-free"
	case FoundTriangle:
		return "found-triangle"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Result carries a protocol run's verdict and cost.
type Result struct {
	// Verdict is the tester output.
	Verdict Verdict
	// Triangle is the witness when Verdict == FoundTriangle.
	Triangle graph.Triangle
	// Stats is the communication cost of the run.
	Stats comm.Stats
	// Phases optionally attributes bits to named protocol phases (e.g.
	// "candidates" vs "edges" in the unrestricted protocol). It is an
	// inline fixed-slot table; the zero value is empty.
	Phases Phases
}

// Found reports whether the run exhibited a triangle.
func (r Result) Found() bool { return r.Verdict == FoundTriangle }
