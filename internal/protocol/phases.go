package protocol

import "iter"

// phaseCap bounds the per-run phase vocabulary. The protocols declare at
// most four names ("estimate", "candidates", "edges", "buckets"); the
// slack absorbs future phases without reintroducing a heap structure.
const phaseCap = 6

// Phases attributes bits to named protocol phases on fixed inline slots —
// the allocation-free replacement for the map[string]int64 every run used
// to build. The zero value is an empty, ready-to-use table; Result carries
// it by value, so attributing phases costs nothing on the heap.
type Phases struct {
	n     int
	names [phaseCap]string
	bits  [phaseCap]int64
}

// Set records bits for name, overwriting an existing slot or claiming the
// next free one. Slots keep insertion order, so iteration is deterministic.
func (p *Phases) Set(name string, bits int64) {
	for i := 0; i < p.n; i++ {
		if p.names[i] == name {
			p.bits[i] = bits
			return
		}
	}
	if p.n == phaseCap {
		panic("protocol: phase table overflow — raise phaseCap")
	}
	p.names[p.n] = name
	p.bits[p.n] = bits
	p.n++
}

// Get returns the bits recorded for name (0 when absent).
func (p *Phases) Get(name string) int64 {
	for i := 0; i < p.n; i++ {
		if p.names[i] == name {
			return p.bits[i]
		}
	}
	return 0
}

// Len reports the number of recorded phases.
func (p *Phases) Len() int { return p.n }

// All iterates the phases in insertion order.
func (p *Phases) All() iter.Seq2[string, int64] {
	return func(yield func(string, int64) bool) {
		for i := 0; i < p.n; i++ {
			if !yield(p.names[i], p.bits[i]) {
				return
			}
		}
	}
}

// Map materializes the table as a map, for callers that want the old
// representation (cold paths only).
func (p *Phases) Map() map[string]int64 {
	if p.n == 0 {
		return nil
	}
	m := make(map[string]int64, p.n)
	for i := 0; i < p.n; i++ {
		m[p.names[i]] = p.bits[i]
	}
	return m
}
