package protocol

import (
	"context"
	"fmt"
	"math"

	"tricomm/internal/blocks"
	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/parwork"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// SimOblivious is the degree-oblivious simultaneous tester (§3.4.3,
// Algorithm 11). No party knows the average degree; instead each player j
// computes its local average degree d̄ⱼ = 2|Eⱼ|/n and — reasoning that if
// it is "relevant" the true degree lies in Dⱼ = [d̄ⱼ, (4k/ε)·d̄ⱼ] — runs
// O(log k) parallel instances, one per power-of-two degree guess in Dⱼ:
// AlgHigh instances for guesses ≥ √n and AlgLow instances below, all
// AlgLow instances sharing one R sample. Per-instance edge caps keyed to
// d̄ⱼ (Lemmas 3.30/3.31) keep each player's message within its budget.
// The referee unions everything; relevant players include the correct
// guess, so the union contains a triangle with high probability on ε-far
// inputs.
type SimOblivious struct {
	// Eps is the farness parameter.
	Eps float64
	// Delta is the error target used to size the caps.
	Delta float64
	// Tunables are the constant factors shared with SimHigh/SimLow.
	Tunables SimTunables
	// Tag scopes the shared randomness.
	Tag string
}

// Name identifies the protocol in logs.
func (s SimOblivious) Name() string { return "sim-oblivious" }

// guessRange returns the inclusive power-of-two exponent range covering
// D_j = [d̄_j, (4k/ε)·d̄_j] clipped to [1, n].
func (s SimOblivious) guessRange(localAvg float64, n, k int) (lo, hi int) {
	if localAvg < 1 {
		localAvg = 1
	}
	upper := 4 * float64(k) / s.Eps * localAvg
	if upper > float64(n) {
		upper = float64(n)
	}
	lo = int(math.Floor(math.Log2(localAvg)))
	hi = int(math.Ceil(math.Log2(upper)))
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// instanceCapHigh is the per-instance cap for AlgHigh instances:
// Õ((n·d̄ⱼ)^{1/3}) edges (Lemma 3.30).
func (s SimOblivious) instanceCapHigh(n int, localAvg float64) int {
	t := s.Tunables.orDefault()
	base := math.Cbrt(float64(n) * math.Max(localAvg, 1))
	return int(math.Ceil(t.CapSlack * base * math.Log(float64(n)+2)))
}

// instanceCapLow is the per-instance cap for AlgLow instances: Õ(√n)
// edges (Lemma 3.31).
func (s SimOblivious) instanceCapLow(n int) int {
	t := s.Tunables.orDefault()
	return int(math.Ceil(t.CapSlack * math.Sqrt(float64(n)) * math.Log(float64(n)+2)))
}

// Run executes the tester in the simultaneous model over a throwaway
// topology built from cfg.
func (s SimOblivious) Run(ctx context.Context, cfg comm.Config) (Result, error) {
	top, err := cfg.Topology()
	if err != nil {
		return Result{}, err
	}
	return s.RunOn(ctx, top)
}

// RunOn executes the tester in the simultaneous model, reusing top's
// cached player views.
func (s SimOblivious) RunOn(ctx context.Context, top *comm.Topology) (Result, error) {
	if s.Eps <= 0 || s.Eps > 1 {
		return Result{}, fmt.Errorf("protocol: sim-oblivious needs 0 < eps ≤ 1, got %v", s.Eps)
	}
	tag := s.Tag
	if tag == "" {
		tag = "simobl"
	}
	t := s.Tunables.orDefault()
	n := top.N()
	sqrtN := math.Sqrt(float64(n))
	var res Result
	stats, err := comm.RunSimultaneousOn(ctx, top,
		func(pl *comm.SimPlayer) (comm.Msg, error) {
			localAvg := 2 * float64(len(pl.Edges)) / math.Max(float64(pl.N), 1)
			lo, hi := s.guessRange(localAvg, pl.N, pl.K)
			var w wire.Writer
			w.WriteUvarint(uint64(hi - lo + 1))
			ec := wire.NewEdgeCodec(pl.N)
			for exp := lo; exp <= hi; exp++ {
				guess := math.Pow(2, float64(exp))
				var out []wire.Edge
				var capPer int
				if guess >= sqrtN {
					// AlgHigh instance for this guess.
					pS := t.C * math.Cbrt(float64(n)*float64(n)/(s.Eps*guess)) / float64(n)
					if pS > 1 {
						pS = 1
					}
					key := pl.Shared.Key(fmt.Sprintf("vsample/%s/high/%d", tag, exp))
					done := simParRegion(pl)
					out = parwork.Filter(pl.Workers, pl.Edges, func(_ int, e wire.Edge) bool {
						return key.Bernoulli(uint64(e.U), pS) && key.Bernoulli(uint64(e.V), pS)
					})
					done()
					capPer = s.instanceCapHigh(n, localAvg)
				} else {
					// AlgLow instance; R is shared across every low
					// instance (of every player), S depends on the guess.
					p1 := 1.0
					if guess > t.C {
						p1 = t.C / guess
					}
					p2 := t.C / sqrtN
					if p2 > 1 {
						p2 = 1
					}
					keyR := pl.Shared.Key("vsample/" + tag + "/R")
					keyS := pl.Shared.Key(fmt.Sprintf("vsample/%s/low/%d", tag, exp))
					done := simParRegion(pl)
					out = blocks.CrossSampleEdgesN(pl.Edges, keyR, keyS, p2, p1, pl.Workers)
					done()
					capPer = s.instanceCapLow(n)
				}
				if len(out) > capPer {
					out = out[:capPer]
				}
				w.WriteUvarint(uint64(exp))
				if err := ec.PutEdgeList(&w, out); err != nil {
					return comm.Msg{}, err
				}
			}
			return comm.FromWriter(&w), nil
		},
		func(_ *xrand.Shared, msgs []comm.Msg) error {
			b := graph.NewBuilder(n)
			ec := wire.NewEdgeCodec(n)
			for _, m := range msgs {
				r := m.Reader()
				instances, err := r.ReadUvarint()
				if err != nil {
					return err
				}
				for i := uint64(0); i < instances; i++ {
					if _, err := r.ReadUvarint(); err != nil { // guess exponent
						return err
					}
					edges, err := ec.GetEdgeList(r)
					if err != nil {
						return err
					}
					for _, e := range edges {
						b.AddEdge(e.U, e.V)
					}
				}
			}
			exposed := b.Build()
			res = Result{Verdict: TriangleFree}
			if tri, ok := exposed.FindTriangleN(top.IntraWorkers()); ok {
				res.Verdict = FoundTriangle
				res.Triangle = tri
			}
			return nil
		})
	res.Stats = stats
	return res, err
}

// ExactBaseline is the exact triangle-detection baseline: every player
// ships its whole input and the referee answers exactly. Woodruff–Zhang
// [38] show Ω(k·nd) bits are necessary for exact detection, so this
// trivial protocol is optimal up to the log n edge-id factor — it is the
// comparison point for the paper's headline claim that property testing
// is exponentially cheaper (§5).
type ExactBaseline struct{}

// Name identifies the protocol in logs.
func (ExactBaseline) Name() string { return "exact-baseline" }

// Run executes the baseline in the simultaneous model (it needs only one
// round) over a throwaway topology built from cfg.
func (e ExactBaseline) Run(ctx context.Context, cfg comm.Config) (Result, error) {
	top, err := cfg.Topology()
	if err != nil {
		return Result{}, err
	}
	return e.RunOn(ctx, top)
}

// RunOn executes the baseline in the simultaneous model, reusing top's
// cached player views.
func (ExactBaseline) RunOn(ctx context.Context, top *comm.Topology) (Result, error) {
	n := top.N()
	var res Result
	stats, err := comm.RunSimultaneousOn(ctx, top,
		func(pl *comm.SimPlayer) (comm.Msg, error) {
			var w wire.Writer
			if err := wire.NewEdgeCodec(pl.N).PutEdgeList(&w, pl.Edges); err != nil {
				return comm.Msg{}, err
			}
			return comm.FromWriter(&w), nil
		},
		func(_ *xrand.Shared, msgs []comm.Msg) error {
			r, err := simRefereeResult(n, msgs, decodeEdgeList(n), top.IntraWorkers())
			if err != nil {
				return err
			}
			res = r
			return nil
		})
	res.Stats = stats
	return res, err
}
