package protocol

import (
	"context"
	"fmt"
	"math"
	"time"

	"tricomm/internal/blocks"
	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/parwork"
	"tricomm/internal/wire"
	"tricomm/internal/xrand"
)

// SimTunables exposes the constant factors of the simultaneous protocols.
type SimTunables struct {
	// C scales the vertex-sampling probabilities (the paper's constant c;
	// its proof value 8/(9δ) is conservative).
	C float64
	// CapSlack multiplies the per-player edge caps (the paper's Markov
	// caps l and q).
	CapSlack float64
}

// DefaultSimTunables returns empirically sufficient constants.
func DefaultSimTunables() SimTunables {
	return SimTunables{C: 3, CapSlack: 4}
}

func (t SimTunables) orDefault() SimTunables {
	d := DefaultSimTunables()
	if t.C <= 0 {
		t.C = d.C
	}
	if t.CapSlack <= 0 {
		t.CapSlack = d.CapSlack
	}
	return t
}

// simRefereeResult runs the standard referee: union the received edge
// lists and search them for a triangle. Every received edge is a real
// input edge, so a reported triangle is always genuine (one-sided error).
// The triangle search fans across up to workers goroutines (raw request;
// ≤0 defers to the environment) with the same witness at any width.
func simRefereeResult(n int, msgs []comm.Msg, decode func(m comm.Msg) ([]wire.Edge, error), workers int) (Result, error) {
	b := graph.NewBuilder(n)
	for _, m := range msgs {
		edges, err := decode(m)
		if err != nil {
			return Result{}, err
		}
		for _, e := range edges {
			b.AddEdge(e.U, e.V)
		}
	}
	exposed := b.Build()
	res := Result{Verdict: TriangleFree}
	if tri, ok := exposed.FindTriangleN(workers); ok {
		res.Verdict = FoundTriangle
		res.Triangle = tri
	}
	return res, nil
}

// simParRegion times an intra-phase parallel region of a simultaneous
// player for the observability meter; at width 1 it is free (metrics
// only, never Stats).
func simParRegion(p *comm.SimPlayer) func() {
	if p.Workers <= 1 {
		return func() {}
	}
	t0 := time.Now()
	return func() { p.ObserveParallel(time.Since(t0)) }
}

func decodeEdgeList(n int) func(m comm.Msg) ([]wire.Edge, error) {
	ec := wire.NewEdgeCodec(n)
	return func(m comm.Msg) ([]wire.Edge, error) {
		return ec.GetEdgeList(m.Reader())
	}
}

// SimHigh is the high-degree simultaneous tester (§3.4.1, Algorithms 7/9):
// every player sends its edges inside the shared random vertex set S of
// size Θ((n²/(ε·d))^{1/3}); the referee looks for a triangle in the union.
// Intended for d = Ω(√n); cost Õ(k·(nd)^{1/3}).
type SimHigh struct {
	// Eps is the farness parameter.
	Eps float64
	// AvgDegree is the (known) average degree d.
	AvgDegree float64
	// Delta is the error target used to size the Markov cap.
	Delta float64
	// Tunables are the constant factors.
	Tunables SimTunables
	// Tag scopes the shared randomness.
	Tag string
}

// Name identifies the protocol in logs.
func (s SimHigh) Name() string { return "sim-high" }

// SampleProb returns the per-vertex inclusion probability |S|/n used by
// the protocol for an n-vertex graph.
func (s SimHigh) SampleProb(n int) float64 {
	t := s.Tunables.orDefault()
	size := t.C * math.Cbrt(float64(n)*float64(n)/(s.Eps*s.AvgDegree))
	p := size / float64(n)
	if p > 1 {
		p = 1
	}
	return p
}

// Cap returns the per-player edge cap (the paper's l, scaled).
func (s SimHigh) Cap(n int) int {
	t := s.Tunables.orDefault()
	delta := s.Delta
	if delta <= 0 {
		delta = 0.1
	}
	p := s.SampleProb(n)
	expected := p * p * float64(n) * s.AvgDegree / 2
	return int(math.Ceil(t.CapSlack / delta * (expected + 1)))
}

// Run executes the tester in the simultaneous model over a throwaway
// topology built from cfg.
func (s SimHigh) Run(ctx context.Context, cfg comm.Config) (Result, error) {
	top, err := cfg.Topology()
	if err != nil {
		return Result{}, err
	}
	return s.RunOn(ctx, top)
}

// RunOn executes the tester in the simultaneous model, reusing top's
// cached player views.
func (s SimHigh) RunOn(ctx context.Context, top *comm.Topology) (Result, error) {
	if s.Eps <= 0 || s.AvgDegree <= 0 {
		return Result{}, fmt.Errorf("protocol: sim-high needs eps > 0 and known degree, got eps=%v d=%v", s.Eps, s.AvgDegree)
	}
	tag := s.Tag
	if tag == "" {
		tag = "simhigh"
	}
	n := top.N()
	p := s.SampleProb(n)
	capPer := s.Cap(n)
	var res Result
	stats, err := comm.RunSimultaneousOn(ctx, top,
		func(pl *comm.SimPlayer) (comm.Msg, error) {
			key := pl.Shared.Key("vsample/" + tag)
			// Order-preserving parallel filter over pure point queries of
			// the shared key: the kept set (and the cap truncation) is
			// bit-identical to the serial append loop at any width.
			done := simParRegion(pl)
			out := parwork.Filter(pl.Workers, pl.Edges, func(_ int, e wire.Edge) bool {
				return key.Bernoulli(uint64(e.U), p) && key.Bernoulli(uint64(e.V), p)
			})
			done()
			if len(out) > capPer {
				out = out[:capPer]
			}
			var w wire.Writer
			if err := wire.NewEdgeCodec(pl.N).PutEdgeList(&w, out); err != nil {
				return comm.Msg{}, err
			}
			return comm.FromWriter(&w), nil
		},
		func(_ *xrand.Shared, msgs []comm.Msg) error {
			r, err := simRefereeResult(n, msgs, decodeEdgeList(n), top.IntraWorkers())
			if err != nil {
				return err
			}
			res = r
			return nil
		})
	res.Stats = stats
	return res, err
}

// SimLow is the low-degree simultaneous tester (§3.4.2, Algorithms 8/10):
// shared samples S (probability min(c/d, 1)) and R (probability c/√n);
// every player sends its edges with one endpoint in R and the other in
// R ∪ S. Intended for d = O(√n); cost Õ(k·√n).
type SimLow struct {
	// Eps is the farness parameter (enters only through the analysis; the
	// sampling probabilities depend on d and n).
	Eps float64
	// AvgDegree is the (known) average degree d.
	AvgDegree float64
	// Delta is the error target used to size the Markov cap.
	Delta float64
	// Tunables are the constant factors.
	Tunables SimTunables
	// Tag scopes the shared randomness.
	Tag string
}

// Name identifies the protocol in logs.
func (s SimLow) Name() string { return "sim-low" }

// Probs returns (p1, p2): the S and R inclusion probabilities.
func (s SimLow) Probs(n int) (float64, float64) {
	t := s.Tunables.orDefault()
	p1 := 1.0
	if s.AvgDegree > t.C {
		p1 = t.C / s.AvgDegree
	}
	p2 := t.C / math.Sqrt(float64(n))
	if p2 > 1 {
		p2 = 1
	}
	return p1, p2
}

// Cap returns the per-player edge cap (the paper's q, scaled).
func (s SimLow) Cap(n int) int {
	t := s.Tunables.orDefault()
	delta := s.Delta
	if delta <= 0 {
		delta = 0.1
	}
	return int(math.Ceil(t.CapSlack * t.C * t.C * (math.Sqrt(float64(n)) + s.AvgDegree) * 2 / delta))
}

// Run executes the tester in the simultaneous model over a throwaway
// topology built from cfg.
func (s SimLow) Run(ctx context.Context, cfg comm.Config) (Result, error) {
	top, err := cfg.Topology()
	if err != nil {
		return Result{}, err
	}
	return s.RunOn(ctx, top)
}

// RunOn executes the tester in the simultaneous model, reusing top's
// cached player views.
func (s SimLow) RunOn(ctx context.Context, top *comm.Topology) (Result, error) {
	if s.Eps <= 0 || s.AvgDegree <= 0 {
		return Result{}, fmt.Errorf("protocol: sim-low needs eps > 0 and known degree, got eps=%v d=%v", s.Eps, s.AvgDegree)
	}
	tag := s.Tag
	if tag == "" {
		tag = "simlow"
	}
	n := top.N()
	p1, p2 := s.Probs(n)
	capPer := s.Cap(n)
	var res Result
	stats, err := comm.RunSimultaneousOn(ctx, top,
		func(pl *comm.SimPlayer) (comm.Msg, error) {
			keyR := pl.Shared.Key("vsample/" + tag + "/R")
			keyS := pl.Shared.Key("vsample/" + tag + "/S")
			done := simParRegion(pl)
			out := blocks.CrossSampleEdgesN(pl.Edges, keyR, keyS, p2, p1, pl.Workers)
			done()
			if len(out) > capPer {
				out = out[:capPer]
			}
			var w wire.Writer
			if err := wire.NewEdgeCodec(pl.N).PutEdgeList(&w, out); err != nil {
				return comm.Msg{}, err
			}
			return comm.FromWriter(&w), nil
		},
		func(_ *xrand.Shared, msgs []comm.Msg) error {
			r, err := simRefereeResult(n, msgs, decodeEdgeList(n), top.IntraWorkers())
			if err != nil {
				return err
			}
			res = r
			return nil
		})
	res.Stats = stats
	return res, err
}
