package protocol

import (
	"context"
	"fmt"
	"math"

	"tricomm/internal/blocks"
	"tricomm/internal/comm"
)

// NaiveUniform is the ablation of the unrestricted tester that motivates
// §3.3's bucketing: it samples uniformly random vertices (instead of
// candidates from the degree buckets B̃ᵢ), then runs the same
// degree-estimate → edge-sample → close-vee pipeline on each. On inputs
// whose triangles all touch a few high-degree hubs (PlantedDenseCore), a
// uniform vertex sample almost never hits a hub, so this tester fails
// where the bucketed one succeeds — with comparable communication.
type NaiveUniform struct {
	// Eps is the farness parameter.
	Eps float64
	// Samples is the number of uniform vertex samples (0 means the same
	// q = 3·k·ln n budget the bucketed tester uses per bucket).
	Samples int
	// Tunables are shared with Unrestricted.
	Tunables UnrestrictedTunables
	// Tag scopes the shared randomness.
	Tag string
}

// Name identifies the protocol in logs.
func (p NaiveUniform) Name() string { return "naive-uniform" }

// Run executes the ablated tester in the coordinator model over a
// throwaway topology built from cfg.
func (p NaiveUniform) Run(ctx context.Context, cfg comm.Config) (Result, error) {
	top, err := cfg.Topology()
	if err != nil {
		return Result{}, err
	}
	return p.RunOn(ctx, top)
}

// RunOn executes the ablated tester in the coordinator model, reusing
// top's cached player views.
func (p NaiveUniform) RunOn(ctx context.Context, top *comm.Topology) (Result, error) {
	if p.Eps <= 0 || p.Eps > 1 {
		return Result{}, fmt.Errorf("protocol: naive-uniform needs 0 < eps ≤ 1, got %v", p.Eps)
	}
	t := p.Tunables
	if t.EdgeProbFactor <= 0 || t.DegreeAlpha <= 1 || t.CapSlack <= 0 || t.CandidateFactor <= 0 {
		t = DefaultUnrestrictedTunables()
	}
	tag := p.Tag
	if tag == "" {
		tag = "naive"
	}
	res := Result{Verdict: TriangleFree}
	coord := func(ctx context.Context, c *comm.Coordinator) error {
		lnN := math.Log(float64(c.N))
		if lnN < 1 {
			lnN = 1
		}
		samples := p.Samples
		if samples <= 0 {
			samples = int(math.Ceil(t.CandidateFactor * float64(c.K) * lnN))
		}
		key := c.Shared.Key("naive/" + tag)
		sqrtA := math.Sqrt(t.DegreeAlpha)
		for i := 0; i < samples; i++ {
			v := int(key.Hash(uint64(i)) % uint64(c.N))
			dEst, err := blocks.ApproxDegree(ctx, c, v, blocks.ApproxParams{
				Alpha: t.DegreeAlpha, Tau: 0.02, Tag: fmt.Sprintf("%s/d%d", tag, i),
			})
			if err != nil {
				return err
			}
			if dEst < 2 {
				continue
			}
			prob := t.EdgeProbFactor * math.Sqrt(lnN/(p.Eps*dEst))
			if prob > 1 {
				prob = 1
			}
			capPer := int(math.Ceil(t.CapSlack * sqrtA * dEst * prob))
			arms, err := blocks.CollectIncidentSample(ctx, c, v, prob, capPer,
				fmt.Sprintf("%s/e%d", tag, i))
			if err != nil {
				return err
			}
			if len(arms) < 2 {
				continue
			}
			tri, ok, err := blocks.CloseStar(ctx, c, v, arms)
			if err != nil {
				return err
			}
			if ok {
				res.Verdict = FoundTriangle
				res.Triangle = tri
				return nil
			}
		}
		return nil
	}
	stats, err := comm.RunOn(ctx, top, coord, comm.ServeLoop(blocks.Handle))
	res.Stats = stats
	if err != nil {
		return res, err
	}
	return res, nil
}
