package protocol

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"tricomm/internal/graph"
	"tricomm/internal/partition"
)

func TestNaiveUniformSoundness(t *testing.T) {
	// One-sided like every tester here: never a triangle on bipartite
	// inputs.
	g := triangleFreeGraph(30)
	for seed := uint64(0); seed < 4; seed++ {
		cfg := cfgFor(g, partition.Duplicate{Q: 0.4}, 4, seed)
		res, err := NaiveUniform{Eps: 0.2, Tag: fmt.Sprintf("s%d", seed)}.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found() {
			t.Fatalf("seed %d: naive tester hallucinated %v", seed, res.Triangle)
		}
	}
}

func TestNaiveUniformFindsSpreadTriangles(t *testing.T) {
	// When triangles are spread over a constant fraction of vertices,
	// uniform sampling is fine.
	g, eps := farLowDegree(31)
	rate := completeness(t, func(seed uint64) Tester {
		return NaiveUniform{Eps: eps, Tag: fmt.Sprintf("n%d", seed)}
	}, g, partition.Disjoint{}, 4, 8)
	if rate < 0.7 {
		t.Fatalf("naive completeness %.2f < 0.7 on spread triangles", rate)
	}
}

func TestNaiveUniformFailsOnHiddenBlock(t *testing.T) {
	// The §3.3 motivation: all triangles hidden on a vanishing fraction of
	// vertices. The bucketed tester must beat uniform sampling decisively.
	const trials = 10
	bucketedWins, naiveWins := 0, 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		g, _ := graph.HiddenBlock(graph.HiddenBlockParams{N: 12000, A: 6, NoiseDeg: 4}, rng)
		eps := g.FarnessLowerBound()
		cfg := cfgFor(g, partition.Disjoint{}, 4, uint64(trial)+800)
		rb, err := Unrestricted{Eps: eps, AvgDegree: g.AvgDegree(),
			Tag: fmt.Sprintf("hb%d", trial)}.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rb.Found() {
			bucketedWins++
		}
		rn, err := NaiveUniform{Eps: eps, Tag: fmt.Sprintf("hn%d", trial)}.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rn.Found() {
			naiveWins++
		}
	}
	if bucketedWins <= naiveWins+2 {
		t.Fatalf("no separation: bucketed %d/%d vs naive %d/%d",
			bucketedWins, trials, naiveWins, trials)
	}
}

func TestNaiveUniformValidation(t *testing.T) {
	g := graph.Complete(5)
	cfg := cfgFor(g, partition.Disjoint{}, 2, 1)
	if _, err := (NaiveUniform{Eps: 0}).Run(context.Background(), cfg); err == nil {
		t.Fatal("eps=0 accepted")
	}
}
