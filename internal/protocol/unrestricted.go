package protocol

import (
	"context"
	"fmt"
	"math"

	"tricomm/internal/blocks"
	"tricomm/internal/bucket"
	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/marks"
)

// UnrestrictedTunables exposes the constant factors of the unrestricted
// protocol. The paper fixes them for worst-case proofs
// (q = ln(6/δ)·108·log²n·k/ε² uniform samples per bucket, etc.); we keep
// the same functional forms with adjustable multipliers.
type UnrestrictedTunables struct {
	// CandidateFactor scales the number of uniform candidate samples per
	// bucket: q = CandidateFactor · k · ln n.
	CandidateFactor float64
	// KeepFactor scales how many degree-filtered candidates are edge-
	// sampled per bucket: |C| ≤ KeepFactor · ln n.
	KeepFactor float64
	// EdgeProbFactor scales the incident-edge sampling probability
	// p = EdgeProbFactor · sqrt(ln n / (ε·d̂(v))) (Lemma 3.9 / Cor. 3.10).
	EdgeProbFactor float64
	// DegreeAlpha is the ApproxDegree approximation ratio (> 1).
	DegreeAlpha float64
	// CapSlack multiplies the per-player edge caps.
	CapSlack float64
}

// DefaultUnrestrictedTunables returns constants that empirically give the
// tester ≥ 95% completeness on the harness generators at ε ≥ 0.1 while
// keeping the simulation tractable.
func DefaultUnrestrictedTunables() UnrestrictedTunables {
	return UnrestrictedTunables{
		CandidateFactor: 3,
		KeepFactor:      4,
		EdgeProbFactor:  2,
		DegreeAlpha:     4,
		CapSlack:        2,
	}
}

// Unrestricted is the interactive tester of §3.3 (Algorithms 1–6):
// bucket iteration → uniform candidate sampling from B̃ᵢ → degree
// filtering → incident-edge sampling → vee closing. Cost
// Õ(k·(nd)^{1/4} + k²) with the paper's constants.
type Unrestricted struct {
	// Eps is the farness parameter the tester targets.
	Eps float64
	// AvgDegree, when positive, is the known average degree; when zero the
	// protocol estimates it first (Corollary 3.22 — the degree-oblivious
	// variant).
	AvgDegree float64
	// AssumeDisjoint declares the no-duplication promise: the players'
	// inputs are pairwise disjoint, so degree filtering can use the
	// deterministic O(k·log log d)-bit truncated-sum protocol of
	// Lemma 3.2 instead of the sampling rounds of Theorem 3.1
	// (Lemma 3.16's cheaper candidate phase).
	AssumeDisjoint bool
	// Tunables are the constant factors; zero value means defaults.
	Tunables UnrestrictedTunables
	// Tag scopes the shared randomness of this run.
	Tag string
}

// Name identifies the protocol in logs.
func (u Unrestricted) Name() string { return "unrestricted" }

func (u Unrestricted) tunables() UnrestrictedTunables {
	t := u.Tunables
	d := DefaultUnrestrictedTunables()
	if t.CandidateFactor <= 0 {
		t.CandidateFactor = d.CandidateFactor
	}
	if t.KeepFactor <= 0 {
		t.KeepFactor = d.KeepFactor
	}
	if t.EdgeProbFactor <= 0 {
		t.EdgeProbFactor = d.EdgeProbFactor
	}
	if t.DegreeAlpha <= 1 {
		t.DegreeAlpha = d.DegreeAlpha
	}
	if t.CapSlack <= 0 {
		t.CapSlack = d.CapSlack
	}
	return t
}

// Run executes the tester in the coordinator model over a throwaway
// topology built from cfg.
func (u Unrestricted) Run(ctx context.Context, cfg comm.Config) (Result, error) {
	top, err := cfg.Topology()
	if err != nil {
		return Result{}, err
	}
	return u.RunOn(ctx, top)
}

// RunOn executes the tester in the coordinator model, reusing top's cached
// player views.
func (u Unrestricted) RunOn(ctx context.Context, top *comm.Topology) (Result, error) {
	if u.Eps <= 0 || u.Eps > 1 {
		return Result{}, fmt.Errorf("protocol: unrestricted needs 0 < eps ≤ 1, got %v", u.Eps)
	}
	res := Result{Verdict: TriangleFree}
	coord := func(ctx context.Context, c *comm.Coordinator) error {
		r, err := u.runCoordinator(ctx, c)
		if err != nil {
			return err
		}
		res.Verdict = r.Verdict
		res.Triangle = r.Triangle
		res.Phases = r.Phases
		return nil
	}
	stats, err := comm.RunOn(ctx, top, coord, comm.ServeLoop(blocks.Handle))
	res.Stats = stats
	if err != nil {
		return res, err
	}
	return res, nil
}

func (u Unrestricted) runCoordinator(ctx context.Context, c *comm.Coordinator) (Result, error) {
	t := u.tunables()
	res := Result{Verdict: TriangleFree}
	n := c.N
	lnN := math.Log(float64(n))
	if lnN < 1 {
		lnN = 1
	}
	tag := u.Tag
	if tag == "" {
		tag = "unrestricted"
	}

	// Degree window: use the known average degree, or estimate a
	// 4-approximation (Corollary 3.22) and widen the window accordingly.
	c.BeginPhase("estimate")
	d := u.AvgDegree
	slack := 1.0
	if d <= 0 {
		est, err := blocks.ApproxDistinctEdges(ctx, c, blocks.ApproxParams{
			Alpha: t.DegreeAlpha, Tau: 0.05, Tag: tag + "/m",
		})
		if err != nil {
			return res, err
		}
		if est == 0 {
			attributePhases(&res, c.Stats())
			return res, nil // empty graph is triangle-free
		}
		d = 2 * est / float64(n)
		slack = t.DegreeAlpha
	}

	dl, dh := bucket.DegreeWindow(n, d, u.Eps)
	dl /= slack
	dh *= slack
	lo, hi := bucket.BucketRange(n, dl, dh)

	q := int(math.Ceil(t.CandidateFactor * float64(c.K) * lnN))
	keep := int(math.Ceil(t.KeepFactor * lnN))
	sqrtA := math.Sqrt(t.DegreeAlpha)

	for i := lo; i <= hi; i++ {
		tri, found, err := u.findTriangleVee(ctx, c, i, q, keep, sqrtA, lnN, tag, t)
		if err != nil {
			return res, err
		}
		if found {
			res.Verdict = FoundTriangle
			res.Triangle = tri
			break
		}
	}
	attributePhases(&res, c.Stats())
	return res, nil
}

// attributePhases fills Result.Phases from the engine meter's disjoint
// phase counters, adding the paper's "buckets" aggregate (everything past
// the degree estimate — the candidate + edge pipeline) that the
// experiment tables report. The engine reports phases in declaration
// order, so the slot order here is deterministic.
func attributePhases(res *Result, stats comm.Stats) {
	for _, p := range stats.Phases {
		res.Phases.Set(p.Name, p.Bits)
	}
	res.Phases.Set("buckets", stats.TotalBits-res.Phases.Get("estimate"))
}

// findTriangleVee is FindTriangleVee(Bᵢ) (Algorithm 5): gather full-vertex
// candidates, then sample each candidate's incident edges and try to close
// a vee.
func (u Unrestricted) findTriangleVee(
	ctx context.Context, c *comm.Coordinator,
	bucketIdx, q, keep int, sqrtA, lnN float64, tag string, t UnrestrictedTunables,
) (tri graph.Triangle, found bool, err error) {
	type cand struct {
		v    int
		dEst float64
	}
	var cands []cand
	seen := marks.Get(c.N)
	defer marks.Put(seen)
	// GetFullCandidates (Algorithm 3): up to q uniform samples from B̃ᵢ,
	// degree-filtered to ~N(Bᵢ) — candidate work is the k²·polylog
	// additive term, metered under the "candidates" phase.
	c.BeginPhase("candidates")
	for count := 0; count < q && len(cands) < keep; count++ {
		v, ok, serr := blocks.SampleUniformCandidate(ctx, c, bucketIdx,
			fmt.Sprintf("%s/b%d/s%d", tag, bucketIdx, count))
		if serr != nil {
			return tri, false, serr
		}
		if !ok {
			break // no player has candidates for this bucket
		}
		if seen.Has(v) {
			continue
		}
		seen.Add(v)
		var dEst float64
		var derr error
		if u.AssumeDisjoint {
			// Lemma 3.2: deterministic truncated-sum estimate; it only
			// under-counts, by at most a (1 + 2^{1-topBits}) = 1.5 factor.
			dEst, derr = blocks.ApproxDegreeNoDup(ctx, c, v, 2)
		} else {
			dEst, derr = blocks.ApproxDegree(ctx, c, v, blocks.ApproxParams{
				Alpha: t.DegreeAlpha, Tau: 0.02, Tag: fmt.Sprintf("%s/b%d/d%d", tag, bucketIdx, v),
			})
		}
		if derr != nil {
			return tri, false, derr
		}
		loD := float64(bucket.DegMin(bucketIdx)) / sqrtA
		hiD := float64(bucket.DegMax(bucketIdx)) * sqrtA
		if u.AssumeDisjoint {
			loD = float64(bucket.DegMin(bucketIdx)) / 1.5
			hiD = float64(bucket.DegMax(bucketIdx))
		}
		if dEst >= loD && dEst <= hiD {
			cands = append(cands, cand{v: v, dEst: dEst})
		}
	}
	// SampleEdges + close (Algorithms 4–5) — the k·(nd)^{1/4} term,
	// metered under the "edges" phase.
	c.BeginPhase("edges")
	for ci, cd := range cands {
		dHat := cd.dEst
		if dHat < 2 {
			dHat = 2
		}
		p := t.EdgeProbFactor * math.Sqrt(lnN/(u.Eps*dHat))
		if p > 1 {
			p = 1
		}
		capPer := int(math.Ceil(t.CapSlack * sqrtA * dHat * p))
		arms, aerr := blocks.CollectIncidentSample(ctx, c, cd.v, p, capPer,
			fmt.Sprintf("%s/b%d/e%d", tag, bucketIdx, ci))
		if aerr != nil {
			return tri, false, aerr
		}
		if len(arms) < 2 {
			continue
		}
		got, ok, cerr := blocks.CloseStar(ctx, c, cd.v, arms)
		if cerr != nil {
			return tri, false, cerr
		}
		if ok {
			return got, true, nil
		}
	}
	return tri, false, nil
}
