package protocol

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"time"

	"tricomm/internal/bucket"
	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/marks"
	"tricomm/internal/parwork"
	"tricomm/internal/wire"
)

// UnrestrictedBlackboard is the blackboard-model variant of the
// unrestricted tester (Theorem 3.23). The algorithm is the same bucket →
// candidate → edge-sampling pipeline, but every message is posted publicly
// and charged once, and in the edge-sampling phase the players post in
// turns, never repeating an arm already on the board — which is where the
// factor-k saving over the coordinator model comes from
// (Õ((nd)^{1/4} + k²) total).
//
// Degree estimation is replaced by the cheaper public-MSB protocol: each
// player posts the bit-length of its local degree, giving a 2k-range
// bracket; the candidate window is widened accordingly. This preserves the
// cost shape (the paper's blackboard bound keeps the k² polylog additive
// term) while keeping the variant self-contained.
type UnrestrictedBlackboard struct {
	// Eps is the farness parameter.
	Eps float64
	// AvgDegree, when positive, is the known average degree; otherwise it
	// is estimated from public MSB posts.
	AvgDegree float64
	// Tunables are shared with the coordinator-model protocol.
	Tunables UnrestrictedTunables
	// Tag scopes the shared randomness.
	Tag string
}

// Name identifies the protocol in logs.
func (u UnrestrictedBlackboard) Name() string { return "unrestricted-blackboard" }

// Run executes the tester synchronously against a Board over a throwaway
// topology built from cfg.
func (u UnrestrictedBlackboard) Run(ctx context.Context, cfg comm.Config) (Result, error) {
	top, err := cfg.Topology()
	if err != nil {
		return Result{}, err
	}
	return u.RunOn(ctx, top)
}

// RunOn executes the tester synchronously against a Board, reusing top's
// cached player views.
func (u UnrestrictedBlackboard) RunOn(ctx context.Context, top *comm.Topology) (Result, error) {
	if u.Eps <= 0 || u.Eps > 1 {
		return Result{}, fmt.Errorf("protocol: blackboard needs 0 < eps ≤ 1, got %v", u.Eps)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("%w: %v", comm.ErrCanceled, err)
	}
	t := u.Tunables
	if t.CandidateFactor <= 0 || t.KeepFactor <= 0 || t.EdgeProbFactor <= 0 || t.DegreeAlpha <= 1 || t.CapSlack <= 0 {
		t = DefaultUnrestrictedTunables()
	}
	players := comm.BoardPlayersOn(top)
	board := comm.NewBoard(top.K())
	res := Result{Verdict: TriangleFree}

	n := top.N()
	k := top.K()
	lnN := math.Log(float64(n))
	if lnN < 1 {
		lnN = 1
	}
	tag := u.Tag
	if tag == "" {
		tag = "bb"
	}
	vc := wire.NewVertexCodec(n)

	// Phase 0: average degree. Public MSBs of local edge counts give
	// m ≤ m̂ ≤ 2k·m when unknown.
	board.BeginPhase("estimate")
	d := u.AvgDegree
	slack := 1.0
	if d <= 0 {
		var mHat float64
		for _, p := range players {
			blen := bits.Len(uint(len(p.Edges)))
			var w wire.Writer
			w.WriteGamma(uint64(blen) + 1)
			if err := board.Post(p.ID, comm.FromWriter(&w)); err != nil {
				return res, err
			}
			if blen > 0 {
				mHat += math.Pow(2, float64(blen))
			}
		}
		if mHat == 0 {
			res.Stats = board.Stats()
			return res, nil
		}
		d = 2 * mHat / float64(n)
		slack = 2 * float64(k)
	}

	dl, dh := bucket.DegreeWindow(n, d, u.Eps)
	dl /= slack
	dh *= math.Sqrt(slack) + 1
	lo, hi := bucket.BucketRange(n, dl, dh)

	q := int(math.Ceil(t.CandidateFactor * float64(k) * lnN))
	keep := int(math.Ceil(t.KeepFactor * lnN))

	// Reusable scratch for the bucket loop: the seen-candidate and
	// posted-arm sets are pooled epoch-marked slices reset per use, not
	// per-iteration map allocations.
	seen := marks.Get(n)
	defer marks.Put(seen)
	posted := marks.Get(n)
	defer marks.Put(posted)

	board.BeginPhase("buckets")
	for i := lo; i <= hi; i++ {
		board.Round()
		type cand struct {
			v    int
			dEst float64
		}
		var cands []cand
		seen.Reset(n)
		for count := 0; count < q && len(cands) < keep; count++ {
			// Candidate sampling: every player posts its min-rank local
			// candidate; the global minimum is public.
			key := top.Shared().Key(fmt.Sprintf("cand/%s/b%d/s%d", tag, i, count))
			best, found := -1, false
			for _, p := range players {
				// Fused candidate-scan + min-rank, fanned across the
				// player's intra-phase workers (same winner at any width).
				done := boardParRegion(board, p.Workers)
				lv, ok := bucket.MinRankCandidate(p.View, i, k, key, p.Workers)
				done()
				var w wire.Writer
				w.WriteBool(ok)
				if ok {
					if err := vc.Put(&w, lv); err != nil {
						return res, err
					}
				}
				if err := board.Post(p.ID, comm.FromWriter(&w)); err != nil {
					return res, err
				}
				if ok && (!found || key.Before(uint64(lv), uint64(best))) {
					best, found = lv, true
				}
			}
			if !found {
				break
			}
			if seen.Has(best) {
				continue
			}
			seen.Add(best)
			// Public MSB degree bracket: d(v) ≤ d′(v) ≤ 2k·d(v).
			var dPrime float64
			for _, p := range players {
				blen := bits.Len(uint(p.View.Degree(best)))
				var w wire.Writer
				w.WriteGamma(uint64(blen) + 1)
				if err := board.Post(p.ID, comm.FromWriter(&w)); err != nil {
					return res, err
				}
				if blen > 0 {
					dPrime += math.Pow(2, float64(blen))
				}
			}
			if dPrime == 0 {
				continue
			}
			// Window check with the 2k bracket slack.
			loD := float64(bucket.DegMin(i))
			hiD := float64(bucket.DegMax(i)) * 2 * float64(k) * math.Sqrt(t.DegreeAlpha)
			if dPrime < loD || dPrime > hiD {
				continue
			}
			// Point estimate: geometric mean of the bracket.
			cands = append(cands, cand{v: best, dEst: dPrime / math.Sqrt(2*float64(k))})
		}
		// Edge phase: players post sampled arms in turns without repeats —
		// each arm reaches the board exactly once.
		for ci, cd := range cands {
			dHat := math.Max(cd.dEst, 2)
			p := t.EdgeProbFactor * math.Sqrt(lnN/(u.Eps*dHat))
			if p > 1 {
				p = 1
			}
			capTotal := int(math.Ceil(t.CapSlack * math.Sqrt(t.DegreeAlpha) * dHat * p * 2))
			key := top.Shared().Key(fmt.Sprintf("star/%s/b%d/e%d", tag, i, ci))
			posted.Reset(n)
			var arms []int
			for _, pl := range players {
				// The filter predicate only reads the posted set (Has is a
				// pure stamp comparison; no Adds run during the scan) and
				// queries the shared key, so it fans across workers; a row's
				// neighbors are distinct, so deferring the Adds to the serial
				// loop below cannot change which arms are kept. Order is
				// preserved, so the board transcript is identical at any
				// width.
				done := boardParRegion(board, pl.Workers)
				freshNbrs := parwork.Filter(pl.Workers, pl.View.Neighbors(cd.v), func(_ int, u32 int32) bool {
					uu := int(u32)
					return !posted.Has(uu) && key.Bernoulli(uint64(uu), p)
				})
				done()
				var fresh []int
				if len(freshNbrs) > 0 {
					fresh = make([]int, len(freshNbrs))
					for fi, u32 := range freshNbrs {
						uu := int(u32)
						posted.Add(uu)
						fresh[fi] = uu
					}
				}
				if len(arms)+len(fresh) > capTotal {
					over := len(arms) + len(fresh) - capTotal
					if over >= len(fresh) {
						fresh = nil
					} else {
						fresh = fresh[:len(fresh)-over]
					}
				}
				var w wire.Writer
				if err := vc.PutVertexList(&w, fresh); err != nil {
					return res, err
				}
				if err := board.Post(pl.ID, comm.FromWriter(&w)); err != nil {
					return res, err
				}
				arms = append(arms, fresh...)
			}
			// Closing: the first player holding an edge between two posted
			// arms posts the triangle.
			for _, pl := range players {
				done := boardParRegion(board, pl.Workers)
				tri, ok := closeArmsN(pl.View, cd.v, arms, pl.Workers)
				done()
				if ok {
					var w wire.Writer
					if err := vc.Put(&w, tri.A); err != nil {
						return res, err
					}
					if err := vc.Put(&w, tri.B); err != nil {
						return res, err
					}
					if err := vc.Put(&w, tri.C); err != nil {
						return res, err
					}
					if err := board.Post(pl.ID, comm.FromWriter(&w)); err != nil {
						return res, err
					}
					res.Verdict = FoundTriangle
					res.Triangle = tri
					res.Stats = board.Stats()
					attributePhases(&res, res.Stats)
					return res, nil
				}
			}
		}
	}
	res.Stats = board.Stats()
	attributePhases(&res, res.Stats)
	return res, nil
}

// closeArmsN looks in view for an edge between two arms of the star at v.
// FirstArmPairN scans each arm's remaining partners through the view's
// dense shadows when present (one bit test per candidate instead of a
// hash probe), fanning the outer scan across up to workers goroutines
// with the serial-first-hit reduction — the same first pair the nested
// HasEdge loop found, at any width.
func closeArmsN(view *graph.Graph, v int, arms []int, workers int) (graph.Triangle, bool) {
	if u1, u2, ok := view.FirstArmPairN(arms, workers); ok {
		return graph.Triangle{A: v, B: u1, C: u2}.Canon(), true
	}
	return graph.Triangle{}, false
}

// boardParRegion times an intra-phase parallel region against the board's
// observability meter; at width 1 it is free (metrics only, never Stats).
func boardParRegion(b *comm.Board, workers int) func() {
	if workers <= 1 {
		return func() {}
	}
	t0 := time.Now()
	return func() { b.ObserveParallel(time.Since(t0)) }
}
