package stats

import (
	"maps"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 not positive")
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.StdDev != 0 || s.CI95() != 0 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if q := Quantile(xs, 0); q != 10 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 40 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); math.Abs(q-25) > 1e-12 {
		t.Fatalf("median = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestWilson(t *testing.T) {
	lo, hi := Wilson(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v,%v] excludes 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("interval too wide: %v", hi-lo)
	}
	lo, hi = Wilson(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty trials interval = [%v,%v]", lo, hi)
	}
	lo, hi = Wilson(0, 20)
	if lo != 0 || hi < 0.05 {
		t.Fatalf("zero successes interval = [%v,%v]", lo, hi)
	}
	lo, hi = Wilson(20, 20)
	if hi != 1 || lo > 0.95 {
		t.Fatalf("all successes interval = [%v,%v]", lo, hi)
	}
}

// TestWilsonReferenceValues pins the Wilson 95% interval against
// externally computed reference values (z = 1.96; cf. R binom::
// binom.wilson and the worked examples in Brown–Cai–DasGupta 2001).
// These are the small-count regimes the probe threshold experiments
// (E3/E4/E6) live in, where the normal approximation collapses to empty
// or out-of-range intervals near rates 0 and 1.
func TestWilsonReferenceValues(t *testing.T) {
	cases := []struct {
		successes, trials int
		lo, hi            float64
	}{
		{0, 10, 0.0000, 0.2775},
		{1, 10, 0.0179, 0.4042},
		{5, 10, 0.2366, 0.7634},
		{8, 10, 0.4902, 0.9433},
		{10, 10, 0.7225, 1.0000},
		{20, 40, 0.3520, 0.6480},
		{1, 20, 0.0089, 0.2359},
	}
	const tol = 5e-4
	for _, c := range cases {
		lo, hi := Wilson(c.successes, c.trials)
		if math.Abs(lo-c.lo) > tol || math.Abs(hi-c.hi) > tol {
			t.Errorf("Wilson(%d,%d) = [%.4f, %.4f], want [%.4f, %.4f]",
				c.successes, c.trials, lo, hi, c.lo, c.hi)
		}
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("Wilson(%d,%d) = [%v, %v] malformed", c.successes, c.trials, lo, hi)
		}
	}
}

func TestTrialAggregator(t *testing.T) {
	a := NewTrialAggregator(4)
	a.Add(100, true, maps.All(map[string]int64{"edges": 40, "candidates": 60}))
	a.Add(200, false, maps.All(map[string]int64{"edges": 80, "candidates": 120}))
	a.Add(300, true, nil)
	a.Add(400, true, maps.All(map[string]int64{"edges": 120}))
	if a.Found != 3 {
		t.Fatalf("Found = %d, want 3", a.Found)
	}
	if got := a.Summary().Mean; got != 250 {
		t.Fatalf("mean = %v, want 250", got)
	}
	if got := a.PhaseMeans["edges"]; math.Abs(got-60) > 1e-12 {
		t.Fatalf("edges mean = %v, want 60", got)
	}
	if got := a.PhaseMeans["candidates"]; math.Abs(got-45) > 1e-12 {
		t.Fatalf("candidates mean = %v, want 45", got)
	}
}

// TestTrialAggregatorMatchesSequentialFold checks that the aggregator's
// phase means reproduce bit-for-bit the harness's historical running-sum
// fold (v/trials added in trial order) — the determinism contract the
// parallel runner relies on.
func TestTrialAggregatorMatchesSequentialFold(t *testing.T) {
	const trials = 7
	vals := []int64{313, 11, 271828, 9, 65537, 42, 1}
	want := 0.0
	for _, v := range vals {
		want += float64(v) / float64(trials)
	}
	a := NewTrialAggregator(trials)
	for _, v := range vals {
		a.Add(v, false, maps.All(map[string]int64{"p": v}))
	}
	if got := a.PhaseMeans["p"]; got != want {
		t.Fatalf("fold mismatch: %v != %v", got, want)
	}
}

func TestRateAggregator(t *testing.T) {
	a := NewRateAggregator(4)
	a.Add(true, 10)
	a.Add(false, 20)
	a.Add(true, 30)
	a.Add(false, 40)
	if a.Successes != 2 {
		t.Fatalf("successes = %d", a.Successes)
	}
	if math.Abs(a.MeanBits-25) > 1e-12 {
		t.Fatalf("mean bits = %v", a.MeanBits)
	}
	lo, hi := a.Wilson()
	wlo, whi := Wilson(2, 4)
	if lo != wlo || hi != whi {
		t.Fatalf("Wilson mismatch: [%v,%v] vs [%v,%v]", lo, hi, wlo, whi)
	}
}

func TestFitPowerExact(t *testing.T) {
	// y = 2·x^1.5 exactly.
	var xs, ys []float64
	for _, x := range []float64{1, 2, 4, 8, 16, 100} {
		xs = append(xs, x)
		ys = append(ys, 2*math.Pow(x, 1.5))
	}
	f, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Exponent-1.5) > 1e-9 {
		t.Fatalf("exponent = %v", f.Exponent)
	}
	if math.Abs(f.A()-2) > 1e-9 {
		t.Fatalf("A = %v", f.A())
	}
	if f.R2 < 0.999999 {
		t.Fatalf("R2 = %v", f.R2)
	}
	if got := f.Predict(9); math.Abs(got-2*27) > 1e-6 {
		t.Fatalf("Predict(9) = %v", got)
	}
}

func TestFitPowerNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for x := 10.0; x <= 1e5; x *= 2 {
		noise := 1 + 0.1*(rng.Float64()-0.5)
		xs = append(xs, x)
		ys = append(ys, 5*math.Pow(x, 0.25)*noise)
	}
	f, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Exponent-0.25) > 0.03 {
		t.Fatalf("exponent = %v, want ~0.25", f.Exponent)
	}
	if f.R2 < 0.98 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestFitPowerErrors(t *testing.T) {
	if _, err := FitPower([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitPower([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitPower([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant x accepted")
	}
	// Non-positive points are skipped; if too few remain, error.
	if _, err := FitPower([]float64{-1, 0, 5}, []float64{1, 1, 1}); err == nil {
		t.Fatal("insufficient positive points accepted")
	}
	// But skipping still fits when enough remain.
	f, err := FitPower([]float64{-1, 1, 2, 4}, []float64{9, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Exponent-1) > 1e-9 {
		t.Fatalf("exponent = %v", f.Exponent)
	}
}

func TestQuickSummaryBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				xs = append(xs, v)
			}
		}
		s := Summarize(xs)
		if s.N != len(xs) {
			return false
		}
		if s.N > 0 && (s.Mean < s.Min || s.Mean > s.Max) {
			return false
		}
		return s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWilsonMonotoneInTrials(t *testing.T) {
	// More trials at the same rate narrow the interval.
	lo1, hi1 := Wilson(10, 20)
	lo2, hi2 := Wilson(100, 200)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatalf("interval did not narrow: %v vs %v", hi2-lo2, hi1-lo1)
	}
}
