// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics, success-rate confidence
// intervals, and log-log power-law fits for scaling exponents.
//
// The paper's evaluation artifacts are asymptotic bounds (Table 1); the
// reproduction measures communication over parameter sweeps and fits
// bits ≈ a·x^b to compare the measured exponent b against the predicted
// one (e.g. 1/3 for the high-degree simultaneous tester against x = nd).
package stats

import (
	"fmt"
	"iter"
	"math"
	"sort"
)

// Summary holds the moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes sample statistics (StdDev uses the n-1 estimator;
// it is 0 for n < 2).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean. It is meant for the continuous bit-count
// samples; for success *rates* with small counts (the probe threshold
// experiments) the normal approximation misbehaves near 0 and 1 — use
// Wilson there, which stays inside [0,1].
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.3g ±%.2g (n=%d, min=%.3g, max=%.3g)",
		s.Mean, s.CI95(), s.N, s.Min, s.Max)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation. It returns NaN for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Wilson returns the Wilson-score 95% confidence interval for a binomial
// proportion with successes out of trials.
func Wilson(successes, trials int) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(successes) / float64(trials)
	n := float64(trials)
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	lo, hi = center-half, center+half
	// At the boundaries center and half are equal by construction; clamp
	// exactly so 0/n reports lo = 0 (not a ±1-ulp residual) and n/n hi = 1.
	if successes == 0 || lo < 0 {
		lo = 0
	}
	if successes == trials || hi > 1 {
		hi = 1
	}
	return lo, hi
}

// TrialAggregator folds one tester's per-trial outcomes over a sweep
// point into the aggregates the experiment tables report: the per-trial
// total bits (for Summarize), the detection count, and the mean per-phase
// bit attribution. Trials must be added in trial order — the phase means
// are running sums of v/trials, so the floating-point result depends on
// fold order, and trial order is what the harness's determinism contract
// (identical tables at any worker count) pins down.
type TrialAggregator struct {
	trials int
	// Bits is the per-trial total communication, in trial order.
	Bits []float64
	// Found counts the trials that exhibited a triangle.
	Found int
	// PhaseMeans is the mean per-phase bit attribution across trials.
	PhaseMeans map[string]float64
}

// NewTrialAggregator returns an aggregator expecting the given number of
// trials (the divisor for phase means).
func NewTrialAggregator(trials int) *TrialAggregator {
	return &TrialAggregator{trials: trials, PhaseMeans: map[string]float64{}}
}

// Add folds one trial's outcome. phases may be nil; protocols hand their
// fixed-slot phase tables over as an iterator, so no per-trial map is
// materialized on the way into the aggregator.
func (a *TrialAggregator) Add(totalBits int64, found bool, phases iter.Seq2[string, int64]) {
	a.Bits = append(a.Bits, float64(totalBits))
	if found {
		a.Found++
	}
	if phases != nil {
		for name, v := range phases {
			a.PhaseMeans[name] += float64(v) / float64(a.trials)
		}
	}
}

// Summary summarizes the per-trial totals.
func (a *TrialAggregator) Summary() Summary { return Summarize(a.Bits) }

// RateAggregator folds per-trial successes and costs for the probe
// experiments: a success count (for Wilson intervals) and a running mean
// of per-trial bits, accumulated in trial order as sum of v/trials.
type RateAggregator struct {
	trials int
	// Successes counts successful trials.
	Successes int
	// MeanBits is the mean per-trial cost.
	MeanBits float64
}

// NewRateAggregator returns an aggregator expecting the given number of
// trials.
func NewRateAggregator(trials int) *RateAggregator {
	return &RateAggregator{trials: trials}
}

// Add folds one trial's outcome.
func (a *RateAggregator) Add(success bool, bits float64) {
	if success {
		a.Successes++
	}
	a.MeanBits += bits / float64(a.trials)
}

// Wilson returns the Wilson-score 95% interval for the success rate.
func (a *RateAggregator) Wilson() (lo, hi float64) {
	return Wilson(a.Successes, a.trials)
}

// PowerFit is the result of fitting y ≈ A·x^Exponent on log-log axes.
type PowerFit struct {
	// Exponent is the fitted power b.
	Exponent float64
	// LogA is ln A, the fitted intercept.
	LogA float64
	// R2 is the coefficient of determination of the log-log regression.
	R2 float64
	// N is the number of points used.
	N int
}

// A returns the multiplicative constant of the fit.
func (f PowerFit) A() float64 { return math.Exp(f.LogA) }

// Predict evaluates the fitted law at x.
func (f PowerFit) Predict(x float64) float64 {
	return f.A() * math.Pow(x, f.Exponent)
}

// String implements fmt.Stringer.
func (f PowerFit) String() string {
	return fmt.Sprintf("y ≈ %.3g·x^%.3f (R²=%.3f, n=%d)", f.A(), f.Exponent, f.R2, f.N)
}

// FitPower fits y = A·x^b by ordinary least squares on (ln x, ln y). All
// points must be strictly positive; violating points are skipped. It
// returns an error if fewer than two usable points remain or all x are
// equal.
func FitPower(xs, ys []float64) (PowerFit, error) {
	if len(xs) != len(ys) {
		return PowerFit{}, fmt.Errorf("stats: FitPower length mismatch %d vs %d", len(xs), len(ys))
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := len(lx)
	if n < 2 {
		return PowerFit{}, fmt.Errorf("stats: FitPower needs ≥ 2 positive points, have %d", n)
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += lx[i]
		sy += ly[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := lx[i]-mx, ly[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return PowerFit{}, fmt.Errorf("stats: FitPower requires varying x")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		var ssRes float64
		for i := 0; i < n; i++ {
			resid := ly[i] - (a + b*lx[i])
			ssRes += resid * resid
		}
		r2 = 1 - ssRes/syy
	}
	return PowerFit{Exponent: b, LogA: a, R2: r2, N: n}, nil
}
