// Package bitset provides word-packed bit rows and popcount intersection
// kernels — the dense-row counterpart to the CSR adjacency arrays in
// internal/graph. A row is a plain []uint64 (bit i of word i/64 is key
// i), so immutable adjacency shadows are flat slabs with zero per-row
// overhead, and intersections run at one popcount per 64 keys instead of
// one comparison per element.
//
// For mutable scratch the package provides Set, the bitset analogue of
// internal/marks: clearing is O(1) via per-word epoch stamps (a word
// whose stamp is stale reads as zero), and Get/Put recycle Sets through
// a pool so every worker goroutine gets warm backing arrays — the
// scratch-arena contract documented in DESIGN.md ("memory layout").
package bitset

import (
	"math/bits"
	"sync"
)

// Words returns the number of 64-bit words that hold n bits.
func Words(n int) int { return (n + 63) >> 6 }

// Mark sets bit i in the word-packed row.
func Mark(row []uint64, i int) { row[i>>6] |= 1 << (uint(i) & 63) }

// Test reports whether bit i is set in the word-packed row.
func Test(row []uint64, i int) bool { return row[i>>6]>>(uint(i)&63)&1 != 0 }

// wideWords is the row width (in 64-bit words, so 512 bits) above which
// the popcount kernels take the 8-word unrolled path. Below it the 4-way
// loop already covers most of the row and the wider unroll only adds
// branch overhead on the tail.
const wideWords = 8

// intersectCountWide is the 8-word unrolled inner block shared by
// IntersectCount and IntersectCountAbove: it consumes a[i:], b[i:] in
// blocks of eight words starting at i and returns (count, next index).
// Two independent accumulators keep the popcount chains out of a single
// serial dependency.
func intersectCountWide(a, b []uint64, i, n int) (int, int) {
	c0, c1 := 0, 0
	for ; i+wideWords <= n; i += wideWords {
		c0 += bits.OnesCount64(a[i]&b[i]) +
			bits.OnesCount64(a[i+1]&b[i+1]) +
			bits.OnesCount64(a[i+2]&b[i+2]) +
			bits.OnesCount64(a[i+3]&b[i+3])
		c1 += bits.OnesCount64(a[i+4]&b[i+4]) +
			bits.OnesCount64(a[i+5]&b[i+5]) +
			bits.OnesCount64(a[i+6]&b[i+6]) +
			bits.OnesCount64(a[i+7]&b[i+7])
	}
	return c0 + c1, i
}

// IntersectCount returns |a ∩ b|: the number of positions set in both
// rows. Only the overlapping prefix min(len(a), len(b)) is scanned, so
// rows over the same key universe may be compared directly. Rows of at
// least 512 bits take an 8-word unrolled fast path.
func IntersectCount(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	count := 0
	i := 0
	if n >= wideWords {
		count, i = intersectCountWide(a, b, 0, n)
	}
	for ; i+4 <= n; i += 4 {
		count += bits.OnesCount64(a[i]&b[i]) +
			bits.OnesCount64(a[i+1]&b[i+1]) +
			bits.OnesCount64(a[i+2]&b[i+2]) +
			bits.OnesCount64(a[i+3]&b[i+3])
	}
	for ; i < n; i++ {
		count += bits.OnesCount64(a[i] & b[i])
	}
	return count
}

// IntersectCountAbove returns |{i ∈ a ∩ b : i > lo}|. Pass lo = -1 for
// the full intersection. Like IntersectCount, suffixes of at least 512
// bits past the masked first word take the 8-word unrolled path.
func IntersectCountAbove(a, b []uint64, lo int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	start := lo + 1
	if start < 0 {
		start = 0
	}
	w := start >> 6
	if w >= n {
		return 0
	}
	// First word: drop bits below start.
	count := bits.OnesCount64(a[w] & b[w] &^ (1<<(uint(start)&63) - 1))
	w++
	if n-w >= wideWords {
		var c int
		c, w = intersectCountWide(a, b, w, n)
		count += c
	}
	for ; w < n; w++ {
		count += bits.OnesCount64(a[w] & b[w])
	}
	return count
}

// IntersectVisitAbove calls fn for every position i ∈ a ∩ b with i > lo,
// in ascending order, stopping early if fn returns false. It reports
// whether the scan ran to completion.
func IntersectVisitAbove(a, b []uint64, lo int, fn func(i int) bool) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	start := lo + 1
	if start < 0 {
		start = 0
	}
	w := start >> 6
	if w >= n {
		return true
	}
	m := a[w] & b[w] &^ (1<<(uint(start)&63) - 1)
	for {
		for m != 0 {
			i := w<<6 + bits.TrailingZeros64(m)
			if !fn(i) {
				return false
			}
			m &= m - 1
		}
		w++
		if w >= n {
			return true
		}
		m = a[w] & b[w]
	}
}

// FirstIntersect returns the smallest position set in both rows, or -1
// when the rows are disjoint.
func FirstIntersect(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for w := 0; w < n; w++ {
		if m := a[w] & b[w]; m != 0 {
			return w<<6 + bits.TrailingZeros64(m)
		}
	}
	return -1
}

// Set is a clearable bitset scratch over keys in [0, n) with O(1)
// clearing: each word carries an epoch stamp, and a word whose stamp is
// stale reads as zero. The zero value is empty; call Reset before use.
// Not safe for concurrent use — obtain one per goroutine via Get.
type Set struct {
	words []uint64
	stamp []uint32
	cur   uint32
}

// Reset prepares the set for keys in [0, n), clearing it in O(1) by
// bumping the epoch. Backing arrays are touched only on growth, or once
// every 2³² resets when the epoch wraps.
func (s *Set) Reset(n int) {
	s.cur++
	if s.cur == 0 {
		// Zero the full capacity, not just the current length: stale
		// stamps beyond len would otherwise survive the wrap and collide
		// with small post-wrap epochs after a later regrow-within-cap.
		full := s.stamp[:cap(s.stamp)]
		for i := range full {
			full[i] = 0
		}
		s.cur = 1
	}
	w := Words(n)
	if w <= cap(s.stamp) {
		s.stamp = s.stamp[:w]
		s.words = s.words[:w]
	} else {
		s.stamp = make([]uint32, w)
		s.words = make([]uint64, w)
	}
}

// Has reports whether i was added since the last Reset.
func (s *Set) Has(i int) bool {
	w := i >> 6
	return s.stamp[w] == s.cur && s.words[w]>>(uint(i)&63)&1 != 0
}

// Add marks i as a member.
func (s *Set) Add(i int) {
	w := i >> 6
	if s.stamp[w] != s.cur {
		s.stamp[w] = s.cur
		s.words[w] = 0
	}
	s.words[w] |= 1 << (uint(i) & 63)
}

// Remove clears i's membership.
func (s *Set) Remove(i int) {
	w := i >> 6
	if s.stamp[w] != s.cur {
		s.stamp[w] = s.cur
		s.words[w] = 0
	}
	s.words[w] &^= 1 << (uint(i) & 63)
}

// Word returns word w of the set's current contents (zero when the word
// is epoch-stale), for word-at-a-time intersection against immutable
// rows.
func (s *Set) Word(w int) uint64 {
	if s.stamp[w] != s.cur {
		return 0
	}
	return s.words[w]
}

// NumWords reports the word count the set was Reset for.
func (s *Set) NumWords() int { return len(s.words) }

var pool = sync.Pool{New: func() any { return new(Set) }}

// Get returns a pooled Set reset for keys in [0, n).
func Get(n int) *Set {
	s := pool.Get().(*Set)
	s.Reset(n)
	return s
}

// Put returns a Set to the pool for reuse. The caller must not use it
// afterwards.
func Put(s *Set) { pool.Put(s) }
