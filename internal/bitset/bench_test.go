package bitset

import (
	"math/rand"
	"testing"
)

// BenchmarkIntersectCount measures the popcount AND kernel on rows the
// size of a 2048-vertex shadow (32 words), the shape the graph kernels
// hit on dense families.
func BenchmarkIntersectCount(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := randRow(rng, 32, 0.3)
	c := randRow(rng, 32, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += IntersectCount(a, c)
	}
	_ = sink
}

// BenchmarkIntersectCountWide measures the 8-word unrolled fast path on
// rows the size of an 8192-vertex shadow (128 words, 8192 bits), the
// shape dense-scenario sessions hand the closing kernels.
func BenchmarkIntersectCountWide(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	a := randRow(rng, 128, 0.3)
	c := randRow(rng, 128, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += IntersectCount(a, c)
	}
	_ = sink
}

func BenchmarkIntersectVisitAbove(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	a := randRow(rng, 32, 0.3)
	c := randRow(rng, 32, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		IntersectVisitAbove(a, c, 100, func(k int) bool {
			sink += k
			return true
		})
	}
	_ = sink
}

func BenchmarkSetAddHas(b *testing.B) {
	s := Get(2048)
	defer Put(s)
	b.ReportAllocs()
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		k := i & 2047
		s.Add(k)
		sink = s.Has(k ^ 1)
		if k == 2047 {
			s.Reset(2048)
		}
	}
	_ = sink
}
