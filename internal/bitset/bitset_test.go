package bitset

import (
	"math/rand"
	"testing"
)

// randRow draws a row of nw words with the given bit density.
func randRow(rng *rand.Rand, nw int, density float64) []uint64 {
	row := make([]uint64, nw)
	for i := 0; i < nw*64; i++ {
		if rng.Float64() < density {
			Mark(row, i)
		}
	}
	return row
}

func TestWords(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	}
	for _, c := range cases {
		if got := Words(c.n); got != c.want {
			t.Errorf("Words(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestMarkTest(t *testing.T) {
	row := make([]uint64, Words(200))
	keys := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, k := range keys {
		Mark(row, k)
	}
	set := map[int]bool{}
	for _, k := range keys {
		set[k] = true
	}
	for i := 0; i < 200; i++ {
		if Test(row, i) != set[i] {
			t.Fatalf("Test(%d) = %v, want %v", i, Test(row, i), set[i])
		}
	}
}

func TestIntersectCountOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		nw := 1 + rng.Intn(8)
		a := randRow(rng, nw, 0.3)
		b := randRow(rng, nw, 0.3)
		want := 0
		for i := 0; i < nw*64; i++ {
			if Test(a, i) && Test(b, i) {
				want++
			}
		}
		if got := IntersectCount(a, b); got != want {
			t.Fatalf("trial %d: IntersectCount = %d, want %d", trial, got, want)
		}
		// Above every cut point, counts and visit order must agree with a
		// scalar scan.
		for _, lo := range []int{-1, 0, 1, 62, 63, 64, nw*64 - 2, nw*64 - 1} {
			wantAbove := 0
			var wantOrder []int
			for i := lo + 1; i < nw*64; i++ {
				if i >= 0 && Test(a, i) && Test(b, i) {
					wantAbove++
					wantOrder = append(wantOrder, i)
				}
			}
			if got := IntersectCountAbove(a, b, lo); got != wantAbove {
				t.Fatalf("IntersectCountAbove(lo=%d) = %d, want %d", lo, got, wantAbove)
			}
			var gotOrder []int
			done := IntersectVisitAbove(a, b, lo, func(i int) bool {
				gotOrder = append(gotOrder, i)
				return true
			})
			if !done {
				t.Fatalf("IntersectVisitAbove(lo=%d) stopped early", lo)
			}
			if len(gotOrder) != len(wantOrder) {
				t.Fatalf("visit(lo=%d): %v, want %v", lo, gotOrder, wantOrder)
			}
			for i := range gotOrder {
				if gotOrder[i] != wantOrder[i] {
					t.Fatalf("visit(lo=%d): %v, want %v", lo, gotOrder, wantOrder)
				}
			}
		}
	}
}

// TestIntersectCountWideOracle pins the 8-word unrolled fast path
// (rows ≥ 512 bits) to the scalar oracle, including widths that leave a
// 4-way block and a sub-4 tail after the wide blocks, uneven row
// lengths, and every first-word cut position for the Above variant.
func TestIntersectCountWideOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, nw := range []int{8, 9, 11, 12, 15, 16, 17, 31, 33, 64} {
		for trial := 0; trial < 20; trial++ {
			a := randRow(rng, nw, 0.4)
			bw := nw
			if trial%3 == 1 {
				bw = nw - 1 - rng.Intn(nw/2) // uneven: prefix rule applies
			}
			b := randRow(rng, bw, 0.4)
			lim := nw * 64
			if bw*64 < lim {
				lim = bw * 64
			}
			want := 0
			for i := 0; i < lim; i++ {
				if Test(a, i) && Test(b, i) {
					want++
				}
			}
			if got := IntersectCount(a, b); got != want {
				t.Fatalf("nw=%d bw=%d trial %d: IntersectCount = %d, want %d", nw, bw, trial, got, want)
			}
			for _, lo := range []int{-1, 0, 62, 63, 64, 65, 127, 511, 512, lim - 2, lim - 1} {
				wantAbove := 0
				for i := lo + 1; i < lim; i++ {
					if i >= 0 && Test(a, i) && Test(b, i) {
						wantAbove++
					}
				}
				if got := IntersectCountAbove(a, b, lo); got != wantAbove {
					t.Fatalf("nw=%d bw=%d: IntersectCountAbove(lo=%d) = %d, want %d", nw, bw, lo, got, wantAbove)
				}
			}
		}
	}
}

func TestIntersectVisitEarlyStop(t *testing.T) {
	a := make([]uint64, 2)
	b := make([]uint64, 2)
	for _, k := range []int{3, 70, 100} {
		Mark(a, k)
		Mark(b, k)
	}
	var seen []int
	done := IntersectVisitAbove(a, b, -1, func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if done {
		t.Fatal("expected early stop")
	}
	if len(seen) != 2 || seen[0] != 3 || seen[1] != 70 {
		t.Fatalf("seen = %v, want [3 70]", seen)
	}
}

func TestFirstIntersect(t *testing.T) {
	a := make([]uint64, 3)
	b := make([]uint64, 3)
	if got := FirstIntersect(a, b); got != -1 {
		t.Fatalf("empty FirstIntersect = %d, want -1", got)
	}
	Mark(a, 5)
	Mark(b, 6)
	if got := FirstIntersect(a, b); got != -1 {
		t.Fatalf("disjoint FirstIntersect = %d, want -1", got)
	}
	Mark(a, 130)
	Mark(b, 130)
	if got := FirstIntersect(a, b); got != 130 {
		t.Fatalf("FirstIntersect = %d, want 130", got)
	}
	Mark(a, 6)
	if got := FirstIntersect(a, b); got != 6 {
		t.Fatalf("FirstIntersect = %d, want 6", got)
	}
}

func TestSetBasics(t *testing.T) {
	s := Get(300)
	defer Put(s)
	ref := map[int]bool{}
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < 2000; op++ {
		k := rng.Intn(300)
		switch rng.Intn(3) {
		case 0:
			s.Add(k)
			ref[k] = true
		case 1:
			s.Remove(k)
			delete(ref, k)
		case 2:
			if s.Has(k) != ref[k] {
				t.Fatalf("op %d: Has(%d) = %v, want %v", op, k, s.Has(k), ref[k])
			}
		}
	}
	// Word must agree with Has bit-by-bit.
	for w := 0; w < s.NumWords(); w++ {
		word := s.Word(w)
		for b := 0; b < 64; b++ {
			k := w*64 + b
			if k >= 300 {
				break
			}
			if (word>>uint(b)&1 != 0) != ref[k] {
				t.Fatalf("Word(%d) bit %d disagrees with ref", w, b)
			}
		}
	}
	// Reset clears everything.
	s.Reset(300)
	for k := range ref {
		if s.Has(k) {
			t.Fatalf("Has(%d) true after Reset", k)
		}
	}
}

func TestSetEpochWrap(t *testing.T) {
	s := new(Set)
	s.Reset(128)
	s.Add(5)
	s.cur = ^uint32(0) // force wrap on next Reset
	s.stamp[0] = s.cur // keep key 5 visible at the forced epoch
	if !s.Has(5) {
		t.Fatal("setup: key 5 should be visible")
	}
	s.Reset(128)
	if s.cur != 1 {
		t.Fatalf("cur = %d after wrap, want 1", s.cur)
	}
	if s.Has(5) {
		t.Fatal("key 5 survived epoch wrap")
	}
	s.Add(7)
	if !s.Has(7) || s.Has(5) {
		t.Fatal("post-wrap membership wrong")
	}
}

func TestSetRegrow(t *testing.T) {
	s := new(Set)
	s.Reset(64)
	s.Add(3)
	s.Reset(1024) // grow
	if s.Has(3) {
		t.Fatal("key survived growth Reset")
	}
	s.Add(900)
	if !s.Has(900) {
		t.Fatal("Add after growth lost")
	}
	s.Reset(64) // shrink within capacity
	if s.NumWords() != 1 {
		t.Fatalf("NumWords = %d, want 1", s.NumWords())
	}
}

// FuzzIntersectCount cross-checks the popcount kernel against a map
// oracle built from the raw bytes.
func FuzzIntersectCount(f *testing.F) {
	f.Add([]byte{0xff, 0x00, 0x12}, []byte{0x0f, 0xf0})
	f.Add([]byte{}, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		const maxBytes = 4096
		if len(ab) > maxBytes {
			ab = ab[:maxBytes]
		}
		if len(bb) > maxBytes {
			bb = bb[:maxBytes]
		}
		toRow := func(p []byte) []uint64 {
			row := make([]uint64, (len(p)+7)/8)
			for i, c := range p {
				row[i/8] |= uint64(c) << (uint(i%8) * 8)
			}
			return row
		}
		a, b := toRow(ab), toRow(bb)
		oracle := map[int]bool{}
		n := len(a) * 64
		if m := len(b) * 64; m < n {
			n = m
		}
		want := 0
		for i := 0; i < n; i++ {
			if Test(a, i) && Test(b, i) {
				oracle[i] = true
				want++
			}
		}
		if got := IntersectCount(a, b); got != want {
			t.Fatalf("IntersectCount = %d, oracle %d", got, want)
		}
		got := 0
		ok := IntersectVisitAbove(a, b, -1, func(i int) bool {
			if !oracle[i] {
				t.Fatalf("visit yielded %d, not in oracle", i)
			}
			got++
			return true
		})
		if !ok || got != want {
			t.Fatalf("visit count = %d (done=%v), oracle %d", got, ok, want)
		}
	})
}
