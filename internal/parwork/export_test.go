package parwork

// resetEnvWarn re-arms the one-shot invalid-environment warning so tests
// can observe it regardless of ordering.
func resetEnvWarn() { envWarned.Store(false) }
