package parwork

import (
	"bytes"
	"log/slog"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("explicit 3: got %d", got)
	}
	t.Setenv(EnvVar, "6")
	if got := Workers(0); got != 6 {
		t.Fatalf("env 6: got %d", got)
	}
	if got := Workers(2); got != 2 {
		t.Fatalf("explicit beats env: got %d", got)
	}
	t.Setenv(EnvVar, "")
	if got := Workers(0); got != 1 {
		t.Fatalf("default: got %d", got)
	}
}

// TestWorkersInvalidEnvWarnsOnce is the regression test for the resolver
// silently ignoring an unparseable TRICOMM_INTRA_WORKERS: it must fall
// back to 1 and warn exactly once per process.
func TestWorkersInvalidEnvWarnsOnce(t *testing.T) {
	var buf bytes.Buffer
	prev := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(&buf, nil)))
	defer slog.SetDefault(prev)

	for _, bad := range []string{"bogus", "0", "-2", "3.5"} {
		resetEnvWarn()
		buf.Reset()
		t.Setenv(EnvVar, bad)
		if got := Workers(0); got != 1 {
			t.Fatalf("env %q: got %d workers, want 1", bad, got)
		}
		if !bytes.Contains(buf.Bytes(), []byte(EnvVar)) {
			t.Fatalf("env %q: no warning logged", bad)
		}
		// A second resolution must not warn again.
		buf.Reset()
		if got := Workers(0); got != 1 {
			t.Fatalf("env %q second call: got %d workers", bad, got)
		}
		if buf.Len() != 0 {
			t.Fatalf("env %q: warned twice: %s", bad, buf.String())
		}
	}
}

func TestFoldInt64MatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]int64, 100_000)
	for i := range data {
		data[i] = rng.Int63n(1000) - 500
	}
	body := func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += data[i]
		}
		return s
	}
	want := body(0, len(data))
	for _, w := range []int{1, 2, 3, 8, 16, 100} {
		for _, items := range []int{0, 1, 2, 7, 1000, len(data)} {
			got := FoldInt64(w, items, body)
			if got != body(0, items) {
				t.Fatalf("workers=%d items=%d: got %d want %d", w, items, got, body(0, items))
			}
		}
		if got := FoldInt64(w, len(data), body); got != want {
			t.Fatalf("workers=%d: got %d want %d", w, got, want)
		}
	}
}

func TestForEachCoversDisjointly(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		for _, items := range []int{1, 2, 63, 64, 1000} {
			seen := make([]atomic.Int32, items)
			ForEach(w, items, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
			})
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("workers=%d items=%d: index %d covered %d times", w, items, i, got)
				}
			}
		}
	}
}

func TestForEachChunkIndexMatchesNumChunks(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		for _, items := range []int{1, 5, 100, 4096} {
			nc := NumChunks(w, items)
			hit := make([]atomic.Int32, nc)
			ForEach(w, items, func(c, lo, hi int) {
				if c < 0 || c >= nc {
					t.Errorf("chunk %d out of [0,%d)", c, nc)
					return
				}
				hit[c].Add(1)
			})
			for c := range hit {
				if hit[c].Load() != 1 {
					t.Fatalf("workers=%d items=%d: chunk %d ran %d times", w, items, c, hit[c].Load())
				}
			}
		}
	}
}

func TestFirstMatchesSerialScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 50_000
	data := make([]bool, n)
	// Sparse hits so most chunks miss.
	for i := 0; i < 20; i++ {
		data[rng.Intn(n)] = true
	}
	probe := func(lo, hi int) (int64, bool) {
		for i := lo; i < hi; i++ {
			if data[i] {
				return int64(i), true
			}
		}
		return 0, false
	}
	want, wantOK := probe(0, n)
	for _, w := range []int{1, 2, 4, 8, 32} {
		got, ok := First(w, n, probe)
		if ok != wantOK || got != want {
			t.Fatalf("workers=%d: got (%d,%v) want (%d,%v)", w, got, ok, want, wantOK)
		}
	}
	// No hits at all.
	clear(data)
	for _, w := range []int{1, 8} {
		if _, ok := First(w, n, probe); ok {
			t.Fatalf("workers=%d: hit on empty data", w)
		}
	}
}

func TestFilterMatchesSerialAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 10, filterSerialBelow - 1, filterSerialBelow, 10_000} {
		src := make([]int, n)
		for i := range src {
			src[i] = rng.Intn(1000)
		}
		keep := func(_ int, v int) bool { return v%3 == 0 }
		var want []int
		for i, v := range src {
			if keep(i, v) {
				want = append(want, v)
			}
		}
		for _, w := range []int{1, 2, 8} {
			got := Filter(w, src, keep)
			if len(got) != len(want) {
				t.Fatalf("n=%d workers=%d: len %d want %d", n, w, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: [%d] = %d want %d", n, w, i, got[i], want[i])
				}
			}
			if want == nil && got != nil {
				t.Fatalf("n=%d workers=%d: got non-nil for empty result", n, w)
			}
		}
	}
}

// TestNestedFoldCompletes pins the no-deadlock property: helpers are
// optional, so a fold inside a fold body always completes on its calling
// goroutine even when every helper is busy.
func TestNestedFoldCompletes(t *testing.T) {
	got := FoldInt64(8, 64, func(lo, hi int) int64 {
		return FoldInt64(8, 1000, func(l, h int) int64 { return int64(h - l) }) * int64(hi-lo)
	})
	if got != 64_000 {
		t.Fatalf("nested fold: got %d want 64000", got)
	}
}

var foldBody = func(lo, hi int) int64 {
	var s int64
	for i := lo; i < hi; i++ {
		s += int64(i & 7)
	}
	return s
}

func BenchmarkFoldInt64(b *testing.B) {
	const items = 1 << 16
	want := foldBody(0, items)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := FoldInt64(8, items, foldBody); got != want {
			b.Fatal("wrong sum")
		}
	}
}

func BenchmarkFoldInt64Serial(b *testing.B) {
	const items = 1 << 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FoldInt64(1, items, foldBody)
	}
}
