// Package parwork is the deterministic intra-phase work-splitting layer:
// range-partitioned folds over a caller-sized worker set, bit-identical
// to the serial loops they replace at any worker count.
//
// The discipline mirrors the intra-trial graph kernels of PR 6
// (internal/graph/parallel.go): the index range [0, items) is split into
// deterministic contiguous chunks, workers claim chunks from an atomic
// cursor, each chunk's result lands in chunk-indexed state, and the
// reduction folds partials in chunk order on the calling goroutine. Which
// goroutine runs a chunk is scheduling-dependent; what the fold returns
// is not, because every exposed reduction is grouping-invariant — exact
// integer sums (FoldInt64), minima under a total order (callers via
// ForEach), the serial scan's first hit (First), and order-preserving
// filters (Filter). Callers must keep floating-point accumulations out of
// parallel sections: float addition is not associative, so only
// chunk-invariant reductions ride on this package.
//
// Helper goroutines are a small persistent pool fed through a buffered
// channel, so the steady-state fold path performs no allocation: jobs and
// partial slices are pooled, chunk spans are computed arithmetically, and
// helpers are optional — the calling goroutine drains the cursor itself,
// so a job always completes even if every helper is busy elsewhere
// (nested calls therefore cannot deadlock; the inner call just runs on
// its caller).
package parwork

import (
	"log/slog"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvVar is the environment variable consulted when a caller passes a
// non-positive worker count.
const EnvVar = "TRICOMM_INTRA_WORKERS"

// envWarned makes the invalid-env warning fire once per process (it is a
// plain flag, not a sync.Once, so tests can reset it).
var envWarned atomic.Bool

// Workers resolves an intra-phase worker-count request: an explicit
// n > 0 wins; otherwise TRICOMM_INTRA_WORKERS; otherwise 1. The default
// is deliberately serial — trial-level parallelism owns the cores, and
// intra-phase fan-out only pays when a single large session has the box
// to itself. An unparseable or non-positive environment value falls back
// to 1 with a one-time slog warning instead of being silently ignored.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if s := os.Getenv(EnvVar); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			if envWarned.CompareAndSwap(false, true) {
				slog.Warn("invalid intra-worker count in environment; using 1",
					"var", EnvVar, "value", s)
			}
			return 1
		}
		return v
	}
	return 1
}

// maxHelpers bounds the persistent helper pool. Requests beyond it still
// complete — the calling goroutine always participates — they just fan
// out less.
const maxHelpers = 64

var (
	// tokens carries job announcements to the persistent helpers. Sends
	// are non-blocking: a full buffer means enough work is already
	// pending and the caller proceeds alone.
	tokens = make(chan *job, 256)
	// helpers counts the live persistent helper goroutines.
	helpers atomic.Int64
)

// helperLoop is a persistent worker: it joins each announced job, drains
// the job's chunk cursor, and drops its reference. It is a top-level
// func so spawning it allocates no closure.
func helperLoop() {
	for j := range tokens {
		j.work()
		j.release()
	}
}

// ensureHelpers lazily grows the persistent pool toward n.
func ensureHelpers(n int) {
	for {
		cur := helpers.Load()
		if cur >= int64(n) || cur >= maxHelpers {
			return
		}
		if helpers.CompareAndSwap(cur, cur+1) {
			go helperLoop()
		}
	}
}

type jobMode uint8

const (
	modeFold jobMode = iota
	modeFirst
	modeEach
)

// job is one fan-out's shared state. Jobs are pooled; a job is retired
// to the pool by whoever drops its last reference — the caller plus one
// reference per helper token posted — so a helper that picks the token
// up after the work is done still finds valid (if exhausted) state.
type job struct {
	next   atomic.Int64 // chunk claim cursor
	refs   atomic.Int64 // caller + posted tokens
	done   sync.WaitGroup
	chunks int
	items  int
	mode   jobMode

	body    func(lo, hi int) int64         // modeFold
	partial []int64                        // modeFold / modeFirst values
	probe   func(lo, hi int) (int64, bool) // modeFirst
	hit     []bool                         // modeFirst
	best    atomic.Int64                   // modeFirst: lowest hit chunk
	each    func(chunk, lo, hi int)        // modeEach
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

var int64Pool = sync.Pool{New: func() any { return new([]int64) }}

var boolPool = sync.Pool{New: func() any { return new([]bool) }}

func getInt64s(n int) *[]int64 {
	p := int64Pool.Get().(*[]int64)
	if cap(*p) < n {
		*p = make([]int64, n)
	}
	*p = (*p)[:n]
	return p
}

func getBools(n int) *[]bool {
	p := boolPool.Get().(*[]bool)
	if cap(*p) < n {
		*p = make([]bool, n)
	}
	s := (*p)[:n]
	for i := range s {
		s[i] = false
	}
	*p = s
	return p
}

// span returns chunk i's index range: the even integer split of
// [0, items) into chunks parts, a pure function of (i, items, chunks).
func (j *job) span(i int) (int, int) {
	return i * j.items / j.chunks, (i + 1) * j.items / j.chunks
}

func (j *job) runChunk(i int) {
	switch j.mode {
	case modeFold:
		lo, hi := j.span(i)
		j.partial[i] = j.body(lo, hi)
	case modeFirst:
		// Skip chunks above the lowest hit seen so far: nothing they find
		// can beat it. The check is a pure pruning — the final answer is
		// the lowest-index chunk's hit either way.
		if int64(i) <= j.best.Load() {
			lo, hi := j.span(i)
			if v, ok := j.probe(lo, hi); ok {
				j.partial[i], j.hit[i] = v, true
				for {
					cur := j.best.Load()
					if int64(i) >= cur || j.best.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
			}
		}
	case modeEach:
		lo, hi := j.span(i)
		j.each(i, lo, hi)
	}
}

// work drains the chunk cursor. Every claimed chunk runs exactly once
// and signals done; late joiners see an exhausted cursor and return
// without touching job state.
func (j *job) work() {
	for {
		i := int(j.next.Add(1)) - 1
		if i >= j.chunks {
			return
		}
		j.runChunk(i)
		j.done.Done()
	}
}

func (j *job) release() {
	if j.refs.Add(-1) == 0 {
		j.body, j.probe, j.each = nil, nil, nil
		j.partial, j.hit = nil, nil
		jobPool.Put(j)
	}
}

// start initializes the job, announces it to up to workers-1 helpers,
// drains the cursor on the calling goroutine, and waits for every chunk
// to complete. On return all chunk-indexed state is stable; the caller
// still holds one reference and must release() after reading results.
func (j *job) start(workers int) {
	j.next.Store(0)
	j.refs.Store(1)
	j.best.Store(int64(j.chunks))
	j.done.Add(j.chunks)
	ensureHelpers(workers - 1)
	for w := 1; w < workers; w++ {
		j.refs.Add(1)
		select {
		case tokens <- j:
		default:
			j.refs.Add(-1)
		}
	}
	j.work()
	j.done.Wait()
}

// chunkCount over-partitions by 4× the worker count so an unlucky
// worker's slow chunk is balanced by others claiming more, capped at the
// item count.
func chunkCount(workers, items int) int {
	nc := 4 * workers
	if nc > items {
		nc = items
	}
	if nc < 1 {
		nc = 1
	}
	return nc
}

// FoldInt64 returns the sum of body over the even chunk split of
// [0, items) — exactly body(0, items) for any worker count, since int64
// addition is associative. body must be pure local compute (no shared
// mutable state, no metering); the steady-state parallel path performs
// no allocation.
func FoldInt64(workers, items int, body func(lo, hi int) int64) int64 {
	if items <= 0 {
		return 0
	}
	if workers <= 1 || items < 2 {
		return body(0, items)
	}
	nc := chunkCount(workers, items)
	if nc <= 1 {
		return body(0, items)
	}
	pp := getInt64s(nc)
	j := jobPool.Get().(*job)
	j.chunks, j.items, j.mode = nc, items, modeFold
	j.body, j.partial = body, *pp
	j.start(workers)
	var total int64
	for _, v := range *pp {
		total += v
	}
	j.release()
	int64Pool.Put(pp)
	return total
}

// ForEach runs body once per chunk of the even split of [0, items),
// passing the chunk index and its range. Chunks are claimed from an
// atomic cursor, so body must write only chunk- or index-disjoint state.
// NumChunks reports the chunk count for pre-sizing chunk-indexed arrays.
func ForEach(workers, items int, body func(chunk, lo, hi int)) {
	if items <= 0 {
		return
	}
	if workers <= 1 || items < 2 {
		body(0, 0, items)
		return
	}
	nc := chunkCount(workers, items)
	if nc <= 1 {
		body(0, 0, items)
		return
	}
	j := jobPool.Get().(*job)
	j.chunks, j.items, j.mode = nc, items, modeEach
	j.each = body
	j.start(workers)
	j.release()
}

// Run executes do(i) exactly once for each i in [0, chunks) across up to
// workers goroutines, for callers that bring their own partition (e.g.
// the graph kernels' arc-balanced row chunks). Chunk claim order is the
// ascending cursor; do must write only chunk-indexed state.
func Run(workers, chunks int, do func(chunk int)) {
	if chunks <= 0 {
		return
	}
	if workers <= 1 || chunks < 2 {
		for i := 0; i < chunks; i++ {
			do(i)
		}
		return
	}
	j := jobPool.Get().(*job)
	j.chunks, j.items, j.mode = chunks, chunks, modeEach
	j.each = func(c, _, _ int) { do(c) }
	j.start(workers)
	j.release()
}

// NumChunks reports the chunk count ForEach uses for (workers, items):
// 1 when the work runs serially, chunkCount otherwise.
func NumChunks(workers, items int) int {
	if workers <= 1 || items < 2 {
		return 1
	}
	return chunkCount(workers, items)
}

// First returns the serial scan's first hit over [0, items): probe must
// return the first hit inside its subrange (scanning it in ascending
// order), and First returns the lowest-chunk hit — exactly what
// probe(0, items) would return, at any worker count. Chunks above the
// lowest hit so far are pruned.
func First(workers, items int, probe func(lo, hi int) (int64, bool)) (int64, bool) {
	if items <= 0 {
		return 0, false
	}
	if workers <= 1 || items < 2 {
		return probe(0, items)
	}
	nc := chunkCount(workers, items)
	if nc <= 1 {
		return probe(0, items)
	}
	pp := getInt64s(nc)
	hp := getBools(nc)
	j := jobPool.Get().(*job)
	j.chunks, j.items, j.mode = nc, items, modeFirst
	j.probe, j.partial, j.hit = probe, *pp, *hp
	j.start(workers)
	var val int64
	ok := false
	for i := 0; i < nc; i++ {
		if (*hp)[i] {
			val, ok = (*pp)[i], true
			break
		}
	}
	j.release()
	int64Pool.Put(pp)
	boolPool.Put(hp)
	return val, ok
}

// filterSerialBelow is the input size under which Filter stays serial:
// below it the two-pass bookkeeping costs more than the scan.
const filterSerialBelow = 256

// Filter returns, in input order, the elements of src accepted by keep —
// the exact slice (nil included) the serial append loop would build.
// keep must be a pure function of (index, element); the two-pass scheme
// (count, then write into an exact-size destination) invokes it twice
// per element.
func Filter[T any](workers int, src []T, keep func(i int, v T) bool) []T {
	if workers <= 1 || len(src) < filterSerialBelow {
		var out []T
		for i, v := range src {
			if keep(i, v) {
				out = append(out, v)
			}
		}
		return out
	}
	nc := NumChunks(workers, len(src))
	cp := getInt64s(nc)
	counts := *cp
	ForEach(workers, len(src), func(c, lo, hi int) {
		var n int64
		for i := lo; i < hi; i++ {
			if keep(i, src[i]) {
				n++
			}
		}
		counts[c] = n
	})
	var total int64
	for c := 0; c < nc; c++ {
		counts[c], total = total, total+counts[c]
	}
	if total == 0 {
		int64Pool.Put(cp)
		return nil
	}
	dst := make([]T, total)
	ForEach(workers, len(src), func(c, lo, hi int) {
		o := counts[c]
		for i := lo; i < hi; i++ {
			if keep(i, src[i]) {
				dst[o] = src[i]
				o++
			}
		}
	})
	int64Pool.Put(cp)
	return dst
}
