package harness

import (
	"context"
	"fmt"

	"tricomm"
	"tricomm/internal/harness/runner"
	"tricomm/internal/scenario"
)

// This file is the harness's bridge to the scenario layer
// (internal/scenario): a generic per-trial runner for any declarative
// instance spec (behind benchtable -scenario), and the E14 sweep over
// the registered families.

// ScenarioTrial is one trial's outcome of a scenario run — the typed
// form behind ScenarioTable, and what the cross-surface parity golden
// test compares against the facade and the service.
type ScenarioTrial struct {
	// Trial is the trial index; Seed its derived TrialSeed.
	Trial int
	Seed  uint64
	// TriangleFree, Witness, Bits, WireBytes, and Rounds mirror the
	// facade Report.
	TriangleFree bool
	Witness      tricomm.Triangle
	Bits         int64
	WireBytes    int64
	Rounds       int64
	// CertEps is the instance's certified farness (0 without a
	// certificate).
	CertEps float64
	// N, M are the generated instance's sizes.
	N, M int
	// Checked and HasTriangle report the ground-truth audit (only when
	// ScenarioConfig.Check is set): whether the instance contains any
	// triangle at all.
	Checked     bool
	HasTriangle bool
}

// ScenarioConfig declares a scenario run: the spec plus the cluster and
// tester selectors, all in their CLI name forms so benchtable, tests,
// and the service speak the same vocabulary.
type ScenarioConfig struct {
	// Spec is a scenario family name or JSON spec.
	Spec string
	// K and Scheme shape the split (ignored when the family prescribes
	// the per-player assignment).
	K      int
	Scheme string
	// Protocol and Transport name the tester and session transport.
	Protocol  string
	Transport string
	// Eps is the tester's farness target (0 means the facade default).
	Eps float64
	// KnownDegree passes the instance's true average degree to the
	// tester.
	KnownDegree bool
	// Check audits every trial against ground truth: a "found" verdict's
	// witness must be a genuine triangle of the instance (an unsound
	// witness fails the run), and each trial records whether the instance
	// actually contains a triangle, so misses are visible. The audit uses
	// the deterministic parallel kernel at RunConfig.IntraWorkers, which
	// cannot change any result.
	Check bool
}

// players is the defaulted player count — the one place the scenario
// k default lives.
func (sc ScenarioConfig) players() int {
	if sc.K == 0 {
		return 4
	}
	return sc.K
}

// RunScenarioTrials executes cfg.Trials trials of the scenario over the
// shared worker pool. Trial i runs with TrialSeed(cfg.Seed, i) — the
// same derivation the tricommd service uses — so every outcome here is
// bit-identical to the same trial submitted as a service job or run via
// tricomm.RunScenario.
func RunScenarioTrials(ctx context.Context, cfg RunConfig, sc ScenarioConfig, trials int) ([]ScenarioTrial, error) {
	sp, err := scenario.Parse(sc.Spec)
	if err != nil {
		return nil, err
	}
	proto, err := tricomm.ParseProtocol(sc.Protocol)
	if err != nil {
		return nil, err
	}
	scheme, err := tricomm.ParseSplitScheme(sc.Scheme)
	if err != nil {
		return nil, err
	}
	transp, err := tricomm.ParseTransport(sc.Transport)
	if err != nil {
		return nil, err
	}
	k := sc.players()
	return runner.Map(ctx, cfg.jobs(), trials, func(ctx context.Context, trial int) (ScenarioTrial, error) {
		seed := runner.TrialSeed(cfg.Seed, trial)
		si, err := tricomm.GenerateScenario(sp.JSON(), int64(seed))
		if err != nil {
			return ScenarioTrial{}, err
		}
		cl, err := si.Cluster(k, scheme, seed)
		if err != nil {
			return ScenarioTrial{}, err
		}
		opts := tricomm.Options{Protocol: proto, Eps: sc.Eps, Transport: transp}
		if sc.KnownDegree {
			opts.AvgDegree = si.Graph.AvgDegree()
		}
		rep, err := cl.Test(ctx, opts)
		if err != nil {
			return ScenarioTrial{}, fmt.Errorf("trial %d (seed %d): %w", trial, seed, err)
		}
		checked, hasTri := false, false
		if sc.Check {
			checked = true
			_, hasTri = si.Graph.FindTriangleN(cfg.intraWorkers())
			if !rep.TriangleFree {
				w := rep.Witness
				if !si.Graph.IsTriangle(w.A, w.B, w.C) {
					return ScenarioTrial{}, fmt.Errorf(
						"trial %d (seed %d): UNSOUND witness %v is not a triangle of the instance",
						trial, seed, w)
				}
			}
		}
		return ScenarioTrial{
			Trial:        trial,
			Seed:         seed,
			TriangleFree: rep.TriangleFree,
			Witness:      rep.Witness,
			Bits:         rep.Bits,
			WireBytes:    rep.WireBytes,
			Rounds:       rep.Rounds,
			CertEps:      si.CertEps,
			N:            si.Graph.N(),
			M:            si.Graph.M(),
			Checked:      checked,
			HasTriangle:  hasTri,
		}, nil
	})
}

// ScenarioTable renders a scenario run as a benchtable-style table: one
// row per trial plus the canonical spec as a note.
func ScenarioTable(ctx context.Context, cfg RunConfig, sc ScenarioConfig, trials int) (*Table, error) {
	sp, err := scenario.Parse(sc.Spec)
	if err != nil {
		return nil, err
	}
	rows, err := RunScenarioTrials(ctx, cfg, sc, trials)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "scenario",
		Title: fmt.Sprintf("%s × %s", sp.Family, sc.Protocol),
		Columns: []string{"trial", "seed", "n", "m", "verdict", "witness",
			"bits", "wire_bytes", "rounds", "cert_eps"},
	}
	for _, r := range rows {
		verdict, witness := "triangle-free", "-"
		if !r.TriangleFree {
			verdict, witness = "found", r.Witness.String()
		}
		t.AddRow(r.Trial, fmt.Sprintf("%d", r.Seed), r.N, r.M, verdict, witness,
			r.Bits, r.WireBytes, r.Rounds, r.CertEps)
	}
	t.AddNote("spec: %s", sp.JSON())
	t.AddNote("k=%d scheme=%s transport=%s (seed-exact with tricomm.RunScenario and tricommd jobs)",
		sc.players(), sc.Scheme, sc.Transport)
	// The audit note is deterministic in (spec, seed, trials) only — never
	// in the worker counts — so checked output stays byte-identical at any
	// -jobs or intra-trial width.
	if sc.Check {
		misses, withTri := 0, 0
		for _, r := range rows {
			if r.HasTriangle {
				withTri++
				if r.TriangleFree {
					misses++
				}
			}
		}
		t.AddNote("check: audited %d trials against ground truth: %d with triangles, %d missed, 0 unsound",
			len(rows), withTri, misses)
	}
	return t, nil
}

// e14ScenarioSweep sweeps the scenario registry's headline families —
// including every family added with the scenario layer — through one
// tester and reports verdicts, communication, and certificates side by
// side. It is the "as many scenarios as you can imagine" axis of the
// roadmap made into a reproducible table.
func e14ScenarioSweep() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Scenario sweep: one tester across the instance-family registry",
		PaperClaim: "§3.4.2 dense cores, §4 Behrend constructions, §3.1 duplication regime — " +
			"each as a named, declarative scenario",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"family", "n", "m", "d", "trials", "found",
				"mean_bits", "cert_eps", "tfree"}}
			families := []string{
				"chung-lu", "sbm", "behrend-blowup", "dup-adversary",
				"dense-core", "hidden-block", "behrend", "far", "bipartite",
			}
			if cfg.Quick {
				families = []string{"chung-lu", "sbm", "behrend-blowup", "dup-adversary"}
			}
			trials := cfg.trials(3)
			for _, fam := range families {
				rows, err := RunScenarioTrials(ctx, cfg, ScenarioConfig{
					Spec: fam, K: 4, Protocol: "sim-oblivious", KnownDegree: false, Eps: 0.2,
				}, trials)
				if err != nil {
					return nil, err
				}
				found := 0
				var bits float64
				for _, r := range rows {
					if !r.TriangleFree {
						found++
					}
					bits += float64(r.Bits)
				}
				last := rows[len(rows)-1]
				sp, _ := scenario.Parse(fam)
				f, _ := scenario.Lookup(sp.Family)
				t.AddRow(fam, last.N, last.M, 2*float64(last.M)/float64(last.N), trials,
					found, bits/float64(trials), last.CertEps, f.TriangleFree)
			}
			t.AddNote("sim-oblivious tester, k=4, disjoint split (dup-adversary prescribes its own assignment)")
			t.AddNote("certified-far families must be found w.h.p.; triangle-free families must never be")
			return t, nil
		},
	}
}
