package harness

import (
	"context"
	"errors"
	"fmt"

	"tricomm"
	"tricomm/internal/harness/runner"
)

// This file is E15, the resilience axis: the interactive tester run over
// deterministically faulty links (internal/transport's fault injector),
// sweeping loss rate against the retransmit budget. Each trial runs the
// SAME cluster twice — fault-free, then faulted — so the table can pin
// the resilience contract quantitatively: a session that completes under
// faults reproduces the fault-free verdict, witness, and bit meter
// exactly (base_match == ok), pays only wire-level overhead
// (wire_overhead > 1), and a session that cannot complete aborts typed
// instead of answering. Fault schedules are seeded from the trial seed,
// so every cell is a pure function of (seed, schedule) — byte-identical
// across runs and at any -jobs/-intra-workers setting.

// e15FaultResilience sweeps verdict availability and wire overhead
// against the injected fault rate.
func e15FaultResilience() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Fault injection: verdict availability and wire overhead vs loss rate",
		PaperClaim: "§2 one-sided error, end to end: under link faults the tester either reproduces " +
			"the clean verdict exactly or aborts typed — it never returns an unsound answer",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			schedules := []struct{ name, spec string }{
				{"off", ""},
				{"drop05", `{"drop":0.05,"deadline_ms":10000}`},
				{"drop15", `{"drop":0.15,"deadline_ms":10000}`},
				{"mixed", `{"drop":0.1,"corrupt":0.05,"duplicate":0.05,"deadline_ms":10000}`},
				{"lossy-budget4", `{"drop":0.3,"corrupt":0.1,"max_resend":4,"deadline_ms":10000}`},
				{"starved", `{"drop":0.5,"max_resend":2,"deadline_ms":10000}`},
			}
			if cfg.Quick {
				schedules = []struct{ name, spec string }{
					schedules[0], schedules[2], schedules[5],
				}
			}
			trials := cfg.trials(3)

			type trialResult struct {
				ok, found, match                     bool
				bits, wireClean, wireFaulty, retrans int64
				lost                                 int64
			}
			t := &Table{Columns: []string{"faults", "trials", "ok", "aborted", "found",
				"mean_bits", "wire_overhead", "retransmits", "frames_lost", "base_match"}}
			for _, sc := range schedules {
				rows, err := runner.Map(ctx, cfg.jobs(), trials,
					func(ctx context.Context, trial int) (trialResult, error) {
						seed := runner.TrialSeed(cfg.Seed, trial)
						g, eps := tricomm.FarGraph(256, 8, 0.25, int64(seed))
						cl, err := tricomm.Split(g, 4, tricomm.SplitDisjoint, seed)
						if err != nil {
							return trialResult{}, err
						}
						opts := tricomm.Options{Protocol: tricomm.Interactive, Eps: eps, AvgDegree: g.AvgDegree()}
						base, err := cl.Test(ctx, opts)
						if err != nil {
							return trialResult{}, fmt.Errorf("trial %d baseline: %w", trial, err)
						}
						res := trialResult{wireClean: base.WireBytes}
						if sc.spec == "" {
							res.ok, res.match = true, true
							res.found = !base.TriangleFree
							res.bits, res.wireFaulty = base.Bits, base.WireBytes
							return res, nil
						}
						opts.Faults = sc.spec
						rep, err := cl.Test(ctx, opts)
						if err != nil {
							if errors.Is(err, tricomm.ErrSessionAborted) {
								return res, nil // graceful abort, no verdict
							}
							return trialResult{}, fmt.Errorf("trial %d faulted untyped: %w", trial, err)
						}
						res.ok = true
						res.found = !rep.TriangleFree
						res.bits, res.wireFaulty = rep.Bits, rep.WireBytes
						res.retrans, res.lost = rep.Retransmits, rep.FramesLost
						res.match = rep.TriangleFree == base.TriangleFree &&
							rep.Witness == base.Witness && rep.Bits == base.Bits
						return res, nil
					})
				if err != nil {
					return nil, err
				}
				var ok, aborted, found, match int
				var bits, wc, wf, retrans, lost int64
				for _, r := range rows {
					if !r.ok {
						aborted++
						continue
					}
					ok++
					if r.found {
						found++
					}
					if r.match {
						match++
					}
					bits += r.bits
					wc += r.wireClean
					wf += r.wireFaulty
					retrans += r.retrans
					lost += r.lost
				}
				meanBits, overhead := 0.0, 0.0
				if ok > 0 {
					meanBits = float64(bits) / float64(ok)
					overhead = float64(wf) / float64(wc)
				}
				t.AddRow(sc.name, trials, ok, aborted, found, meanBits, overhead,
					retrans, lost, match)
			}
			t.AddNote("interactive tester, far(n=256, d=8, eps=0.25), k=4 disjoint; fault schedules seeded per trial")
			t.AddNote("invariant: base_match == ok on every row — completed faulted runs are bit-identical to clean runs")
			t.AddNote("wire_overhead = faulted/clean wire bytes over completed trials (envelope + retransmits + duplicates)")
			return t, nil
		},
	}
}
