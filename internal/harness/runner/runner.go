// Package runner is the shared trial-execution runtime behind the
// experiment harness: experiments declare what each trial does (an
// instance generator, a partitioner, tester constructors — or an
// arbitrary per-index body) and the runner fans the trials out over a
// bounded worker pool with context cancellation.
//
// Determinism contract: every trial is a pure function of its index —
// its seed is derived from (base seed, trial index) alone, never from
// execution order — and results are collected into a slice addressed by
// index. Aggregation (means, fits) then folds the slice in index order,
// so the numbers an experiment reports are bit-identical regardless of
// the worker count or the scheduler's interleaving. `-jobs 1` and
// `-jobs 64` produce the same bytes.
//
// Each worker owns a scratch Arena reused across every trial it
// executes — most importantly the ~5 KB lagged-Fibonacci math/rand state,
// which used to be allocated from cold once per trial. Arena reuse is
// invisible to the contract above: a reseeded source produces exactly the
// sequence a fresh one would.
package runner

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/partition"
	"tricomm/internal/protocol"
	"tricomm/internal/xrand"
)

// Jobs normalizes a worker-count request: values ≤ 0 mean GOMAXPROCS.
func Jobs(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// TrialSeed derives the canonical per-trial seed used by the sweep
// experiments. The constants are load-bearing: they are the seed
// derivation the pre-runner harness used, so tables regenerated through
// the runner are bit-identical to the historical sequential ones.
func TrialSeed(base uint64, trial int) uint64 {
	return base*1_000_003 + uint64(trial)*7919
}

// Arena is the per-worker scratch a Map/MapArena worker reuses across
// every trial it runs. It is never shared between goroutines, so no
// synchronization is needed; trial outputs must not retain references
// into it.
type Arena struct {
	rng *rand.Rand
}

// NewArena returns a fresh arena (exported for callers that run trial
// bodies outside the pool, e.g. tests).
func NewArena() *Arena {
	return &Arena{rng: rand.New(rand.NewSource(1))}
}

// Rand reseeds the arena's reusable generator and returns it. The
// returned *rand.Rand produces exactly the sequence
// rand.New(rand.NewSource(seed)) would, without re-allocating the
// generator state; it is valid until the next Rand call. Seeding goes
// through Rand.Seed — not the Source directly — so the Read() byte
// buffer is reset too and no state leaks across trials.
func (a *Arena) Rand(seed int64) *rand.Rand {
	a.rng.Seed(seed)
	return a.rng
}

// Map runs fn(ctx, i) for every i in [0, n) over a pool of `jobs`
// workers and returns the results in index order. The first error
// cancels the remaining work and is returned; a canceled parent context
// surfaces as its ctx.Err(). fn must be safe for concurrent invocation
// and must depend only on its index (not on call order) for the
// determinism contract to hold.
func Map[T any](ctx context.Context, jobs, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapArena(ctx, jobs, n, func(ctx context.Context, _ *Arena, i int) (T, error) {
		return fn(ctx, i)
	})
}

// MapArena is Map with a per-worker scratch Arena handed to fn. The arena
// is owned by the calling worker for the duration of fn; fn must not
// leak state that aliases it into its result.
func MapArena[T any](ctx context.Context, jobs, n int, fn func(ctx context.Context, a *Arena, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative trial count %d", n)
	}
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next.Store(-1)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := NewArena()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := cctx.Err(); err != nil {
					fail(ctx.Err())
					return
				}
				v, err := fn(cctx, arena, i)
				if err != nil {
					fail(err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Tester is a protocol bound to its tunables, runnable over a reusable
// topology (the shape all the protocol structs satisfy).
type Tester interface {
	Name() string
	RunOn(ctx context.Context, top *comm.Topology) (protocol.Result, error)
}

// Plan declares one sweep point's trials in the harness's canonical
// shape: draw an instance, split it once, and run every tester over the
// shared topology so per-player views are built once per trial instead
// of once per tester per trial.
type Plan struct {
	// Trials is the repetition count.
	Trials int
	// Seed derives the trial's seed; it must be a pure function of the
	// trial index. Every other per-trial random object (instance rng,
	// shared randomness) is derived from it.
	Seed func(trial int) uint64
	// Gen draws the trial's instance from the trial rng.
	Gen func(rng *rand.Rand) *graph.Graph
	// Partitioner splits the instance among K players.
	Partitioner partition.Partitioner
	// K is the player count.
	K int
	// Testers construct the protocols to run on the trial's shared
	// topology, in order.
	Testers []func(g *graph.Graph, trial int) Tester
	// IntraWorkers fans each session's per-player hot loops across up to
	// this many goroutines (≤ 0 defers to TRICOMM_INTRA_WORKERS). Results
	// are bit-identical at every width, so it composes freely with
	// trial-level Workers.
	IntraWorkers int
}

// TrialResult is one tester's outcome on one trial.
type TrialResult struct {
	// Bits is the run's total communication.
	Bits int64
	// MaxPlayerBits is the largest per-player channel traffic.
	MaxPlayerBits int64
	// Found reports whether the run exhibited a triangle.
	Found bool
	// Phases is the protocol-level per-phase bit attribution (empty when
	// the protocol declares no phases).
	Phases protocol.Phases
}

// runTrialInto executes one trial — draw, split, build the shared
// topology, run every tester on it — writing results into row, a
// preallocated slice of len(p.Testers) cells.
func (p Plan) runTrialInto(ctx context.Context, a *Arena, trial int, row []TrialResult) error {
	seed := p.Seed(trial)
	rng := a.Rand(int64(seed))
	g := p.Gen(rng)
	shared := xrand.New(seed)
	part := p.Partitioner.Split(g, p.K, shared)
	top, err := comm.NewTopology(g.N(), part.Inputs, shared)
	if err != nil {
		return fmt.Errorf("trial %d: %w", trial, err)
	}
	if p.IntraWorkers > 0 {
		top = top.WithIntraWorkers(p.IntraWorkers)
	}
	for i, mk := range p.Testers {
		res, rerr := mk(g, trial).RunOn(ctx, top)
		if rerr != nil {
			return fmt.Errorf("trial %d: %w", trial, rerr)
		}
		row[i] = TrialResult{
			Bits:          res.Stats.TotalBits,
			MaxPlayerBits: res.Stats.MaxPlayerBits(),
			Found:         res.Found(),
			Phases:        res.Phases,
		}
	}
	return nil
}

// Run executes the plan's trials over `jobs` workers and returns the
// results indexed [trial][tester]. All result cells live in one flat
// preallocated backing array (trials × testers), so the per-trial row
// allocation of the naive shape never happens.
func (p Plan) Run(ctx context.Context, jobs int) ([][]TrialResult, error) {
	cells := make([]TrialResult, p.Trials*len(p.Testers))
	rows, err := MapArena(ctx, jobs, p.Trials, func(ctx context.Context, a *Arena, trial int) ([]TrialResult, error) {
		row := cells[trial*len(p.Testers) : (trial+1)*len(p.Testers)]
		if err := p.runTrialInto(ctx, a, trial, row); err != nil {
			return nil, err
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunPlans executes several plans — typically one per sweep point — by
// flattening every (plan, trial) pair onto ONE shared worker pool, so
// total in-flight work never exceeds `jobs` no matter how many points a
// sweep has (nested pools would multiply to jobs² workers and thrash
// the scheduler). Results are indexed [plan][trial][tester]; the
// determinism contract of Map applies unchanged. As in Plan.Run, every
// result cell lives in one flat backing array sized up front.
func RunPlans(ctx context.Context, jobs int, plans []Plan) ([][][]TrialResult, error) {
	type coord struct {
		plan, trial int
		cells       []TrialResult // preallocated destination row
	}
	total := 0
	for _, p := range plans {
		total += p.Trials * len(p.Testers)
	}
	backing := make([]TrialResult, total)
	var coords []coord
	off := 0
	for pi, p := range plans {
		w := len(p.Testers)
		for trial := 0; trial < p.Trials; trial++ {
			coords = append(coords, coord{pi, trial, backing[off : off+w]})
			off += w
		}
	}
	cells, err := MapArena(ctx, jobs, len(coords), func(ctx context.Context, a *Arena, i int) ([]TrialResult, error) {
		c := coords[i]
		if rerr := plans[c.plan].runTrialInto(ctx, a, c.trial, c.cells); rerr != nil {
			return nil, fmt.Errorf("plan %d: %w", c.plan, rerr)
		}
		return c.cells, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][][]TrialResult, len(plans))
	i := 0
	for pi, p := range plans {
		out[pi] = cells[i : i+p.Trials]
		i += p.Trials
	}
	return out, nil
}
