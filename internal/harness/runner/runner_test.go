package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tricomm/internal/graph"
	"tricomm/internal/partition"
	"tricomm/internal/protocol"
)

func TestMapOrdered(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 100} {
		out, err := Map(context.Background(), jobs, 50, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for empty map")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
	if _, err := Map(context.Background(), 4, -1, func(_ context.Context, i int) (int, error) {
		return 0, nil
	}); err == nil {
		t.Fatal("negative count should error")
	}
}

func TestMapFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Map(context.Background(), 4, 1000, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Fatalf("cancellation did not stop the pool (all %d trials ran)", n)
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := Map(ctx, 2, 10_000, func(ctx context.Context, i int) (int, error) {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return i, nil
		})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Map did not return after cancellation")
	}
}

func TestJobsClamp(t *testing.T) {
	if Jobs(0) < 1 || Jobs(-3) < 1 {
		t.Fatal("Jobs must clamp non-positive to >= 1")
	}
	if Jobs(7) != 7 {
		t.Fatal("Jobs must pass positive values through")
	}
}

func TestTrialSeed(t *testing.T) {
	if TrialSeed(1, 0) != 1_000_003 {
		t.Fatalf("TrialSeed(1,0) = %d", TrialSeed(1, 0))
	}
	if TrialSeed(1, 2) != 1_000_003+2*7919 {
		t.Fatalf("TrialSeed(1,2) = %d", TrialSeed(1, 2))
	}
}

// TestPlanDeterministicAcrossJobs is the heart of the determinism
// contract: the same plan run with 1 worker and with 8 workers yields
// deeply equal results, trial by trial.
func TestPlanDeterministicAcrossJobs(t *testing.T) {
	plan := Plan{
		Trials: 6,
		Seed:   func(trial int) uint64 { return TrialSeed(42, trial) },
		Gen: func(rng *rand.Rand) *graph.Graph {
			return graph.FarWithDegree(graph.FarParams{N: 128, D: 6, Eps: 0.25}, rng).G
		},
		Partitioner: partition.Disjoint{},
		K:           3,
		Testers: []func(g *graph.Graph, trial int) Tester{
			func(g *graph.Graph, trial int) Tester {
				return protocol.SimOblivious{Eps: 0.25, Delta: 0.1,
					Tag: fmt.Sprintf("det/%d", trial)}
			},
			func(g *graph.Graph, trial int) Tester {
				return protocol.Unrestricted{Eps: 0.25, AvgDegree: g.AvgDegree(),
					Tag: fmt.Sprintf("detu/%d", trial)}
			},
		},
	}
	seq, err := plan.Run(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := plan.Run(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("plan results differ across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
	if len(seq) != plan.Trials || len(seq[0]) != len(plan.Testers) {
		t.Fatalf("result shape %dx%d, want %dx%d", len(seq), len(seq[0]), plan.Trials, len(plan.Testers))
	}
}

// TestArenaRandMatchesFresh pins the arena's reseed-in-place contract:
// Arena.Rand(seed) must reproduce rand.New(rand.NewSource(seed)) exactly,
// including across interleaved reseeds — the property the determinism
// contract relies on when workers reuse one generator across trials.
func TestArenaRandMatchesFresh(t *testing.T) {
	a := NewArena()
	for _, seed := range []int64{1, 42, -7, 1 << 40} {
		got := a.Rand(seed)
		want := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if g, w := got.Int63(), want.Int63(); g != w {
				t.Fatalf("seed %d draw %d: %d != %d", seed, i, g, w)
			}
		}
		// Interleave a different seed, then return: still exact.
		a.Rand(seed + 1).Int63()
		got = a.Rand(seed)
		want = rand.New(rand.NewSource(seed))
		if g, w := got.Float64(), want.Float64(); g != w {
			t.Fatalf("seed %d after reseed: %v != %v", seed, g, w)
		}
	}
}

// TestMapArenaPerWorker checks every worker observes its own arena.
func TestMapArenaPerWorker(t *testing.T) {
	var mu sync.Mutex
	arenas := map[*Arena]bool{}
	_, err := MapArena(context.Background(), 4, 64, func(_ context.Context, a *Arena, i int) (int, error) {
		if a == nil {
			t.Error("nil arena")
		}
		mu.Lock()
		arenas[a] = true
		mu.Unlock()
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(arenas) == 0 || len(arenas) > 4 {
		t.Fatalf("saw %d arenas, want between 1 and 4", len(arenas))
	}
}
