package harness

import (
	"context"
	"strings"
	"testing"
)

// renderExperiment runs one experiment and renders its table the way
// cmd/benchtable does (ID/Title/PaperClaim filled in).
func renderExperiment(t *testing.T, id string, cfg RunConfig) string {
	t.Helper()
	exp, ok := Lookup(id)
	if !ok {
		t.Fatalf("%s missing", id)
	}
	tb, err := exp.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	tb.ID, tb.Title, tb.PaperClaim = exp.ID, exp.Title, exp.PaperClaim
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatalf("%s render: %v", id, err)
	}
	return sb.String()
}

// TestJobsByteIdentical is the runner determinism contract at the table
// level: for a fixed seed, rendered experiment tables are byte-identical
// with 1 worker and with 8 — trial seeds depend only on the trial index
// and aggregation folds in trial order, never in completion order.
func TestJobsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range []string{"E2a", "E5", "E6", "E10", "E11", "E13"} {
		seq := renderExperiment(t, id, RunConfig{Seed: 1, Quick: true, Jobs: 1})
		par := renderExperiment(t, id, RunConfig{Seed: 1, Quick: true, Jobs: 8})
		if seq != par {
			t.Errorf("%s: output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", id, seq, par)
		}
	}
}

// TestGoldenQuickTable pins one -quick table byte-for-byte (seed 1, the
// cmd/benchtable default). If a deliberate change to E6 or the table
// renderer alters this, regenerate with:
//
//	go run ./cmd/benchtable -quick -only E6 2>/dev/null
//
// An unintended mismatch means trial seeding or fold order drifted —
// the determinism contract every EXPERIMENTS.md number relies on.
func TestGoldenQuickTable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	got := renderExperiment(t, "E6", RunConfig{Seed: 1, Quick: true, Jobs: 8})
	if got != goldenE6Quick {
		t.Errorf("E6 quick table drifted from golden pin:\n--- got ---\n%s\n--- want ---\n%s", got, goldenE6Quick)
	}
}

const goldenE6Quick = `== E6: Boolean Hidden Matching reduction (d = Θ(1)) ==
paper: Table 1 row 6 / Thm 4.16: Ω(√n) one-way bits for triangle-freeness at d = O(1)
bhm_n  graph_n  side                              detect_rate  det_lo95  det_hi95  false_pos  tester_bits  bits/√n  
-----  -------  --------------------------------  -----------  --------  --------  ---------  -----------  ---------
64     257      all-zeros (n disjoint triangles)  0.5          0.09453   0.9055    0          2090         130.4    
64     257      all-ones (triangle-free)          0            -         -         0          1276         79.59    
256    1025     all-zeros (n disjoint triangles)  1            0.3424    1         0          3426         107      
256    1025     all-ones (triangle-free)          0            -         -         0          3184         99.45    
note: tester cost fit vs graph n: y ≈ 288·x^0.357 (R²=1.000, n=2) — the Õ(k√n) upper bound meets the Ω(√n) reduction bound
note: false positives are structurally impossible (one-sided error); detection on the far side is w.h.p.
note: det_lo95/det_hi95 are Wilson-score intervals on the far-side detection rate (small-count safe); dashes on triangle-free rows, where rejection is structurally impossible

`
