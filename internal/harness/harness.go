// Package harness defines the experiment registry that regenerates the
// paper's evaluation artifacts. The paper's only results exhibit is
// Table 1 (six asymptotic results across three degree regimes; there are
// no figures), plus several in-text claims (§3.1 building-block costs,
// blackboard and no-duplication savings, the §5 testing-vs-exact
// comparison, and the §4.2.2 streaming corollary).
//
// Each experiment measures communication on parameter sweeps and reports
// the scaling against the paper's predicted law; DESIGN.md §4 maps
// experiment ids (E1…E15) to Table 1 rows, and EXPERIMENTS.md records
// paper-vs-measured for each.
package harness

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"tricomm/internal/graph"
	"tricomm/internal/harness/runner"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment id (E1…E15).
	ID string
	// Title is a one-line description.
	Title string
	// PaperClaim cites the bound/claim being reproduced.
	PaperClaim string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows (stringified).
	Rows [][]string
	// Notes carry fits, thresholds and caveats.
	Notes []string
}

// AddRow appends a data row, stringifying each cell with %v (floats get
// %.4g).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quotes are not needed
// for our cell contents, which are numeric or simple identifiers).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RunConfig controls an experiment run.
type RunConfig struct {
	// Seed drives all randomness; identical seeds give identical tables.
	Seed uint64
	// Quick shrinks the sweeps for CI/benchmark use.
	Quick bool
	// Trials overrides the per-point repetition count when positive.
	Trials int
	// Jobs is the trial worker-pool width; ≤ 0 means GOMAXPROCS. Tables
	// are bit-identical at every value (see internal/harness/runner).
	Jobs int
	// IntraWorkers fans a single trial's graph kernels (triangle counts,
	// certificate audits) across goroutines; ≤ 0 defers to
	// TRICOMM_INTRA_WORKERS, then 1. The parallel kernels are
	// bit-identical to the serial ones, so tables never depend on it.
	IntraWorkers int
}

// jobs returns the normalized worker count.
func (c RunConfig) jobs() int { return runner.Jobs(c.Jobs) }

// intraWorkers returns the normalized intra-trial worker count.
func (c RunConfig) intraWorkers() int { return graph.IntraWorkers(c.IntraWorkers) }

func (c RunConfig) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick && def > 2 {
		return 2
	}
	return def
}

// Experiment is a registered, reproducible experiment.
type Experiment struct {
	// ID is the experiment identifier (E1…E15).
	ID string
	// Title is a one-line description.
	Title string
	// PaperClaim cites what is being reproduced.
	PaperClaim string
	// Run executes the experiment. The context cancels the trial workers
	// (SIGINT in cmd/benchtable); cancellation surfaces as ctx.Err().
	Run func(ctx context.Context, cfg RunConfig) (*Table, error)
}

// registry is populated by the experiment files' register calls at
// package initialization via variable initializers (no init functions).
var registry = buildRegistry()

// All returns every registered experiment, ordered by ID.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return idLess(out[i].ID, out[j].ID) })
	return out
}

// idLess orders E2 before E10 (numeric suffix order, then lexical).
func idLess(a, b string) bool {
	na, sa := splitID(a)
	nb, sb := splitID(b)
	if na != nb {
		return na < nb
	}
	return sa < sb
}

func splitID(id string) (int, string) {
	n := 0
	i := 1
	for i < len(id) && id[i] >= '0' && id[i] <= '9' {
		n = n*10 + int(id[i]-'0')
		i++
	}
	return n, id[i:]
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
