package harness

import (
	"context"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	wantIDs := []string{"E1", "E2a", "E2b", "E2c", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}
	if len(all) != len(wantIDs) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(wantIDs))
	}
	for i, id := range wantIDs {
		if all[i].ID != id {
			t.Fatalf("experiment %d: id %s, want %s (ordering)", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].PaperClaim == "" || all[i].Run == nil {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("E6"); !ok {
		t.Fatal("E6 not found")
	}
	if _, ok := Lookup("E99"); ok {
		t.Fatal("phantom experiment found")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:         "T",
		Title:      "demo",
		PaperClaim: "claim",
		Columns:    []string{"a", "long_column"},
	}
	tb.AddRow(1, 2.5)
	tb.AddRow("xyz", 3.14159)
	tb.AddNote("hello %d", 42)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== T: demo ==", "paper: claim", "long_column", "3.142", "note: hello 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Columns: []string{"x", "y"}}
	tb.AddRow(1, 2)
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "x,y\n1,2\n" {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestIDOrdering(t *testing.T) {
	if !idLess("E2a", "E10") {
		t.Fatal("E2a should precede E10")
	}
	if idLess("E10", "E2") {
		t.Fatal("E10 should follow E2")
	}
	if !idLess("E2a", "E2b") {
		t.Fatal("E2a should precede E2b")
	}
}

func TestRunConfigTrials(t *testing.T) {
	if (RunConfig{}).trials(5) != 5 {
		t.Fatal("default trials wrong")
	}
	if (RunConfig{Quick: true}).trials(5) != 2 {
		t.Fatal("quick trials wrong")
	}
	if (RunConfig{Trials: 9}).trials(5) != 9 {
		t.Fatal("override trials wrong")
	}
}

// TestQuickExperimentsRun executes the fast experiments end to end in
// quick mode; the heavyweight sweeps (E1, E2b, E7, E8) are covered by the
// benchmark harness and cmd/benchtable.
func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := RunConfig{Seed: 7, Quick: true, Trials: 2}
	for _, id := range []string{"E2a", "E2c", "E5", "E6", "E9", "E10", "E11"} {
		exp, ok := Lookup(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		tb, err := exp.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		var sb strings.Builder
		if err := tb.Render(&sb); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
	}
}

func TestProbeExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := RunConfig{Seed: 11, Quick: true, Trials: 4}
	for _, id := range []string{"E3", "E4"} {
		exp, _ := Lookup(id)
		tb, err := exp.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}
