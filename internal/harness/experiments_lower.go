package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"tricomm/internal/comm"
	"tricomm/internal/harness/runner"
	"tricomm/internal/lowerbound"
	"tricomm/internal/protocol"
	"tricomm/internal/stats"
	"tricomm/internal/streamred"
	"tricomm/internal/xrand"
)

// buildRegistry assembles all experiments (called from harness.go's
// package-level variable initializer).
func buildRegistry() []Experiment {
	return []Experiment{
		e1Unrestricted(),
		e2aSimLow(),
		e2bSimHigh(),
		e2cOblivious(),
		e3OneWayProbe(),
		e4SimProbe(),
		e5Symmetrization(),
		e6BHM(),
		e7TestingVsExact(),
		e8Blackboard(),
		e9ApproxDegree(),
		e10NoDup(),
		e11Streaming(),
		e12Behrend(),
		e13Bucketing(),
		e14ScenarioSweep(),
		e15FaultResilience(),
	}
}

// probeCurves runs a probe strategy over a (nPart, budget, trial) grid —
// one success-vs-budget curve per nPart — flattening the whole grid onto
// ONE worker pool (nested pools would multiply widths). Every cell's
// seed depends only on its coordinates, and the per-budget fold walks
// trials in order, so the curves are bit-identical at every worker
// count. Result is indexed [nPart][budget].
func probeCurves(ctx context.Context, cfg RunConfig, nParts []int, gamma float64, budgets []int, trials int,
	run func(inst lowerbound.MuInstance, shared *xrand.Shared, budget int) (lowerbound.ProbeResult, error),
) ([][]*stats.RateAggregator, error) {
	type cell struct {
		success bool
		bits    float64
	}
	perPart := len(budgets) * trials
	cells, err := runner.MapArena(ctx, cfg.jobs(), len(nParts)*perPart, func(_ context.Context, a *runner.Arena, i int) (cell, error) {
		nPart := nParts[i/perPart]
		bi, trial := (i%perPart)/trials, i%trials
		seed := cfg.Seed*104729 + uint64(trial)*31 + uint64(nPart)
		rng := a.Rand(int64(seed))
		inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: nPart, Gamma: gamma}, rng)
		res, rerr := run(inst, xrand.New(seed+uint64(bi)), budgets[bi])
		if rerr != nil {
			return cell{}, rerr
		}
		return cell{success: res.Success, bits: float64(res.Bits)}, nil
	})
	if err != nil {
		return nil, err
	}
	curves := make([][]*stats.RateAggregator, len(nParts))
	for pi := range nParts {
		curves[pi] = make([]*stats.RateAggregator, len(budgets))
		for bi := range budgets {
			a := stats.NewRateAggregator(trials)
			for trial := 0; trial < trials; trial++ {
				c := cells[pi*perPart+bi*trials+trial]
				a.Add(c.success, c.bits)
			}
			curves[pi][bi] = a
		}
	}
	return curves, nil
}

// threshold finds the first budget reaching 50% success, or -1.
func threshold(budgets []int, curve []*stats.RateAggregator, trials int) int {
	for i, a := range curve {
		if 2*a.Successes >= trials {
			return budgets[i]
		}
	}
	return -1
}

// e3OneWayProbe probes Table 1 rows 3 and 5: the one-way Ω((nd)^{1/6})
// bound at d = Θ(√n), where (nd)^{1/6} = n^{1/4}.
func e3OneWayProbe() Experiment {
	return Experiment{
		ID:         "E3",
		Title:      "One-way triangle-edge detection: success vs budget on µ",
		PaperClaim: "Table 1 row 3 / Thm 4.7: Ω(n^{1/4}) one-way bits at d = Θ(√n); Ω((nd)^{1/6}) in general",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"n", "budget_bits", "success", "trials", "rate_lo95", "rate_hi95", "mean_bits", "covered~"}}
			const gamma = 2.0
			trials := cfg.trials(40)
			nParts := []int{125, 250, 500, 1000}
			if cfg.Quick {
				nParts = []int{125, 250}
			}
			// A fine grid: the one-way threshold grows only like
			// n^{1/4}·log n, so coarse doubling steps cannot resolve it.
			budgets := []int{25, 32, 40, 50, 62, 78, 98, 122, 153, 191}
			curves, err := probeCurves(ctx, cfg, nParts, gamma, budgets, trials,
				func(inst lowerbound.MuInstance, shared *xrand.Shared, budget int) (lowerbound.ProbeResult, error) {
					return lowerbound.OneWayProbe{BudgetBits: budget}.Run(inst, shared)
				})
			if err != nil {
				return nil, err
			}
			var thrX, thrY []float64
			for pi, nPart := range nParts {
				n := 3 * nPart
				for bi, budget := range budgets {
					a := curves[pi][bi]
					lo, hi := a.Wilson()
					t.AddRow(n, budget, a.Successes, trials, lo, hi, a.MeanBits, "B²/log²n")
				}
				if thr := threshold(budgets, curves[pi], trials); thr > 0 {
					t.AddNote("n=%d: 50%% success at budget ≈ %d bits (n^{1/4}·log n ≈ %.0f)",
						n, thr, math.Pow(float64(n), 0.25)*math.Log2(float64(n)))
					thrX = append(thrX, float64(n))
					thrY = append(thrY, float64(thr))
				}
			}
			if len(thrX) >= 2 {
				if fit, err := stats.FitPower(thrX, thrY); err == nil {
					t.AddNote("threshold fit vs n: %s (bound predicts exponent ≥ 0.25)", fit)
				}
			}
			t.AddNote("rate_lo95/rate_hi95 are Wilson-score intervals — at these small counts the normal approximation collapses near rates 0 and 1")
			return t, nil
		},
	}
}

// e4SimProbe probes Table 1 row 4: the simultaneous Ω((nd)^{1/3}) bound,
// i.e. Ω(√n) at d = Θ(√n) — quadratically above the one-way threshold.
func e4SimProbe() Experiment {
	return Experiment{
		ID:         "E4",
		Title:      "Simultaneous triangle-edge detection: success vs budget on µ",
		PaperClaim: "Table 1 row 4 / §4.2.3: Ω(√n) simultaneous bits at d = Θ(√n); Ω((nd)^{1/3}) in general",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"n", "budget_bits", "success", "trials", "rate_lo95", "rate_hi95", "mean_bits"}}
			const gamma = 2.0
			trials := cfg.trials(20)
			nParts := []int{125, 250, 500}
			if cfg.Quick {
				nParts = []int{125, 250}
			}
			budgets := []int{40, 80, 160, 320, 640, 1280, 2560}
			curves, err := probeCurves(ctx, cfg, nParts, gamma, budgets, trials,
				func(inst lowerbound.MuInstance, shared *xrand.Shared, budget int) (lowerbound.ProbeResult, error) {
					return lowerbound.SimProbe{BudgetBits: budget, Gamma: gamma}.Run(inst, shared)
				})
			if err != nil {
				return nil, err
			}
			var thrX, thrY []float64
			for pi, nPart := range nParts {
				n := 3 * nPart
				for bi, budget := range budgets {
					a := curves[pi][bi]
					lo, hi := a.Wilson()
					t.AddRow(n, budget, a.Successes, trials, lo, hi, a.MeanBits)
				}
				if thr := threshold(budgets, curves[pi], trials); thr > 0 {
					t.AddNote("n=%d: 50%% success at budget ≈ %d bits (√n·log n ≈ %.0f)",
						n, thr, math.Sqrt(float64(n))*math.Log2(float64(n)))
					thrX = append(thrX, float64(n))
					thrY = append(thrY, float64(thr))
				}
			}
			if len(thrX) >= 2 {
				if fit, err := stats.FitPower(thrX, thrY); err == nil {
					t.AddNote("threshold fit vs n: %s (bound predicts exponent ≥ 0.5)", fit)
				}
			}
			t.AddNote("the simultaneous threshold sits quadratically above the one-way threshold of E3 — the paper's separation")
			t.AddNote("rate_lo95/rate_hi95 are Wilson-score intervals — at these small counts the normal approximation collapses near rates 0 and 1")
			return t, nil
		},
	}
}

// e5Symmetrization verifies the Theorem 4.15 accounting empirically.
func e5Symmetrization() Experiment {
	return Experiment{
		ID:         "E5",
		Title:      "Symmetrization: k-player simultaneous → 3-player one-way",
		PaperClaim: "Table 1 row 5 / Thm 4.15: CC_k^{sim} ≥ (k/2)·CC_3^{→}, hence Ω(k·(nd)^{1/6})",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"k", "trials", "total_bits", "derived_oneway_bits", "derived/total", "2/k"}}
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + 5))
			inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: 80, Gamma: 2}, rng)
			trials := cfg.trials(20)
			ks := []int{4, 8, 16}
			if cfg.Quick {
				ks = []int{4, 8}
			}
			// The embeddings consume one sequential rng stream (each draw
			// depends on all earlier ones), so they are drawn up front in
			// (k, trial) order; only the protocol runs — the expensive part
			// — fan out over the pool.
			embs := make([]lowerbound.Embedding, 0, len(ks)*trials)
			for _, k := range ks {
				for trial := 0; trial < trials; trial++ {
					embs = append(embs, lowerbound.Embed3ToK(inst.Alice, inst.Bob, inst.Charlie, k, rng))
				}
			}
			type cell struct{ derived, total float64 }
			cells, err := runner.Map(ctx, cfg.jobs(), len(ks)*trials, func(ctx context.Context, i int) (cell, error) {
				ki, trial := i/trials, i%trials
				emb := embs[i]
				cfgC := comm.Config{N: inst.N(), Inputs: emb.Inputs, Shared: xrand.New(cfg.Seed + uint64(trial))}
				res, err := protocol.SimLow{Eps: 0.1, AvgDegree: inst.G.AvgDegree(), Delta: 0.1,
					Tag: fmt.Sprintf("e5/%d/%d", ks[ki], trial)}.Run(ctx, cfgC)
				if err != nil {
					return cell{}, err
				}
				return cell{
					derived: float64(lowerbound.SimulateOneWayCost(res.Stats.PerPlayer, emb)),
					total:   float64(res.Stats.TotalBits),
				}, nil
			})
			if err != nil {
				return nil, err
			}
			for ki, k := range ks {
				var sumDerived, sumTotal float64
				for trial := 0; trial < trials; trial++ {
					c := cells[ki*trials+trial]
					sumDerived += c.derived
					sumTotal += c.total
				}
				t.AddRow(k, trials, sumTotal/float64(trials), sumDerived/float64(trials),
					sumDerived/sumTotal, 2.0/float64(k))
			}
			t.AddNote("derived/total tracks 2/k: a k-player simultaneous protocol yields a 3-player one-way protocol at 2/k of its cost")
			return t, nil
		},
	}
}

// e6BHM reproduces Table 1 row 6: the d = Θ(1) bound via the Boolean
// Matching reduction, and shows our testers are tight against it.
func e6BHM() Experiment {
	return Experiment{
		ID:         "E6",
		Title:      "Boolean Hidden Matching reduction (d = Θ(1))",
		PaperClaim: "Table 1 row 6 / Thm 4.16: Ω(√n) one-way bits for triangle-freeness at d = O(1)",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"bhm_n", "graph_n", "side", "detect_rate", "det_lo95", "det_hi95", "false_pos", "tester_bits", "bits/√n"}}
			trials := cfg.trials(10)
			sizes := []int{64, 256, 1024}
			if cfg.Quick {
				sizes = []int{64, 256}
			}
			type block struct {
				n       int
				allZero bool
			}
			var bs []block
			for _, n := range sizes {
				for _, allZero := range []bool{true, false} {
					bs = append(bs, block{n, allZero})
				}
			}
			type cell struct {
				found bool
				bits  float64
			}
			cells, err := runner.MapArena(ctx, cfg.jobs(), len(bs)*trials, func(ctx context.Context, a *runner.Arena, i int) (cell, error) {
				b, trial := bs[i/trials], i%trials
				rng := a.Rand(int64(cfg.Seed)*13 + int64(trial))
				inst := lowerbound.SampleBHM(b.n, b.allZero, rng)
				red := lowerbound.Reduce(inst)
				c := comm.Config{N: red.G.N(), Inputs: red.Inputs(),
					Shared: xrand.New(cfg.Seed + uint64(trial) + uint64(b.n))}
				res, err := protocol.SimLow{Eps: 0.2, AvgDegree: red.G.AvgDegree(), Delta: 0.1,
					Tag: fmt.Sprintf("e6/%d/%v/%d", b.n, b.allZero, trial)}.Run(ctx, c)
				if err != nil {
					return cell{}, err
				}
				return cell{found: res.Found(), bits: float64(res.Stats.TotalBits)}, nil
			})
			if err != nil {
				return nil, err
			}
			var xs, ys []float64
			for bi, b := range bs {
				detects, falsePos := 0, 0
				var bitsSum float64
				for trial := 0; trial < trials; trial++ {
					c := cells[bi*trials+trial]
					if c.found {
						if b.allZero {
							detects++
						} else {
							falsePos++
						}
					}
					bitsSum += c.bits
				}
				side := "all-ones (triangle-free)"
				if b.allZero {
					side = "all-zeros (n disjoint triangles)"
				}
				mean := bitsSum / float64(trials)
				graphN := 4*b.n + 1
				// The Wilson interval is only meaningful on the far side:
				// on triangle-free inputs rejection is structurally
				// impossible (one-sided error), not merely unobserved.
				var loCell, hiCell interface{} = "-", "-"
				if b.allZero {
					lo, hi := stats.Wilson(detects, trials)
					loCell, hiCell = lo, hi
				}
				t.AddRow(b.n, graphN, side, float64(detects)/float64(trials), loCell, hiCell,
					falsePos, mean, mean/math.Sqrt(float64(graphN)))
				if b.allZero {
					xs = append(xs, float64(graphN))
					ys = append(ys, mean)
				}
			}
			if fit, err := stats.FitPower(xs, ys); err == nil {
				t.AddNote("tester cost fit vs graph n: %s — the Õ(k√n) upper bound meets the Ω(√n) reduction bound", fit)
			}
			t.AddNote("false positives are structurally impossible (one-sided error); detection on the far side is w.h.p.")
			t.AddNote("det_lo95/det_hi95 are Wilson-score intervals on the far-side detection rate (small-count safe); dashes on triangle-free rows, where rejection is structurally impossible")
			return t, nil
		},
	}
}

// e11Streaming reproduces the §4.2.2 streaming corollary.
func e11Streaming() Experiment {
	return Experiment{
		ID:         "E11",
		Title:      "Streaming triangle-edge detection: success vs space",
		PaperClaim: "§4.2.2: Ω(n^{1/4}) one-pass space via the one-way reduction",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"n", "detector", "space_bits", "success", "trials"}}
			const gamma = 2.0
			trials := cfg.trials(20)
			nParts := []int{250, 500}
			if cfg.Quick {
				nParts = []int{250}
			}
			capArmsGrid := []int{2, 8, 32, 128}
			type block struct {
				nPart, capArms int
			}
			var bs []block
			for _, nPart := range nParts {
				for _, capArms := range capArmsGrid {
					bs = append(bs, block{nPart, capArms})
				}
			}
			type cell struct {
				win   bool
				space int
			}
			cells, err := runner.MapArena(ctx, cfg.jobs(), len(bs)*trials, func(_ context.Context, a *runner.Arena, i int) (cell, error) {
				b, trial := bs[i/trials], i%trials
				rng := a.Rand(int64(cfg.Seed)*7 + int64(trial))
				inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: b.nPart, Gamma: gamma}, rng)
				det := streamred.NewStarDetector(xrand.New(cfg.Seed+uint64(trial)), inst.NPart, b.capArms, inst.N())
				var stream streamred.Stream
				stream.Edges = append(stream.Edges, inst.Alice...)
				stream.Edges = append(stream.Edges, inst.Bob...)
				stream.Edges = append(stream.Edges, inst.Charlie...)
				e, ok := streamred.Drive(det, stream)
				return cell{win: ok && inst.IsValidOutput(e), space: det.SpaceBits()}, nil
			})
			if err != nil {
				return nil, err
			}
			for bi, b := range bs {
				wins, space := 0, 0
				for trial := 0; trial < trials; trial++ {
					c := cells[bi*trials+trial]
					if c.win {
						wins++
					}
					space = c.space
				}
				t.AddRow(3*b.nPart, "star", space, wins, trials)
				if b.capArms == capArmsGrid[len(capArmsGrid)-1] {
					n := 3 * b.nPart
					t.AddNote("n=%d: n^{1/4}·log n ≈ %.0f bits", n, math.Pow(float64(n), 0.25)*math.Log2(float64(n)))
				}
			}
			return t, nil
		},
	}
}
