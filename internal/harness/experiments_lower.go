package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"tricomm/internal/comm"
	"tricomm/internal/lowerbound"
	"tricomm/internal/protocol"
	"tricomm/internal/stats"
	"tricomm/internal/streamred"
	"tricomm/internal/xrand"
)

// buildRegistry assembles all experiments (called from harness.go's
// package-level variable initializer).
func buildRegistry() []Experiment {
	return []Experiment{
		e1Unrestricted(),
		e2aSimLow(),
		e2bSimHigh(),
		e2cOblivious(),
		e3OneWayProbe(),
		e4SimProbe(),
		e5Symmetrization(),
		e6BHM(),
		e7TestingVsExact(),
		e8Blackboard(),
		e9ApproxDegree(),
		e10NoDup(),
		e11Streaming(),
		e12Behrend(),
		e13Bucketing(),
	}
}

// probeCurve runs a probe strategy over a budget grid and reports
// success counts.
func probeCurve(cfg RunConfig, nPart int, gamma float64, budgets []int, trials int,
	run func(inst lowerbound.MuInstance, shared *xrand.Shared, budget int) (lowerbound.ProbeResult, error),
) (success []int, meanBits []float64, err error) {
	success = make([]int, len(budgets))
	meanBits = make([]float64, len(budgets))
	for bi, budget := range budgets {
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed*104729 + uint64(trial)*31 + uint64(nPart)
			rng := rand.New(rand.NewSource(int64(seed)))
			inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: nPart, Gamma: gamma}, rng)
			res, rerr := run(inst, xrand.New(seed+uint64(bi)), budget)
			if rerr != nil {
				return nil, nil, rerr
			}
			if res.Success {
				success[bi]++
			}
			meanBits[bi] += float64(res.Bits) / float64(trials)
		}
	}
	return success, meanBits, nil
}

// threshold finds the first budget reaching 50% success, or -1.
func threshold(budgets []int, success []int, trials int) int {
	for i, s := range success {
		if 2*s >= trials {
			return budgets[i]
		}
	}
	return -1
}

// e3OneWayProbe probes Table 1 rows 3 and 5: the one-way Ω((nd)^{1/6})
// bound at d = Θ(√n), where (nd)^{1/6} = n^{1/4}.
func e3OneWayProbe() Experiment {
	return Experiment{
		ID:         "E3",
		Title:      "One-way triangle-edge detection: success vs budget on µ",
		PaperClaim: "Table 1 row 3 / Thm 4.7: Ω(n^{1/4}) one-way bits at d = Θ(√n); Ω((nd)^{1/6}) in general",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"n", "budget_bits", "success", "trials", "mean_bits", "covered~"}}
			const gamma = 2.0
			trials := cfg.trials(40)
			nParts := []int{125, 250, 500, 1000}
			if cfg.Quick {
				nParts = []int{125, 250}
			}
			var thrX, thrY []float64
			for _, nPart := range nParts {
				n := 3 * nPart
				// A fine grid: the one-way threshold grows only like
				// n^{1/4}·log n, so coarse doubling steps cannot resolve it.
				budgets := []int{25, 32, 40, 50, 62, 78, 98, 122, 153, 191}
				success, meanBits, err := probeCurve(cfg, nPart, gamma, budgets, trials,
					func(inst lowerbound.MuInstance, shared *xrand.Shared, budget int) (lowerbound.ProbeResult, error) {
						return lowerbound.OneWayProbe{BudgetBits: budget}.Run(inst, shared)
					})
				if err != nil {
					return nil, err
				}
				for bi, budget := range budgets {
					t.AddRow(n, budget, success[bi], trials, meanBits[bi], "B²/log²n")
				}
				if thr := threshold(budgets, success, trials); thr > 0 {
					t.AddNote("n=%d: 50%% success at budget ≈ %d bits (n^{1/4}·log n ≈ %.0f)",
						n, thr, math.Pow(float64(n), 0.25)*math.Log2(float64(n)))
					thrX = append(thrX, float64(n))
					thrY = append(thrY, float64(thr))
				}
			}
			if len(thrX) >= 2 {
				if fit, err := stats.FitPower(thrX, thrY); err == nil {
					t.AddNote("threshold fit vs n: %s (bound predicts exponent ≥ 0.25)", fit)
				}
			}
			return t, nil
		},
	}
}

// e4SimProbe probes Table 1 row 4: the simultaneous Ω((nd)^{1/3}) bound,
// i.e. Ω(√n) at d = Θ(√n) — quadratically above the one-way threshold.
func e4SimProbe() Experiment {
	return Experiment{
		ID:         "E4",
		Title:      "Simultaneous triangle-edge detection: success vs budget on µ",
		PaperClaim: "Table 1 row 4 / §4.2.3: Ω(√n) simultaneous bits at d = Θ(√n); Ω((nd)^{1/3}) in general",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"n", "budget_bits", "success", "trials", "mean_bits"}}
			const gamma = 2.0
			trials := cfg.trials(20)
			nParts := []int{125, 250, 500}
			if cfg.Quick {
				nParts = []int{125, 250}
			}
			var thrX, thrY []float64
			for _, nPart := range nParts {
				n := 3 * nPart
				budgets := []int{40, 80, 160, 320, 640, 1280, 2560}
				success, meanBits, err := probeCurve(cfg, nPart, gamma, budgets, trials,
					func(inst lowerbound.MuInstance, shared *xrand.Shared, budget int) (lowerbound.ProbeResult, error) {
						return lowerbound.SimProbe{BudgetBits: budget, Gamma: gamma}.Run(inst, shared)
					})
				if err != nil {
					return nil, err
				}
				for bi, budget := range budgets {
					t.AddRow(n, budget, success[bi], trials, meanBits[bi])
				}
				if thr := threshold(budgets, success, trials); thr > 0 {
					t.AddNote("n=%d: 50%% success at budget ≈ %d bits (√n·log n ≈ %.0f)",
						n, thr, math.Sqrt(float64(n))*math.Log2(float64(n)))
					thrX = append(thrX, float64(n))
					thrY = append(thrY, float64(thr))
				}
			}
			if len(thrX) >= 2 {
				if fit, err := stats.FitPower(thrX, thrY); err == nil {
					t.AddNote("threshold fit vs n: %s (bound predicts exponent ≥ 0.5)", fit)
				}
			}
			t.AddNote("the simultaneous threshold sits quadratically above the one-way threshold of E3 — the paper's separation")
			return t, nil
		},
	}
}

// e5Symmetrization verifies the Theorem 4.15 accounting empirically.
func e5Symmetrization() Experiment {
	return Experiment{
		ID:         "E5",
		Title:      "Symmetrization: k-player simultaneous → 3-player one-way",
		PaperClaim: "Table 1 row 5 / Thm 4.15: CC_k^{sim} ≥ (k/2)·CC_3^{→}, hence Ω(k·(nd)^{1/6})",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"k", "trials", "total_bits", "derived_oneway_bits", "derived/total", "2/k"}}
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + 5))
			inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: 80, Gamma: 2}, rng)
			trials := cfg.trials(20)
			ks := []int{4, 8, 16}
			if cfg.Quick {
				ks = []int{4, 8}
			}
			for _, k := range ks {
				var sumDerived, sumTotal float64
				for trial := 0; trial < trials; trial++ {
					emb := lowerbound.Embed3ToK(inst.Alice, inst.Bob, inst.Charlie, k, rng)
					cfgC := comm.Config{N: inst.N(), Inputs: emb.Inputs, Shared: xrand.New(cfg.Seed + uint64(trial))}
					res, err := protocol.SimLow{Eps: 0.1, AvgDegree: inst.G.AvgDegree(), Delta: 0.1,
						Tag: fmt.Sprintf("e5/%d/%d", k, trial)}.Run(context.Background(), cfgC)
					if err != nil {
						return nil, err
					}
					sumDerived += float64(lowerbound.SimulateOneWayCost(res.Stats.PerPlayer, emb))
					sumTotal += float64(res.Stats.TotalBits)
				}
				t.AddRow(k, trials, sumTotal/float64(trials), sumDerived/float64(trials),
					sumDerived/sumTotal, 2.0/float64(k))
			}
			t.AddNote("derived/total tracks 2/k: a k-player simultaneous protocol yields a 3-player one-way protocol at 2/k of its cost")
			return t, nil
		},
	}
}

// e6BHM reproduces Table 1 row 6: the d = Θ(1) bound via the Boolean
// Matching reduction, and shows our testers are tight against it.
func e6BHM() Experiment {
	return Experiment{
		ID:         "E6",
		Title:      "Boolean Hidden Matching reduction (d = Θ(1))",
		PaperClaim: "Table 1 row 6 / Thm 4.16: Ω(√n) one-way bits for triangle-freeness at d = O(1)",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"bhm_n", "graph_n", "side", "detect_rate", "false_pos", "tester_bits", "bits/√n"}}
			trials := cfg.trials(10)
			sizes := []int{64, 256, 1024}
			if cfg.Quick {
				sizes = []int{64, 256}
			}
			var xs, ys []float64
			for _, n := range sizes {
				for _, allZero := range []bool{true, false} {
					detects, falsePos := 0, 0
					var bitsSum float64
					for trial := 0; trial < trials; trial++ {
						rng := rand.New(rand.NewSource(int64(cfg.Seed)*13 + int64(trial)))
						inst := lowerbound.SampleBHM(n, allZero, rng)
						red := lowerbound.Reduce(inst)
						c := comm.Config{N: red.G.N(), Inputs: red.Inputs(),
							Shared: xrand.New(cfg.Seed + uint64(trial) + uint64(n))}
						res, err := protocol.SimLow{Eps: 0.2, AvgDegree: red.G.AvgDegree(), Delta: 0.1,
							Tag: fmt.Sprintf("e6/%d/%v/%d", n, allZero, trial)}.Run(context.Background(), c)
						if err != nil {
							return nil, err
						}
						if res.Found() {
							if allZero {
								detects++
							} else {
								falsePos++
							}
						}
						bitsSum += float64(res.Stats.TotalBits)
					}
					side := "all-ones (triangle-free)"
					if allZero {
						side = "all-zeros (n disjoint triangles)"
					}
					mean := bitsSum / float64(trials)
					graphN := 4*n + 1
					t.AddRow(n, graphN, side, float64(detects)/float64(trials),
						falsePos, mean, mean/math.Sqrt(float64(graphN)))
					if allZero {
						xs = append(xs, float64(graphN))
						ys = append(ys, mean)
					}
				}
			}
			if fit, err := stats.FitPower(xs, ys); err == nil {
				t.AddNote("tester cost fit vs graph n: %s — the Õ(k√n) upper bound meets the Ω(√n) reduction bound", fit)
			}
			t.AddNote("false positives are structurally impossible (one-sided error); detection on the far side is w.h.p.")
			return t, nil
		},
	}
}

// e11Streaming reproduces the §4.2.2 streaming corollary.
func e11Streaming() Experiment {
	return Experiment{
		ID:         "E11",
		Title:      "Streaming triangle-edge detection: success vs space",
		PaperClaim: "§4.2.2: Ω(n^{1/4}) one-pass space via the one-way reduction",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"n", "detector", "space_bits", "success", "trials"}}
			const gamma = 2.0
			trials := cfg.trials(20)
			nParts := []int{250, 500}
			if cfg.Quick {
				nParts = []int{250}
			}
			for _, nPart := range nParts {
				n := 3 * nPart
				for _, capArms := range []int{2, 8, 32, 128} {
					wins := 0
					var space int
					for trial := 0; trial < trials; trial++ {
						rng := rand.New(rand.NewSource(int64(cfg.Seed)*7 + int64(trial)))
						inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: nPart, Gamma: gamma}, rng)
						det := streamred.NewStarDetector(xrand.New(cfg.Seed+uint64(trial)), inst.NPart, capArms, inst.N())
						space = det.SpaceBits()
						var stream streamred.Stream
						stream.Edges = append(stream.Edges, inst.Alice...)
						stream.Edges = append(stream.Edges, inst.Bob...)
						stream.Edges = append(stream.Edges, inst.Charlie...)
						if e, ok := streamred.Drive(det, stream); ok && inst.IsValidOutput(e) {
							wins++
						}
					}
					t.AddRow(n, "star", space, wins, trials)
				}
				t.AddNote("n=%d: n^{1/4}·log n ≈ %.0f bits", n, math.Pow(float64(n), 0.25)*math.Log2(float64(n)))
			}
			return t, nil
		},
	}
}
