package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"tricomm/internal/blocks"
	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/harness/runner"
	"tricomm/internal/partition"
	"tricomm/internal/protocol"
	"tricomm/internal/stats"
	"tricomm/internal/xrand"
)

// planFor declares the canonical sweep-point plan: each trial draws one
// graph with gen, splits it once with pt, and runs every mk-built tester
// over one shared topology, so per-player views are built once per trial
// instead of once per tester per trial. Trial seeds use the historical
// derivation (runner.TrialSeed), keeping tables bit-identical to the
// pre-runner sequential harness.
func planFor(cfg RunConfig, trials int, gen func(rng *rand.Rand) *graph.Graph,
	pt partition.Partitioner, k int, mks ...func(g *graph.Graph, trial int) runner.Tester) runner.Plan {
	return runner.Plan{
		Trials:       trials,
		Seed:         func(trial int) uint64 { return runner.TrialSeed(cfg.Seed, trial) },
		Gen:          gen,
		Partitioner:  pt,
		K:            k,
		Testers:      mks,
		IntraWorkers: cfg.IntraWorkers,
	}
}

// sweep executes one plan per sweep point over a single shared worker
// pool and folds each point's trials — in trial order, so aggregates are
// bit-identical at every worker count — into per-tester aggregators,
// indexed [point][tester].
func sweep(ctx context.Context, cfg RunConfig, plans []runner.Plan) ([][]*stats.TrialAggregator, error) {
	res, err := runner.RunPlans(ctx, cfg.jobs(), plans)
	if err != nil {
		return nil, err
	}
	out := make([][]*stats.TrialAggregator, len(plans))
	for pi, p := range plans {
		aggs := make([]*stats.TrialAggregator, len(p.Testers))
		for i := range aggs {
			aggs[i] = stats.NewTrialAggregator(p.Trials)
		}
		for _, row := range res[pi] {
			for i, r := range row {
				aggs[i].Add(r.Bits, r.Found, r.Phases.All())
			}
		}
		out[pi] = aggs
	}
	return out, nil
}

func farGen(n int, d, eps float64) func(rng *rand.Rand) *graph.Graph {
	return func(rng *rand.Rand) *graph.Graph {
		return graph.FarWithDegree(graph.FarParams{N: n, D: d, Eps: eps}, rng).G
	}
}

// e1Unrestricted reproduces Table 1 row 1: the unrestricted upper bound
// Õ(k·(nd)^{1/4} + k²). The k²·polylog candidate phase dominates at
// feasible n (as the paper's own bound admits), so the table reports the
// candidate/edge phase split and fits the edge phase — the n-dependent
// term — against (nd)^{1/4}.
func e1Unrestricted() Experiment {
	return Experiment{
		ID:         "E1",
		Title:      "Unrestricted tester scaling (coordinator model)",
		PaperClaim: "Table 1 row 1 / Thm 3.20: Õ(k·(nd)^{1/4} + k²) bits, all degrees",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{
				Columns: []string{"n", "d", "k", "eps", "trials", "found", "total_bits", "cand_bits", "edge_bits", "edge/(k·(nd)^1/4)"},
			}
			ns := []int{512, 1024, 2048, 4096}
			if cfg.Quick {
				ns = []int{512, 1024}
			}
			const d, eps, k = 8.0, 0.2, 4
			trials := cfg.trials(3)
			// The sweep: the n sweep at fixed k, then the k sweep at fixed
			// n (the additive k² term). All points feed one worker pool;
			// rows and fits fold in declaration order.
			type point struct {
				n, k int
				tag  string
			}
			var points []point
			for _, n := range ns {
				points = append(points, point{n, k, fmt.Sprintf("e1/%d", n)})
			}
			const kn = 1024
			for _, kk := range []int{2, 4, 8} {
				points = append(points, point{kn, kk, fmt.Sprintf("e1k/%d", kk)})
			}
			plans := make([]runner.Plan, len(points))
			for pi, p := range points {
				plans[pi] = planFor(cfg, trials, farGen(p.n, d, eps), partition.Disjoint{}, p.k,
					func(g *graph.Graph, trial int) runner.Tester {
						return protocol.Unrestricted{Eps: eps, AvgDegree: g.AvgDegree(),
							Tag: fmt.Sprintf("%s/%d", p.tag, trial)}
					})
			}
			aggs, err := sweep(ctx, cfg, plans)
			if err != nil {
				return nil, err
			}
			var xs, ys []float64
			for pi, p := range points {
				a := aggs[pi][0]
				s := a.Summary()
				edge := a.PhaseMeans["edges"]
				norm := edge / (float64(p.k) * math.Pow(float64(p.n)*d, 0.25))
				t.AddRow(p.n, d, p.k, eps, trials, a.Found, s.Mean, a.PhaseMeans["candidates"], edge, norm)
				if pi < len(ns) {
					xs = append(xs, float64(p.n)*d)
					ys = append(ys, edge+1)
				}
			}
			if fit, err := stats.FitPower(xs, ys); err == nil {
				t.AddNote("edge-phase fit vs nd: %s (paper predicts exponent 0.25)", fit)
			}
			t.AddNote("candidate phase is the k²·polylog additive term and dominates at these n, as the bound allows")
			return t, nil
		},
	}
}

// e2aSimLow reproduces Table 1 row 2, low-degree side: Õ(k·√n).
func e2aSimLow() Experiment {
	return Experiment{
		ID:         "E2a",
		Title:      "Simultaneous tester, low degree d = O(√n)",
		PaperClaim: "Table 1 row 2 / Thm 3.26: Õ(k·√n) bits for d = O(√n)",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"n", "d", "k", "trials", "found", "bits", "bits/(k·√n)", "bits/(k·√n·lg n)"}}
			ns := []int{1024, 4096, 16384, 65536}
			if cfg.Quick {
				ns = []int{1024, 4096}
			}
			const d, eps, k = 8.0, 0.2, 8
			trials := cfg.trials(3)
			plans := make([]runner.Plan, len(ns))
			for ni, n := range ns {
				plans[ni] = planFor(cfg, trials, farGen(n, d, eps), partition.Disjoint{}, k,
					func(g *graph.Graph, trial int) runner.Tester {
						return protocol.SimLow{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1,
							Tag: fmt.Sprintf("e2a/%d/%d", n, trial)}
					})
			}
			aggs, err := sweep(ctx, cfg, plans)
			if err != nil {
				return nil, err
			}
			var xs, ys []float64
			for ni, n := range ns {
				a := aggs[ni][0]
				s := a.Summary()
				norm := s.Mean / (float64(k) * math.Sqrt(float64(n)))
				t.AddRow(n, d, k, trials, a.Found, s.Mean, norm, norm/math.Log2(float64(n)))
				xs = append(xs, float64(n))
				ys = append(ys, s.Mean)
			}
			if fit, err := stats.FitPower(xs, ys); err == nil {
				t.AddNote("fit bits vs n: %s (paper predicts exponent 0.5 up to the Õ log factors; the lg-normalized column is ~constant)", fit)
			}
			return t, nil
		},
	}
}

// e2bSimHigh reproduces Table 1 row 2, high-degree side: Õ(k·(nd)^{1/3}).
func e2bSimHigh() Experiment {
	return Experiment{
		ID:         "E2b",
		Title:      "Simultaneous tester, high degree d = Ω(√n)",
		PaperClaim: "Table 1 row 2 / Thm 3.24: Õ(k·(nd)^{1/3}) bits for d = Ω(√n)",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"n", "d", "k", "trials", "found", "bits", "bits/(k·(nd)^1/3)", "bits/(k·(nd)^1/3·lg n)"}}
			ns := []int{1024, 4096, 16384}
			if cfg.Quick {
				ns = []int{1024, 4096}
			}
			const eps, k = 0.2, 8
			trials := cfg.trials(3)
			degree := func(n int) float64 { return math.Sqrt(float64(n)) * 2 } // d = 2√n, inside the regime
			plans := make([]runner.Plan, len(ns))
			for ni, n := range ns {
				plans[ni] = planFor(cfg, trials, farGen(n, degree(n), eps), partition.Disjoint{}, k,
					func(g *graph.Graph, trial int) runner.Tester {
						return protocol.SimHigh{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1,
							Tag: fmt.Sprintf("e2b/%d/%d", n, trial)}
					})
			}
			aggs, err := sweep(ctx, cfg, plans)
			if err != nil {
				return nil, err
			}
			var xs, ys []float64
			for ni, n := range ns {
				d := degree(n)
				a := aggs[ni][0]
				s := a.Summary()
				norm := s.Mean / (float64(k) * math.Cbrt(float64(n)*d))
				t.AddRow(n, d, k, trials, a.Found, s.Mean, norm, norm/math.Log2(float64(n)))
				xs = append(xs, float64(n)*d)
				ys = append(ys, s.Mean)
			}
			if fit, err := stats.FitPower(xs, ys); err == nil {
				t.AddNote("fit bits vs nd: %s (paper predicts exponent 1/3 ≈ 0.333 up to Õ log factors; the lg-normalized column is ~constant)", fit)
			}
			return t, nil
		},
	}
}

// e2cOblivious reproduces §3.4.3: one degree-oblivious simultaneous
// protocol matching both regimes up to polylog factors.
func e2cOblivious() Experiment {
	return Experiment{
		ID:         "E2c",
		Title:      "Degree-oblivious simultaneous tester vs degree-aware",
		PaperClaim: "Thm 3.32 / Alg 11: one protocol, Õ(k√n) for d=O(√n) and Õ(k(nd)^{1/3}) for d=Ω(√n), d unknown",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"regime", "n", "d", "k", "trials", "found", "obl_bits", "aware_bits", "ratio"}}
			const eps, k = 0.2, 8
			trials := cfg.trials(3)
			type pt struct {
				regime string
				n      int
				d      float64
			}
			points := []pt{
				{"low", 4096, 8},
				{"low", 16384, 8},
				{"high", 4096, 128},
				{"high", 16384, 256},
			}
			if cfg.Quick {
				points = []pt{{"low", 4096, 8}, {"high", 4096, 128}}
			}
			plans := make([]runner.Plan, len(points))
			for pi, p := range points {
				// One topology per trial serves both testers.
				plans[pi] = planFor(cfg, trials, farGen(p.n, p.d, eps), partition.Disjoint{}, k,
					func(g *graph.Graph, trial int) runner.Tester {
						return protocol.SimOblivious{Eps: eps, Delta: 0.1,
							Tag: fmt.Sprintf("e2c/%s/%d/%d", p.regime, p.n, trial)}
					},
					func(g *graph.Graph, trial int) runner.Tester {
						if p.regime == "low" {
							return protocol.SimLow{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1,
								Tag: fmt.Sprintf("e2ca/%d/%d", p.n, trial)}
						}
						return protocol.SimHigh{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1,
							Tag: fmt.Sprintf("e2ca/%d/%d", p.n, trial)}
					})
			}
			aggs, err := sweep(ctx, cfg, plans)
			if err != nil {
				return nil, err
			}
			for pi, p := range points {
				so, sa := aggs[pi][0].Summary(), aggs[pi][1].Summary()
				t.AddRow(p.regime, p.n, p.d, k, trials, aggs[pi][0].Found, so.Mean, sa.Mean, so.Mean/sa.Mean)
			}
			t.AddNote("oblivious overhead over degree-aware is the paper's O(log k · log n)-ish factor")
			return t, nil
		},
	}
}

// e7TestingVsExact reproduces the §5 headline claim.
func e7TestingVsExact() Experiment {
	return Experiment{
		ID:         "E7",
		Title:      "Property testing vs exact detection",
		PaperClaim: "§5 vs [38]: exact needs Ω(k·nd) bits; testing needs Õ(k·(nd)^{1/4}+k²) / Õ(k√n)",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"n", "d", "k", "exact_bits", "unrestricted_bits", "sim_obl_bits", "exact/unrestricted", "exact/sim"}}
			const eps = 0.2
			trials := cfg.trials(3)
			points := [][2]int{{2048, 16}, {4096, 16}}
			if cfg.Quick {
				points = [][2]int{{2048, 16}}
			}
			plans := make([]runner.Plan, len(points))
			for pi, p := range points {
				n, d := p[0], float64(p[1])
				// All three testers share each trial's instance and topology.
				plans[pi] = planFor(cfg, trials, farGen(n, d, eps), partition.Disjoint{}, 4,
					func(g *graph.Graph, trial int) runner.Tester { return protocol.ExactBaseline{} },
					func(g *graph.Graph, trial int) runner.Tester {
						return protocol.Unrestricted{Eps: eps, AvgDegree: g.AvgDegree(),
							Tag: fmt.Sprintf("e7u/%d/%d", n, trial)}
					},
					func(g *graph.Graph, trial int) runner.Tester {
						return protocol.SimOblivious{Eps: eps, Delta: 0.1,
							Tag: fmt.Sprintf("e7s/%d/%d", n, trial)}
					})
			}
			aggs, err := sweep(ctx, cfg, plans)
			if err != nil {
				return nil, err
			}
			for pi, p := range points {
				se, su, ss := aggs[pi][0].Summary(), aggs[pi][1].Summary(), aggs[pi][2].Summary()
				t.AddRow(p[0], p[1], 4, se.Mean, su.Mean, ss.Mean, se.Mean/su.Mean, se.Mean/ss.Mean)
			}
			t.AddNote("testing wins and its advantage grows with nd; exact cost is Θ(k·nd·log n) by construction")
			return t, nil
		},
	}
}

// e8Blackboard reproduces Thm 3.23: blackboard saves a factor ~k on the
// edge phase.
func e8Blackboard() Experiment {
	return Experiment{
		ID:         "E8",
		Title:      "Coordinator vs blackboard unrestricted tester",
		PaperClaim: "Thm 3.23: blackboard model gives Õ((nd)^{1/4} + k²) (factor-k saving on edges)",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"k", "n", "d", "coord_bits", "board_bits", "coord/board"}}
			const n, d, eps = 1024, 8.0, 0.2
			trials := cfg.trials(3)
			ks := []int{2, 4, 8, 16}
			if cfg.Quick {
				ks = []int{2, 8}
			}
			plans := make([]runner.Plan, len(ks))
			for ki, k := range ks {
				// Coordinator and blackboard variants share each trial's
				// instance and topology.
				plans[ki] = planFor(cfg, trials, farGen(n, d, eps), partition.Duplicate{Q: 0.5}, k,
					func(g *graph.Graph, trial int) runner.Tester {
						return protocol.Unrestricted{Eps: eps, AvgDegree: g.AvgDegree(),
							Tag: fmt.Sprintf("e8c/%d/%d", k, trial)}
					},
					func(g *graph.Graph, trial int) runner.Tester {
						return protocol.UnrestrictedBlackboard{Eps: eps, AvgDegree: g.AvgDegree(),
							Tag: fmt.Sprintf("e8b/%d/%d", k, trial)}
					})
			}
			aggs, err := sweep(ctx, cfg, plans)
			if err != nil {
				return nil, err
			}
			for ki, k := range ks {
				sc, sb := aggs[ki][0].Summary(), aggs[ki][1].Summary()
				t.AddRow(k, n, d, sc.Mean, sb.Mean, sc.Mean/sb.Mean)
			}
			t.AddNote("the coordinator/blackboard ratio grows with k, as predicted")
			return t, nil
		},
	}
}

// e9ApproxDegree reproduces the §3.1 building-block costs.
func e9ApproxDegree() Experiment {
	return Experiment{
		ID:         "E9",
		Title:      "Degree approximation: duplication vs no-duplication",
		PaperClaim: "Thm 3.1: Õ(k) with duplication; Lemma 3.2: O(k·log log d) without",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"true_deg", "k", "dup_bits", "dup_est", "nodup_bits", "nodup_est"}}
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + 1))
			g := graph.BucketStress(graph.BucketStressParams{N: 4000, Levels: 5, HubsPer: 2, TriLevel: 1}, rng)
			const k = 6
			// One hub per level.
			targets := map[int]int{} // degree -> vertex
			for v := 0; v < g.N(); v++ {
				d := g.Degree(v)
				if d >= 2 {
					if _, ok := targets[d]; !ok {
						targets[d] = v
					}
				}
			}
			degs := []int{2, 6, 18, 54, 162}
			type row struct {
				ok                 bool
				dupBits, nodupBits int64
				dupEst, nodupEst   float64
			}
			rows, err := runner.Map(ctx, cfg.jobs(), len(degs), func(ctx context.Context, di int) (row, error) {
				wantDeg := degs[di]
				v, ok := targets[wantDeg]
				if !ok {
					return row{}, nil
				}
				var r row
				r.ok = true
				shared := xrand.New(cfg.Seed + uint64(wantDeg))
				// Duplication-tolerant estimator on a duplicated partition.
				pd := partition.Duplicate{Q: 0.5}.Split(g, k, shared)
				_, err := comm.Run(ctx,
					comm.Config{N: g.N(), Inputs: pd.Inputs, Shared: shared},
					func(ctx context.Context, c *comm.Coordinator) error {
						est, err := blocks.ApproxDegree(ctx, c, v, blocks.DefaultApprox(fmt.Sprintf("e9/%d", v)))
						if err != nil {
							return err
						}
						r.dupEst = est
						r.dupBits = c.Stats().TotalBits
						return nil
					}, comm.ServeLoop(blocks.Handle))
				if err != nil {
					return row{}, err
				}
				// No-duplication estimator on a disjoint partition.
				pn := partition.Disjoint{}.Split(g, k, shared)
				_, err = comm.Run(ctx,
					comm.Config{N: g.N(), Inputs: pn.Inputs, Shared: shared},
					func(ctx context.Context, c *comm.Coordinator) error {
						est, err := blocks.ApproxDegreeNoDup(ctx, c, v, 3)
						if err != nil {
							return err
						}
						r.nodupEst = est
						r.nodupBits = c.Stats().TotalBits
						return nil
					}, comm.ServeLoop(blocks.Handle))
				if err != nil {
					return row{}, err
				}
				return r, nil
			})
			if err != nil {
				return nil, err
			}
			for di, r := range rows {
				if !r.ok {
					continue
				}
				t.AddRow(degs[di], k, r.dupBits, r.dupEst, r.nodupBits, r.nodupEst)
			}
			t.AddNote("no-dup costs O(k·log log d) bits and is deterministic; dup pays the sampling rounds")
			return t, nil
		},
	}
}

// e10NoDup reproduces Corollaries 3.25/3.27: without duplication the
// simultaneous protocols save a factor of k in total bits (w.h.p.).
func e10NoDup() Experiment {
	return Experiment{
		ID:         "E10",
		Title:      "Simultaneous testers: duplication vs none",
		PaperClaim: "Cor 3.25/3.27: total cost O((nd)^{1/3}) resp. O(√n) without duplication (k-fold saving)",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"protocol", "partition", "n", "d", "k", "total_bits", "max_player_bits"}}
			const n, eps, k = 4096, 0.2, 8
			trials := cfg.trials(3)
			type block struct {
				proto string
				d     float64
				pt    partition.Partitioner
			}
			var bs []block
			for _, tc := range []struct {
				proto string
				d     float64
			}{{"sim-low", 8}, {"sim-high", 128}} {
				for _, pt := range []partition.Partitioner{partition.Disjoint{}, partition.All{}} {
					bs = append(bs, block{tc.proto, tc.d, pt})
				}
			}
			plans := make([]runner.Plan, len(bs))
			for bi, b := range bs {
				plans[bi] = runner.Plan{
					Trials:       trials,
					IntraWorkers: cfg.IntraWorkers,
					Seed:         func(trial int) uint64 { return cfg.Seed*31 + uint64(trial) },
					Gen: func(rng *rand.Rand) *graph.Graph {
						return graph.FarWithDegree(graph.FarParams{N: n, D: b.d, Eps: eps}, rng).G
					},
					Partitioner: b.pt,
					K:           k,
					Testers: []func(g *graph.Graph, trial int) runner.Tester{
						func(g *graph.Graph, trial int) runner.Tester {
							if b.proto == "sim-low" {
								return protocol.SimLow{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1,
									Tag: fmt.Sprintf("e10/%s/%d", b.pt.Name(), trial)}
							}
							return protocol.SimHigh{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1,
								Tag: fmt.Sprintf("e10/%s/%d", b.pt.Name(), trial)}
						},
					},
				}
			}
			res, err := runner.RunPlans(ctx, cfg.jobs(), plans)
			if err != nil {
				return nil, err
			}
			for bi, b := range bs {
				var totals, maxs []float64
				for _, trial := range res[bi] {
					totals = append(totals, float64(trial[0].Bits))
					maxs = append(maxs, float64(trial[0].MaxPlayerBits))
				}
				t.AddRow(b.proto, b.pt.Name(), n, b.d, k,
					stats.Summarize(totals).Mean, stats.Summarize(maxs).Mean)
			}
			t.AddNote("disjoint total ≈ all-duplicated total / k (each sampled edge sent once instead of k times)")
			return t, nil
		},
	}
}
