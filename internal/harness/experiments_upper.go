package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"tricomm/internal/blocks"
	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/partition"
	"tricomm/internal/protocol"
	"tricomm/internal/stats"
	"tricomm/internal/xrand"
)

// tester abstracts the protocols for sweep helpers. Protocols run over a
// reusable comm.Topology so that sweeps comparing several testers on the
// same instance build each player view once.
type tester interface {
	Name() string
	RunOn(ctx context.Context, top *comm.Topology) (protocol.Result, error)
}

// measured aggregates one tester's results over a sweep's trials.
type measured struct {
	// bits is the per-trial total communication.
	bits []float64
	// found counts the trials that exhibited a triangle.
	found int
	// phases is the mean per-phase bit attribution.
	phases map[string]float64
}

// measureMulti runs several testers on the same instances: for each of
// `trials` trials it draws one graph with gen, splits it once with pt, and
// runs every mk-built tester over one shared topology, so the per-player
// views are built once per trial instead of once per tester per trial.
func measureMulti(cfg RunConfig, trials int, gen func(rng *rand.Rand) *graph.Graph,
	pt partition.Partitioner, k int, mks []func(g *graph.Graph, trial int) tester) ([]measured, error) {
	out := make([]measured, len(mks))
	for i := range out {
		out[i].phases = map[string]float64{}
	}
	for trial := 0; trial < trials; trial++ {
		seed := cfg.Seed*1_000_003 + uint64(trial)*7919
		rng := rand.New(rand.NewSource(int64(seed)))
		g := gen(rng)
		shared := xrand.New(seed)
		p := pt.Split(g, k, shared)
		top, err := comm.NewTopology(g.N(), p.Inputs, shared)
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", trial, err)
		}
		for i, mk := range mks {
			res, rerr := mk(g, trial).RunOn(context.Background(), top)
			if rerr != nil {
				return nil, fmt.Errorf("trial %d: %w", trial, rerr)
			}
			out[i].bits = append(out[i].bits, float64(res.Stats.TotalBits))
			if res.Found() {
				out[i].found++
			}
			for name, v := range res.Phases {
				out[i].phases[name] += float64(v) / float64(trials)
			}
		}
	}
	return out, nil
}

// measure runs a single tester `trials` times on fresh instances drawn by
// gen and returns per-trial total bits and the number of successful
// detections.
func measure(cfg RunConfig, trials int, gen func(rng *rand.Rand) *graph.Graph,
	pt partition.Partitioner, k int, mk func(g *graph.Graph, trial int) tester) (bits []float64, found int, phases map[string]float64, err error) {
	out, err := measureMulti(cfg, trials, gen, pt, k, []func(g *graph.Graph, trial int) tester{mk})
	if err != nil {
		return nil, 0, nil, err
	}
	return out[0].bits, out[0].found, out[0].phases, nil
}

func farGen(n int, d, eps float64) func(rng *rand.Rand) *graph.Graph {
	return func(rng *rand.Rand) *graph.Graph {
		return graph.FarWithDegree(graph.FarParams{N: n, D: d, Eps: eps}, rng).G
	}
}

// e1Unrestricted reproduces Table 1 row 1: the unrestricted upper bound
// Õ(k·(nd)^{1/4} + k²). The k²·polylog candidate phase dominates at
// feasible n (as the paper's own bound admits), so the table reports the
// candidate/edge phase split and fits the edge phase — the n-dependent
// term — against (nd)^{1/4}.
func e1Unrestricted() Experiment {
	return Experiment{
		ID:         "E1",
		Title:      "Unrestricted tester scaling (coordinator model)",
		PaperClaim: "Table 1 row 1 / Thm 3.20: Õ(k·(nd)^{1/4} + k²) bits, all degrees",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				Columns: []string{"n", "d", "k", "eps", "trials", "found", "total_bits", "cand_bits", "edge_bits", "edge/(k·(nd)^1/4)"},
			}
			ns := []int{512, 1024, 2048, 4096}
			if cfg.Quick {
				ns = []int{512, 1024}
			}
			const d, eps, k = 8.0, 0.2, 4
			trials := cfg.trials(3)
			var xs, ys []float64
			for _, n := range ns {
				bits, found, phases, err := measure(cfg, trials, farGen(n, d, eps),
					partition.Disjoint{}, k, func(g *graph.Graph, trial int) tester {
						return protocol.Unrestricted{Eps: eps, AvgDegree: g.AvgDegree(),
							Tag: fmt.Sprintf("e1/%d/%d", n, trial)}
					})
				if err != nil {
					return nil, err
				}
				s := stats.Summarize(bits)
				edge := phases["edges"]
				norm := edge / (float64(k) * math.Pow(float64(n)*d, 0.25))
				t.AddRow(n, d, k, eps, trials, found, s.Mean, phases["candidates"], edge, norm)
				xs = append(xs, float64(n)*d)
				ys = append(ys, edge+1)
			}
			if fit, err := stats.FitPower(xs, ys); err == nil {
				t.AddNote("edge-phase fit vs nd: %s (paper predicts exponent 0.25)", fit)
			}
			// k sweep at fixed n: the additive k² term.
			const n = 1024
			for _, kk := range []int{2, 4, 8} {
				bits, found, phases, err := measure(cfg, trials, farGen(n, d, eps),
					partition.Disjoint{}, kk, func(g *graph.Graph, trial int) tester {
						return protocol.Unrestricted{Eps: eps, AvgDegree: g.AvgDegree(),
							Tag: fmt.Sprintf("e1k/%d/%d", kk, trial)}
					})
				if err != nil {
					return nil, err
				}
				s := stats.Summarize(bits)
				edge := phases["edges"]
				norm := edge / (float64(kk) * math.Pow(float64(n)*d, 0.25))
				t.AddRow(n, d, kk, eps, trials, found, s.Mean, phases["candidates"], edge, norm)
			}
			t.AddNote("candidate phase is the k²·polylog additive term and dominates at these n, as the bound allows")
			return t, nil
		},
	}
}

// e2aSimLow reproduces Table 1 row 2, low-degree side: Õ(k·√n).
func e2aSimLow() Experiment {
	return Experiment{
		ID:         "E2a",
		Title:      "Simultaneous tester, low degree d = O(√n)",
		PaperClaim: "Table 1 row 2 / Thm 3.26: Õ(k·√n) bits for d = O(√n)",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"n", "d", "k", "trials", "found", "bits", "bits/(k·√n)", "bits/(k·√n·lg n)"}}
			ns := []int{1024, 4096, 16384, 65536}
			if cfg.Quick {
				ns = []int{1024, 4096}
			}
			const d, eps, k = 8.0, 0.2, 8
			trials := cfg.trials(3)
			var xs, ys []float64
			for _, n := range ns {
				bits, found, _, err := measure(cfg, trials, farGen(n, d, eps),
					partition.Disjoint{}, k, func(g *graph.Graph, trial int) tester {
						return protocol.SimLow{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1,
							Tag: fmt.Sprintf("e2a/%d/%d", n, trial)}
					})
				if err != nil {
					return nil, err
				}
				s := stats.Summarize(bits)
				norm := s.Mean / (float64(k) * math.Sqrt(float64(n)))
				t.AddRow(n, d, k, trials, found, s.Mean, norm, norm/math.Log2(float64(n)))
				xs = append(xs, float64(n))
				ys = append(ys, s.Mean)
			}
			if fit, err := stats.FitPower(xs, ys); err == nil {
				t.AddNote("fit bits vs n: %s (paper predicts exponent 0.5 up to the Õ log factors; the lg-normalized column is ~constant)", fit)
			}
			return t, nil
		},
	}
}

// e2bSimHigh reproduces Table 1 row 2, high-degree side: Õ(k·(nd)^{1/3}).
func e2bSimHigh() Experiment {
	return Experiment{
		ID:         "E2b",
		Title:      "Simultaneous tester, high degree d = Ω(√n)",
		PaperClaim: "Table 1 row 2 / Thm 3.24: Õ(k·(nd)^{1/3}) bits for d = Ω(√n)",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"n", "d", "k", "trials", "found", "bits", "bits/(k·(nd)^1/3)", "bits/(k·(nd)^1/3·lg n)"}}
			ns := []int{1024, 4096, 16384}
			if cfg.Quick {
				ns = []int{1024, 4096}
			}
			const eps, k = 0.2, 8
			trials := cfg.trials(3)
			var xs, ys []float64
			for _, n := range ns {
				d := math.Sqrt(float64(n)) * 2 // d = 2√n, inside the regime
				bits, found, _, err := measure(cfg, trials, farGen(n, d, eps),
					partition.Disjoint{}, k, func(g *graph.Graph, trial int) tester {
						return protocol.SimHigh{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1,
							Tag: fmt.Sprintf("e2b/%d/%d", n, trial)}
					})
				if err != nil {
					return nil, err
				}
				s := stats.Summarize(bits)
				norm := s.Mean / (float64(k) * math.Cbrt(float64(n)*d))
				t.AddRow(n, d, k, trials, found, s.Mean, norm, norm/math.Log2(float64(n)))
				xs = append(xs, float64(n)*d)
				ys = append(ys, s.Mean)
			}
			if fit, err := stats.FitPower(xs, ys); err == nil {
				t.AddNote("fit bits vs nd: %s (paper predicts exponent 1/3 ≈ 0.333 up to Õ log factors; the lg-normalized column is ~constant)", fit)
			}
			return t, nil
		},
	}
}

// e2cOblivious reproduces §3.4.3: one degree-oblivious simultaneous
// protocol matching both regimes up to polylog factors.
func e2cOblivious() Experiment {
	return Experiment{
		ID:         "E2c",
		Title:      "Degree-oblivious simultaneous tester vs degree-aware",
		PaperClaim: "Thm 3.32 / Alg 11: one protocol, Õ(k√n) for d=O(√n) and Õ(k(nd)^{1/3}) for d=Ω(√n), d unknown",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"regime", "n", "d", "k", "trials", "found", "obl_bits", "aware_bits", "ratio"}}
			const eps, k = 0.2, 8
			trials := cfg.trials(3)
			type pt struct {
				regime string
				n      int
				d      float64
			}
			points := []pt{
				{"low", 4096, 8},
				{"low", 16384, 8},
				{"high", 4096, 128},
				{"high", 16384, 256},
			}
			if cfg.Quick {
				points = []pt{{"low", 4096, 8}, {"high", 4096, 128}}
			}
			for _, p := range points {
				// One topology per trial serves both testers.
				res, err := measureMulti(cfg, trials, farGen(p.n, p.d, eps),
					partition.Disjoint{}, k, []func(g *graph.Graph, trial int) tester{
						func(g *graph.Graph, trial int) tester {
							return protocol.SimOblivious{Eps: eps, Delta: 0.1,
								Tag: fmt.Sprintf("e2c/%s/%d/%d", p.regime, p.n, trial)}
						},
						func(g *graph.Graph, trial int) tester {
							if p.regime == "low" {
								return protocol.SimLow{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1,
									Tag: fmt.Sprintf("e2ca/%d/%d", p.n, trial)}
							}
							return protocol.SimHigh{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1,
								Tag: fmt.Sprintf("e2ca/%d/%d", p.n, trial)}
						},
					})
				if err != nil {
					return nil, err
				}
				so, sa := stats.Summarize(res[0].bits), stats.Summarize(res[1].bits)
				t.AddRow(p.regime, p.n, p.d, k, trials, res[0].found, so.Mean, sa.Mean, so.Mean/sa.Mean)
			}
			t.AddNote("oblivious overhead over degree-aware is the paper's O(log k · log n)-ish factor")
			return t, nil
		},
	}
}

// e7TestingVsExact reproduces the §5 headline claim.
func e7TestingVsExact() Experiment {
	return Experiment{
		ID:         "E7",
		Title:      "Property testing vs exact detection",
		PaperClaim: "§5 vs [38]: exact needs Ω(k·nd) bits; testing needs Õ(k·(nd)^{1/4}+k²) / Õ(k√n)",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"n", "d", "k", "exact_bits", "unrestricted_bits", "sim_obl_bits", "exact/unrestricted", "exact/sim"}}
			const eps = 0.2
			trials := cfg.trials(3)
			points := [][2]int{{2048, 16}, {4096, 16}}
			if cfg.Quick {
				points = [][2]int{{2048, 16}}
			}
			for _, p := range points {
				n, d := p[0], float64(p[1])
				// All three testers share each trial's instance and topology.
				res, err := measureMulti(cfg, trials, farGen(n, d, eps),
					partition.Disjoint{}, 4, []func(g *graph.Graph, trial int) tester{
						func(g *graph.Graph, trial int) tester { return protocol.ExactBaseline{} },
						func(g *graph.Graph, trial int) tester {
							return protocol.Unrestricted{Eps: eps, AvgDegree: g.AvgDegree(),
								Tag: fmt.Sprintf("e7u/%d/%d", n, trial)}
						},
						func(g *graph.Graph, trial int) tester {
							return protocol.SimOblivious{Eps: eps, Delta: 0.1,
								Tag: fmt.Sprintf("e7s/%d/%d", n, trial)}
						},
					})
				if err != nil {
					return nil, err
				}
				se, su, ss := stats.Summarize(res[0].bits), stats.Summarize(res[1].bits), stats.Summarize(res[2].bits)
				t.AddRow(n, d, 4, se.Mean, su.Mean, ss.Mean, se.Mean/su.Mean, se.Mean/ss.Mean)
			}
			t.AddNote("testing wins and its advantage grows with nd; exact cost is Θ(k·nd·log n) by construction")
			return t, nil
		},
	}
}

// e8Blackboard reproduces Thm 3.23: blackboard saves a factor ~k on the
// edge phase.
func e8Blackboard() Experiment {
	return Experiment{
		ID:         "E8",
		Title:      "Coordinator vs blackboard unrestricted tester",
		PaperClaim: "Thm 3.23: blackboard model gives Õ((nd)^{1/4} + k²) (factor-k saving on edges)",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"k", "n", "d", "coord_bits", "board_bits", "coord/board"}}
			const n, d, eps = 1024, 8.0, 0.2
			trials := cfg.trials(3)
			ks := []int{2, 4, 8, 16}
			if cfg.Quick {
				ks = []int{2, 8}
			}
			for _, k := range ks {
				// Coordinator and blackboard variants share each trial's
				// instance and topology.
				res, err := measureMulti(cfg, trials, farGen(n, d, eps),
					partition.Duplicate{Q: 0.5}, k, []func(g *graph.Graph, trial int) tester{
						func(g *graph.Graph, trial int) tester {
							return protocol.Unrestricted{Eps: eps, AvgDegree: g.AvgDegree(),
								Tag: fmt.Sprintf("e8c/%d/%d", k, trial)}
						},
						func(g *graph.Graph, trial int) tester {
							return protocol.UnrestrictedBlackboard{Eps: eps, AvgDegree: g.AvgDegree(),
								Tag: fmt.Sprintf("e8b/%d/%d", k, trial)}
						},
					})
				if err != nil {
					return nil, err
				}
				sc, sb := stats.Summarize(res[0].bits), stats.Summarize(res[1].bits)
				t.AddRow(k, n, d, sc.Mean, sb.Mean, sc.Mean/sb.Mean)
			}
			t.AddNote("the coordinator/blackboard ratio grows with k, as predicted")
			return t, nil
		},
	}
}

// e9ApproxDegree reproduces the §3.1 building-block costs.
func e9ApproxDegree() Experiment {
	return Experiment{
		ID:         "E9",
		Title:      "Degree approximation: duplication vs no-duplication",
		PaperClaim: "Thm 3.1: Õ(k) with duplication; Lemma 3.2: O(k·log log d) without",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"true_deg", "k", "dup_bits", "dup_est", "nodup_bits", "nodup_est"}}
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + 1))
			g := graph.BucketStress(graph.BucketStressParams{N: 4000, Levels: 5, HubsPer: 2, TriLevel: 1}, rng)
			const k = 6
			// One hub per level.
			targets := map[int]int{} // degree -> vertex
			for v := 0; v < g.N(); v++ {
				d := g.Degree(v)
				if d >= 2 {
					if _, ok := targets[d]; !ok {
						targets[d] = v
					}
				}
			}
			degs := []int{2, 6, 18, 54, 162}
			for _, wantDeg := range degs {
				v, ok := targets[wantDeg]
				if !ok {
					continue
				}
				shared := xrand.New(cfg.Seed + uint64(wantDeg))
				// Duplication-tolerant estimator on a duplicated partition.
				pd := partition.Duplicate{Q: 0.5}.Split(g, k, shared)
				var dupBits int64
				var dupEst float64
				_, err := comm.Run(context.Background(),
					comm.Config{N: g.N(), Inputs: pd.Inputs, Shared: shared},
					func(ctx context.Context, c *comm.Coordinator) error {
						est, err := blocks.ApproxDegree(ctx, c, v, blocks.DefaultApprox(fmt.Sprintf("e9/%d", v)))
						if err != nil {
							return err
						}
						dupEst = est
						dupBits = c.Stats().TotalBits
						return nil
					}, comm.ServeLoop(blocks.Handle))
				if err != nil {
					return nil, err
				}
				// No-duplication estimator on a disjoint partition.
				pn := partition.Disjoint{}.Split(g, k, shared)
				var nodupBits int64
				var nodupEst float64
				_, err = comm.Run(context.Background(),
					comm.Config{N: g.N(), Inputs: pn.Inputs, Shared: shared},
					func(ctx context.Context, c *comm.Coordinator) error {
						est, err := blocks.ApproxDegreeNoDup(ctx, c, v, 3)
						if err != nil {
							return err
						}
						nodupEst = est
						nodupBits = c.Stats().TotalBits
						return nil
					}, comm.ServeLoop(blocks.Handle))
				if err != nil {
					return nil, err
				}
				t.AddRow(wantDeg, k, dupBits, dupEst, nodupBits, nodupEst)
			}
			t.AddNote("no-dup costs O(k·log log d) bits and is deterministic; dup pays the sampling rounds")
			return t, nil
		},
	}
}

// e10NoDup reproduces Corollaries 3.25/3.27: without duplication the
// simultaneous protocols save a factor of k in total bits (w.h.p.).
func e10NoDup() Experiment {
	return Experiment{
		ID:         "E10",
		Title:      "Simultaneous testers: duplication vs none",
		PaperClaim: "Cor 3.25/3.27: total cost O((nd)^{1/3}) resp. O(√n) without duplication (k-fold saving)",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"protocol", "partition", "n", "d", "k", "total_bits", "max_player_bits"}}
			const n, eps, k = 4096, 0.2, 8
			trials := cfg.trials(3)
			for _, tc := range []struct {
				proto string
				d     float64
			}{{"sim-low", 8}, {"sim-high", 128}} {
				for _, pt := range []partition.Partitioner{partition.Disjoint{}, partition.All{}} {
					var totals, maxs []float64
					for trial := 0; trial < trials; trial++ {
						seed := cfg.Seed*31 + uint64(trial)
						rng := rand.New(rand.NewSource(int64(seed)))
						g := graph.FarWithDegree(graph.FarParams{N: n, D: tc.d, Eps: eps}, rng).G
						shared := xrand.New(seed)
						p := pt.Split(g, k, shared)
						top, err := comm.NewTopology(g.N(), p.Inputs, shared)
						if err != nil {
							return nil, err
						}
						var tst tester
						if tc.proto == "sim-low" {
							tst = protocol.SimLow{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1,
								Tag: fmt.Sprintf("e10/%s/%d", pt.Name(), trial)}
						} else {
							tst = protocol.SimHigh{Eps: eps, AvgDegree: g.AvgDegree(), Delta: 0.1,
								Tag: fmt.Sprintf("e10/%s/%d", pt.Name(), trial)}
						}
						res, err := tst.RunOn(context.Background(), top)
						if err != nil {
							return nil, err
						}
						totals = append(totals, float64(res.Stats.TotalBits))
						maxs = append(maxs, float64(res.Stats.MaxPlayerBits()))
					}
					t.AddRow(tc.proto, pt.Name(), n, tc.d, k,
						stats.Summarize(totals).Mean, stats.Summarize(maxs).Mean)
				}
			}
			t.AddNote("disjoint total ≈ all-duplicated total / k (each sampled edge sent once instead of k times)")
			return t, nil
		},
	}
}
