package harness

import (
	"context"
	"fmt"
	"math/rand"

	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/partition"
	"tricomm/internal/protocol"
	"tricomm/internal/stats"
	"tricomm/internal/xrand"
)

// e12Behrend exercises the triangle-sparse hard instances the paper's §5
// points to for future dense lower bounds: Behrend graphs, where every
// edge lies on exactly one triangle. The testers must still succeed —
// the instances are exactly 1/3-far — but they get no help from
// triangle-rich neighborhoods.
func e12Behrend() Experiment {
	return Experiment{
		ID:         "E12",
		Title:      "Behrend instances: triangle-sparse vs triangle-dense ε-far inputs",
		PaperClaim: "§5 outlook: Behrend graphs as the expected hard dense inputs; testers must stay complete on them",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"generator", "n", "d", "eps", "protocol", "trials", "found", "bits"}}
			trials := cfg.trials(5)
			ms := []int{243, 729}
			if cfg.Quick {
				ms = []int{243}
			}
			for _, m := range ms {
				bg := graph.NewBehrendGraph(m)
				n := bg.G.N()
				d := bg.G.AvgDegree()
				// A triangle-dense control with the same n, d and (nearly)
				// the same ε — 0.32 rather than exactly 1/3 so block
				// rounding stays inside the edge budget.
				control := func(rng *rand.Rand) *graph.Graph {
					return graph.FarWithDegree(graph.FarParams{N: n, D: d, Eps: 0.32}, rng).G
				}
				for _, gen := range []struct {
					name string
					mk   func(rng *rand.Rand) *graph.Graph
				}{
					{"behrend", func(*rand.Rand) *graph.Graph { return bg.G }},
					{"kaaa-planted", control},
				} {
					for _, proto := range []string{"sim-high", "unrestricted"} {
						var bits []float64
						found := 0
						for trial := 0; trial < trials; trial++ {
							seed := cfg.Seed*313 + uint64(trial)
							rng := rand.New(rand.NewSource(int64(seed)))
							g := gen.mk(rng)
							shared := xrand.New(seed)
							p := partition.Disjoint{}.Split(g, 4, shared)
							top, err := comm.NewTopology(g.N(), p.Inputs, shared)
							if err != nil {
								return nil, err
							}
							var tst tester
							if proto == "sim-high" {
								tst = protocol.SimHigh{Eps: 1.0 / 3, AvgDegree: g.AvgDegree(), Delta: 0.1,
									Tag: fmt.Sprintf("e12/%s/%d", gen.name, trial)}
							} else {
								tst = protocol.Unrestricted{Eps: 1.0 / 3, AvgDegree: g.AvgDegree(),
									Tag: fmt.Sprintf("e12/%s/%d", gen.name, trial)}
							}
							res, err := tst.RunOn(context.Background(), top)
							if err != nil {
								return nil, err
							}
							bits = append(bits, float64(res.Stats.TotalBits))
							if res.Found() {
								found++
							}
						}
						t.AddRow(gen.name, n, d, "1/3", proto, trials, found, stats.Summarize(bits).Mean)
					}
				}
			}
			t.AddNote("Behrend inputs have every edge on exactly ONE triangle — completeness must not rely on triangle-dense neighborhoods")
			return t, nil
		},
	}
}

// e13Bucketing is the §3.3 motivation ablation: bucketed candidate
// sampling vs naive uniform vertex sampling on dense-core inputs where
// all triangles touch a few hubs.
func e13Bucketing() Experiment {
	return Experiment{
		ID:         "E13",
		Title:      "Ablation: bucketed candidate sampling vs uniform vertex sampling",
		PaperClaim: "§3.3: \"a uniformly random vertex is not always likely to be full\" — bucketing targets dense subgraphs",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"tester", "n", "block", "trials", "found", "bits"}}
			trials := cfg.trials(6)
			// A hidden K_{6,6,6} block among 12000 vertices: all triangles
			// live on 18 vertices (0.15% of V), so ~100 uniform samples miss
			// the block most of the time, while the block's degree (12)
			// stands out to the bucket iteration.
			const n, blockA = 12000, 6
			gen := func(rng *rand.Rand) *graph.Graph {
				g, _ := graph.HiddenBlock(graph.HiddenBlockParams{N: n, A: blockA, NoiseDeg: 4}, rng)
				return g
			}
			for _, tc := range []string{"bucketed", "naive-uniform"} {
				var bits []float64
				found := 0
				for trial := 0; trial < trials; trial++ {
					seed := cfg.Seed*127 + uint64(trial)
					rng := rand.New(rand.NewSource(int64(seed)))
					g := gen(rng)
					eps := g.FarnessLowerBound()
					shared := xrand.New(seed)
					p := partition.Disjoint{}.Split(g, 4, shared)
					top, err := comm.NewTopology(g.N(), p.Inputs, shared)
					if err != nil {
						return nil, err
					}
					var tst tester
					if tc == "bucketed" {
						tst = protocol.Unrestricted{Eps: eps, AvgDegree: g.AvgDegree(),
							Tag: fmt.Sprintf("e13b/%d", trial)}
					} else {
						// Same uniform-sample budget the bucketed tester
						// spends per bucket (q = 3·k·ln n).
						tst = protocol.NaiveUniform{Eps: eps,
							Tag: fmt.Sprintf("e13n/%d", trial)}
					}
					res, err := tst.RunOn(context.Background(), top)
					if err != nil {
						return nil, err
					}
					bits = append(bits, float64(res.Stats.TotalBits))
					if res.Found() {
						found++
					}
				}
				t.AddRow(tc, n, fmt.Sprintf("K_{%d,%d,%d}", blockA, blockA, blockA), trials, found, stats.Summarize(bits).Mean)
			}
			t.AddNote("all triangles live on %d of %d vertices: uniform sampling almost never probes the block", 3*blockA, n)
			return t, nil
		},
	}
}
