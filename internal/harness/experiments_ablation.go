package harness

import (
	"context"
	"fmt"
	"math/rand"

	"tricomm/internal/graph"
	"tricomm/internal/harness/runner"
	"tricomm/internal/partition"
	"tricomm/internal/protocol"
)

// e12Behrend exercises the triangle-sparse hard instances the paper's §5
// points to for future dense lower bounds: Behrend graphs, where every
// edge lies on exactly one triangle. The testers must still succeed —
// the instances are exactly 1/3-far — but they get no help from
// triangle-rich neighborhoods.
func e12Behrend() Experiment {
	return Experiment{
		ID:         "E12",
		Title:      "Behrend instances: triangle-sparse vs triangle-dense ε-far inputs",
		PaperClaim: "§5 outlook: Behrend graphs as the expected hard dense inputs; testers must stay complete on them",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"generator", "n", "d", "eps", "protocol", "trials", "found", "bits"}}
			trials := cfg.trials(5)
			ms := []int{243, 729}
			if cfg.Quick {
				ms = []int{243}
			}
			type block struct {
				genName string
				n       int
				d       float64
				proto   string
				mk      func(rng *rand.Rand) *graph.Graph
			}
			var bs []block
			for _, m := range ms {
				bg := graph.NewBehrendGraph(m)
				n := bg.G.N()
				d := bg.G.AvgDegree()
				// A triangle-dense control with the same n, d and (nearly)
				// the same ε — 0.32 rather than exactly 1/3 so block
				// rounding stays inside the edge budget.
				control := func(rng *rand.Rand) *graph.Graph {
					return graph.FarWithDegree(graph.FarParams{N: n, D: d, Eps: 0.32}, rng).G
				}
				for _, gen := range []struct {
					name string
					mk   func(rng *rand.Rand) *graph.Graph
				}{
					{"behrend", func(*rand.Rand) *graph.Graph { return bg.G }},
					{"kaaa-planted", control},
				} {
					for _, proto := range []string{"sim-high", "unrestricted"} {
						bs = append(bs, block{gen.name, n, d, proto, gen.mk})
					}
				}
			}
			plans := make([]runner.Plan, len(bs))
			for bi, b := range bs {
				plans[bi] = runner.Plan{
					Trials:       trials,
					IntraWorkers: cfg.IntraWorkers,
					Seed:         func(trial int) uint64 { return cfg.Seed*313 + uint64(trial) },
					Gen:          b.mk,
					Partitioner:  partition.Disjoint{},
					K:            4,
					Testers: []func(g *graph.Graph, trial int) runner.Tester{
						func(g *graph.Graph, trial int) runner.Tester {
							if b.proto == "sim-high" {
								return protocol.SimHigh{Eps: 1.0 / 3, AvgDegree: g.AvgDegree(), Delta: 0.1,
									Tag: fmt.Sprintf("e12/%s/%d", b.genName, trial)}
							}
							return protocol.Unrestricted{Eps: 1.0 / 3, AvgDegree: g.AvgDegree(),
								Tag: fmt.Sprintf("e12/%s/%d", b.genName, trial)}
						},
					},
				}
			}
			aggs, err := sweep(ctx, cfg, plans)
			if err != nil {
				return nil, err
			}
			for bi, b := range bs {
				a := aggs[bi][0]
				t.AddRow(b.genName, b.n, b.d, "1/3", b.proto, trials, a.Found, a.Summary().Mean)
			}
			t.AddNote("Behrend inputs have every edge on exactly ONE triangle — completeness must not rely on triangle-dense neighborhoods")
			return t, nil
		},
	}
}

// e13Bucketing is the §3.3 motivation ablation: bucketed candidate
// sampling vs naive uniform vertex sampling on dense-core inputs where
// all triangles touch a few hubs.
func e13Bucketing() Experiment {
	return Experiment{
		ID:         "E13",
		Title:      "Ablation: bucketed candidate sampling vs uniform vertex sampling",
		PaperClaim: "§3.3: \"a uniformly random vertex is not always likely to be full\" — bucketing targets dense subgraphs",
		Run: func(ctx context.Context, cfg RunConfig) (*Table, error) {
			t := &Table{Columns: []string{"tester", "n", "block", "trials", "found", "bits"}}
			trials := cfg.trials(6)
			// A hidden K_{6,6,6} block among 12000 vertices: all triangles
			// live on 18 vertices (0.15% of V), so ~100 uniform samples miss
			// the block most of the time, while the block's degree (12)
			// stands out to the bucket iteration.
			const n, blockA = 12000, 6
			gen := func(rng *rand.Rand) *graph.Graph {
				g, _ := graph.HiddenBlock(graph.HiddenBlockParams{N: n, A: blockA, NoiseDeg: 4}, rng)
				return g
			}
			testers := []string{"bucketed", "naive-uniform"}
			plans := make([]runner.Plan, len(testers))
			for ti, tc := range testers {
				plans[ti] = runner.Plan{
					Trials:       trials,
					IntraWorkers: cfg.IntraWorkers,
					Seed:         func(trial int) uint64 { return cfg.Seed*127 + uint64(trial) },
					Gen:          gen,
					Partitioner:  partition.Disjoint{},
					K:            4,
					Testers: []func(g *graph.Graph, trial int) runner.Tester{
						func(g *graph.Graph, trial int) runner.Tester {
							if tc == "bucketed" {
								return protocol.Unrestricted{Eps: g.FarnessLowerBound(), AvgDegree: g.AvgDegree(),
									Tag: fmt.Sprintf("e13b/%d", trial)}
							}
							// Same uniform-sample budget the bucketed tester
							// spends per bucket (q = 3·k·ln n).
							return protocol.NaiveUniform{Eps: g.FarnessLowerBound(),
								Tag: fmt.Sprintf("e13n/%d", trial)}
						},
					},
				}
			}
			aggs, err := sweep(ctx, cfg, plans)
			if err != nil {
				return nil, err
			}
			for ti, tc := range testers {
				a := aggs[ti][0]
				t.AddRow(tc, n, fmt.Sprintf("K_{%d,%d,%d}", blockA, blockA, blockA), trials, a.Found, a.Summary().Mean)
			}
			t.AddNote("all triangles live on %d of %d vertices: uniform sampling almost never probes the block", 3*blockA, n)
			return t, nil
		},
	}
}
