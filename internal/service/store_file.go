package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// FileStore is the embedded on-disk Store behind tricommd -db: a single
// append-only NDJSON log replayed into memory at open and compacted to a
// canonical snapshot before appending resumes. It has no dependencies
// beyond the standard library, which keeps the daemon a single static
// binary.
//
// Log format: one JSON object per line, {"op": "job"|"trial"|"del", ...}.
// A job's envelope line is (re)appended on every state transition; trial
// outcomes are appended as they land. Replay stops at the first
// unparsable line, which makes a torn final write (crash mid-append)
// self-healing: everything before it is kept, and the compaction rewrite
// drops the tail.
//
// Durability policy: envelope writes (PutJob, DeleteJob) are fsynced —
// they are rare and carry the state machine; trial writes are not —
// losing the last few outcomes to a crash only means those trials are
// recomputed from their deterministic seeds at resume (see store.go).
type FileStore struct {
	mem  *MemStore // authoritative in-RAM state, serving all reads
	path string

	// mem.mu also serializes f: every write path locks mem first.
	f *os.File
}

type logEntry struct {
	Op    string        `json:"op"`
	Job   *JobRecord    `json:"job,omitempty"`
	ID    string        `json:"id,omitempty"`
	Trial *TrialOutcome `json:"trial,omitempty"`
}

// maxLogLine bounds one log line at replay. Sized for an envelope
// carrying a maximal uploaded edge list (MaxEdges pairs, ~20 JSON bytes
// per pair) with headroom.
const maxLogLine = int(maxBodyBytesDefault) + (1 << 20)

// OpenFileStore opens (creating if absent) the log at path, replays it,
// and compacts it in place via an atomic rename.
func OpenFileStore(path string) (*FileStore, error) {
	mem := NewMemStore()
	if err := replayLog(path, mem); err != nil {
		return nil, fmt.Errorf("service: replay %s: %w", path, err)
	}
	if err := compactLog(path, mem); err != nil {
		return nil, fmt.Errorf("service: compact %s: %w", path, err)
	}
	mStoreCompactions.Inc()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileStore{mem: mem, path: path, f: f}, nil
}

// replayLog applies every well-formed line of the log to mem, stopping
// silently at the first torn or corrupt line.
func replayLog(path string, mem *MemStore) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), maxLogLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e logEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil // torn tail: keep what replayed, compaction drops the rest
		}
		switch e.Op {
		case "job":
			if e.Job != nil {
				_ = mem.PutJob(*e.Job)
			}
		case "trial":
			if e.Trial != nil {
				_ = mem.PutTrial(e.ID, *e.Trial)
			}
		case "del":
			_ = mem.DeleteJob(e.ID)
		}
	}
	// A line exceeding the buffer is corruption of the same kind as a
	// torn tail; scanner errors after a clean prefix are tolerated.
	return nil
}

// compactLog atomically rewrites the log as one canonical snapshot of
// mem: per job (in Seq order) the envelope line followed by its trial
// lines. This bounds growth across restarts — superseded envelope lines
// and deleted jobs' entries are dropped.
func compactLog(path string, mem *MemStore) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	w := bufio.NewWriterSize(tmp, 1<<20)
	for _, rec := range mem.ListJobs() {
		rec, trials, _ := mem.GetJob(rec.ID)
		if err := writeEntry(w, logEntry{Op: "job", Job: &rec}); err != nil {
			tmp.Close()
			return err
		}
		for i := range trials {
			if err := writeEntry(w, logEntry{Op: "trial", ID: rec.ID, Trial: &trials[i]}); err != nil {
				tmp.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func writeEntry(w *bufio.Writer, e logEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// append marshals and writes one entry under the store lock.
func (s *FileStore) append(e logEntry, sync bool) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := s.f.Write(append(b, '\n')); err != nil {
		return err
	}
	mStoreAppends.With(e.Op).Inc()
	if sync {
		mStoreFsyncs.Inc()
		return s.f.Sync()
	}
	return nil
}

// PutJob upserts the envelope and fsyncs the log.
func (s *FileStore) PutJob(rec JobRecord) error {
	s.mem.mu.Lock()
	defer s.mem.mu.Unlock()
	s.putJobLocked(rec)
	return s.append(logEntry{Op: "job", Job: &rec}, true)
}

// putJobLocked is MemStore.PutJob under an already-held lock.
func (s *FileStore) putJobLocked(rec JobRecord) {
	if r, ok := s.mem.recs[rec.ID]; ok {
		r.rec = rec
		return
	}
	s.mem.recs[rec.ID] = &memRec{rec: rec, trials: make(map[int]TrialOutcome)}
}

// PutTrial records one outcome without fsync (a lost trial is replayed
// deterministically at resume).
func (s *FileStore) PutTrial(id string, out TrialOutcome) error {
	s.mem.mu.Lock()
	defer s.mem.mu.Unlock()
	r, ok := s.mem.recs[id]
	if !ok {
		return nil
	}
	r.trials[out.Trial] = out
	return s.append(logEntry{Op: "trial", ID: id, Trial: &out}, false)
}

// Describe identifies the backend for health reporting (Describer).
func (s *FileStore) Describe() (backend, path string) { return "file", s.path }

// GetJob serves from the replayed in-RAM state.
func (s *FileStore) GetJob(id string) (JobRecord, []TrialOutcome, bool) {
	return s.mem.GetJob(id)
}

// ListJobs serves from the replayed in-RAM state.
func (s *FileStore) ListJobs() []JobRecord {
	return s.mem.ListJobs()
}

// DeleteJob removes the record and appends a tombstone (dropped at the
// next open's compaction).
func (s *FileStore) DeleteJob(id string) error {
	s.mem.mu.Lock()
	defer s.mem.mu.Unlock()
	if _, ok := s.mem.recs[id]; !ok {
		return nil
	}
	delete(s.mem.recs, id)
	return s.append(logEntry{Op: "del", ID: id}, true)
}

// Close flushes and releases the log file.
func (s *FileStore) Close() error {
	s.mem.mu.Lock()
	defer s.mem.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
