package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"tricomm/internal/obs"
)

// RetryPolicy shapes the client's transient-failure handling: attempts
// are spaced by exponential backoff with jitter, capped at MaxDelay, and
// a server-sent Retry-After extends the wait.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (default 4); 1 disables
	// retries entirely.
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100ms); each retry
	// doubles it up to MaxDelay (default 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// backoff is the wait before retry number attempt (1-based): exponential
// doubling capped at MaxDelay, drawn uniformly from [d/2, d] so a herd of
// clients decorrelates.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// Client talks to a running tricommd over its JSON/HTTP API. Transient
// failures — connection errors on idempotent requests, 429/503 load
// shedding, 5xx on reads — are retried per Retry before an error is
// surfaced.
type Client struct {
	// Base is the server base URL, e.g. "http://127.0.0.1:7341".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// Retry shapes transient-failure retries; the zero value means the
	// defaults (4 attempts, 100ms base, 5s cap).
	Retry RetryPolicy
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// statusError maps an API error response to the typed sentinels (ErrBusy
// for load shedding, ErrNotFound for missing jobs) so callers use
// errors.Is instead of matching message text.
func statusError(resp *http.Response, body []byte) error {
	detail := resp.Status
	var ae apiError
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		detail = fmt.Sprintf("%s: %s", resp.Status, ae.Error)
	}
	switch resp.StatusCode {
	case http.StatusServiceUnavailable:
		return fmt.Errorf("service: %s: %w", detail, ErrBusy)
	case http.StatusNotFound:
		return fmt.Errorf("service: %s: %w", detail, ErrNotFound)
	}
	return fmt.Errorf("service: %s", detail)
}

// retriableStatus reports whether a failed response may be retried for
// the method. Rate limiting and load shedding (429, 503) are retried for
// every method — the server rejected the request without acting on it —
// while other 5xx are retried only on idempotent GETs.
func retriableStatus(method string, code int) bool {
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		return true
	}
	return method == http.MethodGet && code >= 500
}

// retryAfter parses a Retry-After header as delay seconds (0 if absent
// or not delta-seconds).
func retryAfter(h string) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// do executes one API call with retries and decodes the JSON response (or
// API error) into out. The request is rebuilt per attempt so POST bodies
// replay; transport-level failures retry only on GET (a lost POST may
// have been applied), HTTP-level failures per retriableStatus, and a
// server-sent Retry-After extends the backoff.
func (c *Client) do(ctx context.Context, method, url string, payload []byte, out any) error {
	pol := c.Retry.withDefaults()
	var lastErr error
	for attempt := 1; ; attempt++ {
		var br io.Reader
		if payload != nil {
			br = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, br)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		wait := time.Duration(0)
		resp, err := c.http().Do(req)
		if err != nil {
			if ctx.Err() != nil || method != http.MethodGet {
				return err
			}
			lastErr = err
		} else {
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
			resp.Body.Close()
			switch {
			case rerr != nil:
				if method != http.MethodGet {
					return rerr
				}
				lastErr = rerr
			case resp.StatusCode < 300:
				if out == nil {
					return nil
				}
				return json.Unmarshal(body, out)
			default:
				lastErr = statusError(resp, body)
				if !retriableStatus(method, resp.StatusCode) {
					return lastErr
				}
				wait = retryAfter(resp.Header.Get("Retry-After"))
			}
		}
		if attempt >= pol.MaxAttempts {
			return lastErr
		}
		if d := pol.backoff(attempt); d > wait {
			wait = d
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return lastErr
		}
	}
}

// Submit enqueues a job. Submission is retried only on 429/503 — replies
// the server sends without acting on the request — so a retry can never
// double-submit.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobInfo, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return JobInfo{}, err
	}
	var ji JobInfo
	err = c.do(ctx, http.MethodPost, c.url("/v1/jobs"), payload, &ji)
	return ji, err
}

// Job fetches one job with its per-trial results.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var ji JobInfo
	err := c.do(ctx, http.MethodGet, c.url("/v1/jobs/"+id), nil, &ji)
	return ji, err
}

// JobPage fetches one job with a window of its per-trial results:
// limit < 0 means everything from offset on (limit 0 fetches just the
// envelope, the cheap way to poll state on a huge job). The reply's
// ResultsOffset/ResultsTotal locate the window within the available
// result prefix.
func (c *Client) JobPage(ctx context.Context, id string, offset, limit int) (JobInfo, error) {
	u := c.url("/v1/jobs/" + id)
	q := url.Values{}
	if offset > 0 {
		q.Set("offset", strconv.Itoa(offset))
	}
	if limit >= 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var ji JobInfo
	err := c.do(ctx, http.MethodGet, u, nil, &ji)
	return ji, err
}

// Jobs lists the server's retained jobs.
func (c *Client) Jobs(ctx context.Context) ([]JobInfo, error) {
	var jis []JobInfo
	err := c.do(ctx, http.MethodGet, c.url("/v1/jobs"), nil, &jis)
	return jis, err
}

// Scenarios fetches the server's scenario-family catalog.
func (c *Client) Scenarios(ctx context.Context) ([]ScenarioInfo, error) {
	var out []ScenarioInfo
	err := c.do(ctx, http.MethodGet, c.url("/v1/scenarios"), nil, &out)
	return out, err
}

// ServerStats fetches the service counters.
func (c *Client) ServerStats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, c.url("/v1/stats"), nil, &st)
	return st, err
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, c.url("/healthz"), nil, nil)
}

// HealthInfo fetches the full liveness/readiness payload. Unlike Health
// it decodes the body, so callers see the store backend, resume count,
// and queue snapshot; a draining server (503) still yields its payload
// alongside the error.
func (c *Client) HealthInfo(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, c.url("/healthz"), nil, &h)
	return h, err
}

// Metrics scrapes and parses the server's /metrics exposition. The
// returned form indexes every series by its full identity (see
// obs.Exposition); parse failures surface as errors, so this doubles as
// an end-to-end format check.
func (c *Client) Metrics(ctx context.Context) (*obs.Exposition, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/metrics"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, statusError(resp, body)
	}
	e, err := obs.CheckExposition(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("service: invalid /metrics exposition: %w", err)
	}
	return e, nil
}

// Stream follows a job's NDJSON stream, invoking fn for every trial
// outcome, and returns the final JobInfo once the job finishes.
func (c *Client) Stream(ctx context.Context, id string, fn func(TrialOutcome) error) (JobInfo, error) {
	return c.StreamFrom(ctx, id, 0, fn)
}

// StreamFrom follows a job's NDJSON stream starting at trial offset,
// which is how a consumer resumes after a dropped connection without
// re-reading (or double-counting) outcomes it already has. The stream
// request itself is not retried — a caller that wants resilience loops
// StreamFrom, advancing offset by the outcomes delivered (see
// `tricli watch`).
func (c *Client) StreamFrom(ctx context.Context, id string, offset int, fn func(TrialOutcome) error) (JobInfo, error) {
	u := c.url("/v1/jobs/" + id + "/stream")
	if offset > 0 {
		u += "?offset=" + strconv.Itoa(offset)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return JobInfo{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return JobInfo{}, statusError(resp, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	var final JobInfo
	gotFinal := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// The final line is the JobInfo envelope; trial lines have no "id".
		var probe struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.ID != "" {
			if err := json.Unmarshal(line, &final); err != nil {
				return JobInfo{}, err
			}
			gotFinal = true
			continue
		}
		var out TrialOutcome
		if err := json.Unmarshal(line, &out); err != nil {
			return JobInfo{}, fmt.Errorf("service: bad stream line: %w", err)
		}
		if fn != nil {
			if err := fn(out); err != nil {
				return JobInfo{}, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return JobInfo{}, err
	}
	if !gotFinal {
		return JobInfo{}, fmt.Errorf("service: stream for %s ended without a final state", id)
	}
	return final, nil
}

// Wait polls until the job finishes and returns its final info.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		ji, err := c.Job(ctx, id)
		if err != nil {
			return JobInfo{}, err
		}
		if ji.State.Finished() {
			return ji, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return JobInfo{}, ctx.Err()
		}
	}
}
