package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to a running tricommd over its JSON/HTTP API.
type Client struct {
	// Base is the server base URL, e.g. "http://127.0.0.1:7341".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// do executes a request and decodes the JSON response (or API error) into
// out.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		detail := resp.Status
		var ae apiError
		if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
			detail = fmt.Sprintf("%s: %s", resp.Status, ae.Error)
		}
		// Surface load shedding as the typed error so callers can back off
		// with errors.Is instead of matching message text.
		if resp.StatusCode == http.StatusServiceUnavailable {
			return fmt.Errorf("service: %s: %w", detail, ErrBusy)
		}
		return fmt.Errorf("service: %s", detail)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// Submit enqueues a job.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobInfo, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return JobInfo{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(payload))
	if err != nil {
		return JobInfo{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var ji JobInfo
	err = c.do(req, &ji)
	return ji, err
}

// Job fetches one job with its per-trial results.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return JobInfo{}, err
	}
	var ji JobInfo
	err = c.do(req, &ji)
	return ji, err
}

// JobPage fetches one job with a window of its per-trial results:
// limit < 0 means everything from offset on (limit 0 fetches just the
// envelope, the cheap way to poll state on a huge job). The reply's
// ResultsOffset/ResultsTotal locate the window within the available
// result prefix.
func (c *Client) JobPage(ctx context.Context, id string, offset, limit int) (JobInfo, error) {
	u := c.url("/v1/jobs/" + id)
	q := url.Values{}
	if offset > 0 {
		q.Set("offset", strconv.Itoa(offset))
	}
	if limit >= 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return JobInfo{}, err
	}
	var ji JobInfo
	err = c.do(req, &ji)
	return ji, err
}

// Jobs lists the server's retained jobs.
func (c *Client) Jobs(ctx context.Context) ([]JobInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs"), nil)
	if err != nil {
		return nil, err
	}
	var jis []JobInfo
	err = c.do(req, &jis)
	return jis, err
}

// Scenarios fetches the server's scenario-family catalog.
func (c *Client) Scenarios(ctx context.Context) ([]ScenarioInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/scenarios"), nil)
	if err != nil {
		return nil, err
	}
	var out []ScenarioInfo
	err = c.do(req, &out)
	return out, err
}

// ServerStats fetches the service counters.
func (c *Client) ServerStats(ctx context.Context) (Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/stats"), nil)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	err = c.do(req, &st)
	return st, err
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/healthz"), nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// Stream follows a job's NDJSON stream, invoking fn for every trial
// outcome, and returns the final JobInfo once the job finishes.
func (c *Client) Stream(ctx context.Context, id string, fn func(TrialOutcome) error) (JobInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/stream"), nil)
	if err != nil {
		return JobInfo{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var ae apiError
		if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
			return JobInfo{}, fmt.Errorf("service: %s: %s", resp.Status, ae.Error)
		}
		return JobInfo{}, fmt.Errorf("service: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	var final JobInfo
	gotFinal := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// The final line is the JobInfo envelope; trial lines have no "id".
		var probe struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.ID != "" {
			if err := json.Unmarshal(line, &final); err != nil {
				return JobInfo{}, err
			}
			gotFinal = true
			continue
		}
		var out TrialOutcome
		if err := json.Unmarshal(line, &out); err != nil {
			return JobInfo{}, fmt.Errorf("service: bad stream line: %w", err)
		}
		if fn != nil {
			if err := fn(out); err != nil {
				return JobInfo{}, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return JobInfo{}, err
	}
	if !gotFinal {
		return JobInfo{}, fmt.Errorf("service: stream for %s ended without a final state", id)
	}
	return final, nil
}

// Wait polls until the job finishes and returns its final info.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		ji, err := c.Job(ctx, id)
		if err != nil {
			return JobInfo{}, err
		}
		if ji.State == StateDone || ji.State == StateFailed {
			return ji, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return JobInfo{}, ctx.Err()
		}
	}
}
