package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"tricomm"
	"tricomm/internal/harness/runner"
	"tricomm/internal/scenario"
)

// newTestServer starts a Server behind an httptest listener and returns a
// client for it plus a shutdown func.
func newTestServer(t *testing.T, cfg Config) (*Client, func()) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	hc := hs.Client()
	cl := &Client{Base: hs.URL, HTTP: hc}
	return cl, func() {
		hs.Close()
		s.Close()
		hc.CloseIdleConnections()
	}
}

func farJob(n int, trials int, seed uint64) JobSpec {
	return JobSpec{
		Graph:       GraphSpec{Kind: "far", Spec: scenario.Spec{N: n, D: 6, Eps: 0.25}},
		K:           3,
		Protocol:    "sim-oblivious",
		Eps:         0.25,
		KnownDegree: true,
		Trials:      trials,
		Seed:        seed,
	}
}

// TestSubmitAndWait covers the basic lifecycle: submit, poll, summary.
func TestSubmitAndWait(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 2})
	defer shutdown()
	ctx := context.Background()

	ji, err := cl.Submit(ctx, farJob(96, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	if ji.ID == "" || (ji.State != StateQueued && ji.State != StateRunning) {
		t.Fatalf("submit returned %+v", ji)
	}
	fin, err := cl.Wait(ctx, ji.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("job finished in state %s (%s)", fin.State, fin.Error)
	}
	if fin.TrialsDone != 3 || len(fin.Results) != 3 || fin.Summary == nil {
		t.Fatalf("incomplete results: %+v", fin)
	}
	for i, r := range fin.Results {
		if r.Trial != i || r.Seed != runner.TrialSeed(7, i) {
			t.Fatalf("trial %d has index %d seed %d", i, r.Trial, r.Seed)
		}
		if r.Bits <= 0 {
			t.Fatalf("trial %d reports %d bits", i, r.Bits)
		}
	}
}

// TestTrialOutcomesReproducible pins the determinism contract the API
// advertises: regenerating a trial's instance from its reported seed and
// running the same options locally reproduces the exact outcome.
func TestTrialOutcomesReproducible(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()
	ctx := context.Background()

	spec := farJob(128, 4, 21)
	spec.Protocol = "interactive"
	spec.Transport = "tcp"
	ji, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, ji.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("job failed: %s", fin.Error)
	}
	for _, r := range fin.Results {
		g, _ := tricomm.FarGraph(128, 6, 0.25, int64(r.Seed))
		clu, err := tricomm.Split(g, 3, tricomm.SplitDisjoint, r.Seed)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := clu.Test(ctx, tricomm.Options{
			Protocol: tricomm.Interactive, Eps: 0.25, AvgDegree: g.AvgDegree(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.TriangleFree != r.TriangleFree || rep.Bits != r.Bits || rep.Rounds != r.Rounds {
			t.Fatalf("trial %d not reproducible: daemon %+v vs local %+v", r.Trial, r, rep)
		}
		if !rep.TriangleFree {
			if w := rep.Witness; r.Witness == nil || *r.Witness != [3]int{w.A, w.B, w.C} {
				t.Fatalf("trial %d witness mismatch: %v vs %v", r.Trial, r.Witness, rep.Witness)
			}
		}
	}
}

// TestStreamDeliversTrialsThenFinal covers the NDJSON stream: every trial
// in order, then the final envelope.
func TestStreamDeliversTrialsThenFinal(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()
	ctx := context.Background()

	ji, err := cl.Submit(ctx, farJob(96, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	fin, err := cl.Stream(ctx, ji.ID, func(o TrialOutcome) error {
		seen = append(seen, o.Trial)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("stream final state %s (%s)", fin.State, fin.Error)
	}
	if len(seen) != 5 {
		t.Fatalf("streamed %d trials, want 5 (%v)", len(seen), seen)
	}
	for i, tr := range seen {
		if tr != i {
			t.Fatalf("stream out of order: %v", seen)
		}
	}
}

// TestUploadedEdgesAndCheck covers the edge-list kind plus the ground
// truth flag, with an instance whose answer is known exactly.
func TestUploadedEdgesAndCheck(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()
	ctx := context.Background()

	// A triangle plus a pendant edge; the exact protocol must find it.
	spec := JobSpec{
		Graph:    GraphSpec{Kind: "edges", Spec: scenario.Spec{N: 8}, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}}},
		K:        2,
		Protocol: "exact",
		Trials:   2,
		Check:    true,
	}
	ji, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, ji.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("job failed: %s", fin.Error)
	}
	for _, r := range fin.Results {
		if r.TriangleFree {
			t.Fatalf("exact protocol missed the triangle: %+v", r)
		}
		if r.HasTriangle == nil || !*r.HasTriangle {
			t.Fatalf("ground truth missing or wrong: %+v", r)
		}
		if r.Witness == nil || *r.Witness != [3]int{0, 1, 2} {
			t.Fatalf("witness %v, want (0,1,2)", r.Witness)
		}
	}
}

// TestSelfLoopEdgesRejected is the regression test for the self-loop
// hole: kind "edges" used to accept e[0]==e[1] pairs and silently drop
// them at build time; they must be rejected at validation with a clear
// error instead.
func TestSelfLoopEdgesRejected(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()
	spec := JobSpec{
		Graph:    GraphSpec{Kind: "edges", Spec: scenario.Spec{N: 8}, Edges: [][2]int{{0, 1}, {3, 3}}},
		Protocol: "exact",
	}
	_, err := cl.Submit(context.Background(), spec)
	if err == nil {
		t.Fatal("self-loop edge accepted")
	}
	if !strings.Contains(err.Error(), "self-loop") {
		t.Fatalf("rejection does not name the self-loop: %v", err)
	}
}

// TestLegacyGraphSpecJSONDecodesUnchanged pins byte-compatibility for
// pre-scenario payloads: the historical {"kind", "n", "d", "eps"} and
// {"kind": "edges", ...} shapes must decode into the same validated specs
// they always did, via the embedded scenario.Spec fields.
func TestLegacyGraphSpecJSONDecodesUnchanged(t *testing.T) {
	cases := []struct {
		payload string
		check   func(GraphSpec) bool
	}{
		{`{"kind":"far","n":512,"d":8,"eps":0.25}`, func(g GraphSpec) bool {
			return g.Kind == "far" && g.N == 512 && g.D == 8 && g.Eps == 0.25 && g.Validate() == nil
		}},
		{`{"kind":"random","n":256,"d":4}`, func(g GraphSpec) bool {
			return g.Kind == "random" && g.N == 256 && g.D == 4 && g.Validate() == nil
		}},
		{`{"kind":"bipartite","n":128,"d":6}`, func(g GraphSpec) bool {
			return g.Kind == "bipartite" && g.N == 128 && g.D == 6 && g.Validate() == nil
		}},
		{`{"kind":"edges","n":4,"edges":[[0,1],[1,2]]}`, func(g GraphSpec) bool {
			return g.Kind == "edges" && g.N == 4 && len(g.Edges) == 2 && g.Validate() == nil
		}},
		// The new shape decodes through the same struct.
		{`{"family":"chung-lu","n":256,"alpha":2.5}`, func(g GraphSpec) bool {
			return g.Family == "chung-lu" && g.N == 256 && g.Validate() == nil
		}},
	}
	for _, tc := range cases {
		var g GraphSpec
		if err := json.Unmarshal([]byte(tc.payload), &g); err != nil {
			t.Fatalf("decode %s: %v", tc.payload, err)
		}
		if !tc.check(g) {
			t.Fatalf("payload %s decoded to %+v", tc.payload, g)
		}
	}
	// Conflicting kind/family must be rejected, not silently resolved.
	var g GraphSpec
	if err := json.Unmarshal([]byte(`{"kind":"far","family":"random","n":64,"d":4}`), &g); err != nil {
		t.Fatal(err)
	}
	if g.Validate() == nil {
		t.Fatal("conflicting kind/family accepted")
	}
}

// TestScenarioJobsOverHTTP runs a registry family — including one that
// prescribes its own player assignment — through the full HTTP job path.
func TestScenarioJobsOverHTTP(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 2})
	defer shutdown()
	ctx := context.Background()

	for _, spec := range []JobSpec{
		{Graph: GraphSpec{Spec: scenario.Spec{Family: "behrend-blowup", M: 6, Blowup: 2}},
			Protocol: "exact", Trials: 2, Check: true},
		{Graph: GraphSpec{Spec: scenario.Spec{Family: "dup-adversary", N: 256, D: 8, Eps: 0.2, K: 6}},
			K:        8, // superseded: the family prescribes its own 6-player assignment
			Protocol: "sim-oblivious", Eps: 0.2, Trials: 2, Check: true},
	} {
		ji, err := cl.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		fin, err := cl.Wait(ctx, ji.ID, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != StateDone {
			t.Fatalf("scenario job failed: %s", fin.Error)
		}
		// Both scenarios are certified far: the instances really contain
		// triangles, and the echoed spec must be canonical.
		for _, r := range fin.Results {
			if r.HasTriangle == nil || !*r.HasTriangle {
				t.Fatalf("certified-far instance reports no triangle: %+v", r)
			}
		}
		if fin.Spec.Graph.N == 0 {
			t.Fatalf("echoed spec not canonicalized: %+v", fin.Spec.Graph)
		}
		// When the family prescribes the assignment, the echoed job K must
		// report the player count actually run, not the submitted one.
		if fin.Spec.Graph.K > 0 && fin.Spec.K != fin.Spec.Graph.K {
			t.Fatalf("echoed K=%d but the prescribed assignment has k=%d", fin.Spec.K, fin.Spec.Graph.K)
		}
	}
}

// TestScenarioCatalogEndpoint covers GET /v1/scenarios: one entry per
// registry family, each with a usable canonical example.
func TestScenarioCatalogEndpoint(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()
	cat, err := cl.Scenarios(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != len(scenario.Names()) {
		t.Fatalf("catalog lists %d families, registry has %d", len(cat), len(scenario.Names()))
	}
	for _, info := range cat {
		if info.Doc == "" || info.Params == "" {
			t.Fatalf("entry %s incomplete: %+v", info.Family, info)
		}
		if _, err := scenario.Parse(info.Example); err != nil {
			t.Fatalf("example for %s does not parse: %v", info.Family, err)
		}
	}
}

// TestSubmitValidation covers API-level rejection.
func TestSubmitValidation(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()
	ctx := context.Background()
	bad := []JobSpec{
		{Graph: GraphSpec{Kind: "far", Spec: scenario.Spec{N: -1}}},
		{Graph: GraphSpec{Kind: "nope", Spec: scenario.Spec{N: 8}}},
		{Graph: GraphSpec{Kind: "far", Spec: scenario.Spec{N: 8, D: 4}}, Protocol: "nope"},
		{Graph: GraphSpec{Kind: "far", Spec: scenario.Spec{N: 8, D: 4}}, Partition: "nope"},
		{Graph: GraphSpec{Kind: "far", Spec: scenario.Spec{N: 8, D: 4}}, Transport: "nope"},
		{Graph: GraphSpec{Kind: "edges", Spec: scenario.Spec{N: 4}, Edges: [][2]int{{0, 9}}}},
		{Graph: GraphSpec{Kind: "far", Spec: scenario.Spec{N: 8, D: 4}}, Trials: MaxTrials + 1},
	}
	for i, spec := range bad {
		if _, err := cl.Submit(ctx, spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if _, err := cl.Job(ctx, "job-does-not-exist"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("missing job: err = %v, want 404", err)
	}
}

// TestSmoke1000JobsNoGoroutineLeak is the acceptance smoke test: a
// long-lived daemon must sustain 1000 sequential job submissions over real
// HTTP without accumulating goroutines (each job runs full protocol
// sessions, whose engine joins every goroutine it spawns).
func TestSmoke1000JobsNoGoroutineLeak(t *testing.T) {
	const jobs = 1000
	cl, shutdown := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	// Warm up the HTTP stack and worker pool before baselining.
	warm, err := cl.Submit(ctx, farJob(32, 1, 999))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, warm.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	found := 0
	for i := 0; i < jobs; i++ {
		spec := farJob(32, 1, uint64(i+1))
		if i%5 == 0 {
			spec.Protocol = "exact" // mix a coordinator-model protocol in
		}
		ji, err := cl.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		fin, err := cl.Wait(ctx, ji.ID, time.Millisecond)
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if fin.State != StateDone {
			t.Fatalf("job %d failed: %s", i, fin.Error)
		}
		if fin.Summary.Found > 0 {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no job found a triangle on ε-far instances — something is off")
	}

	// Goroutine count must settle back to (about) the baseline: allow a
	// small slack for HTTP keep-alive conns parked between requests.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after %d jobs\n%s",
				before, after, jobs, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
	shutdown()
}

// TestCloseDrainsWorkers pins that Close returns with no workers left and
// marks jobs it interrupted as failed rather than leaving them running.
func TestCloseDrainsWorkers(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 32})
	// Enqueue more slow jobs than workers.
	var ids []string
	for i := 0; i < 6; i++ {
		ji, err := s.Submit(farJob(256, 50, uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ji.ID)
	}
	time.Sleep(20 * time.Millisecond)
	s.Close()
	// After Close every job must be in a terminal state or still queued —
	// but none may be running.
	for _, id := range ids {
		ji, err := s.Job(id, false)
		if err != nil {
			t.Fatal(err)
		}
		if ji.State == StateRunning {
			t.Fatalf("job %s still running after Close", id)
		}
	}
	if _, err := s.Submit(farJob(32, 1, 1)); err == nil {
		t.Fatal("Submit accepted after Close")
	}
}

// TestQueueBackpressure pins ErrBusy beyond QueueDepth.
func TestQueueBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Close()
	// One slow job occupies the worker; then fill the queue.
	if _, err := s.Submit(farJob(512, 200, 1)); err != nil {
		t.Fatal(err)
	}
	busy := false
	for i := 0; i < 2+2; i++ {
		if _, err := s.Submit(farJob(32, 1, uint64(i+2))); err != nil {
			if !errors.Is(err, ErrBusy) {
				t.Fatalf("unexpected submit error: %v", err)
			}
			busy = true
		}
	}
	if !busy {
		t.Fatal("queue never reported ErrBusy")
	}
}
