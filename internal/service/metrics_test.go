package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestMetricsEndToEnd scrapes /metrics through the real HTTP handler
// after running a job and checks that series from every layer the job
// exercised are present and moved. Metric state is process-global, so
// the test asserts deltas against a pre-submit scrape rather than
// absolute values.
func TestMetricsEndToEnd(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 2})
	defer shutdown()
	ctx := context.Background()

	before, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatalf("pre-submit scrape: %v", err)
	}

	ji, err := cl.Submit(ctx, farJob(96, 3, 11))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, ji.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("job finished in state %s (%s)", fin.State, fin.Error)
	}

	after, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatalf("post-job scrape: %v", err)
	}

	// Counters that must have advanced by exactly this job's work.
	wantDelta := []struct {
		name string
		min  float64
	}{
		{"tricomm_service_jobs_submitted_total", 1},
		{"tricomm_service_trials_run_total", 3},
		{"tricomm_service_trial_seconds", 3}, // histogram: _count+_sum+buckets all grow
		{"tricomm_engine_sessions_total", 3},
		{"tricomm_engine_bits_total", 1},
	}
	for _, w := range wantDelta {
		d := after.Total(w.name) - before.Total(w.name)
		if d < w.min {
			t.Errorf("%s advanced by %v, want >= %v", w.name, d, w.min)
		}
	}

	// Families that must simply exist on any scrape: one per layer plus
	// the runtime gauges benchtable/tricommd register at startup. The
	// runtime family is registered by obs.RegisterRuntime, which the
	// service does not call — it belongs to main() — so here we only
	// require the three instrumented layers.
	for _, name := range []string{
		"tricomm_service_queue_depth",
		"tricomm_service_jobs_retained",
		"tricomm_engine_session_seconds",
		"tricomm_transport_wire_bytes_total",
	} {
		if !after.Has(name) {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
	if after.Series() < 25 {
		t.Errorf("only %d series exposed after a job, want >= 25", after.Series())
	}
}

// TestHealthEndpoint covers the enriched /healthz payload: readiness and
// store identity while serving, and a 503 with ready=false once the
// server is closed.
func TestHealthEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	cl := &Client{Base: hs.URL, HTTP: hs.Client()}
	ctx := context.Background()

	h, err := cl.HealthInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || !h.Ready {
		t.Fatalf("live server reports %+v", h)
	}
	if h.Store != "mem" || h.DBPath != "" {
		t.Fatalf("mem-backed server reports store=%q db_path=%q", h.Store, h.DBPath)
	}
	if h.Goroutines <= 0 || h.UptimeMS < 0 {
		t.Fatalf("implausible runtime fields: %+v", h)
	}

	s.Close()

	// Raw GET: the client's retry policy would keep retrying a 503.
	resp, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed server /healthz = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	var closedHealth Health
	if err := json.Unmarshal(body, &closedHealth); err != nil {
		t.Fatalf("closed /healthz body %q: %v", body, err)
	}
	if closedHealth.Ready || !closedHealth.OK {
		t.Fatalf("closed server reports %+v", closedHealth)
	}
}

// TestHealthFileStore pins that a disk-backed server names its backend
// and path in /healthz.
func TestHealthFileStore(t *testing.T) {
	path := t.TempDir() + "/jobs.db"
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	cl, shutdown := newTestServer(t, Config{Workers: 1, Store: fs})
	defer shutdown()

	h, err := cl.HealthInfo(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Store != "file" || h.DBPath != path {
		t.Fatalf("file-backed server reports store=%q db_path=%q, want file %q", h.Store, h.DBPath, path)
	}
}
