package service

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tricomm"
	"tricomm/internal/graph"
	"tricomm/internal/harness/runner"
	"tricomm/internal/scenario"
)

// Config sizes the service.
type Config struct {
	// Workers is the job worker pool size (default 2): at most Workers jobs
	// run concurrently.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs (default
	// 64); submissions beyond it are rejected with ErrBusy.
	QueueDepth int
	// TrialJobs is the per-job trial parallelism handed to the harness
	// runner (default 1, which also keeps streamed results in trial
	// order). Total in-flight sessions are bounded by Workers × TrialJobs.
	TrialJobs int
	// IntraWorkers fans a single trial's graph kernels (the Check
	// ground-truth audit) across goroutines; ≤ 0 defers to the
	// TRICOMM_INTRA_WORKERS environment variable, then 1. The parallel
	// kernels are bit-identical to the serial ones, so this only trades
	// wall-clock for cores on a box whose trial-level pool is idle.
	IntraWorkers int
	// KeepJobs bounds how many finished jobs are retained for GET before
	// the oldest are evicted (default 4096).
	KeepJobs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TrialJobs <= 0 {
		c.TrialJobs = 1
	}
	c.IntraWorkers = graph.IntraWorkers(c.IntraWorkers)
	if c.KeepJobs <= 0 {
		c.KeepJobs = 4096
	}
	return c
}

// job is the server-side state of one submission.
type job struct {
	id   string
	spec JobSpec

	mu       sync.Mutex
	state    JobState
	err      string
	results  []TrialOutcome // indexed by trial
	filled   []bool
	done     int
	summary  *Summary
	started  time.Time
	watchers []chan struct{} // closed-and-discarded on every update
}

// update mutates the job under its lock and wakes every watcher.
func (j *job) update(fn func()) {
	j.mu.Lock()
	fn()
	ws := j.watchers
	j.watchers = nil
	j.mu.Unlock()
	for _, w := range ws {
		close(w)
	}
}

// watch returns a channel closed at the next update.
func (j *job) watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	w := make(chan struct{})
	if j.state == StateDone || j.state == StateFailed {
		close(w) // no further updates are coming; don't park watchers
		return w
	}
	j.watchers = append(j.watchers, w)
	return w
}

// info snapshots the API view. Results are copied up to the first gap so
// watchers always see a prefix in trial order.
func (j *job) info(withResults bool) JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	ji := JobInfo{
		ID:         j.id,
		State:      j.state,
		Error:      j.err,
		Spec:       j.spec,
		TrialsDone: j.done,
		Summary:    j.summary,
	}
	if withResults {
		n := 0
		for n < len(j.filled) && j.filled[n] {
			n++
		}
		ji.Results = append([]TrialOutcome(nil), j.results[:n]...)
	}
	return ji
}

// Server schedules submitted jobs onto a bounded worker pool. Create with
// New, serve its Handler, and Close it to drain; Close waits for every
// worker, so a closed server has no goroutines left.
type Server struct {
	cfg   Config
	start time.Time

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // insertion order, for listing and eviction
	closed bool

	queue  chan *job
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	nextID    atomic.Int64
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
}

// New starts a server with cfg's worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		start:  time.Now(),
		jobs:   make(map[string]*job),
		queue:  make(chan *job, cfg.QueueDepth),
		ctx:    ctx,
		cancel: cancel,
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops accepting jobs, cancels running ones, and waits for the
// workers to exit. Queued jobs are marked failed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// Submit validates and enqueues a job, returning its queued info.
func (s *Server) Submit(spec JobSpec) (JobInfo, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return JobInfo{}, fmt.Errorf("service: invalid job: %w", err)
	}
	j := &job{
		spec:    spec,
		state:   StateQueued,
		results: make([]TrialOutcome, spec.Trials),
		filled:  make([]bool, spec.Trials),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobInfo{}, ErrClosed
	}
	j.id = fmt.Sprintf("job-%d", s.nextID.Add(1))
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		return JobInfo{}, ErrBusy
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()

	s.submitted.Add(1)
	return j.info(false), nil
}

// evictLocked drops the oldest finished jobs beyond the retention bound.
func (s *Server) evictLocked() {
	for len(s.order) > s.cfg.KeepJobs {
		evicted := false
		for i, id := range s.order {
			j := s.jobs[id]
			j.mu.Lock()
			finished := j.state == StateDone || j.state == StateFailed
			j.mu.Unlock()
			if finished {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything retained is still live
		}
	}
}

// Job returns the API view of one job.
func (s *Server) Job(id string, withResults bool) (JobInfo, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	return j.info(withResults), nil
}

// Jobs lists every retained job, oldest first, without per-trial results.
func (s *Server) Jobs() []JobInfo {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	out := make([]JobInfo, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j.info(false))
		}
	}
	s.mu.Unlock()
	return out
}

// worker drains the queue until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one job's trials through the harness runner.
func (s *Server) run(j *job) {
	j.update(func() {
		j.state = StateRunning
		j.started = time.Now()
	})
	if err := s.runTrials(j); err != nil {
		s.failed.Add(1)
		j.update(func() {
			j.state = StateFailed
			j.err = err.Error()
		})
		return
	}
	s.completed.Add(1)
	j.update(func() {
		sum := Summary{Trials: j.spec.Trials, ElapsedMS: time.Since(j.started).Milliseconds()}
		for _, r := range j.results {
			if !r.TriangleFree {
				sum.Found++
			}
			sum.MeanBits += float64(r.Bits)
			if r.Bits > sum.MaxBits {
				sum.MaxBits = r.Bits
			}
			sum.WireBytes += r.WireBytes
		}
		if sum.Trials > 0 {
			sum.MeanBits /= float64(sum.Trials)
		}
		j.state = StateDone
		j.summary = &sum
	})
}

// runTrials fans the job's trials onto the harness runner. Trial i is a
// pure function of TrialSeed(spec.Seed, i): instance generation, the
// split, and the protocol's shared randomness all derive from it, so any
// outcome can be replayed independently.
func (s *Server) runTrials(j *job) error {
	spec := j.spec

	// An uploaded edge list is one immutable instance shared by all trials
	// (only the split seed varies); generator families redraw per trial.
	var uploaded *tricomm.Graph
	if spec.Graph.Kind == "edges" {
		b := tricomm.NewBuilder(spec.Graph.N)
		for _, e := range spec.Graph.Edges {
			b.AddEdge(e[0], e[1])
		}
		uploaded = b.Build()
	}

	_, err := runner.MapArena(s.ctx, s.cfg.TrialJobs, spec.Trials,
		func(ctx context.Context, a *runner.Arena, trial int) (struct{}, error) {
			seed := runner.TrialSeed(spec.Seed, trial)
			g := uploaded
			var players [][]tricomm.Edge
			if g == nil {
				inst, gerr := generate(spec.Graph, a.Rand(int64(seed)))
				if gerr != nil {
					return struct{}{}, gerr
				}
				g = inst.G
				players = inst.Players
			}
			scheme, err := tricomm.ParseSplitScheme(spec.Partition)
			if err != nil {
				return struct{}{}, err
			}
			// A family that prescribes the per-player assignment overrides
			// the job's split scheme (the assignment IS the scenario).
			var cl *tricomm.Cluster
			if players != nil {
				cl, err = tricomm.NewCluster(g.N(), players, seed)
			} else {
				cl, err = tricomm.Split(g, spec.K, scheme, seed)
			}
			if err != nil {
				return struct{}{}, err
			}
			opts, err := spec.options(g.AvgDegree())
			if err != nil {
				return struct{}{}, err
			}
			rep, err := cl.Test(ctx, opts)
			if err != nil {
				return struct{}{}, fmt.Errorf("trial %d (seed %d): %w", trial, seed, err)
			}
			out := TrialOutcome{
				Trial:        trial,
				Seed:         seed,
				TriangleFree: rep.TriangleFree,
				Bits:         rep.Bits,
				WireBytes:    rep.WireBytes,
				Rounds:       rep.Rounds,
				PhaseBits:    rep.PhaseBits,
			}
			if !rep.TriangleFree {
				out.Witness = &[3]int{rep.Witness.A, rep.Witness.B, rep.Witness.C}
			}
			if spec.Check {
				_, has := g.FindTriangleN(s.cfg.IntraWorkers)
				out.HasTriangle = &has
			}
			j.update(func() {
				j.results[trial] = out
				j.filled[trial] = true
				j.done++
			})
			return struct{}{}, nil
		})
	return err
}

// generate draws a generator-spec instance from the trial rng via the
// scenario registry. The constructions match the tricomm facade exactly
// (GenerateScenario seeds a fresh rand.Source; the runner arena reseeds
// in place, which produces the identical sequence), so clients can
// regenerate any trial's instance with the public API and audit the
// verdict.
func generate(gs GraphSpec, rng *rand.Rand) (scenario.Instance, error) {
	sp, err := gs.scenarioSpec()
	if err != nil {
		return scenario.Instance{}, err
	}
	return scenario.Build(sp, rng)
}

// Stats is the service-level counter snapshot for the /v1/stats endpoint.
type Stats struct {
	// UptimeMS is the server age in milliseconds.
	UptimeMS int64 `json:"uptime_ms"`
	// Workers and QueueDepth echo the pool configuration.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Queued is the current queue length.
	Queued int `json:"queued"`
	// Submitted, Completed, and Failed count jobs over the server's life.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	return Stats{
		UptimeMS:   time.Since(s.start).Milliseconds(),
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		Queued:     len(s.queue),
		Submitted:  s.submitted.Load(),
		Completed:  s.completed.Load(),
		Failed:     s.failed.Load(),
	}
}
