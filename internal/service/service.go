package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tricomm"
	"tricomm/internal/graph"
	"tricomm/internal/harness/runner"
	"tricomm/internal/scenario"
)

// Config sizes the service.
type Config struct {
	// Workers is the job worker pool size (default 2): at most Workers jobs
	// run concurrently.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs (default
	// 64); submissions beyond it are rejected with ErrBusy.
	QueueDepth int
	// TrialJobs is the per-job trial parallelism handed to the harness
	// runner (default 1, which also keeps streamed results in trial
	// order). Total in-flight sessions are bounded by Workers × TrialJobs.
	TrialJobs int
	// IntraWorkers fans a single trial's hot loops — the session's
	// per-player sampling/closing scans and the Check ground-truth
	// audit — across goroutines; ≤ 0 defers to the
	// TRICOMM_INTRA_WORKERS environment variable, then 1. The parallel
	// paths are bit-identical to the serial ones, so this only trades
	// wall-clock for cores on a box whose trial-level pool is idle.
	IntraWorkers int
	// KeepJobs bounds how many finished jobs are retained before the
	// oldest are collected (default 4096).
	KeepJobs int
	// JobTTL additionally expires finished jobs by age — a job is
	// collected once it has been done/failed for longer than JobTTL
	// (0 = keep until the KeepJobs count bound collects it). Live jobs
	// are never collected.
	JobTTL time.Duration
	// TrialTimeout bounds one trial's wall clock for jobs that don't set
	// their own trial_timeout_ms (0 = no server-side default).
	TrialTimeout time.Duration
	// TrialRetries is how many times an aborted or timed-out trial is
	// re-run (same trial seed) before being recorded as aborted
	// (default 2; negative means no retries).
	TrialRetries int
	// DefaultFaults is a fault spec applied to jobs that don't set one —
	// "" (none), a preset, or JSON (see transport.ParseFaultSpec). Used
	// by the daemon's -faults flag to harden every session it runs.
	DefaultFaults string
	// Logger receives structured job-lifecycle events (submission, state
	// transitions, trial aborts), each tagged with the job ID. Nil
	// discards them, preserving the historical silence of embedded
	// servers; the daemon passes its process logger.
	Logger *slog.Logger
	// Store is the durability backend (default NewMemStore, which
	// preserves the historical forget-on-restart behavior). At startup
	// the server rebuilds its working set from the store: finished
	// records become listable history, unfinished ones are re-enqueued
	// and resumed by replaying only their missing trials from the
	// deterministic per-trial seeds. The caller retains ownership and
	// must Close the store after Server.Close.
	Store Store
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TrialJobs <= 0 {
		c.TrialJobs = 1
	}
	c.IntraWorkers = graph.IntraWorkers(c.IntraWorkers)
	if c.KeepJobs <= 0 {
		c.KeepJobs = 4096
	}
	if c.TrialRetries == 0 {
		c.TrialRetries = 2
	} else if c.TrialRetries < 0 {
		c.TrialRetries = 0
	}
	if c.Store == nil {
		c.Store = NewMemStore()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// job is the server-side state of one submission.
type job struct {
	id  string
	seq int64

	spec JobSpec

	mu       sync.Mutex
	state    JobState
	err      string
	results  []TrialOutcome // indexed by trial
	filled   []bool
	done     int
	summary  *Summary
	created  time.Time
	started  time.Time
	finished time.Time       // set on done/failed; the TTL clock
	watchers []chan struct{} // closed-and-discarded on every update
}

// update mutates the job under its lock and wakes every watcher.
func (j *job) update(fn func()) {
	j.mu.Lock()
	fn()
	ws := j.watchers
	j.watchers = nil
	j.mu.Unlock()
	for _, w := range ws {
		close(w)
	}
}

// watch returns a channel closed at the next update.
func (j *job) watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	w := make(chan struct{})
	if j.state.Finished() {
		close(w) // no further updates are coming; don't park watchers
		return w
	}
	j.watchers = append(j.watchers, w)
	return w
}

// info snapshots the API view with the full result prefix.
func (j *job) info(withResults bool) JobInfo {
	if withResults {
		return j.infoPage(0, -1)
	}
	return j.infoPage(0, 0)
}

// infoPage snapshots the API view with a window of the results. Results
// are exposed up to the first gap so watchers always see a prefix in
// trial order; offset/limit select within that prefix (limit < 0 means
// the whole tail) and ResultsTotal reports the prefix length.
func (j *job) infoPage(offset, limit int) JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	ji := JobInfo{
		ID:         j.id,
		State:      j.state,
		Error:      j.err,
		Spec:       j.spec,
		TrialsDone: j.done,
		Summary:    j.summary,
	}
	n := 0
	for n < len(j.filled) && j.filled[n] {
		n++
	}
	ji.ResultsTotal = n
	if offset < 0 {
		offset = 0
	}
	if offset > n {
		offset = n
	}
	ji.ResultsOffset = offset
	end := n
	if limit >= 0 && offset+limit < end {
		end = offset + limit
	}
	if offset < end {
		ji.Results = append([]TrialOutcome(nil), j.results[offset:end]...)
	}
	return ji
}

// record snapshots the job's persisted envelope.
func (j *job) record() JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobRecord{
		ID:        j.id,
		Seq:       j.seq,
		Spec:      j.spec,
		State:     j.state,
		Error:     j.err,
		Summary:   j.summary,
		CreatedMS: j.created.UnixMilli(),
		UpdatedMS: time.Now().UnixMilli(),
	}
}

// Server schedules submitted jobs onto a bounded worker pool. Create with
// New, serve its Handler, and Close it to drain; Close waits for every
// worker, so a closed server has no goroutines left.
type Server struct {
	cfg   Config
	store Store
	start time.Time

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // insertion order, for listing and collection
	closed bool

	queue  chan *job
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	nextID        atomic.Int64
	resumed       int64 // set before workers start, read-only after
	submitted     atomic.Int64
	completed     atomic.Int64
	partial       atomic.Int64
	failed        atomic.Int64
	trialsRun     atomic.Int64
	trialRetries  atomic.Int64
	trialsAborted atomic.Int64
	storeErrs     atomic.Int64
}

// New starts a server with cfg's worker pool. If cfg.Store holds prior
// state (a reopened FileStore), the working set is rebuilt from it
// before the workers start: finished jobs become listable history and
// unfinished ones are re-enqueued for resumption, oldest first.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		store:  cfg.Store,
		start:  time.Now(),
		jobs:   make(map[string]*job),
		ctx:    ctx,
		cancel: cancel,
	}

	var pending []*job
	var maxSeq int64
	for _, rec := range s.store.ListJobs() {
		j := s.jobFromRecord(rec)
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if j.state == StateQueued {
			pending = append(pending, j)
		}
	}
	s.nextID.Store(maxSeq)
	s.resumed = int64(len(pending))

	// The queue is oversized by the resume backlog so a restart can never
	// lose jobs to its own backpressure; Submit still rejects beyond
	// QueueDepth, so client-visible semantics are unchanged.
	s.queue = make(chan *job, cfg.QueueDepth+len(pending))
	for _, j := range pending {
		s.queue <- j
	}
	mQueueDepth.Set(float64(len(s.queue)))
	mRetained.Set(float64(len(s.jobs)))

	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.JobTTL > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return s
}

// jobFromRecord materializes a stored job. Records caught mid-flight
// (queued or running at crash time) restart as queued with their landed
// trials kept verbatim; runTrials then executes only the missing ones.
func (s *Server) jobFromRecord(rec JobRecord) *job {
	_, trials, _ := s.store.GetJob(rec.ID)
	j := &job{
		id:      rec.ID,
		seq:     rec.Seq,
		spec:    rec.Spec,
		state:   rec.State,
		err:     rec.Error,
		summary: rec.Summary,
		created: time.UnixMilli(rec.CreatedMS),
		results: make([]TrialOutcome, rec.Spec.Trials),
		filled:  make([]bool, rec.Spec.Trials),
	}
	for _, out := range trials {
		if out.Trial >= 0 && out.Trial < len(j.results) && !j.filled[out.Trial] {
			j.results[out.Trial] = out
			j.filled[out.Trial] = true
			j.done++
		}
	}
	if j.state.Finished() {
		j.finished = time.UnixMilli(rec.UpdatedMS)
	} else {
		j.state = StateQueued
	}
	return j
}

// Close stops accepting jobs, cancels running ones, and waits for the
// workers to exit. Interrupted jobs are parked back in the queued state
// (and persisted as such), so a durable store resumes them on the next
// start. The store itself is left open for the caller to Close.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// Submit validates and enqueues a job, returning its queued info. The
// job ID is assigned only once admission is guaranteed, so rejected
// submissions (ErrBusy, store failures) leave no gaps in the sequence.
func (s *Server) Submit(spec JobSpec) (JobInfo, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return JobInfo{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	j := &job{
		spec:    spec,
		state:   StateQueued,
		created: time.Now(),
		results: make([]TrialOutcome, spec.Trials),
		filled:  make([]bool, spec.Trials),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		mRejected.Inc()
		return JobInfo{}, ErrClosed
	}
	// Backpressure check under the lock: all senders hold s.mu and
	// receivers only drain, so len < cap here guarantees the send below
	// cannot block. The queue may be physically larger than QueueDepth
	// (resume backlog); admission is still bounded by QueueDepth.
	if len(s.queue) >= s.cfg.QueueDepth || len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		mRejected.Inc()
		return JobInfo{}, ErrBusy
	}
	seq := s.nextID.Add(1)
	j.seq = seq
	j.id = fmt.Sprintf("job-%d", seq)
	if err := s.store.PutJob(j.record()); err != nil {
		// Not admitted: roll the sequence back (serialized under s.mu).
		s.nextID.Add(-1)
		s.mu.Unlock()
		return JobInfo{}, fmt.Errorf("service: store: %w", err)
	}
	s.queue <- j
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.gcLocked(time.Now())
	queued, retained := len(s.queue), len(s.jobs)
	s.mu.Unlock()

	s.submitted.Add(1)
	mJobsSubmitted.Inc()
	observeTransition(StateQueued)
	mQueueDepth.Set(float64(queued))
	mRetained.Set(float64(retained))
	s.cfg.Logger.Info("job submitted", "job", j.id, "trials", spec.Trials, "queued", queued)
	return j.info(false), nil
}

// gcLocked collects finished jobs in one forward pass over the insertion
// order: the oldest finished jobs beyond the KeepJobs bound, plus (when
// JobTTL is set) any finished longer than JobTTL ago. Collected jobs are
// removed from the store too. Live jobs are never collected, so the
// retained count can exceed KeepJobs while the pool is saturated.
func (s *Server) gcLocked(now time.Time) {
	over := len(s.order) - s.cfg.KeepJobs
	if over <= 0 && s.cfg.JobTTL <= 0 {
		return
	}
	// kept shares s.order's backing array; the write index never passes
	// the read index, so compacting in place during the scan is safe.
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		finished := j.state.Finished()
		finishedAt := j.finished
		j.mu.Unlock()
		expired := s.cfg.JobTTL > 0 && finished && now.Sub(finishedAt) > s.cfg.JobTTL
		if finished && (over > 0 || expired) {
			over-- // any collection shrinks the retained set
			delete(s.jobs, id)
			mGCEvicted.Inc()
			if err := s.store.DeleteJob(id); err != nil {
				s.storeErrs.Add(1)
				mStoreErrors.Inc()
			}
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	mRetained.Set(float64(len(s.jobs)))
}

// GC runs one collection pass immediately (the janitor does this
// periodically when JobTTL is set).
func (s *Server) GC() {
	s.mu.Lock()
	s.gcLocked(time.Now())
	s.mu.Unlock()
}

// janitor ages finished jobs out on a timer while JobTTL is set.
func (s *Server) janitor() {
	defer s.wg.Done()
	tick := s.cfg.JobTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.GC()
		case <-s.ctx.Done():
			return
		}
	}
}

// Job returns the API view of one job.
func (s *Server) Job(id string, withResults bool) (JobInfo, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	return j.info(withResults), nil
}

// JobPage returns one job with a window of its per-trial results:
// limit < 0 means everything from offset on. The window is taken from
// the contiguous result prefix; ResultsTotal/ResultsOffset in the reply
// locate it.
func (s *Server) JobPage(id string, offset, limit int) (JobInfo, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	return j.infoPage(offset, limit), nil
}

// Jobs lists every retained job, oldest first, without per-trial results.
func (s *Server) Jobs() []JobInfo {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	out := make([]JobInfo, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j.info(false))
		}
	}
	s.mu.Unlock()
	return out
}

// worker drains the queue until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// persistJob writes the job's envelope through the store, counting (but
// otherwise tolerating) backend failures: the in-memory view stays
// authoritative for this process's lifetime either way.
func (s *Server) persistJob(j *job) {
	if err := s.store.PutJob(j.record()); err != nil {
		s.storeErrs.Add(1)
		mStoreErrors.Inc()
	}
}

// run executes one job's trials through the harness runner.
func (s *Server) run(j *job) {
	j.update(func() {
		j.state = StateRunning
		j.started = time.Now()
	})
	observeTransition(StateRunning)
	mQueueDepth.Set(float64(len(s.queue)))
	s.cfg.Logger.Info("job running", "job", j.id)
	s.persistJob(j)
	if err := s.runTrials(j); err != nil {
		if s.ctx.Err() != nil {
			// Shutdown interruption, not a job fault: park the job back in
			// the queued state so a durable store resumes it — replaying
			// only the missing trials — on the next start.
			j.update(func() { j.state = StateQueued })
			observeTransition(StateQueued)
			s.cfg.Logger.Info("job parked for resume", "job", j.id)
			s.persistJob(j)
			return
		}
		s.failed.Add(1)
		j.update(func() {
			j.state = StateFailed
			j.err = err.Error()
			j.finished = time.Now()
		})
		observeTransition(StateFailed)
		s.cfg.Logger.Error("job failed", "job", j.id, "error", err.Error())
		s.persistJob(j)
		return
	}
	var final JobState
	j.update(func() {
		sum := Summary{Trials: j.spec.Trials, ElapsedMS: time.Since(j.started).Milliseconds()}
		completed := 0
		for _, r := range j.results {
			sum.Retries += r.Retries
			if r.Aborted {
				sum.FailedTrials++
				continue
			}
			completed++
			if !r.TriangleFree {
				sum.Found++
			}
			sum.MeanBits += float64(r.Bits)
			if r.Bits > sum.MaxBits {
				sum.MaxBits = r.Bits
			}
			sum.WireBytes += r.WireBytes
		}
		if completed > 0 {
			sum.MeanBits /= float64(completed)
		}
		// Aborted trials degrade the job within its budget instead of
		// discarding the completed trials' work.
		switch {
		case sum.FailedTrials == 0:
			j.state = StateDone
		case sum.FailedTrials <= j.spec.MaxFailedTrials:
			j.state = StatePartial
		default:
			j.state = StateFailed
			j.err = fmt.Sprintf("%d trials aborted, budget max_failed_trials=%d",
				sum.FailedTrials, j.spec.MaxFailedTrials)
		}
		final = j.state
		j.summary = &sum
		j.finished = time.Now()
	})
	switch final {
	case StateDone:
		s.completed.Add(1)
	case StatePartial:
		s.partial.Add(1)
	default:
		s.failed.Add(1)
	}
	observeTransition(final)
	j.mu.Lock()
	elapsed := j.finished.Sub(j.started)
	j.mu.Unlock()
	s.cfg.Logger.Info("job finished", "job", j.id, "state", string(final), "elapsed", elapsed)
	s.persistJob(j)
}

// runTrials fans the job's trials onto the harness runner. Trial i is a
// pure function of TrialSeed(spec.Seed, i): instance generation, the
// split, and the protocol's shared randomness all derive from it, so any
// outcome can be replayed independently — which is also why a resumed
// job (some trials already filled from the store) just skips the filled
// ones and produces results byte-identical to an uninterrupted run.
func (s *Server) runTrials(j *job) error {
	spec := j.spec

	// An uploaded edge list is one immutable instance shared by all trials
	// (only the split seed varies); generator families redraw per trial.
	var uploaded *tricomm.Graph
	if spec.Graph.Kind == "edges" {
		b := tricomm.NewBuilder(spec.Graph.N)
		for _, e := range spec.Graph.Edges {
			b.AddEdge(e[0], e[1])
		}
		uploaded = b.Build()
	}

	_, err := runner.MapArena(s.ctx, s.cfg.TrialJobs, spec.Trials,
		func(ctx context.Context, a *runner.Arena, trial int) (struct{}, error) {
			j.mu.Lock()
			alreadyFilled := j.filled[trial]
			j.mu.Unlock()
			if alreadyFilled {
				return struct{}{}, nil // resumed: this outcome survived the restart
			}
			s.trialsRun.Add(1)
			mTrialsRun.Inc()
			trialStart := time.Now()
			seed := runner.TrialSeed(spec.Seed, trial)
			g := uploaded
			var players [][]tricomm.Edge
			if g == nil {
				inst, gerr := generate(spec.Graph, a.Rand(int64(seed)))
				if gerr != nil {
					return struct{}{}, gerr
				}
				g = inst.G
				players = inst.Players
			}
			scheme, err := tricomm.ParseSplitScheme(spec.Partition)
			if err != nil {
				return struct{}{}, err
			}
			// A family that prescribes the per-player assignment overrides
			// the job's split scheme (the assignment IS the scenario).
			var cl *tricomm.Cluster
			if players != nil {
				cl, err = tricomm.NewCluster(g.N(), players, seed)
			} else {
				cl, err = tricomm.Split(g, spec.K, scheme, seed)
			}
			if err != nil {
				return struct{}{}, err
			}
			opts, err := spec.options(g.AvgDegree())
			if err != nil {
				return struct{}{}, err
			}
			if opts.Faults == "" {
				opts.Faults = s.cfg.DefaultFaults
			}
			opts.IntraWorkers = s.cfg.IntraWorkers
			timeout := time.Duration(spec.TrialTimeoutMS) * time.Millisecond
			if timeout <= 0 {
				timeout = s.cfg.TrialTimeout
			}

			// Run the trial, re-running aborted or timed-out sessions with
			// the SAME trial seed up to the retry budget. The cluster and
			// options are reused verbatim, so a retry replays the identical
			// experiment; only timing-dependent failures (trial timeouts,
			// wall-clock stalls) can come out differently. A trial that
			// exhausts the budget is recorded aborted, not fatal: the job's
			// max_failed_trials budget decides its final state.
			var rep tricomm.Report
			var runErr error
			retries := 0
			for {
				tctx, cancel := ctx, context.CancelFunc(func() {})
				if timeout > 0 {
					tctx, cancel = context.WithTimeout(ctx, timeout)
				}
				rep, runErr = cl.Test(tctx, opts)
				timedOut := runErr != nil && tctx.Err() != nil && ctx.Err() == nil
				cancel()
				if runErr == nil || ctx.Err() != nil {
					break
				}
				if !errors.Is(runErr, tricomm.ErrSessionAborted) && !timedOut {
					// Not a resilience failure (bad spec, internal error):
					// fail the whole job as before.
					return struct{}{}, fmt.Errorf("trial %d (seed %d): %w", trial, seed, runErr)
				}
				if retries >= s.cfg.TrialRetries {
					break
				}
				retries++
				s.trialRetries.Add(1)
				mTrialRetries.Inc()
			}
			if runErr != nil && ctx.Err() != nil {
				// Shutdown or job cancellation, not a trial outcome.
				return struct{}{}, fmt.Errorf("trial %d (seed %d): %w", trial, seed, runErr)
			}

			out := TrialOutcome{Trial: trial, Seed: seed, Retries: retries}
			if runErr != nil {
				out.Aborted = true
				out.Error = runErr.Error()
				s.trialsAborted.Add(1)
				mTrialsAborted.Inc()
			} else {
				out.TriangleFree = rep.TriangleFree
				out.Bits = rep.Bits
				out.WireBytes = rep.WireBytes
				out.Rounds = rep.Rounds
				out.PhaseBits = rep.PhaseBits
				out.Retransmits = rep.Retransmits
				out.FramesLost = rep.FramesLost
				if !rep.TriangleFree {
					out.Witness = &[3]int{rep.Witness.A, rep.Witness.B, rep.Witness.C}
				}
				if spec.Check {
					_, has := g.FindTriangleN(s.cfg.IntraWorkers)
					out.HasTriangle = &has
				}
			}
			j.update(func() {
				j.results[trial] = out
				j.filled[trial] = true
				j.done++
			})
			mTrialSeconds.Observe(time.Since(trialStart).Seconds())
			if err := s.store.PutTrial(j.id, out); err != nil {
				s.storeErrs.Add(1)
				mStoreErrors.Inc()
			}
			return struct{}{}, nil
		})
	return err
}

// generate draws a generator-spec instance from the trial rng via the
// scenario registry. The constructions match the tricomm facade exactly
// (GenerateScenario seeds a fresh rand.Source; the runner arena reseeds
// in place, which produces the identical sequence), so clients can
// regenerate any trial's instance with the public API and audit the
// verdict.
func generate(gs GraphSpec, rng *rand.Rand) (scenario.Instance, error) {
	sp, err := gs.scenarioSpec()
	if err != nil {
		return scenario.Instance{}, err
	}
	return scenario.Build(sp, rng)
}

// Stats is the service-level counter snapshot for the /v1/stats endpoint.
type Stats struct {
	// UptimeMS is the server age in milliseconds.
	UptimeMS int64 `json:"uptime_ms"`
	// Workers and QueueDepth echo the pool configuration.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Queued is the current queue length (including any resume backlog).
	Queued int `json:"queued"`
	// Retained is the number of jobs currently held (and listable).
	Retained int `json:"retained"`
	// Resumed counts jobs re-enqueued from the store at startup.
	Resumed int64 `json:"resumed,omitempty"`
	// Submitted, Completed, Partial, and Failed count jobs over the
	// server's life; partial jobs finished with some trials aborted but
	// within their max_failed_trials budget.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Partial   int64 `json:"partial,omitempty"`
	Failed    int64 `json:"failed"`
	// TrialsRun counts trials actually executed (resumed jobs' surviving
	// trials are kept verbatim and not re-run, so they don't count).
	TrialsRun int64 `json:"trials_run"`
	// TrialRetries counts trial re-runs after aborts or timeouts;
	// TrialsAborted counts trials that exhausted the retry budget.
	TrialRetries  int64 `json:"trial_retries,omitempty"`
	TrialsAborted int64 `json:"trials_aborted,omitempty"`
	// StoreErrors counts persistence-backend write failures.
	StoreErrors int64 `json:"store_errors,omitempty"`
}

// Health is the /healthz payload: liveness plus readiness context. Ready
// is false while the server is draining (Close underway or finished),
// which /healthz maps to 503 so probes take a draining daemon out of
// rotation before its listener goes away.
type Health struct {
	// OK is liveness: the process is serving requests.
	OK bool `json:"ok"`
	// Ready is readiness: the server is accepting submissions.
	Ready bool `json:"ready"`
	// UptimeMS is the server age in milliseconds.
	UptimeMS int64 `json:"uptime_ms"`
	// Goroutines is the process goroutine count.
	Goroutines int `json:"goroutines"`
	// Store names the durability backend ("mem", "file"); DBPath is its
	// on-disk location when the backend is disk-backed.
	Store  string `json:"store,omitempty"`
	DBPath string `json:"db_path,omitempty"`
	// Resumed counts jobs re-enqueued from the store at startup; Queued
	// and Retained mirror Stats for probes that only hit /healthz.
	Resumed  int64 `json:"resumed,omitempty"`
	Queued   int   `json:"queued"`
	Retained int   `json:"retained"`
}

// Health snapshots liveness and readiness for the /healthz endpoint.
func (s *Server) Health() Health {
	s.mu.Lock()
	closed := s.closed
	retained := len(s.jobs)
	s.mu.Unlock()
	h := Health{
		OK:         true,
		Ready:      !closed,
		UptimeMS:   time.Since(s.start).Milliseconds(),
		Goroutines: runtime.NumGoroutine(),
		Resumed:    s.resumed,
		Queued:     len(s.queue),
		Retained:   retained,
	}
	if d, ok := s.store.(Describer); ok {
		h.Store, h.DBPath = d.Describe()
	}
	return h
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	retained := len(s.jobs)
	s.mu.Unlock()
	return Stats{
		UptimeMS:      time.Since(s.start).Milliseconds(),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.cfg.QueueDepth,
		Queued:        len(s.queue),
		Retained:      retained,
		Resumed:       s.resumed,
		Submitted:     s.submitted.Load(),
		Completed:     s.completed.Load(),
		Partial:       s.partial.Load(),
		Failed:        s.failed.Load(),
		TrialsRun:     s.trialsRun.Load(),
		TrialRetries:  s.trialRetries.Load(),
		TrialsAborted: s.trialsAborted.Load(),
		StoreErrors:   s.storeErrs.Load(),
	}
}
