package service

import "tricomm/internal/obs"

// Service-layer metrics. These mirror (and extend) the Stats counters:
// the JSON endpoint keeps its per-server snapshot semantics, while the
// metrics below are process-global and cumulative, which is what a
// scraper wants. All writes happen on job/trial/store event boundaries —
// never inside a protocol session — so instrumentation cannot perturb any
// deterministic output. Label vocabularies are closed: job states and
// store ops are code-defined enums, so cardinality is fixed.
//
// The two gauges are process-global too: when several Servers share one
// process (tests), each mutation overwrites the last, so they reflect the
// most recently active server. The daemon runs exactly one.
var (
	mJobsSubmitted = obs.NewCounter("tricomm_service_jobs_submitted_total",
		"Jobs admitted past validation and backpressure.")
	mJobsFinished = obs.NewCounterVec("tricomm_service_jobs_finished_total",
		"Jobs that reached a terminal state, by state.", "state")
	mTransitions = obs.NewCounterVec("tricomm_service_job_transitions_total",
		"Job state transitions, by entered state.", "state")
	mRejected = obs.NewCounter("tricomm_service_admission_rejected_total",
		"Submissions rejected by backpressure or drain (ErrBusy/ErrClosed).")
	mQueueDepth = obs.NewGauge("tricomm_service_queue_depth",
		"Jobs currently queued (resume backlog included).")
	mRetained = obs.NewGauge("tricomm_service_jobs_retained",
		"Jobs currently held in the working set.")
	mTrialsRun = obs.NewCounter("tricomm_service_trials_run_total",
		"Trials actually executed (resumed trials kept verbatim don't count).")
	mTrialRetries = obs.NewCounter("tricomm_service_trial_retries_total",
		"Trial re-runs after session aborts or timeouts.")
	mTrialsAborted = obs.NewCounter("tricomm_service_trials_aborted_total",
		"Trials recorded aborted after exhausting the retry budget.")
	mTrialSeconds = obs.NewHistogram("tricomm_service_trial_seconds",
		"Wall-clock duration of one trial, retries included.", obs.DurationBuckets())
	mGCEvicted = obs.NewCounter("tricomm_service_gc_evicted_jobs_total",
		"Finished jobs collected by the KeepJobs/TTL policy.")
	mStoreErrors = obs.NewCounter("tricomm_service_store_errors_total",
		"Persistence-backend write failures (tolerated; in-memory view stays authoritative).")
	mStoreAppends = obs.NewCounterVec("tricomm_service_store_appends_total",
		"FileStore log appends, by entry op.", "op")
	mStoreFsyncs = obs.NewCounter("tricomm_service_store_fsyncs_total",
		"FileStore fsyncs (envelope writes and tombstones).")
	mStoreCompactions = obs.NewCounter("tricomm_service_store_compactions_total",
		"FileStore log compactions (one per successful open).")
)

// observeTransition records a job entering a state, and its terminal
// landing when the state is final.
func observeTransition(state JobState) {
	mTransitions.With(string(state)).Inc()
	if state.Finished() {
		mJobsFinished.With(string(state)).Inc()
	}
}
