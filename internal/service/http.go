package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"tricomm/internal/obs"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs             submit a JobSpec, returns the queued JobInfo
//	GET  /v1/jobs             list retained jobs (no per-trial results)
//	GET  /v1/jobs/{id}        one job, with per-trial results; ?offset=O
//	                          &limit=L pages the results (limit 0 returns
//	                          just the envelope; results_total/
//	                          results_offset locate the window)
//	GET  /v1/jobs/{id}/stream NDJSON stream: one TrialOutcome per line as
//	                          trials land, then a final JobInfo line;
//	                          ?offset=N skips the first N trials, which is
//	                          how a dropped consumer resumes mid-job
//	GET  /v1/scenarios        the scenario-family catalog (generated from
//	                          the registry: submitting {"graph": {"family":
//	                          <name>, ...}} works for every entry)
//	GET  /v1/stats            service counters
//	GET  /healthz             liveness + readiness (store backend, resume
//	                          count, queue/retention snapshot); 503 while
//	                          the server is draining
//	GET  /metrics             Prometheus text exposition of the process-
//	                          global metrics registry (service, engine,
//	                          transport, and — when the daemon registered
//	                          them — runtime series)
//
// Error statuses: 400 for malformed payloads and specs failing
// validation (ErrInvalid), 404 for unknown job ids, 413 for bodies
// beyond the submission size cap, 503 with the JSON error envelope when
// the queue is full or the server is draining (back off and retry), and
// 500 for internal faults (e.g. a persistence-backend failure) — which
// are never the client's doing.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", obs.Handler())
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeErr maps service errors onto HTTP statuses. Client faults must be
// tagged (ErrInvalid, ErrNotFound, an http.MaxBytesError in the chain);
// anything unrecognized is an internal fault and reports 500 — notably
// trial-execution and store failures, which used to masquerade as 400s.
func writeErr(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	code := http.StatusInternalServerError
	switch {
	case errors.As(err, &tooLarge):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrBusy), errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
		// Load shedding is transient: tell well-behaved clients when to
		// come back (the service.Client retry honors this).
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrInvalid):
		code = http.StatusBadRequest
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

// maxBodyBytesDefault bounds a submission body. Sized so a maximal legal
// edge list (MaxEdges pairs of 7-digit JSON vertex ids, ~20 bytes per
// pair) still fits.
const maxBodyBytesDefault = int64(MaxEdges) * 20

// maxBodyBytes is a variable only so tests can lower the cap without
// uploading 80MB bodies.
var maxBodyBytes = maxBodyBytesDefault

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, fmt.Errorf("decode job: %w", err))
			return
		}
		writeErr(w, fmt.Errorf("%w: decode: %v", ErrInvalid, err))
		return
	}
	ji, err := s.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, ji)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

// pageParam parses a non-negative integer query parameter, returning
// def when absent.
func pageParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%w: bad %s %q", ErrInvalid, name, v)
	}
	return n, nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	offset, err := pageParam(r, "offset", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	limit, err := pageParam(r, "limit", -1)
	if err != nil {
		writeErr(w, err)
		return
	}
	ji, err := s.JobPage(r.PathValue("id"), offset, limit)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ji)
}

// handleStream writes each trial outcome as one NDJSON line the moment it
// completes (in trial order), then a final line holding the JobInfo
// envelope (without the results, which were already streamed). The
// handler holds its own reference to the job, so a stream stays coherent
// even if the job is collected (KeepJobs/TTL) mid-stream; on server
// Close the stream ends without a final line. ?offset=N starts the
// stream at trial N, so a consumer whose connection dropped resumes
// exactly where it left off.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	offset, err := pageParam(r, "offset", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeErr(w, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	next := offset
	for {
		// Arm the watch before reading state so an update between the read
		// and the wait cannot be missed.
		wake := j.watch()
		ji := j.info(true)
		for ; next < len(ji.Results); next++ {
			if err := enc.Encode(ji.Results[next]); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if ji.State.Finished() {
			ji.Results = nil
			_ = enc.Encode(ji)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Scenarios())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if !h.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
