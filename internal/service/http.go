package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs             submit a JobSpec, returns the queued JobInfo
//	GET  /v1/jobs             list retained jobs (no per-trial results)
//	GET  /v1/jobs/{id}        one job, with per-trial results
//	GET  /v1/jobs/{id}/stream NDJSON stream: one TrialOutcome per line as
//	                          trials land, then a final JobInfo line
//	GET  /v1/scenarios        the scenario-family catalog (generated from
//	                          the registry: submitting {"graph": {"family":
//	                          <name>, ...}} works for every entry)
//	GET  /v1/stats            service counters
//	GET  /healthz             liveness (also reports the goroutine count)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrBusy):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	default:
		code = http.StatusBadRequest
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

// maxBodyBytes bounds a submission body. Sized so a maximal legal edge
// list (MaxEdges pairs of 7-digit JSON vertex ids, ~20 bytes per pair)
// still fits.
const maxBodyBytes = int64(MaxEdges) * 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, fmt.Errorf("decode job: %w", err))
		return
	}
	ji, err := s.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, ji)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	ji, err := s.Job(r.PathValue("id"), true)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ji)
}

// handleStream writes each trial outcome as one NDJSON line the moment it
// completes (in trial order), then a final line holding the JobInfo
// envelope (without the results, which were already streamed).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeErr(w, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	next := 0
	for {
		// Arm the watch before reading state so an update between the read
		// and the wait cannot be missed.
		wake := j.watch()
		ji := j.info(true)
		for ; next < len(ji.Results); next++ {
			if err := enc.Encode(ji.Results[next]); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if ji.State == StateDone || ji.State == StateFailed {
			ji.Results = nil
			_ = enc.Encode(ji)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Scenarios())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"goroutines": runtime.NumGoroutine(),
	})
}
