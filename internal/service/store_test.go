package service

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tricomm/internal/harness/runner"
)

// sampleRecord builds a canonical record for store tests (defaults filled
// so JSON round trips reproduce the struct exactly).
func sampleRecord(seq int64, state JobState) JobRecord {
	return JobRecord{
		ID:        fmt.Sprintf("job-%d", seq),
		Seq:       seq,
		Spec:      farJob(64, 4, uint64(seq)).withDefaults(),
		State:     state,
		CreatedMS: 1700000000000 + seq,
		UpdatedMS: 1700000000100 + seq,
	}
}

func sampleOutcome(trial int) TrialOutcome {
	return TrialOutcome{
		Trial:     trial,
		Seed:      runner.TrialSeed(7, trial),
		Bits:      100 + int64(trial),
		Rounds:    3,
		PhaseBits: map[string]int64{"probe": int64(trial)},
	}
}

// storeContract exercises the Store interface semantics shared by both
// backends: upsert, out-of-order trials returned sorted, Seq-ordered
// listing, deletion.
func storeContract(t *testing.T, st Store) {
	t.Helper()
	r1, r2 := sampleRecord(1, StateRunning), sampleRecord(2, StateQueued)
	for _, r := range []JobRecord{r2, r1} { // insertion order ≠ seq order
		if err := st.PutJob(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, trial := range []int{2, 0, 1} { // trials land out of order
		if err := st.PutTrial(r1.ID, sampleOutcome(trial)); err != nil {
			t.Fatal(err)
		}
	}
	r1.State = StateDone
	r1.Summary = &Summary{Trials: 3, MeanBits: 101}
	if err := st.PutJob(r1); err != nil { // upsert keeps the trials
		t.Fatal(err)
	}

	rec, trials, ok := st.GetJob(r1.ID)
	if !ok || !reflect.DeepEqual(rec, r1) {
		t.Fatalf("GetJob = %+v ok=%v, want %+v", rec, ok, r1)
	}
	if len(trials) != 3 {
		t.Fatalf("got %d trials, want 3", len(trials))
	}
	for i, out := range trials {
		if !reflect.DeepEqual(out, sampleOutcome(i)) {
			t.Fatalf("trial %d = %+v", i, out)
		}
	}
	list := st.ListJobs()
	if len(list) != 2 || list[0].Seq != 1 || list[1].Seq != 2 {
		t.Fatalf("ListJobs = %+v", list)
	}
	if err := st.DeleteJob(r1.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.GetJob(r1.ID); ok {
		t.Fatal("deleted job still present")
	}
	if err := st.DeleteJob("job-never-existed"); err != nil {
		t.Fatalf("deleting unknown id: %v", err)
	}
	if len(st.ListJobs()) != 1 {
		t.Fatalf("ListJobs after delete = %+v", st.ListJobs())
	}
}

func TestMemStoreContract(t *testing.T) {
	storeContract(t, NewMemStore())
}

func TestFileStoreContract(t *testing.T) {
	st, err := OpenFileStore(filepath.Join(t.TempDir(), "jobs.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	storeContract(t, st)
}

// TestFileStoreReopen pins that a closed-and-reopened log reproduces the
// exact records and trials, including a deletion tombstone.
func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.db")
	st, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := sampleRecord(1, StateDone), sampleRecord(2, StateQueued)
	for _, r := range []JobRecord{r1, r2} {
		if err := st.PutJob(r); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 3; trial++ {
		if err := st.PutTrial(r2.ID, sampleOutcome(trial)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.DeleteJob(r1.ID); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, _, ok := st2.GetJob(r1.ID); ok {
		t.Fatal("tombstoned job resurrected by reopen")
	}
	rec, trials, ok := st2.GetJob(r2.ID)
	if !ok || !reflect.DeepEqual(rec, r2) || len(trials) != 3 {
		t.Fatalf("reopen: rec=%+v ok=%v trials=%d", rec, ok, len(trials))
	}
	for i, out := range trials {
		if !reflect.DeepEqual(out, sampleOutcome(i)) {
			t.Fatalf("reopened trial %d = %+v", i, out)
		}
	}

	// Reopen compacted: the log holds exactly the canonical snapshot (one
	// envelope line + one line per trial), with the superseded envelope
	// and the tombstone dropped.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(raw), "\n"); lines != 1+3 {
		t.Fatalf("compacted log has %d lines, want 4:\n%s", lines, raw)
	}
}

// TestFileStoreTornTail pins crash safety of the log: a torn final write
// (partial JSON line) is dropped at reopen and everything before it is
// kept.
func TestFileStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.db")
	st, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord(1, StateRunning)
	if err := st.PutJob(rec); err != nil {
		t.Fatal(err)
	}
	if err := st.PutTrial(rec.ID, sampleOutcome(0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"trial","id":"job-1","trial":{"tri`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, trials, ok := st2.GetJob(rec.ID)
	if !ok || !reflect.DeepEqual(got, rec) || len(trials) != 1 {
		t.Fatalf("after torn tail: rec=%+v ok=%v trials=%d", got, ok, len(trials))
	}
}
